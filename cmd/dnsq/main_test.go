package main

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

const testZoneText = `
$ORIGIN ourtestdomain.nl.
$TTL 3600
@   IN SOA ns1 hostmaster 2017032301 7200 3600 604800 300
    IN NS ns1
ns1 IN A 192.0.2.1
probe-1 5 IN TXT "site=FRA"
`

// startServer brings up a real UDP+TCP authoritative on a loopback
// port for end-to-end CLI queries.
func startServer(t *testing.T) string {
	t.Helper()
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	srv := authserver.NewServer(authserver.NewEngine(authserver.Config{
		Zones:    []*zone.Zone{z},
		Identity: "fra1.ourtestdomain.nl",
	}))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

func TestRunArgumentErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error, "" for errUsage
	}{
		{"no args", nil, ""},
		{"bad name", []string{"bad..name"}, "bad name"},
		{"bad type", []string{"probe-1.ourtestdomain.nl", "BOGUS"}, "bad type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fsOut := &bytes.Buffer{}
			err := run(tc.args, fsOut)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if tc.want == "" {
				if !errors.Is(err, errUsage) {
					t.Errorf("err = %v, want errUsage", err)
				}
				return
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	// An unknown flag surfaces as a parse error, not a panic or exit.
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Error("unknown flag should fail")
	}
}

// TestRunQueriesLiveServer drives the whole CLI path — flag parsing,
// wire packing, a real socket round trip, and response printing —
// against an in-process authoritative.
func TestRunQueriesLiveServer(t *testing.T) {
	addr := startServer(t)

	t.Run("udp TXT", func(t *testing.T) {
		var out bytes.Buffer
		if err := run([]string{"-server", addr, "probe-1.ourtestdomain.nl", "TXT"}, &out); err != nil {
			t.Fatal(err)
		}
		got := out.String()
		for _, want := range []string{"status: NOERROR", "aa", ";; ANSWER", "site=FRA"} {
			if !strings.Contains(got, want) {
				t.Errorf("output missing %q:\n%s", want, got)
			}
		}
	})

	t.Run("tcp TXT", func(t *testing.T) {
		var out bytes.Buffer
		if err := run([]string{"-server", addr, "-tcp", "probe-1.ourtestdomain.nl", "TXT"}, &out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "site=FRA") {
			t.Errorf("TCP answer missing TXT record:\n%s", out.String())
		}
	})

	t.Run("chaos identity", func(t *testing.T) {
		var out bytes.Buffer
		if err := run([]string{"-server", addr, "-chaos", "hostname.bind"}, &out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "fra1.ourtestdomain.nl") {
			t.Errorf("CHAOS response missing identity:\n%s", out.String())
		}
	})

	t.Run("nxdomain", func(t *testing.T) {
		var out bytes.Buffer
		if err := run([]string{"-server", addr, "nosuch.ourtestdomain.nl", "TXT"}, &out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "NXDOMAIN") {
			t.Errorf("want NXDOMAIN status:\n%s", out.String())
		}
	})
}
