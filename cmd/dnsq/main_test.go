package main

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"

	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

// testZoneText includes a TXT record whose answer exceeds 512 bytes
// (three 200-byte strings) so a non-EDNS UDP query gets truncated.
var testZoneText = `
$ORIGIN ourtestdomain.nl.
$TTL 3600
@   IN SOA ns1 hostmaster 2017032301 7200 3600 604800 300
    IN NS ns1
ns1 IN A 192.0.2.1
probe-1 5 IN TXT "site=FRA"
big 5 IN TXT "` + strings.Repeat("a", 200) + `" "` + strings.Repeat("b", 200) + `" "` + strings.Repeat("c", 200) + `"
`

// startServer brings up a real UDP+TCP authoritative on a loopback
// port for end-to-end CLI queries.
func startServer(t *testing.T) string {
	t.Helper()
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	srv := authserver.NewServer(authserver.NewEngine(authserver.Config{
		Zones:    []*zone.Zone{z},
		Identity: "fra1.ourtestdomain.nl",
	}))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv.Addr().String()
}

func TestRunArgumentErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error, "" for errUsage
	}{
		{"no args", nil, ""},
		{"bad name", []string{"bad..name"}, "bad name"},
		{"bad type", []string{"probe-1.ourtestdomain.nl", "BOGUS"}, "bad type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fsOut := &bytes.Buffer{}
			err := run(tc.args, fsOut)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if tc.want == "" {
				if !errors.Is(err, errUsage) {
					t.Errorf("err = %v, want errUsage", err)
				}
				return
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	// An unknown flag surfaces as a parse error, not a panic or exit.
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Error("unknown flag should fail")
	}
}

// TestRunQueriesLiveServer drives the whole CLI path — flag parsing,
// wire packing, a real socket round trip, and response printing —
// against an in-process authoritative.
func TestRunQueriesLiveServer(t *testing.T) {
	addr := startServer(t)

	t.Run("udp TXT", func(t *testing.T) {
		var out bytes.Buffer
		if err := run([]string{"-server", addr, "probe-1.ourtestdomain.nl", "TXT"}, &out); err != nil {
			t.Fatal(err)
		}
		got := out.String()
		for _, want := range []string{"status: NOERROR", "aa", ";; ANSWER", "site=FRA"} {
			if !strings.Contains(got, want) {
				t.Errorf("output missing %q:\n%s", want, got)
			}
		}
	})

	t.Run("tcp TXT", func(t *testing.T) {
		var out bytes.Buffer
		if err := run([]string{"-server", addr, "-tcp", "probe-1.ourtestdomain.nl", "TXT"}, &out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "site=FRA") {
			t.Errorf("TCP answer missing TXT record:\n%s", out.String())
		}
	})

	t.Run("chaos identity", func(t *testing.T) {
		var out bytes.Buffer
		if err := run([]string{"-server", addr, "-chaos", "hostname.bind"}, &out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "fra1.ourtestdomain.nl") {
			t.Errorf("CHAOS response missing identity:\n%s", out.String())
		}
	})

	t.Run("nxdomain", func(t *testing.T) {
		var out bytes.Buffer
		if err := run([]string{"-server", addr, "nosuch.ourtestdomain.nl", "TXT"}, &out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "NXDOMAIN") {
			t.Errorf("want NXDOMAIN status:\n%s", out.String())
		}
	})
}

// TestTruncationFallsBackToTCP forces a truncated UDP response (>512B
// TXT answer, EDNS off) and checks dnsq retries over TCP and prints the
// whole answer, while -ignore-tc surfaces the truncated response as-is.
func TestTruncationFallsBackToTCP(t *testing.T) {
	addr := startServer(t)

	t.Run("retries over TCP", func(t *testing.T) {
		var out bytes.Buffer
		if err := run([]string{"-server", addr, "-edns=false", "big.ourtestdomain.nl", "TXT"}, &out); err != nil {
			t.Fatal(err)
		}
		got := out.String()
		if !strings.Contains(got, ";; truncated, retrying over TCP") {
			t.Errorf("output missing TCP retry notice:\n%s", got)
		}
		if !strings.Contains(got, strings.Repeat("c", 200)) {
			t.Errorf("TCP retry should carry the full TXT answer:\n%s", got)
		}
		if strings.Contains(got, " tc") {
			t.Errorf("final response should not be truncated:\n%s", got)
		}
	})

	t.Run("ignore-tc keeps the truncated response", func(t *testing.T) {
		var out bytes.Buffer
		if err := run([]string{"-server", addr, "-edns=false", "-ignore-tc", "big.ourtestdomain.nl", "TXT"}, &out); err != nil {
			t.Fatal(err)
		}
		got := out.String()
		if strings.Contains(got, "retrying over TCP") {
			t.Errorf("-ignore-tc must not retry:\n%s", got)
		}
		if !strings.Contains(got, " tc") {
			t.Errorf("truncated response should show the tc flag:\n%s", got)
		}
		if strings.Contains(got, strings.Repeat("c", 200)) {
			t.Errorf("truncated response should not carry the full answer:\n%s", got)
		}
	})
}

// TestStrayDatagramsAreSkipped runs dnsq against a fake server that
// answers with an ID-mismatched datagram before the real response; the
// stray must be skipped, not treated as a fatal mismatch.
func TestStrayDatagramsAreSkipped(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	go func() {
		buf := make([]byte, 65535)
		n, raddr, err := pc.ReadFrom(buf)
		if err != nil {
			return
		}
		q, err := dnswire.Unpack(buf[:n])
		if err != nil {
			return
		}
		resp, err := dnswire.NewResponse(q)
		if err != nil {
			return
		}
		// First a stray with a different ID, then the real answer.
		stray := *resp
		stray.ID = resp.ID + 1
		strayWire, _ := stray.Pack()
		pc.WriteTo(strayWire, raddr)
		resp.Answers = []dnswire.RR{{
			Name: q.Questions[0].Name, Class: dnswire.ClassINET, TTL: 5,
			Data: dnswire.TXT{Strings: []string{"real-answer"}},
		}}
		wire, _ := resp.Pack()
		pc.WriteTo(wire, raddr)
	}()

	var out bytes.Buffer
	err = run([]string{"-server", pc.LocalAddr().String(), "-timeout", "5s", "probe-1.ourtestdomain.nl", "TXT"}, &out)
	if err != nil {
		t.Fatalf("stray datagram should be skipped, got: %v", err)
	}
	if !strings.Contains(out.String(), "real-answer") {
		t.Errorf("missing the real answer:\n%s", out.String())
	}
}
