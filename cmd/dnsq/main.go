// Command dnsq is a dig-like DNS query client for exercising authd and
// resolvd over real sockets.
//
// Usage:
//
//	dnsq -server 127.0.0.1:5353 probe-1.ourtestdomain.nl TXT
//	dnsq -server 127.0.0.1:5353 -chaos hostname.bind
//	dnsq -server 127.0.0.1:5353 -tcp big.example.nl TXT
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"time"

	"ritw/internal/axfr"
	"ritw/internal/dnswire"
)

func main() {
	server := flag.String("server", "127.0.0.1:53", "server address (host:port)")
	useTCP := flag.Bool("tcp", false, "query over TCP instead of UDP")
	doAXFR := flag.Bool("axfr", false, "perform a full zone transfer of <name> and print the zone")
	chaos := flag.Bool("chaos", false, "send a CHAOS-class TXT query (hostname.bind style)")
	recurse := flag.Bool("rd", true, "set the recursion-desired flag")
	timeout := flag.Duration("timeout", 3*time.Second, "query timeout")
	edns := flag.Bool("edns", true, "advertise EDNS0")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: dnsq [flags] <name> [type]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	name, err := dnswire.ParseName(flag.Arg(0))
	if err != nil {
		fatal("bad name: %v", err)
	}
	if *doAXFR {
		z, err := axfr.Fetch(*server, name, *timeout)
		if err != nil {
			fatal("axfr: %v", err)
		}
		fmt.Printf(";; transferred %d records\n%s", z.NumRecords(), z.String())
		return
	}
	qtype := dnswire.TypeTXT
	if flag.NArg() >= 2 {
		qtype, err = dnswire.ParseType(flag.Arg(1))
		if err != nil {
			fatal("bad type: %v", err)
		}
	}

	id := uint16(rand.New(rand.NewSource(time.Now().UnixNano())).Intn(1 << 16))
	var q *dnswire.Message
	if *chaos {
		q = dnswire.NewChaosQuery(id, name)
	} else {
		q = dnswire.NewQuery(id, name, qtype)
		q.RecursionDesired = *recurse
		if *edns {
			q.SetEDNS0(dnswire.DefaultEDNSSize, false)
		}
	}
	wire, err := q.Pack()
	if err != nil {
		fatal("pack: %v", err)
	}

	start := time.Now()
	var respWire []byte
	if *useTCP {
		respWire, err = queryTCP(*server, wire, *timeout)
	} else {
		respWire, err = queryUDP(*server, wire, *timeout)
	}
	if err != nil {
		fatal("query: %v", err)
	}
	rtt := time.Since(start)

	resp, err := dnswire.Unpack(respWire)
	if err != nil {
		fatal("bad response: %v", err)
	}
	if resp.ID != id {
		fatal("response ID %d does not match query %d", resp.ID, id)
	}
	printResponse(resp, rtt, len(respWire))
}

func queryUDP(server string, wire []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.Dial("udp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

func queryTCP(server string, wire []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", server, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	framed := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(framed, uint16(len(wire)))
	copy(framed[2:], wire)
	if _, err := conn.Write(framed); err != nil {
		return nil, err
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, err
	}
	resp := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(conn, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

func printResponse(resp *dnswire.Message, rtt time.Duration, size int) {
	fmt.Printf(";; status: %s, id: %d, flags:", resp.RCode, resp.ID)
	for _, f := range []struct {
		on   bool
		name string
	}{
		{resp.Response, "qr"}, {resp.Authoritative, "aa"}, {resp.Truncated, "tc"},
		{resp.RecursionDesired, "rd"}, {resp.RecursionAvailable, "ra"},
	} {
		if f.on {
			fmt.Printf(" %s", f.name)
		}
	}
	fmt.Printf("\n;; query time: %v, size: %d bytes\n", rtt.Round(time.Microsecond), size)
	if q, ok := resp.Question(); ok {
		fmt.Printf("\n;; QUESTION\n;%s\n", q)
	}
	sections := []struct {
		name string
		rrs  []dnswire.RR
	}{
		{"ANSWER", resp.Answers}, {"AUTHORITY", resp.Authority}, {"ADDITIONAL", resp.Additional},
	}
	for _, sec := range sections {
		if len(sec.rrs) == 0 {
			continue
		}
		fmt.Printf("\n;; %s\n", sec.name)
		for _, rr := range sec.rrs {
			fmt.Println(rr.String())
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dnsq: "+format+"\n", args...)
	os.Exit(1)
}
