// Command dnsq is a dig-like DNS query client for exercising authd and
// resolvd over real sockets.
//
// Usage:
//
//	dnsq -server 127.0.0.1:5353 probe-1.ourtestdomain.nl TXT
//	dnsq -server 127.0.0.1:5353 -chaos hostname.bind
//	dnsq -server 127.0.0.1:5353 -tcp big.example.nl TXT
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"time"

	"ritw/internal/axfr"
	"ritw/internal/dnswire"
)

// errUsage marks argument errors: the flag set already printed the
// usage text, so main only needs the exit status.
var errUsage = errors.New("dnsq: usage")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp), errors.Is(err, errUsage):
		os.Exit(2)
	default:
		fmt.Fprintf(os.Stderr, "dnsq: %v\n", err)
		os.Exit(1)
	}
}

// run parses args and performs one query, printing the response to
// stdout. Split from main so tests can drive the full CLI path against
// an in-process server.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dnsq", flag.ContinueOnError)
	server := fs.String("server", "127.0.0.1:53", "server address (host:port)")
	useTCP := fs.Bool("tcp", false, "query over TCP instead of UDP")
	doAXFR := fs.Bool("axfr", false, "perform a full zone transfer of <name> and print the zone")
	chaos := fs.Bool("chaos", false, "send a CHAOS-class TXT query (hostname.bind style)")
	recurse := fs.Bool("rd", true, "set the recursion-desired flag")
	timeout := fs.Duration("timeout", 3*time.Second, "query timeout")
	edns := fs.Bool("edns", true, "advertise EDNS0")
	ignoreTC := fs.Bool("ignore-tc", false, "print a truncated UDP response as-is instead of retrying over TCP")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if fs.NArg() < 1 {
		fmt.Fprintln(fs.Output(), "usage: dnsq [flags] <name> [type]")
		fs.PrintDefaults()
		return errUsage
	}
	name, err := dnswire.ParseName(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("bad name: %w", err)
	}
	if *doAXFR {
		z, err := axfr.Fetch(*server, name, *timeout)
		if err != nil {
			return fmt.Errorf("axfr: %w", err)
		}
		fmt.Fprintf(stdout, ";; transferred %d records\n%s", z.NumRecords(), z.String())
		return nil
	}
	qtype := dnswire.TypeTXT
	if fs.NArg() >= 2 {
		qtype, err = dnswire.ParseType(fs.Arg(1))
		if err != nil {
			return fmt.Errorf("bad type: %w", err)
		}
	}

	id := uint16(rand.New(rand.NewSource(time.Now().UnixNano())).Intn(1 << 16))
	var q *dnswire.Message
	if *chaos {
		q = dnswire.NewChaosQuery(id, name)
	} else {
		q = dnswire.NewQuery(id, name, qtype)
		q.RecursionDesired = *recurse
		if *edns {
			q.SetEDNS0(dnswire.DefaultEDNSSize, false)
		}
	}
	wire, err := q.Pack()
	if err != nil {
		return fmt.Errorf("pack: %w", err)
	}

	start := time.Now()
	var respWire []byte
	if *useTCP {
		respWire, err = queryTCP(*server, wire, *timeout)
	} else {
		respWire, err = queryUDP(*server, wire, *timeout, id)
	}
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}

	resp, err := dnswire.Unpack(respWire)
	if err != nil {
		return fmt.Errorf("bad response: %w", err)
	}
	if resp.ID != id {
		return fmt.Errorf("response ID %d does not match query %d", resp.ID, id)
	}
	// A truncated UDP response means the answer did not fit the
	// datagram; RFC 7766 says to retry the same question over TCP,
	// like dig does, unless the caller asked to see the truncation.
	if resp.Truncated && !*useTCP && !*ignoreTC {
		fmt.Fprintln(stdout, ";; truncated, retrying over TCP")
		respWire, err = queryTCP(*server, wire, *timeout)
		if err != nil {
			return fmt.Errorf("tcp retry: %w", err)
		}
		resp, err = dnswire.Unpack(respWire)
		if err != nil {
			return fmt.Errorf("bad tcp response: %w", err)
		}
		if resp.ID != id {
			return fmt.Errorf("tcp response ID %d does not match query %d", resp.ID, id)
		}
	}
	rtt := time.Since(start)
	printResponse(stdout, resp, rtt, len(respWire))
	return nil
}

// queryUDP sends one datagram and reads until a response carrying
// wantID arrives or the deadline passes. Stray datagrams — late
// responses to an earlier client of the same ephemeral port, scans,
// spoofed junk — are skipped rather than treated as fatal: an
// ID-mismatched packet says nothing about whether the real answer is
// still coming.
func queryUDP(server string, wire []byte, timeout time.Duration, wantID uint16) ([]byte, error) {
	conn, err := net.Dial("udp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 65535)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		if n < 2 || binary.BigEndian.Uint16(buf[:2]) != wantID {
			continue
		}
		return buf[:n], nil
	}
}

func queryTCP(server string, wire []byte, timeout time.Duration) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", server, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	framed := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(framed, uint16(len(wire)))
	copy(framed[2:], wire)
	if _, err := conn.Write(framed); err != nil {
		return nil, err
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, err
	}
	resp := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(conn, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

func printResponse(w io.Writer, resp *dnswire.Message, rtt time.Duration, size int) {
	fmt.Fprintf(w, ";; status: %s, id: %d, flags:", resp.RCode, resp.ID)
	for _, f := range []struct {
		on   bool
		name string
	}{
		{resp.Response, "qr"}, {resp.Authoritative, "aa"}, {resp.Truncated, "tc"},
		{resp.RecursionDesired, "rd"}, {resp.RecursionAvailable, "ra"},
	} {
		if f.on {
			fmt.Fprintf(w, " %s", f.name)
		}
	}
	fmt.Fprintf(w, "\n;; query time: %v, size: %d bytes\n", rtt.Round(time.Microsecond), size)
	if q, ok := resp.Question(); ok {
		fmt.Fprintf(w, "\n;; QUESTION\n;%s\n", q)
	}
	sections := []struct {
		name string
		rrs  []dnswire.RR
	}{
		{"ANSWER", resp.Answers}, {"AUTHORITY", resp.Authority}, {"ADDITIONAL", resp.Additional},
	}
	for _, sec := range sections {
		if len(sec.rrs) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n;; %s\n", sec.name)
		for _, rr := range sec.rrs {
			fmt.Fprintln(w, rr.String())
		}
	}
}
