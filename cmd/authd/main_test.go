package main

import (
	"net/netip"
	"testing"
)

func TestParseAXFRAllow(t *testing.T) {
	allow, err := parseAXFRAllow("192.0.2.0/24, 2001:db8::/32,10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]bool{
		"192.0.2.55":      true,
		"192.0.3.1":       false,
		"2001:db8::1":     true,
		"2001:db9::1":     false,
		"10.0.0.1":        true,
		"10.0.0.2":        false,
		"::ffff:10.0.0.1": true, // 4-in-6 mapped source matches its v4 prefix
	}
	for addr, want := range cases {
		if got := allow(netip.MustParseAddr(addr)); got != want {
			t.Errorf("allow(%s) = %v, want %v", addr, got, want)
		}
	}

	for _, bad := range []string{"", "not-an-addr", "10.0.0.0/33"} {
		if _, err := parseAXFRAllow(bad); err == nil {
			t.Errorf("parseAXFRAllow(%q) should fail", bad)
		}
	}
}
