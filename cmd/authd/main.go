// Command authd runs the authoritative DNS server on real UDP and TCP
// sockets — the role NSD played on the paper's AWS deployments.
//
// Serve a zone file:
//
//	authd -addr 127.0.0.1:5300 -zone ./zones/ourtestdomain.nl.zone -identity fra1
//
// Or serve the built-in measurement zone for a site (the per-site TXT
// identity the paper's experiment relies on):
//
//	authd -addr 127.0.0.1:5300 -combo 2C -site FRA
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/measure"
	"ritw/internal/zone"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5300", "listen address (UDP and TCP)")
	zoneFile := flag.String("zone", "", "zone file to serve (master format)")
	origin := flag.String("origin", "", "default origin for the zone file")
	identity := flag.String("identity", "", "CHAOS hostname.bind identity")
	comboID := flag.String("combo", "", "serve the built-in measurement zone for this Table-1 combination")
	site := flag.String("site", "", "site code for the built-in zone (with -combo)")
	rrlRate := flag.Float64("rrl", 0, "response rate limit per source in responses/sec (0 = off)")
	verbose := flag.Bool("v", false, "log every query")
	flag.Parse()

	var zones []*zone.Zone
	switch {
	case *zoneFile != "":
		f, err := os.Open(*zoneFile)
		if err != nil {
			log.Fatalf("authd: %v", err)
		}
		def := dnswire.Root
		if *origin != "" {
			n, err := dnswire.ParseName(*origin)
			if err != nil {
				log.Fatalf("authd: bad origin: %v", err)
			}
			def = n
		}
		z, err := zone.Parse(f, def)
		f.Close()
		if err != nil {
			log.Fatalf("authd: parsing %s: %v", *zoneFile, err)
		}
		zones = append(zones, z)
	case *comboID != "" && *site != "":
		combo, err := measure.CombinationByID(*comboID)
		if err != nil {
			log.Fatalf("authd: %v", err)
		}
		z, err := zone.ParseString(measure.ZoneText(combo, *site), dnswire.Root)
		if err != nil {
			log.Fatalf("authd: built-in zone: %v", err)
		}
		zones = append(zones, z)
		if *identity == "" {
			*identity = *site
		}
	default:
		fmt.Fprintln(os.Stderr, "authd: need -zone FILE or -combo ID -site CODE")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := authserver.Config{Zones: zones, Identity: *identity}
	if *rrlRate > 0 {
		start := time.Now()
		cfg.RRL = &authserver.RRLConfig{RatePerSec: *rrlRate, SlipRatio: 2}
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	if *verbose {
		cfg.OnQuery = func(qi authserver.QueryInfo) {
			log.Printf("query from %s: %s -> %s", qi.Src, qi.Question, qi.RCode)
		}
	}
	srv := authserver.NewServer(authserver.NewEngine(cfg))
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("authd: %v", err)
	}
	for _, z := range zones {
		log.Printf("serving %s (%d records) on %s", z.Origin(), z.NumRecords(), srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	srv.Close()
	st := srv.Engine.Stats()
	log.Printf("served %d queries (%d CHAOS, %d dropped)", st.Queries, st.Chaos, st.Dropped)
}
