// Command authd runs the authoritative DNS server on real UDP and TCP
// sockets — the role NSD played on the paper's AWS deployments.
//
// Serve a zone file:
//
//	authd -addr 127.0.0.1:5300 -zone ./zones/ourtestdomain.nl.zone -identity fra1
//
// Or serve the built-in measurement zone for a site (the per-site TXT
// identity the paper's experiment relies on):
//
//	authd -addr 127.0.0.1:5300 -combo 2C -site FRA
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/measure"
	"ritw/internal/obs"
	"ritw/internal/zone"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5300", "listen address (UDP and TCP)")
	zoneFile := flag.String("zone", "", "zone file to serve (master format)")
	origin := flag.String("origin", "", "default origin for the zone file")
	identity := flag.String("identity", "", "CHAOS hostname.bind identity")
	comboID := flag.String("combo", "", "serve the built-in measurement zone for this Table-1 combination")
	site := flag.String("site", "", "site code for the built-in zone (with -combo)")
	rrlRate := flag.Float64("rrl", 0, "response rate limit per source in responses/sec (0 = off)")
	udpWorkers := flag.Int("udp-workers", 0, "concurrent UDP read loops (0 = all cores)")
	reusePort := flag.Bool("reuseport", false, "shard the UDP port across one SO_REUSEPORT socket per worker (Linux; ignored elsewhere)")
	axfrAllow := flag.String("axfr-allow", "", "comma-separated prefixes allowed to AXFR (empty = allow all)")
	metricsAddr := flag.String("metrics-addr", "", "serve a text metrics endpoint on this address (empty = off)")
	verbose := flag.Bool("v", false, "log every query")
	flag.Parse()

	var zones []*zone.Zone
	switch {
	case *zoneFile != "":
		f, err := os.Open(*zoneFile)
		if err != nil {
			log.Fatalf("authd: %v", err)
		}
		def := dnswire.Root
		if *origin != "" {
			n, err := dnswire.ParseName(*origin)
			if err != nil {
				log.Fatalf("authd: bad origin: %v", err)
			}
			def = n
		}
		z, err := zone.Parse(f, def)
		f.Close()
		if err != nil {
			log.Fatalf("authd: parsing %s: %v", *zoneFile, err)
		}
		zones = append(zones, z)
	case *comboID != "" && *site != "":
		combo, err := measure.CombinationByID(*comboID)
		if err != nil {
			log.Fatalf("authd: %v", err)
		}
		z, err := zone.ParseString(measure.ZoneText(combo, *site), dnswire.Root)
		if err != nil {
			log.Fatalf("authd: built-in zone: %v", err)
		}
		zones = append(zones, z)
		if *identity == "" {
			*identity = *site
		}
	default:
		fmt.Fprintln(os.Stderr, "authd: need -zone FILE or -combo ID -site CODE")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := authserver.Config{Zones: zones, Identity: *identity}
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		cfg.Metrics = reg
		go func() {
			log.Printf("metrics on http://%s/metrics", *metricsAddr)
			log.Printf("authd: metrics endpoint: %v", obs.ListenAndServe(*metricsAddr, reg))
		}()
	}
	if *rrlRate > 0 {
		start := time.Now()
		cfg.RRL = &authserver.RRLConfig{RatePerSec: *rrlRate, SlipRatio: 2}
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	if *verbose {
		cfg.OnQuery = func(qi authserver.QueryInfo) {
			log.Printf("query from %s: %s -> %s", qi.Src, qi.Question, qi.RCode)
		}
	}
	srv := authserver.NewServer(authserver.NewEngine(cfg))
	srv.UDPWorkers = *udpWorkers
	srv.UDPReusePort = *reusePort
	if *axfrAllow != "" {
		allow, err := parseAXFRAllow(*axfrAllow)
		if err != nil {
			log.Fatalf("authd: -axfr-allow: %v", err)
		}
		srv.AXFRAllow = allow
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.ListenAndServeContext(ctx, *addr); err != nil {
		log.Fatalf("authd: %v", err)
	}
	for _, z := range zones {
		log.Printf("serving %s (%d records) on %s", z.Origin(), z.NumRecords(), srv.Addr())
	}

	<-ctx.Done()
	log.Printf("shutting down")
	srv.Close() // idempotent with the context shutdown; waits for handlers
	st := srv.Engine.Stats()
	log.Printf("served %d queries (%d CHAOS, %d dropped)", st.Queries, st.Chaos, st.Dropped)
}

// parseAXFRAllow turns "192.0.2.0/24,2001:db8::/32,10.0.0.1" into a
// source predicate; a bare address means that one host.
func parseAXFRAllow(s string) (func(src netip.Addr) bool, error) {
	var prefixes []netip.Prefix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "/") {
			a, err := netip.ParseAddr(part)
			if err != nil {
				return nil, err
			}
			prefixes = append(prefixes, netip.PrefixFrom(a, a.BitLen()))
			continue
		}
		p, err := netip.ParsePrefix(part)
		if err != nil {
			return nil, err
		}
		prefixes = append(prefixes, p.Masked())
	}
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("no prefixes in %q", s)
	}
	return func(src netip.Addr) bool {
		for _, p := range prefixes {
			if p.Contains(src.Unmap()) {
				return true
			}
		}
		return false
	}, nil
}
