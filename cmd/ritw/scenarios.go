package main

import (
	"context"
	"flag"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ritw/internal/analysis"
	"ritw/internal/core"
	"ritw/internal/faults"
	"ritw/internal/measure"
	"ritw/internal/resolver"
)

var (
	faultSpecs faultFlag
	noBackoff  = flag.Bool("no-backoff", false, "scenarios: disable the resolvers' hold-down backoff")
)

func init() {
	flag.Var(&faultSpecs, "fault",
		"scenarios: fault spec kind:site:start-end[:k=v,...] where kind is down|flap|loss|slow|partition (repeatable; replaces the preset battery)")
}

// faultFlag collects repeatable -fault specs.
type faultFlag []string

func (f *faultFlag) String() string { return strings.Join(*f, ";") }

func (f *faultFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// cmdScenarios runs the fault-injection battery: either the preset
// scenarios below (2B with outages, flap, overlapping failures, a
// partial partition, a degraded path, and a no-backoff contrast), or a
// single custom scenario assembled from repeated -fault flags on the
// -combo deployment. Every scenario runs at the same seed, so the
// healthy traffic is identical across them and the differences are the
// faults'. In stream mode the impact analysis consumes records
// incrementally (exact unless -maxmem caps the sketches).
func cmdScenarios(ctx context.Context, scale core.Scale) error {
	scenarios, err := scenarioList()
	if err != nil {
		return err
	}
	byName := make(map[string]core.Scenario, len(scenarios))
	for _, sc := range scenarios {
		byName[sc.Name] = sc
	}

	opts := batchOpts(scale)
	var mu sync.Mutex
	aggs := make(map[string]*analysis.FaultAggregator, len(scenarios))
	if streaming() {
		opts = append(opts, core.WithSink(func(key string) measure.Sink {
			agg := analysis.NewFaultAggregator(scenarioWindows(byName[key]), sketchCap(), *seed)
			mu.Lock()
			aggs[key] = agg
			mu.Unlock()
			return agg
		}), core.WithStreamOnly(true))
	}
	dss, err := core.RunScenariosContext(ctx, scenarios, opts...)
	if err != nil {
		return err
	}

	for i, sc := range scenarios {
		ds := dss[i]
		fmt.Printf("-- scenario %s (combo %s, %d probes)\n", sc.Name, ds.ComboID, ds.ActiveProbes)
		if sc.Faults.Empty() {
			fmt.Println("   no faults (healthy baseline)")
		}
		for _, line := range sc.Faults.Describe() {
			fmt.Println("   " + line)
		}
		if sc.Backoff != nil && sc.Backoff.Disabled {
			fmt.Println("   resolver hold-down backoff disabled")
		}
		var impacts []analysis.FaultImpact
		if agg := aggs[sc.Name]; agg != nil {
			impacts = agg.Impacts()
		} else {
			impacts = analysis.FaultImpacts(ds, scenarioWindows(sc))
		}
		for _, fi := range impacts {
			for _, line := range analysis.FormatImpact(fi, ds.Sites) {
				fmt.Println(line)
			}
		}
		printFaultReport(ds)
		fmt.Println()
	}
	return nil
}

// scenarioWindows picks the analysis windows for a scenario: one per
// configured fault, or a whole-run window for the healthy baseline.
func scenarioWindows(sc core.Scenario) []analysis.FaultWindow {
	if sc.Faults.Empty() {
		return []analysis.FaultWindow{{Label: "whole run", Start: 0, End: 2 * time.Hour}}
	}
	return analysis.WindowsFromSchedule(sc.Faults)
}

// printFaultReport renders the injector's post-run account: the
// per-site cut timeline is the direct view of backoff shedding load
// off a dead site (geometrically decaying buckets) versus the
// full-rate retry plateau without it.
func printFaultReport(ds *measure.Dataset) {
	r := ds.Faults
	if r == nil {
		return
	}
	fmt.Printf("  fault drops: %d packets cut, %d delayed (timeline bucket %v)\n",
		r.Drops, r.Delayed, r.Bucket)
	sites := make([]string, 0, len(r.Cut))
	for site := range r.Cut {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		var b strings.Builder
		fmt.Fprintf(&b, "  cut %s:", site)
		for _, n := range r.Cut[site] {
			fmt.Fprintf(&b, " %d", n)
		}
		fmt.Println(b.String())
	}
}

// scenarioList resolves what to run: the preset battery, or one custom
// scenario assembled from -fault flags.
func scenarioList() ([]core.Scenario, error) {
	var backoff *resolver.BackoffConfig
	if *noBackoff {
		backoff = &resolver.BackoffConfig{Disabled: true}
	}
	if len(faultSpecs) > 0 {
		sched := &faults.Schedule{}
		for _, spec := range faultSpecs {
			if err := parseFaultSpec(sched, spec); err != nil {
				return nil, err
			}
		}
		return []core.Scenario{
			{Name: "custom", ComboID: *comboID, Faults: sched, Backoff: backoff},
		}, nil
	}
	// The preset battery runs on 2B (DUB + FRA): two sites keep the
	// failover story readable, and the overlap scenario can still take
	// both down at once.
	outage := &faults.Schedule{
		Outages: []faults.Outage{{Site: "FRA", Start: 20 * time.Minute, End: 40 * time.Minute}},
	}
	presets := []core.Scenario{
		{Name: "baseline", ComboID: "2B", Backoff: backoff},
		{Name: "outage", ComboID: "2B", Faults: outage, Backoff: backoff},
		{Name: "flap", ComboID: "2B", Faults: &faults.Schedule{
			Flaps: []faults.Flap{{
				Site: "FRA", Start: 20 * time.Minute, End: 40 * time.Minute,
				Period: 4 * time.Minute, DownFrac: 0.5,
			}},
		}, Backoff: backoff},
		{Name: "overlap", ComboID: "2B", Faults: &faults.Schedule{
			Outages: []faults.Outage{
				{Site: "FRA", Start: 15 * time.Minute, End: 35 * time.Minute},
				{Site: "DUB", Start: 30 * time.Minute, End: 45 * time.Minute},
			},
		}, Backoff: backoff},
		{Name: "partition", ComboID: "2B", Faults: &faults.Schedule{
			Partitions: []faults.Partition{{
				Site: "FRA", Start: 20 * time.Minute, End: 40 * time.Minute, Fraction: 0.5,
			}},
		}, Backoff: backoff},
		{Name: "degraded", ComboID: "2B", Faults: &faults.Schedule{
			Bursts: []faults.LossBurst{{
				Site: "FRA", Start: 20 * time.Minute, End: 40 * time.Minute, Rate: 0.25,
			}},
			Slowdowns: []faults.Slowdown{{
				Site: "FRA", Start: 20 * time.Minute, End: 40 * time.Minute,
				AddRTT: 150 * time.Millisecond,
			}},
		}, Backoff: backoff},
		// The NXNSAttack contrast: the same outage with hold-down
		// disabled, so the cut timelines of "outage" and "no-backoff"
		// show geometric decay versus the full-rate retry plateau.
		{Name: "no-backoff", ComboID: "2B", Faults: outage,
			Backoff: &resolver.BackoffConfig{Disabled: true}},
	}
	return presets, nil
}

// parseFaultSpec parses one -fault value into the schedule. Format:
// kind:site:start-end[:k=v,...], e.g. down:FRA:20m-40m or
// flap:GRU:10m-50m:period=4m,down=0.5 or loss:FRA:0-30m:rate=0.2,frac=0.5
// or slow:SYD:0-1h:add=200ms,factor=2 or partition:FRA:20m-40m:frac=0.5.
func parseFaultSpec(s *faults.Schedule, spec string) error {
	parts := strings.SplitN(spec, ":", 4)
	if len(parts) < 3 {
		return fmt.Errorf("bad -fault %q (want kind:site:start-end[:params])", spec)
	}
	kind, site := parts[0], strings.ToUpper(parts[1])
	lo, hi, ok := strings.Cut(parts[2], "-")
	if !ok {
		return fmt.Errorf("bad -fault window %q (want start-end)", parts[2])
	}
	start, err := time.ParseDuration(lo)
	if err != nil {
		return fmt.Errorf("bad -fault start %q: %v", lo, err)
	}
	end, err := time.ParseDuration(hi)
	if err != nil {
		return fmt.Errorf("bad -fault end %q: %v", hi, err)
	}
	params := map[string]string{}
	if len(parts) == 4 {
		for _, kv := range strings.Split(parts[3], ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bad -fault param %q (want k=v)", kv)
			}
			params[k] = v
		}
	}
	getDur := func(key string, def time.Duration) (time.Duration, error) {
		v, ok := params[key]
		if !ok {
			return def, nil
		}
		return time.ParseDuration(v)
	}
	getFloat := func(key string, def float64) (float64, error) {
		v, ok := params[key]
		if !ok {
			return def, nil
		}
		return strconv.ParseFloat(v, 64)
	}
	switch kind {
	case "down":
		s.Outages = append(s.Outages, faults.Outage{Site: site, Start: start, End: end})
	case "flap":
		period, err := getDur("period", 5*time.Minute)
		if err != nil {
			return err
		}
		down, err := getFloat("down", 0.5)
		if err != nil {
			return err
		}
		s.Flaps = append(s.Flaps, faults.Flap{
			Site: site, Start: start, End: end, Period: period, DownFrac: down,
		})
	case "loss":
		rate, err := getFloat("rate", 0.2)
		if err != nil {
			return err
		}
		frac, err := getFloat("frac", 0)
		if err != nil {
			return err
		}
		s.Bursts = append(s.Bursts, faults.LossBurst{
			Site: site, Start: start, End: end, Rate: rate, Fraction: frac,
		})
	case "slow":
		add, err := getDur("add", 200*time.Millisecond)
		if err != nil {
			return err
		}
		factor, err := getFloat("factor", 1)
		if err != nil {
			return err
		}
		frac, err := getFloat("frac", 0)
		if err != nil {
			return err
		}
		s.Slowdowns = append(s.Slowdowns, faults.Slowdown{
			Site: site, Start: start, End: end,
			AddRTT: add, Factor: factor, Fraction: frac,
		})
	case "partition":
		frac, err := getFloat("frac", 0.5)
		if err != nil {
			return err
		}
		s.Partitions = append(s.Partitions, faults.Partition{
			Site: site, Start: start, End: end, Fraction: frac,
		})
	default:
		return fmt.Errorf("unknown -fault kind %q (want down|flap|loss|slow|partition)", kind)
	}
	return nil
}
