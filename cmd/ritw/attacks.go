package main

import (
	"context"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"ritw/internal/analysis"
	"ritw/internal/attacks"
	"ritw/internal/core"
	"ritw/internal/measure"
)

var (
	attackSpecs   attackFlag
	maxFetchFlag  = flag.Int("maxfetch", 0, "attacks: cap glueless NS-target fetches per client query (NXNSAttack MaxFetch defense; 0 = undefended)")
	noNegCache    = flag.Bool("no-negcache", false, "attacks: disable RFC 2308 negative caching in the resolvers")
	attackBaseRun = flag.Bool("attack-baseline", false, "attacks: with -attack, also run the attack-free baseline at the same seed for contrast")
)

func init() {
	flag.Var(&attackSpecs, "attack",
		"attacks: campaign spec kind:start-end[:k=v,...] where kind is nxns|flood|reflect (repeatable; replaces the preset defense matrix)")
}

// attackFlag collects repeatable -attack specs.
type attackFlag []string

func (f *attackFlag) String() string { return strings.Join(*f, ";") }

func (f *attackFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// cmdAttacks runs the adversarial-traffic battery: either the preset
// defense matrix below (NXNSAttack with and without MaxFetch, water
// torture with and without negative caching, spoofed-source
// reflection), or a single custom scenario assembled from repeated
// -attack flags plus the -maxfetch/-no-negcache defense knobs on the
// -combo deployment. Every scenario runs at the same seed, and attack
// campaigns compile on their own keyed stream, so the benign traffic
// is byte-identical across the whole matrix: differences between rows
// are the attacks' and the defenses' alone. Output per scenario is the
// campaign schedule, the attack ledger (bots, attacker packets in,
// victim packets out, amplification factors), and the benign collateral
// impact per campaign window (before/during/after failure rate and
// median RTT, reusing the fault-impact tables).
func cmdAttacks(ctx context.Context, scale core.Scale) error {
	scenarios, err := attackScenarioList()
	if err != nil {
		return err
	}
	byName := make(map[string]core.Scenario, len(scenarios))
	for _, sc := range scenarios {
		byName[sc.Name] = sc
	}

	opts := batchOpts(scale)
	var mu sync.Mutex
	aggs := make(map[string]*analysis.FaultAggregator, len(scenarios))
	if streaming() {
		opts = append(opts, core.WithSink(func(key string) measure.Sink {
			agg := analysis.NewFaultAggregator(attackWindows(byName[key]), sketchCap(), *seed)
			mu.Lock()
			aggs[key] = agg
			mu.Unlock()
			return agg
		}), core.WithStreamOnly(true))
	}
	dss, err := core.RunScenariosContext(ctx, scenarios, opts...)
	if err != nil {
		return err
	}

	for i, sc := range scenarios {
		ds := dss[i]
		fmt.Printf("-- attack %s (combo %s, %d probes)\n", sc.Name, ds.ComboID, ds.ActiveProbes)
		fmt.Println("   defense: " + sc.Defense.Describe())
		if sc.Attacks.Empty() {
			fmt.Println("   no attack traffic (benign baseline)")
		}
		for _, line := range sc.Attacks.Describe() {
			fmt.Println("   " + line)
		}
		for _, line := range analysis.FormatAttackReport(ds.Attacks) {
			fmt.Println(line)
		}
		var impacts []analysis.FaultImpact
		if agg := aggs[sc.Name]; agg != nil {
			impacts = agg.Impacts()
		} else {
			impacts = analysis.FaultImpacts(ds, attackWindows(sc))
		}
		for _, fi := range impacts {
			for _, line := range analysis.FormatImpact(fi, ds.Sites) {
				fmt.Println(line)
			}
		}
		fmt.Println()
	}
	return nil
}

// attackWindows picks the collateral-damage analysis windows for a
// scenario: one per attack campaign, or a whole-run window for the
// benign baseline.
func attackWindows(sc core.Scenario) []analysis.FaultWindow {
	if sc.Attacks.Empty() {
		return []analysis.FaultWindow{{Label: "whole run", Start: 0, End: 2 * time.Hour}}
	}
	return analysis.WindowsFromAttacks(sc.Attacks)
}

// attackScenarioList resolves what to run: the preset defense matrix,
// or a custom scenario assembled from -attack flags and the defense
// knobs.
func attackScenarioList() ([]core.Scenario, error) {
	defense := attacks.Defenses{MaxFetch: *maxFetchFlag, NoNegativeCache: *noNegCache}
	if len(attackSpecs) > 0 {
		sched := &attacks.Schedule{}
		for _, spec := range attackSpecs {
			if err := parseAttackSpec(sched, spec); err != nil {
				return nil, err
			}
		}
		scs := []core.Scenario{
			{Name: "custom", ComboID: *comboID, Attacks: sched, Defense: defense},
		}
		if *attackBaseRun {
			scs = append([]core.Scenario{
				{Name: "baseline", ComboID: *comboID, Defense: defense},
			}, scs...)
		}
		return scs, nil
	}
	// The preset matrix runs on 2B (DUB + FRA), like the fault battery:
	// the same campaign is paired with its defense so each contrast is
	// one row apart. Windows sit mid-run so every impact table has real
	// before/during/after phases.
	nxns := &attacks.Schedule{
		NXNS: []attacks.NXNS{{
			Start: 20 * time.Minute, End: 40 * time.Minute,
			Interval: 10 * time.Second, Fraction: 0.2, Fanout: 10,
		}},
	}
	flood := &attacks.Schedule{
		Floods: []attacks.Flood{{
			Start: 20 * time.Minute, End: 40 * time.Minute,
			Interval: 5 * time.Second, Fraction: 0.3, Names: 40,
		}},
	}
	reflect := &attacks.Schedule{
		Reflections: []attacks.Reflection{{
			Start: 20 * time.Minute, End: 40 * time.Minute,
			Interval: 5 * time.Second, Fraction: 0.5,
		}},
	}
	return []core.Scenario{
		{Name: "baseline", ComboID: "2B"},
		{Name: "nxns-open", ComboID: "2B", Attacks: nxns},
		{Name: "nxns-maxfetch", ComboID: "2B", Attacks: nxns,
			Defense: attacks.Defenses{MaxFetch: 2}},
		{Name: "flood", ComboID: "2B", Attacks: flood},
		{Name: "flood-nonegcache", ComboID: "2B", Attacks: flood,
			Defense: attacks.Defenses{NoNegativeCache: true}},
		{Name: "reflect", ComboID: "2B", Attacks: reflect},
	}, nil
}

// parseAttackSpec parses one -attack value into the schedule. Format:
// kind:start-end[:k=v,...], e.g. nxns:20m-40m:interval=10s,frac=0.2,fanout=10
// or flood:20m-40m:interval=5s,frac=0.3,names=40 or
// reflect:20m-40m:interval=5s,frac=0.5.
func parseAttackSpec(s *attacks.Schedule, spec string) error {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) < 2 {
		return fmt.Errorf("bad -attack %q (want kind:start-end[:params])", spec)
	}
	kind := parts[0]
	lo, hi, ok := strings.Cut(parts[1], "-")
	if !ok {
		return fmt.Errorf("bad -attack window %q (want start-end)", parts[1])
	}
	start, err := time.ParseDuration(lo)
	if err != nil {
		return fmt.Errorf("bad -attack start %q: %v", lo, err)
	}
	end, err := time.ParseDuration(hi)
	if err != nil {
		return fmt.Errorf("bad -attack end %q: %v", hi, err)
	}
	params := map[string]string{}
	if len(parts) == 3 {
		for _, kv := range strings.Split(parts[2], ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bad -attack param %q (want k=v)", kv)
			}
			params[k] = v
		}
	}
	getDur := func(key string, def time.Duration) (time.Duration, error) {
		v, ok := params[key]
		if !ok {
			return def, nil
		}
		return time.ParseDuration(v)
	}
	getFloat := func(key string, def float64) (float64, error) {
		v, ok := params[key]
		if !ok {
			return def, nil
		}
		return strconv.ParseFloat(v, 64)
	}
	getInt := func(key string, def int) (int, error) {
		v, ok := params[key]
		if !ok {
			return def, nil
		}
		return strconv.Atoi(v)
	}
	interval, err := getDur("interval", 10*time.Second)
	if err != nil {
		return err
	}
	frac, err := getFloat("frac", 0.2)
	if err != nil {
		return err
	}
	switch kind {
	case "nxns":
		fanout, err := getInt("fanout", 10)
		if err != nil {
			return err
		}
		s.NXNS = append(s.NXNS, attacks.NXNS{
			Start: start, End: end, Interval: interval, Fraction: frac, Fanout: fanout,
		})
	case "flood":
		names, err := getInt("names", 0)
		if err != nil {
			return err
		}
		s.Floods = append(s.Floods, attacks.Flood{
			Start: start, End: end, Interval: interval, Fraction: frac, Names: names,
		})
	case "reflect":
		s.Reflections = append(s.Reflections, attacks.Reflection{
			Start: start, End: end, Interval: interval, Fraction: frac,
		})
	default:
		return fmt.Errorf("unknown -attack kind %q (want nxns|flood|reflect)", kind)
	}
	return nil
}
