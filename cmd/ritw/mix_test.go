package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ritw/internal/analysis"
	"ritw/internal/atlas"
	"ritw/internal/core"
	"ritw/internal/measure"
	"ritw/internal/netsim"
	"ritw/internal/resolver"
)

// TestGoldenMix pins the exact text of the fleet-mix battery at a
// fixed seed in stream mode against a checked-in golden: the
// per-policy and mixture Figure-4 preference rows, the paper-band
// verdicts, and the Table-2 breakouts for every preset (the calibrated
// paper mixture, the modern secDNS-flavoured fleet, and the
// public-resolver-centralization sweep). Any drift in the entity-keyed
// assignment, the policy engines, or the per-policy split shows up as
// a readable text diff in CI. Regenerate deliberately with:
// go test ./cmd/ritw -run TestGoldenMix -update
func TestGoldenMix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fleet-mix battery")
	}
	runMixGolden(t, 0, 0, netsim.SchedHeap, *updateGolden)
}

// TestGoldenMixSharded replays the battery split across simulation
// shards and demands the exact bytes of the sequential golden: the
// mix re-draw is entity-keyed, so shard layout must not move a single
// VP to a different policy. RITW_CROSSCHECK_SHARDS elevates the shard
// count for the CI crosscheck job.
func TestGoldenMixSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fleet-mix battery")
	}
	runMixGolden(t, crosscheckShards(t, 4), 0, crosscheckSched(t, netsim.SchedHeap), false)
}

// TestGoldenMixWorkers replays the battery with every run's lanes
// distributed over `ritw lane-worker` subprocesses and demands the
// exact bytes of the sequential golden: the mix share table travels
// the lanewire job protocol, and every worker re-derives the same
// assignment from it. RITW_CROSSCHECK_WORKERS elevates the worker
// count for the CI crosscheck job.
func TestGoldenMixWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fleet-mix battery over subprocess workers")
	}
	workers := crosscheckWorkers(t, 2)
	shards := crosscheckShards(t, 4)
	if shards < workers {
		shards = workers
	}
	runMixGolden(t, shards, workers, crosscheckSched(t, netsim.SchedHeap), false)
}

// runMixGolden executes the preset battery at the pinned seed and
// compares (or rewrites) the golden. shards=0 runs the single
// sequential lane that defines the golden bytes.
func runMixGolden(t *testing.T, shards, workers int, kind netsim.SchedulerKind, update bool) {
	t.Helper()
	oldSeed, oldProbes, oldStream, oldMaxMem := *seed, *probesFlag, *stream, *maxMem
	oldPlot, oldOut, oldParallel, oldShards := *plotDir, *outFile, *parallel, *shardsFlag
	oldSched, oldWorkers, oldMix := schedKind, *workersFlag, mixShares
	defer func() {
		*seed, *probesFlag, *stream, *maxMem = oldSeed, oldProbes, oldStream, oldMaxMem
		*plotDir, *outFile, *parallel, *shardsFlag = oldPlot, oldOut, oldParallel, oldShards
		schedKind, *workersFlag, mixShares = oldSched, oldWorkers, oldMix
	}()
	*seed, *probesFlag, *stream, *maxMem = 7, 150, true, 0
	*plotDir, *outFile, *parallel, *shardsFlag = "", "", 4, shards
	schedKind, *workersFlag, mixShares = kind, workers, nil

	got := captureStdout(t, func() error {
		return cmdMix(context.Background(), core.ScaleSmall)
	})
	path := filepath.Join("testdata", "golden", "mix.txt")
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("mix (shards=%d workers=%d) output drifted from %s\n--- got ---\n%s--- want ---\n%s",
			shards, workers, path, got, want)
	}
}

// TestPaperMixCalibrationInsideBands is the calibration acceptance
// gate: at the reference configuration (`ritw -scale small mix`,
// seed 42), the paper-calibrated mixture's weak/strong preference
// shares must land inside the paper's Figure-4 bands (59-69% weak,
// 10-37% strong). A change to atlas.PaperMix, the entity-keyed
// assignment, or any policy engine that pushes the mixture out of
// band fails here with the measured shares.
func TestPaperMixCalibrationInsideBands(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full reference-scale simulation")
	}
	t.Parallel()
	sc := core.Scenario{Name: "paper", ComboID: "2B", Mix: atlas.PaperMix()}
	opts := []core.Option{core.WithSeed(42), core.WithScale(core.ScaleSmall)}
	cfg, err := core.ScenarioRunConfig(sc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := measure.PolicyAssignment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dss, err := core.RunScenariosContext(context.Background(), []core.Scenario{sc}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	p := analysis.BreakoutByPolicy(dss[0], assign).Mixture().Preference()
	if p.QualifiedVPs < 50 {
		t.Fatalf("only %d qualified VPs; the reference scale should give a stable estimate", p.QualifiedVPs)
	}
	if !analysis.InPaperBands(p.WeakFrac, p.StrongFrac) {
		t.Errorf("paper mixture out of band: weak %.1f%% strong %.1f%%, want %.0f-%.0f%% / %.0f-%.0f%%",
			100*p.WeakFrac, 100*p.StrongFrac,
			100*analysis.PaperWeakShareLow, 100*analysis.PaperWeakShareHigh,
			100*analysis.PaperStrongShareLow, 100*analysis.PaperStrongShareHigh)
	}
}

// TestParseMixSpec covers the -mix DSL: kinds, shares, the sf/qmin
// engine options, per-kind infra defaults, and malformed specs naming
// the offending part.
func TestParseMixSpec(t *testing.T) {
	mix, err := parseMixSpec("probetopn:0.4:sf+qmin, bindlike:0.35 ,uniform:0.25,sticky:0")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 4 {
		t.Fatalf("parsed %d segments, want 4", len(mix))
	}
	if mix[0].Kind != resolver.KindProbeTopN || mix[0].Share != 0.4 ||
		!mix[0].Singleflight || !mix[0].QnameMinimize {
		t.Errorf("probetopn segment = %+v", mix[0])
	}
	if mix[1].Kind != resolver.KindBINDLike || mix[1].Singleflight || mix[1].QnameMinimize {
		t.Errorf("bindlike segment = %+v", mix[1])
	}
	if mix[1].InfraTTL != 10*time.Minute || mix[1].Retention != resolver.DecayKeep {
		t.Errorf("bindlike infra defaults = %+v", mix[1])
	}
	if mix[2].Retention != resolver.HardExpire {
		t.Errorf("uniform should hard-expire: %+v", mix[2])
	}
	if mix[3].Kind != resolver.KindSticky || mix[3].InfraTTL != 0 || mix[3].Share != 0 {
		t.Errorf("sticky segment = %+v", mix[3])
	}

	bad := []struct{ spec, wantErr string }{
		{"", "empty -mix"},
		{" , ", "empty -mix"},
		{"bindlike", "want kind:share"},
		{"smurf:0.5", "unknown policy kind"},
		{"bindlike:lots", "non-negative number"},
		{"bindlike:-0.2", "non-negative number"},
		{"bindlike:0.5:turbo", "want sf or qmin"},
	}
	for _, c := range bad {
		_, err := parseMixSpec(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("parseMixSpec(%q) = %v, want mention of %q", c.spec, err, c.wantErr)
		}
	}
}

// TestDescribeMix pins the scenario-header rendering the golden
// depends on: normalized percentages and the engine-option suffixes.
func TestDescribeMix(t *testing.T) {
	mix, err := parseMixSpec("probetopn:2:sf+qmin,uniform:1:qmin,roundrobin:1")
	if err != nil {
		t.Fatal(err)
	}
	got := describeMix(mix)
	want := "probetopn:50%(sf+qmin) uniform:25%(qmin) roundrobin:25%"
	if got != want {
		t.Errorf("describeMix = %q, want %q", got, want)
	}
}
