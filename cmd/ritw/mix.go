package main

import (
	"context"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"ritw/internal/analysis"
	"ritw/internal/atlas"
	"ritw/internal/core"
	"ritw/internal/geo"
	"ritw/internal/measure"
	"ritw/internal/resolver"
)

var mixFlag = flag.String("mix", "",
	"fleet mix kind:share[:sf+qmin],... re-drawing every resolver's behaviour entity-keyed (kinds: "+kindList()+"); applies to every run, and `ritw mix` runs it as a custom scenario")

// mixShares is the parsed -mix value, fixed in main before any command
// runs (nil without the flag).
var mixShares []atlas.PolicyShare

func kindList() string {
	names := make([]string, 0, len(resolver.Kinds()))
	for _, k := range resolver.Kinds() {
		names = append(names, k.String())
	}
	return strings.Join(names, "|")
}

// shareDefaults fills the per-kind infra-cache defaults the calibrated
// mixture uses (BIND ~10 min decay-keep, Unbound ~15 min, minimal
// kinds hard-expire, Sticky cacheless).
func shareDefaults(kind resolver.PolicyKind) atlas.PolicyShare {
	s := atlas.PolicyShare{Kind: kind, InfraTTL: 10 * time.Minute, Retention: resolver.DecayKeep}
	switch kind {
	case resolver.KindUnboundLike:
		s.InfraTTL = 15 * time.Minute
	case resolver.KindUniform, resolver.KindRoundRobin:
		s.Retention = resolver.HardExpire
	case resolver.KindSticky:
		s.InfraTTL = 0
		s.Retention = resolver.HardExpire
	}
	return s
}

// parseMixSpec parses the -mix DSL: comma-separated kind:share entries
// with an optional engine-behaviour suffix, e.g.
// "probetopn:0.4:sf+qmin,bindlike:0.35,uniform:0.25". Shares need not
// sum to one (they are normalized); sf enables singleflight and qmin
// qname minimization for that segment.
func parseMixSpec(spec string) ([]atlas.PolicyShare, error) {
	var mix []atlas.PolicyShare
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.SplitN(entry, ":", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("bad -mix entry %q (want kind:share[:sf+qmin])", entry)
		}
		kind, err := resolver.ParseKind(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad -mix entry %q: %v", entry, err)
		}
		share, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || share < 0 {
			return nil, fmt.Errorf("bad -mix share %q (want a non-negative number)", parts[1])
		}
		s := shareDefaults(kind)
		s.Share = share
		if len(parts) == 3 {
			for _, opt := range strings.Split(parts[2], "+") {
				switch opt {
				case "sf":
					s.Singleflight = true
				case "qmin":
					s.QnameMinimize = true
				default:
					return nil, fmt.Errorf("bad -mix option %q in %q (want sf or qmin)", opt, entry)
				}
			}
		}
		mix = append(mix, s)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty -mix spec")
	}
	return mix, nil
}

// describeMix renders a mix for scenario headers (and the golden).
func describeMix(mix []atlas.PolicyShare) string {
	var total float64
	for _, m := range mix {
		total += m.Share
	}
	parts := make([]string, 0, len(mix))
	for _, m := range mix {
		p := fmt.Sprintf("%s:%.0f%%", m.Kind, 100*m.Share/total)
		var opts []string
		if m.Singleflight {
			opts = append(opts, "sf")
		}
		if m.QnameMinimize {
			opts = append(opts, "qmin")
		}
		if len(opts) > 0 {
			p += "(" + strings.Join(opts, "+") + ")"
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, " ")
}

// modernMix is the secDNS-flavoured fleet: a large probe-top-N segment
// with singleflight and qname minimization (the modern-recursive
// defaults), alongside the classic implementations.
func modernMix() []atlas.PolicyShare {
	topn := shareDefaults(resolver.KindProbeTopN)
	topn.Share = 0.35
	topn.Singleflight = true
	topn.QnameMinimize = true
	unbound := shareDefaults(resolver.KindUnboundLike)
	unbound.Share = 0.20
	unbound.QnameMinimize = true
	bind := shareDefaults(resolver.KindBINDLike)
	bind.Share = 0.20
	wrtt := shareDefaults(resolver.KindWeightedRTT)
	wrtt.Share = 0.15
	uni := shareDefaults(resolver.KindUniform)
	uni.Share = 0.10
	return []atlas.PolicyShare{topn, unbound, bind, wrtt, uni}
}

// mixScenarioList resolves the battery: the presets below, or a single
// custom scenario from -mix. The presets pair the paper-calibrated
// mixture with the modern fleet and the public-resolver-centralization
// sweep (30-70% of VPs behind the shared anycast service, after Kernan
// et al.'s public-resolvers-meet-CDNs measurements).
func mixScenarioList() []core.Scenario {
	if len(mixShares) > 0 {
		return []core.Scenario{{Name: "custom", ComboID: *comboID, Mix: mixShares}}
	}
	return []core.Scenario{
		{Name: "paper", ComboID: "2B", Mix: atlas.PaperMix()},
		{Name: "modern", ComboID: "2B", Mix: modernMix()},
		{Name: "central-30", ComboID: "2B", Mix: atlas.PaperMix(), PublicDNSShare: 0.30},
		{Name: "central-50", ComboID: "2B", Mix: atlas.PaperMix(), PublicDNSShare: 0.50},
		{Name: "central-70", ComboID: "2B", Mix: atlas.PaperMix(), PublicDNSShare: 0.70},
	}
}

// cmdMix runs the fleet-mix battery: every scenario re-draws the
// resolver population's behaviour from its share table on the
// entity-keyed mix stream, runs the standard measurement, and reports
// Figure-4 preference strength and Table 2 broken out per policy and
// as the mixture — the distributional reproduction of the paper's
// core finding. The mixture's weak/strong shares are checked against
// the paper's 59-69% / 10-37% bands.
func cmdMix(ctx context.Context, scale core.Scale) error {
	scenarios := mixScenarioList()
	opts := batchOpts(scale)

	// assignFor resolves each scenario's VPKey → policy classifier from
	// the same plan stage the run executes, so the split is exact.
	assignFor := func(sc core.Scenario) (map[string]string, error) {
		cfg, err := core.ScenarioRunConfig(sc, opts...)
		if err != nil {
			return nil, err
		}
		return measure.PolicyAssignment(cfg)
	}

	var mu sync.Mutex
	breakouts := make(map[string]*analysis.MixBreakout, len(scenarios))
	if streaming() {
		byName := make(map[string]core.Scenario, len(scenarios))
		for _, sc := range scenarios {
			byName[sc.Name] = sc
		}
		var sinkErr error
		opts = append(opts, core.WithSink(func(key string) measure.Sink {
			sc := byName[key]
			assign, err := assignFor(sc)
			if err != nil {
				mu.Lock()
				if sinkErr == nil {
					sinkErr = err
				}
				mu.Unlock()
				return measure.Discard
			}
			cfg, err := core.ScenarioRunConfig(sc, opts...)
			if err != nil {
				mu.Lock()
				if sinkErr == nil {
					sinkErr = err
				}
				mu.Unlock()
				return measure.Discard
			}
			b := analysis.NewMixBreakout(analysis.AggConfig{
				ComboID:    key,
				Sites:      cfg.Combo.Sites,
				Duration:   cfg.Duration,
				MaxSamples: sketchCap(),
				Seed:       *seed,
				Metrics:    metricsReg,
			}, assign)
			mu.Lock()
			breakouts[key] = b
			mu.Unlock()
			return b
		}), core.WithStreamOnly(true))
		dss, err := core.RunScenariosContext(ctx, scenarios, opts...)
		if err != nil {
			return err
		}
		if sinkErr != nil {
			return sinkErr
		}
		for i, sc := range scenarios {
			printMixScenario(sc, dss[i], breakouts[sc.Name])
		}
		return nil
	}

	dss, err := core.RunScenariosContext(ctx, scenarios, opts...)
	if err != nil {
		return err
	}
	for i, sc := range scenarios {
		assign, err := assignFor(sc)
		if err != nil {
			return err
		}
		printMixScenario(sc, dss[i], analysis.BreakoutByPolicy(dss[i], assign))
	}
	return nil
}

// printMixScenario reports one scenario: the mix header, the per-policy
// and mixture Figure-4 rows, the paper-band verdict, and the mixture's
// Table 2.
func printMixScenario(sc core.Scenario, sum *measure.Dataset, b *analysis.MixBreakout) {
	fmt.Printf("-- mix %s (combo %s, %d probes)\n", sc.Name, sum.ComboID, sum.ActiveProbes)
	fmt.Println("   mix: " + describeMix(sc.Mix))
	if sc.PublicDNSShare > 0 {
		fmt.Printf("   public-DNS share: %.0f%% of VPs behind the shared anycast service\n", 100*sc.PublicDNSShare)
	}
	fmt.Printf("   %-12s %9s %10s %7s %7s\n", "policy", "records", "qualified", "weak", "strong")
	row := func(label string, agg *analysis.Aggregator) {
		p := agg.Preference()
		fmt.Printf("   %-12s %9d %10d %6.1f%% %6.1f%%\n",
			label, agg.NumRecords(), p.QualifiedVPs, 100*p.WeakFrac, 100*p.StrongFrac)
	}
	for _, label := range b.Labels() {
		row(label, b.Policy(label))
	}
	row("mixture", b.Mixture())
	p := b.Mixture().Preference()
	verdict := "OUTSIDE"
	if analysis.InPaperBands(p.WeakFrac, p.StrongFrac) {
		verdict = "inside"
	}
	fmt.Printf("   paper bands: weak %.0f-%.0f%%, strong %.0f-%.0f%% -> mixture %s\n",
		100*analysis.PaperWeakShareLow, 100*analysis.PaperWeakShareHigh,
		100*analysis.PaperStrongShareLow, 100*analysis.PaperStrongShareHigh, verdict)

	sites := sum.Sites
	fmt.Printf("   table2 share of %s by continent:", sites[0])
	t2ByLabel := func(label string, agg *analysis.Aggregator) {
		t2 := agg.Table2()
		fmt.Printf("\n     %-12s", label)
		for _, cont := range geo.Continents() {
			cells, ok := t2[cont]
			if !ok {
				fmt.Printf(" %s=  --", cont)
				continue
			}
			fmt.Printf(" %s=%3.0f%%", cont, cells[sites[0]].SharePct)
		}
	}
	for _, label := range b.Labels() {
		t2ByLabel(label, b.Policy(label))
	}
	t2ByLabel("mixture", b.Mixture())
	fmt.Println()
	fmt.Println()
}
