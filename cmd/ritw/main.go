// Command ritw regenerates every table and figure of "Recursives in
// the Wild: Engineering Authoritative DNS Servers" (IMC 2017) from the
// simulated measurement fabric.
//
//	ritw -scale small table1      # Table 1: combinations and VPs
//	ritw fig2                     # queries to probe all authoritatives
//	ritw -combo 2C fig3           # query share vs median RTT
//	ritw fig4                     # preference bands for 2A/2B/2C
//	ritw table2                   # continent x site shares and RTTs
//	ritw fig5                     # RTT sensitivity of 2B
//	ritw fig6                     # probing-interval sweep of 2C
//	ritw fig7root | fig7nl        # production rank bands
//	ritw middlebox | ipv6 | hardening
//	ritw planner                  # §7 deployment evaluation
//	ritw all                      # everything above
//	ritw blast -qps 50000         # open-loop UDP load harness (ritw blast -h)
//
// With -stream, runs push records into incremental aggregators instead
// of materializing datasets: the figures are identical, but peak memory
// is bounded by per-VP analysis state rather than query volume. -maxmem
// additionally caps the streaming quantile sketches (implies -stream;
// medians become approximate past the cap).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"ritw/internal/atlas"

	"ritw/internal/analysis"
	"ritw/internal/core"
	"ritw/internal/ditl"
	"ritw/internal/geo"
	"ritw/internal/measure"
	"ritw/internal/netsim"
	"ritw/internal/obs"
)

var (
	seed       = flag.Int64("seed", 42, "experiment seed")
	scaleStr   = flag.String("scale", "small", "population scale: small, medium, full")
	comboID    = flag.String("combo", "2C", "combination for fig3")
	outFile    = flag.String("out", "", "also write the dataset CSV here (single-combo commands)")
	plotDir    = flag.String("plotdir", "", "write SVG figures into this directory")
	parallel   = flag.Int("parallel", 0, "worker-pool width for batch runs (0 = all cores)")
	progress   = flag.Bool("progress", false, "report live batch completion on stderr")
	stream     = flag.Bool("stream", false, "stream records into incremental aggregators instead of materializing datasets")
	maxMem     = flag.Int("maxmem", 0, "cap streaming analysis memory: MiB budget for the RTT quantile sketches (implies -stream; 0 = exact)")
	probesFlag = flag.Int("probes", 0, "override the probe count implied by -scale (0 = scale default)")
	shardsFlag = flag.Int("shards", 0, "split each simulation across N concurrent lanes; results are byte-identical at any shard count (0 = single lane)")
	schedFlag  = flag.String("sched", "heap", "simulator event scheduler: heap (reference) or wheel (timing wheel, faster at large event depths); results are byte-identical either way")
	metricsOut = flag.Bool("metrics", false, "dump the observability registry to stderr when the command finishes")

	workersFlag = flag.Int("workers", 0, "distribute each run's lanes over N `ritw lane-worker` subprocesses; results are byte-identical at any process layout (0 = in-process; needs -shards >= N)")
	snapEvery   = flag.Duration("snapshot-every", 0, "checkpoint batch runs every D of simulated time so they can be resumed (0 = off)")
	snapDir     = flag.String("snapshot-dir", ".", "directory for -snapshot-every checkpoint files (ritw-<run key>.snap)")
	resumeFlag  = flag.Bool("resume", false, "resume batch runs from their -snapshot-dir checkpoints instead of starting over (requires -snapshot-every)")
)

// schedKind is the parsed -sched value, fixed in main before any
// command runs.
var schedKind netsim.SchedulerKind

// metricsReg collects cross-layer counters and gauges (simulator
// events, records streamed, sink spill bytes, aggregator peak sizes)
// when -metrics is set; nil otherwise — obs instruments are nil-safe.
var metricsReg *obs.Registry

// streaming reports whether the record path should bypass dataset
// materialization; any memory cap implies it.
func streaming() bool { return *stream || *maxMem > 0 }

// sketchCap translates -maxmem into a per-sketch sample cap. An
// aggregator keeps one RTT sketch per site plus one per
// (continent, site) cell — a few dozen at most — so spreading the
// budget across 64 sketches of 8-byte samples bounds the total.
func sketchCap() int {
	if *maxMem <= 0 {
		return 0
	}
	return *maxMem << 20 / (64 * 8)
}

// scaleProbes is the effective population size: -probes wins over the
// scale's default.
func scaleProbes(scale core.Scale) int {
	if *probesFlag > 0 {
		return *probesFlag
	}
	return scale.Probes()
}

// validateLayout rejects impossible -shards/-workers/-snapshot flag
// combinations before any simulation starts. The measure layer
// re-validates per run; failing here gives one clear message instead
// of the same error once per batch job.
func validateLayout(shards, workers int, every time.Duration, resume bool) error {
	if shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", shards)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", workers)
	}
	lanes := shards
	if lanes < 1 {
		lanes = 1
	}
	if workers > lanes {
		return fmt.Errorf("-workers %d needs at least %d lanes but -shards gives %d: raise -shards so every worker owns a lane", workers, workers, lanes)
	}
	if every < 0 {
		return fmt.Errorf("-snapshot-every must be >= 0, got %v", every)
	}
	if resume && every <= 0 {
		return fmt.Errorf("-resume requires -snapshot-every: a resumed run re-verifies its checkpoint and keeps checkpointing at the same cadence")
	}
	return nil
}

// snapPath names the checkpoint file for one batch run key. Replicate
// keys contain '/', which becomes '-' so every key maps to a single
// file under -snapshot-dir.
func snapPath(key string) string {
	return filepath.Join(*snapDir, "ritw-"+strings.ReplaceAll(key, "/", "-")+".snap")
}

// batchOpts are the options every batch entry point shares; with
// -progress they include the stderr reporter.
func batchOpts(scale core.Scale) []core.Option {
	opts := []core.Option{
		core.WithSeed(*seed), core.WithScale(scale), core.WithParallelism(*parallel),
		core.WithProbes(*probesFlag), core.WithShards(*shardsFlag),
		core.WithScheduler(schedKind), core.WithWorkers(*workersFlag),
	}
	if len(mixShares) > 0 {
		opts = append(opts, core.WithMix(mixShares))
	}
	if *snapEvery > 0 {
		opts = append(opts, core.WithSnapshot(func(key string) *measure.SnapshotSpec {
			return &measure.SnapshotSpec{Path: snapPath(key), Every: *snapEvery, Resume: *resumeFlag}
		}))
	}
	if metricsReg != nil {
		opts = append(opts, core.WithMetrics(metricsReg))
	}
	if *progress {
		opts = append(opts, core.WithProgress(reportProgress))
	}
	return opts
}

// reportProgress prints one line per completed job. The runner
// serializes calls, so plain Fprintf is safe.
func reportProgress(p core.BatchProgress) {
	status := "done"
	if p.Err != nil {
		status = "FAILED: " + p.Err.Error()
	}
	fmt.Fprintf(os.Stderr, "[%s %d/%d] %s %s\n", p.Batch, p.Done, p.Total, p.Job, status)
}

func main() {
	// A -workers parent re-execs this binary as `ritw lane-worker`
	// children (plus a guard env var, so a stray argv can't trigger
	// it). The dispatch runs before anything else: workers speak the
	// lanewire protocol on stdin/stdout and never parse CLI flags.
	if measure.MaybeRunLaneWorker() {
		return
	}
	// blast owns its own flag set (load-harness knobs share nothing
	// with the figure pipeline), so it dispatches before flag.Parse.
	if len(os.Args) > 1 && os.Args[1] == "blast" {
		cmdBlast(os.Args[2:])
		return
	}
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ritw [flags] <table1|fig2|fig3|fig4|table2|fig5|fig6|fig7root|fig7nl|middlebox|ipv6|hardening|planner|outage|openres|scenarios|attacks|mix|all>")
		fmt.Fprintln(os.Stderr, "       ritw blast [flags]   (open-loop load harness; see ritw blast -h)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	scale, err := parseScale(*scaleStr)
	check(err)
	schedKind, err = netsim.ParseSchedulerKind(*schedFlag)
	check(err)
	check(validateLayout(*shardsFlag, *workersFlag, *snapEvery, *resumeFlag))
	if *mixFlag != "" {
		mixShares, err = parseMixSpec(*mixFlag)
		check(err)
	}
	if *metricsOut {
		metricsReg = obs.NewRegistry()
	}

	// Ctrl-C abandons in-flight simulation batches cleanly instead of
	// killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmds := map[string]func(context.Context, core.Scale) error{
		"table1":    cmdTable1,
		"fig2":      cmdFig2,
		"fig3":      cmdFig3,
		"fig4":      cmdFig4,
		"table2":    cmdTable2,
		"fig5":      cmdFig5,
		"fig6":      cmdFig6,
		"fig7root":  cmdFig7Root,
		"fig7nl":    cmdFig7NL,
		"middlebox": cmdMiddlebox,
		"ipv6":      cmdIPv6,
		"hardening": cmdHardening,
		"planner":   cmdPlanner,
		"outage":    cmdOutage,
		"openres":   cmdOpenResolver,
		"scenarios": cmdScenarios,
		"attacks":   cmdAttacks,
		"mix":       cmdMix,
	}
	name := flag.Arg(0)
	if name == "all" {
		order := []string{"table1", "fig2", "fig3", "fig4", "table2", "fig5", "fig6",
			"fig7root", "fig7nl", "middlebox", "ipv6", "hardening", "planner",
			"outage", "openres", "scenarios", "attacks", "mix"}
		for _, n := range order {
			fmt.Printf("==== %s ====\n", n)
			check(cmds[n](ctx, scale))
			fmt.Println()
		}
		dumpMetrics()
		return
	}
	cmd, ok := cmds[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "ritw: unknown command %q\n", name)
		os.Exit(2)
	}
	check(cmd(ctx, scale))
	dumpMetrics()
}

func dumpMetrics() {
	if metricsReg != nil {
		check(metricsReg.WriteText(os.Stderr))
	}
}

func parseScale(s string) (core.Scale, error) {
	switch s {
	case "small":
		return core.ScaleSmall, nil
	case "medium":
		return core.ScaleMedium, nil
	case "full":
		return core.ScaleFull, nil
	}
	return 0, fmt.Errorf("unknown scale %q", s)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "ritw: %v\n", err)
		os.Exit(1)
	}
}

// source serves one run's analyses from either the materialized
// dataset (default) or the streaming aggregator that consumed the run
// (-stream). Both paths produce identical figures; only the memory
// profile differs.
type source struct {
	ds  *measure.Dataset     // materialized records; nil in stream mode
	agg *analysis.Aggregator // streaming aggregator; nil otherwise
	sum *measure.Dataset     // run summary (ActiveProbes, Sites, Interval)
}

func materializedSource(ds *measure.Dataset) *source { return &source{ds: ds, sum: ds} }

func (s *source) activeProbes() int       { return s.sum.ActiveProbes }
func (s *source) sites() []string         { return s.sum.Sites }
func (s *source) interval() time.Duration { return s.sum.Interval }

func (s *source) numRecords() int {
	if s.agg != nil {
		return s.agg.NumRecords()
	}
	return len(s.ds.Records)
}

func (s *source) probeAll() analysis.ProbeAllResult {
	if s.agg != nil {
		return s.agg.ProbeAll()
	}
	return analysis.ProbeAll(s.ds)
}

func (s *source) shareVsRTT() []analysis.SiteShare {
	if s.agg != nil {
		return s.agg.ShareVsRTT()
	}
	return analysis.ShareVsRTT(s.ds)
}

func (s *source) table2() map[geo.Continent]map[string]analysis.ContinentSiteShare {
	if s.agg != nil {
		return s.agg.Table2()
	}
	return analysis.Table2(s.ds)
}

func (s *source) preference() analysis.PreferenceResult {
	if s.agg != nil {
		return s.agg.Preference()
	}
	return analysis.Preference(s.ds)
}

func (s *source) preferenceCI(rounds int, seed int64) (weak, strong analysis.Interval, err error) {
	if s.agg != nil {
		return s.agg.PreferenceCI(rounds, seed)
	}
	return analysis.PreferenceCI(s.ds, rounds, seed)
}

func (s *source) rttSensitivity() []analysis.RTTSensitivityPoint {
	if s.agg != nil {
		return s.agg.RTTSensitivity()
	}
	return analysis.RTTSensitivity(s.ds)
}

func (s *source) siteShare(site string) map[geo.Continent]float64 {
	if s.agg != nil {
		return s.agg.SiteShareByContinent(site)
	}
	return analysis.SiteShareByContinent(s.ds, site)
}

func (s *source) hardening() analysis.HardeningResult {
	if s.agg != nil {
		return s.agg.PreferenceHardening()
	}
	return analysis.PreferenceHardening(s.ds)
}

func (s *source) authSide(minQueries int) (weakFrac, strongFrac float64, resolvers int) {
	if s.agg != nil {
		return s.agg.AuthSidePreference(minQueries)
	}
	return analysis.AuthSidePreference(s.ds, minQueries)
}

// aggFor builds one streaming aggregator under the CLI's seed, memory
// cap and metrics registry. label feeds the peak-size gauge.
func aggFor(label string, sites []string, duration time.Duration) *analysis.Aggregator {
	return analysis.NewAggregator(analysis.AggConfig{
		ComboID:    label,
		Sites:      sites,
		Duration:   duration,
		MaxSamples: sketchCap(),
		Seed:       *seed,
		Metrics:    metricsReg,
	})
}

// runAll executes all seven combinations once — fanned out across
// cores by the Runner — and caches the result across subcommands of
// `ritw all`. In stream mode each combination's records flow straight
// into its aggregator and are never materialized.
var table1Cache map[string]*source

func allSources(ctx context.Context, scale core.Scale) (map[string]*source, error) {
	if table1Cache != nil {
		return table1Cache, nil
	}
	opts := batchOpts(scale)
	srcs := make(map[string]*source)
	if streaming() {
		var (
			mu        sync.Mutex
			aggs      = make(map[string]*analysis.Aggregator)
			spill     *os.File
			spillCSV  *measure.CSVSink
			spillBase int64
			spillSkip int64
		)
		if *outFile != "" {
			f, base, skip, err := openSpill(*outFile, *comboID)
			if err != nil {
				return nil, err
			}
			spill, spillBase, spillSkip = f, base, skip
		}
		sinkFor := func(key string) measure.Sink {
			combo, err := measure.CombinationByID(key)
			if err != nil {
				return measure.Discard
			}
			agg := aggFor(key, combo.Sites, measure.DefaultRunConfig(combo, 0).Duration)
			mu.Lock()
			aggs[key] = agg
			mu.Unlock()
			if spill != nil && key == *comboID {
				// -out spills the requested combination's records to CSV
				// during the run instead of from a materialized dataset.
				// A resumed run replays the whole simulation (figures need
				// the aggregator to see every record) but skips the prefix
				// the previous run already wrote to the CSV.
				csv := measure.NewCSVSink(spill, key)
				if spillBase > 0 {
					csv.SkipHeader()
				}
				mu.Lock()
				spillCSV = csv
				mu.Unlock()
				var rec measure.Sink = csv
				if spillSkip > 0 {
					rec = measure.SkipRecords(csv, spillSkip)
				}
				return measure.Tee(agg, rec)
			}
			return agg
		}
		opts = append(opts, core.WithSink(sinkFor), core.WithStreamOnly(true))
		if *snapEvery > 0 && spill != nil {
			// Override batchOpts' generic snapshot factory with one whose
			// spec for the spilled combination records the CSV's durable
			// offset at every checkpoint, so -resume can truncate a
			// partially-written tail (openSpill does the truncation).
			opts = append(opts, core.WithSnapshot(func(key string) *measure.SnapshotSpec {
				spec := &measure.SnapshotSpec{Path: snapPath(key), Every: *snapEvery, Resume: *resumeFlag}
				if key == *comboID {
					spec.Sync = func() (int64, error) {
						mu.Lock()
						csv := spillCSV
						mu.Unlock()
						if csv == nil {
							return -1, nil
						}
						if err := csv.Flush(); err != nil {
							return -1, err
						}
						return spillBase + csv.Bytes(), nil
					}
				}
				return spec
			}))
		}
		dss, err := core.RunTable1Context(ctx, opts...)
		if spill != nil {
			if cerr := spill.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return nil, err
		}
		for id, ds := range dss {
			srcs[id] = &source{agg: aggs[id], sum: ds}
		}
	} else {
		dss, err := core.RunTable1Context(ctx, opts...)
		if err != nil {
			return nil, err
		}
		for id, ds := range dss {
			srcs[id] = materializedSource(ds)
		}
	}
	table1Cache = srcs
	return srcs, nil
}

// openSpill opens the -out CSV for the streaming spill. Under -resume
// it reopens the existing file and truncates it to the offset the last
// checkpoint durably covered (a crash can leave a written-but-
// uncheckpointed tail), so the resumed run appends exactly the records
// the checkpoint hadn't seen. base is where appending starts and skip
// how many records the CSV already holds.
func openSpill(path, key string) (f *os.File, base, skip int64, err error) {
	if !*resumeFlag {
		f, err = os.Create(path)
		return f, 0, 0, err
	}
	snap, err := measure.LoadSnapshot(snapPath(key))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("-resume: %w", err)
	}
	if snap.OutBytes >= 0 {
		base, skip = snap.OutBytes, snap.Records
	}
	f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := f.Truncate(base); err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	if _, err := f.Seek(base, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	return f, base, skip, nil
}

// maybeWriteOut honours -out for materialized runs; in stream mode the
// CSV was already spilled during the run (see allSources).
func maybeWriteOut(src *source) error {
	if *outFile == "" || src.ds == nil {
		return nil
	}
	f, err := os.Create(*outFile)
	if err != nil {
		return err
	}
	err = src.ds.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		// Close carries the final flush: a deferred Close would drop an
		// ENOSPC here and report a truncated CSV as success.
		err = cerr
	}
	return err
}

func cmdTable1(ctx context.Context, scale core.Scale) error {
	srcs, err := allSources(ctx, scale)
	if err != nil {
		return err
	}
	fmt.Println("Table 1: combinations of authoritatives and the VPs they see")
	fmt.Printf("%-4s %-25s %8s %9s\n", "ID", "locations", "VPs", "queries")
	for _, combo := range measure.Table1() {
		src := srcs[combo.ID]
		fmt.Printf("%-4s %-25s %8d %9d\n", combo.ID, strings.Join(combo.Sites, ", "),
			src.activeProbes(), src.numRecords())
	}
	return nil
}

func cmdFig2(ctx context.Context, scale core.Scale) error {
	srcs, err := allSources(ctx, scale)
	if err != nil {
		return err
	}
	fmt.Println("Figure 2: queries to probe all authoritatives, after the first query")
	fmt.Printf("%-10s %9s %6s %6s %6s %6s %6s\n", "combo(%all)", "VPs", "p10", "q1", "med", "q3", "p90")
	for _, combo := range measure.Table1() {
		res := srcs[combo.ID].probeAll()
		fmt.Printf("%-3s(%4.1f%%) %9d %6.1f %6.1f %6.1f %6.1f %6.1f\n",
			res.ComboID, res.PercentAll, res.VPs,
			res.Box.P10, res.Box.Q1, res.Box.Median, res.Box.Q3, res.Box.P90)
	}
	return plotFig2(srcs)
}

func cmdFig3(ctx context.Context, scale core.Scale) error {
	srcs, err := allSources(ctx, scale)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3: median RTT (top) and query share (bottom) per authoritative")
	for _, combo := range measure.Table1() {
		shares := srcs[combo.ID].shareVsRTT()
		fmt.Printf("%s:", combo.ID)
		for _, s := range shares {
			fmt.Printf("  %s rtt=%.0fms share=%.2f", s.Site, s.MedianRTT, s.Share)
		}
		fmt.Println()
	}
	if err := plotFig3(srcs); err != nil {
		return err
	}
	if src, ok := srcs[*comboID]; ok {
		return maybeWriteOut(src)
	}
	return nil
}

func cmdFig4(ctx context.Context, scale core.Scale) error {
	srcs, err := allSources(ctx, scale)
	if err != nil {
		return err
	}
	fmt.Println("Figure 4: per-recursive preference (VPs with >=50ms RTT gap)")
	fmt.Printf("%-5s %10s %20s %20s\n", "combo", "qualified", "weak [95%CI]", "strong [95%CI]")
	for _, id := range []string{"2A", "2B", "2C"} {
		p := srcs[id].preference()
		weak, strong, err := srcs[id].preferenceCI(300, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-5s %10d %6.1f%% [%4.1f-%4.1f] %6.1f%% [%4.1f-%4.1f]\n",
			id, p.QualifiedVPs,
			100*p.WeakFrac, 100*weak.Lo, 100*weak.Hi,
			100*p.StrongFrac, 100*strong.Lo, 100*strong.Hi)
	}
	fmt.Println("(paper: weak 61/59/69%, strong 10/12/37% for 2A/2B/2C)")
	return plotFig4(srcs)
}

func cmdTable2(ctx context.Context, scale core.Scale) error {
	srcs, err := allSources(ctx, scale)
	if err != nil {
		return err
	}
	fmt.Println("Table 2: query share (%) and median RTT (ms) per continent")
	for _, id := range []string{"2A", "2B", "2C"} {
		src := srcs[id]
		t2 := src.table2()
		sites := src.sites()
		fmt.Printf("config %s (%s/%s):\n", id, sites[0], sites[1])
		fmt.Printf("  %-4s", "cont")
		for _, site := range sites {
			fmt.Printf(" %14s", site)
		}
		fmt.Println()
		for _, cont := range geo.Continents() {
			cells, ok := t2[cont]
			if !ok {
				continue
			}
			fmt.Printf("  %-4s", cont)
			for _, site := range sites {
				c := cells[site]
				fmt.Printf("  %3.0f%% %6.0fms", c.SharePct, c.MedianRTT)
			}
			fmt.Println()
		}
	}
	return nil
}

func cmdFig5(ctx context.Context, scale core.Scale) error {
	srcs, err := allSources(ctx, scale)
	if err != nil {
		return err
	}
	fmt.Println("Figure 5: RTT sensitivity of 2B (fraction of queries vs median RTT)")
	for _, p := range srcs["2B"].rttSensitivity() {
		fmt.Printf("  %s -> %s: rtt=%.0fms fraction=%.2f (VPs=%d)\n",
			p.Continent, p.Site, p.MedianRTT, p.Fraction, p.VPs)
	}
	return plotFig5(srcs)
}

func cmdFig6(ctx context.Context, scale core.Scale) error {
	fmt.Println("Figure 6: fraction of queries to FRA (config 2C) vs probing interval")
	intervals := core.Figure6Intervals()
	opts := batchOpts(scale)
	var (
		mu   sync.Mutex
		aggs map[string]*analysis.Aggregator
	)
	if streaming() {
		aggs = make(map[string]*analysis.Aggregator)
		combo, err := measure.CombinationByID("2C")
		if err != nil {
			return err
		}
		duration := measure.DefaultRunConfig(combo, 0).Duration
		sinkFor := func(key string) measure.Sink {
			agg := aggFor("2C@"+key, combo.Sites, duration)
			mu.Lock()
			aggs[key] = agg
			mu.Unlock()
			return agg
		}
		opts = append(opts, core.WithSink(sinkFor), core.WithStreamOnly(true))
	}
	dss, err := core.RunIntervalSweepContext(ctx, intervals, opts...)
	if err != nil {
		return err
	}
	srcs := make([]*source, len(dss))
	for i, ds := range dss {
		if streaming() {
			srcs[i] = &source{agg: aggs[intervals[i].String()], sum: ds}
		} else {
			srcs[i] = materializedSource(ds)
		}
	}
	fmt.Printf("%-9s", "interval")
	for _, cont := range geo.Continents() {
		fmt.Printf(" %6s", cont)
	}
	fmt.Println()
	for _, src := range srcs {
		shares := src.siteShare("FRA")
		fmt.Printf("%-9s", src.interval())
		for _, cont := range geo.Continents() {
			fmt.Printf(" %6.2f", shares[cont])
		}
		fmt.Println()
	}
	return plotFig6(srcs)
}

func cmdFig7Root(ctx context.Context, scale core.Scale) error {
	var (
		trace *ditl.Trace
		rb    analysis.RankBands
		per   map[string]map[string]int
	)
	if streaming() {
		st, err := core.RunRootTraceStream(*seed, scale)
		if err != nil {
			return err
		}
		trace, rb, per = st.Trace, st.Bands, st.Agg.PerRecursive()
	} else {
		t, b, err := core.RunRootTrace(*seed, scale)
		if err != nil {
			return err
		}
		trace, rb, per = t, b, t.PerRecursive()
	}
	fmt.Println("Figure 7 (top): root letters, recursives with >=250 queries/hour")
	fmt.Printf("  captured: %d queries from %d recursives at %d letters\n",
		trace.TotalQueries, trace.Recursives, len(trace.Observed))
	fmt.Printf("  busy recursives: %d\n", rb.Recursives)
	fmt.Printf("  query one letter only: %.1f%% (paper ~20%%)\n", 100*rb.OnlyOne)
	fmt.Printf("  query >=6 letters:     %.1f%% (paper ~60%%)\n", 100*rb.AtLeast6)
	fmt.Printf("  query all 10 letters:  %.1f%% (paper ~2%%)\n", 100*rb.All)
	fmt.Printf("  mean top-letter share: %.2f\n", rb.MeanTopShare)
	return plotFig7("fig7_root.svg", "Root letters: per-recursive rank bands", per, 250)
}

func cmdFig7NL(ctx context.Context, scale core.Scale) error {
	var (
		trace *ditl.Trace
		rb    analysis.RankBands
		per   map[string]map[string]int
	)
	if streaming() {
		st, err := core.RunNLTraceStream(*seed, scale)
		if err != nil {
			return err
		}
		trace, rb, per = st.Trace, st.Bands, st.Agg.PerRecursive()
	} else {
		t, b, err := core.RunNLTrace(*seed, scale)
		if err != nil {
			return err
		}
		trace, rb, per = t, b, t.PerRecursive()
	}
	fmt.Println("Figure 7 (bottom): .nl, 4 of 8 authoritatives observed")
	fmt.Printf("  captured: %d queries from %d recursives\n", trace.TotalQueries, trace.Recursives)
	fmt.Printf("  busy recursives: %d\n", rb.Recursives)
	fmt.Printf("  query one NS only: %.1f%%\n", 100*rb.OnlyOne)
	fmt.Printf("  query all 4 NSes:  %.1f%% (paper: the majority)\n", 100*rb.All)
	return plotFig7("fig7_nl.svg", ".nl: per-recursive rank bands", per, 125)
}

func cmdMiddlebox(ctx context.Context, scale core.Scale) error {
	srcs, err := allSources(ctx, scale)
	if err != nil {
		return err
	}
	src := srcs["2A"]
	p := src.preference()
	aw, as, n := src.authSide(5)
	fmt.Println("§3.1 middlebox check: client-side vs authoritative-side view (2A)")
	fmt.Printf("  client side: weak=%.2f strong=%.2f (%d qualified VPs)\n",
		p.WeakFrac, p.StrongFrac, p.QualifiedVPs)
	fmt.Printf("  auth side:   weak=%.2f strong=%.2f (%d recursives >=5 queries)\n", aw, as, n)
	return nil
}

func cmdIPv6(ctx context.Context, scale core.Scale) error {
	combo, err := measure.CombinationByID("2B")
	if err != nil {
		return err
	}
	run := func(v6 bool, seedOff int64) (analysis.PreferenceResult, int, error) {
		cfg := measure.DefaultRunConfig(combo, *seed+seedOff)
		cfg.Population.NumProbes = scaleProbes(scale)
		cfg.IPv6Subset = v6
		cfg.Metrics = metricsReg
		cfg.Shards = *shardsFlag
		cfg.Scheduler = schedKind
		cfg.Workers = *workersFlag
		if streaming() {
			label := "2B-ipv6-all"
			if v6 {
				label = "2B-ipv6-subset"
			}
			agg := aggFor(label, combo.Sites, cfg.Duration)
			sum, err := measure.RunStreamContext(ctx, cfg, agg)
			if err != nil {
				return analysis.PreferenceResult{}, 0, err
			}
			return agg.Preference(), sum.ActiveProbes, nil
		}
		ds, err := measure.RunContext(ctx, cfg)
		if err != nil {
			return analysis.PreferenceResult{}, 0, err
		}
		return analysis.Preference(ds), ds.ActiveProbes, nil
	}
	full, nFull, err := run(false, 0)
	if err != nil {
		return err
	}
	sub, nSub, err := run(true, 0)
	if err != nil {
		return err
	}
	fmt.Println("§3.1 IPv6 check: strategies match on the IPv6-capable subset (2B)")
	fmt.Printf("  all probes (%5d): weak=%.2f strong=%.2f\n", nFull, full.WeakFrac, full.StrongFrac)
	fmt.Printf("  IPv6 subset (%4d): weak=%.2f strong=%.2f\n", nSub, sub.WeakFrac, sub.StrongFrac)
	return nil
}

func cmdHardening(ctx context.Context, scale core.Scale) error {
	srcs, err := allSources(ctx, scale)
	if err != nil {
		return err
	}
	fmt.Println("§4.3: weak preferences harden over the hour")
	for _, id := range []string{"2A", "2B", "2C"} {
		h := srcs[id].hardening()
		fmt.Printf("  %s: first half %.3f -> second half %.3f (%d weak VPs)\n",
			id, h.FirstHalf, h.SecondHalf, h.VPs)
	}
	return nil
}

func cmdPlanner(context.Context, core.Scale) error {
	fmt.Println("§7 planner: worst-case latency is limited by the least anycast authoritative")
	cfg := core.DefaultPlannerConfig()
	reports := []core.Deployment{core.NLCurrent(), core.NLAllAnycast()}
	var evaluated []core.PlanReport
	for _, d := range reports {
		rep, err := core.Evaluate(d, cfg)
		if err != nil {
			return err
		}
		evaluated = append(evaluated, rep)
		fmt.Print(rep.String())
	}
	naShare, err := core.QueriesFromRegionShare(core.NLCurrent(), "ns1", geo.NorthAmerica, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("case study: %.0f%% of queries at a unicast Dutch NS come from North America (paper: 23%% from the US)\n", 100*naShare)
	sort.Slice(evaluated, func(i, j int) bool { return evaluated[i].MeanLatency < evaluated[j].MeanLatency })
	fmt.Printf("recommendation: %q wins (mean %.1fms)\n", evaluated[0].Deployment, evaluated[0].MeanLatency)
	return nil
}

// cmdOutage injects a 20-minute failure of FRA into 2B and reports the
// failover behaviour (§7 "Other Considerations"). The windowed outage
// analysis needs the record timeline, so it always materializes.
func cmdOutage(ctx context.Context, scale core.Scale) error {
	combo, err := measure.CombinationByID("2B")
	if err != nil {
		return err
	}
	start, end := 20*time.Minute, 40*time.Minute
	cfg := measure.DefaultRunConfig(combo, *seed)
	pc := atlasConfig(scale)
	cfg.Population = pc
	cfg.Outage = &measure.Outage{Site: "FRA", Start: start, End: end}
	cfg.Shards = *shardsFlag
	cfg.Scheduler = schedKind
	cfg.Workers = *workersFlag
	ds, err := measure.RunContext(ctx, cfg)
	if err != nil {
		return err
	}
	impact := analysis.OutageImpactOf(ds, "FRA", start, end)
	fmt.Println("failure injection: FRA down 20-40min during a 2B run")
	for _, row := range []struct {
		name string
		w    analysis.WindowStats
	}{{"before", impact.Before}, {"during", impact.During}, {"after", impact.After}} {
		fmt.Printf("  %-7s queries=%6d FRA-share=%4.0f%% fail=%4.1f%% medianRTT=%4.0fms\n",
			row.name, row.w.Queries, 100*row.w.SiteShare, 100*row.w.FailRate, row.w.MedianRTT)
	}
	return nil
}

// cmdOpenResolver runs the open-resolver scan variant (the paper's
// stated future work) and compares its preference bands to the
// probe-based measurement.
func cmdOpenResolver(ctx context.Context, scale core.Scale) error {
	combo, err := measure.CombinationByID("2C")
	if err != nil {
		return err
	}
	cfg := measure.DefaultOpenResolverConfig(combo, *seed)
	cfg.NumResolvers = scaleProbes(scale) / 4
	cfg.Scheduler = schedKind
	ds, err := measure.RunOpenResolversContext(ctx, cfg)
	if err != nil {
		return err
	}
	p := analysis.Preference(ds)
	fmt.Printf("open-resolver scan of 2C: %d resolvers, %d records\n",
		ds.ActiveProbes, len(ds.Records))
	fmt.Printf("  qualified=%d weak=%.1f%% strong=%.1f%%\n",
		p.QualifiedVPs, 100*p.WeakFrac, 100*p.StrongFrac)
	shares := analysis.SiteShareByContinent(ds, "FRA")
	fmt.Printf("  EU share to FRA: %.2f (probe-based measurement agrees)\n", shares[geo.Europe])
	return nil
}

// atlasConfig builds the scaled population config.
func atlasConfig(scale core.Scale) atlas.Config {
	pc := atlas.DefaultConfig(*seed)
	pc.NumProbes = scaleProbes(scale)
	return pc
}
