package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ritw/internal/core"
	"ritw/internal/netsim"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden outputs under testdata/golden")

// TestGoldenOutputs pins the exact text of every figure and table
// command at a fixed seed in stream mode against checked-in goldens.
// Any numeric drift — an RNG stream reordered, a default changed, an
// aggregator losing exactness — shows up as a readable text diff in CI
// rather than as silently different science. Regenerate deliberately
// with: go test ./cmd/ritw -run TestGoldenOutputs -update
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure suite")
	}
	runGoldenSuite(t, 0, 0, netsim.SchedHeap, *updateGolden)
}

// crosscheckShards reads the CI shard-count override (default def).
func crosscheckShards(t *testing.T, def int) int {
	t.Helper()
	env := os.Getenv("RITW_CROSSCHECK_SHARDS")
	if env == "" {
		return def
	}
	n, err := strconv.Atoi(env)
	if err != nil || n < 1 {
		t.Fatalf("bad RITW_CROSSCHECK_SHARDS=%q", env)
	}
	return n
}

// crosscheckSched reads the RITW_SCHED scheduler override (default
// def), so the CI matrix can drive one golden job per scheduler.
func crosscheckSched(t *testing.T, def netsim.SchedulerKind) netsim.SchedulerKind {
	t.Helper()
	env := os.Getenv("RITW_SCHED")
	if env == "" {
		return def
	}
	k, err := netsim.ParseSchedulerKind(env)
	if err != nil {
		t.Fatalf("bad RITW_SCHED=%q: %v", env, err)
	}
	return k
}

// TestGoldenOutputsSharded replays the full figure suite split across
// simulation shards and demands the exact bytes of the sequential
// goldens: the CLI-level pin of the sharded engine's byte-identity
// contract. An odd shard count stresses the canonical merge with
// uneven lanes. RITW_CROSSCHECK_SHARDS elevates the shard count and
// RITW_SCHED selects the scheduler for the CI race job.
func TestGoldenOutputsSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure suite")
	}
	runGoldenSuite(t, crosscheckShards(t, 3), 0, crosscheckSched(t, netsim.SchedHeap), false)
}

// crosscheckWorkers reads the CI worker-count override (default def).
func crosscheckWorkers(t *testing.T, def int) int {
	t.Helper()
	env := os.Getenv("RITW_CROSSCHECK_WORKERS")
	if env == "" {
		return def
	}
	n, err := strconv.Atoi(env)
	if err != nil || n < 1 {
		t.Fatalf("bad RITW_CROSSCHECK_WORKERS=%q", env)
	}
	return n
}

// TestGoldenOutputsWorkers replays the full figure suite with every
// run's lanes distributed over `ritw lane-worker` subprocesses (the
// test binary re-execs itself; see TestMain) and demands the exact
// bytes of the sequential goldens: the CLI-level pin of the lanewire
// engine's byte-identity contract across process layouts.
// RITW_CROSSCHECK_WORKERS elevates the worker count for the CI
// multiprocess cross-check job.
func TestGoldenOutputsWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure suite over subprocess workers")
	}
	workers := crosscheckWorkers(t, 2)
	shards := crosscheckShards(t, 4)
	if shards < workers {
		shards = workers
	}
	runGoldenSuite(t, shards, workers, crosscheckSched(t, netsim.SchedHeap), false)
}

// TestGoldenOutputsWheel replays the suite on the timing-wheel
// scheduler — sequential and sharded — against the same goldens the
// heap defined: the CLI-level pin that scheduler choice never changes
// a published number.
func TestGoldenOutputsWheel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure suite")
	}
	runGoldenSuite(t, 0, 0, netsim.SchedWheel, false)
	runGoldenSuite(t, crosscheckShards(t, 3), 0, netsim.SchedWheel, false)
}

// runGoldenSuite executes every figure/table command at the pinned
// seed and compares (or, with update, rewrites) the goldens. shards=0
// runs the single sequential lane that defines the golden bytes; kind
// selects the event scheduler and workers the subprocess layout (the
// goldens must depend on neither).
func runGoldenSuite(t *testing.T, shards, workers int, kind netsim.SchedulerKind, update bool) {
	t.Helper()
	oldSeed, oldProbes, oldStream, oldMaxMem := *seed, *probesFlag, *stream, *maxMem
	oldPlot, oldOut, oldParallel, oldShards := *plotDir, *outFile, *parallel, *shardsFlag
	oldSched, oldWorkers := schedKind, *workersFlag
	defer func() {
		*seed, *probesFlag, *stream, *maxMem = oldSeed, oldProbes, oldStream, oldMaxMem
		*plotDir, *outFile, *parallel, *shardsFlag = oldPlot, oldOut, oldParallel, oldShards
		schedKind, *workersFlag = oldSched, oldWorkers
		table1Cache = nil
	}()
	*seed, *probesFlag, *stream, *maxMem = 7, 150, true, 0
	*plotDir, *outFile, *parallel, *shardsFlag = "", "", 4, shards
	schedKind, *workersFlag = kind, workers
	table1Cache = nil

	cmds := []struct {
		name string
		fn   func(context.Context, core.Scale) error
	}{
		{"table1", cmdTable1}, {"fig2", cmdFig2}, {"fig3", cmdFig3},
		{"fig4", cmdFig4}, {"table2", cmdTable2}, {"fig5", cmdFig5},
		{"fig6", cmdFig6}, {"fig7root", cmdFig7Root}, {"fig7nl", cmdFig7NL},
		{"middlebox", cmdMiddlebox}, {"ipv6", cmdIPv6}, {"hardening", cmdHardening},
	}
	for _, c := range cmds {
		got := captureStdout(t, func() error {
			return c.fn(context.Background(), core.ScaleSmall)
		})
		path := filepath.Join("testdata", "golden", c.name+".txt")
		if update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update to create): %v", c.name, err)
		}
		if got != string(want) {
			t.Errorf("%s (shards=%d) output drifted from %s\n--- got ---\n%s--- want ---\n%s",
				c.name, shards, path, got, want)
		}
	}
}
