package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ritw/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden outputs under testdata/golden")

// TestGoldenOutputs pins the exact text of every figure and table
// command at a fixed seed in stream mode against checked-in goldens.
// Any numeric drift — an RNG stream reordered, a default changed, an
// aggregator losing exactness — shows up as a readable text diff in CI
// rather than as silently different science. Regenerate deliberately
// with: go test ./cmd/ritw -run TestGoldenOutputs -update
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure suite")
	}
	oldSeed, oldProbes, oldStream, oldMaxMem := *seed, *probesFlag, *stream, *maxMem
	oldPlot, oldOut, oldParallel := *plotDir, *outFile, *parallel
	defer func() {
		*seed, *probesFlag, *stream, *maxMem = oldSeed, oldProbes, oldStream, oldMaxMem
		*plotDir, *outFile, *parallel = oldPlot, oldOut, oldParallel
		table1Cache = nil
	}()
	*seed, *probesFlag, *stream, *maxMem = 7, 150, true, 0
	*plotDir, *outFile, *parallel = "", "", 4
	table1Cache = nil

	cmds := []struct {
		name string
		fn   func(context.Context, core.Scale) error
	}{
		{"table1", cmdTable1}, {"fig2", cmdFig2}, {"fig3", cmdFig3},
		{"fig4", cmdFig4}, {"table2", cmdTable2}, {"fig5", cmdFig5},
		{"fig6", cmdFig6}, {"fig7root", cmdFig7Root}, {"fig7nl", cmdFig7NL},
		{"middlebox", cmdMiddlebox}, {"ipv6", cmdIPv6}, {"hardening", cmdHardening},
	}
	for _, c := range cmds {
		got := captureStdout(t, func() error {
			return c.fn(context.Background(), core.ScaleSmall)
		})
		path := filepath.Join("testdata", "golden", c.name+".txt")
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (run with -update to create): %v", c.name, err)
		}
		if got != string(want) {
			t.Errorf("%s output drifted from %s\n--- got ---\n%s--- want ---\n%s",
				c.name, path, got, want)
		}
	}
}
