package main

// The blast subcommand fronts internal/blast: an open-loop UDP load
// harness against the in-process authoritative fleet (default) or any
// remote server (-addr). It is dispatched before flag.Parse in main
// because it owns its own flag set:
//
//	ritw blast -qps 50000 -duration 5s            # in-process fleet
//	ritw blast -addr 192.0.2.53:53 -qnames x.nl.  # remote target
//	ritw blast -sweep -qps 1000000                # throughput curve
import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ritw/internal/blast"
	"ritw/internal/dnswire"
)

func cmdBlast(args []string) {
	fs := flag.NewFlagSet("ritw blast", flag.ExitOnError)
	addr := fs.String("addr", "", "comma-separated remote targets (empty = spawn the in-process fleet)")
	qps := fs.Float64("qps", 10000, "aggregate offered query rate")
	duration := fs.Duration("duration", 3*time.Second, "send-phase length per run")
	workers := fs.Int("workers", 0, "socket shards (0 = all cores)")
	batch := fs.Int("batch", 64, "datagrams per sendmmsg/recvmmsg call")
	timeout := fs.Duration("timeout", time.Second, "per-query timeout before counting a loss")
	modeStr := fs.String("mode", "auto", "socket I/O: auto, mmsg (batched), udp (portable)")
	qnames := fs.String("qnames", "", "comma-separated query names (required with -addr)")
	qtypeStr := fs.String("qtype", "TXT", "query type (A, AAAA, TXT, ...)")
	edns := fs.Uint("edns", 0, "advertise EDNS0 with this UDP size (0 = no OPT)")
	doBit := fs.Bool("do", false, "set the DO bit on the advertised OPT (needs -edns)")
	validate := fs.Bool("validate", false, "fully decode every response (slow; surfaces malformed packets)")
	strict := fs.Bool("strict", false, "exit nonzero on any parse/encode/send error or zero answers (CI smoke)")
	quiet := fs.Bool("quiet", false, "suppress the live dashboard")
	sweep := fs.Bool("sweep", false, "run a throughput sweep up to -qps and print the Markdown curve")
	sweepSteps := fs.Int("sweep-steps", 6, "points in the sweep ladder (each doubling up to -qps)")
	fleetServers := fs.Int("fleet-servers", 1, "in-process fleet: number of authoritative instances")
	fleetNames := fs.Int("fleet-names", 1024, "in-process fleet: distinct names in the synthetic zone")
	fleetNX := fs.Float64("fleet-nx", 0, "in-process fleet: fraction of extra NXDOMAIN names in the query set")
	reusePort := fs.Bool("reuseport", true, "in-process fleet: SO_REUSEPORT-shard each server's UDP port (Linux)")
	fs.Parse(args)

	cfg := blast.Config{
		QPS:      *qps,
		Duration: *duration,
		Workers:  *workers,
		Batch:    *batch,
		Timeout:  *timeout,
		EDNSSize: uint16(*edns),
		DNSSECOK: *doBit,
		Validate: *validate,
	}
	var err error
	cfg.Mode, err = blast.ParseMode(*modeStr)
	check(err)
	cfg.QType, err = parseQType(*qtypeStr)
	check(err)

	var fleet *blast.Fleet
	if *addr != "" {
		cfg.Addrs = strings.Split(*addr, ",")
		if *qnames == "" {
			check(fmt.Errorf("blast: -addr needs -qnames"))
		}
		for _, s := range strings.Split(*qnames, ",") {
			n, err := dnswire.ParseName(strings.TrimSpace(s))
			check(err)
			cfg.Names = append(cfg.Names, n)
		}
	} else {
		fleet, err = blast.SpawnFleet(blast.FleetConfig{
			Servers:    *fleetServers,
			Names:      *fleetNames,
			NXRatio:    *fleetNX,
			UDPWorkers: *workers,
			ReusePort:  *reusePort,
		})
		check(err)
		defer fleet.Close()
		cfg.Addrs = fleet.Addrs()
		cfg.Names = fleet.Names()
		fmt.Fprintf(os.Stderr, "fleet: %d server(s) on %s, %d names\n",
			len(cfg.Addrs), strings.Join(cfg.Addrs, " "), len(cfg.Names))
	}
	if !*quiet {
		cfg.OnProgress = func(p blast.Progress) {
			fmt.Fprintf(os.Stderr, "\r[%6.1fs] sent %d (%.0f/s) answered %d (%.0f/s) timeouts %d errs %d p50 %.0fµs p99 %.0fµs   ",
				p.Elapsed.Seconds(), p.Sent, p.SentRate, p.Answered, p.AnsweredRate,
				p.Timeouts, p.Errors, p.P50us, p.P99us)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *sweep {
		rates := blast.SweepRates(*qps, *sweepSteps)
		points, err := blast.Sweep(ctx, cfg, rates, func(p blast.SweepPoint) {
			fmt.Fprintf(os.Stderr, "\rsweep %.0f qps: answered %.0f qps, loss %.2f%%                    \n",
				p.Offered, p.Res.AnsweredQPS(), 100*p.Res.LossFrac())
		})
		if err != nil && err != context.Canceled {
			check(err)
		}
		fmt.Printf("\nThroughput sweep (%s, %d workers, batch %d):\n\n",
			modeLabel(cfg), pickWorkers(points), *batch)
		fmt.Print(blast.SweepTable(points))
		return
	}

	res, err := blast.Run(ctx, cfg)
	if err != nil && err != context.Canceled {
		check(err)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	fmt.Print(res.Table())
	if fleet != nil {
		st := fleet.Stats()
		fmt.Printf("fleet engines served %d queries (%d dropped)\n", st.Queries, st.Dropped)
	}
	if *strict {
		if errs := res.ParseErrors + res.EncodeErrors + res.SendErrors; errs > 0 || res.Answered == 0 {
			fmt.Fprintf(os.Stderr, "ritw blast: strict: %d errors, %d answered\n", errs, res.Answered)
			os.Exit(1)
		}
	}
}

// modeLabel resolves ModeAuto to the path the run actually takes.
func modeLabel(cfg blast.Config) string {
	if cfg.Mode == blast.ModeAuto {
		if blast.BatchedSupported() {
			return "mmsg"
		}
		return "udp"
	}
	return cfg.Mode.String()
}

// pickWorkers reports the worker count of the first completed point
// (all points share it; 0 if the sweep was cancelled immediately).
func pickWorkers(points []blast.SweepPoint) int {
	if len(points) == 0 {
		return 0
	}
	return points[0].Res.Workers
}

// parseQType maps the common mnemonic names onto wire types.
func parseQType(s string) (dnswire.Type, error) {
	switch strings.ToUpper(s) {
	case "A":
		return dnswire.TypeA, nil
	case "AAAA":
		return dnswire.TypeAAAA, nil
	case "NS":
		return dnswire.TypeNS, nil
	case "TXT":
		return dnswire.TypeTXT, nil
	case "SOA":
		return dnswire.TypeSOA, nil
	case "CNAME":
		return dnswire.TypeCNAME, nil
	case "MX":
		return dnswire.TypeMX, nil
	}
	return 0, fmt.Errorf("blast: unknown qtype %q", s)
}
