package main

import (
	"context"
	"testing"

	"ritw/internal/core"
)

func TestParseScale(t *testing.T) {
	cases := map[string]core.Scale{
		"small":  core.ScaleSmall,
		"medium": core.ScaleMedium,
		"full":   core.ScaleFull,
	}
	for name, want := range cases {
		got, err := parseScale(name)
		if err != nil || got != want {
			t.Errorf("parseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseScale("planetary"); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestCommandTableCoversAll(t *testing.T) {
	// The "all" ordering must reference only registered commands, and
	// every registered command should be reachable from "all" except
	// none (keep them in sync when adding subcommands).
	cmds := map[string]func(context.Context, core.Scale) error{
		"table1": cmdTable1, "fig2": cmdFig2, "fig3": cmdFig3,
		"fig4": cmdFig4, "table2": cmdTable2, "fig5": cmdFig5,
		"fig6": cmdFig6, "fig7root": cmdFig7Root, "fig7nl": cmdFig7NL,
		"middlebox": cmdMiddlebox, "ipv6": cmdIPv6, "hardening": cmdHardening,
		"planner": cmdPlanner, "outage": cmdOutage, "openres": cmdOpenResolver,
	}
	order := []string{"table1", "fig2", "fig3", "fig4", "table2", "fig5", "fig6",
		"fig7root", "fig7nl", "middlebox", "ipv6", "hardening", "planner",
		"outage", "openres"}
	if len(order) != len(cmds) {
		t.Fatalf("all-order has %d entries, command table %d", len(order), len(cmds))
	}
	for _, name := range order {
		if cmds[name] == nil {
			t.Errorf("ordering references unknown command %q", name)
		}
	}
}
