package main

import (
	"context"
	"io"
	"os"
	"testing"

	"ritw/internal/core"
)

func TestParseScale(t *testing.T) {
	cases := map[string]core.Scale{
		"small":  core.ScaleSmall,
		"medium": core.ScaleMedium,
		"full":   core.ScaleFull,
	}
	for name, want := range cases {
		got, err := parseScale(name)
		if err != nil || got != want {
			t.Errorf("parseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseScale("planetary"); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestCommandTableCoversAll(t *testing.T) {
	// The "all" ordering must reference only registered commands, and
	// every registered command should be reachable from "all" except
	// none (keep them in sync when adding subcommands).
	cmds := map[string]func(context.Context, core.Scale) error{
		"table1": cmdTable1, "fig2": cmdFig2, "fig3": cmdFig3,
		"fig4": cmdFig4, "table2": cmdTable2, "fig5": cmdFig5,
		"fig6": cmdFig6, "fig7root": cmdFig7Root, "fig7nl": cmdFig7NL,
		"middlebox": cmdMiddlebox, "ipv6": cmdIPv6, "hardening": cmdHardening,
		"planner": cmdPlanner, "outage": cmdOutage, "openres": cmdOpenResolver,
		"scenarios": cmdScenarios,
	}
	order := []string{"table1", "fig2", "fig3", "fig4", "table2", "fig5", "fig6",
		"fig7root", "fig7nl", "middlebox", "ipv6", "hardening", "planner",
		"outage", "openres", "scenarios"}
	if len(order) != len(cmds) {
		t.Fatalf("all-order has %d entries, command table %d", len(order), len(cmds))
	}
	for _, name := range order {
		if cmds[name] == nil {
			t.Errorf("ordering references unknown command %q", name)
		}
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything it printed. The command functions write straight
// to stdout, so this is the CLI's observable output.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}

// TestStreamOutputMatchesMaterialized is the refactor's contract: at
// the same seed, every figure and table command prints byte-identical
// output whether records are materialized into datasets or streamed
// into incremental aggregators (-stream, exact mode).
func TestStreamOutputMatchesMaterialized(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the figure suite twice")
	}
	oldSeed, oldProbes, oldStream, oldMaxMem := *seed, *probesFlag, *stream, *maxMem
	oldPlot, oldOut, oldParallel := *plotDir, *outFile, *parallel
	defer func() {
		*seed, *probesFlag, *stream, *maxMem = oldSeed, oldProbes, oldStream, oldMaxMem
		*plotDir, *outFile, *parallel = oldPlot, oldOut, oldParallel
		table1Cache = nil
	}()
	*seed, *probesFlag, *maxMem = 7, 150, 0
	*plotDir, *outFile, *parallel = "", "", 4

	cmds := []struct {
		name string
		fn   func(context.Context, core.Scale) error
	}{
		{"table1", cmdTable1}, {"fig2", cmdFig2}, {"fig3", cmdFig3},
		{"fig4", cmdFig4}, {"table2", cmdTable2}, {"fig5", cmdFig5},
		{"fig6", cmdFig6}, {"fig7root", cmdFig7Root}, {"fig7nl", cmdFig7NL},
		{"middlebox", cmdMiddlebox}, {"ipv6", cmdIPv6}, {"hardening", cmdHardening},
	}
	run := func(streamMode bool) map[string]string {
		*stream = streamMode
		table1Cache = nil
		out := make(map[string]string, len(cmds))
		for _, c := range cmds {
			out[c.name] = captureStdout(t, func() error {
				return c.fn(context.Background(), core.ScaleSmall)
			})
		}
		return out
	}
	mat := run(false)
	str := run(true)
	for _, c := range cmds {
		if mat[c.name] != str[c.name] {
			t.Errorf("%s output differs between modes\nmaterialized:\n%s\nstreaming:\n%s",
				c.name, mat[c.name], str[c.name])
		}
	}
}
