package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ritw/internal/core"
	"ritw/internal/measure"
)

// TestMain hands lane-worker re-execs to the worker loop: a -workers
// run inside a test spawns os.Executable — the test binary — as
// `<binary> lane-worker`, and those children must speak lanewire on
// stdio instead of running the test suite.
func TestMain(m *testing.M) {
	if measure.MaybeRunLaneWorker() {
		return
	}
	os.Exit(m.Run())
}

func TestParseScale(t *testing.T) {
	cases := map[string]core.Scale{
		"small":  core.ScaleSmall,
		"medium": core.ScaleMedium,
		"full":   core.ScaleFull,
	}
	for name, want := range cases {
		got, err := parseScale(name)
		if err != nil || got != want {
			t.Errorf("parseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseScale("planetary"); err == nil {
		t.Error("unknown scale should fail")
	}
}

func TestCommandTableCoversAll(t *testing.T) {
	// The "all" ordering must reference only registered commands, and
	// every registered command should be reachable from "all" except
	// none (keep them in sync when adding subcommands).
	cmds := map[string]func(context.Context, core.Scale) error{
		"table1": cmdTable1, "fig2": cmdFig2, "fig3": cmdFig3,
		"fig4": cmdFig4, "table2": cmdTable2, "fig5": cmdFig5,
		"fig6": cmdFig6, "fig7root": cmdFig7Root, "fig7nl": cmdFig7NL,
		"middlebox": cmdMiddlebox, "ipv6": cmdIPv6, "hardening": cmdHardening,
		"planner": cmdPlanner, "outage": cmdOutage, "openres": cmdOpenResolver,
		"scenarios": cmdScenarios, "attacks": cmdAttacks,
	}
	order := []string{"table1", "fig2", "fig3", "fig4", "table2", "fig5", "fig6",
		"fig7root", "fig7nl", "middlebox", "ipv6", "hardening", "planner",
		"outage", "openres", "scenarios", "attacks"}
	if len(order) != len(cmds) {
		t.Fatalf("all-order has %d entries, command table %d", len(order), len(cmds))
	}
	for _, name := range order {
		if cmds[name] == nil {
			t.Errorf("ordering references unknown command %q", name)
		}
	}
}

func TestValidateLayout(t *testing.T) {
	cases := []struct {
		name    string
		shards  int
		workers int
		every   time.Duration
		resume  bool
		wantErr string
	}{
		{"defaults", 0, 0, 0, false, ""},
		{"workers fill shards", 4, 4, 0, false, ""},
		{"snapshot resume", 8, 2, time.Minute, true, ""},
		{"negative shards", -1, 0, 0, false, "-shards"},
		{"negative workers", 4, -2, 0, false, "-workers"},
		{"more workers than shards", 2, 3, 0, false, "lane"},
		{"workers without shards", 0, 2, 0, false, "lane"},
		{"negative cadence", 0, 0, -time.Second, false, "-snapshot-every"},
		{"resume without cadence", 0, 0, 0, true, "-snapshot-every"},
	}
	for _, c := range cases {
		err := validateLayout(c.shards, c.workers, c.every, c.resume)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error = %v, want mention of %q", c.name, err, c.wantErr)
		}
	}
}

// TestSpillSnapshotResume pins the CLI resume wiring end to end: a
// streaming batch with -out and -snapshot-every leaves checkpoints; a
// rerun with -resume loads them, truncates the spill CSV back to the
// offset the last checkpoint durably covered (discarding the
// uncheckpointed tail a crash can leave), replays, and ends with a
// byte-identical dataset.
func TestSpillSnapshotResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the table-1 batch twice")
	}
	oldSeed, oldProbes, oldStream, oldMaxMem := *seed, *probesFlag, *stream, *maxMem
	oldPlot, oldOut, oldParallel, oldCombo := *plotDir, *outFile, *parallel, *comboID
	oldEvery, oldDir, oldResume := *snapEvery, *snapDir, *resumeFlag
	defer func() {
		*seed, *probesFlag, *stream, *maxMem = oldSeed, oldProbes, oldStream, oldMaxMem
		*plotDir, *outFile, *parallel, *comboID = oldPlot, oldOut, oldParallel, oldCombo
		*snapEvery, *snapDir, *resumeFlag = oldEvery, oldDir, oldResume
		table1Cache = nil
	}()
	dir := t.TempDir()
	out := filepath.Join(dir, "spill.csv")
	*seed, *probesFlag, *stream, *maxMem = 7, 120, true, 0
	*plotDir, *outFile, *parallel, *comboID = "", out, 4, "2A"
	*snapEvery, *snapDir, *resumeFlag = 10*time.Minute, dir, false

	table1Cache = nil
	if _, err := allSources(context.Background(), core.ScaleSmall); err != nil {
		t.Fatal(err)
	}
	control, err := os.ReadFile(out)
	if err != nil || len(control) == 0 {
		t.Fatalf("no spill written: %v (%d bytes)", err, len(control))
	}
	if _, err := measure.LoadSnapshot(snapPath("2A")); err != nil {
		t.Fatalf("no checkpoint for the spilled combo: %v", err)
	}
	// Simulate a crash that wrote past the last checkpoint: resume must
	// cut this tail before appending.
	f, err := os.OpenFile(out, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage,tail,beyond,the,checkpoint\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	*resumeFlag = true
	table1Cache = nil
	if _, err := allSources(context.Background(), core.ScaleSmall); err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(control, resumed) {
		t.Fatalf("resumed spill differs from the original: %d vs %d bytes", len(resumed), len(control))
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything it printed. The command functions write straight
// to stdout, so this is the CLI's observable output.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput so far:\n%s", ferr, out)
	}
	return out
}

// TestStreamOutputMatchesMaterialized is the refactor's contract: at
// the same seed, every figure and table command prints byte-identical
// output whether records are materialized into datasets or streamed
// into incremental aggregators (-stream, exact mode).
func TestStreamOutputMatchesMaterialized(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the figure suite twice")
	}
	oldSeed, oldProbes, oldStream, oldMaxMem := *seed, *probesFlag, *stream, *maxMem
	oldPlot, oldOut, oldParallel := *plotDir, *outFile, *parallel
	defer func() {
		*seed, *probesFlag, *stream, *maxMem = oldSeed, oldProbes, oldStream, oldMaxMem
		*plotDir, *outFile, *parallel = oldPlot, oldOut, oldParallel
		table1Cache = nil
	}()
	*seed, *probesFlag, *maxMem = 7, 150, 0
	*plotDir, *outFile, *parallel = "", "", 4

	cmds := []struct {
		name string
		fn   func(context.Context, core.Scale) error
	}{
		{"table1", cmdTable1}, {"fig2", cmdFig2}, {"fig3", cmdFig3},
		{"fig4", cmdFig4}, {"table2", cmdTable2}, {"fig5", cmdFig5},
		{"fig6", cmdFig6}, {"fig7root", cmdFig7Root}, {"fig7nl", cmdFig7NL},
		{"middlebox", cmdMiddlebox}, {"ipv6", cmdIPv6}, {"hardening", cmdHardening},
	}
	run := func(streamMode bool) map[string]string {
		*stream = streamMode
		table1Cache = nil
		out := make(map[string]string, len(cmds))
		for _, c := range cmds {
			out[c.name] = captureStdout(t, func() error {
				return c.fn(context.Background(), core.ScaleSmall)
			})
		}
		return out
	}
	mat := run(false)
	str := run(true)
	for _, c := range cmds {
		if mat[c.name] != str[c.name] {
			t.Errorf("%s output differs between modes\nmaterialized:\n%s\nstreaming:\n%s",
				c.name, mat[c.name], str[c.name])
		}
	}
}
