package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ritw/internal/attacks"
	"ritw/internal/core"
	"ritw/internal/netsim"
)

// TestGoldenAttacks pins the exact text of the preset defense-matrix
// battery at a fixed seed in stream mode against a checked-in golden:
// the campaign schedules, the attack ledgers (bots, packets,
// amplification factors), and the benign collateral impact tables.
// Any drift in attack traffic generation, the MaxFetch budget, or the
// negative cache shows up as a readable text diff in CI. Regenerate
// deliberately with: go test ./cmd/ritw -run TestGoldenAttacks -update
func TestGoldenAttacks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the attack battery")
	}
	runAttackGolden(t, 0, 0, netsim.SchedHeap, *updateGolden)
}

// TestGoldenAttacksSharded replays the battery split across simulation
// shards and demands the exact bytes of the sequential golden: attack
// traffic rides the same entity-keyed determinism contract as benign
// traffic, so shard layout must not change a single byte.
// RITW_CROSSCHECK_SHARDS elevates the shard count for the CI
// crosscheck job.
func TestGoldenAttacksSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the attack battery")
	}
	runAttackGolden(t, crosscheckShards(t, 4), 0, crosscheckSched(t, netsim.SchedHeap), false)
}

// TestGoldenAttacksWorkers replays the battery with every run's lanes
// distributed over `ritw lane-worker` subprocesses and demands the
// exact bytes of the sequential golden: the attack schedule and
// defense matrix travel the lanewire job protocol, and the results
// must not depend on the process layout. RITW_CROSSCHECK_WORKERS
// elevates the worker count for the CI crosscheck job.
func TestGoldenAttacksWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the attack battery over subprocess workers")
	}
	workers := crosscheckWorkers(t, 2)
	shards := crosscheckShards(t, 4)
	if shards < workers {
		shards = workers
	}
	runAttackGolden(t, shards, workers, crosscheckSched(t, netsim.SchedHeap), false)
}

// runAttackGolden executes the preset battery at the pinned seed and
// compares (or rewrites) the golden. shards=0 runs the single
// sequential lane that defines the golden bytes.
func runAttackGolden(t *testing.T, shards, workers int, kind netsim.SchedulerKind, update bool) {
	t.Helper()
	oldSeed, oldProbes, oldStream, oldMaxMem := *seed, *probesFlag, *stream, *maxMem
	oldPlot, oldOut, oldParallel, oldShards := *plotDir, *outFile, *parallel, *shardsFlag
	oldSched, oldWorkers := schedKind, *workersFlag
	defer func() {
		*seed, *probesFlag, *stream, *maxMem = oldSeed, oldProbes, oldStream, oldMaxMem
		*plotDir, *outFile, *parallel, *shardsFlag = oldPlot, oldOut, oldParallel, oldShards
		schedKind, *workersFlag = oldSched, oldWorkers
	}()
	*seed, *probesFlag, *stream, *maxMem = 7, 150, true, 0
	*plotDir, *outFile, *parallel, *shardsFlag = "", "", 4, shards
	schedKind, *workersFlag = kind, workers

	got := captureStdout(t, func() error {
		return cmdAttacks(context.Background(), core.ScaleSmall)
	})
	path := filepath.Join("testdata", "golden", "attacks.txt")
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("attacks (shards=%d workers=%d) output drifted from %s\n--- got ---\n%s--- want ---\n%s",
			shards, workers, path, got, want)
	}
}

// TestParseAttackSpec covers the -attack DSL: every kind parses into
// the right campaign with defaults and overrides, and malformed specs
// name the offending part.
func TestParseAttackSpec(t *testing.T) {
	var s attacks.Schedule
	good := []string{
		"nxns:20m-40m:interval=10s,frac=0.2,fanout=12",
		"flood:10m-30m:interval=5s,frac=0.3,names=40",
		"reflect:15m-25m:interval=2s,frac=0.5",
		"nxns:0s-1h", // all-default params
	}
	for _, spec := range good {
		if err := parseAttackSpec(&s, spec); err != nil {
			t.Errorf("parseAttackSpec(%q) = %v", spec, err)
		}
	}
	if len(s.NXNS) != 2 || len(s.Floods) != 1 || len(s.Reflections) != 1 {
		t.Fatalf("schedule = %d nxns, %d floods, %d reflections", len(s.NXNS), len(s.Floods), len(s.Reflections))
	}
	if s.NXNS[0].Fanout != 12 || s.NXNS[0].Interval != 10*time.Second || s.NXNS[0].Fraction != 0.2 {
		t.Errorf("nxns[0] = %+v", s.NXNS[0])
	}
	if s.NXNS[1].Fanout != 10 || s.NXNS[1].Interval != 10*time.Second {
		t.Errorf("nxns defaults not applied: %+v", s.NXNS[1])
	}
	if s.Floods[0].Names != 40 || s.Floods[0].Start != 10*time.Minute {
		t.Errorf("flood[0] = %+v", s.Floods[0])
	}
	if err := s.Validate(); err != nil {
		t.Errorf("parsed schedule invalid: %v", err)
	}

	bad := []struct{ spec, wantErr string }{
		{"nxns", "want kind:start-end"},
		{"nxns:20m40m", "window"},
		{"nxns:xx-40m", "start"},
		{"nxns:20m-yy", "end"},
		{"nxns:20m-40m:fanout", "k=v"},
		{"smurf:20m-40m", "unknown -attack kind"},
	}
	for _, c := range bad {
		var s attacks.Schedule
		err := parseAttackSpec(&s, c.spec)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("parseAttackSpec(%q) = %v, want mention of %q", c.spec, err, c.wantErr)
		}
	}
}
