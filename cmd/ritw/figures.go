package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"ritw/internal/geo"
	"ritw/internal/measure"
	"ritw/internal/plot"
)

// writePlot saves an SVG under -plotdir (no-op when the flag is unset).
func writePlot(name, svg string) error {
	if *plotDir == "" {
		return nil
	}
	if err := os.MkdirAll(*plotDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(*plotDir, name)
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

// plotFig2 renders the box plot of queries-to-probe-all.
func plotFig2(srcs map[string]*source) error {
	var groups []plot.BoxGroup
	for _, combo := range measure.Table1() {
		res := srcs[combo.ID].probeAll()
		groups = append(groups, plot.BoxGroup{
			Label: fmt.Sprintf("%s (%.1f%%)", res.ComboID, res.PercentAll),
			Box:   res.Box,
		})
	}
	return writePlot("fig2_probe_all.svg",
		plot.BoxChart("Queries to probe all authoritatives, after the first query",
			"# of queries after first query", groups))
}

// plotFig3 renders share-vs-RTT bars for every combination.
func plotFig3(srcs map[string]*source) error {
	for _, combo := range measure.Table1() {
		var bars []plot.ShareRTTBar
		for _, s := range srcs[combo.ID].shareVsRTT() {
			bars = append(bars, plot.ShareRTTBar{Label: s.Site, Share: s.Share, MedianRTT: s.MedianRTT})
		}
		svg := plot.ShareRTTChart("Query share and median RTT — "+combo.ID, bars)
		if err := writePlot(fmt.Sprintf("fig3_share_%s.svg", combo.ID), svg); err != nil {
			return err
		}
	}
	return nil
}

// plotFig4 renders the sorted per-recursive preference curves for the
// two-site combinations, one chart per combination with the EU curves.
func plotFig4(srcs map[string]*source) error {
	for _, id := range []string{"2A", "2B", "2C"} {
		p := srcs[id].preference()
		var series []plot.Series
		for _, site := range srcs[id].sites() {
			fracs := p.Curves[geo.Europe][site]
			xs := make([]float64, len(fracs))
			for i := range fracs {
				xs[i] = float64(i)
			}
			series = append(series, plot.Series{Name: site + " (EU)", X: xs, Y: fracs})
		}
		svg := plot.LineChart(
			fmt.Sprintf("Per-recursive query fraction — %s (weak %.0f%%, strong %.0f%%)",
				id, 100*p.WeakFrac, 100*p.StrongFrac),
			"recursives (sorted)", "fraction of queries", series, 0, 1)
		if err := writePlot(fmt.Sprintf("fig4_preference_%s.svg", id), svg); err != nil {
			return err
		}
	}
	return nil
}

// plotFig5 renders the RTT-sensitivity scatter of 2B.
func plotFig5(srcs map[string]*source) error {
	var points []plot.ScatterPoint
	sites := srcs["2B"].sites()
	for _, p := range srcs["2B"].rttSensitivity() {
		color := 0
		if p.Site == sites[1] {
			color = 1
		}
		points = append(points, plot.ScatterPoint{
			X: p.MedianRTT, Y: p.Fraction,
			Label: fmt.Sprintf("%s/%s", p.Continent, p.Site), Color: color,
		})
	}
	return writePlot("fig5_rtt_sensitivity.svg",
		plot.ScatterChart("RTT sensitivity of 2B", "median RTT (ms)", "fraction of queries", points, 0, 1))
}

// plotFig6 renders the interval sweep as one line per continent.
func plotFig6(srcs []*source) error {
	byCont := map[geo.Continent]plot.Series{}
	for _, src := range srcs {
		shares := src.siteShare("FRA")
		for _, cont := range geo.Continents() {
			s := byCont[cont]
			s.Name = cont.String()
			s.X = append(s.X, src.interval().Minutes())
			s.Y = append(s.Y, shares[cont])
			byCont[cont] = s
		}
	}
	var series []plot.Series
	for _, cont := range geo.Continents() {
		series = append(series, byCont[cont])
	}
	return writePlot("fig6_interval_sweep.svg",
		plot.LineChart("Fraction of queries to FRA (2C) vs probing interval",
			"query interval (minutes)", "fraction of queries", series, 0, 1))
}

// plotFig7 renders the rank bands of a production trace from its
// per-recursive per-server counts: the per-rank shares of up to 40
// sampled busy recursives, one stacked column each, sorted by
// top-share. Both the materialized trace and the streaming rank
// aggregator expose this pivot.
func plotFig7(name, title string, per map[string]map[string]int, minQueries int) error {
	type recBands struct {
		top    float64
		shares []float64
	}
	var recs []recBands
	for _, byServer := range per {
		total := 0
		var counts []int
		for _, n := range byServer {
			total += n
			counts = append(counts, n)
		}
		if total < minQueries {
			continue
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		shares := make([]float64, len(counts))
		for i, n := range counts {
			shares[i] = float64(n) / float64(total)
		}
		recs = append(recs, recBands{top: shares[0], shares: shares})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].top > recs[j].top })
	if len(recs) > 40 {
		// Sample evenly across the sorted population.
		sampled := make([]recBands, 0, 40)
		for i := 0; i < 40; i++ {
			sampled = append(sampled, recs[i*len(recs)/40])
		}
		recs = sampled
	}
	bands := make([]plot.Band, len(recs))
	for i, r := range recs {
		bands[i] = plot.Band{Label: "", Shares: r.shares}
	}
	return writePlot(name, plot.BandChart(title, bands))
}
