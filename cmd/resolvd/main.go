// Command resolvd runs the recursive resolver on a real UDP socket,
// with a selectable authoritative-selection policy — the behaviours
// whose aggregate the paper measures in the wild.
//
//	resolvd -addr 127.0.0.1:5301 -policy bindlike \
//	        -upstream "ourtestdomain.nl=127.0.0.2:5300,127.0.0.3:5300"
//
// Clients are distinguished by IP only (one stub per IP at a time), a
// documented limitation of the research daemon.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/obs"
	"ritw/internal/resolver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5301", "listen address (UDP)")
	policyName := flag.String("policy", "bindlike",
		"selection policy: bindlike, unboundlike, weightedrtt, uniform, roundrobin, sticky, probetopn")
	singleflight := flag.Bool("singleflight", false, "coalesce concurrent identical client queries into one upstream query")
	qnameMin := flag.Bool("qname-minimize", false, "RFC 9156 qname minimization: walk down the delegation one label at a time")
	infraTTL := flag.Duration("infra-ttl", 10*time.Minute, "infrastructure-cache TTL (0 = never expire)")
	decayKeep := flag.Bool("decay-keep", true, "keep stale latency estimates instead of forgetting them")
	timeout := flag.Duration("timeout", 800*time.Millisecond, "upstream query timeout")
	backoffBase := flag.Duration("backoff-base", 2*time.Second, "first hold-down interval after consecutive upstream timeouts")
	backoffMax := flag.Duration("backoff-max", 5*time.Minute, "hold-down cap for the exponential backoff")
	backoffThreshold := flag.Int("backoff-threshold", 2, "consecutive timeouts before a server is held down")
	noBackoff := flag.Bool("no-backoff", false, "disable per-server hold-down (retry dead servers at full rate)")
	seed := flag.Int64("seed", time.Now().UnixNano(), "selection RNG seed")
	metricsAddr := flag.String("metrics-addr", "", "serve a text metrics endpoint on this address (empty = off)")
	var upstreams multiFlag
	flag.Var(&upstreams, "upstream", "zone=host:port[,host:port...] (repeatable)")
	flag.Parse()

	kind, err := parsePolicy(*policyName)
	if err != nil {
		log.Fatalf("resolvd: %v", err)
	}
	if len(upstreams) == 0 {
		fmt.Fprintln(os.Stderr, "resolvd: at least one -upstream required")
		flag.PrintDefaults()
		os.Exit(2)
	}

	srv, err := resolver.NewUDPServer(*addr)
	if err != nil {
		log.Fatalf("resolvd: %v", err)
	}

	var zones []resolver.ZoneServers
	for _, spec := range upstreams {
		zs, err := parseUpstream(spec, srv)
		if err != nil {
			log.Fatalf("resolvd: %v", err)
		}
		zones = append(zones, zs)
	}

	retention := resolver.HardExpire
	if *decayKeep {
		retention = resolver.DecayKeep
	}
	infra := resolver.NewInfraCache(*infraTTL, retention)
	infra.SetBackoff(resolver.BackoffConfig{
		Disabled:  *noBackoff,
		Base:      *backoffBase,
		Max:       *backoffMax,
		Threshold: *backoffThreshold,
	})
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		// Upstream addresses are stable here (unlike simulator runs),
		// so per-server SRTT gauges are meaningful.
		infra.SetMetrics(reg)
		go func() {
			log.Printf("metrics on http://%s/metrics", *metricsAddr)
			log.Printf("resolvd: metrics endpoint: %v", obs.ListenAndServe(*metricsAddr, reg))
		}()
	}
	eng := resolver.NewEngine(resolver.Config{
		Policy:        resolver.NewPolicy(kind),
		Infra:         infra,
		Cache:         resolver.NewRecordCache(),
		Zones:         zones,
		Transport:     srv,
		Clock:         &resolver.RealClock{},
		RNG:           rand.New(rand.NewSource(*seed)),
		Timeout:       *timeout,
		Metrics:       reg,
		Singleflight:  *singleflight,
		QnameMinimize: *qnameMin,
	})
	go srv.Serve(eng)
	log.Printf("resolving with policy %s on %s (%d zones)", kind, srv.Addr(), len(zones))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	st := eng.Stats()
	log.Printf("stats: %d client queries, %d cache hits, %d upstream, %d timeouts, %d servfail",
		st.ClientQueries, st.CacheHits, st.UpstreamQueries, st.Timeouts, st.ServFails)
}

// parsePolicy maps a policy name to its kind.
func parsePolicy(name string) (resolver.PolicyKind, error) {
	kinds := []resolver.PolicyKind{
		resolver.KindBINDLike, resolver.KindUnboundLike, resolver.KindWeightedRTT,
		resolver.KindUniform, resolver.KindRoundRobin, resolver.KindSticky,
		resolver.KindProbeTopN,
	}
	for _, k := range kinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", name)
}

// parseUpstream parses "zone=host:port,host:port" and registers routes.
func parseUpstream(spec string, srv *resolver.UDPServer) (resolver.ZoneServers, error) {
	zoneName, list, ok := strings.Cut(spec, "=")
	if !ok {
		return resolver.ZoneServers{}, fmt.Errorf("bad upstream %q (want zone=host:port,...)", spec)
	}
	origin, err := dnswire.ParseName(zoneName)
	if err != nil {
		return resolver.ZoneServers{}, err
	}
	var servers []netip.Addr
	for _, hp := range strings.Split(list, ",") {
		ap, err := netip.ParseAddrPort(strings.TrimSpace(hp))
		if err != nil {
			return resolver.ZoneServers{}, fmt.Errorf("bad server %q: %w", hp, err)
		}
		srv.Route(ap.Addr(), ap.Port())
		servers = append(servers, ap.Addr())
	}
	if len(servers) == 0 {
		return resolver.ZoneServers{}, fmt.Errorf("upstream %q has no servers", spec)
	}
	return resolver.ZoneServers{Zone: origin, Servers: servers}, nil
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ";") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
