package main

import (
	"testing"

	"ritw/internal/dnswire"
	"ritw/internal/resolver"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]resolver.PolicyKind{
		"bindlike":    resolver.KindBINDLike,
		"unboundlike": resolver.KindUnboundLike,
		"weightedrtt": resolver.KindWeightedRTT,
		"uniform":     resolver.KindUniform,
		"roundrobin":  resolver.KindRoundRobin,
		"sticky":      resolver.KindSticky,
	}
	for name, want := range cases {
		got, err := parsePolicy(name)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parsePolicy("nonsense"); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestParseUpstream(t *testing.T) {
	srv, err := resolver.NewUDPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	zs, err := parseUpstream("ourtestdomain.nl=192.0.2.1:5300, 192.0.2.2:5300", srv)
	if err != nil {
		t.Fatal(err)
	}
	if !zs.Zone.Equal(dnswire.MustParseName("ourtestdomain.nl")) {
		t.Errorf("zone = %v", zs.Zone)
	}
	if len(zs.Servers) != 2 {
		t.Errorf("servers = %v", zs.Servers)
	}

	for _, bad := range []string{
		"no-equals-sign",
		"zone.nl=notanaddr",
		"zone.nl=192.0.2.1", // missing port
		"bad..zone=192.0.2.1:53",
	} {
		if _, err := parseUpstream(bad, srv); err == nil {
			t.Errorf("parseUpstream(%q) should fail", bad)
		}
	}
}

func TestMultiFlag(t *testing.T) {
	var m multiFlag
	if err := m.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("b"); err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m.String() != "a;b" {
		t.Errorf("multiFlag = %v / %q", m, m.String())
	}
}
