package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v, %v) = %v, want %v", xs, c.p, got, c.want)
		}
	}
}

func TestPercentileUnsortedInputUnchanged(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("median of shuffled = %v, want 3", got)
	}
	// Input must not be mutated.
	want := []float64{5, 1, 3, 2, 4}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("input mutated at %d: %v", i, xs)
		}
	}
}

func TestPercentileEmptyAndSingle(t *testing.T) {
	if got := Percentile(nil, 50); !math.IsNaN(got) {
		t.Errorf("empty percentile = %v, want NaN", got)
	}
	if got := Percentile([]float64{42}, 99); got != 42 {
		t.Errorf("single-sample percentile = %v, want 42", got)
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	for _, p := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(p=%v) did not panic", p)
				}
			}()
			Percentile([]float64{1}, p)
		}()
	}
}

func TestMeanMedianStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-9) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Stddev(xs); !almostEqual(got, 2, 1e-9) {
		t.Errorf("Stddev = %v, want 2", got)
	}
	if got := Median(xs); !almostEqual(got, 4.5, 1e-9) {
		t.Errorf("Median = %v, want 4.5", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Stddev(nil)) {
		t.Error("Mean/Stddev of empty should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v, want -1/7", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestBoxPlot(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) // 0..100
	}
	b, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 101 || b.P10 != 10 || b.Q1 != 25 || b.Median != 50 || b.Q3 != 75 || b.P90 != 90 {
		t.Errorf("unexpected box plot: %+v", b)
	}
	if _, err := NewBoxPlot(nil); err != ErrNoSamples {
		t.Errorf("empty box plot error = %v, want ErrNoSamples", err)
	}
	if s := b.String(); s == "" {
		t.Error("String() should be non-empty")
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("CDF.At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Quantile(0.5); !almostEqual(got, 2.5, 1e-9) {
		t.Errorf("Quantile(0.5) = %v, want 2.5", got)
	}
	if c.N() != 4 {
		t.Errorf("N = %d, want 4", c.N())
	}
	if _, err := NewCDF(nil); err != ErrNoSamples {
		t.Errorf("empty CDF error = %v, want ErrNoSamples", err)
	}
}

func TestFraction(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.9, 0.95}
	got := Fraction(xs, func(x float64) bool { return x >= 0.9 })
	if !almostEqual(got, 0.5, 1e-9) {
		t.Errorf("Fraction = %v, want 0.5", got)
	}
	if Fraction(nil, func(float64) bool { return true }) != 0 {
		t.Error("Fraction of empty should be 0")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-5, 0, 0.5, 1.5, 2.5, 99}
	h := Histogram(xs, 0, 3, 3)
	// -5 clamps to bin 0; 99 clamps to bin 2.
	want := []int{3, 1, 2}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("Histogram = %v, want %v", h, want)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Histogram(nil, 0, 1, 0) },
		func() { Histogram(nil, 1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: percentiles are monotonically non-decreasing in p, and the
// result always lies within [min, max] of the sample.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64, p1, p2 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := float64(p1 % 101) // 0..100
		b := float64(p2 % 101)
		if a > b {
			a, b = b, a
		}
		va, vb := Percentile(xs, a), Percentile(xs, b)
		if va > vb {
			return false
		}
		return va >= Min(xs)-1e-9 && vb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CDF.At is monotone and bounded in [0,1]; CDF.At(max) == 1.
func TestCDFProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		if c.At(Max(xs)) != 1 {
			return false
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.25 {
			v := c.At(c.Quantile(q))
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Histogram preserves the total count.
func TestHistogramTotalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(1000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		h := Histogram(xs, -50, 50, 7)
		total := 0
		for _, c := range h {
			total += c
		}
		if total != n {
			t.Fatalf("histogram total = %d, want %d", total, n)
		}
	}
}

func BenchmarkPercentile(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 90)
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 100
	}
	lo, hi, err := BootstrapCI(xs, Median, 0.95, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
	// The true median (100) should be inside a 95% CI of 500 samples.
	if lo > 100 || hi < 100 {
		t.Errorf("CI [%v, %v] misses the true median", lo, hi)
	}
	// Width should be modest: sd(median) ≈ 1.25*10/sqrt(500) ≈ 0.56.
	if hi-lo > 5 {
		t.Errorf("CI too wide: %v", hi-lo)
	}
	if _, _, err := BootstrapCI(nil, Median, 0.95, 100, rng); err != ErrNoSamples {
		t.Errorf("empty err = %v", err)
	}
	if _, _, err := BootstrapCI(xs, Median, 1.5, 100, rng); err == nil {
		t.Error("bad level should fail")
	}
}

func TestBootstrapCINarrowsWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	width := func(n int) float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		lo, hi, err := BootstrapCI(xs, Mean, 0.9, 300, rng)
		if err != nil {
			t.Fatal(err)
		}
		return hi - lo
	}
	if w1, w2 := width(50), width(5000); w2 >= w1 {
		t.Errorf("CI should narrow with sample size: %v -> %v", w1, w2)
	}
}
