// Package stats provides the small statistical toolkit used by the
// measurement analyses: medians, percentiles, box-plot summaries and
// empirical CDFs. All functions operate on float64 samples and are
// deliberately simple so that analysis code reads like the paper's
// prose ("median RTT", "quartiles and whiskers 10/90%ile").
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrNoSamples is returned by summary constructors when the input is empty.
var ErrNoSamples = errors.New("stats: no samples")

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks (the same method as
// numpy's default). xs does not need to be sorted. It panics if p is
// out of range and returns NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted computes the percentile of an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs, NaN for empty input.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary is a sorted view of a sample: one sort up front, then any
// number of Percentile/Median calls without re-sorting. Use it when the
// same sample is probed at several ranks (box plots, aggregator
// finalization); Percentile/Median on raw slices re-sort per call.
type Summary struct {
	sorted []float64
}

// NewSummary copies and sorts xs once. An empty sample is allowed; its
// percentiles are NaN, matching Percentile on an empty slice.
func NewSummary(xs []float64) Summary {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{sorted: sorted}
}

// SummaryOfSorted wraps an already-sorted slice without copying. The
// caller promises not to mutate xs afterwards.
func SummaryOfSorted(xs []float64) Summary { return Summary{sorted: xs} }

// Percentile returns the p-th percentile of the summarized sample,
// identical to Percentile(xs, p) on the original sample.
func (s Summary) Percentile(p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	if len(s.sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(s.sorted, p)
}

// Median returns the median of the summarized sample.
func (s Summary) Median() float64 { return s.Percentile(50) }

// N returns the number of samples behind the summary.
func (s Summary) N() int { return len(s.sorted) }

// Mean returns the arithmetic mean of xs, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs,
// NaN for empty input and 0 for a single sample.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the minimum of xs, NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// BoxPlot summarizes a sample the way the paper's Figure 2 draws it:
// quartile box with 10/90-percentile whiskers.
type BoxPlot struct {
	N      int     // number of samples
	P10    float64 // lower whisker
	Q1     float64 // lower quartile
	Median float64
	Q3     float64 // upper quartile
	P90    float64 // upper whisker
}

// NewBoxPlot computes a BoxPlot summary for xs. It sorts once via
// Summary and reads all five ranks off the sorted view.
func NewBoxPlot(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrNoSamples
	}
	s := NewSummary(xs)
	return BoxPlot{
		N:      s.N(),
		P10:    s.Percentile(10),
		Q1:     s.Percentile(25),
		Median: s.Median(),
		Q3:     s.Percentile(75),
		P90:    s.Percentile(90),
	}, nil
}

// String renders the summary on one line, e.g. for harness output.
func (b BoxPlot) String() string {
	return fmt.Sprintf("n=%d p10=%.1f q1=%.1f med=%.1f q3=%.1f p90=%.1f",
		b.N, b.P10, b.Q1, b.Median, b.Q3, b.P90)
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (a copy is taken).
func NewCDF(xs []float64) (CDF, error) {
	if len(xs) == 0 {
		return CDF{}, ErrNoSamples
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return CDF{sorted: sorted}, nil
}

// At returns P(X <= x), the fraction of samples at or below x.
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the sample.
func (c CDF) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of range [0,1]", q))
	}
	return percentileSorted(c.sorted, q*100)
}

// N returns the number of samples behind the CDF.
func (c CDF) N() int { return len(c.sorted) }

// Fraction returns the share of xs for which pred holds. It returns 0
// for an empty slice, which suits "fraction of recursives with a
// preference"-style analyses where an empty group contributes nothing.
func Fraction(xs []float64, pred func(float64) bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if pred(x) {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// BootstrapCI estimates a confidence interval for a statistic of xs by
// resampling with replacement. stat maps a sample to the statistic
// (e.g. Median, or a preference fraction); level is the coverage
// (e.g. 0.95). The analyses use this to put uncertainty bands on the
// paper's weak/strong preference fractions, which the paper reports as
// point estimates. The rng makes results reproducible.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, rounds int, rng *rand.Rand) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrNoSamples
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence level %v out of (0,1)", level)
	}
	if rounds < 10 {
		rounds = 10
	}
	estimates := make([]float64, rounds)
	resample := make([]float64, len(xs))
	for r := 0; r < rounds; r++ {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		estimates[r] = stat(resample)
	}
	alpha := (1 - level) / 2
	return Percentile(estimates, 100*alpha), Percentile(estimates, 100*(1-alpha)), nil
}

// Histogram counts samples into equal-width bins over [lo, hi). Values
// outside the range are clamped into the first/last bin so totals are
// preserved. It panics if bins <= 0 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, bins int) []int {
	if bins <= 0 {
		panic("stats: Histogram needs bins > 0")
	}
	if hi <= lo {
		panic("stats: Histogram needs hi > lo")
	}
	counts := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}
