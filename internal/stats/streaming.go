package stats

import (
	"math"
	"math/rand"
	"sort"
)

// This file holds the streaming counterparts of the batch summaries:
// accumulators that consume one sample at a time and never hold more
// state than a configured bound. They back the analysis aggregators,
// which turn the record stream of a run into the paper's figures
// without materializing the dataset.

// Running accumulates count, mean, variance and extrema online using
// Welford's algorithm. The zero value is ready to use. Unlike the batch
// helpers it never stores samples, so its memory is O(1) regardless of
// how many values are observed.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Observe folds one sample into the accumulator.
func (r *Running) Observe(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples observed.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, NaN before any sample.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the population variance, NaN before any sample.
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.m2 / float64(r.n)
}

// Stddev returns the population standard deviation, NaN before any
// sample — the streaming twin of Stddev.
func (r *Running) Stddev() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return math.Sqrt(r.Variance())
}

// Min returns the smallest sample seen, NaN before any sample.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest sample seen, NaN before any sample.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// QuantileSketch estimates quantiles of a stream. Below the cap it
// keeps every sample, so quantiles are exact and bit-for-bit equal to
// Percentile over the same values; past the cap it degrades to uniform
// reservoir sampling (Vitter's algorithm R) with a deterministic,
// seeded generator, bounding memory at cap samples. Cap <= 0 means
// "no cap": the sketch stays exact forever, which is what the analysis
// wrappers use to guarantee byte-identical figure output.
//
// Error bound in sampled mode: the reservoir is a uniform sample of
// size cap, so the estimate of the p-th quantile sits at a true rank
// whose error has standard deviation sqrt(p(1-p)/cap) rank units —
// at most 1/(2*sqrt(cap)), e.g. ±3.1 percentile points (one sigma)
// at the median with cap 256. TestQuantileSketchRankErrorProperty
// pins estimates within four sigmas of this bound on random streams;
// callers needing tighter figures raise the cap (error shrinks as
// 1/sqrt(cap)) or use exact mode.
type QuantileSketch struct {
	cap     int
	n       int64
	samples []float64
	rng     *rand.Rand
	seed    int64
}

// NewQuantileSketch returns a sketch bounded at cap retained samples
// (cap <= 0 keeps everything). The seed fixes the reservoir's
// replacement choices so runs are reproducible.
func NewQuantileSketch(cap int, seed int64) *QuantileSketch {
	return &QuantileSketch{cap: cap, seed: seed}
}

// Observe folds one sample into the sketch.
func (q *QuantileSketch) Observe(x float64) {
	q.n++
	if q.cap <= 0 || len(q.samples) < q.cap {
		q.samples = append(q.samples, x)
		return
	}
	if q.rng == nil {
		q.rng = rand.New(rand.NewSource(q.seed))
	}
	if i := q.rng.Int63n(q.n); i < int64(q.cap) {
		q.samples[i] = x
	}
}

// N returns the number of samples observed (not retained).
func (q *QuantileSketch) N() int64 { return q.n }

// Retained returns how many samples the sketch currently holds.
func (q *QuantileSketch) Retained() int { return len(q.samples) }

// Exact reports whether the sketch still holds every observed sample,
// i.e. quantile answers are exact rather than sampled estimates.
func (q *QuantileSketch) Exact() bool { return q.n == int64(len(q.samples)) }

// Quantile returns the p-th percentile (0..100) of the sketch, NaN
// before any sample. In exact mode it equals Percentile over the
// observed values.
func (q *QuantileSketch) Quantile(p float64) float64 {
	return q.Summary().Percentile(p)
}

// Median returns the sketch's median, NaN before any sample.
func (q *QuantileSketch) Median() float64 { return q.Quantile(50) }

// Samples returns a copy of the retained samples, in observation order.
// Callers use it to merge several sketches (concatenate and re-summarize):
// the merge is exact while every input sketch is exact; past the cap the
// concatenation is a union of uniform samples with per-sketch weights
// proportional to retained/observed, so merge sketches of similar N or
// keep them exact when the merged quantiles must be precise.
func (q *QuantileSketch) Samples() []float64 {
	return append([]float64(nil), q.samples...)
}

// Summary sorts the retained samples once and returns the sorted view,
// for callers that probe several ranks.
func (q *QuantileSketch) Summary() Summary {
	if len(q.samples) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(q.samples))
	copy(sorted, q.samples)
	sort.Float64s(sorted)
	return SummaryOfSorted(sorted)
}
