package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSummaryMatchesBatchPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 40
	}
	s := NewSummary(xs)
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 100} {
		if got, want := s.Percentile(p), Percentile(xs, p); got != want {
			t.Errorf("p%.0f: summary %v != batch %v", p, got, want)
		}
	}
	if s.Median() != Median(xs) {
		t.Error("summary median diverges")
	}
	if s.N() != len(xs) {
		t.Errorf("N = %d", s.N())
	}
	if !math.IsNaN(NewSummary(nil).Median()) {
		t.Error("empty summary should yield NaN")
	}
}

func TestBoxPlotUnchangedBySummaryRefactor(t *testing.T) {
	xs := []float64{9, 1, 4, 7, 2, 8, 3, 6, 5}
	b, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 9 || b.Median != 5 || b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("box plot = %+v", b)
	}
	if b.P10 != Percentile(xs, 10) || b.P90 != Percentile(xs, 90) {
		t.Errorf("whiskers diverge from Percentile: %+v", b)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.Float64()*200 - 50
		r.Observe(xs[i])
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if d := math.Abs(r.Mean() - Mean(xs)); d > 1e-9 {
		t.Errorf("mean diverges by %v", d)
	}
	if d := math.Abs(r.Stddev() - Stddev(xs)); d > 1e-9 {
		t.Errorf("stddev diverges by %v", d)
	}
	if r.Min() != Min(xs) || r.Max() != Max(xs) {
		t.Errorf("extrema diverge: [%v, %v]", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Stddev()) || !math.IsNaN(r.Min()) {
		t.Error("empty Running should yield NaN")
	}
}

func TestQuantileSketchExactMode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 400)
	q := NewQuantileSketch(0, 1) // no cap: exact forever
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 30
		q.Observe(xs[i])
	}
	if !q.Exact() {
		t.Fatal("uncapped sketch should stay exact")
	}
	for _, p := range []float64{10, 50, 90} {
		if got, want := q.Quantile(p), Percentile(xs, p); got != want {
			t.Errorf("p%.0f: sketch %v != batch %v", p, got, want)
		}
	}
	// Below the cap a bounded sketch is exact too.
	qb := NewQuantileSketch(1000, 1)
	for _, x := range xs {
		qb.Observe(x)
	}
	if !qb.Exact() || qb.Median() != Median(xs) {
		t.Error("under-cap sketch should be exact")
	}
}

func TestQuantileSketchBoundedMode(t *testing.T) {
	const cap, n = 256, 20000
	q := NewQuantileSketch(cap, 42)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		q.Observe(rng.Float64() * 100) // uniform on [0, 100)
	}
	if q.Retained() != cap {
		t.Fatalf("retained %d, want cap %d", q.Retained(), cap)
	}
	if q.Exact() {
		t.Fatal("over-cap sketch must not claim exactness")
	}
	if q.N() != n {
		t.Fatalf("N = %d", q.N())
	}
	// A uniform stream's sampled median lands near 50.
	if m := q.Median(); m < 35 || m > 65 {
		t.Errorf("sampled median %v implausible for U[0,100)", m)
	}
	// Determinism: same seed, same stream, same reservoir.
	q2 := NewQuantileSketch(cap, 42)
	rng2 := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		q2.Observe(rng2.Float64() * 100)
	}
	if q.Median() != q2.Median() {
		t.Error("seeded reservoir should be deterministic")
	}
	if !math.IsNaN(NewQuantileSketch(8, 1).Median()) {
		t.Error("empty sketch should yield NaN")
	}
}
