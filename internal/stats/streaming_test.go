package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestSummaryMatchesBatchPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 40
	}
	s := NewSummary(xs)
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 100} {
		if got, want := s.Percentile(p), Percentile(xs, p); got != want {
			t.Errorf("p%.0f: summary %v != batch %v", p, got, want)
		}
	}
	if s.Median() != Median(xs) {
		t.Error("summary median diverges")
	}
	if s.N() != len(xs) {
		t.Errorf("N = %d", s.N())
	}
	if !math.IsNaN(NewSummary(nil).Median()) {
		t.Error("empty summary should yield NaN")
	}
}

func TestBoxPlotUnchangedBySummaryRefactor(t *testing.T) {
	xs := []float64{9, 1, 4, 7, 2, 8, 3, 6, 5}
	b, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 9 || b.Median != 5 || b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("box plot = %+v", b)
	}
	if b.P10 != Percentile(xs, 10) || b.P90 != Percentile(xs, 90) {
		t.Errorf("whiskers diverge from Percentile: %+v", b)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.Float64()*200 - 50
		r.Observe(xs[i])
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if d := math.Abs(r.Mean() - Mean(xs)); d > 1e-9 {
		t.Errorf("mean diverges by %v", d)
	}
	if d := math.Abs(r.Stddev() - Stddev(xs)); d > 1e-9 {
		t.Errorf("stddev diverges by %v", d)
	}
	if r.Min() != Min(xs) || r.Max() != Max(xs) {
		t.Errorf("extrema diverge: [%v, %v]", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Stddev()) || !math.IsNaN(r.Min()) {
		t.Error("empty Running should yield NaN")
	}
}

func TestQuantileSketchExactMode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 400)
	q := NewQuantileSketch(0, 1) // no cap: exact forever
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 30
		q.Observe(xs[i])
	}
	if !q.Exact() {
		t.Fatal("uncapped sketch should stay exact")
	}
	for _, p := range []float64{10, 50, 90} {
		if got, want := q.Quantile(p), Percentile(xs, p); got != want {
			t.Errorf("p%.0f: sketch %v != batch %v", p, got, want)
		}
	}
	// Below the cap a bounded sketch is exact too.
	qb := NewQuantileSketch(1000, 1)
	for _, x := range xs {
		qb.Observe(x)
	}
	if !qb.Exact() || qb.Median() != Median(xs) {
		t.Error("under-cap sketch should be exact")
	}
}

func TestQuantileSketchBoundedMode(t *testing.T) {
	const cap, n = 256, 20000
	q := NewQuantileSketch(cap, 42)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		q.Observe(rng.Float64() * 100) // uniform on [0, 100)
	}
	if q.Retained() != cap {
		t.Fatalf("retained %d, want cap %d", q.Retained(), cap)
	}
	if q.Exact() {
		t.Fatal("over-cap sketch must not claim exactness")
	}
	if q.N() != n {
		t.Fatalf("N = %d", q.N())
	}
	// A uniform stream's sampled median lands near 50.
	if m := q.Median(); m < 35 || m > 65 {
		t.Errorf("sampled median %v implausible for U[0,100)", m)
	}
	// Determinism: same seed, same stream, same reservoir.
	q2 := NewQuantileSketch(cap, 42)
	rng2 := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		q2.Observe(rng2.Float64() * 100)
	}
	if q.Median() != q2.Median() {
		t.Error("seeded reservoir should be deterministic")
	}
	if !math.IsNaN(NewQuantileSketch(8, 1).Median()) {
		t.Error("empty sketch should yield NaN")
	}
}

// TestQuantileSketchRankErrorProperty is the property-based check of
// the error bound documented on QuantileSketch: across randomly drawn
// distribution shapes, stream lengths and caps, every sampled
// quantile estimate must sit within four sigmas of its true rank,
// sigma = sqrt(p(1-p)/cap). The rank of the estimate is measured as a
// bracket [frac(< est), frac(<= est)] against the exact sorted stream
// so duplicate-heavy and constant streams are judged fairly. All
// randomness is seeded, so a failure is reproducible, not flaky.
func TestQuantileSketchRankErrorProperty(t *testing.T) {
	gen := rand.New(rand.NewSource(20170901))
	draw := func(kind int, rng *rand.Rand) float64 {
		switch kind {
		case 0: // uniform
			return rng.Float64() * 100
		case 1: // heavy-tailed
			return rng.ExpFloat64() * 30
		case 2: // gaussian
			return rng.NormFloat64()*15 + 50
		case 3: // bimodal (RTT-like: two catchments)
			if rng.Intn(2) == 0 {
				return rng.NormFloat64()*2 + 10
			}
			return rng.NormFloat64()*5 + 120
		default: // discrete with heavy duplication
			return float64(rng.Intn(12))
		}
	}
	caps := []int{64, 256, 1024}
	quantiles := []float64{5, 10, 25, 50, 75, 90, 95}

	for trial := 0; trial < 30; trial++ {
		kind := gen.Intn(5)
		capN := caps[gen.Intn(len(caps))]
		n := capN*2 + gen.Intn(capN*40)
		streamSeed, sketchSeed := gen.Int63(), gen.Int63()

		q := NewQuantileSketch(capN, sketchSeed)
		xs := make([]float64, n)
		rng := rand.New(rand.NewSource(streamSeed))
		for i := range xs {
			xs[i] = draw(kind, rng)
			q.Observe(xs[i])
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)

		if q.Exact() {
			t.Fatalf("trial %d: n=%d cap=%d should be sampled", trial, n, capN)
		}
		for _, p := range quantiles {
			est := q.Quantile(p)
			// Bracket the estimate's true rank: the fraction of the
			// exact stream strictly below it and at-or-below it.
			lo := float64(sort.SearchFloat64s(sorted, est)) / float64(n)
			hi := float64(sort.Search(n, func(i int) bool { return sorted[i] > est })) / float64(n)
			want := p / 100
			sigma := math.Sqrt(want * (1 - want) / float64(capN))
			tol := 4*sigma + 1/float64(capN) // +1/cap: rank discretization
			if want < lo-tol || want > hi+tol {
				t.Errorf("trial %d (kind=%d n=%d cap=%d): p%.0f estimate %v has true rank [%.4f, %.4f], want %.4f ± %.4f",
					trial, kind, n, capN, p, est, lo, hi, want, tol)
			}
		}
		// Exact-mode property on the same stream: an uncapped sketch
		// must reproduce Percentile bit-for-bit at an arbitrary p.
		qe := NewQuantileSketch(0, sketchSeed)
		for _, x := range xs {
			qe.Observe(x)
		}
		p := gen.Float64() * 100
		if got, want := qe.Quantile(p), Percentile(xs, p); got != want {
			t.Errorf("trial %d: exact sketch p%.2f = %v, Percentile = %v", trial, p, got, want)
		}
	}
}

func TestQuantileSketchSamplesMerge(t *testing.T) {
	// Merging exact sketches by concatenating Samples must reproduce
	// the batch percentiles over the union bit-for-bit — the property
	// the blast harness relies on to fold per-worker latency sketches
	// into one run summary.
	a, b := NewQuantileSketch(0, 1), NewQuantileSketch(0, 2)
	var union []float64
	for i := 0; i < 500; i++ {
		x := float64((i*7919)%1000) / 3
		a.Observe(x)
		union = append(union, x)
	}
	for i := 0; i < 300; i++ {
		x := float64((i*104729)%1000) / 7
		b.Observe(x)
		union = append(union, x)
	}
	merged := append(a.Samples(), b.Samples()...)
	if len(merged) != len(union) {
		t.Fatalf("merged %d samples, want %d", len(merged), len(union))
	}
	sort.Float64s(merged)
	sum := SummaryOfSorted(merged)
	for _, p := range []float64{0, 10, 50, 90, 99.9, 100} {
		if got, want := sum.Percentile(p), Percentile(union, p); got != want {
			t.Errorf("p%v: merged %v, batch %v", p, got, want)
		}
	}
	// Samples returns a copy: mutating it must not corrupt the sketch.
	a.Samples()[0] = -1e9
	if a.Quantile(0) < 0 {
		t.Error("Samples aliases the sketch's buffer")
	}
}
