package ditl

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV serializes the trace as rows of (server, recursive, count),
// sorted for reproducible output.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"server", "recursive", "queries"}); err != nil {
		return err
	}
	servers := append([]string(nil), t.Observed...)
	sort.Strings(servers)
	for _, server := range servers {
		byRec := t.Counts[server]
		recs := make([]string, 0, len(byRec))
		for r := range byRec {
			recs = append(recs, r)
		}
		sort.Strings(recs)
		for _, r := range recs {
			if err := cw.Write([]string{server, r, strconv.Itoa(byRec[r])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// StreamCSV reads a trace previously written with WriteCSV row by row,
// calling fn for each (server, recursive, count) triple without ever
// materializing the trace. A non-nil error from fn aborts the scan.
func StreamCSV(r io.Reader, fn func(server, recursive string, queries int) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // field-count errors reported per row below
	hdr, err := cr.Read()
	if err == io.EOF {
		return fmt.Errorf("ditl: empty trace file")
	}
	if err != nil {
		return err
	}
	if len(hdr) != 3 || hdr[0] != "server" {
		return fmt.Errorf("ditl: unexpected header %v", hdr)
	}
	for row := 2; ; row++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if len(rec) != 3 {
			return fmt.Errorf("ditl: row %d has %d fields", row, len(rec))
		}
		n, err := strconv.Atoi(rec[2])
		if err != nil || n < 0 {
			return fmt.Errorf("ditl: row %d bad count %q", row, rec[2])
		}
		if err := fn(rec[0], rec[1], n); err != nil {
			return err
		}
	}
}

// ReadCSV parses a trace previously written with WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	t := &Trace{Counts: make(map[string]map[string]int)}
	seen := make(map[string]bool)
	err := StreamCSV(r, func(server, rec string, n int) error {
		if !seen[server] {
			seen[server] = true
			t.Observed = append(t.Observed, server)
			t.Counts[server] = make(map[string]int)
		}
		t.Counts[server][rec] += n
		t.TotalQueries += n
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Recursives = len(t.PerRecursive())
	return t, nil
}
