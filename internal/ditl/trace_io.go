package ditl

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV serializes the trace as rows of (server, recursive, count),
// sorted for reproducible output.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"server", "recursive", "queries"}); err != nil {
		return err
	}
	servers := append([]string(nil), t.Observed...)
	sort.Strings(servers)
	for _, server := range servers {
		byRec := t.Counts[server]
		recs := make([]string, 0, len(byRec))
		for r := range byRec {
			recs = append(recs, r)
		}
		sort.Strings(recs)
		for _, r := range recs {
			if err := cw.Write([]string{server, r, strconv.Itoa(byRec[r])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace previously written with WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("ditl: empty trace file")
	}
	if len(rows[0]) != 3 || rows[0][0] != "server" {
		return nil, fmt.Errorf("ditl: unexpected header %v", rows[0])
	}
	t := &Trace{Counts: make(map[string]map[string]int)}
	seen := make(map[string]bool)
	for i, row := range rows[1:] {
		if len(row) != 3 {
			return nil, fmt.Errorf("ditl: row %d has %d fields", i+2, len(row))
		}
		n, err := strconv.Atoi(row[2])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("ditl: row %d bad count %q", i+2, row[2])
		}
		server, rec := row[0], row[1]
		if !seen[server] {
			seen[server] = true
			t.Observed = append(t.Observed, server)
			t.Counts[server] = make(map[string]int)
		}
		t.Counts[server][rec] += n
		t.TotalQueries += n
	}
	t.Recursives = len(t.PerRecursive())
	return t, nil
}
