package ditl

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"ritw/internal/analysis"
	"ritw/internal/atlas"
	"ritw/internal/dnswire"
	"ritw/internal/resolver"
)

// Root-trace synthesis is the expensive part; share one across tests.
var (
	rootOnce  sync.Once
	rootTrace *Trace
	rootErr   error
)

func sharedRootTrace(t *testing.T) *Trace {
	t.Helper()
	rootOnce.Do(func() {
		cfg := DefaultRootConfig(23)
		cfg.NumRecursives = 400
		cfg.MinRate = 60
		cfg.Warmup = 10 * time.Minute
		rootTrace, rootErr = Run(cfg)
	})
	if rootErr != nil {
		t.Fatal(rootErr)
	}
	return rootTrace
}

func TestRootDeploymentShape(t *testing.T) {
	servers, observed := RootDeployment()
	if len(servers) != 13 {
		t.Fatalf("root letters = %d, want 13", len(servers))
	}
	if len(observed) != 10 {
		t.Fatalf("observed letters = %d, want 10 (B, G, L missing)", len(observed))
	}
	for _, missing := range []string{"b-root", "g-root", "l-root"} {
		for _, o := range observed {
			if o == missing {
				t.Errorf("%s should not be observed", missing)
			}
		}
	}
	// Footprints are heterogeneous.
	minSites, maxSites := 99, 0
	for _, s := range servers {
		if len(s.Sites) < minSites {
			minSites = len(s.Sites)
		}
		if len(s.Sites) > maxSites {
			maxSites = len(s.Sites)
		}
	}
	if minSites >= maxSites || minSites > 3 || maxSites < 8 {
		t.Errorf("footprints not heterogeneous: min=%d max=%d", minSites, maxSites)
	}
}

func TestNLDeploymentShape(t *testing.T) {
	servers, observed := NLDeployment()
	if len(servers) != 8 {
		t.Fatalf("nl servers = %d, want 8", len(servers))
	}
	if len(observed) != 4 {
		t.Fatalf("observed = %d, want 4", len(observed))
	}
	unicast, anycast := 0, 0
	for _, s := range servers {
		if len(s.Sites) == 1 {
			unicast++
			if s.Sites[0] != "AMS" {
				t.Errorf("unicast NS %s not in NL", s.Name)
			}
		} else {
			anycast++
		}
	}
	if unicast != 5 || anycast != 3 {
		t.Errorf("unicast=%d anycast=%d, want 5/3 (§7)", unicast, anycast)
	}
}

func TestRunRootTrace(t *testing.T) {
	trace := sharedRootTrace(t)
	if trace.TotalQueries == 0 || trace.Recursives == 0 {
		t.Fatalf("trace = %+v", trace)
	}
	if len(trace.Counts) != 10 {
		t.Fatalf("observed servers captured = %d", len(trace.Counts))
	}
	// Every observed letter should see some traffic.
	for name, byRec := range trace.Counts {
		total := 0
		for _, n := range byRec {
			total += n
		}
		if total == 0 {
			t.Errorf("letter %s saw no queries", name)
		}
	}
}

func TestRootRankBandsShape(t *testing.T) {
	trace := sharedRootTrace(t)
	rb := analysis.Ranks(trace.PerRecursive(), len(trace.Observed), 250)
	if rb.Recursives < 20 {
		t.Fatalf("only %d busy recursives; raise rates or population", rb.Recursives)
	}
	// The paper's Figure-7 bands: ~20% one letter, ~60% at least six,
	// ~2% all ten. Loose bands for the scaled-down trace; the exact
	// measured values are recorded in EXPERIMENTS.md.
	if rb.OnlyOne < 0.08 || rb.OnlyOne > 0.45 {
		t.Errorf("only-one = %.2f, want ≈0.20", rb.OnlyOne)
	}
	if rb.AtLeast6 < 0.30 || rb.AtLeast6 > 0.90 {
		t.Errorf("at-least-6 = %.2f, want ≈0.60", rb.AtLeast6)
	}
	if rb.All > 0.35 {
		t.Errorf("all-10 = %.2f, want the small minority band (paper: 0.02)", rb.All)
	}
	if rb.AtLeast6 <= rb.All {
		t.Error("band ordering broken")
	}
}

func TestNLTraceMajorityQueryAllFour(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 400-recursive .nl hour")
	}
	cfg := DefaultNLConfig(29)
	cfg.NumRecursives = 400
	cfg.Warmup = 10 * time.Minute
	// The paper finds the majority of busy recursives query all four
	// observed .nl NSes. Only 4 of 8 NSes are observed, so a "busy"
	// threshold of 150 at the observed NSes corresponds to the paper's
	// 250-per-hour overall.
	trace, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb := analysis.Ranks(trace.PerRecursive(), len(trace.Observed), 150)
	if rb.Recursives < 15 {
		t.Fatalf("busy recursives = %d", rb.Recursives)
	}
	if rb.All < 0.4 {
		t.Errorf("all-4 share = %.2f, want majority-ish (paper: majority)", rb.All)
	}
	if rb.OnlyOne > rb.All {
		t.Errorf("one-NS share %.2f exceeds all-NS share %.2f", rb.OnlyOne, rb.All)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	cfg := DefaultRootConfig(1)
	cfg.MinRate = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero MinRate should fail")
	}
	cfg = DefaultRootConfig(1)
	cfg.Servers = []Server{{Name: "x", Sites: []string{"NOPE"}}}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown site should fail")
	}
	cfg = DefaultRootConfig(1)
	cfg.Mix = []atlas.PolicyShare{} // non-nil but empty: zero total share
	cfg.Mix = append(cfg.Mix, atlas.PolicyShare{Kind: resolver.KindUniform, Share: 0})
	if _, err := Run(cfg); err == nil {
		t.Error("zero-share mixture should fail")
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	trace := sharedRootTrace(t)
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalQueries != trace.TotalQueries {
		t.Errorf("total = %d, want %d", got.TotalQueries, trace.TotalQueries)
	}
	if got.Recursives != trace.Recursives {
		t.Errorf("recursives = %d, want %d", got.Recursives, trace.Recursives)
	}
	if len(got.Counts) != len(trace.Counts) {
		t.Errorf("servers = %d, want %d", len(got.Counts), len(trace.Counts))
	}
	for server, byRec := range trace.Counts {
		for rec, n := range byRec {
			if got.Counts[server][rec] != n {
				t.Fatalf("count mismatch at %s/%s", server, rec)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header,x\na,b,1\n",
		"server,recursive,queries\na,b,notanumber\n",
		"server,recursive,queries\na,b,-5\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestPerRecursivePivot(t *testing.T) {
	tr := &Trace{
		Observed: []string{"a", "b"},
		Counts: map[string]map[string]int{
			"a": {"r1": 5, "r2": 1},
			"b": {"r1": 3},
		},
	}
	per := tr.PerRecursive()
	if len(per) != 2 {
		t.Fatalf("recursives = %d", len(per))
	}
	if per["r1"]["a"] != 5 || per["r1"]["b"] != 3 || per["r2"]["a"] != 1 {
		t.Errorf("pivot = %+v", per)
	}
}

func TestZoneNameUsedInQueries(t *testing.T) {
	// The zone name must be valid for child labels.
	if _, err := dnswire.Root.Child("q1n1"); err != nil {
		t.Fatal(err)
	}
	nl := dnswire.MustParseName("nl")
	if _, err := nl.Child("q1n1"); err != nil {
		t.Fatal(err)
	}
}
