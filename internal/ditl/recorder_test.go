package ditl_test

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"ritw/internal/ditl"
	"ritw/internal/entrada"
)

// TestRecorderFeedsEntrada runs a small .nl trace with the per-query
// recorder wired to an ENTRADA writer and checks that the warehouse
// aggregation matches the trace's own counts exactly.
func TestRecorderFeedsEntrada(t *testing.T) {
	cfg := ditl.DefaultNLConfig(51)
	cfg.NumRecursives = 60
	cfg.Warmup = 5 * time.Minute
	cfg.Duration = 20 * time.Minute

	var buf bytes.Buffer
	w := entrada.NewWriter(&buf)
	cfg.Recorder = func(server string, src netip.Addr, at time.Duration) {
		if err := w.Add(entrada.Query{At: at, Server: server, Src: src, QType: 16}); err != nil {
			t.Errorf("recorder: %v", err)
		}
	}
	trace, err := ditl.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	counts, err := entrada.Aggregate(bytes.NewReader(buf.Bytes()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for server, byRec := range trace.Counts {
		for rec, n := range byRec {
			if counts[server][rec] != n {
				t.Fatalf("warehouse disagrees at %s/%s: %d vs %d",
					server, rec, counts[server][rec], n)
			}
			total += n
		}
	}
	if total != trace.TotalQueries || total == 0 {
		t.Fatalf("total = %d, trace = %d", total, trace.TotalQueries)
	}
	// The binary stream is far denser than the data it holds.
	if perQ := float64(buf.Len()) / float64(total); perQ > 12 {
		t.Errorf("bytes/query = %.1f", perQ)
	}
}
