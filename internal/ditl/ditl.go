// Package ditl models the passive production datasets the paper uses
// for validation (§3.2, §5): a DITL-style hour of Root DNS traffic
// across the root letters, and an hour of .nl ccTLD traffic across its
// authoritatives. The paper could not clear caches or measure RTT in
// these traces; likewise, this model runs recursives in steady state
// (a warm-up period precedes the capture window) and records only
// which server each query reached.
package ditl

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/geo"
	"ritw/internal/netsim"
	"ritw/internal/resolver"
	"ritw/internal/simbind"
	"ritw/internal/zone"
)

// Server is one authoritative service of a production deployment: a
// root letter or a TLD name server. A single site means unicast.
type Server struct {
	// Name identifies the service ("a-root", "ns1.dns.nl").
	Name string
	// Sites are the airport codes of its anycast footprint.
	Sites []string
}

// RootDeployment models the 13 root letters with heterogeneous anycast
// footprints (well-deployed letters have many sites; a few letters are
// small), and the 10 letters the paper's DITL capture observed
// (B, G and L were missing).
func RootDeployment() (servers []Server, observed []string) {
	servers = []Server{
		{Name: "a-root", Sites: []string{"IAD", "LAX", "FRA", "HKG", "LHR"}},
		{Name: "b-root", Sites: []string{"LAX", "MIA"}},
		{Name: "c-root", Sites: []string{"EWR", "ORD", "LAX", "FRA", "MAD"}},
		{Name: "d-root", Sites: []string{"IAD", "SFO", "AMS", "SIN", "SYD", "GRU", "EWR", "VIE"}},
		{Name: "e-root", Sites: []string{"SFO", "AMS", "NRT", "BOG", "JNB", "SYD", "ORD", "ARN", "SIN"}},
		{Name: "f-root", Sites: []string{"SFO", "EWR", "LHR", "CDG", "NRT", "HKG", "GRU", "JNB", "SYD", "ARN", "WAW", "SCL"}},
		{Name: "g-root", Sites: []string{"IAD", "ORD"}},
		{Name: "h-root", Sites: []string{"IAD", "SEA"}},
		{Name: "i-root", Sites: []string{"ARN", "LHR", "FRA", "NRT", "SIN", "EWR", "JNB", "GRU", "PER", "MXP"}},
		{Name: "j-root", Sites: []string{"IAD", "LAX", "AMS", "LHR", "NRT", "SIN", "MIA", "ORD", "SEA", "CDG", "ICN"}},
		{Name: "k-root", Sites: []string{"AMS", "LHR", "FRA", "NRT", "DXB", "BOM", "MXP", "EWR", "SVO"}},
		{Name: "l-root", Sites: []string{"LAX", "MIA", "AMS", "SIN", "SYD", "SCL", "EZE", "CAI", "WAW", "ORD", "CDG", "ICN", "AKL"}},
		{Name: "m-root", Sites: []string{"NRT", "CDG", "SFO", "ICN"}},
	}
	observed = []string{
		"a-root", "c-root", "d-root", "e-root", "f-root",
		"h-root", "i-root", "j-root", "k-root", "m-root",
	}
	return servers, observed
}

// NLDeployment models the paper's description of .nl (§1, §7): eight
// authoritatives — five unicast in the Netherlands and three anycast
// services with worldwide sites — of which the paper's capture
// observed four.
func NLDeployment() (servers []Server, observed []string) {
	servers = []Server{
		{Name: "ns1.dns.nl", Sites: []string{"AMS"}},
		{Name: "ns2.dns.nl", Sites: []string{"AMS"}},
		{Name: "ns3.dns.nl", Sites: []string{"AMS"}},
		{Name: "ns4.dns.nl", Sites: []string{"AMS"}},
		{Name: "ns5.dns.nl", Sites: []string{"AMS"}},
		{Name: "any1.dns.nl", Sites: []string{"AMS", "EWR", "HKG", "GRU", "SYD", "LHR", "FRA"}},
		{Name: "any2.dns.nl", Sites: []string{"AMS", "SFO", "NRT", "JNB", "MIA", "ARN"}},
		{Name: "any3.dns.nl", Sites: []string{"AMS", "ORD", "SIN", "CDG", "SCL"}},
	}
	observed = []string{"ns1.dns.nl", "ns3.dns.nl", "any1.dns.nl", "any2.dns.nl"}
	return servers, observed
}

// ProductionMix is the resolver-behaviour mixture for production
// traffic. Busy production recursives skew heavily toward
// latency-driven implementations and forwarder front-ends, which is
// why the paper sees much stronger letter preferences at the root than
// in its testbed (§5). See EXPERIMENTS.md for calibration notes.
func ProductionMix() []atlas.PolicyShare {
	return []atlas.PolicyShare{
		{Kind: resolver.KindBINDLike, Share: 0.60, InfraTTL: 10 * time.Minute, Retention: resolver.DecayKeep},
		{Kind: resolver.KindSticky, Share: 0.16, InfraTTL: 0, Retention: resolver.HardExpire},
		{Kind: resolver.KindWeightedRTT, Share: 0.08, InfraTTL: 10 * time.Minute, Retention: resolver.DecayKeep},
		{Kind: resolver.KindUnboundLike, Share: 0.06, InfraTTL: 15 * time.Minute, Retention: resolver.DecayKeep},
		{Kind: resolver.KindUniform, Share: 0.05, InfraTTL: 10 * time.Minute, Retention: resolver.HardExpire},
		{Kind: resolver.KindRoundRobin, Share: 0.05, InfraTTL: 10 * time.Minute, Retention: resolver.HardExpire},
	}
}

// Config parameterizes a production-trace synthesis.
type Config struct {
	// Servers is the deployment (RootDeployment or NLDeployment).
	Servers []Server
	// Observed names the servers whose traffic is captured (the paper
	// had 10 of 13 letters, 4 of 8 .nl NSes).
	Observed []string
	// Zone is the zone served ("." for the root, "nl." for .nl).
	Zone dnswire.Name
	// NumRecursives is the recursive population size.
	NumRecursives int
	// Mix is the behaviour mixture (ProductionMix if nil).
	Mix []atlas.PolicyShare
	// Duration is the capture window (paper: one hour).
	Duration time.Duration
	// Warmup runs before capture so recursives are in steady state,
	// mirroring the paper's inability to clear production caches.
	Warmup time.Duration
	// MinRate and MaxRate bound per-recursive query rates in queries
	// per hour; rates follow a Pareto-like heavy tail.
	MinRate, MaxRate float64
	// Seed drives all randomness.
	Seed int64
	// Recorder, if set, observes every captured query in virtual-time
	// order — the hook that feeds an ENTRADA-style warehouse
	// (internal/entrada) with the raw per-query stream.
	Recorder func(server string, src netip.Addr, at time.Duration)
	// DiscardCounts skips building the Trace.Counts table, for callers
	// that consume the capture through Recorder (e.g. a streaming rank
	// aggregator) and don't want a second copy of the counts in memory.
	// The returned trace still carries Observed, TotalQueries and
	// Recursives.
	DiscardCounts bool
}

// DefaultRootConfig returns a root-trace synthesis at a scale that
// runs in seconds.
func DefaultRootConfig(seed int64) Config {
	servers, observed := RootDeployment()
	return Config{
		Servers:       servers,
		Observed:      observed,
		Zone:          dnswire.Root,
		NumRecursives: 600,
		Duration:      time.Hour,
		Warmup:        20 * time.Minute,
		MinRate:       40,
		MaxRate:       4000,
		Seed:          seed,
	}
}

// DefaultNLConfig returns a .nl-trace synthesis.
func DefaultNLConfig(seed int64) Config {
	servers, observed := NLDeployment()
	return Config{
		Servers:       servers,
		Observed:      observed,
		Zone:          dnswire.MustParseName("nl"),
		NumRecursives: 600,
		Duration:      time.Hour,
		Warmup:        20 * time.Minute,
		MinRate:       40,
		MaxRate:       4000,
		Seed:          seed,
	}
}

// Trace is the synthesized capture: per observed server, per
// recursive-address query counts within the capture window.
type Trace struct {
	// Observed lists the captured server names, in input order.
	Observed []string
	// Counts maps server name -> recursive address -> queries.
	Counts map[string]map[string]int
	// TotalQueries is the number of captured queries.
	TotalQueries int
	// Recursives is the number of distinct recursive addresses seen.
	Recursives int
}

// PerRecursive pivots the trace to recursive -> server -> count, the
// shape the Figure-7 rank analysis consumes. Servers a recursive never
// queried are simply absent from its inner map.
func (t *Trace) PerRecursive() map[string]map[string]int {
	out := make(map[string]map[string]int)
	for server, byRec := range t.Counts {
		for rec, n := range byRec {
			m, ok := out[rec]
			if !ok {
				m = make(map[string]int, len(t.Observed))
				out[rec] = m
			}
			m[server] += n
		}
	}
	return out
}

// Run synthesizes a production trace.
func Run(cfg Config) (*Trace, error) {
	if len(cfg.Servers) == 0 || cfg.NumRecursives <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("ditl: incomplete config")
	}
	if cfg.MinRate <= 0 || cfg.MaxRate < cfg.MinRate {
		return nil, fmt.Errorf("ditl: bad rate bounds [%v, %v]", cfg.MinRate, cfg.MaxRate)
	}
	mix := cfg.Mix
	if mix == nil {
		mix = ProductionMix()
	}
	var mixTotal float64
	for _, m := range mix {
		mixTotal += m.Share
	}
	if mixTotal <= 0 {
		return nil, fmt.Errorf("ditl: empty mixture")
	}

	sim := netsim.NewSimulator()
	net := netsim.NewNetwork(sim, geo.DefaultPathModel(), cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	observedSet := make(map[string]bool, len(cfg.Observed))
	for _, name := range cfg.Observed {
		observedSet[name] = true
	}

	trace := &Trace{
		Observed: append([]string(nil), cfg.Observed...),
		Counts:   make(map[string]map[string]int),
	}
	var srcSet map[string]struct{} // distinct recursives when counts are discarded
	if cfg.DiscardCounts {
		srcSet = make(map[string]struct{})
	} else {
		for _, name := range cfg.Observed {
			trace.Counts[name] = make(map[string]int)
		}
	}

	// Zone served by every site of every server.
	zoneText := "$ORIGIN " + cfg.Zone.String() + "\n" +
		"@ IN SOA ns hostmaster 2017041201 7200 3600 604800 300\n" +
		"* 300 IN TXT \"production\"\n"
	captureStart := cfg.Warmup
	captureEnd := cfg.Warmup + cfg.Duration

	// Build servers: unicast hosts or anycast services.
	serverAddrs := make([]netip.Addr, 0, len(cfg.Servers))
	for _, srv := range cfg.Servers {
		srv := srv
		members := make([]*netsim.Host, 0, len(srv.Sites))
		for _, code := range srv.Sites {
			site, err := geo.SiteByCode(code)
			if err != nil {
				return nil, fmt.Errorf("ditl: server %s: %w", srv.Name, err)
			}
			z, err := zone.ParseString(zoneText, cfg.Zone)
			if err != nil {
				return nil, err
			}
			host := net.AddHost(site.Coord)
			eng := authserver.NewEngine(authserver.Config{
				Zones:    []*zone.Zone{z},
				Identity: code + "." + srv.Name,
				OnQuery: func(qi authserver.QueryInfo) {
					if !observedSet[srv.Name] {
						return
					}
					now := sim.Now()
					if now < captureStart || now >= captureEnd {
						return
					}
					if cfg.DiscardCounts {
						srcSet[qi.Src.String()] = struct{}{}
					} else {
						trace.Counts[srv.Name][qi.Src.String()]++
					}
					trace.TotalQueries++
					if cfg.Recorder != nil {
						cfg.Recorder(srv.Name, qi.Src, now)
					}
				},
			})
			simbind.BindAuth(host, eng)
			members = append(members, host)
		}
		if len(members) == 1 {
			serverAddrs = append(serverAddrs, members[0].Addr)
		} else {
			svc := net.AllocAddr()
			net.AddAnycast(svc, members)
			serverAddrs = append(serverAddrs, svc)
		}
	}

	// Recursive population with heavy-tailed query rates.
	sites, weights := geo.ProbeRegions()
	var weightTotal float64
	for _, w := range weights {
		weightTotal += w
	}
	pickSite := func() geo.Site {
		x := rng.Float64() * weightTotal
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return sites[i]
			}
		}
		return sites[len(sites)-1]
	}
	pickMix := func() atlas.PolicyShare {
		x := rng.Float64() * mixTotal
		for _, m := range mix {
			x -= m.Share
			if x <= 0 {
				return m
			}
		}
		return mix[len(mix)-1]
	}

	zones := []resolver.ZoneServers{{Zone: cfg.Zone, Servers: serverAddrs}}
	clock := simbind.SimClock{Sim: sim}

	for i := 0; i < cfg.NumRecursives; i++ {
		site := pickSite()
		m := pickMix()
		loc := jitterCoord(rng, site.Coord, 2.0)
		host := net.AddHost(loc)
		eng := resolver.NewEngine(resolver.Config{
			Policy:    resolver.NewPolicy(m.Kind),
			Infra:     resolver.NewInfraCache(m.InfraTTL, m.Retention),
			Cache:     resolver.NewRecordCache(),
			Zones:     zones,
			Transport: simbind.HostTransport{Host: host},
			Clock:     clock,
			RNG:       rand.New(rand.NewSource(cfg.Seed + 7000 + int64(i))),
		})
		simbind.BindResolver(host, eng)

		// Client workload: unique names at a Pareto-drawn rate.
		rate := paretoRate(rng, cfg.MinRate, cfg.MaxRate)
		gap := time.Duration(float64(time.Hour) / rate)
		client := net.AddHost(loc)
		client.Handle(func(_, _ netip.Addr, _ []byte) {}) // sink responses
		recAddr := host.Addr
		seq := 0
		crng := rand.New(rand.NewSource(cfg.Seed + 9000 + int64(i)))
		var tick func()
		tick = func() {
			if sim.Now() >= captureEnd {
				return
			}
			label := fmt.Sprintf("q%dn%d", i, seq)
			qname, err := cfg.Zone.Child(label)
			if err != nil {
				return
			}
			q := dnswire.NewQuery(uint16(seq), qname, dnswire.TypeTXT)
			if wire, err := q.Pack(); err == nil {
				client.Send(recAddr, wire)
			}
			seq++
			// Exponential inter-arrival around the mean gap.
			next := time.Duration(crng.ExpFloat64() * float64(gap))
			if next < time.Millisecond {
				next = time.Millisecond
			}
			sim.Schedule(next, tick)
		}
		sim.Schedule(time.Duration(crng.Int63n(int64(gap)+1)), tick)
	}

	sim.RunUntil(captureEnd + 5*time.Second)
	if cfg.DiscardCounts {
		trace.Recursives = len(srcSet)
	} else {
		trace.Recursives = len(trace.PerRecursive())
	}
	return trace, nil
}

// paretoRate draws a heavy-tailed per-hour query rate in [min, max].
func paretoRate(rng *rand.Rand, min, max float64) float64 {
	const alpha = 1.1
	u := rng.Float64()
	r := min * math.Pow(1-u, -1/alpha)
	if r > max {
		r = max
	}
	return r
}

// jitterCoord spreads entities a couple of degrees around a site.
func jitterCoord(rng *rand.Rand, c geo.Coord, deg float64) geo.Coord {
	lat := c.Lat + (rng.Float64()*2-1)*deg
	lon := c.Lon + (rng.Float64()*2-1)*deg
	if lat > 89 {
		lat = 89
	}
	if lat < -89 {
		lat = -89
	}
	return geo.Coord{Lat: lat, Lon: lon}
}
