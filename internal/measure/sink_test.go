package measure

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/entrada"
	"ritw/internal/obs"
)

// smallCfg mirrors smallRun but returns the config so tests can run
// the same measurement through different sinks.
func smallCfg(t *testing.T, comboID string, probes int, seed int64) RunConfig {
	t.Helper()
	combo, err := CombinationByID(comboID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunConfig(combo, seed)
	pc := atlas.DefaultConfig(seed)
	pc.NumProbes = probes
	cfg.Population = pc
	return cfg
}

func TestStreamingMatchesMaterialized(t *testing.T) {
	t.Parallel()
	cfg := smallCfg(t, "2C", 100, 21)

	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	got := &Dataset{}
	summary, err := RunStream(cfg, got)
	if err != nil {
		t.Fatal(err)
	}

	// The streamed record sequence is exactly the materialized one.
	if len(got.Records) != len(want.Records) {
		t.Fatalf("streamed %d records, want %d", len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got.Records[i], want.Records[i])
		}
	}
	if len(got.AuthRecords) != len(want.AuthRecords) {
		t.Fatalf("streamed %d auth records, want %d", len(got.AuthRecords), len(want.AuthRecords))
	}
	for i := range got.AuthRecords {
		if got.AuthRecords[i] != want.AuthRecords[i] {
			t.Fatalf("auth record %d differs", i)
		}
	}

	// The sink received the run summary too (Dataset implements MetaSink).
	if got.ComboID != want.ComboID || got.ActiveProbes != want.ActiveProbes ||
		got.Interval != want.Interval || got.Duration != want.Duration {
		t.Errorf("sink metadata = %s/%d, want %s/%d",
			got.ComboID, got.ActiveProbes, want.ComboID, want.ActiveProbes)
	}

	// The returned dataset is summary-only but fully described.
	if len(summary.Records) != 0 || len(summary.AuthRecords) != 0 {
		t.Errorf("stream-only run materialized %d/%d records",
			len(summary.Records), len(summary.AuthRecords))
	}
	if summary.ActiveProbes != want.ActiveProbes || len(summary.SiteAddr) != 2 {
		t.Errorf("summary dataset incomplete: %+v", summary)
	}
}

func TestCSVSinkMatchesWriteCSV(t *testing.T) {
	t.Parallel()
	cfg := smallCfg(t, "2B", 80, 5)
	var streamed bytes.Buffer
	ds, err := Run(cfg) // materialized reference
	if err != nil {
		t.Fatal(err)
	}
	sink := NewCSVSink(&streamed, cfg.Combo.ID)
	if _, err := RunStream(cfg, sink); err != nil {
		t.Fatal(err)
	}
	var batch bytes.Buffer
	if err := ds.WriteCSV(&batch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), batch.Bytes()) {
		t.Error("streamed CSV differs from WriteCSV")
	}
	if sink.Bytes() != int64(streamed.Len()) {
		t.Errorf("Bytes() = %d, wrote %d", sink.Bytes(), streamed.Len())
	}
	// An empty sink still emits the header on Close.
	var empty bytes.Buffer
	es := NewCSVSink(&empty, "X")
	if err := es.Close(); err != nil {
		t.Fatal(err)
	}
	if got := empty.String(); got != "combo,probe,resolver,vp,continent,seq,sent_ms,rtt_ms,site,ok\n" {
		t.Errorf("empty sink output = %q", got)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	cfg := smallCfg(t, "2C", 60, 13)
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf, cfg.Combo.ID)
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunStream(cfg, sink); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The summary line trails the stream but must still be applied.
	if got.ComboID != want.ComboID || got.Interval != want.Interval ||
		got.Duration != want.Duration || got.ActiveProbes != want.ActiveProbes {
		t.Errorf("metadata lost in streamed JSONL: %+v", got.meta())
	}
	if len(got.Records) != len(want.Records) || len(got.AuthRecords) != len(want.AuthRecords) {
		t.Fatalf("records %d/%d, want %d/%d", len(got.Records), len(got.AuthRecords),
			len(want.Records), len(want.AuthRecords))
	}
	if sink.Bytes() != int64(buf.Len()) {
		t.Errorf("Bytes() = %d, wrote %d", sink.Bytes(), buf.Len())
	}
}

func TestEntradaSinkSpillsAuthStream(t *testing.T) {
	t.Parallel()
	ds := smallRun(t, "2B", 60, 3)
	var buf bytes.Buffer
	sink := NewEntradaSink(&buf)
	for _, r := range ds.Records {
		sink.OnQuery(r) // ignored: entrada stores the server-side view
	}
	for _, a := range ds.AuthRecords {
		sink.OnAuth(a)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes() != int64(buf.Len()) || buf.Len() == 0 {
		t.Fatalf("Bytes() = %d, wrote %d", sink.Bytes(), buf.Len())
	}
	qs, err := entrada.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != len(ds.AuthRecords) {
		t.Fatalf("spilled %d queries, want %d", len(qs), len(ds.AuthRecords))
	}
	for i, q := range qs {
		a := ds.AuthRecords[i]
		if q.Server != a.Site || q.Src != a.Src {
			t.Fatalf("query %d: %+v vs auth record %+v", i, q, a)
		}
		// The format delta-encodes microsecond timestamps, so each
		// record may lose up to 1µs; the drift stays tiny and one-sided.
		if d := a.At - q.At; d < 0 || d > 10*time.Millisecond {
			t.Fatalf("query %d timestamp drift %v", i, d)
		}
	}
}

func TestTeeAndInstrumentSink(t *testing.T) {
	cfg := smallCfg(t, "2B", 50, 8)
	reg := obs.NewRegistry()
	cfg.Metrics = reg

	var csvBuf bytes.Buffer
	left := &Dataset{}
	right := InstrumentSink(NewCSVSink(&csvBuf, cfg.Combo.ID), reg, "csv")
	if _, err := RunStream(cfg, Tee(left, right)); err != nil {
		t.Fatal(err)
	}
	if len(left.Records) == 0 {
		t.Fatal("tee starved the dataset branch")
	}
	snap := reg.Snapshot()
	if n := snap.Counter("measure_records_streamed_total"); n != int64(len(left.Records)) {
		t.Errorf("records counter = %d, want %d", n, len(left.Records))
	}
	if n := snap.Counter("measure_auth_records_streamed_total"); n != int64(len(left.AuthRecords)) {
		t.Errorf("auth counter = %d, want %d", n, len(left.AuthRecords))
	}
	if n := snap.Counter("measure_sink_records_streamed_total"); n != int64(len(left.Records)) {
		t.Errorf("sink records counter = %d, want %d", n, len(left.Records))
	}
	if g := snap.Gauge(`measure_sink_spilled_bytes{sink="csv"}`); g != float64(csvBuf.Len()) {
		t.Errorf("spilled gauge = %v, wrote %d", g, csvBuf.Len())
	}
	// Tee metadata fans out to meta-aware branches.
	if left.ComboID != "2B" || left.ActiveProbes == 0 {
		t.Errorf("tee dropped metadata: %+v", left.meta())
	}
	// A nil registry leaves the sink unwrapped.
	plain := NewCSVSink(&bytes.Buffer{}, "X")
	if InstrumentSink(plain, nil, "csv") != Sink(plain) {
		t.Error("nil registry should return the sink unchanged")
	}
}

func TestOpenResolverStreaming(t *testing.T) {
	t.Parallel()
	combo, err := CombinationByID("2C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOpenResolverConfig(combo, 4)
	cfg.NumResolvers = 40
	cfg.Duration = 10 * time.Minute

	want, err := RunOpenResolvers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := &Dataset{}
	cfg.Sink = got
	cfg.StreamOnly = true
	summary, err := RunOpenResolvers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(summary.Records) != 0 {
		t.Errorf("stream-only open-resolver run materialized %d records", len(summary.Records))
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("streamed %d records, want %d", len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		if got.Records[i] != want.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

// errDiskFull simulates the filesystem giving out mid-run.
var errDiskFull = errors.New("disk full")

// brimWriter accepts the first cap bytes and then fails every write,
// the shape ENOSPC takes: early records land, late ones (including the
// final buffered flush at Close) do not.
type brimWriter struct {
	cap int
	n   int
}

func (w *brimWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.cap {
		room := w.cap - w.n
		if room < 0 {
			room = 0
		}
		w.n = w.cap
		return room, errDiskFull
	}
	w.n += len(p)
	return len(p), nil
}

// TestSinkWriteErrorsSurfaceAtClose pins the full-disk contract for
// the file-backed sinks: record callbacks cannot return errors, so a
// failed write must stick inside the sink and come back out of Close —
// which is how a truncated CSV turns into a non-zero ritw exit instead
// of a silently short dataset.
func TestSinkWriteErrorsSurfaceAtClose(t *testing.T) {
	t.Parallel()
	sinks := []struct {
		name string
		make func(w io.Writer) Sink
	}{
		{"csv", func(w io.Writer) Sink { return NewCSVSink(w, "2A") }},
		{"jsonl", func(w io.Writer) Sink { return NewJSONLSink(w, "2A") }},
	}
	for _, tc := range sinks {
		// Unit level: feed records straight into the sink until the
		// writer brims; Close must report the sticky error.
		sink := tc.make(&brimWriter{cap: 256})
		for i := 0; i < 200; i++ {
			sink.OnQuery(QueryRecord{VPKey: "vp", Site: "AMS", Seq: i, OK: true})
		}
		if err := sink.Close(); !errors.Is(err, errDiskFull) {
			t.Errorf("%s: Close() = %v, want the swallowed write error", tc.name, err)
		}
		// Run level: the same failure must surface as the run's error.
		cfg := smallCfg(t, "2A", 60, 33)
		cfg.Duration = 10 * time.Minute
		cfg.Sink = tc.make(&brimWriter{cap: 512})
		cfg.StreamOnly = true
		if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "closing sink") {
			t.Errorf("%s: full-disk run error = %v, want a closing-sink failure", tc.name, err)
		}
	}
}

// TestSinkWriteErrorAtCloseOnly drives the buffered-tail case: the
// writer has room for every record but fails on the final flush, so
// the only chance to see the error is Close's return value.
func TestSinkWriteErrorAtCloseOnly(t *testing.T) {
	t.Parallel()
	sink := NewJSONLSink(failOnFlush{}, "2A")
	sink.OnQuery(QueryRecord{VPKey: "vp", Site: "AMS", OK: true})
	if err := sink.Close(); !errors.Is(err, errDiskFull) {
		t.Errorf("Close() = %v, want the flush error", err)
	}
}

// failOnFlush absorbs nothing: every write fails, but the JSONL sink's
// bufio layer defers the first real write until its buffer fills or
// Close flushes.
type failOnFlush struct{}

func (failOnFlush) Write(p []byte) (int, error) { return 0, errDiskFull }
