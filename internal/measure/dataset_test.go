package measure

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestDatasetCSVRoundTrip(t *testing.T) {
	ds := smallRun(t, "2C", 120, 9)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.ComboID != ds.ComboID {
		t.Errorf("combo = %q", got.ComboID)
	}
	if len(got.Records) != len(ds.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(ds.Records))
	}
	// Sites reconstructed from the records.
	if len(got.Sites) != 2 || got.Sites[0] != "FRA" || got.Sites[1] != "SYD" {
		t.Errorf("sites = %v", got.Sites)
	}
	// Per-record fidelity modulo the CSV's millisecond timestamps.
	for i := range got.Records {
		g, w := got.Records[i], ds.Records[i]
		if g.VPKey != w.VPKey || g.Site != w.Site || g.OK != w.OK ||
			g.Continent != w.Continent || g.Seq != w.Seq {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, g, w)
		}
		if d := g.SentAt - w.SentAt; d < -time.Millisecond || d > time.Millisecond {
			t.Fatalf("record %d sent time off by %v", i, d)
		}
		if d := g.RTTms - w.RTTms; d < -0.01 || d > 0.01 {
			t.Fatalf("record %d rtt off by %v", i, d)
		}
	}
	if got.ActiveProbes != ds.ActiveProbes {
		t.Errorf("probes = %d, want %d", got.ActiveProbes, ds.ActiveProbes)
	}
	if got.Duration < ds.Duration-2*time.Minute || got.Duration > ds.Duration+2*time.Minute {
		t.Errorf("duration = %v, want ≈%v", got.Duration, ds.Duration)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"not,a,dataset\n",
		"combo,probe,resolver,vp,continent,seq,sent_ms,rtt_ms,site,ok\n2B,notanint,1.2.3.4,v,EU,0,0,1.0,FRA,true\n",
		"combo,probe,resolver,vp,continent,seq,sent_ms,rtt_ms,site,ok\n2B,1,notanip,v,EU,0,0,1.0,FRA,true\n",
		"combo,probe,resolver,vp,continent,seq,sent_ms,rtt_ms,site,ok\n2B,1,1.2.3.4,v,XX,0,0,1.0,FRA,true\n",
		"combo,probe,resolver,vp,continent,seq,sent_ms,rtt_ms,site,ok\n2B,1,1.2.3.4,v,EU,0,0,bad,FRA,true\n",
		"combo,probe,resolver,vp,continent,seq,sent_ms,rtt_ms,site,ok\n2B,1,1.2.3.4,v,EU,0,0,1.0,FRA,maybe\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
