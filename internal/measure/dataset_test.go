package measure

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestDatasetCSVRoundTrip(t *testing.T) {
	ds := smallRun(t, "2C", 120, 9)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.ComboID != ds.ComboID {
		t.Errorf("combo = %q", got.ComboID)
	}
	if len(got.Records) != len(ds.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(ds.Records))
	}
	// Sites reconstructed from the records.
	if len(got.Sites) != 2 || got.Sites[0] != "FRA" || got.Sites[1] != "SYD" {
		t.Errorf("sites = %v", got.Sites)
	}
	// Per-record fidelity modulo the CSV's millisecond timestamps.
	for i := range got.Records {
		g, w := got.Records[i], ds.Records[i]
		if g.VPKey != w.VPKey || g.Site != w.Site || g.OK != w.OK ||
			g.Continent != w.Continent || g.Seq != w.Seq {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, g, w)
		}
		if d := g.SentAt - w.SentAt; d < -time.Millisecond || d > time.Millisecond {
			t.Fatalf("record %d sent time off by %v", i, d)
		}
		if d := g.RTTms - w.RTTms; d < -0.01 || d > 0.01 {
			t.Fatalf("record %d rtt off by %v", i, d)
		}
	}
	if got.ActiveProbes != ds.ActiveProbes {
		t.Errorf("probes = %d, want %d", got.ActiveProbes, ds.ActiveProbes)
	}
	if got.Duration < ds.Duration-2*time.Minute || got.Duration > ds.Duration+2*time.Minute {
		t.Errorf("duration = %v, want ≈%v", got.Duration, ds.Duration)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"not,a,dataset\n",
		"combo,probe,resolver,vp,continent,seq,sent_ms,rtt_ms,site,ok\n2B,notanint,1.2.3.4,v,EU,0,0,1.0,FRA,true\n",
		"combo,probe,resolver,vp,continent,seq,sent_ms,rtt_ms,site,ok\n2B,1,notanip,v,EU,0,0,1.0,FRA,true\n",
		"combo,probe,resolver,vp,continent,seq,sent_ms,rtt_ms,site,ok\n2B,1,1.2.3.4,v,XX,0,0,1.0,FRA,true\n",
		"combo,probe,resolver,vp,continent,seq,sent_ms,rtt_ms,site,ok\n2B,1,1.2.3.4,v,EU,0,0,bad,FRA,true\n",
		"combo,probe,resolver,vp,continent,seq,sent_ms,rtt_ms,site,ok\n2B,1,1.2.3.4,v,EU,0,0,1.0,FRA,maybe\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDatasetJSONLRoundTrip(t *testing.T) {
	ds := smallRun(t, "2C", 120, 9)
	var buf bytes.Buffer
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The tagged summary line restores what a CSV round-trip loses.
	if got.ComboID != ds.ComboID || got.Interval != ds.Interval ||
		got.Duration != ds.Duration || got.ActiveProbes != ds.ActiveProbes {
		t.Errorf("summary fields differ: %+v vs %+v", got.meta(), ds.meta())
	}
	if len(got.Sites) != len(ds.Sites) {
		t.Fatalf("sites = %v, want %v", got.Sites, ds.Sites)
	}
	for i := range got.Sites {
		if got.Sites[i] != ds.Sites[i] {
			t.Fatalf("sites = %v, want %v", got.Sites, ds.Sites)
		}
	}
	// SiteAddr round-trips exactly.
	if len(got.SiteAddr) != len(ds.SiteAddr) {
		t.Fatalf("site addrs = %v, want %v", got.SiteAddr, ds.SiteAddr)
	}
	for code, addr := range ds.SiteAddr {
		if got.SiteAddr[code] != addr {
			t.Errorf("site %s addr = %v, want %v", code, got.SiteAddr[code], addr)
		}
	}
	// Query records: fidelity modulo the millisecond send timestamp.
	if len(got.Records) != len(ds.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(ds.Records))
	}
	for i := range got.Records {
		g, w := got.Records[i], ds.Records[i]
		if g.ProbeID != w.ProbeID || g.Resolver != w.Resolver || g.VPKey != w.VPKey ||
			g.Continent != w.Continent || g.Seq != w.Seq || g.RTTms != w.RTTms ||
			g.Site != w.Site || g.OK != w.OK {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, g, w)
		}
		if d := g.SentAt - w.SentAt; d < -time.Millisecond || d > time.Millisecond {
			t.Fatalf("record %d sent time off by %v", i, d)
		}
	}
	// Auth records round-trip exactly (nanosecond timestamps).
	if len(got.AuthRecords) != len(ds.AuthRecords) {
		t.Fatalf("auth records = %d, want %d", len(got.AuthRecords), len(ds.AuthRecords))
	}
	for i := range got.AuthRecords {
		if got.AuthRecords[i] != ds.AuthRecords[i] {
			t.Fatalf("auth record %d differs:\n got %+v\nwant %+v",
				i, got.AuthRecords[i], ds.AuthRecords[i])
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	cases := []string{
		"",
		"{not json}\n",
		`{"auth":{"site":"FRA","src":"notanip","qname":"q","at_ns":1}}` + "\n",
		`{"dataset":{"combo":"2B","site_addr":{"FRA":"notanip"}}}` + "\n",
		`{"combo":"2B","resolver":"notanip","vp":"v"}` + "\n",
		`{"combo":"2B","resolver":"1.2.3.4","vp":"v","continent":"XX"}` + "\n",
	}
	for i, c := range cases {
		if _, err := ReadJSONL(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// A bare record stream (no summary line) is reconstructed like CSV.
	bare := `{"combo":"2B","probe":1,"resolver":"1.2.3.4","vp":"1/1.2.3.4","continent":"EU","seq":0,"sent_ms":60000,"rtt_ms":12.5,"site":"FRA","ok":true}` + "\n"
	ds, err := ReadJSONL(strings.NewReader(bare))
	if err != nil {
		t.Fatal(err)
	}
	if ds.ComboID != "2B" || ds.ActiveProbes != 1 || len(ds.Sites) != 1 || ds.Sites[0] != "FRA" {
		t.Errorf("bare stream reconstruction = %+v", ds.meta())
	}
	if ds.Duration != 2*time.Minute {
		t.Errorf("duration = %v", ds.Duration)
	}
}
