package measure

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ritw/internal/atlas"
)

// shardCfg builds a scaled-down run config for the cross-check tests.
func shardCfg(t *testing.T, comboID string, probes int, seed int64) RunConfig {
	t.Helper()
	combo, err := CombinationByID(comboID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunConfig(combo, seed)
	pc := atlas.DefaultConfig(seed)
	pc.NumProbes = probes
	cfg.Population = pc
	cfg.Duration = 20 * time.Minute
	return cfg
}

// runToCSV executes cfg in stream mode, returning the exact CSV bytes
// plus the materialized dataset from a second, slice-collecting run of
// the same config.
func runToCSV(t *testing.T, cfg RunConfig) ([]byte, *Dataset) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := RunStream(cfg, NewCSVSink(&buf, cfg.Combo.ID)); err != nil {
		t.Fatal(err)
	}
	cfg.Sink, cfg.StreamOnly = nil, false
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), ds
}

// TestShardedMatchesSequential is the contract of the sharded engine:
// at the same seed, a run split across any number of shards emits the
// byte-for-byte identical record stream — and the identical
// materialized dataset — as the single-lane run. It sweeps shard
// counts, seeds and site combinations so a regression in any layer of
// the partition (address plan, churn, catchment pinning, keyed RNG,
// canonical merge) surfaces as a diff here.
func TestShardedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many full simulations")
	}
	t.Parallel()
	for _, comboID := range []string{"2A", "3B", "4A"} {
		for _, seed := range []int64{1, 7, 42} {
			comboID, seed := comboID, seed
			t.Run(fmt.Sprintf("%s/seed%d", comboID, seed), func(t *testing.T) {
				t.Parallel()
				seqCfg := shardCfg(t, comboID, 150, seed)
				wantCSV, wantDS := runToCSV(t, seqCfg)
				if len(wantDS.Records) == 0 {
					t.Fatal("sequential run produced no records")
				}
				for _, shards := range []int{2, 4, 8} {
					gotCfg := seqCfg
					gotCfg.Shards = shards
					gotCSV, gotDS := runToCSV(t, gotCfg)
					if !bytes.Equal(gotCSV, wantCSV) {
						t.Fatalf("shards=%d: CSV stream differs from sequential (%d vs %d bytes)\n%s",
							shards, len(gotCSV), len(wantCSV), firstDiff(gotCSV, wantCSV))
					}
					if !reflect.DeepEqual(gotDS.Records, wantDS.Records) {
						t.Fatalf("shards=%d: materialized query records differ", shards)
					}
					if !reflect.DeepEqual(gotDS.AuthRecords, wantDS.AuthRecords) {
						t.Fatalf("shards=%d: auth records differ", shards)
					}
					if gotDS.ActiveProbes != wantDS.ActiveProbes {
						t.Fatalf("shards=%d: active probes %d vs %d",
							shards, gotDS.ActiveProbes, wantDS.ActiveProbes)
					}
				}
			})
		}
	}
}

// TestShardedMatchesSequentialWithFaults repeats the byte-identity
// check under a schedule exercising every fault family, and also
// requires the merged per-shard injector reports to reproduce the
// sequential report exactly.
func TestShardedMatchesSequentialWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many full simulations")
	}
	t.Parallel()
	seqCfg := shardCfg(t, "3B", 150, 11) // 3B = DUB/FRA/IAD
	seqCfg.Faults = fiveKindSchedule()
	wantCSV, wantDS := runToCSV(t, seqCfg)
	if wantDS.Faults == nil || wantDS.Faults.Drops == 0 {
		t.Fatal("fault schedule had no effect; the variant tests nothing")
	}
	for _, shards := range []int{2, 4, 8} {
		gotCfg := seqCfg
		gotCfg.Shards = shards
		gotCSV, gotDS := runToCSV(t, gotCfg)
		if !bytes.Equal(gotCSV, wantCSV) {
			t.Fatalf("shards=%d: CSV stream differs under faults\n%s",
				shards, firstDiff(gotCSV, wantCSV))
		}
		if !reflect.DeepEqual(gotDS.Records, wantDS.Records) {
			t.Fatalf("shards=%d: query records differ under faults", shards)
		}
		if !reflect.DeepEqual(gotDS.AuthRecords, wantDS.AuthRecords) {
			t.Fatalf("shards=%d: auth records differ under faults", shards)
		}
		if !reflect.DeepEqual(gotDS.Faults, wantDS.Faults) {
			t.Fatalf("shards=%d: merged fault report differs:\n%+v\nwant\n%+v",
				shards, gotDS.Faults, wantDS.Faults)
		}
	}
}

// firstDiff renders the first line where two byte streams diverge.
func firstDiff(got, want []byte) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	hiG, hiW := i+120, i+120
	if hiG > len(got) {
		hiG = len(got)
	}
	if hiW > len(want) {
		hiW = len(want)
	}
	return fmt.Sprintf("first divergence at byte %d:\n got: …%s…\nwant: …%s…",
		i, got[lo:hiG], want[lo:hiW])
}
