package measure

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestMain lets this test binary double as a lane worker: the
// multi-process tests re-exec os.Executable(), which under `go test`
// is the test binary itself.
func TestMain(m *testing.M) {
	if MaybeRunLaneWorker() {
		return
	}
	os.Exit(m.Run())
}

// TestWorkersMatchInProcess extends the shard byte-identity contract
// across process layouts: at the same seed, the same run distributed
// over out-of-process lane workers must emit the byte-for-byte
// identical CSV stream — and deep-equal materialized datasets — as the
// in-process goroutine lanes, at every workers × shards combination.
func TestWorkersMatchInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns many worker subprocesses")
	}
	t.Parallel()
	for _, shards := range []int{4, 7} {
		for _, seed := range []int64{5, 21} {
			shards, seed := shards, seed
			t.Run(fmt.Sprintf("shards%d/seed%d", shards, seed), func(t *testing.T) {
				t.Parallel()
				baseCfg := shardCfg(t, "3B", 150, seed)
				baseCfg.Shards = shards
				wantCSV, wantDS := runToCSV(t, baseCfg)
				if len(wantDS.Records) == 0 {
					t.Fatal("in-process run produced no records")
				}
				for _, workers := range []int{2, 4} {
					gotCfg := baseCfg
					gotCfg.Workers = workers
					gotCSV, gotDS := runToCSV(t, gotCfg)
					if !bytes.Equal(gotCSV, wantCSV) {
						t.Fatalf("workers=%d: CSV stream differs from in-process (%d vs %d bytes)\n%s",
							workers, len(gotCSV), len(wantCSV), firstDiff(gotCSV, wantCSV))
					}
					if !reflect.DeepEqual(gotDS.Records, wantDS.Records) {
						t.Fatalf("workers=%d: materialized query records differ", workers)
					}
					if !reflect.DeepEqual(gotDS.AuthRecords, wantDS.AuthRecords) {
						t.Fatalf("workers=%d: auth records differ", workers)
					}
					if gotDS.ActiveProbes != wantDS.ActiveProbes {
						t.Fatalf("workers=%d: active probes %d vs %d",
							workers, gotDS.ActiveProbes, wantDS.ActiveProbes)
					}
				}
			})
		}
	}
}

// TestWorkersMatchInProcessWithFaults repeats the layout byte-identity
// check under a schedule exercising every fault family, and requires
// the lane reports shipped back over the wire to merge into the exact
// in-process report.
func TestWorkersMatchInProcessWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	t.Parallel()
	cfg := shardCfg(t, "3B", 150, 11)
	cfg.Shards = 4
	cfg.Faults = fiveKindSchedule()
	wantCSV, wantDS := runToCSV(t, cfg)
	if wantDS.Faults == nil || wantDS.Faults.Drops == 0 {
		t.Fatal("fault schedule had no effect; the variant tests nothing")
	}
	gotCfg := cfg
	gotCfg.Workers = 3
	gotCSV, gotDS := runToCSV(t, gotCfg)
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Fatalf("workers=3: CSV stream differs under faults\n%s", firstDiff(gotCSV, wantCSV))
	}
	if !reflect.DeepEqual(gotDS.Faults, wantDS.Faults) {
		t.Fatalf("workers=3: merged fault report differs:\n%+v\nwant\n%+v",
			gotDS.Faults, wantDS.Faults)
	}
}

// TestWorkersValidation pins the layout sanity checks: negative worker
// counts and more workers than lanes are config errors, not silent
// truncations.
func TestWorkersValidation(t *testing.T) {
	t.Parallel()
	cfg := shardCfg(t, "2A", 40, 1)
	cfg.Duration = 4 * time.Minute
	cfg.Workers = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("workers=-1 should be rejected")
	}
	cfg.Workers = 5
	cfg.Shards = 3
	if _, err := Run(cfg); err == nil {
		t.Fatal("workers=5 with shards=3 should be rejected")
	}
	cfg.Workers = 2
	cfg.Shards = 0 // one effective lane
	if _, err := Run(cfg); err == nil {
		t.Fatal("workers=2 with one lane should be rejected")
	}
}

// countSink counts delivered records; the cancellation tests use it to
// show how far a failed run got.
type countSink struct{ queries, auths int64 }

func (c *countSink) OnQuery(QueryRecord) { c.queries++ }
func (c *countSink) OnAuth(AuthRecord)   { c.auths++ }
func (c *countSink) Close() error        { return nil }

// TestLaneFailureCancelsSiblings injects a failure into one lane three
// virtual minutes into a half-hour run and requires (a) the run to
// surface exactly that error and (b) the sibling lanes to have been
// cancelled promptly rather than simulating to completion — measured
// by how many records reached the sink.
func TestLaneFailureCancelsSiblings(t *testing.T) {
	// Not parallel: uses the process-global testLaneFail hook.
	const magicSeed = 424242
	errBoom := errors.New("injected lane failure")
	testLaneFail = func(cfg RunConfig, lane int) (time.Duration, error) {
		if cfg.Seed == magicSeed && lane == 2 {
			return 3 * time.Minute, errBoom
		}
		return 0, nil
	}
	defer func() { testLaneFail = nil }()

	control := shardCfg(t, "2A", 120, 3)
	control.Duration = 30 * time.Minute
	control.Shards = 4
	var full countSink
	if _, err := RunStream(control, &full); err != nil {
		t.Fatal(err)
	}
	if full.queries == 0 {
		t.Fatal("control run produced no records")
	}

	failed := control
	failed.Seed = magicSeed
	var partial countSink
	_, err := RunStream(failed, &partial)
	if !errors.Is(err, errBoom) {
		t.Fatalf("run error = %v, want the injected lane failure", err)
	}
	// The failure hit at 3 of 30 virtual minutes. Generously allowing
	// for merge lookahead, a promptly-cancelled run delivers well under
	// half of the control's records; lanes left to finish would deliver
	// all of them.
	if partial.queries*2 >= full.queries {
		t.Fatalf("failed run delivered %d of %d records: siblings were not cancelled promptly",
			partial.queries, full.queries)
	}
}

// TestWorkerCrashPartialReport kills a worker right after its first
// lane-done frame and requires the failure to surface as a WorkerError
// carrying the finished lanes' merged fault report — the partial
// evidence a long campaign keeps.
func TestWorkerCrashPartialReport(t *testing.T) {
	// Not parallel: testWorkerCrash is process-global and would leak
	// into concurrently-running worker tests.
	cfg := shardCfg(t, "3B", 150, 11)
	cfg.Shards = 4
	cfg.Workers = 2
	cfg.Faults = fiveKindSchedule()
	testWorkerCrash = func(worker int) (batches, laneDones int) {
		if worker == 1 {
			return 0, 1 // exit(3) right after the first lane-done frame
		}
		return 0, 0
	}
	defer func() { testWorkerCrash = nil }()

	_, err := Run(cfg)
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("run error = %v, want a WorkerError", err)
	}
	if we.Worker != 1 {
		t.Fatalf("failed worker = %d, want 1", we.Worker)
	}
	if len(we.Done) < 1 {
		t.Fatal("WorkerError should carry at least the lane that finished before the crash")
	}
	if we.Partial == nil {
		t.Fatal("WorkerError.Partial should carry the finished lanes' fault reports")
	}
}

// snapshotRun executes cfg streaming CSV into path, with checkpointing
// into snapPath every `every` of virtual time. With resume it loads the
// snapshot first, truncates the output to the checkpointed offset and
// skips the already-durable prefix — the exact wiring ritw uses.
func snapshotRun(t *testing.T, cfg RunConfig, path, snapPath string, every time.Duration, resume bool) error {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var base int64
	var skip int64
	if resume {
		snap, err := LoadSnapshot(snapPath)
		if err != nil {
			t.Fatal(err)
		}
		if snap.OutBytes < 0 {
			t.Fatal("snapshot has no output offset to resume from")
		}
		base, skip = snap.OutBytes, snap.Records
		if err := f.Truncate(base); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Seek(base, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	csv := NewCSVSink(f, cfg.Combo.ID)
	if base > 0 {
		csv.SkipHeader()
	}
	cfg.Snapshot = &SnapshotSpec{
		Path:   snapPath,
		Every:  every,
		Resume: resume,
		Sync: func() (int64, error) {
			if err := csv.Flush(); err != nil {
				return 0, err
			}
			return base + csv.Bytes(), nil
		},
	}
	_, runErr := RunStream(cfg, SkipRecords(csv, skip))
	return runErr
}

// TestWorkerKillResume is the crash-recovery acceptance test: a run
// whose worker is killed mid-flight leaves a checkpoint from which a
// resumed run completes the output file byte-identically to a run that
// was never interrupted.
func TestWorkerKillResume(t *testing.T) {
	// Not parallel: uses the process-global testWorkerCrash hook.
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	// Large enough that the worker ships many batch frames, so the
	// injected crash (3 batches in) lands solidly mid-stream.
	cfg := shardCfg(t, "2B", 600, 9)
	cfg.Shards = 4
	cfg.Workers = 2

	dir := t.TempDir()
	control := filepath.Join(dir, "control.csv")
	if err := snapshotRun(t, cfg, control, filepath.Join(dir, "control.snap"), time.Minute, false); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(control)
	if err != nil {
		t.Fatal(err)
	}

	// The crashing run uses a single worker: with two, whether the
	// parent merged (and therefore checkpointed) anything before the
	// crash depends on a wall-clock race between the dying worker's
	// first batches and the sibling's — the k-way merge cannot deliver
	// a record until every stream has produced one. One self-paced
	// worker makes the pre-crash delivery deterministic; resuming under
	// the two-worker layout is then extra coverage for the checkpoint's
	// layout portability (layout is deliberately outside the
	// fingerprint).
	crash := cfg
	crash.Workers = 1
	out := filepath.Join(dir, "resumed.csv")
	snap := filepath.Join(dir, "resumed.snap")
	testWorkerCrash = func(worker int) (batches, laneDones int) {
		return 3, 0 // die after shipping 3 batch frames
	}
	err = snapshotRun(t, crash, out, snap, time.Minute, false)
	testWorkerCrash = nil
	if err == nil {
		t.Fatal("crashing run should fail")
	}
	loaded, err := LoadSnapshot(snap)
	if err != nil {
		t.Fatalf("interrupted run left no usable checkpoint: %v", err)
	}
	if loaded.Records == 0 || loaded.OutBytes <= 0 {
		t.Fatalf("checkpoint should cover progress, got %+v", loaded)
	}

	if err := snapshotRun(t, cfg, out, snap, time.Minute, true); err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed output differs from uninterrupted control (%d vs %d bytes)\n%s",
			len(got), len(want), firstDiff(got, want))
	}
}

// TestSnapshotExtendAcrossLayouts pins the deterministic resume path
// end to end: a short run finishes cleanly (leaving its final
// checkpoint), then a resumed run extends it to a longer duration —
// under a different shard layout — and must produce a file
// byte-identical to an uninterrupted long run. This exercises the
// CRC-verified prefix replay, SkipRecords, SkipHeader and the
// checkpoint's layout portability (shards, workers and duration are
// deliberately outside the fingerprint).
func TestSnapshotExtendAcrossLayouts(t *testing.T) {
	t.Parallel()
	long := shardCfg(t, "2A", 120, 13)
	long.Shards = 4
	short := long
	short.Duration = 10 * time.Minute

	dir := t.TempDir()
	control := filepath.Join(dir, "control.csv")
	if err := snapshotRun(t, long, control, filepath.Join(dir, "control.snap"), time.Minute, false); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(control)
	if err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "extended.csv")
	snap := filepath.Join(dir, "extended.snap")
	if err := snapshotRun(t, short, out, snap, time.Minute, false); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Records == 0 || loaded.OutBytes <= 0 {
		t.Fatalf("short run's final checkpoint should cover its records, got %+v", loaded)
	}
	// Extend under a different layout: 2 shards instead of 4.
	extended := long
	extended.Shards = 2
	if err := snapshotRun(t, extended, out, snap, time.Minute, true); err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("extended output differs from uninterrupted control\n%s", firstDiff(got, want))
	}
}

// TestSnapshotFingerprintMismatch pins that resuming under a config
// producing a different record stream is refused up front.
func TestSnapshotFingerprintMismatch(t *testing.T) {
	t.Parallel()
	cfg := shardCfg(t, "2A", 60, 17)
	cfg.Duration = 6 * time.Minute
	dir := t.TempDir()
	out := filepath.Join(dir, "run.csv")
	snap := filepath.Join(dir, "run.snap")
	if err := snapshotRun(t, cfg, out, snap, time.Minute, false); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 18
	other.Population.Seed = 18
	err := snapshotRun(t, other, out, snap, time.Minute, true)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("fingerprint")) {
		t.Fatalf("resume under a different seed = %v, want a fingerprint mismatch", err)
	}
	// A longer run at the same seed, however, resumes fine: Duration is
	// deliberately outside the fingerprint (causality makes the shorter
	// run's stream a prefix of the longer one's).
	longer := cfg
	longer.Duration = 8 * time.Minute
	if err := snapshotRun(t, longer, out, snap, time.Minute, true); err != nil {
		t.Fatalf("extending a finished run should resume cleanly, got %v", err)
	}
}

// BenchmarkWorkerLayout runs one pinned measurement in-process and
// across lane-worker subprocesses. Byte-identity makes the time ratio
// pure orchestration cost: re-exec, lanewire framing, pipe transport
// and the parent-side merge of worker streams.
func BenchmarkWorkerLayout(b *testing.B) {
	for _, workers := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchLayoutCfg(b, workers)
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchLayoutCfg(b *testing.B, workers int) RunConfig {
	b.Helper()
	combo, err := CombinationByID("3B")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultRunConfig(combo, 7)
	cfg.Population.NumProbes = 300
	cfg.Shards = 4
	cfg.Workers = workers
	cfg.StreamOnly = true
	cfg.Sink = Discard
	return cfg
}
