package measure

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"ritw/internal/faults"
	"ritw/internal/lanewire"
)

// SnapshotSpec configures run checkpointing (RunConfig.Snapshot). The
// engine cannot serialize a live lane — the event queue holds Go
// closures — so a snapshot is an emission-frontier checkpoint instead:
// how far the canonical record stream has progressed, verified by a
// running CRC. Resuming re-simulates deterministically (keyed RNG
// means there is no RNG state to save), CRC-checks the replayed prefix
// against the snapshot, and the caller skips re-delivering it to
// durable sinks (see SkipRecords). Checkpoints land only at instant
// boundaries — after every record of a virtual instant is delivered,
// before the first of the next — because an instant is the smallest
// unit whose record set is layout-independent; see DESIGN.md §8.7.
type SnapshotSpec struct {
	// Path is the snapshot file (written atomically via rename).
	Path string
	// Every is the minimum virtual-time distance between checkpoints
	// (0 = only the final checkpoint at run completion).
	Every time.Duration
	// Resume loads Path before the run, verifies its fingerprint
	// against the config and its CRC against the replayed stream, and
	// marks the prefix as already durable.
	Resume bool
	// Sync, if set, is called at each checkpoint to flush the caller's
	// durable output sink; the returned byte offset is recorded as
	// Snapshot.OutBytes so a resume can truncate a partially-written
	// tail. Without it OutBytes is -1 (no durable output tracked).
	Sync func() (int64, error)
}

// snapshotVersion guards the snapshot file layout.
const snapshotVersion = 1

// Snapshot is the on-disk checkpoint state. Fingerprint covers every
// config field that shapes the record stream — but deliberately not
// the process layout (shards, workers, scheduler), which byte-identity
// makes interchangeable, and not Duration: the simulation is causal,
// so a longer run reproduces a shorter run's stream as its prefix,
// which is what lets a finished replay be incrementally extended.
type Snapshot struct {
	Version     int
	Fingerprint uint64
	// Frontier is the last fully-delivered virtual instant.
	Frontier time.Duration
	// Records counts canonical records delivered up to the frontier.
	Records int64
	// StreamCRC is the running CRC-32 (IEEE) of the lanewire encoding
	// of those records, in canonical order.
	StreamCRC uint32
	// LaneRecords are per-stream record tallies at the checkpoint
	// (per lane in-process, per worker with Workers > 0) — diagnostic
	// only, since the stream layout may legally differ on resume.
	LaneRecords []int64
	// OutBytes is the durable output offset reported by Sync (-1 when
	// no Sync hook was configured).
	OutBytes int64
	// Shards and Workers record the layout that wrote the checkpoint
	// (informational; resume does not require them to match).
	Shards  int
	Workers int
}

// LoadSnapshot reads and validates a snapshot file.
func LoadSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("measure: reading snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("measure: parsing snapshot %s: %w", path, err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("measure: snapshot %s is version %d, this build writes %d", path, s.Version, snapshotVersion)
	}
	return &s, nil
}

func writeSnapshot(path string, s *Snapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("measure: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("measure: committing snapshot: %w", err)
	}
	return nil
}

var crcTable = crc32.MakeTable(crc32.IEEE)

// snapshotter observes the merged canonical stream inside runShards:
// it maintains the record count and running CRC, writes checkpoints at
// instant boundaries, and — on resume — verifies the replayed prefix
// against the loaded snapshot. Errors abort the run promptly via the
// lane-cancel hook rather than after a full (possibly week-long)
// drain.
type snapshotter struct {
	spec    *SnapshotSpec
	fp      uint64
	every   time.Duration
	nextAt  time.Duration
	verify  *Snapshot // loaded snapshot being re-verified, nil otherwise
	shards  int
	workers int

	n       int64
	crc     uint32
	lastAt  time.Duration
	perLane []int64
	buf     []byte
	err     error
	abort   func(error) // cancels the lanes; set by runShards
}

// newSnapshotter returns nil when the run has no snapshot spec.
func newSnapshotter(cfg RunConfig, pl *runPlan, sched *faults.Schedule) (*snapshotter, error) {
	spec := cfg.Snapshot
	if spec == nil {
		return nil, nil
	}
	if spec.Path == "" {
		return nil, fmt.Errorf("measure: snapshot spec needs a path")
	}
	if spec.Every < 0 {
		return nil, fmt.Errorf("measure: snapshot interval must be >= 0, got %v", spec.Every)
	}
	sn := &snapshotter{
		spec:    spec,
		fp:      runFingerprint(cfg, pl, sched),
		every:   spec.Every,
		nextAt:  spec.Every,
		shards:  pl.nShards,
		workers: cfg.Workers,
	}
	if spec.Resume {
		snap, err := LoadSnapshot(spec.Path)
		if err != nil {
			return nil, err
		}
		if snap.Fingerprint != sn.fp {
			return nil, fmt.Errorf("measure: snapshot %s was taken under a different run config (fingerprint %016x, this run %016x)",
				spec.Path, snap.Fingerprint, sn.fp)
		}
		sn.verify = snap
	}
	return sn, nil
}

func (sn *snapshotter) fail(err error) {
	if sn.err == nil {
		sn.err = err
		if sn.abort != nil {
			sn.abort(err)
		}
	}
}

// observe is called for every merged record, in canonical order.
func (sn *snapshotter) observe(stream int, rec emitted) {
	if sn.err != nil {
		return
	}
	if sn.every > 0 {
		for rec.at >= sn.nextAt {
			// The previous instant is complete: everything before
			// nextAt has been delivered. Skip rewriting checkpoints
			// inside a verified prefix — they would be identical.
			if sn.verify == nil || sn.n >= sn.verify.Records {
				if err := sn.checkpoint(); err != nil {
					sn.fail(err)
					return
				}
			}
			sn.nextAt += sn.every
		}
	}
	w := wireFromEmitted(&rec)
	sn.buf = lanewire.AppendRecord(sn.buf[:0], &w)
	sn.crc = crc32.Update(sn.crc, crcTable, sn.buf)
	sn.n++
	sn.lastAt = rec.at
	for stream >= len(sn.perLane) {
		sn.perLane = append(sn.perLane, 0)
	}
	sn.perLane[stream]++
	if v := sn.verify; v != nil && sn.n == v.Records {
		if sn.crc != v.StreamCRC {
			sn.fail(fmt.Errorf("measure: resume: replayed stream diverges from snapshot %s at record %d (crc %08x, snapshot %08x)",
				sn.spec.Path, sn.n, sn.crc, v.StreamCRC))
		}
	}
}

func (sn *snapshotter) checkpoint() error {
	snap := &Snapshot{
		Version:     snapshotVersion,
		Fingerprint: sn.fp,
		Frontier:    sn.lastAt,
		Records:     sn.n,
		StreamCRC:   sn.crc,
		LaneRecords: append([]int64(nil), sn.perLane...),
		OutBytes:    -1,
		Shards:      sn.shards,
		Workers:     sn.workers,
	}
	if sn.spec.Sync != nil {
		off, err := sn.spec.Sync()
		if err != nil {
			return fmt.Errorf("measure: snapshot output sync: %w", err)
		}
		snap.OutBytes = off
	}
	return writeSnapshot(sn.spec.Path, snap)
}

// failureCheckpoint persists the delivered prefix when the run fails
// mid-flight: everything the merge handed to the sink before the
// cancellation is a canonical prefix (deliveries stop the instant a
// stream fails), so it is safe to resume from even when no periodic
// boundary was crossed. Best-effort — the run's primary error stands
// regardless — and never on a still-inside-verified-prefix resume,
// where rewriting would regress the checkpoint it was loaded from.
func (sn *snapshotter) failureCheckpoint() {
	if sn.err != nil || sn.n == 0 {
		return
	}
	if v := sn.verify; v != nil && sn.n < v.Records {
		return
	}
	_ = sn.checkpoint()
}

// finish runs after a successful merge: it validates that a resumed
// run actually covered the snapshot's prefix and writes the final
// checkpoint.
func (sn *snapshotter) finish() error {
	if sn.err != nil {
		return sn.err
	}
	if v := sn.verify; v != nil && sn.n < v.Records {
		return fmt.Errorf("measure: resume: run produced %d records but snapshot %s covers %d — was the run shortened?",
			sn.n, sn.spec.Path, v.Records)
	}
	return sn.checkpoint()
}

// SkipRecords wraps sink so the first n records (query and auth, in
// delivery order) are dropped and the rest pass through: the resume
// adapter for durable output sinks whose prefix already made it to
// disk. Meta and Close always pass through.
func SkipRecords(sink Sink, n int64) Sink {
	if n <= 0 {
		return sink
	}
	return &skipSink{inner: sink, left: n}
}

type skipSink struct {
	inner Sink
	left  int64
}

func (s *skipSink) OnQuery(r QueryRecord) {
	if s.left > 0 {
		s.left--
		return
	}
	s.inner.OnQuery(r)
}

func (s *skipSink) OnAuth(a AuthRecord) {
	if s.left > 0 {
		s.left--
		return
	}
	s.inner.OnAuth(a)
}

func (s *skipSink) OnMeta(m Meta) {
	if ms, ok := s.inner.(MetaSink); ok {
		ms.OnMeta(m)
	}
}

func (s *skipSink) Close() error { return s.inner.Close() }
