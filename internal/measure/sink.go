package measure

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"
	"net/netip"
	"strconv"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/entrada"
	"ritw/internal/obs"
)

// Sink receives measurement records as they complete, in virtual-time
// order. It is the streaming alternative to materializing a Dataset:
// Run/RunContext push every client-side QueryRecord and server-side
// AuthRecord into the configured sink the moment the simulator settles
// them, so consumers (writers, spill files, incremental aggregators)
// can process a run of any population size in bounded memory.
//
// Within one vantage point, records arrive in query order: the probing
// interval (minutes) dwarfs the client timeout (seconds), so a query
// is always settled — answered or timed out — before the VP's next one
// is sent. Across VPs, records interleave in completion order.
//
// The run owns the sink it is given and calls Close exactly once after
// the simulation finishes; Close flushes buffers and reports any
// deferred write error.
type Sink interface {
	OnQuery(QueryRecord)
	OnAuth(AuthRecord)
	Close() error
}

// Meta describes a run apart from its record stream: everything a
// Dataset carries outside the Records/AuthRecords slices.
type Meta struct {
	ComboID      string
	Sites        []string
	Interval     time.Duration
	Duration     time.Duration
	ActiveProbes int
	SiteAddr     map[string]netip.Addr
}

// MetaSink is an optional extension: sinks that also want the run
// summary implement it, and Run/RunContext call OnMeta once — after
// the simulation finishes, before Close.
type MetaSink interface {
	OnMeta(Meta)
}

// Dataset implements Sink by appending, so the materialized path is
// just the streaming path pointed at a slice.

// OnQuery appends a client-side record.
func (d *Dataset) OnQuery(r QueryRecord) { d.Records = append(d.Records, r) }

// OnAuth appends a server-side record.
func (d *Dataset) OnAuth(a AuthRecord) { d.AuthRecords = append(d.AuthRecords, a) }

// OnMeta fills the dataset's summary fields from the run.
func (d *Dataset) OnMeta(m Meta) {
	d.ComboID = m.ComboID
	d.Sites = append([]string(nil), m.Sites...)
	d.Interval = m.Interval
	d.Duration = m.Duration
	d.ActiveProbes = m.ActiveProbes
	if d.SiteAddr == nil {
		d.SiteAddr = make(map[string]netip.Addr, len(m.SiteAddr))
	}
	for k, v := range m.SiteAddr {
		d.SiteAddr[k] = v
	}
}

// Close implements Sink; a dataset needs no flushing.
func (d *Dataset) Close() error { return nil }

// Discard drops every record; it backs metadata-only runs (StreamOnly
// with no sink configured).
var Discard Sink = discardSink{}

type discardSink struct{}

func (discardSink) OnQuery(QueryRecord) {}
func (discardSink) OnAuth(AuthRecord)   {}
func (discardSink) Close() error        { return nil }

// Tee fans records out to several sinks in argument order. Close
// closes every branch and returns the first error.
func Tee(sinks ...Sink) Sink { return teeSink(sinks) }

type teeSink []Sink

func (t teeSink) OnQuery(r QueryRecord) {
	for _, s := range t {
		s.OnQuery(r)
	}
}

func (t teeSink) OnAuth(a AuthRecord) {
	for _, s := range t {
		s.OnAuth(a)
	}
}

func (t teeSink) OnMeta(m Meta) {
	for _, s := range t {
		if ms, ok := s.(MetaSink); ok {
			ms.OnMeta(m)
		}
	}
}

func (t teeSink) Close() error {
	var first error
	for _, s := range t {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// countingWriter tracks bytes spilled downstream.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// CSVSink streams client-side records to w in WriteCSV's row format as
// they complete, holding only one buffered row in memory. Write errors
// are deferred to Close. Feeding a dataset's records through a CSVSink
// produces output byte-identical to Dataset.WriteCSV.
type CSVSink struct {
	cw      *csv.Writer
	cnt     *countingWriter
	comboID string
	err     error
	header  bool
}

// NewCSVSink returns a sink writing rows for the given combination.
func NewCSVSink(w io.Writer, comboID string) *CSVSink {
	return &CSVSink{cnt: &countingWriter{w: w}, comboID: comboID}
}

func (s *CSVSink) OnQuery(r QueryRecord) {
	if s.err != nil {
		return
	}
	if !s.header {
		s.header = true
		s.cw = csv.NewWriter(s.cnt)
		s.err = s.cw.Write(csvHeader)
		if s.err != nil {
			return
		}
	}
	s.err = s.cw.Write(csvRow(s.comboID, r))
}

// OnAuth is a no-op: the CSV format carries client-side records only.
func (s *CSVSink) OnAuth(AuthRecord) {}

// Bytes returns how many bytes have been spilled to the writer so far.
// The CSV encoder buffers internally, so call Flush first when the
// offset must account for every record delivered (the snapshot Sync
// hook does).
func (s *CSVSink) Bytes() int64 { return s.cnt.n }

// Flush pushes buffered rows to the underlying writer, surfacing (and
// deferring) any write error. Snapshot checkpoints call it so
// Snapshot.OutBytes covers exactly the records delivered so far.
func (s *CSVSink) Flush() error {
	if s.err == nil && s.cw != nil {
		s.cw.Flush()
		s.err = s.cw.Error()
	}
	return s.err
}

// SkipHeader marks the header as already written — the resume path,
// where the output file retains the previous run's header and rewriting
// it would corrupt the byte-identity of the appended stream.
func (s *CSVSink) SkipHeader() {
	if !s.header {
		s.header = true
		s.cw = csv.NewWriter(s.cnt)
	}
}

// Close writes the header even for an empty run, flushes, and returns
// the first deferred error.
func (s *CSVSink) Close() error {
	if s.err != nil {
		return s.err
	}
	if !s.header {
		s.header = true
		s.cw = csv.NewWriter(s.cnt)
		if err := s.cw.Write(csvHeader); err != nil {
			return err
		}
	}
	s.cw.Flush()
	return s.cw.Error()
}

var csvHeader = []string{"combo", "probe", "resolver", "vp", "continent", "seq", "sent_ms", "rtt_ms", "site", "ok"}

func csvRow(comboID string, r QueryRecord) []string {
	return []string{
		comboID,
		strconv.Itoa(r.ProbeID),
		r.Resolver.String(),
		r.VPKey,
		r.Continent.String(),
		strconv.Itoa(r.Seq),
		strconv.FormatInt(int64(r.SentAt/time.Millisecond), 10),
		strconv.FormatFloat(r.RTTms, 'f', 3, 64),
		r.Site,
		strconv.FormatBool(r.OK),
	}
}

// JSONLSink streams records to w as JSON lines: query records in
// WriteJSONL's flat object form, auth records and site addresses as
// tagged lines, and — when the run supplies it — one tagged summary
// line. The output round-trips through ReadJSONL. Write errors are
// deferred to Close.
type JSONLSink struct {
	bw      *bufio.Writer
	cnt     *countingWriter
	enc     *json.Encoder
	comboID string
	err     error
}

// NewJSONLSink returns a sink writing JSON lines for the given
// combination.
func NewJSONLSink(w io.Writer, comboID string) *JSONLSink {
	cnt := &countingWriter{w: w}
	bw := bufio.NewWriter(cnt)
	return &JSONLSink{bw: bw, cnt: cnt, enc: json.NewEncoder(bw), comboID: comboID}
}

func (s *JSONLSink) OnQuery(r QueryRecord) {
	if s.err != nil {
		return
	}
	jr := queryJSON(s.comboID, r)
	s.err = s.enc.Encode(jr)
}

func (s *JSONLSink) OnAuth(a AuthRecord) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(jsonLine{Auth: &jsonAuth{
		Site:  a.Site,
		Src:   a.Src.String(),
		QName: a.QName,
		AtNs:  int64(a.At),
	}})
}

// OnMeta emits the tagged summary line at the sink's current position:
// WriteJSONL places it first, a live run appends it after the records.
func (s *JSONLSink) OnMeta(m Meta) {
	if s.err != nil {
		return
	}
	jm := &jsonMeta{
		Combo:        m.ComboID,
		Sites:        m.Sites,
		IntervalMs:   int64(m.Interval / time.Millisecond),
		DurationMs:   int64(m.Duration / time.Millisecond),
		ActiveProbes: m.ActiveProbes,
	}
	if len(m.SiteAddr) > 0 {
		jm.SiteAddr = make(map[string]string, len(m.SiteAddr))
		for code, addr := range m.SiteAddr {
			jm.SiteAddr[code] = addr.String()
		}
	}
	s.err = s.enc.Encode(jsonLine{Dataset: jm})
}

// Bytes returns how many bytes have been spilled to the writer so far.
func (s *JSONLSink) Bytes() int64 {
	return s.cnt.n + int64(s.bw.Buffered())
}

// Flush pushes buffered lines downstream, deferring any write error.
func (s *JSONLSink) Flush() error {
	if s.err == nil {
		s.err = s.bw.Flush()
	}
	return s.err
}

// Close flushes and returns the first deferred error.
func (s *JSONLSink) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// EntradaSink spills the server-side capture into an entrada binary
// trace — the warehouse format §5's DITL/ENTRADA validation reads —
// so a run's auth-side stream lands on disk instead of the heap.
// Client-side records pass through untouched (an authoritative never
// sees them). Auth records arrive in virtual-time order, satisfying
// the writer's monotonic-timestamp requirement.
type EntradaSink struct {
	w   *entrada.Writer
	cnt *countingWriter
	err error
}

// NewEntradaSink returns a sink appending auth records to w.
func NewEntradaSink(w io.Writer) *EntradaSink {
	cnt := &countingWriter{w: w}
	return &EntradaSink{w: entrada.NewWriter(cnt), cnt: cnt}
}

// OnQuery is a no-op: entrada stores the server-side view.
func (s *EntradaSink) OnQuery(QueryRecord) {}

func (s *EntradaSink) OnAuth(a AuthRecord) {
	if s.err != nil {
		return
	}
	s.err = s.w.Add(entrada.Query{
		At:     a.At,
		Server: a.Site,
		Src:    a.Src,
		QType:  uint16(dnswire.TypeTXT),
	})
}

// Bytes returns how many bytes have been spilled to the writer so far.
func (s *EntradaSink) Bytes() int64 { return s.cnt.n }

// Close flushes the trace and returns the first deferred error.
func (s *EntradaSink) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// ByteSink is implemented by sinks that spill bytes downstream and can
// report how many; InstrumentSink uses it for the spill gauge.
type ByteSink interface {
	Bytes() int64
}

// InstrumentSink wraps s so the stream's volume shows up in reg:
// measure_sink_records_streamed_total and
// measure_sink_auth_records_streamed_total count emissions, and — when
// s reports spilled bytes via ByteSink — the
// measure_sink_spilled_bytes{sink=<label>} gauge is set at Close.
// A nil registry returns s unchanged.
func InstrumentSink(s Sink, reg *obs.Registry, label string) Sink {
	if reg == nil {
		return s
	}
	return &instrumentedSink{
		inner:   s,
		queries: reg.Counter("measure_sink_records_streamed_total"),
		auths:   reg.Counter("measure_sink_auth_records_streamed_total"),
		spilled: reg.Gauge(obs.LabelName("measure_sink_spilled_bytes", "sink", label)),
	}
}

type instrumentedSink struct {
	inner   Sink
	queries *obs.Counter
	auths   *obs.Counter
	spilled *obs.Gauge
}

func (s *instrumentedSink) OnQuery(r QueryRecord) {
	s.queries.Inc()
	s.inner.OnQuery(r)
}

func (s *instrumentedSink) OnAuth(a AuthRecord) {
	s.auths.Inc()
	s.inner.OnAuth(a)
}

func (s *instrumentedSink) OnMeta(m Meta) {
	if ms, ok := s.inner.(MetaSink); ok {
		ms.OnMeta(m)
	}
}

func (s *instrumentedSink) Close() error {
	err := s.inner.Close()
	if bs, ok := s.inner.(ByteSink); ok {
		s.spilled.Set(float64(bs.Bytes()))
	}
	return err
}
