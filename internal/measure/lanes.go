package measure

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"ritw/internal/attacks"
	"ritw/internal/faults"
	"ritw/internal/obs"
)

// laneReport bundles the per-lane side reports a lane produces besides
// its record stream: the fault-injection ledger and the attack-traffic
// ledger. Either is nil when the run has no corresponding schedule.
type laneReport struct {
	Faults  *faults.Report
	Attacks *attacks.Report
}

// LaneRunner executes the lanes of a planned run and streams each
// lane's canonically-ordered batches to the caller's merger. Two
// implementations exist: goroutineLanes (one goroutine per shard in
// this process, the default) and processLanes (lanes distributed over
// `ritw lane-worker` subprocesses speaking the lanewire protocol).
// Both deliver sorted streams drawn from the same canonical total
// order (emittedLess), so the merged dataset is byte-identical
// whatever the process layout — the contract TestWorkersMatchInProcess
// pins on top of TestShardedMatchesSequential.
type LaneRunner interface {
	// streams is how many sorted record streams the runner produces:
	// one per lane for goroutine lanes, one per worker process for
	// process lanes. Workers pre-merge their own lanes before shipping;
	// merging sorted streams under a total order is associative, so the
	// grouping never changes the final sequence. Pre-merging also keeps
	// one pipe per worker, which avoids head-of-line deadlock between
	// bounded per-lane buffers multiplexed on a single descriptor.
	streams() int
	// runLanes executes every lane, sending sorted batches into
	// outs[i] and closing each channel when stream i ends. It returns
	// per-lane reports (zero-valued entries when the run has no fault
	// or attack schedule) and the run's primary error. ctx is the run's shared cancellable
	// context and cancel its cause-carrying cancel: a failing lane
	// calls cancel(err) — before its stream closes — so siblings stop
	// promptly (first-error-wins, errgroup style) AND the parent merge
	// sees ctx cancelled before any stream ends, which is what keeps
	// post-failure records out of sinks and snapshots.
	runLanes(ctx context.Context, cancel context.CancelCauseFunc, cfg RunConfig, pl *runPlan, sched *faults.Schedule, outs []chan<- []emitted, metrics *obs.Registry) ([]laneReport, error)
}

// laneRunnerFor selects the execution backend from cfg.Workers
// (validated in RunContext: 0 ≤ Workers ≤ shards).
func laneRunnerFor(cfg RunConfig, pl *runPlan) (LaneRunner, error) {
	if cfg.Workers > 0 {
		return newProcessLanes(cfg.Workers, pl.nShards)
	}
	return &goroutineLanes{lanes: pl.nShards}, nil
}

// goroutineLanes is the in-process backend: one goroutine per shard.
type goroutineLanes struct{ lanes int }

func (g *goroutineLanes) streams() int { return g.lanes }

func (g *goroutineLanes) runLanes(ctx context.Context, cancel context.CancelCauseFunc, cfg RunConfig, pl *runPlan, sched *faults.Schedule, outs []chan<- []emitted, metrics *obs.Registry) ([]laneReport, error) {
	reports := make([]laneReport, g.lanes)
	errs := make([]error, g.lanes)
	var wg sync.WaitGroup
	for s := 0; s < g.lanes; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer close(outs[s])
			start := time.Now()
			var n int64
			reports[s], n, errs[s] = runOneShard(ctx, cfg, pl, sched, s, outs[s], metrics)
			observeLane(metrics, s, n, time.Since(start))
			if errs[s] != nil {
				// First failure aborts the siblings instead of letting
				// them simulate to completion before the error surfaces.
				// Cancelling before the deferred close also tells the
				// merge to stop delivering before this stream ends.
				cancel(errs[s])
			}
		}(s)
	}
	wg.Wait()
	return reports, firstLaneError(ctx, errs)
}

// firstLaneError resolves a lane batch's primary error: the
// cancellation cause when a lane (or the snapshotter) aborted the run,
// otherwise the first recorded error (which covers plain parent-ctx
// cancellation, whose cause is context.Canceled).
func firstLaneError(ctx context.Context, errs []error) error {
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// observeLane records one finished lane in the run's registry: a
// per-lane record counter and wall-clock gauge, plus the lane total.
// Both backends route through here exactly once per lane — in-process
// lanes directly, worker lanes when the parent receives the lane-done
// frame — so the parent registry reads the same whatever the layout.
func observeLane(reg *obs.Registry, lane int, records int64, wall time.Duration) {
	if reg == nil {
		return
	}
	l := strconv.Itoa(lane)
	reg.Counter("lane_runs_total").Inc()
	reg.Counter(obs.LabelName("lane_records_total", "lane", l)).Add(records)
	reg.Gauge(obs.LabelName("lane_wallclock_ms", "lane", l)).Set(float64(wall) / float64(time.Millisecond))
}

// testLaneFail, when set (tests only), lets a lane inject a failure at
// a virtual instant: runOneShard asks it once per lane and schedules
// the returned error at the returned time. The hook receives cfg so a
// test can scope the injection to its own runs (the hook is process
// global and tests run in parallel).
var testLaneFail func(cfg RunConfig, lane int) (time.Duration, error)
