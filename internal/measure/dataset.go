package measure

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"time"

	"ritw/internal/geo"
)

// meta snapshots the dataset's summary fields for the tagged JSONL
// line and for sinks.
func (d *Dataset) meta() Meta {
	return Meta{
		ComboID:      d.ComboID,
		Sites:        d.Sites,
		Interval:     d.Interval,
		Duration:     d.Duration,
		ActiveProbes: d.ActiveProbes,
		SiteAddr:     d.SiteAddr,
	}
}

// WriteCSV emits the client-side records in the spirit of the paper's
// published datasets: one row per probe query. It is the materialized
// twin of CSVSink and produces identical bytes.
func (d *Dataset) WriteCSV(w io.Writer) error {
	s := NewCSVSink(w, d.ComboID)
	for _, r := range d.Records {
		s.OnQuery(r)
	}
	return s.Close()
}

// ReadCSV parses a dataset previously exported with WriteCSV, enabling
// offline re-analysis of published run artifacts. Sites and the run
// duration are reconstructed from the records (duration is the last
// send time rounded up to a minute); the probing interval is not
// stored in the CSV and is left zero.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 || len(rows[0]) != 10 || rows[0][0] != "combo" {
		return nil, fmt.Errorf("measure: not a dataset CSV")
	}
	ds := &Dataset{SiteAddr: map[string]netip.Addr{}}
	sites := map[string]bool{}
	var maxSent time.Duration
	for i, row := range rows[1:] {
		if len(row) != 10 {
			return nil, fmt.Errorf("measure: row %d has %d fields", i+2, len(row))
		}
		if ds.ComboID == "" {
			ds.ComboID = row[0]
		}
		probe, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("measure: row %d probe: %w", i+2, err)
		}
		raddr, err := netip.ParseAddr(row[2])
		if err != nil {
			return nil, fmt.Errorf("measure: row %d resolver: %w", i+2, err)
		}
		cont, err := geo.ParseContinent(row[4])
		if err != nil {
			return nil, fmt.Errorf("measure: row %d: %w", i+2, err)
		}
		seq, err := strconv.Atoi(row[5])
		if err != nil {
			return nil, fmt.Errorf("measure: row %d seq: %w", i+2, err)
		}
		sentMs, err := strconv.ParseInt(row[6], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("measure: row %d sent: %w", i+2, err)
		}
		rtt, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			return nil, fmt.Errorf("measure: row %d rtt: %w", i+2, err)
		}
		ok, err := strconv.ParseBool(row[9])
		if err != nil {
			return nil, fmt.Errorf("measure: row %d ok: %w", i+2, err)
		}
		rec := QueryRecord{
			ProbeID:   probe,
			Resolver:  raddr,
			VPKey:     row[3],
			Continent: cont,
			Seq:       seq,
			SentAt:    time.Duration(sentMs) * time.Millisecond,
			RTTms:     rtt,
			Site:      row[8],
			OK:        ok,
		}
		if rec.SentAt > maxSent {
			maxSent = rec.SentAt
		}
		if rec.Site != "" {
			sites[rec.Site] = true
		}
		ds.Records = append(ds.Records, rec)
	}
	for s := range sites {
		ds.Sites = append(ds.Sites, s)
	}
	sort.Strings(ds.Sites)
	ds.Duration = maxSent.Truncate(time.Minute) + time.Minute
	probes := map[int]bool{}
	for _, rec := range ds.Records {
		probes[rec.ProbeID] = true
	}
	ds.ActiveProbes = len(probes)
	return ds, nil
}

// jsonRecord is the JSONL representation of a QueryRecord.
type jsonRecord struct {
	Combo     string  `json:"combo"`
	Probe     int     `json:"probe"`
	Resolver  string  `json:"resolver"`
	VP        string  `json:"vp"`
	Continent string  `json:"continent"`
	Seq       int     `json:"seq"`
	SentMs    int64   `json:"sent_ms"`
	RTTms     float64 `json:"rtt_ms"`
	Site      string  `json:"site"`
	OK        bool    `json:"ok"`
}

func queryJSON(comboID string, r QueryRecord) jsonRecord {
	return jsonRecord{
		Combo:     comboID,
		Probe:     r.ProbeID,
		Resolver:  r.Resolver.String(),
		VP:        r.VPKey,
		Continent: r.Continent.String(),
		Seq:       r.Seq,
		SentMs:    int64(r.SentAt / time.Millisecond),
		RTTms:     r.RTTms,
		Site:      r.Site,
		OK:        r.OK,
	}
}

// jsonMeta is the tagged dataset-summary JSONL line.
type jsonMeta struct {
	Combo        string            `json:"combo"`
	Sites        []string          `json:"sites,omitempty"`
	IntervalMs   int64             `json:"interval_ms"`
	DurationMs   int64             `json:"duration_ms"`
	ActiveProbes int               `json:"active_probes"`
	SiteAddr     map[string]string `json:"site_addr,omitempty"`
}

// jsonAuth is the tagged server-side capture JSONL line.
type jsonAuth struct {
	Site  string `json:"site"`
	Src   string `json:"src"`
	QName string `json:"qname"`
	AtNs  int64  `json:"at_ns"`
}

// jsonLine is a tagged (non-query) JSONL line on output.
type jsonLine struct {
	Dataset *jsonMeta `json:"dataset,omitempty"`
	Auth    *jsonAuth `json:"auth,omitempty"`
}

// jsonLineIn decodes any JSONL line: tagged summary/auth lines carry
// their discriminating key, everything else is a flat query record.
type jsonLineIn struct {
	Dataset *jsonMeta `json:"dataset"`
	Auth    *jsonAuth `json:"auth"`
	jsonRecord
}

// WriteJSONL emits the dataset as JSON lines, the other format the
// measurement community expects: one tagged summary line (carrying
// sites, interval, duration, probe count and site addresses), then one
// flat object per query record, then one tagged line per auth record.
// The output round-trips through ReadJSONL.
func (d *Dataset) WriteJSONL(w io.Writer) error {
	s := NewJSONLSink(w, d.ComboID)
	s.OnMeta(d.meta())
	for _, r := range d.Records {
		s.OnQuery(r)
	}
	for _, a := range d.AuthRecords {
		s.OnAuth(a)
	}
	return s.Close()
}

// ReadJSONL parses a dataset exported with WriteJSONL (or streamed by
// a JSONLSink). The tagged summary line restores the fields a CSV
// round-trip loses — interval, site list, site addresses — and auth
// lines restore the server-side capture. Plain record streams without
// a summary line are accepted too; summary fields are then
// reconstructed from the records as ReadCSV does.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	ds := &Dataset{SiteAddr: map[string]netip.Addr{}}
	sawMeta := false
	sites := map[string]bool{}
	var maxSent time.Duration
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var jl jsonLineIn
		if err := json.Unmarshal(line, &jl); err != nil {
			return nil, fmt.Errorf("measure: jsonl line %d: %w", lineNo, err)
		}
		switch {
		case jl.Dataset != nil:
			m := jl.Dataset
			sawMeta = true
			ds.ComboID = m.Combo
			ds.Sites = append([]string(nil), m.Sites...)
			ds.Interval = time.Duration(m.IntervalMs) * time.Millisecond
			ds.Duration = time.Duration(m.DurationMs) * time.Millisecond
			ds.ActiveProbes = m.ActiveProbes
			for code, s := range m.SiteAddr {
				addr, err := netip.ParseAddr(s)
				if err != nil {
					return nil, fmt.Errorf("measure: jsonl line %d site %s: %w", lineNo, code, err)
				}
				ds.SiteAddr[code] = addr
			}
		case jl.Auth != nil:
			src, err := netip.ParseAddr(jl.Auth.Src)
			if err != nil {
				return nil, fmt.Errorf("measure: jsonl line %d auth src: %w", lineNo, err)
			}
			ds.AuthRecords = append(ds.AuthRecords, AuthRecord{
				Site:  jl.Auth.Site,
				Src:   src,
				QName: jl.Auth.QName,
				At:    time.Duration(jl.Auth.AtNs),
			})
		default:
			jr := jl.jsonRecord
			rec := QueryRecord{
				ProbeID: jr.Probe,
				VPKey:   jr.VP,
				Seq:     jr.Seq,
				SentAt:  time.Duration(jr.SentMs) * time.Millisecond,
				RTTms:   jr.RTTms,
				Site:    jr.Site,
				OK:      jr.OK,
			}
			if jr.Resolver != "" {
				addr, err := netip.ParseAddr(jr.Resolver)
				if err != nil {
					return nil, fmt.Errorf("measure: jsonl line %d resolver: %w", lineNo, err)
				}
				rec.Resolver = addr
			}
			if jr.Continent != "" {
				cont, err := geo.ParseContinent(jr.Continent)
				if err != nil {
					return nil, fmt.Errorf("measure: jsonl line %d: %w", lineNo, err)
				}
				rec.Continent = cont
			}
			if ds.ComboID == "" {
				ds.ComboID = jr.Combo
			}
			if rec.SentAt > maxSent {
				maxSent = rec.SentAt
			}
			if rec.Site != "" {
				sites[rec.Site] = true
			}
			ds.Records = append(ds.Records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if lineNo == 0 {
		return nil, fmt.Errorf("measure: empty jsonl input")
	}
	if !sawMeta {
		for s := range sites {
			ds.Sites = append(ds.Sites, s)
		}
		sort.Strings(ds.Sites)
		ds.Duration = maxSent.Truncate(time.Minute) + time.Minute
		probes := map[int]bool{}
		for _, rec := range ds.Records {
			probes[rec.ProbeID] = true
		}
		ds.ActiveProbes = len(probes)
	}
	return ds, nil
}

// Summary prints the Table-1-style row for this run.
func (d *Dataset) Summary() string {
	ok := 0
	for _, r := range d.Records {
		if r.OK {
			ok++
		}
	}
	return fmt.Sprintf("%s sites=%v probes=%d queries=%d answered=%d (%.1f%%)",
		d.ComboID, d.Sites, d.ActiveProbes, len(d.Records), ok,
		100*float64(ok)/float64(max(1, len(d.Records))))
}
