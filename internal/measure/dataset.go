package measure

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"time"

	"ritw/internal/geo"
)

// WriteCSV emits the client-side records in the spirit of the paper's
// published datasets: one row per probe query.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"combo", "probe", "resolver", "vp", "continent", "seq", "sent_ms", "rtt_ms", "site", "ok"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range d.Records {
		row := []string{
			d.ComboID,
			strconv.Itoa(r.ProbeID),
			r.Resolver.String(),
			r.VPKey,
			r.Continent.String(),
			strconv.Itoa(r.Seq),
			strconv.FormatInt(int64(r.SentAt/time.Millisecond), 10),
			strconv.FormatFloat(r.RTTms, 'f', 3, 64),
			r.Site,
			strconv.FormatBool(r.OK),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously exported with WriteCSV, enabling
// offline re-analysis of published run artifacts. Sites and the run
// duration are reconstructed from the records (duration is the last
// send time rounded up to a minute); the probing interval is not
// stored in the CSV and is left zero.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 || len(rows[0]) != 10 || rows[0][0] != "combo" {
		return nil, fmt.Errorf("measure: not a dataset CSV")
	}
	ds := &Dataset{SiteAddr: map[string]netip.Addr{}}
	sites := map[string]bool{}
	var maxSent time.Duration
	for i, row := range rows[1:] {
		if len(row) != 10 {
			return nil, fmt.Errorf("measure: row %d has %d fields", i+2, len(row))
		}
		if ds.ComboID == "" {
			ds.ComboID = row[0]
		}
		probe, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("measure: row %d probe: %w", i+2, err)
		}
		raddr, err := netip.ParseAddr(row[2])
		if err != nil {
			return nil, fmt.Errorf("measure: row %d resolver: %w", i+2, err)
		}
		cont, err := geo.ParseContinent(row[4])
		if err != nil {
			return nil, fmt.Errorf("measure: row %d: %w", i+2, err)
		}
		seq, err := strconv.Atoi(row[5])
		if err != nil {
			return nil, fmt.Errorf("measure: row %d seq: %w", i+2, err)
		}
		sentMs, err := strconv.ParseInt(row[6], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("measure: row %d sent: %w", i+2, err)
		}
		rtt, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			return nil, fmt.Errorf("measure: row %d rtt: %w", i+2, err)
		}
		ok, err := strconv.ParseBool(row[9])
		if err != nil {
			return nil, fmt.Errorf("measure: row %d ok: %w", i+2, err)
		}
		rec := QueryRecord{
			ProbeID:   probe,
			Resolver:  raddr,
			VPKey:     row[3],
			Continent: cont,
			Seq:       seq,
			SentAt:    time.Duration(sentMs) * time.Millisecond,
			RTTms:     rtt,
			Site:      row[8],
			OK:        ok,
		}
		if rec.SentAt > maxSent {
			maxSent = rec.SentAt
		}
		if rec.Site != "" {
			sites[rec.Site] = true
		}
		ds.Records = append(ds.Records, rec)
	}
	for s := range sites {
		ds.Sites = append(ds.Sites, s)
	}
	sort.Strings(ds.Sites)
	ds.Duration = maxSent.Truncate(time.Minute) + time.Minute
	probes := map[int]bool{}
	for _, rec := range ds.Records {
		probes[rec.ProbeID] = true
	}
	ds.ActiveProbes = len(probes)
	return ds, nil
}

// jsonRecord is the JSONL representation of a QueryRecord.
type jsonRecord struct {
	Combo     string  `json:"combo"`
	Probe     int     `json:"probe"`
	Resolver  string  `json:"resolver"`
	VP        string  `json:"vp"`
	Continent string  `json:"continent"`
	Seq       int     `json:"seq"`
	SentMs    int64   `json:"sent_ms"`
	RTTms     float64 `json:"rtt_ms"`
	Site      string  `json:"site"`
	OK        bool    `json:"ok"`
}

// WriteJSONL emits one JSON object per line, the other format the
// measurement community expects.
func (d *Dataset) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range d.Records {
		jr := jsonRecord{
			Combo:     d.ComboID,
			Probe:     r.ProbeID,
			Resolver:  r.Resolver.String(),
			VP:        r.VPKey,
			Continent: r.Continent.String(),
			Seq:       r.Seq,
			SentMs:    int64(r.SentAt / time.Millisecond),
			RTTms:     r.RTTms,
			Site:      r.Site,
			OK:        r.OK,
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Summary prints the Table-1-style row for this run.
func (d *Dataset) Summary() string {
	ok := 0
	for _, r := range d.Records {
		if r.OK {
			ok++
		}
	}
	return fmt.Sprintf("%s sites=%v probes=%d queries=%d answered=%d (%.1f%%)",
		d.ComboID, d.Sites, d.ActiveProbes, len(d.Records), ok,
		100*float64(ok)/float64(max(1, len(d.Records))))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
