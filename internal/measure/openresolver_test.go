package measure

import (
	"testing"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/geo"
	"ritw/internal/resolver"
)

func TestRunOpenResolvers(t *testing.T) {
	t.Parallel()
	combo, err := CombinationByID("2C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOpenResolverConfig(combo, 41)
	cfg.NumResolvers = 300
	ds, err := RunOpenResolvers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.ComboID != "2C-open" || ds.ActiveProbes != 300 {
		t.Fatalf("dataset = %s probes=%d", ds.ComboID, ds.ActiveProbes)
	}
	// 30 rounds x 300 resolvers.
	if len(ds.Records) < 8500 || len(ds.Records) > 9100 {
		t.Errorf("records = %d, want ≈9000", len(ds.Records))
	}
	ok := 0
	vps := map[string]bool{}
	euToFRA, euTotal := 0, 0
	for _, r := range ds.Records {
		vps[r.VPKey] = true
		if !r.OK {
			continue
		}
		ok++
		if r.Continent == geo.Europe {
			euTotal++
			if r.Site == "FRA" {
				euToFRA++
			}
		}
	}
	if frac := float64(ok) / float64(len(ds.Records)); frac < 0.97 {
		t.Errorf("answer rate = %.3f", frac)
	}
	if len(vps) != 300 {
		t.Errorf("VPs = %d, want one per open resolver", len(vps))
	}
	// The selection behaviour observed through open resolvers matches
	// the probe-based measurement: EU resolvers favour FRA.
	if euTotal == 0 || float64(euToFRA)/float64(euTotal) < 0.55 {
		t.Errorf("EU->FRA share = %d/%d, want majority", euToFRA, euTotal)
	}
}

func TestRunOpenResolversStickyMix(t *testing.T) {
	t.Parallel()
	combo, _ := CombinationByID("2B")
	cfg := DefaultOpenResolverConfig(combo, 43)
	cfg.NumResolvers = 80
	cfg.Duration = 20 * time.Minute
	cfg.Mix = []atlas.PolicyShare{{Kind: resolver.KindSticky, Share: 1}}
	ds, err := RunOpenResolvers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every sticky open resolver uses exactly one site.
	perVP := map[string]map[string]bool{}
	for _, r := range ds.Records {
		if !r.OK {
			continue
		}
		if perVP[r.VPKey] == nil {
			perVP[r.VPKey] = map[string]bool{}
		}
		perVP[r.VPKey][r.Site] = true
	}
	for vp, sites := range perVP {
		if len(sites) != 1 {
			t.Fatalf("sticky open resolver %s used %d sites", vp, len(sites))
		}
	}
}

func TestRunOpenResolversValidation(t *testing.T) {
	if _, err := RunOpenResolvers(OpenResolverConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	combo, _ := CombinationByID("2B")
	cfg := DefaultOpenResolverConfig(combo, 1)
	cfg.ScannerSite = "NOPE"
	if _, err := RunOpenResolvers(cfg); err == nil {
		t.Error("unknown scanner site should fail")
	}
	cfg = DefaultOpenResolverConfig(combo, 1)
	cfg.Mix = []atlas.PolicyShare{{Kind: resolver.KindUniform, Share: 0}}
	if _, err := RunOpenResolvers(cfg); err == nil {
		t.Error("zero-share mixture should fail")
	}
	cfg = DefaultOpenResolverConfig(combo, 1)
	cfg.Interval = 0
	if _, err := RunOpenResolvers(cfg); err == nil {
		t.Error("zero interval should fail")
	}
}
