package measure

import (
	"testing"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/geo"
	"ritw/internal/resolver"
)

func TestRunOpenResolvers(t *testing.T) {
	t.Parallel()
	combo, err := CombinationByID("2C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultOpenResolverConfig(combo, 41)
	cfg.NumResolvers = 300
	ds, err := RunOpenResolvers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.ComboID != "2C-open" || ds.ActiveProbes != 300 {
		t.Fatalf("dataset = %s probes=%d", ds.ComboID, ds.ActiveProbes)
	}
	// 30 rounds x 300 resolvers.
	if len(ds.Records) < 8500 || len(ds.Records) > 9100 {
		t.Errorf("records = %d, want ≈9000", len(ds.Records))
	}
	ok := 0
	vps := map[string]bool{}
	euToFRA, euTotal := 0, 0
	for _, r := range ds.Records {
		vps[r.VPKey] = true
		if !r.OK {
			continue
		}
		ok++
		if r.Continent == geo.Europe {
			euTotal++
			if r.Site == "FRA" {
				euToFRA++
			}
		}
	}
	if frac := float64(ok) / float64(len(ds.Records)); frac < 0.97 {
		t.Errorf("answer rate = %.3f", frac)
	}
	if len(vps) != 300 {
		t.Errorf("VPs = %d, want one per open resolver", len(vps))
	}
	// The selection behaviour observed through open resolvers matches
	// the probe-based measurement: EU resolvers favour FRA.
	if euTotal == 0 || float64(euToFRA)/float64(euTotal) < 0.55 {
		t.Errorf("EU->FRA share = %d/%d, want majority", euToFRA, euTotal)
	}
}

func TestRunOpenResolversStickyMix(t *testing.T) {
	t.Parallel()
	combo, _ := CombinationByID("2B")
	cfg := DefaultOpenResolverConfig(combo, 43)
	cfg.NumResolvers = 80
	cfg.Duration = 20 * time.Minute
	cfg.Mix = []atlas.PolicyShare{{Kind: resolver.KindSticky, Share: 1}}
	ds, err := RunOpenResolvers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every sticky open resolver uses exactly one site.
	perVP := map[string]map[string]bool{}
	for _, r := range ds.Records {
		if !r.OK {
			continue
		}
		if perVP[r.VPKey] == nil {
			perVP[r.VPKey] = map[string]bool{}
		}
		perVP[r.VPKey][r.Site] = true
	}
	for vp, sites := range perVP {
		if len(sites) != 1 {
			t.Fatalf("sticky open resolver %s used %d sites", vp, len(sites))
		}
	}
}

// assignments runs the open-resolver build with an OnAssign observer
// and returns the drawn policy kind per resolver index, plus the
// dataset for callers that want both.
func assignments(t *testing.T, cfg OpenResolverConfig) []resolver.PolicyKind {
	t.Helper()
	kinds := make([]resolver.PolicyKind, 0, cfg.NumResolvers)
	cfg.OnAssign = func(i int, m atlas.PolicyShare) {
		if i != len(kinds) {
			t.Fatalf("OnAssign resolver %d out of order (want %d)", i, len(kinds))
		}
		kinds = append(kinds, m.Kind)
	}
	if _, err := RunOpenResolvers(cfg); err != nil {
		t.Fatal(err)
	}
	return kinds
}

func TestOpenResolverAssignDeterminism(t *testing.T) {
	t.Parallel()
	combo, _ := CombinationByID("2B")
	base := DefaultOpenResolverConfig(combo, 47)
	base.NumResolvers = 300
	base.Duration = 2 * time.Minute // one round: the test is about the build, not the scan
	base.Mix = []atlas.PolicyShare{
		{Kind: resolver.KindUniform, Share: 0.5},
		{Kind: resolver.KindSticky, Share: 0.3},
		{Kind: resolver.KindWeightedRTT, Share: 0.2},
	}
	a := assignments(t, base)
	b := assignments(t, base)
	if len(a) != base.NumResolvers {
		t.Fatalf("observed %d assignments, want %d", len(a), base.NumResolvers)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("resolver %d: policy %v then %v under the same seed", i, a[i], b[i])
		}
	}
	// The observer is non-invasive: the dataset with and without
	// OnAssign must be identical record for record.
	plain := base
	plain.OnAssign = nil
	dsPlain, err := RunOpenResolvers(plain)
	if err != nil {
		t.Fatal(err)
	}
	withHook := base
	withHook.OnAssign = func(int, atlas.PolicyShare) {}
	dsHook, err := RunOpenResolvers(withHook)
	if err != nil {
		t.Fatal(err)
	}
	if len(dsPlain.Records) != len(dsHook.Records) {
		t.Fatalf("OnAssign changed record count: %d vs %d", len(dsPlain.Records), len(dsHook.Records))
	}
	for i := range dsPlain.Records {
		if dsPlain.Records[i] != dsHook.Records[i] {
			t.Fatalf("OnAssign perturbed record %d:\n  %+v\n  %+v", i, dsPlain.Records[i], dsHook.Records[i])
		}
	}
	// A different seed draws a different assignment sequence.
	other := base
	other.Seed = 48
	c := assignments(t, other)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("seed 47 and 48 drew identical policy sequences")
	}
}

func TestOpenResolverMixShares(t *testing.T) {
	t.Parallel()
	combo, _ := CombinationByID("2B")
	cfg := DefaultOpenResolverConfig(combo, 51)
	cfg.NumResolvers = 2000
	cfg.Duration = 2 * time.Minute
	cfg.Mix = []atlas.PolicyShare{
		{Kind: resolver.KindUniform, Share: 0.6},
		{Kind: resolver.KindSticky, Share: 0.4},
	}
	kinds := assignments(t, cfg)
	counts := map[resolver.PolicyKind]int{}
	for _, k := range kinds {
		counts[k]++
	}
	if len(counts) != 2 {
		t.Fatalf("drew %d distinct policies, want 2: %v", len(counts), counts)
	}
	for _, m := range cfg.Mix {
		got := float64(counts[m.Kind]) / float64(len(kinds))
		if got < m.Share-0.05 || got > m.Share+0.05 {
			t.Errorf("policy %v share = %.3f, want %.2f ± 0.05", m.Kind, got, m.Share)
		}
	}
	// Shares are honoured relative to the mix total, not only when the
	// shares sum to 1 — 6:4 expressed as 3:2 draws the same way.
	scaled := cfg
	scaled.Mix = []atlas.PolicyShare{
		{Kind: resolver.KindUniform, Share: 3},
		{Kind: resolver.KindSticky, Share: 2},
	}
	kinds2 := assignments(t, scaled)
	for i := range kinds {
		if kinds[i] != kinds2[i] {
			t.Fatalf("resolver %d: scaled mix drew %v, unit mix drew %v", i, kinds2[i], kinds[i])
		}
	}
}

func TestRunOpenResolversValidation(t *testing.T) {
	if _, err := RunOpenResolvers(OpenResolverConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	combo, _ := CombinationByID("2B")
	cfg := DefaultOpenResolverConfig(combo, 1)
	cfg.ScannerSite = "NOPE"
	if _, err := RunOpenResolvers(cfg); err == nil {
		t.Error("unknown scanner site should fail")
	}
	cfg = DefaultOpenResolverConfig(combo, 1)
	cfg.Mix = []atlas.PolicyShare{{Kind: resolver.KindUniform, Share: 0}}
	if _, err := RunOpenResolvers(cfg); err == nil {
		t.Error("zero-share mixture should fail")
	}
	cfg = DefaultOpenResolverConfig(combo, 1)
	cfg.Interval = 0
	if _, err := RunOpenResolvers(cfg); err == nil {
		t.Error("zero interval should fail")
	}
}
