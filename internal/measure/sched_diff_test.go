package measure

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ritw/internal/faults"
	"ritw/internal/netsim"
)

// fiveKindSchedule exercises every fault family against combination 3B
// (DUB/FRA/IAD); shared by the scheduler and shard differential tests.
func fiveKindSchedule() *faults.Schedule {
	return &faults.Schedule{
		Outages: []faults.Outage{{Site: "DUB", Start: 4 * time.Minute, End: 8 * time.Minute}},
		Flaps: []faults.Flap{{Site: "FRA", Start: 10 * time.Minute, End: 14 * time.Minute,
			Period: time.Minute, DownFrac: 0.5}},
		Bursts: []faults.LossBurst{{Site: "IAD", Start: 2 * time.Minute, End: 16 * time.Minute,
			Rate: 0.3, Fraction: 0.5}},
		Slowdowns: []faults.Slowdown{{Site: "FRA", Start: 1 * time.Minute, End: 9 * time.Minute,
			AddRTT: 80 * time.Millisecond, Fraction: 0.4}},
		Partitions: []faults.Partition{{Site: "IAD", Start: 6 * time.Minute, End: 12 * time.Minute,
			Fraction: 0.3}},
	}
}

// TestWheelMatchesHeapDataset is the scheduler counterpart of
// TestShardedMatchesSequential: at the same seed, a run on the timing
// wheel must emit the byte-for-byte identical record stream — and
// deep-equal materialized datasets and fault reports — as the
// reference heap, at every shard count. Together the two tests pin the
// full knob matrix: {scheduler} × {shards} never changes the science,
// only the wall clock. The fault schedule exercises all five fault
// families so the timer-heavy paths (retransmits, hold-downs, flap
// edges, burst windows) all cross the wheel's cascade boundaries.
func TestWheelMatchesHeapDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many full simulations")
	}
	t.Parallel()
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			heapCfg := shardCfg(t, "3B", 120, seed)
			heapCfg.Faults = fiveKindSchedule()
			heapCfg.Scheduler = netsim.SchedHeap
			wantCSV, wantDS := runToCSV(t, heapCfg)
			if len(wantDS.Records) == 0 {
				t.Fatal("heap run produced no records")
			}
			if wantDS.Faults == nil || wantDS.Faults.Drops == 0 {
				t.Fatal("fault schedule had no effect; the variant tests nothing")
			}
			for _, shards := range []int{1, 4, 8} {
				gotCfg := heapCfg
				gotCfg.Scheduler = netsim.SchedWheel
				gotCfg.Shards = shards
				gotCSV, gotDS := runToCSV(t, gotCfg)
				if !bytes.Equal(gotCSV, wantCSV) {
					t.Fatalf("wheel shards=%d: CSV stream differs from heap\n%s",
						shards, firstDiff(gotCSV, wantCSV))
				}
				if !reflect.DeepEqual(gotDS.Records, wantDS.Records) {
					t.Fatalf("wheel shards=%d: query records differ from heap", shards)
				}
				if !reflect.DeepEqual(gotDS.AuthRecords, wantDS.AuthRecords) {
					t.Fatalf("wheel shards=%d: auth records differ from heap", shards)
				}
				if !reflect.DeepEqual(gotDS.Faults, wantDS.Faults) {
					t.Fatalf("wheel shards=%d: fault report differs from heap:\n%+v\nwant\n%+v",
						shards, gotDS.Faults, wantDS.Faults)
				}
				if gotDS.ActiveProbes != wantDS.ActiveProbes {
					t.Fatalf("wheel shards=%d: active probes %d vs %d",
						shards, gotDS.ActiveProbes, wantDS.ActiveProbes)
				}
			}
		})
	}
}
