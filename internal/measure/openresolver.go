package measure

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/dnswire"
	"ritw/internal/geo"
	"ritw/internal/netsim"
	"ritw/internal/obs"
	"ritw/internal/resolver"
	"ritw/internal/simbind"
)

// OpenResolverConfig parameterizes the open-resolver variant of the
// measurement — the paper's stated future work ("using open recursive
// resolvers in our study for additional measurements"). Instead of
// RIPE-Atlas probes asking their locally-configured recursives, a
// single scanner host queries a worldwide set of open resolvers
// directly; each open resolver is its own vantage point.
type OpenResolverConfig struct {
	// Combo is the authoritative deployment under test.
	Combo Combination
	// NumResolvers is the size of the open-resolver population.
	NumResolvers int
	// ScannerSite is where the measurement machine sits (e.g. "AMS").
	ScannerSite string
	// Interval and Duration follow the active measurement design.
	Interval, Duration time.Duration
	// Seed drives all randomness.
	Seed int64
	// Mix is the resolver-behaviour market share (atlas.DefaultMix if
	// nil). Open resolvers skew toward misconfigured CPE, so callers
	// may want a stickier mixture.
	Mix []atlas.PolicyShare
	// ClientTimeout is the scanner's per-query give-up time.
	ClientTimeout time.Duration
	// Metrics aggregates obs counters like RunConfig.Metrics.
	Metrics *obs.Registry
	// Sink and StreamOnly mirror RunConfig: records stream into Sink
	// as they complete, and StreamOnly keeps them out of the returned
	// Dataset.
	Sink       Sink
	StreamOnly bool
	// Scheduler selects the simulator's event scheduler, as in
	// RunConfig: a wall-clock knob only, never a science knob.
	Scheduler netsim.SchedulerKind
	// OnAssign, if set, observes each open resolver's drawn policy at
	// population-build time (before the simulation starts). Purely
	// observational — it must not (and cannot) perturb the build's RNG
	// draw order — so assignments can be audited without changing the
	// dataset; the mix-accounting tests hang off it.
	OnAssign func(resolver int, policy atlas.PolicyShare)
}

// DefaultOpenResolverConfig returns a paper-compatible scan setup.
func DefaultOpenResolverConfig(combo Combination, seed int64) OpenResolverConfig {
	return OpenResolverConfig{
		Combo:         combo,
		NumResolvers:  2000,
		ScannerSite:   "AMS",
		Interval:      2 * time.Minute,
		Duration:      time.Hour,
		Seed:          seed,
		ClientTimeout: 4 * time.Second,
	}
}

// RunOpenResolvers executes the open-resolver measurement and returns
// a Dataset whose VPs are the open resolvers themselves. It is the
// context-free wrapper around RunOpenResolversContext.
func RunOpenResolvers(cfg OpenResolverConfig) (*Dataset, error) {
	return RunOpenResolversContext(context.Background(), cfg)
}

// RunOpenResolversContext is RunOpenResolvers with cooperative
// cancellation: a cancelled ctx abandons the run promptly with
// ctx.Err().
func RunOpenResolversContext(ctx context.Context, cfg OpenResolverConfig) (*Dataset, error) {
	if len(cfg.Combo.Sites) == 0 || cfg.NumResolvers <= 0 {
		return nil, fmt.Errorf("measure: incomplete open-resolver config")
	}
	if cfg.Interval <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("measure: interval and duration must be positive")
	}
	if cfg.ClientTimeout <= 0 {
		cfg.ClientTimeout = 4 * time.Second
	}
	scannerSite, err := geo.SiteByCode(cfg.ScannerSite)
	if err != nil {
		return nil, err
	}
	mix := cfg.Mix
	if mix == nil {
		mix = atlas.DefaultMix()
	}
	var mixTotal float64
	for _, m := range mix {
		mixTotal += m.Share
	}
	if mixTotal <= 0 {
		return nil, fmt.Errorf("measure: empty mixture")
	}

	sim := netsim.NewSimulatorKind(cfg.Scheduler)
	net := netsim.NewNetwork(sim, geo.DefaultPathModel(), cfg.Seed+1)
	ds := &Dataset{
		ComboID:  cfg.Combo.ID + "-open",
		Sites:    append([]string(nil), cfg.Combo.Sites...),
		Interval: cfg.Interval,
		Duration: cfg.Duration,
		SiteAddr: make(map[string]netip.Addr),
	}
	sink := streamTarget(ds, RunConfig{Sink: cfg.Sink, StreamOnly: cfg.StreamOnly})
	emit, emitAuth := instrumentedEmit(sink, cfg.Metrics)
	authAddrs, _, err := buildAuthSites(sim, net, cfg.Combo, ds.SiteAddr, emitAuth, cfg.Metrics)
	if err != nil {
		sink.Close()
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	regions, weights := geo.ProbeRegions()
	var weightTotal float64
	for _, w := range weights {
		weightTotal += w
	}
	pickRegion := func() geo.Site {
		x := rng.Float64() * weightTotal
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return regions[i]
			}
		}
		return regions[len(regions)-1]
	}
	pickMix := func() atlas.PolicyShare {
		x := rng.Float64() * mixTotal
		for _, m := range mix {
			x -= m.Share
			if x <= 0 {
				return m
			}
		}
		return mix[len(mix)-1]
	}

	scanner := net.AddHost(scannerSite.Coord)
	zones := []resolver.ZoneServers{{Zone: TestDomain, Servers: authAddrs}}
	clock := simbind.SimClock{Sim: sim}

	type target struct {
		addr      netip.Addr
		continent geo.Continent
	}
	targets := make([]target, 0, cfg.NumResolvers)
	for i := 0; i < cfg.NumResolvers; i++ {
		region := pickRegion()
		m := pickMix()
		if cfg.OnAssign != nil {
			cfg.OnAssign(i, m)
		}
		host := net.AddHost(region.Coord)
		host.LastMileMs = geo.LastMileMs(rng) / 2 // open resolvers sit closer to the core
		eng := resolver.NewEngine(resolver.Config{
			Policy:    resolver.NewPolicy(m.Kind),
			Infra:     resolver.NewInfraCache(m.InfraTTL, m.Retention),
			Cache:     resolver.NewRecordCache(),
			Zones:     zones,
			Transport: simbind.HostTransport{Host: host},
			Clock:     clock,
			RNG:       rand.New(rand.NewSource(cfg.Seed + 3000 + int64(i))),
		})
		simbind.BindResolver(host, eng)
		targets = append(targets, target{host.Addr, region.Continent})
	}

	// The scanner multiplexes all open resolvers on one socket; match
	// responses by DNS ID.
	type pendingKey uint16
	pending := make(map[pendingKey]*QueryRecord)
	scanner.Handle(func(_, _ netip.Addr, payload []byte) {
		msg, err := dnswire.Unpack(payload)
		if err != nil || !msg.Response {
			return
		}
		rec, ok := pending[pendingKey(msg.ID)]
		if !ok {
			return
		}
		delete(pending, pendingKey(msg.ID))
		rec.RTTms = float64(sim.Now()-rec.SentAt) / float64(time.Millisecond)
		rec.OK = msg.RCode == dnswire.RCodeNoError && len(msg.Answers) > 0
		if rec.OK {
			if txt, ok := msg.Answers[0].Data.(dnswire.TXT); ok {
				rec.Site = trimSitePrefix(txt.Joined())
			}
		}
		emit(*rec)
	})

	nextID := uint16(0)
	rounds := int(cfg.Duration / cfg.Interval)
	for round := 0; round < rounds; round++ {
		for ti, tgt := range targets {
			tgt := tgt
			ti := ti
			round := round
			// Spread the scan across the interval like a real prober.
			offset := time.Duration(round)*cfg.Interval +
				time.Duration(float64(ti)/float64(len(targets))*float64(cfg.Interval))
			sim.Schedule(offset, func() {
				label := fmt.Sprintf("open%dr%d", ti, round)
				qname, err := TestDomain.Child(label)
				if err != nil {
					return
				}
				nextID++
				for {
					if _, busy := pending[pendingKey(nextID)]; !busy {
						break
					}
					nextID++
				}
				id := nextID
				q := dnswire.NewQuery(id, qname, dnswire.TypeTXT)
				wire, err := q.Pack()
				if err != nil {
					return
				}
				rec := &QueryRecord{
					ProbeID:   ti,
					Resolver:  tgt.addr,
					VPKey:     tgt.addr.String(),
					Continent: tgt.continent,
					Seq:       round,
					SentAt:    sim.Now(),
				}
				pending[pendingKey(id)] = rec
				scanner.Send(tgt.addr, wire)
				sim.Schedule(cfg.ClientTimeout, func() {
					if r, still := pending[pendingKey(id)]; still && r == rec {
						delete(pending, pendingKey(id))
						rec.RTTms = float64(cfg.ClientTimeout) / float64(time.Millisecond)
						emit(*rec)
					}
				})
			})
		}
	}
	ds.ActiveProbes = len(targets)
	if err := sim.RunUntilContext(ctx, cfg.Duration+cfg.ClientTimeout+time.Second); err != nil {
		sink.Close()
		return nil, err
	}
	return ds, finishSink(sink, ds.meta())
}

// trimSitePrefix strips the "site=" marker from an identity TXT.
func trimSitePrefix(s string) string {
	const p = "site="
	if len(s) >= len(p) && s[:len(p)] == p {
		return s[len(p):]
	}
	return s
}
