package measure

import (
	"testing"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/geo"
)

// outageRun executes 2B with FRA down for the middle 20 minutes.
func outageRun(t *testing.T) *Dataset {
	t.Helper()
	combo, err := CombinationByID("2B")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunConfig(combo, 31)
	pc := atlas.DefaultConfig(31)
	pc.NumProbes = 400
	cfg.Population = pc
	cfg.Outage = &Outage{Site: "FRA", Start: 20 * time.Minute, End: 40 * time.Minute}
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestOutageFailover(t *testing.T) {
	t.Parallel()
	ds := outageRun(t)
	var during, before struct{ fra, dub, failed, total int }
	for _, r := range ds.Records {
		w := &before
		if r.SentAt >= 20*time.Minute && r.SentAt < 40*time.Minute {
			w = &during
		} else if r.SentAt >= 40*time.Minute {
			continue
		}
		w.total++
		switch {
		case !r.OK:
			w.failed++
		case r.Site == "FRA":
			w.fra++
		case r.Site == "DUB":
			w.dub++
		}
	}
	if during.fra != 0 {
		t.Errorf("FRA answered %d queries while down", during.fra)
	}
	if before.fra == 0 {
		t.Error("FRA should serve traffic before the outage")
	}
	// Resolvers fail over: most queries during the outage are still
	// answered, by the surviving site.
	if during.total == 0 || during.dub == 0 {
		t.Fatalf("no surviving traffic during outage: %+v", during)
	}
	failRate := float64(during.failed) / float64(during.total)
	if failRate > 0.25 {
		t.Errorf("fail rate during outage = %.2f; retry failover should absorb most", failRate)
	}
	baseFail := float64(before.failed) / float64(max(1, before.total))
	if failRate < baseFail {
		t.Errorf("outage should not reduce failures: during=%.3f before=%.3f", failRate, baseFail)
	}
}

func TestOutageRecovery(t *testing.T) {
	t.Parallel()
	ds := outageRun(t)
	var after struct{ fra, total int }
	for _, r := range ds.Records {
		// Give resolvers a grace period to rediscover FRA after the
		// timeout-inflated SRTT decays.
		if r.SentAt < 45*time.Minute || !r.OK {
			continue
		}
		after.total++
		if r.Site == "FRA" {
			after.fra++
		}
	}
	if after.total == 0 {
		t.Fatal("no post-outage traffic")
	}
	if after.fra == 0 {
		t.Error("FRA should win traffic back after recovering")
	}
}

func TestOutageValidation(t *testing.T) {
	combo, _ := CombinationByID("2B")
	cfg := DefaultRunConfig(combo, 1)
	pc := atlas.DefaultConfig(1)
	pc.NumProbes = 20
	cfg.Population = pc
	cfg.Outage = &Outage{Site: "SYD", Start: 0, End: time.Minute}
	if _, err := Run(cfg); err == nil {
		t.Error("outage for a site not in the combination should fail")
	}
	cfg.Outage = &Outage{Site: "FRA", Start: time.Minute, End: time.Minute}
	if _, err := Run(cfg); err == nil {
		t.Error("empty outage window should fail")
	}
}

func TestPathModelOverride(t *testing.T) {
	t.Parallel()
	combo, _ := CombinationByID("2B")
	model := geo.DefaultPathModel()
	model.JitterSlope = 0
	model.JitterBaseMs = 0
	cfg := DefaultRunConfig(combo, 6)
	pc := atlas.DefaultConfig(6)
	pc.NumProbes = 60
	cfg.Population = pc
	cfg.PathModel = &model
	cfg.LossRate = 0
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without jitter, repeated RTTs from one VP to one site are
	// essentially constant.
	perVP := map[string]map[string][]float64{}
	for _, r := range ds.Records {
		if !r.OK {
			continue
		}
		if perVP[r.VPKey] == nil {
			perVP[r.VPKey] = map[string][]float64{}
		}
		perVP[r.VPKey][r.Site] = append(perVP[r.VPKey][r.Site], r.RTTms)
	}
	checked := 0
	for _, bySite := range perVP {
		for _, rtts := range bySite {
			if len(rtts) < 3 {
				continue
			}
			checked++
			min, maxv := rtts[0], rtts[0]
			for _, v := range rtts {
				if v < min {
					min = v
				}
				if v > maxv {
					maxv = v
				}
			}
			if maxv-min > 1.0 {
				t.Fatalf("jitter-free RTTs vary by %.2f ms: %v", maxv-min, rtts)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no VP series to check")
	}
}
