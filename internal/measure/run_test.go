package measure

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

// smallRun executes a scaled-down 2B measurement for tests.
func smallRun(t *testing.T, comboID string, probes int, seed int64) *Dataset {
	t.Helper()
	combo, err := CombinationByID(comboID)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunConfig(combo, seed)
	pc := atlas.DefaultConfig(seed)
	pc.NumProbes = probes
	cfg.Population = pc
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTable1Combinations(t *testing.T) {
	t.Parallel()
	combos := Table1()
	if len(combos) != 7 {
		t.Fatalf("combinations = %d, want 7", len(combos))
	}
	want := map[string]int{"2A": 2, "2B": 2, "2C": 2, "3A": 3, "3B": 3, "4A": 4, "4B": 4}
	for _, c := range combos {
		if want[c.ID] != len(c.Sites) {
			t.Errorf("%s has %d sites, want %d", c.ID, len(c.Sites), want[c.ID])
		}
	}
	c, err := CombinationByID("2C")
	if err != nil || c.Sites[0] != "FRA" || c.Sites[1] != "SYD" {
		t.Errorf("2C = %+v, %v", c, err)
	}
	if _, err := CombinationByID("9Z"); err == nil {
		t.Error("unknown combination should fail")
	}
}

func TestZoneTextParsesAndIdentifiesSite(t *testing.T) {
	combo, _ := CombinationByID("4B")
	for _, site := range combo.Sites {
		z, err := zone.ParseString(ZoneText(combo, site), dnswire.Root)
		if err != nil {
			t.Fatalf("site %s zone: %v", site, err)
		}
		res := z.Lookup(dnswire.MustParseName("px1.ourtestdomain.nl"), dnswire.TypeTXT)
		if res.Kind != zone.Success {
			t.Fatalf("wildcard lookup failed for %s", site)
		}
		txt := res.Records[0].Data.(dnswire.TXT).Joined()
		if txt != "site="+site {
			t.Errorf("site %s TXT = %q", site, txt)
		}
		if res.Records[0].TTL != 5 {
			t.Errorf("TTL = %d, want 5", res.Records[0].TTL)
		}
		// 4 NS records as configured.
		nsRes := z.Lookup(TestDomain, dnswire.TypeNS)
		if len(nsRes.Records) != 4 {
			t.Errorf("NS count = %d", len(nsRes.Records))
		}
	}
}

func TestRunProducesAnswers(t *testing.T) {
	t.Parallel()
	ds := smallRun(t, "2B", 400, 1)
	if ds.ActiveProbes < 300 || ds.ActiveProbes > 400 {
		t.Errorf("active probes = %d (churn should remove ~10%%)", ds.ActiveProbes)
	}
	if len(ds.Records) < ds.ActiveProbes*20 {
		t.Errorf("records = %d, want ≈ 30/probe", len(ds.Records))
	}
	ok, sites := 0, map[string]int{}
	for _, r := range ds.Records {
		if r.OK {
			ok++
			sites[r.Site]++
		}
	}
	if frac := float64(ok) / float64(len(ds.Records)); frac < 0.97 {
		t.Errorf("answer rate = %.3f, want near 1", frac)
	}
	if sites["DUB"] == 0 || sites["FRA"] == 0 {
		t.Errorf("both sites should serve traffic: %v", sites)
	}
	for s := range sites {
		if s != "DUB" && s != "FRA" {
			t.Errorf("unexpected site %q", s)
		}
	}
}

func TestRunQueriesPerProbeCadence(t *testing.T) {
	t.Parallel()
	ds := smallRun(t, "2B", 200, 2)
	perProbe := map[int]int{}
	for _, r := range ds.Records {
		perProbe[r.ProbeID]++
	}
	// 1 hour at 2-minute cadence = 30 queries (29-31 with phase).
	for id, n := range perProbe {
		if n < 28 || n > 31 {
			t.Errorf("probe %d sent %d queries, want ≈30", id, n)
		}
	}
}

func TestRunRTTStructure(t *testing.T) {
	t.Parallel()
	// In 2C, European VPs must see FRA much faster than SYD.
	ds := smallRun(t, "2C", 500, 3)
	var fraRTT, sydRTT []float64
	for _, r := range ds.Records {
		if !r.OK || r.Continent.String() != "EU" {
			continue
		}
		switch r.Site {
		case "FRA":
			fraRTT = append(fraRTT, r.RTTms)
		case "SYD":
			sydRTT = append(sydRTT, r.RTTms)
		}
	}
	if len(fraRTT) == 0 || len(sydRTT) == 0 {
		t.Fatalf("missing site data: fra=%d syd=%d", len(fraRTT), len(sydRTT))
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(fraRTT)*2 > mean(sydRTT) {
		t.Errorf("EU RTT to FRA (%.0f) should be far below SYD (%.0f)",
			mean(fraRTT), mean(sydRTT))
	}
	// And Europeans should favour FRA overall.
	if len(fraRTT) < len(sydRTT) {
		t.Errorf("EU query counts: FRA=%d SYD=%d, expected FRA preference",
			len(fraRTT), len(sydRTT))
	}
}

func TestRunDeterminism(t *testing.T) {
	t.Parallel()
	a := smallRun(t, "2A", 150, 7)
	b := smallRun(t, "2A", 150, 7)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestRunAuthSideCapture(t *testing.T) {
	t.Parallel()
	ds := smallRun(t, "2B", 200, 4)
	if len(ds.AuthRecords) == 0 {
		t.Fatal("no authoritative-side records")
	}
	// Every client-observed answer corresponds to server-side traffic;
	// totals need not match exactly (retries), but should be close.
	okClient := 0
	for _, r := range ds.Records {
		if r.OK {
			okClient++
		}
	}
	if len(ds.AuthRecords) < okClient {
		t.Errorf("auth records %d < client answers %d", len(ds.AuthRecords), okClient)
	}
	sites := map[string]bool{}
	for _, ar := range ds.AuthRecords {
		sites[ar.Site] = true
		if !strings.HasSuffix(ar.QName, "ourtestdomain.nl.") {
			t.Fatalf("unexpected qname %q", ar.QName)
		}
	}
	if !sites["DUB"] || !sites["FRA"] {
		t.Errorf("auth capture missing a site: %v", sites)
	}
}

func TestRunIPv6Subset(t *testing.T) {
	t.Parallel()
	combo, _ := CombinationByID("2B")
	cfg := DefaultRunConfig(combo, 5)
	pc := atlas.DefaultConfig(5)
	pc.NumProbes = 300
	cfg.Population = pc
	cfg.IPv6Subset = true
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := smallRun(t, "2B", 300, 5)
	if ds.ActiveProbes == 0 || ds.ActiveProbes >= full.ActiveProbes {
		t.Errorf("IPv6 subset probes = %d, full = %d", ds.ActiveProbes, full.ActiveProbes)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	combo, _ := CombinationByID("2A")
	if _, err := Run(RunConfig{Combo: combo}); err == nil {
		t.Error("zero interval should fail")
	}
	bad := Combination{ID: "XX", Sites: []string{"NOPE"}}
	cfg := DefaultRunConfig(bad, 1)
	pc := atlas.DefaultConfig(1)
	pc.NumProbes = 10
	cfg.Population = pc
	if _, err := Run(cfg); err == nil {
		t.Error("unknown site should fail")
	}
}

func TestDatasetWriters(t *testing.T) {
	ds := smallRun(t, "2B", 100, 6)
	var csvBuf, jsonBuf bytes.Buffer
	if err := ds.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != len(ds.Records)+1 {
		t.Errorf("csv lines = %d, want %d", len(lines), len(ds.Records)+1)
	}
	if !strings.HasPrefix(lines[0], "combo,probe,resolver") {
		t.Errorf("csv header = %q", lines[0])
	}
	if err := ds.WriteJSONL(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	jl := strings.Split(strings.TrimSpace(jsonBuf.String()), "\n")
	// One tagged summary line, one per query record, one per auth record.
	if want := 1 + len(ds.Records) + len(ds.AuthRecords); len(jl) != want {
		t.Errorf("jsonl lines = %d, want %d", len(jl), want)
	}
	if !strings.Contains(jl[0], `"combo":"2B"`) || !strings.Contains(jl[0], `"dataset"`) {
		t.Errorf("jsonl summary line = %q", jl[0])
	}
	if !strings.Contains(jl[1], `"combo":"2B"`) || strings.Contains(jl[1], `"dataset"`) {
		t.Errorf("jsonl first record line = %q", jl[1])
	}
	if s := ds.Summary(); !strings.Contains(s, "2B") {
		t.Errorf("summary = %q", s)
	}
}

func TestRunIntervalSweepConfig(t *testing.T) {
	// Figure 6 uses longer intervals; the cadence must follow.
	combo, _ := CombinationByID("2C")
	cfg := DefaultRunConfig(combo, 8)
	pc := atlas.DefaultConfig(8)
	pc.NumProbes = 100
	cfg.Population = pc
	cfg.Interval = 10 * time.Minute
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perProbe := map[int]int{}
	for _, r := range ds.Records {
		perProbe[r.ProbeID]++
	}
	for id, n := range perProbe {
		if n < 5 || n > 7 {
			t.Errorf("probe %d sent %d queries at 10-minute cadence, want 6", id, n)
		}
	}
}
