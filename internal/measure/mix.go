package measure

import (
	"fmt"

	"ritw/internal/atlas"
	"ritw/internal/geo"
)

// PolicyAssignment computes the vantage-point → policy-label mapping a
// run under cfg uses: for every VPKey a churn-surviving probe can
// render, the PolicyKind string of the recursive behind it (for
// public-DNS VPs, the behaviour of the anycast catchment site actually
// serving the probe). It replays the run's plan stage — population
// synthesis, churn, address plan, keyed catchments, and the
// entity-keyed cfg.Mix re-draw — without simulating anything, so the
// mapping is exact for any layout and cheap enough to call per run.
// Per-policy analyses (analysis.MixBreakout) use it to split a mixed
// dataset's records by fleet segment.
func PolicyAssignment(cfg RunConfig) (map[string]string, error) {
	if len(cfg.Combo.Sites) == 0 {
		return nil, fmt.Errorf("measure: combination has no sites")
	}
	popCfg := cfg.Population
	if popCfg.NumProbes == 0 {
		popCfg = atlas.DefaultConfig(cfg.Seed)
	}
	pop, err := atlas.Generate(popCfg)
	if err != nil {
		return nil, err
	}
	model := geo.DefaultPathModel()
	if cfg.PathModel != nil {
		model = *cfg.PathModel
	}
	pl := planRun(cfg, pop, model, 1)
	assign := make(map[string]string)
	for _, ap := range pl.active {
		for i, ri := range ap.probe.Resolvers {
			key := ap.vpKeys[i]
			if key == "" {
				continue
			}
			if atlas.PublicMarker(ri) {
				ri = ap.catchIdx
			}
			if ri < 0 {
				continue
			}
			assign[key] = pl.specs[ri].Kind.String()
		}
	}
	return assign, nil
}
