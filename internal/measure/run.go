package measure

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/attacks"
	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/faults"
	"ritw/internal/geo"
	"ritw/internal/netsim"
	"ritw/internal/obs"
	"ritw/internal/resolver"
	"ritw/internal/simbind"
	"ritw/internal/zone"
)

// QueryRecord is one probe query as seen at the client (the RIPE Atlas
// result analogue).
type QueryRecord struct {
	// ProbeID identifies the probe.
	ProbeID int
	// Resolver is the recursive the probe asked (the configured
	// address: the anycast address for public DNS).
	Resolver netip.Addr
	// VPKey is the (probe, recursive) pair identity the paper uses as
	// its vantage-point unit.
	VPKey string
	// Continent groups the VP for Table-2-style analysis.
	Continent geo.Continent
	// Seq is the probe's query sequence number (0-based).
	Seq int
	// SentAt is the virtual send time.
	SentAt time.Duration
	// RTTms is the client-observed response time.
	RTTms float64
	// Site is the authoritative site that served the answer, decoded
	// from the per-site TXT ("" on failure).
	Site string
	// OK reports whether an answer arrived before the client timeout.
	OK bool
}

// AuthRecord is one query as seen at an authoritative site (the
// server-side capture used for the middlebox comparison).
type AuthRecord struct {
	Site  string
	Src   netip.Addr // the recursive's egress address
	QName string
	At    time.Duration
}

// Dataset is the output of one measurement run.
type Dataset struct {
	ComboID  string
	Sites    []string
	Interval time.Duration
	Duration time.Duration
	// Records are client-side observations, in completion order.
	Records []QueryRecord
	// AuthRecords are server-side observations.
	AuthRecords []AuthRecord
	// ActiveProbes is the number of probes that participated (after
	// churn), the Table-1 "VPs" column analogue.
	ActiveProbes int
	// SiteAddr maps site code to its authoritative address.
	SiteAddr map[string]netip.Addr
	// Faults is the injector's post-run account (nil when the run had
	// no fault schedule): fault-dropped packets per site per bucket,
	// totals, and the schedule's down/up transitions.
	Faults *faults.Report
	// Attacks is the attack ledger (nil when the run had no attack
	// schedule): per-campaign attacker packets in versus victim packets
	// out, merged across lanes — the amplification evidence.
	Attacks *attacks.Report
}

// RunConfig parameterizes one measurement run.
type RunConfig struct {
	// Combo is the authoritative deployment (one of Table1()).
	Combo Combination
	// Interval between a probe's queries (paper default: 2 minutes;
	// Figure 6 sweeps 5/10/15/20/30).
	Interval time.Duration
	// Duration of the measurement (paper: 1 hour).
	Duration time.Duration
	// Seed drives all randomness.
	Seed int64
	// Population configures the vantage-point synthesis. Zero value
	// gets atlas.DefaultConfig(Seed).
	Population atlas.Config
	// ChurnRate is the per-run probe unavailability (Table 1 sees
	// ~8,700 of ~9,700 probes per run).
	ChurnRate float64
	// LossRate is network-wide packet loss.
	LossRate float64
	// ClientTimeout is the probe's give-up time per query.
	ClientTimeout time.Duration
	// IPv6Subset restricts the run to IPv6-capable probes (the §3.1
	// IPv6 validation).
	IPv6Subset bool
	// PathModel overrides the latency model (nil = geo.DefaultPathModel),
	// used by the jitter-scaling ablation.
	PathModel *geo.PathModel
	// Outage, if set, takes one authoritative site down for part of
	// the run — the §7 "Other Considerations" scenario (a DDoS or
	// failure at one site) that motivates multiple authoritatives.
	// It is shorthand for a one-entry Faults schedule and may be
	// combined with Faults (both are merged and validated together).
	Outage *Outage
	// Faults, if set, is the full fault schedule for the run: multiple
	// overlapping site outages, flapping, loss bursts, latency
	// inflation and partial partitions, all consulted per packet and
	// reproducible from the run seed (the injector draws from its own
	// Seed+7 stream, so a fault-free schedule leaves the dataset
	// byte-identical to a run without one).
	Faults *faults.Schedule
	// Attacks, if set, is the adversarial traffic schedule: NXNS
	// delegation amplification, water-torture floods and spoofed-source
	// reflection, compiled onto the run's own Seed+11 keyed stream. An
	// empty (or nil) schedule leaves the dataset byte-identical to a
	// run without one, and an attacked run keeps the full determinism
	// contract at any shard/worker/scheduler layout.
	Attacks *attacks.Schedule
	// Defense is the resolver-side defense matrix (MaxFetch referral
	// budget, negative-cache toggle) applied to every resolver in the
	// population. The zero value is the RFC-faithful default.
	Defense attacks.Defenses
	// Backoff overrides the resolver population's hold-down policy
	// (nil keeps resolver.DefaultBackoff; see BackoffConfig.Disabled
	// for the pre-hardening full-rate retry behaviour).
	Backoff *resolver.BackoffConfig
	// Mix, if non-empty, overrides every resolver's behaviour for this
	// run: kind, infra-cache TTL/retention, and the singleflight /
	// qname-minimization engine toggles all re-draw from this share
	// table on an entity-keyed stream (Seed+13, keyed by the resolver's
	// stable population name — see netsim.MixKey and atlas.ShareAt).
	// The assignment is a pure function of (Seed, Mix, name): it never
	// consumes population or network randomness, so the topology,
	// address plan and every other seeded stream are untouched, and it
	// is layout-independent — mixed-fleet datasets stay byte-identical
	// at any Shards/Workers/Scheduler combination. Public anycast sites
	// skip Sticky draws, mirroring the population synthesizer. nil
	// keeps the population's own per-resolver kinds (atlas.Config.Mix).
	Mix []atlas.PolicyShare
	// Metrics, if set, aggregates obs counters from the simulator, the
	// authoritative engines and the resolver population. Counters are
	// additive, so concurrent runs may share one registry; per-address
	// SRTT gauges are deliberately NOT wired here (replicas reuse the
	// same simulated address plan, which would make them last-write-
	// wins noise — see resolver.InfraCache.SetMetrics). Purely
	// observational: datasets stay byte-identical for a given seed.
	Metrics *obs.Registry
	// Sink, if set, receives every QueryRecord and AuthRecord the
	// moment it completes, in addition to (or, with StreamOnly,
	// instead of) the returned Dataset's slices. The run owns the sink
	// and closes it once the simulation finishes — also on error, so
	// writer sinks always flush.
	Sink Sink
	// StreamOnly suppresses record materialization: the returned
	// Dataset carries only the summary fields (combo, sites, interval,
	// duration, active probes, site addresses) and records flow solely
	// through Sink. This bounds a run's memory by the sink's state
	// instead of the record count.
	StreamOnly bool
	// Shards splits the vantage-point population into that many
	// independent simulation lanes run concurrently (0 or 1 = one
	// lane). Partitioning follows resolver closures — a probe lands in
	// the same shard as every resolver it can use — and all randomness
	// is keyed to stable entity identities, so the dataset is
	// byte-identical at any shard count, including 1. Shards trade
	// memory (per-shard worlds) for wall-clock time; see DESIGN.md §8.4.
	Shards int
	// Workers moves lane execution out of process: the run re-execs its
	// own binary as that many `ritw lane-worker` subprocesses, each
	// simulating a round-robin subset of the lanes and streaming its
	// pre-merged records back over the lanewire protocol (0 = in-process
	// goroutine lanes). Like Shards this is purely a deployment knob:
	// the dataset is byte-identical at any workers × shards layout,
	// which TestWorkersMatchInProcess pins. Requires 0 ≤ Workers ≤
	// effective shard count. See DESIGN.md §8.7.
	Workers int
	// Snapshot, if set, checkpoints the merge frontier to
	// Snapshot.Path at instant boundaries and — with Snapshot.Resume —
	// verifies and skips a previously-checkpointed prefix, so
	// interrupted campaigns restart from the last checkpoint instead of
	// from zero. See SnapshotSpec.
	Snapshot *SnapshotSpec
	// Scheduler selects the simulator's event scheduler for every lane
	// (default SchedHeap, the reference binary heap; SchedWheel is the
	// hierarchical timing wheel, faster at large event depths). Like
	// Shards this is a wall-clock knob, never a science knob: both
	// schedulers execute events in exactly ascending (time, id) order,
	// so the dataset is byte-identical either way — a contract
	// TestWheelMatchesHeapDataset pins. See DESIGN.md §8.5.
	Scheduler netsim.SchedulerKind
}

// Outage describes a site failure window within a run.
type Outage struct {
	// Site is the airport code of the failing authoritative.
	Site string
	// Start and End bound the failure in virtual time from run start.
	Start, End time.Duration
}

// DefaultRunConfig returns the paper's standard setup for a combo.
func DefaultRunConfig(combo Combination, seed int64) RunConfig {
	return RunConfig{
		Combo:         combo,
		Interval:      2 * time.Minute,
		Duration:      time.Hour,
		Seed:          seed,
		Population:    atlas.DefaultConfig(seed),
		ChurnRate:     0.10,
		LossRate:      0.003,
		ClientTimeout: 4 * time.Second,
	}
}

// Run executes one measurement and returns the dataset. The run is
// fully deterministic for a given config. It is the context-free
// wrapper around RunContext for callers that never cancel.
func Run(cfg RunConfig) (*Dataset, error) {
	return RunContext(context.Background(), cfg)
}

// RunStream executes one measurement pushing every record into sink
// and never materializing them: the returned Dataset holds summary
// fields only. It is the context-free wrapper around RunStreamContext.
func RunStream(cfg RunConfig, sink Sink) (*Dataset, error) {
	return RunStreamContext(context.Background(), cfg, sink)
}

// RunStreamContext is RunContext in stream-only mode: records flow
// through sink as they complete and the returned Dataset carries only
// the run summary. The record sequence each vantage point observes is
// identical to the materialized path's, so aggregator sinks reproduce
// the slice-based analyses exactly.
func RunStreamContext(ctx context.Context, cfg RunConfig, sink Sink) (*Dataset, error) {
	cfg.Sink = sink
	cfg.StreamOnly = true
	return RunContext(ctx, cfg)
}

// RunContext executes one measurement and returns the dataset. The
// virtual-time simulation checks ctx between event batches, so a
// cancelled context abandons the run promptly with ctx.Err(). The
// dataset is fully deterministic for a given config — independent of
// wall-clock timing, of how many runs execute concurrently, and of
// cfg.Shards: a sharded run emits the exact byte sequence the
// single-lane run would (the contract TestShardedMatchesSequential
// pins; the machinery lives in shard.go).
func RunContext(ctx context.Context, cfg RunConfig) (*Dataset, error) {
	if len(cfg.Combo.Sites) == 0 {
		return nil, fmt.Errorf("measure: combination has no sites")
	}
	if cfg.Interval <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("measure: interval and duration must be positive")
	}
	if cfg.ClientTimeout <= 0 {
		cfg.ClientTimeout = 4 * time.Second
	}
	popCfg := cfg.Population
	if popCfg.NumProbes == 0 {
		popCfg = atlas.DefaultConfig(cfg.Seed)
	}
	pop, err := atlas.Generate(popCfg)
	if err != nil {
		return nil, err
	}

	model := geo.DefaultPathModel()
	if cfg.PathModel != nil {
		model = *cfg.PathModel
	}

	ds := &Dataset{
		ComboID:  cfg.Combo.ID,
		Sites:    append([]string(nil), cfg.Combo.Sites...),
		Interval: cfg.Interval,
		Duration: cfg.Duration,
	}
	sink := streamTarget(ds, cfg)
	emit, emitAuth := instrumentedEmit(sink, cfg.Metrics)

	// Merge the legacy one-site Outage shorthand into the fault
	// schedule and validate it up front; each shard compiles it into a
	// per-packet injector once addresses are planned.
	sched := cfg.Faults
	if cfg.Outage != nil {
		merged := faults.Schedule{}
		if sched != nil {
			merged = *sched
		}
		merged.Outages = append(append([]faults.Outage(nil), merged.Outages...),
			faults.Outage{Site: cfg.Outage.Site, Start: cfg.Outage.Start, End: cfg.Outage.End})
		sched = &merged
	}
	if err := sched.Validate(); err != nil {
		sink.Close()
		return nil, err
	}
	if err := cfg.Attacks.Validate(); err != nil {
		sink.Close()
		return nil, err
	}

	nShards := cfg.Shards
	if nShards < 1 {
		nShards = 1
	}
	if cfg.Workers < 0 {
		sink.Close()
		return nil, fmt.Errorf("measure: workers must be >= 0, got %d", cfg.Workers)
	}
	if cfg.Workers > nShards {
		sink.Close()
		return nil, fmt.Errorf("measure: %d workers need at least as many shards, got %d (workers without a lane would idle)", cfg.Workers, nShards)
	}
	pl := planRun(cfg, pop, model, nShards)
	pl.popCfg = popCfg
	ds.SiteAddr = pl.siteAddr
	ds.ActiveProbes = len(pl.active)

	rep, atkRep, err := runShards(ctx, cfg, pl, sched, emit, emitAuth, cfg.Metrics)
	if err != nil {
		sink.Close()
		return nil, err
	}
	ds.Faults = rep
	ds.Attacks = atkRep
	return ds, finishSink(sink, ds.meta())
}

// streamTarget picks where a run's records go: the dataset itself, the
// configured sink, or both via a tee. The returned sink always carries
// ds's metadata through OnMeta, even in stream-only mode, so the
// summary Dataset a streaming run returns is fully populated.
func streamTarget(ds *Dataset, cfg RunConfig) Sink {
	switch {
	case cfg.Sink == nil && !cfg.StreamOnly:
		return ds
	case cfg.Sink == nil:
		return Discard
	case cfg.StreamOnly:
		return cfg.Sink
	default:
		return Tee(ds, cfg.Sink)
	}
}

// instrumentedEmit wraps the sink's methods with the streamed-record
// counters. With a nil registry the counters are no-ops.
func instrumentedEmit(sink Sink, reg *obs.Registry) (func(QueryRecord), func(AuthRecord)) {
	queries := reg.Counter("measure_records_streamed_total")
	auths := reg.Counter("measure_auth_records_streamed_total")
	return func(r QueryRecord) {
			queries.Inc()
			sink.OnQuery(r)
		}, func(a AuthRecord) {
			auths.Inc()
			sink.OnAuth(a)
		}
}

// finishSink delivers the run summary to meta-aware sinks and closes.
func finishSink(sink Sink, m Meta) error {
	if ms, ok := sink.(MetaSink); ok {
		ms.OnMeta(m)
	}
	if err := sink.Close(); err != nil {
		return fmt.Errorf("measure: closing sink: %w", err)
	}
	return nil
}

// buildAuthSites deploys one authoritative per combination site and
// streams the server-side capture through onAuth. A site whose code is
// already present in siteAddr is placed at that planned address (the
// sharded path, where every shard must agree on the plan); otherwise
// the address is allocated and recorded in siteAddr.
func buildAuthSites(sim *netsim.Simulator, net *netsim.Network, combo Combination, siteAddr map[string]netip.Addr, onAuth func(AuthRecord), metrics *obs.Registry) ([]netip.Addr, map[string]*netsim.Host, error) {
	authAddrs := make([]netip.Addr, 0, len(combo.Sites))
	authHosts := make(map[string]*netsim.Host, len(combo.Sites))
	for _, code := range combo.Sites {
		site, err := geo.SiteByCode(code)
		if err != nil {
			return nil, nil, err
		}
		z, err := zone.ParseString(ZoneText(combo, code), dnswire.Root)
		if err != nil {
			return nil, nil, fmt.Errorf("measure: building zone for %s: %w", code, err)
		}
		var host *netsim.Host
		if addr, planned := siteAddr[code]; planned {
			host = net.AddHostAddr(addr, site.Coord)
		} else {
			host = net.AddHost(site.Coord)
		}
		code := code
		eng := authserver.NewEngine(authserver.Config{
			Zones:    []*zone.Zone{z},
			Identity: strings.ToLower(code) + "." + TestDomain.String(),
			OnQuery: func(qi authserver.QueryInfo) {
				onAuth(AuthRecord{
					Site:  code,
					Src:   qi.Src,
					QName: qi.Question.Name.Key(),
					At:    sim.Now(),
				})
			},
			Metrics: metrics,
		})
		simbind.BindAuth(host, eng)
		authAddrs = append(authAddrs, host.Addr)
		authHosts[code] = host
		siteAddr[code] = host.Addr
	}
	return authAddrs, authHosts, nil
}
