package measure

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/faults"
	"ritw/internal/geo"
	"ritw/internal/netsim"
	"ritw/internal/obs"
	"ritw/internal/resolver"
	"ritw/internal/simbind"
	"ritw/internal/zone"
)

// QueryRecord is one probe query as seen at the client (the RIPE Atlas
// result analogue).
type QueryRecord struct {
	// ProbeID identifies the probe.
	ProbeID int
	// Resolver is the recursive the probe asked (the configured
	// address: the anycast address for public DNS).
	Resolver netip.Addr
	// VPKey is the (probe, recursive) pair identity the paper uses as
	// its vantage-point unit.
	VPKey string
	// Continent groups the VP for Table-2-style analysis.
	Continent geo.Continent
	// Seq is the probe's query sequence number (0-based).
	Seq int
	// SentAt is the virtual send time.
	SentAt time.Duration
	// RTTms is the client-observed response time.
	RTTms float64
	// Site is the authoritative site that served the answer, decoded
	// from the per-site TXT ("" on failure).
	Site string
	// OK reports whether an answer arrived before the client timeout.
	OK bool
}

// AuthRecord is one query as seen at an authoritative site (the
// server-side capture used for the middlebox comparison).
type AuthRecord struct {
	Site  string
	Src   netip.Addr // the recursive's egress address
	QName string
	At    time.Duration
}

// Dataset is the output of one measurement run.
type Dataset struct {
	ComboID  string
	Sites    []string
	Interval time.Duration
	Duration time.Duration
	// Records are client-side observations, in completion order.
	Records []QueryRecord
	// AuthRecords are server-side observations.
	AuthRecords []AuthRecord
	// ActiveProbes is the number of probes that participated (after
	// churn), the Table-1 "VPs" column analogue.
	ActiveProbes int
	// SiteAddr maps site code to its authoritative address.
	SiteAddr map[string]netip.Addr
	// Faults is the injector's post-run account (nil when the run had
	// no fault schedule): fault-dropped packets per site per bucket,
	// totals, and the schedule's down/up transitions.
	Faults *faults.Report
}

// RunConfig parameterizes one measurement run.
type RunConfig struct {
	// Combo is the authoritative deployment (one of Table1()).
	Combo Combination
	// Interval between a probe's queries (paper default: 2 minutes;
	// Figure 6 sweeps 5/10/15/20/30).
	Interval time.Duration
	// Duration of the measurement (paper: 1 hour).
	Duration time.Duration
	// Seed drives all randomness.
	Seed int64
	// Population configures the vantage-point synthesis. Zero value
	// gets atlas.DefaultConfig(Seed).
	Population atlas.Config
	// ChurnRate is the per-run probe unavailability (Table 1 sees
	// ~8,700 of ~9,700 probes per run).
	ChurnRate float64
	// LossRate is network-wide packet loss.
	LossRate float64
	// ClientTimeout is the probe's give-up time per query.
	ClientTimeout time.Duration
	// IPv6Subset restricts the run to IPv6-capable probes (the §3.1
	// IPv6 validation).
	IPv6Subset bool
	// PathModel overrides the latency model (nil = geo.DefaultPathModel),
	// used by the jitter-scaling ablation.
	PathModel *geo.PathModel
	// Outage, if set, takes one authoritative site down for part of
	// the run — the §7 "Other Considerations" scenario (a DDoS or
	// failure at one site) that motivates multiple authoritatives.
	// It is shorthand for a one-entry Faults schedule and may be
	// combined with Faults (both are merged and validated together).
	Outage *Outage
	// Faults, if set, is the full fault schedule for the run: multiple
	// overlapping site outages, flapping, loss bursts, latency
	// inflation and partial partitions, all consulted per packet and
	// reproducible from the run seed (the injector draws from its own
	// Seed+7 stream, so a fault-free schedule leaves the dataset
	// byte-identical to a run without one).
	Faults *faults.Schedule
	// Backoff overrides the resolver population's hold-down policy
	// (nil keeps resolver.DefaultBackoff; see BackoffConfig.Disabled
	// for the pre-hardening full-rate retry behaviour).
	Backoff *resolver.BackoffConfig
	// Metrics, if set, aggregates obs counters from the simulator, the
	// authoritative engines and the resolver population. Counters are
	// additive, so concurrent runs may share one registry; per-address
	// SRTT gauges are deliberately NOT wired here (replicas reuse the
	// same simulated address plan, which would make them last-write-
	// wins noise — see resolver.InfraCache.SetMetrics). Purely
	// observational: datasets stay byte-identical for a given seed.
	Metrics *obs.Registry
	// Sink, if set, receives every QueryRecord and AuthRecord the
	// moment it completes, in addition to (or, with StreamOnly,
	// instead of) the returned Dataset's slices. The run owns the sink
	// and closes it once the simulation finishes — also on error, so
	// writer sinks always flush.
	Sink Sink
	// StreamOnly suppresses record materialization: the returned
	// Dataset carries only the summary fields (combo, sites, interval,
	// duration, active probes, site addresses) and records flow solely
	// through Sink. This bounds a run's memory by the sink's state
	// instead of the record count.
	StreamOnly bool
}

// Outage describes a site failure window within a run.
type Outage struct {
	// Site is the airport code of the failing authoritative.
	Site string
	// Start and End bound the failure in virtual time from run start.
	Start, End time.Duration
}

// DefaultRunConfig returns the paper's standard setup for a combo.
func DefaultRunConfig(combo Combination, seed int64) RunConfig {
	return RunConfig{
		Combo:         combo,
		Interval:      2 * time.Minute,
		Duration:      time.Hour,
		Seed:          seed,
		Population:    atlas.DefaultConfig(seed),
		ChurnRate:     0.10,
		LossRate:      0.003,
		ClientTimeout: 4 * time.Second,
	}
}

// Run executes one measurement and returns the dataset. The run is
// fully deterministic for a given config. It is the context-free
// wrapper around RunContext for callers that never cancel.
func Run(cfg RunConfig) (*Dataset, error) {
	return RunContext(context.Background(), cfg)
}

// RunStream executes one measurement pushing every record into sink
// and never materializing them: the returned Dataset holds summary
// fields only. It is the context-free wrapper around RunStreamContext.
func RunStream(cfg RunConfig, sink Sink) (*Dataset, error) {
	return RunStreamContext(context.Background(), cfg, sink)
}

// RunStreamContext is RunContext in stream-only mode: records flow
// through sink as they complete and the returned Dataset carries only
// the run summary. The record sequence each vantage point observes is
// identical to the materialized path's, so aggregator sinks reproduce
// the slice-based analyses exactly.
func RunStreamContext(ctx context.Context, cfg RunConfig, sink Sink) (*Dataset, error) {
	cfg.Sink = sink
	cfg.StreamOnly = true
	return RunContext(ctx, cfg)
}

// RunContext executes one measurement and returns the dataset. The
// virtual-time simulation checks ctx between event batches, so a
// cancelled context abandons the run promptly with ctx.Err(). The
// dataset is fully deterministic for a given config, independent of
// wall-clock timing or how many runs execute concurrently.
func RunContext(ctx context.Context, cfg RunConfig) (*Dataset, error) {
	if len(cfg.Combo.Sites) == 0 {
		return nil, fmt.Errorf("measure: combination has no sites")
	}
	if cfg.Interval <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("measure: interval and duration must be positive")
	}
	if cfg.ClientTimeout <= 0 {
		cfg.ClientTimeout = 4 * time.Second
	}
	popCfg := cfg.Population
	if popCfg.NumProbes == 0 {
		popCfg = atlas.DefaultConfig(cfg.Seed)
	}
	pop, err := atlas.Generate(popCfg)
	if err != nil {
		return nil, err
	}

	model := geo.DefaultPathModel()
	if cfg.PathModel != nil {
		model = *cfg.PathModel
	}
	sim := netsim.NewSimulator()
	net := netsim.NewNetwork(sim, model, cfg.Seed+1)
	net.LossRate = cfg.LossRate
	if cfg.Metrics != nil {
		net.SetMetrics(cfg.Metrics)
	}

	ds := &Dataset{
		ComboID:  cfg.Combo.ID,
		Sites:    append([]string(nil), cfg.Combo.Sites...),
		Interval: cfg.Interval,
		Duration: cfg.Duration,
		SiteAddr: make(map[string]netip.Addr),
	}
	sink := streamTarget(ds, cfg)
	emit, emitAuth := instrumentedEmit(sink, cfg.Metrics)

	// Authoritative sites, one per Table-1 datacenter.
	authAddrs, _, err := buildAuthSites(sim, net, cfg.Combo, ds.SiteAddr, emitAuth, cfg.Metrics)
	if err != nil {
		sink.Close()
		return nil, err
	}

	// Merge the legacy one-site Outage shorthand into the fault
	// schedule and validate it up front; the schedule is compiled into
	// a per-packet injector once the resolver addresses exist.
	sched := cfg.Faults
	if cfg.Outage != nil {
		merged := faults.Schedule{}
		if sched != nil {
			merged = *sched
		}
		merged.Outages = append(append([]faults.Outage(nil), merged.Outages...),
			faults.Outage{Site: cfg.Outage.Site, Start: cfg.Outage.Start, End: cfg.Outage.End})
		sched = &merged
	}
	if err := sched.Validate(); err != nil {
		sink.Close()
		return nil, err
	}

	// Recursive resolvers.
	clock := simbind.SimClock{Sim: sim}
	zones := []resolver.ZoneServers{{Zone: TestDomain, Servers: authAddrs}}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	resolverAddr := make([]netip.Addr, len(pop.Resolvers))
	publicMembers := make([]*netsim.Host, 0, len(pop.PublicSites))
	for i, spec := range pop.Resolvers {
		host := net.AddHost(spec.Loc)
		infra := resolver.NewInfraCache(spec.InfraTTL, spec.Retention)
		if cfg.Backoff != nil {
			infra.SetBackoff(*cfg.Backoff)
		}
		eng := resolver.NewEngine(resolver.Config{
			Policy:    resolver.NewPolicy(spec.Kind),
			Infra:     infra,
			Cache:     resolver.NewRecordCache(),
			Zones:     zones,
			Transport: simbind.HostTransport{Host: host},
			Clock:     clock,
			RNG:       rand.New(rand.NewSource(cfg.Seed + 1000 + int64(i))),
			Timeout:   800 * time.Millisecond,
			Metrics:   cfg.Metrics,
		})
		simbind.BindResolver(host, eng)
		resolverAddr[i] = host.Addr
		if spec.Public {
			publicMembers = append(publicMembers, host)
		}
	}
	publicAddr := netip.Addr{}
	if len(publicMembers) > 0 {
		publicAddr = net.AllocAddr()
		net.AddAnycast(publicAddr, publicMembers)
	}

	// Compile the fault schedule now that site and resolver addresses
	// are fixed. The injector draws on its own Seed+7 stream, so runs
	// without faults never install one and stay byte-identical.
	var inj *faults.Injector
	if !sched.Empty() {
		inj, err = faults.Compile(sched, faults.Bindings{
			SiteAddr:  ds.SiteAddr,
			Resolvers: resolverAddr,
		}, cfg.Seed+7)
		if err != nil {
			sink.Close()
			return nil, err
		}
		if cfg.Metrics != nil {
			inj.SetMetrics(cfg.Metrics)
		}
		net.SetFaults(inj)
	}

	// Probes.
	type probeRuntime struct {
		probe   atlas.Probe
		host    *netsim.Host
		pending map[uint16]*QueryRecord
		rng     *rand.Rand
	}
	active := 0
	for _, p := range pop.Probes {
		if cfg.IPv6Subset && !p.IPv6 {
			continue
		}
		if rng.Float64() < cfg.ChurnRate {
			continue // probe offline this run
		}
		active++
		host := net.AddHost(p.Loc)
		host.LastMileMs = p.LastMileMs
		prt := &probeRuntime{
			probe:   p,
			host:    host,
			pending: make(map[uint16]*QueryRecord),
			rng:     rand.New(rand.NewSource(cfg.Seed + 5000 + int64(p.ID))),
		}
		host.Handle(func(src, _ netip.Addr, payload []byte) {
			msg, err := dnswire.Unpack(payload)
			if err != nil || !msg.Response {
				return
			}
			rec, ok := prt.pending[msg.ID]
			if !ok {
				return
			}
			delete(prt.pending, msg.ID)
			rec.RTTms = float64(sim.Now()-rec.SentAt) / float64(time.Millisecond)
			rec.OK = msg.RCode == dnswire.RCodeNoError && len(msg.Answers) > 0
			if rec.OK {
				if txt, ok := msg.Answers[0].Data.(dnswire.TXT); ok {
					rec.Site = strings.TrimPrefix(txt.Joined(), "site=")
				}
			}
			emit(*rec)
		})

		// Query schedule: random phase, then fixed cadence.
		phase := time.Duration(prt.rng.Int63n(int64(cfg.Interval)))
		seq := 0
		var tick func()
		tick = func() {
			if sim.Now() >= cfg.Duration {
				return
			}
			// Choose a recursive for this query (probes with several
			// alternate, which is why the paper keys VPs by the
			// (probe, recursive) pair).
			ridx := prt.probe.Resolvers[prt.rng.Intn(len(prt.probe.Resolvers))]
			raddr := publicAddr
			if !atlas.PublicMarker(ridx) {
				raddr = resolverAddr[ridx]
			}
			if !raddr.IsValid() {
				return
			}
			label := fmt.Sprintf("p%dx%d", prt.probe.ID, seq)
			qname, err := TestDomain.Child(label)
			if err != nil {
				return
			}
			id := uint16(seq)
			q := dnswire.NewQuery(id, qname, dnswire.TypeTXT)
			wire, err := q.Pack()
			if err != nil {
				return
			}
			rec := &QueryRecord{
				ProbeID:   prt.probe.ID,
				Resolver:  raddr,
				VPKey:     fmt.Sprintf("%d/%s", prt.probe.ID, raddr),
				Continent: prt.probe.Continent,
				Seq:       seq,
				SentAt:    sim.Now(),
			}
			prt.pending[id] = rec
			prt.host.Send(raddr, wire)
			// Client-side timeout: record the failure.
			sim.Schedule(cfg.ClientTimeout, func() {
				if r, still := prt.pending[id]; still && r == rec {
					delete(prt.pending, id)
					rec.RTTms = float64(cfg.ClientTimeout) / float64(time.Millisecond)
					emit(*rec)
				}
			})
			seq++
			sim.Schedule(cfg.Interval, tick)
		}
		sim.Schedule(phase, tick)
	}
	ds.ActiveProbes = active

	if err := sim.RunUntilContext(ctx, cfg.Duration+cfg.ClientTimeout+time.Second); err != nil {
		sink.Close()
		return nil, err
	}
	if inj != nil {
		ds.Faults = inj.Report()
	}
	return ds, finishSink(sink, ds.meta())
}

// streamTarget picks where a run's records go: the dataset itself, the
// configured sink, or both via a tee. The returned sink always carries
// ds's metadata through OnMeta, even in stream-only mode, so the
// summary Dataset a streaming run returns is fully populated.
func streamTarget(ds *Dataset, cfg RunConfig) Sink {
	switch {
	case cfg.Sink == nil && !cfg.StreamOnly:
		return ds
	case cfg.Sink == nil:
		return Discard
	case cfg.StreamOnly:
		return cfg.Sink
	default:
		return Tee(ds, cfg.Sink)
	}
}

// instrumentedEmit wraps the sink's methods with the streamed-record
// counters. With a nil registry the counters are no-ops.
func instrumentedEmit(sink Sink, reg *obs.Registry) (func(QueryRecord), func(AuthRecord)) {
	queries := reg.Counter("measure_records_streamed_total")
	auths := reg.Counter("measure_auth_records_streamed_total")
	return func(r QueryRecord) {
			queries.Inc()
			sink.OnQuery(r)
		}, func(a AuthRecord) {
			auths.Inc()
			sink.OnAuth(a)
		}
}

// finishSink delivers the run summary to meta-aware sinks and closes.
func finishSink(sink Sink, m Meta) error {
	if ms, ok := sink.(MetaSink); ok {
		ms.OnMeta(m)
	}
	if err := sink.Close(); err != nil {
		return fmt.Errorf("measure: closing sink: %w", err)
	}
	return nil
}

// buildAuthSites deploys one authoritative per combination site,
// records each site's address in siteAddr, and streams the
// server-side capture through onAuth.
func buildAuthSites(sim *netsim.Simulator, net *netsim.Network, combo Combination, siteAddr map[string]netip.Addr, onAuth func(AuthRecord), metrics *obs.Registry) ([]netip.Addr, map[string]*netsim.Host, error) {
	authAddrs := make([]netip.Addr, 0, len(combo.Sites))
	authHosts := make(map[string]*netsim.Host, len(combo.Sites))
	for _, code := range combo.Sites {
		site, err := geo.SiteByCode(code)
		if err != nil {
			return nil, nil, err
		}
		z, err := zone.ParseString(ZoneText(combo, code), dnswire.Root)
		if err != nil {
			return nil, nil, fmt.Errorf("measure: building zone for %s: %w", code, err)
		}
		host := net.AddHost(site.Coord)
		code := code
		eng := authserver.NewEngine(authserver.Config{
			Zones:    []*zone.Zone{z},
			Identity: strings.ToLower(code) + "." + TestDomain.String(),
			OnQuery: func(qi authserver.QueryInfo) {
				onAuth(AuthRecord{
					Site:  code,
					Src:   qi.Src,
					QName: qi.Question.Name.Key(),
					At:    sim.Now(),
				})
			},
			Metrics: metrics,
		})
		simbind.BindAuth(host, eng)
		authAddrs = append(authAddrs, host.Addr)
		authHosts[code] = host
		siteAddr[code] = host.Addr
	}
	return authAddrs, authHosts, nil
}
