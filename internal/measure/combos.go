// Package measure implements the paper's active measurement: the
// Table-1 combinations of authoritative servers deployed around the
// globe, vantage points that query a TXT record through their local
// recursives every two minutes for an hour, cold-cache enforcement via
// unique labels and 5-second TTLs, and dataset capture at both the
// client and the authoritative side.
package measure

import (
	"fmt"

	"ritw/internal/dnswire"
)

// TestDomain is the measurement zone, standing in for the paper's
// ourtestdomain.nl.
var TestDomain = dnswire.MustParseName("ourtestdomain.nl")

// Combination is one authoritative deployment from Table 1.
type Combination struct {
	// ID names the combination ("2A" … "4B").
	ID string
	// Sites are the airport codes of the deployed datacenters.
	Sites []string
}

// Table1 returns the paper's seven deployment combinations exactly as
// listed in Table 1.
func Table1() []Combination {
	return []Combination{
		{ID: "2A", Sites: []string{"GRU", "NRT"}},
		{ID: "2B", Sites: []string{"DUB", "FRA"}},
		{ID: "2C", Sites: []string{"FRA", "SYD"}},
		{ID: "3A", Sites: []string{"GRU", "NRT", "SYD"}},
		{ID: "3B", Sites: []string{"DUB", "FRA", "IAD"}},
		{ID: "4A", Sites: []string{"GRU", "NRT", "SYD", "DUB"}},
		{ID: "4B", Sites: []string{"DUB", "FRA", "IAD", "SFO"}},
	}
}

// CombinationByID finds a Table-1 combination.
func CombinationByID(id string) (Combination, error) {
	for _, c := range Table1() {
		if c.ID == id {
			return c, nil
		}
	}
	return Combination{}, fmt.Errorf("measure: unknown combination %q", id)
}

// ZoneText renders the per-site copy of the measurement zone: the same
// zone everywhere except for the wildcard TXT that identifies the
// answering site — the paper's trick for observing recursive-to-
// authoritative mapping with Internet-class queries.
func ZoneText(combo Combination, site string) string {
	text := "$ORIGIN " + TestDomain.String() + "\n" +
		"$TTL 3600\n" +
		"@ IN SOA ns1 hostmaster 2017032301 7200 3600 604800 300\n"
	for i := range combo.Sites {
		text += fmt.Sprintf("@ IN NS ns%d\n", i+1)
	}
	for i := range combo.Sites {
		text += fmt.Sprintf("ns%d IN A 192.0.2.%d\n", i+1, i+1)
	}
	// TTL 5 s and per-site content, exactly as §3.1 describes.
	text += fmt.Sprintf("* 5 IN TXT \"site=%s\"\n", site)
	return text
}
