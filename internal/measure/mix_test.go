package measure

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/geo"
	"ritw/internal/netsim"
	"ritw/internal/resolver"
)

// mixTestShares is the fleet mixture the layout tests run: the
// calibrated paper mixture plus a probe-top-N segment with
// singleflight and qname minimization on, so the engine paths those
// flags gate are inside the byte-identity loop.
func mixTestShares() []atlas.PolicyShare {
	mix := atlas.PaperMix()
	mix = append(mix, atlas.PolicyShare{
		Kind:          resolver.KindProbeTopN,
		Share:         0.15,
		InfraTTL:      10 * time.Minute,
		Retention:     resolver.DecayKeep,
		Singleflight:  true,
		QnameMinimize: true,
	})
	return mix
}

// mixCfg builds a 2B run re-drawing every resolver's behaviour from
// mixTestShares.
func mixCfg(t *testing.T, probes int, seed int64) RunConfig {
	t.Helper()
	cfg := shardCfg(t, "2B", probes, seed)
	cfg.Mix = mixTestShares()
	return cfg
}

// TestMixLayoutIdentity is the fleet-mix acceptance gate: with a
// non-nil mix (including modern segments), the dataset must be
// byte-identical across {1,4} shards x {in-process, 2 workers} x
// {heap, wheel} — the entity-keyed assignment may not depend on lane
// membership, process layout, or scheduler.
func TestMixLayoutIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full layout matrix")
	}
	t.Parallel()
	base := mixCfg(t, 150, 23)
	wantCSV, wantDS := runToCSV(t, base)
	if len(wantDS.Records) == 0 {
		t.Fatal("mixed run produced no records")
	}
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{0, 2} {
			for _, sched := range []netsim.SchedulerKind{netsim.SchedHeap, netsim.SchedWheel} {
				if workers > shards {
					continue
				}
				cfg := base
				cfg.Shards = shards
				cfg.Workers = workers
				cfg.Scheduler = sched
				name := fmt.Sprintf("shards=%d workers=%d sched=%v", shards, workers, sched)
				gotCSV, gotDS := runToCSV(t, cfg)
				if !bytes.Equal(gotCSV, wantCSV) {
					t.Fatalf("%s: CSV stream differs from baseline\n%s",
						name, firstDiff(gotCSV, wantCSV))
				}
				if !reflect.DeepEqual(gotDS.Records, wantDS.Records) {
					t.Fatalf("%s: materialized query records differ", name)
				}
				if !reflect.DeepEqual(gotDS.AuthRecords, wantDS.AuthRecords) {
					t.Fatalf("%s: auth records differ", name)
				}
			}
		}
	}
}

// TestMixChangesBehaviourButNotTopology: the mix re-draw must actually
// change the record stream (different policies select differently)
// while leaving the population shape — probe count, churn, catchments
// — untouched, because the assignment consumes no RNG state.
func TestMixChangesBehaviourButNotTopology(t *testing.T) {
	t.Parallel()
	plain := shardCfg(t, "2B", 150, 23)
	plainCSV, plainDS := runToCSV(t, plain)
	mixed := mixCfg(t, 150, 23)
	mixedCSV, mixedDS := runToCSV(t, mixed)
	if bytes.Equal(plainCSV, mixedCSV) {
		t.Fatal("mix re-draw did not change the record stream; it tests nothing")
	}
	if plainDS.ActiveProbes != mixedDS.ActiveProbes {
		t.Errorf("mix changed active probes: %d vs %d — the re-draw must not consume RNG state",
			plainDS.ActiveProbes, mixedDS.ActiveProbes)
	}
	if len(plainDS.Records) != len(mixedDS.Records) {
		t.Errorf("mix changed the probing schedule: %d vs %d records",
			len(plainDS.Records), len(mixedDS.Records))
	}
}

// TestPolicyAssignmentDeterminism: the VPKey -> policy classifier is a
// pure function of the config — identical across shard layouts and
// repeated calls, covering every mixed-in kind.
func TestPolicyAssignmentDeterminism(t *testing.T) {
	t.Parallel()
	cfg := mixCfg(t, 150, 23)
	a1, err := PolicyAssignment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) == 0 {
		t.Fatal("empty assignment")
	}
	cfg4 := cfg
	cfg4.Shards = 4
	a2, err := PolicyAssignment(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("assignment differs between 1 and 4 shards")
	}
	kinds := map[string]int{}
	for _, label := range a1 {
		kinds[label]++
	}
	if len(kinds) < 4 {
		t.Errorf("assignment covers only %d kinds: %v", len(kinds), kinds)
	}
	if kinds[resolver.KindProbeTopN.String()] == 0 {
		t.Errorf("probetopn segment drew no VPs: %v", kinds)
	}
}

// TestShareAtEntityKeyed pins the assignment primitive: deterministic
// per key, distributed by share over many keys, and never Sticky when
// the caller excludes it (public anycast sites hold per-client pins,
// so a sticky public resolver would be a modelling bug).
func TestShareAtEntityKeyed(t *testing.T) {
	t.Parallel()
	mix := atlas.PaperMix()
	counts := map[resolver.PolicyKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		key := netsim.MixKey(55, fmt.Sprintf("r%04d", i))
		s1 := atlas.ShareAt(mix, key, false)
		s2 := atlas.ShareAt(mix, key, false)
		if s1.Kind != s2.Kind {
			t.Fatalf("key %d: non-deterministic draw %v vs %v", key, s1.Kind, s2.Kind)
		}
		counts[s1.Kind]++
		if pub := atlas.ShareAt(mix, key, true); pub.Kind == resolver.KindSticky {
			t.Fatalf("noSticky draw returned Sticky for key %d", key)
		}
	}
	var total float64
	for _, m := range mix {
		total += m.Share
	}
	for _, m := range mix {
		want := m.Share / total
		got := float64(counts[m.Kind]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("%v share %.3f, want %.3f±0.02", m.Kind, got, want)
		}
	}
}

// TestMixFreeJobWireCompat guards the lanewire protocol: a mix-free
// job must serialize without the Mix field at all, so run fingerprints
// and snapshots taken before the field existed stay valid.
func TestMixFreeJobWireCompat(t *testing.T) {
	t.Parallel()
	cfg := shardCfg(t, "2B", 120, 7)
	pop, err := atlas.Generate(cfg.Population)
	if err != nil {
		t.Fatal(err)
	}
	topLevelHasMix := func(cfg RunConfig) bool {
		pl := planRun(cfg, pop, geo.DefaultPathModel(), 1)
		j := laneJobFor(cfg, pl, nil)
		b, err := json.Marshal(&j)
		if err != nil {
			t.Fatal(err)
		}
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(b, &fields); err != nil {
			t.Fatal(err)
		}
		_, ok := fields["Mix"]
		return ok
	}
	if topLevelHasMix(cfg) {
		t.Fatal("mix-free laneJob serialized a Mix field; old fingerprints/snapshots break")
	}
	cfg.Mix = mixTestShares()
	if !topLevelHasMix(cfg) {
		t.Fatal("mixed laneJob dropped the Mix field")
	}
}
