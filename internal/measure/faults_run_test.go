package measure

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/faults"
	"ritw/internal/resolver"
)

// faultedConfig builds a 2B run with a schedule exercising every fault
// kind that draws randomness (burst, flap) plus deterministic shaping.
func faultedConfig(seed int64, probes int) RunConfig {
	combo, _ := CombinationByID("2B")
	cfg := DefaultRunConfig(combo, seed)
	pc := atlas.DefaultConfig(seed)
	pc.NumProbes = probes
	cfg.Population = pc
	cfg.Faults = &faults.Schedule{
		Outages: []faults.Outage{{Site: "DUB", Start: 45 * time.Minute, End: 55 * time.Minute}},
		Flaps: []faults.Flap{{
			Site: "FRA", Start: 10 * time.Minute, End: 26 * time.Minute,
			Period: 4 * time.Minute, DownFrac: 0.5,
		}},
		Bursts: []faults.LossBurst{{
			Site: "DUB", Start: 5 * time.Minute, End: 25 * time.Minute, Rate: 0.3, Fraction: 0.5,
		}},
		Slowdowns: []faults.Slowdown{{
			Site: "FRA", Start: 30 * time.Minute, End: 40 * time.Minute, AddRTT: 100 * time.Millisecond,
		}},
		Partitions: []faults.Partition{{
			Site: "FRA", Start: 42 * time.Minute, End: 50 * time.Minute, Fraction: 0.5,
		}},
	}
	return cfg
}

// TestFaultScheduleDeterminism is the PR's acceptance gate: the same
// seed and the same fault schedule must reproduce the dataset byte for
// byte, fault report included — the injector draws from its own seeded
// stream (Seed+7), never from shared state.
func TestFaultScheduleDeterminism(t *testing.T) {
	t.Parallel()
	run := func() (*Dataset, []byte) {
		ds, err := Run(faultedConfig(23, 200))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return ds, buf.Bytes()
	}
	ds1, csv1 := run()
	ds2, csv2 := run()
	if !bytes.Equal(csv1, csv2) {
		t.Fatal("same seed + same fault schedule produced different datasets")
	}
	if ds1.Faults == nil || ds2.Faults == nil {
		t.Fatal("faulted runs should carry an injector report")
	}
	if !reflect.DeepEqual(ds1.Faults, ds2.Faults) {
		t.Fatalf("fault reports diverged:\n%+v\n%+v", ds1.Faults, ds2.Faults)
	}
	if ds1.Faults.Drops == 0 {
		t.Error("schedule with outage+flap+burst should cut packets")
	}
	if ds1.Faults.Delayed == 0 {
		t.Error("slowdown window should delay packets")
	}
}

// TestFaultSeedChangesOutcome guards against the injector accidentally
// ignoring its seed: a different run seed must perturb the burst draws.
func TestFaultSeedChangesOutcome(t *testing.T) {
	t.Parallel()
	ds1, err := Run(faultedConfig(23, 200))
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := Run(faultedConfig(24, 200))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ds1.Faults, ds2.Faults) {
		t.Error("different seeds produced identical fault reports")
	}
}

// deadSiteRun executes 2B with FRA dead for the whole run and the
// given hold-down policy, returning the dataset.
func deadSiteRun(t *testing.T, backoff *resolver.BackoffConfig) *Dataset {
	t.Helper()
	combo, err := CombinationByID("2B")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultRunConfig(combo, 19)
	pc := atlas.DefaultConfig(19)
	pc.NumProbes = 300
	cfg.Population = pc
	cfg.Faults = &faults.Schedule{
		Outages: []faults.Outage{{Site: "FRA", Start: 0, End: 2 * time.Hour}},
	}
	cfg.Backoff = backoff
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Faults == nil {
		t.Fatal("faulted run should carry an injector report")
	}
	return ds
}

func answerRate(ds *Dataset) float64 {
	answered := 0
	for _, r := range ds.Records {
		if r.OK {
			answered++
		}
	}
	return float64(answered) / float64(max(1, len(ds.Records)))
}

func sum(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestBackoffShedsDeadSiteTraffic is the NXNSAttack-shaped acceptance
// criterion at the measurement layer: with one permanently dead site,
// hold-down backoff makes the dead site's query timeline decay
// geometrically instead of retrying at full rate, while the
// client-observed answer rate stays at or above the no-backoff
// baseline.
func TestBackoffShedsDeadSiteTraffic(t *testing.T) {
	t.Parallel()
	on := deadSiteRun(t, nil) // resolver.DefaultBackoff
	off := deadSiteRun(t, &resolver.BackoffConfig{Disabled: true})

	cutOn, cutOff := on.Faults.Cut["FRA"], off.Faults.Cut["FRA"]
	if len(cutOn) < 4 || len(cutOff) < 4 {
		t.Fatalf("expected multi-bucket cut timelines, got on=%v off=%v", cutOn, cutOff)
	}

	// Geometric decay: after the discovery spike, each later half of the
	// backoff timeline carries less traffic than the one before it, and
	// the tail is a small fraction of the head.
	head, tail := sum(cutOn[:len(cutOn)/2]), sum(cutOn[len(cutOn)/2:])
	if head == 0 {
		t.Fatalf("dead site saw no traffic at all: %v", cutOn)
	}
	if tail*2 > head {
		t.Errorf("backoff timeline not decaying: head=%d tail=%d (%v)", head, tail, cutOn)
	}
	if last := cutOn[len(cutOn)-1]; last*4 > cutOn[0] {
		t.Errorf("final bucket %d should be well below the initial spike %d (%v)",
			last, cutOn[0], cutOn)
	}

	// Shedding: backoff must cut materially fewer packets against the
	// dead site than full-rate retrying does.
	if totOn, totOff := sum(cutOn), sum(cutOff); totOn*2 > totOff {
		t.Errorf("backoff should shed dead-site retries: with=%d without=%d", totOn, totOff)
	}

	// Client view: skipping the dead site must not cost answers.
	rateOn, rateOff := answerRate(on), answerRate(off)
	if rateOn < rateOff {
		t.Errorf("answer rate with backoff %.4f fell below no-backoff baseline %.4f",
			rateOn, rateOff)
	}
	if rateOn < 0.9 {
		t.Errorf("answer rate with backoff %.4f; failover should absorb the dead site", rateOn)
	}
}

// TestLegacyOutageMergesIntoSchedule covers the RunConfig migration:
// the old single-outage knob and the new schedule compose into one
// injector, and same-site overlap between them is rejected.
func TestLegacyOutageMergesIntoSchedule(t *testing.T) {
	t.Parallel()
	combo, _ := CombinationByID("2B")
	cfg := DefaultRunConfig(combo, 11)
	pc := atlas.DefaultConfig(11)
	pc.NumProbes = 120
	cfg.Population = pc
	cfg.Outage = &Outage{Site: "FRA", Start: 10 * time.Minute, End: 20 * time.Minute}
	cfg.Faults = &faults.Schedule{
		Outages: []faults.Outage{{Site: "DUB", Start: 30 * time.Minute, End: 40 * time.Minute}},
	}
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Faults.Cut["FRA"]) == 0 || len(ds.Faults.Cut["DUB"]) == 0 {
		t.Errorf("merged schedule should cut both sites: %+v", ds.Faults.Cut)
	}

	cfg.Faults = &faults.Schedule{
		Outages: []faults.Outage{{Site: "FRA", Start: 15 * time.Minute, End: 25 * time.Minute}},
	}
	if _, err := Run(cfg); err == nil {
		t.Error("overlapping legacy outage + scheduled outage on one site should fail validation")
	}
}
