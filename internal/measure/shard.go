package measure

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/attacks"
	"ritw/internal/dnswire"
	"ritw/internal/faults"
	"ritw/internal/geo"
	"ritw/internal/netsim"
	"ritw/internal/obs"
	"ritw/internal/resolver"
	"ritw/internal/simbind"
)

// This file is the sharded simulation engine (DESIGN.md §8.4). A run
// is split into three stages:
//
//  1. plan: compute everything whose value must not depend on the
//     partition — the global address plan, churn, public-DNS
//     catchments, and the resolver-closure components.
//  2. shards: build one independent world (simulator, network, auth
//     replicas, resolvers, probes, fault injector) per shard and run
//     them concurrently. Keyed randomness (netsim/keyed.go) makes
//     every stochastic outcome a pure function of stable entity keys,
//     so a shard computes exactly what the sequential run would.
//  3. merge: each shard emits records in canonical order (virtual
//     time, then a total record key); a k-way merge interleaves the
//     shard streams into one canonical sequence feeding the Sink.
//
// The single-shard path runs through the same machinery, which is how
// the byte-identity contract is pinned: shards=1 and shards=N produce
// the same canonical sequence, record for record.

// plannedProbe is one churn-surviving probe with its globally planned
// address and, for public-DNS users, the pinned catchment member.
type plannedProbe struct {
	probe atlas.Probe
	addr  netip.Addr
	// catchIdx is the global resolver index of the public anycast site
	// serving this probe, or -1 when the probe never uses the service.
	catchIdx int
	// vpKeys[i] is the rendered VPKey for the probe's i-th resolver
	// choice, and labelPrefix the query-name prefix ("p<ID>x"); both
	// are interned once at plan time so the per-query hot path does no
	// fmt formatting, only an integer append for the sequence number.
	vpKeys      []string
	labelPrefix string
}

// runPlan is the partition-independent description of a run: every
// address, catchment and churn decision is fixed here, before any
// shard exists, so all shard counts agree on them.
type runPlan struct {
	model        geo.PathModel
	pop          *atlas.Population
	popCfg       atlas.Config // resolved population config, for worker job specs
	siteAddr     map[string]netip.Addr
	resolverAddr []netip.Addr
	publicAddr   netip.Addr
	active       []plannedProbe
	// specs is the effective per-resolver behaviour: the population's
	// own specs, unless cfg.Mix re-drew them entity-keyed (see
	// applyMix). Shards build engines from these, never from
	// pop.Resolvers directly.
	specs []atlas.ResolverSpec

	// Attack infrastructure addresses, allocated after every benign
	// address and only when the run has the corresponding campaigns —
	// so an attack-free plan is address-for-address identical to one
	// from a build that never knew about attacks.
	attackerNS netip.Addr // NXNS attacker name server
	reflectSrc netip.Addr // reflection sender
	reflectDst netip.Addr // reflection victim

	nShards          int
	probesByShard    [][]int // indices into active
	resolversByShard [][]int // global resolver indices, ascending
}

// planRun fixes the global address plan (mirroring the allocation
// order a single network would use), applies churn, pins public-DNS
// catchments with the keyed pick, and partitions the population into
// resolver-closure shards.
func planRun(cfg RunConfig, pop *atlas.Population, model geo.PathModel, nShards int) *runPlan {
	pl := &runPlan{
		model:    model,
		pop:      pop,
		siteAddr: make(map[string]netip.Addr, len(cfg.Combo.Sites)),
		nShards:  nShards,
	}
	next := uint32(0x0A000001) // 10.0.0.1, the netsim pool start
	alloc := func() netip.Addr {
		v := next
		next++
		return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	}
	// Allocation order matches the sequential world build: auth sites,
	// resolvers, the public anycast service address, then the active
	// probes in population order.
	for _, code := range cfg.Combo.Sites {
		pl.siteAddr[code] = alloc()
	}
	pl.resolverAddr = make([]netip.Addr, len(pop.Resolvers))
	for i := range pop.Resolvers {
		pl.resolverAddr[i] = alloc()
	}
	if len(pop.PublicSites) > 0 {
		pl.publicAddr = alloc()
	}

	memberLocs := make([]geo.Coord, len(pop.PublicSites))
	for i, ri := range pop.PublicSites {
		memberLocs[i] = pop.Resolvers[ri].Loc
	}

	churn := rand.New(rand.NewSource(cfg.Seed + 2))
	for _, p := range pop.Probes {
		if cfg.IPv6Subset && !p.IPv6 {
			continue
		}
		if churn.Float64() < cfg.ChurnRate {
			continue // probe offline this run
		}
		ap := plannedProbe{probe: p, addr: alloc(), catchIdx: -1}
		for _, ri := range p.Resolvers {
			if atlas.PublicMarker(ri) && len(memberLocs) > 0 {
				// Pin the anycast catchment now, with the same keyed
				// pick the network would make lazily. Pinning at plan
				// time means a public-DNS probe's closure contains one
				// site, not all eight — without it every public user
				// would collapse into a single giant shard.
				pick := netsim.KeyedCatchmentPick(model, netsim.DefaultBGPNoise,
					netsim.CatchmentKey(uint64(cfg.Seed+1), ap.addr, pl.publicAddr),
					p.Loc, memberLocs)
				ap.catchIdx = pop.PublicSites[pick]
			}
		}
		ap.labelPrefix = "p" + strconv.Itoa(p.ID) + "x"
		ap.vpKeys = make([]string, len(p.Resolvers))
		for i, ri := range p.Resolvers {
			raddr := pl.publicAddr
			if !atlas.PublicMarker(ri) {
				raddr = pl.resolverAddr[ri]
			}
			if raddr.IsValid() {
				ap.vpKeys[i] = strconv.Itoa(p.ID) + "/" + raddr.String()
			}
		}
		pl.active = append(pl.active, ap)
	}

	if cfg.Attacks != nil {
		if len(cfg.Attacks.NXNS) > 0 {
			pl.attackerNS = alloc()
		}
		if len(cfg.Attacks.Reflections) > 0 {
			pl.reflectSrc = alloc()
			pl.reflectDst = alloc()
		}
	}

	pl.specs = applyMix(cfg, pop)
	pl.partition()
	return pl
}

// applyMix resolves the effective per-resolver specs: the population's
// own, unless the run carries a policy mix — then every resolver
// re-draws its behaviour from the mix on an entity-keyed stream
// (Seed+13, keyed by the resolver's stable name). The draw is a pure
// function of (seed, mix, name): it consumes no RNG state, so the
// population synthesis, the address plan, churn and catchments are all
// untouched, and because planRun executes identically in the parent
// and in every lane worker, all process layouts agree on the
// assignment. Public anycast sites skip Sticky draws, mirroring
// atlas.pickPublicKind.
func applyMix(cfg RunConfig, pop *atlas.Population) []atlas.ResolverSpec {
	if len(cfg.Mix) == 0 {
		return pop.Resolvers
	}
	specs := make([]atlas.ResolverSpec, len(pop.Resolvers))
	copy(specs, pop.Resolvers)
	for i := range specs {
		m := atlas.ShareAt(cfg.Mix, netsim.MixKey(uint64(cfg.Seed+13), specs[i].Name), specs[i].Public)
		specs[i].Kind = m.Kind
		specs[i].InfraTTL = m.InfraTTL
		specs[i].Retention = m.Retention
		specs[i].Singleflight = m.Singleflight
		specs[i].QnameMinimize = m.QnameMinimize
	}
	return specs
}

// partition groups resolvers into closure components (two resolvers
// are connected when some probe can use both) and packs components
// onto shards, largest first. Probes follow their resolvers, so no
// packet ever needs to cross a shard boundary: probes talk only to
// their own resolvers, resolvers only to the per-shard authoritative
// replicas.
func (pl *runPlan) partition() {
	uf := newUnionFind(len(pl.pop.Resolvers))
	for _, ap := range pl.active {
		first := -1
		for _, ri := range ap.probe.Resolvers {
			if atlas.PublicMarker(ri) {
				ri = ap.catchIdx
				if ri < 0 {
					continue
				}
			}
			if first < 0 {
				first = ri
			} else {
				uf.union(first, ri)
			}
		}
	}

	type component struct {
		root      int
		probes    []int
		resolvers []int
	}
	byRoot := make(map[int]*component)
	comp := func(root int) *component {
		c, ok := byRoot[root]
		if !ok {
			c = &component{root: root}
			byRoot[root] = c
		}
		return c
	}
	for ri := range pl.pop.Resolvers {
		root := uf.find(ri)
		comp(root).resolvers = append(comp(root).resolvers, ri)
	}
	for ai, ap := range pl.active {
		ri := ap.probe.Resolvers[0]
		if atlas.PublicMarker(ri) {
			ri = ap.catchIdx
		}
		if ri < 0 {
			continue // no usable resolver: the probe never sends
		}
		root := uf.find(ri)
		comp(root).probes = append(comp(root).probes, ai)
	}

	comps := make([]*component, 0, len(byRoot))
	for _, c := range byRoot {
		comps = append(comps, c)
	}
	// Longest-processing-time packing: heaviest component to the
	// lightest shard. Root index breaks ties so the assignment is
	// reproducible run to run.
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i].probes) != len(comps[j].probes) {
			return len(comps[i].probes) > len(comps[j].probes)
		}
		return comps[i].root < comps[j].root
	})
	pl.probesByShard = make([][]int, pl.nShards)
	pl.resolversByShard = make([][]int, pl.nShards)
	load := make([]int, pl.nShards)
	for _, c := range comps {
		s := 0
		for i := 1; i < pl.nShards; i++ {
			if load[i] < load[s] {
				s = i
			}
		}
		load[s] += len(c.probes)
		pl.probesByShard[s] = append(pl.probesByShard[s], c.probes...)
		pl.resolversByShard[s] = append(pl.resolversByShard[s], c.resolvers...)
	}
	for s := 0; s < pl.nShards; s++ {
		sort.Ints(pl.probesByShard[s])
		sort.Ints(pl.resolversByShard[s])
	}
}

// unionFind is a plain disjoint-set forest with path halving.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}

// emitted is one record tagged with its emission instant, the unit of
// the canonical merge.
type emitted struct {
	at    time.Duration
	query bool
	q     QueryRecord
	a     AuthRecord
}

// emittedLess is the canonical total order on records: virtual time,
// then auth before query, then a key unique per record kind. Records
// that compare equal are byte-identical (every rendered field is part
// of the key), so the order is well-defined independent of partition.
func emittedLess(x, y emitted) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	if x.query != y.query {
		return !x.query
	}
	if x.query {
		if x.q.ProbeID != y.q.ProbeID {
			return x.q.ProbeID < y.q.ProbeID
		}
		return x.q.Seq < y.q.Seq
	}
	if x.a.Site != y.a.Site {
		return x.a.Site < y.a.Site
	}
	if x.a.Src != y.a.Src {
		return x.a.Src.Less(y.a.Src)
	}
	return x.a.QName < y.a.QName
}

// emitBatchTarget is how many records a shard accumulates before
// shipping a batch to the merger. Batching is a throughput decision,
// not a correctness one: a batch is a concatenation of consecutive
// sorted same-instant groups, so it is itself a sorted run. Too-small
// batches lock-step every shard to within a channel buffer of the
// global merge frontier; 512 records lets shards run far enough ahead
// that the lanes actually execute in parallel.
const emitBatchTarget = 512

// shardEmitter buffers a shard's records for the current virtual
// instant, canonically sorts each completed instant, and ships sorted
// runs to the merger in batches. Within a shard, same-instant event
// execution order still depends on heap insertion order — which
// differs between partitions — so the per-instant sort here (not the
// merge) is what makes a shard's stream partition-independent.
type shardEmitter struct {
	sim   *netsim.Simulator
	out   chan<- []emitted
	at    time.Duration
	count int64 // records pushed, for the lane_records_total counter
	group []emitted
	batch []emitted
}

func (e *shardEmitter) push(rec emitted) {
	if len(e.group) > 0 && rec.at != e.at {
		e.closeGroup()
	}
	e.at = rec.at
	e.count++
	e.group = append(e.group, rec)
}

func (e *shardEmitter) query(r QueryRecord) {
	e.push(emitted{at: e.sim.Now(), query: true, q: r})
}

func (e *shardEmitter) auth(a AuthRecord) {
	e.push(emitted{at: a.At, a: a})
}

// closeGroup sorts the completed instant and appends it to the pending
// batch, shipping the batch once it is large enough.
func (e *shardEmitter) closeGroup() {
	g := e.group
	e.group = e.group[len(e.group):]
	sort.Slice(g, func(i, j int) bool { return emittedLess(g[i], g[j]) })
	e.batch = append(e.batch, g...)
	if len(e.batch) >= emitBatchTarget {
		e.out <- e.batch
		e.batch = nil
		e.group = nil
	}
}

// flush ships everything still buffered; call once after the run.
func (e *shardEmitter) flush() {
	if len(e.group) > 0 {
		e.closeGroup()
	}
	if len(e.batch) > 0 {
		e.out <- e.batch
		e.batch = nil
	}
}

// runShards executes the planned run across the plan's shards — via
// goroutine lanes or worker processes, per cfg.Workers — and feeds the
// merged canonical record stream into emit/emitAuth on the caller's
// goroutine. It returns the merged fault and attack reports (nil
// without the respective schedule) and the run's primary error. When
// snapshotting is configured it checkpoints the merge frontier at
// instant boundaries and, on resume, verifies and skips the
// already-durable prefix.
func runShards(ctx context.Context, cfg RunConfig, pl *runPlan, sched *faults.Schedule, emit func(QueryRecord), emitAuth func(AuthRecord), metrics *obs.Registry) (*faults.Report, *attacks.Report, error) {
	runner, err := laneRunnerFor(cfg, pl)
	if err != nil {
		return nil, nil, err
	}
	sn, err := newSnapshotter(cfg, pl, sched)
	if err != nil {
		return nil, nil, err
	}
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	if sn != nil {
		sn.abort = cancel
	}
	chans := make([]chan []emitted, runner.streams())
	outs := make([]chan<- []emitted, len(chans))
	for i := range chans {
		chans[i] = make(chan []emitted, 8)
		outs[i] = chans[i]
	}
	var (
		reports []laneReport
		runErr  error
		done    = make(chan struct{})
	)
	go func() {
		defer close(done)
		reports, runErr = runner.runLanes(rctx, cancel, cfg, pl, sched, outs, metrics)
	}()
	mergeStreams(chans, func(stream int, rec emitted) {
		if rctx.Err() != nil {
			// A lane failed (or the snapshotter aborted): drain the
			// remaining batches without delivering. Past this point the
			// merge no longer sees every stream's records, so anything
			// it produced would not be a canonical prefix.
			return
		}
		if sn != nil {
			sn.observe(stream, rec)
		}
		if rec.query {
			emit(rec.q)
		} else {
			emitAuth(rec.a)
		}
	})
	<-done
	if runErr != nil {
		if sn != nil {
			sn.failureCheckpoint()
		}
		return nil, nil, runErr
	}
	if sn != nil {
		if err := sn.finish(); err != nil {
			return nil, nil, err
		}
	}
	fr := make([]*faults.Report, len(reports))
	ar := make([]*attacks.Report, len(reports))
	for i, r := range reports {
		fr[i], ar[i] = r.Faults, r.Attacks
	}
	return faults.MergeReports(fr...), attacks.MergeReports(ar...), nil
}

// mergeStreams k-way merges the per-lane (or per-worker) canonical
// streams into deliver. Each stream arrives sorted by (time, record
// key); repeatedly taking the smallest head yields the one global
// canonical order, whatever the stream count. The merge naturally
// paces itself to the slowest stream and the bounded channels
// backpressure fast ones, so memory stays proportional to streams ×
// channel depth, not to the record count.
func mergeStreams(chans []chan []emitted, deliver func(stream int, rec emitted)) {
	type head struct {
		group []emitted
		idx   int
	}
	heads := make([]head, len(chans))
	alive := make([]bool, len(chans))
	for i, ch := range chans {
		if g, ok := <-ch; ok {
			heads[i] = head{group: g}
			alive[i] = true
		}
	}
	for {
		best := -1
		for i := range heads {
			if !alive[i] {
				continue
			}
			if best < 0 || emittedLess(heads[i].group[heads[i].idx], heads[best].group[heads[best].idx]) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		rec := heads[best].group[heads[best].idx]
		deliver(best, rec)
		heads[best].idx++
		if heads[best].idx == len(heads[best].group) {
			if g, ok := <-chans[best]; ok {
				heads[best] = head{group: g}
			} else {
				alive[best] = false
			}
		}
	}
}

// runOneShard builds shard s's world — its own simulator, network,
// authoritative replicas, the shard's resolvers and probes — and runs
// it to completion, streaming canonical batches into out. All
// stochastic decisions are keyed (UseKeyedRand), so the shard computes
// exactly the outcomes the sequential run would for its slice of the
// population. It returns the lane's fault and attack reports (nil
// without the respective schedule) and how many records it emitted.
func runOneShard(ctx context.Context, cfg RunConfig, pl *runPlan, sched *faults.Schedule, s int, out chan<- []emitted, metrics *obs.Registry) (laneReport, int64, error) {
	sim := netsim.NewSimulatorKind(cfg.Scheduler)
	net := netsim.NewNetwork(sim, pl.model, cfg.Seed+1)
	net.LossRate = cfg.LossRate
	net.UseKeyedRand(uint64(cfg.Seed + 1))
	if metrics != nil {
		net.SetMetrics(metrics)
	}
	em := &shardEmitter{sim: sim, out: out}

	// Attack campaigns compile on their own keyed stream (Seed+11),
	// exactly like faults on Seed+7: bot membership, reflector subsets
	// and phases are pure functions of stable entity keys, so every
	// shard layout agrees on who attacks when.
	var tracker *attacks.Tracker
	atkPlan, err := attacks.Compile(cfg.Attacks, cfg.Seed+11)
	if err != nil {
		return laneReport{}, 0, err
	}
	if atkPlan != nil {
		tracker = attacks.NewTracker(atkPlan, metrics)
	}

	// Authoritative sites: replicated into every shard. Their engines
	// keep only per-source state (and measurement runs leave RRL off),
	// so a replica serving a subset of sources behaves exactly like the
	// shared engine would toward those sources. buildAuthSites writes
	// the (already planned, identical) addresses back into its map, so
	// each shard gets a private copy of the plan's map.
	siteAddr := make(map[string]netip.Addr, len(pl.siteAddr))
	for code, addr := range pl.siteAddr {
		siteAddr[code] = addr
	}
	emitAuth := em.auth
	if tracker != nil {
		// Attribute victim-side authoritative load to its campaign by
		// query-name grammar. Reflection is excluded: its victim traffic
		// is the reflected responses, counted at the victim host below.
		emitAuth = func(a AuthRecord) {
			if kind, idx, ok := attacks.Classify(a.QName); ok && kind != attacks.KindReflect {
				tracker.Victim(kind, idx, 0)
			}
			em.auth(a)
		}
	}
	authAddrs, _, err := buildAuthSites(sim, net, cfg.Combo, siteAddr, emitAuth, metrics)
	if err != nil {
		return laneReport{}, 0, err
	}

	clock := simbind.SimClock{Sim: sim}
	zones := []resolver.ZoneServers{{Zone: TestDomain, Servers: authAddrs}}
	if atkPlan != nil && len(cfg.Attacks.NXNS) > 0 {
		// The attacker's name server: replicated per shard like the auth
		// sites, answering every bot query with a crafted glueless
		// referral into the victim zone. Its zone is delegated in the
		// resolver config so bot queries route to it.
		fanouts := make([]int, len(cfg.Attacks.NXNS))
		for i, e := range cfg.Attacks.NXNS {
			fanouts[i] = e.Fanout
		}
		responder := &attacks.ReferralResponder{Zone: attacks.EvilZone, Victim: TestDomain, Fanouts: fanouts}
		evil := net.AddHostAddr(pl.attackerNS, geo.Coord{})
		evil.Handle(func(src, _ netip.Addr, payload []byte) {
			if resp := responder.Respond(payload); resp != nil {
				evil.Send(src, resp)
			}
		})
		zones = append(zones, resolver.ZoneServers{Zone: attacks.EvilZone, Servers: []netip.Addr{pl.attackerNS}})
	}
	var publicMembers []*netsim.Host
	for _, ri := range pl.resolversByShard[s] {
		spec := pl.specs[ri]
		host := net.AddHostAddr(pl.resolverAddr[ri], spec.Loc)
		infra := resolver.NewInfraCache(spec.InfraTTL, spec.Retention)
		if cfg.Backoff != nil {
			infra.SetBackoff(*cfg.Backoff)
		}
		eng := resolver.NewEngine(resolver.Config{
			Policy:          resolver.NewPolicy(spec.Kind),
			Infra:           infra,
			Cache:           resolver.NewRecordCache(),
			Zones:           zones,
			Transport:       simbind.HostTransport{Host: host},
			Clock:           clock,
			RNG:             rand.New(rand.NewSource(cfg.Seed + 1000 + int64(ri))),
			Timeout:         800 * time.Millisecond,
			MaxFetch:        cfg.Defense.MaxFetch,
			DisableNegCache: cfg.Defense.NoNegativeCache,
			Singleflight:    spec.Singleflight,
			QnameMinimize:   spec.QnameMinimize,
			Metrics:         metrics,
		})
		simbind.BindResolver(host, eng)
		if spec.Public {
			publicMembers = append(publicMembers, host)
		}
	}
	if pl.publicAddr.IsValid() && len(publicMembers) > 0 {
		net.AddAnycast(pl.publicAddr, publicMembers)
	}

	// Each shard compiles its own injector against the full global
	// bindings (subset selection is address-keyed, so every shard
	// derives the same affected sets) and samples bursts keyed, so the
	// consult streams line up with the sequential run.
	var inj *faults.Injector
	if !sched.Empty() {
		inj, err = faults.Compile(sched, faults.Bindings{
			SiteAddr:  pl.siteAddr,
			Resolvers: pl.resolverAddr,
		}, cfg.Seed+7)
		if err != nil {
			return laneReport{}, 0, err
		}
		inj.UseKeyedRand(uint64(cfg.Seed + 7))
		if metrics != nil {
			inj.SetMetrics(metrics)
		}
		net.SetFaults(inj)
	}

	type probeRuntime struct {
		planned *plannedProbe
		probe   atlas.Probe
		host    *netsim.Host
		pending map[uint16]*QueryRecord
		rng     *rand.Rand
	}
	for _, ai := range pl.probesByShard[s] {
		ap := &pl.active[ai]
		host := net.AddHostAddr(ap.addr, ap.probe.Loc)
		host.LastMileMs = ap.probe.LastMileMs
		if ap.catchIdx >= 0 {
			member, ok := net.Host(pl.resolverAddr[ap.catchIdx])
			if !ok {
				return laneReport{}, 0, fmt.Errorf("measure: shard %d missing catchment member for probe %d", s, ap.probe.ID)
			}
			net.PinCatchment(ap.addr, pl.publicAddr, member)
		}
		prt := &probeRuntime{
			planned: ap,
			probe:   ap.probe,
			host:    host,
			pending: make(map[uint16]*QueryRecord),
			rng:     rand.New(rand.NewSource(cfg.Seed + 5000 + int64(ap.probe.ID))),
		}
		host.Handle(func(src, _ netip.Addr, payload []byte) {
			msg, err := dnswire.Unpack(payload)
			if err != nil || !msg.Response {
				return
			}
			rec, ok := prt.pending[msg.ID]
			if !ok {
				return
			}
			delete(prt.pending, msg.ID)
			rec.RTTms = float64(sim.Now()-rec.SentAt) / float64(time.Millisecond)
			rec.OK = msg.RCode == dnswire.RCodeNoError && len(msg.Answers) > 0
			if rec.OK {
				if txt, ok := msg.Answers[0].Data.(dnswire.TXT); ok {
					rec.Site = strings.TrimPrefix(txt.Joined(), "site=")
				}
			}
			em.query(*rec)
		})

		// Query schedule: random phase, then fixed cadence. The phase
		// and per-query resolver choice come from the probe's own
		// seeded stream, untouched by sharding.
		phase := time.Duration(prt.rng.Int63n(int64(cfg.Interval)))
		seq := 0
		var tick func()
		tick = func() {
			if sim.Now() >= cfg.Duration {
				return
			}
			rpos := prt.rng.Intn(len(prt.probe.Resolvers))
			ridx := prt.probe.Resolvers[rpos]
			raddr := pl.publicAddr
			if !atlas.PublicMarker(ridx) {
				raddr = pl.resolverAddr[ridx]
			}
			if !raddr.IsValid() {
				return
			}
			label := prt.planned.labelPrefix + strconv.Itoa(seq)
			qname, err := TestDomain.Child(label)
			if err != nil {
				return
			}
			id := uint16(seq)
			q := dnswire.NewQuery(id, qname, dnswire.TypeTXT)
			wire, err := q.Pack()
			if err != nil {
				return
			}
			rec := &QueryRecord{
				ProbeID:   prt.probe.ID,
				Resolver:  raddr,
				VPKey:     prt.planned.vpKeys[rpos],
				Continent: prt.probe.Continent,
				Seq:       seq,
				SentAt:    sim.Now(),
			}
			prt.pending[id] = rec
			prt.host.Send(raddr, wire)
			// Client-side timeout: record the failure.
			sim.Schedule(cfg.ClientTimeout, func() {
				if r, still := prt.pending[id]; still && r == rec {
					delete(prt.pending, id)
					rec.RTTms = float64(cfg.ClientTimeout) / float64(time.Millisecond)
					em.query(*rec)
				}
			})
			seq++
			sim.Schedule(cfg.Interval, tick)
		}
		sim.Schedule(phase, tick)

		if atkPlan != nil {
			scheduleAttackBots(sim, cfg, pl, atkPlan, tracker, host, ap.probe)
		}
	}

	if atkPlan != nil && len(cfg.Attacks.Reflections) > 0 {
		// Spoofed-source reflection: the sender host forges the victim's
		// address on queries to open resolvers, which reflect their
		// (cached, larger) responses at the victim. Reflector membership
		// is keyed by resolver address, so each shard drives exactly the
		// reflectors it owns and the union over any layout is identical.
		refl := net.AddHostAddr(pl.reflectSrc, geo.Coord{})
		victim := net.AddHostAddr(pl.reflectDst, geo.Coord{})
		victim.Handle(func(_, _ netip.Addr, payload []byte) {
			msg, err := dnswire.Unpack(payload)
			if err != nil || !msg.Response {
				return
			}
			q, ok := msg.Question()
			if !ok {
				return
			}
			if kind, idx, cok := attacks.Classify(q.Name.Key()); cok && kind == attacks.KindReflect {
				tracker.Victim(kind, idx, len(payload))
			}
		})
		for i := range cfg.Attacks.Reflections {
			e := cfg.Attacks.Reflections[i]
			qname, qerr := TestDomain.Child(attacks.ReflectLabel(i))
			if qerr != nil {
				continue
			}
			for _, ri := range pl.resolversByShard[s] {
				raddr := pl.resolverAddr[ri]
				if !atkPlan.Reflector(i, raddr) {
					continue
				}
				tracker.AddBot(attacks.KindReflect, i)
				phase := atkPlan.Phase(attacks.KindReflect, i, raddr.String(), e.Interval)
				scheduleBotTicks(sim, cfg, e.Start, e.End, e.Interval, phase, func(seq int) {
					q := dnswire.NewQuery(attackQueryID(seq), qname, dnswire.TypeTXT)
					wire, err := q.Pack()
					if err != nil {
						return
					}
					tracker.Attack(attacks.KindReflect, i, len(wire))
					refl.SendSpoofed(pl.reflectDst, raddr, wire)
				})
			}
		}
	}

	// Test-only seam: a lane failure injected at a virtual instant, for
	// the sibling-cancellation regression test. Scheduling it last keeps
	// it off every production path (the hook is nil outside tests).
	runCtx := ctx
	if hook := testLaneFail; hook != nil {
		if at, ferr := hook(cfg, s); ferr != nil {
			var fail context.CancelCauseFunc
			runCtx, fail = context.WithCancelCause(ctx)
			defer fail(nil)
			sim.Schedule(at, func() { fail(ferr) })
		}
	}
	if err := sim.RunUntilContext(runCtx, cfg.Duration+cfg.ClientTimeout+time.Second); err != nil {
		if cause := context.Cause(runCtx); cause != nil && !errors.Is(cause, context.Canceled) {
			err = cause
		}
		return laneReport{}, em.count, err
	}
	em.flush()
	lr := laneReport{Attacks: tracker.Report()}
	if inj != nil {
		lr.Faults = inj.Report()
	}
	return lr, em.count, nil
}

// attackQueryID maps an attack-tick sequence number into the upper
// half of the DNS ID space. Probe measurement queries use IDs equal to
// their (small) sequence numbers, so attack replies arriving at a
// shared bot host never match a pending measurement record.
func attackQueryID(seq int) uint16 { return 0x8000 | uint16(seq&0x7fff) }

// scheduleBotTicks drives one bot's fixed-cadence loop inside the
// campaign window [start, end): first fire at start+phase, then every
// interval, stopping at the window's end or the run's end.
func scheduleBotTicks(sim *netsim.Simulator, cfg RunConfig, start, end, interval, phase time.Duration, fire func(seq int)) {
	seq := 0
	var tick func()
	tick = func() {
		if sim.Now() >= end || sim.Now() >= cfg.Duration {
			return
		}
		fire(seq)
		seq++
		sim.Schedule(interval, tick)
	}
	sim.Schedule(start+phase, tick)
}

// scheduleAttackBots enrolls one probe's host into every NXNS and
// water-torture campaign that keyed-selected it. Bots send through the
// probe's first resolver choice (deterministic, not the measurement
// RNG) with high-half query IDs; replies fall through the probe's
// pending lookup and are discarded, so bot traffic never perturbs the
// probe's own measurement records.
func scheduleAttackBots(sim *netsim.Simulator, cfg RunConfig, pl *runPlan, atkPlan *attacks.Plan, tracker *attacks.Tracker, host *netsim.Host, probe atlas.Probe) {
	ridx := probe.Resolvers[0]
	raddr := pl.publicAddr
	if !atlas.PublicMarker(ridx) {
		raddr = pl.resolverAddr[ridx]
	}
	if !raddr.IsValid() {
		return
	}
	entity := "p" + strconv.Itoa(probe.ID)
	send := func(kind string, idx int, qname dnswire.Name, typ dnswire.Type, seq int) {
		q := dnswire.NewQuery(attackQueryID(seq), qname, typ)
		wire, err := q.Pack()
		if err != nil {
			return
		}
		tracker.Attack(kind, idx, len(wire))
		host.Send(raddr, wire)
	}
	for i := range cfg.Attacks.NXNS {
		e := cfg.Attacks.NXNS[i]
		if !atkPlan.NXNSBot(i, probe.ID) {
			continue
		}
		tracker.AddBot(attacks.KindNXNS, i)
		phase := atkPlan.Phase(attacks.KindNXNS, i, entity, e.Interval)
		scheduleBotTicks(sim, cfg, e.Start, e.End, e.Interval, phase, func(seq int) {
			qname, err := attacks.EvilZone.Child(attacks.NXNSQueryLabel(i, probe.ID, seq))
			if err != nil {
				return
			}
			send(attacks.KindNXNS, i, qname, dnswire.TypeA, seq)
		})
	}
	for i := range cfg.Attacks.Floods {
		e := cfg.Attacks.Floods[i]
		if !atkPlan.FloodBot(i, probe.ID) {
			continue
		}
		tracker.AddBot(attacks.KindFlood, i)
		phase := atkPlan.Phase(attacks.KindFlood, i, entity, e.Interval)
		scheduleBotTicks(sim, cfg, e.Start, e.End, e.Interval, phase, func(seq int) {
			pool := seq
			if e.Names > 0 {
				pool = seq % e.Names
			}
			qname, err := TestDomain.Child(attacks.FloodLabel(i, probe.ID, pool))
			if err != nil {
				return
			}
			send(attacks.KindFlood, i, qname, dnswire.TypeA, seq)
		})
	}
}
