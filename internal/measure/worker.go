package measure

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/attacks"
	"ritw/internal/faults"
	"ritw/internal/geo"
	"ritw/internal/lanewire"
	"ritw/internal/netsim"
	"ritw/internal/obs"
	"ritw/internal/resolver"
)

// This file is the out-of-process lane backend (DESIGN.md §8.7). With
// RunConfig.Workers > 0 the lanes run inside `ritw lane-worker`
// subprocesses: the parent re-execs its own binary once per worker,
// hands each a laneJob over stdin, and reads the lanewire record
// stream back over stdout. Every worker pre-merges its assigned lanes
// into one canonical stream (merging under a total order is
// associative, so the grouping cannot change the final sequence), the
// parent k-way merges the worker streams, and the dataset comes out
// byte-identical to the in-process run — the same contract the shard
// layer already pins for lane counts, extended to process layouts.

// LaneWorkerCommand is the hidden argv[1] the parent passes when
// re-execing itself as a lane worker. Binaries embedding this package
// must give MaybeRunLaneWorker a chance to intercept it before their
// own argument parsing (ritw's main and the test binaries' TestMain
// both do).
const LaneWorkerCommand = "lane-worker"

// laneWorkerEnv marks a process as a worker. The parent sets it
// explicitly for the child; requiring env AND argv means a stray
// exported variable can never hijack a normal invocation.
const laneWorkerEnv = "RITW_LANE_WORKER"

// laneJobVersion guards the job-spec layout, separately from the
// lanewire frame version.
const laneJobVersion = 1

// laneJob is the complete run description a worker needs to rebuild
// its lanes' worlds from scratch: the resolved population config (not
// the parent's RunConfig, whose zero fields have already been
// defaulted), the planned layout, and which lanes this worker owns.
// It travels as JSON inside a FrameJob — control frames are not on
// the hot path, and Go's JSON round-trips every field here exactly.
type laneJob struct {
	Version int
	Worker  int
	Shards  int
	Lanes   []int
	// Obs asks the worker to keep a local obs registry and ship its
	// snapshot in the worker-done frame.
	Obs bool
	// CrashAfterBatches / CrashAfterLaneDones, when positive, make the
	// worker exit(3) right after writing that many batch / lane-done
	// frames — the test seam for kill-and-resume coverage (set via
	// testWorkerCrash, never in production).
	CrashAfterBatches   int `json:",omitempty"`
	CrashAfterLaneDones int `json:",omitempty"`

	Combo         Combination
	Interval      time.Duration
	Duration      time.Duration
	Seed          int64
	Population    atlas.Config
	ChurnRate     float64
	LossRate      float64
	ClientTimeout time.Duration
	IPv6Subset    bool
	Model         geo.PathModel
	Faults        *faults.Schedule
	Backoff       *resolver.BackoffConfig
	Scheduler     uint8
	// Attacks/Defense are pointers with omitempty so attack-free jobs
	// serialize exactly as they did before attacks existed — which keeps
	// runFingerprint, and therefore old snapshots, valid.
	Attacks *attacks.Schedule `json:",omitempty"`
	Defense *attacks.Defenses `json:",omitempty"`
	// Mix is omitempty for the same reason: mix-free jobs serialize
	// exactly as they did before fleet mixes existed.
	Mix []atlas.PolicyShare `json:",omitempty"`
}

// laneJobFor captures the resolved run parameters. Faults is the
// already-merged schedule (Outage folded in by RunContext), and
// Population comes from the plan, so worker and parent cannot drift on
// defaulting.
func laneJobFor(cfg RunConfig, pl *runPlan, sched *faults.Schedule) laneJob {
	j := laneJob{
		Version:       laneJobVersion,
		Shards:        pl.nShards,
		Combo:         cfg.Combo,
		Interval:      cfg.Interval,
		Duration:      cfg.Duration,
		Seed:          cfg.Seed,
		Population:    pl.popCfg,
		ChurnRate:     cfg.ChurnRate,
		LossRate:      cfg.LossRate,
		ClientTimeout: cfg.ClientTimeout,
		IPv6Subset:    cfg.IPv6Subset,
		Model:         pl.model,
		Faults:        sched,
		Backoff:       cfg.Backoff,
		Scheduler:     uint8(cfg.Scheduler),
	}
	if !cfg.Attacks.Empty() {
		j.Attacks = cfg.Attacks
	}
	if cfg.Defense != (attacks.Defenses{}) {
		d := cfg.Defense
		j.Defense = &d
	}
	if len(cfg.Mix) > 0 {
		j.Mix = cfg.Mix
	}
	return j
}

// runConfig rebuilds the worker-side RunConfig from the job.
func (j *laneJob) runConfig() RunConfig {
	cfg := RunConfig{
		Combo:         j.Combo,
		Interval:      j.Interval,
		Duration:      j.Duration,
		Seed:          j.Seed,
		Population:    j.Population,
		ChurnRate:     j.ChurnRate,
		LossRate:      j.LossRate,
		ClientTimeout: j.ClientTimeout,
		IPv6Subset:    j.IPv6Subset,
		Backoff:       j.Backoff,
		Scheduler:     netsim.SchedulerKind(j.Scheduler),
	}
	cfg.Attacks = j.Attacks
	if j.Defense != nil {
		cfg.Defense = *j.Defense
	}
	cfg.Mix = j.Mix
	return cfg
}

// runFingerprint hashes the stream-shaping parameters for snapshot
// compatibility checks. Layout fields (shards, workers, scheduler) are
// excluded because byte-identity makes layouts interchangeable, and
// Duration is excluded because the simulation is causal: a longer run
// reproduces a shorter run's stream as a prefix, which is what allows
// extending a finished replay from its snapshot.
func runFingerprint(cfg RunConfig, pl *runPlan, sched *faults.Schedule) uint64 {
	j := laneJobFor(cfg, pl, sched)
	j.Shards = 0
	j.Duration = 0
	j.Scheduler = 0
	b, err := json.Marshal(&j)
	if err != nil {
		// Every field is a plain value; Marshal cannot fail on them.
		panic("measure: fingerprinting lane job: " + err.Error())
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// laneDoneMsg reports one finished lane (FrameLaneDone payload). It is
// written the moment the lane's simulation settles — not at worker
// exit — so a worker that dies later still leaves the parent this
// lane's report (WorkerError.Partial).
type laneDoneMsg struct {
	Lane    int
	Records int64
	WallNs  int64
	Report  *faults.Report
	Attacks *attacks.Report `json:",omitempty"`
}

// workerDoneMsg ends a worker's stream (FrameWorkerDone payload).
type workerDoneMsg struct {
	Obs *obs.Snapshot
}

// errorMsg carries a worker-side failure (FrameError payload).
type errorMsg struct {
	Error string
}

// WorkerError is a lane-worker subprocess failure: crash, protocol
// corruption, or a lane error inside the worker. Partial carries the
// merged fault reports of the lanes that finished before the failure,
// so long campaigns keep the evidence they already earned.
type WorkerError struct {
	// Worker is the failed worker's index.
	Worker int
	// Lanes are the lanes the worker was assigned; Done the subset that
	// completed (lane-done received) before the failure.
	Lanes []int
	Done  []int
	// Partial merges the fault reports of Done (nil when the run has no
	// fault schedule).
	Partial *faults.Report
	// Err is the underlying failure.
	Err error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("measure: lane worker %d (lanes %v, %d finished): %v",
		e.Worker, e.Lanes, len(e.Done), e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// testWorkerCrash, when set (tests only), injects crash points into
// each spawned worker's job; see laneJob.CrashAfterBatches.
var testWorkerCrash func(worker int) (batches, laneDones int)

// processLanes is the multi-process backend: lanes round-robined over
// `workers` subprocesses, one sorted stream per worker.
type processLanes struct {
	exe     string
	workers int
	lanes   int
}

func newProcessLanes(workers, lanes int) (*processLanes, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("measure: locating worker executable: %w", err)
	}
	return &processLanes{exe: exe, workers: workers, lanes: lanes}, nil
}

func (p *processLanes) streams() int { return p.workers }

func (p *processLanes) runLanes(ctx context.Context, cancel context.CancelCauseFunc, cfg RunConfig, pl *runPlan, sched *faults.Schedule, outs []chan<- []emitted, metrics *obs.Registry) ([]laneReport, error) {
	base := laneJobFor(cfg, pl, sched)
	assign := make([][]int, p.workers)
	for l := 0; l < p.lanes; l++ {
		assign[l%p.workers] = append(assign[l%p.workers], l)
	}
	reports := make([]laneReport, p.lanes)
	errs := make([]error, p.workers)
	var wg sync.WaitGroup
	for w := range assign {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Cancel before close: sibling workers (killed via their
			// CommandContext) and the parent merge both see the failure
			// before this stream ends, so the snapshotter never
			// checkpoints a post-crash suffix as if it were canonical.
			defer close(outs[w])
			errs[w] = p.runWorker(ctx, base, w, assign[w], outs[w], reports, metrics)
			if errs[w] != nil {
				cancel(errs[w])
			}
		}(w)
	}
	wg.Wait()
	return reports, firstLaneError(ctx, errs)
}

// runWorker spawns one subprocess, feeds it its job, and pumps its
// stream: batches to the merger, lane-dones into reports/metrics, the
// final registry snapshot into metrics.
func (p *processLanes) runWorker(ctx context.Context, job laneJob, w int, lanes []int, out chan<- []emitted, reports []laneReport, metrics *obs.Registry) error {
	job.Worker = w
	job.Lanes = lanes
	job.Obs = metrics != nil
	if hook := testWorkerCrash; hook != nil {
		job.CrashAfterBatches, job.CrashAfterLaneDones = hook(w)
	}
	payload, err := json.Marshal(&job)
	if err != nil {
		return err
	}

	cmd := exec.CommandContext(ctx, p.exe, LaneWorkerCommand)
	cmd.Env = append(os.Environ(), laneWorkerEnv+"=1")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("measure: starting lane worker %d: %w", w, err)
	}

	jw := lanewire.NewWriter(stdin)
	jobErr := jw.WriteFrame(lanewire.FrameJob, 0, payload)
	stdin.Close()

	var done []int
	var partials []*faults.Report
	loopErr := jobErr
	jr := lanewire.NewReader(stdout)
read:
	for loopErr == nil {
		fr, ferr := jr.ReadFrame()
		if ferr != nil {
			loopErr = ferr
			break
		}
		switch fr.Type {
		case lanewire.FrameBatch:
			recs, derr := lanewire.DecodeBatch(fr.Payload)
			if derr != nil {
				loopErr = derr
				break read
			}
			batch := make([]emitted, len(recs))
			for i := range recs {
				batch[i] = emittedFromWire(&recs[i])
			}
			out <- batch
		case lanewire.FrameLaneDone:
			var ld laneDoneMsg
			if derr := json.Unmarshal(fr.Payload, &ld); derr != nil {
				loopErr = derr
				break read
			}
			if ld.Lane < 0 || ld.Lane >= len(reports) {
				loopErr = fmt.Errorf("lane-done for unknown lane %d", ld.Lane)
				break read
			}
			reports[ld.Lane] = laneReport{Faults: ld.Report, Attacks: ld.Attacks}
			if ld.Report != nil {
				partials = append(partials, ld.Report)
			}
			done = append(done, ld.Lane)
			observeLane(metrics, ld.Lane, ld.Records, time.Duration(ld.WallNs))
		case lanewire.FrameWorkerDone:
			var wd workerDoneMsg
			if derr := json.Unmarshal(fr.Payload, &wd); derr != nil {
				loopErr = derr
				break read
			}
			if wd.Obs != nil && metrics != nil {
				if merr := metrics.Merge(*wd.Obs); merr != nil {
					loopErr = merr
				}
			}
			break read
		case lanewire.FrameError:
			var em errorMsg
			if json.Unmarshal(fr.Payload, &em) == nil && em.Error != "" {
				loopErr = errors.New(em.Error)
			} else {
				loopErr = fmt.Errorf("worker reported an unparseable error: %q", fr.Payload)
			}
			break read
		default:
			loopErr = fmt.Errorf("unexpected frame type %d", fr.Type)
			break read
		}
	}
	waitErr := cmd.Wait()

	if errors.Is(loopErr, io.EOF) {
		// Stream ended before worker-done: the process died mid-run.
		if waitErr != nil {
			loopErr = fmt.Errorf("exited before finishing: %w", waitErr)
		} else {
			loopErr = fmt.Errorf("stream ended before worker-done: %w", io.ErrUnexpectedEOF)
		}
	}
	if loopErr == nil && waitErr != nil {
		loopErr = waitErr
	}
	if loopErr == nil && len(done) != len(lanes) {
		loopErr = fmt.Errorf("worker finished having reported %d of %d lanes", len(done), len(lanes))
	}
	if loopErr == nil {
		return nil
	}
	if ctx.Err() != nil {
		// The parent cancelled (a sibling failed, or the run's caller
		// gave up) and CommandContext killed the child: report the
		// cancellation, not the kill's artifacts. firstLaneError
		// resolves the true cause from the context.
		return ctx.Err()
	}
	return &WorkerError{
		Worker:  w,
		Lanes:   lanes,
		Done:    done,
		Partial: faults.MergeReports(partials...),
		Err:     loopErr,
	}
}

// MaybeRunLaneWorker checks whether this process was spawned as a lane
// worker (argv[1] == LaneWorkerCommand and the worker env marker set)
// and, if so, runs the worker protocol over stdin/stdout and exits.
// Call it first thing in main() — and in TestMain for any test binary
// whose package spawns workers, since tests re-exec the test binary.
func MaybeRunLaneWorker() bool {
	if os.Getenv(laneWorkerEnv) != "1" || len(os.Args) < 2 || os.Args[1] != LaneWorkerCommand {
		return false
	}
	if err := RunLaneWorker(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ritw lane-worker: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
	return true // unreachable
}

// workerWriter serializes frame writes from the merge goroutine
// (batches) and the lane goroutines (lane-dones), flushing after every
// frame so the parent sees progress — and partial results survive a
// crash. It also hosts the injected-crash countdowns.
type workerWriter struct {
	mu      sync.Mutex
	w       *lanewire.Writer
	flush   func() error
	err     error
	batches int
	dones   int
	crashB  int
	crashD  int
}

func (ww *workerWriter) frame(t lanewire.FrameType, lane int, payload []byte) {
	ww.mu.Lock()
	defer ww.mu.Unlock()
	if ww.err != nil {
		return
	}
	if err := ww.w.WriteFrame(t, lane, payload); err != nil {
		ww.err = err
		return
	}
	if err := ww.flush(); err != nil {
		ww.err = err
		return
	}
	switch t {
	case lanewire.FrameBatch:
		ww.batches++
		if ww.crashB > 0 && ww.batches >= ww.crashB {
			os.Exit(3) // injected crash: simulates a SIGKILLed worker
		}
	case lanewire.FrameLaneDone:
		ww.dones++
		if ww.crashD > 0 && ww.dones >= ww.crashD {
			os.Exit(3)
		}
	}
}

// RunLaneWorker is the worker-process side of the protocol: read one
// job frame, run the assigned lanes pre-merged into one canonical
// stream of batch frames, report each lane as it finishes, then send
// the worker-done frame (with the local obs snapshot) and return.
func RunLaneWorker(in io.Reader, out io.Writer) error {
	jr := lanewire.NewReader(in)
	fr, err := jr.ReadFrame()
	if err != nil {
		return fmt.Errorf("reading job: %w", err)
	}
	if fr.Type != lanewire.FrameJob {
		return fmt.Errorf("first frame is type %d, want job", fr.Type)
	}
	var job laneJob
	if err := json.Unmarshal(fr.Payload, &job); err != nil {
		return fmt.Errorf("parsing job: %w", err)
	}
	if job.Version != laneJobVersion {
		return fmt.Errorf("job version %d, this worker speaks %d", job.Version, laneJobVersion)
	}

	cfg := job.runConfig()
	pop, err := atlas.Generate(job.Population)
	if err != nil {
		return err
	}
	pl := planRun(cfg, pop, job.Model, job.Shards)
	pl.popCfg = job.Population
	for _, l := range job.Lanes {
		if l < 0 || l >= pl.nShards {
			return fmt.Errorf("assigned lane %d outside 0..%d", l, pl.nShards-1)
		}
	}
	var reg *obs.Registry
	if job.Obs {
		reg = obs.NewRegistry()
	}

	bw := bufio.NewWriterSize(out, 64<<10)
	ww := &workerWriter{
		w:      lanewire.NewWriter(bw),
		flush:  bw.Flush,
		crashB: job.CrashAfterBatches,
		crashD: job.CrashAfterLaneDones,
	}

	// Run the assigned lanes exactly like goroutineLanes would, but
	// merge locally and ship the merged stream as batch frames.
	lctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	chans := make([]chan []emitted, len(job.Lanes))
	errs := make([]error, len(job.Lanes))
	var wg sync.WaitGroup
	for i, lane := range job.Lanes {
		chans[i] = make(chan []emitted, 8)
		wg.Add(1)
		go func(i, lane int) {
			defer wg.Done()
			defer close(chans[i])
			start := time.Now()
			report, n, err := runOneShard(lctx, cfg, pl, job.Faults, lane, chans[i], reg)
			errs[i] = err
			if err != nil {
				cancel(err)
				return
			}
			// Report the lane immediately — not at worker exit — so a
			// later crash still leaves the parent this lane's results.
			payload, merr := json.Marshal(&laneDoneMsg{
				Lane:    lane,
				Records: n,
				WallNs:  int64(time.Since(start)),
				Report:  report.Faults,
				Attacks: report.Attacks,
			})
			if merr != nil {
				errs[i] = merr
				cancel(merr)
				return
			}
			ww.frame(lanewire.FrameLaneDone, lane, payload)
		}(i, lane)
	}

	var batch []emitted
	var wire []lanewire.Record
	ship := func() {
		wire = wire[:0]
		for i := range batch {
			wire = append(wire, wireFromEmitted(&batch[i]))
		}
		ww.frame(lanewire.FrameBatch, 0, lanewire.AppendBatch(nil, wire))
		batch = batch[:0]
	}
	mergeStreams(chans, func(_ int, rec emitted) {
		if lctx.Err() != nil || ww.err != nil {
			return // drain without shipping; the error frame follows
		}
		batch = append(batch, rec)
		if len(batch) >= emitBatchTarget {
			ship()
		}
	})
	wg.Wait()

	if err := firstLaneError(lctx, errs); err != nil {
		payload, _ := json.Marshal(&errorMsg{Error: err.Error()})
		ww.frame(lanewire.FrameError, 0, payload)
		return err
	}
	if len(batch) > 0 {
		ship()
	}
	var snap *obs.Snapshot
	if reg != nil {
		s := reg.Snapshot()
		snap = &s
	}
	payload, err := json.Marshal(&workerDoneMsg{Obs: snap})
	if err != nil {
		return err
	}
	ww.frame(lanewire.FrameWorkerDone, 0, payload)
	return ww.err
}

// wireFromEmitted / emittedFromWire convert between the engine's
// internal record representation and the lanewire mirror types (the
// mirror exists so lanewire does not import measure).
func wireFromEmitted(rec *emitted) lanewire.Record {
	w := lanewire.Record{At: rec.at, IsQuery: rec.query}
	if rec.query {
		w.Q = lanewire.Query{
			ProbeID:   rec.q.ProbeID,
			Resolver:  rec.q.Resolver,
			VPKey:     rec.q.VPKey,
			Continent: rec.q.Continent,
			Seq:       rec.q.Seq,
			SentAt:    rec.q.SentAt,
			RTTms:     rec.q.RTTms,
			Site:      rec.q.Site,
			OK:        rec.q.OK,
		}
	} else {
		w.A = lanewire.Auth{
			Site:  rec.a.Site,
			Src:   rec.a.Src,
			QName: rec.a.QName,
			At:    rec.a.At,
		}
	}
	return w
}

func emittedFromWire(w *lanewire.Record) emitted {
	rec := emitted{at: w.At, query: w.IsQuery}
	if w.IsQuery {
		rec.q = QueryRecord{
			ProbeID:   w.Q.ProbeID,
			Resolver:  w.Q.Resolver,
			VPKey:     w.Q.VPKey,
			Continent: w.Q.Continent,
			Seq:       w.Q.Seq,
			SentAt:    w.Q.SentAt,
			RTTms:     w.Q.RTTms,
			Site:      w.Q.Site,
			OK:        w.Q.OK,
		}
	} else {
		rec.a = AuthRecord{
			Site:  w.A.Site,
			Src:   w.A.Src,
			QName: w.A.QName,
			At:    w.A.At,
		}
	}
	return rec
}
