package measure

import (
	"bytes"
	"os"
	"reflect"
	"testing"
	"time"

	"ritw/internal/attacks"
	"ritw/internal/obs"
)

// attackCfg builds a 2B run carrying the given attack schedule and
// defense matrix.
func attackCfg(t *testing.T, probes int, seed int64, sched *attacks.Schedule, def attacks.Defenses) RunConfig {
	t.Helper()
	cfg := shardCfg(t, "2B", probes, seed)
	cfg.Attacks = sched
	cfg.Defense = def
	return cfg
}

// allKindsSchedule exercises every attack family in one run, with
// windows inside the 20-minute shardCfg duration.
func allKindsSchedule() *attacks.Schedule {
	return &attacks.Schedule{
		NXNS: []attacks.NXNS{{
			Start: 5 * time.Minute, End: 15 * time.Minute,
			Interval: 20 * time.Second, Fraction: 0.25, Fanout: 8,
		}},
		Floods: []attacks.Flood{{
			Start: 4 * time.Minute, End: 16 * time.Minute,
			Interval: 10 * time.Second, Fraction: 0.3, Names: 20,
		}},
		Reflections: []attacks.Reflection{{
			Start: 6 * time.Minute, End: 14 * time.Minute,
			Interval: 10 * time.Second, Fraction: 0.5,
		}},
	}
}

// TestAttackScheduleDeterminism pins the tentpole's contract: the same
// seed and the same attack schedule reproduce the dataset byte for
// byte, attack ledger included — campaigns compile on their own keyed
// stream (Seed+11) and never touch shared state.
func TestAttackScheduleDeterminism(t *testing.T) {
	t.Parallel()
	run := func() (*Dataset, []byte) {
		ds, err := Run(attackCfg(t, 150, 23, allKindsSchedule(), attacks.Defenses{MaxFetch: 3}))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return ds, buf.Bytes()
	}
	ds1, csv1 := run()
	ds2, csv2 := run()
	if !bytes.Equal(csv1, csv2) {
		t.Fatal("same seed + same attack schedule produced different datasets")
	}
	if ds1.Attacks == nil || ds2.Attacks == nil {
		t.Fatal("attacked runs should carry an attack ledger")
	}
	if !reflect.DeepEqual(ds1.Attacks, ds2.Attacks) {
		t.Fatalf("attack ledgers diverged:\n%+v\n%+v", ds1.Attacks, ds2.Attacks)
	}
	if len(ds1.Attacks.Entries) != 3 {
		t.Fatalf("want one ledger entry per campaign, got %d", len(ds1.Attacks.Entries))
	}
	for _, e := range ds1.Attacks.Entries {
		if e.Bots == 0 || e.AttackQueries == 0 {
			t.Errorf("%s#%d: no attack traffic recorded: %+v", e.Kind, e.Index, e)
		}
	}
}

// TestAttackShardWorkerIdentity is the acceptance gate for the attack
// battery's layout independence: with campaigns of every kind and a
// live defense matrix, the sequential lane, a 4-shard run, and a
// 4-shard run split over 2 lane-worker subprocesses must emit the
// exact same bytes.
func TestAttackShardWorkerIdentity(t *testing.T) {
	cfg := attackCfg(t, 150, 23, allKindsSchedule(), attacks.Defenses{MaxFetch: 2})
	seq, seqDS := runToCSV(t, cfg)

	cfg.Shards = 4
	sharded, shardDS := runToCSV(t, cfg)
	if !bytes.Equal(seq, sharded) {
		t.Errorf("4-shard attack run diverged from sequential: %s", firstDiff(sharded, seq))
	}
	if !reflect.DeepEqual(seqDS.Attacks, shardDS.Attacks) {
		t.Errorf("sharded attack ledger diverged:\n%+v\n%+v", shardDS.Attacks, seqDS.Attacks)
	}

	cfg.Workers = 2
	workers, workDS := runToCSV(t, cfg)
	if !bytes.Equal(seq, workers) {
		t.Errorf("2-worker attack run diverged from sequential: %s", firstDiff(workers, seq))
	}
	if !reflect.DeepEqual(seqDS.Attacks, workDS.Attacks) {
		t.Errorf("worker attack ledger diverged:\n%+v\n%+v", workDS.Attacks, seqDS.Attacks)
	}
}

// TestAttackFreeRunUnchanged guards the gating: a nil schedule and an
// empty non-nil schedule must both skip attack setup entirely and
// reproduce the plain run's bytes — adding the attacks package must
// not perturb a single benign record.
func TestAttackFreeRunUnchanged(t *testing.T) {
	t.Parallel()
	plain := shardCfg(t, "2B", 120, 23)
	base, baseDS := runToCSV(t, plain)
	empty := attackCfg(t, 120, 23, &attacks.Schedule{}, attacks.Defenses{})
	got, gotDS := runToCSV(t, empty)
	if !bytes.Equal(base, got) {
		t.Errorf("empty attack schedule perturbed the run: %s", firstDiff(got, base))
	}
	if baseDS.Attacks != nil || gotDS.Attacks != nil {
		t.Errorf("attack-free runs should carry no ledger, got %+v and %+v", baseDS.Attacks, gotDS.Attacks)
	}
}

// floodVictim runs a water-torture-only config and returns the
// victim-side ledger entry plus the resolver negative-cache hit count.
func floodVictim(t *testing.T, noNegCache bool) (attacks.EntryReport, int64) {
	t.Helper()
	sched := &attacks.Schedule{
		Floods: []attacks.Flood{{
			Start: 2 * time.Minute, End: 18 * time.Minute,
			Interval: 5 * time.Second, Fraction: 0.4, Names: 10,
		}},
	}
	cfg := attackCfg(t, 150, 31, sched, attacks.Defenses{NoNegativeCache: noNegCache})
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	ds, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attacks == nil || len(ds.Attacks.Entries) != 1 {
		t.Fatalf("want one flood ledger entry, got %+v", ds.Attacks)
	}
	return ds.Attacks.Entries[0], reg.Snapshot().Counter("resolver_negcache_hits_total")
}

// TestFloodNegativeCacheRegression is the negative-cache regression
// pin at the measurement level: a repeated-name water-torture flood
// against RFC 2308-faithful resolvers must be served mostly from
// negative cache entries (each of a bot's pool names costs one
// upstream query per negTTL, not one per query), while disabling the
// cache forwards the full flood to the victim's authoritatives.
func TestFloodNegativeCacheRegression(t *testing.T) {
	t.Parallel()
	defended, negHits := floodVictim(t, false)
	undefended, offHits := floodVictim(t, true)

	if negHits == 0 {
		t.Error("flood with negative caching recorded no resolver_negcache_hits_total")
	}
	if offHits != 0 {
		t.Errorf("flood with caching disabled still recorded %d negative-cache hits", offHits)
	}
	if defended.AttackQueries != undefended.AttackQueries {
		t.Fatalf("bot-side load should not depend on the defense: %d vs %d",
			defended.AttackQueries, undefended.AttackQueries)
	}
	if undefended.VictimQueries < defended.VictimQueries*2 {
		t.Errorf("negative caching absorbed too little: victim saw %d queries defended, %d undefended",
			defended.VictimQueries, undefended.VictimQueries)
	}
	// Every repeated name should be answered upstream at most once per
	// negTTL (300s here): the defended victim load stays a small
	// fraction of the bot load.
	if 2*defended.VictimQueries > undefended.VictimQueries+defended.VictimQueries {
		t.Errorf("defended victim load %d should be well under the undefended %d",
			defended.VictimQueries, undefended.VictimQueries)
	}
}

// Amplification bounds for the gated NXNS regression test. The
// undefended floor is paper-class: NXNSAttack reports per-query
// amplification proportional to the crafted referral fanout, so an
// undefended resolver chasing a fanout-12 referral must multiply the
// bot load by at least 10x (slack covers the campaign edge where a
// query lands after the window closes). The defended ceiling pins the
// MaxFetch budget: at MaxFetch=2 the victim sees at most 2 fetches per
// bot query plus rounding slack.
const (
	nxnsUndefendedFloor = 10.0
	nxnsMaxFetchCeiling = 2.05
)

// TestBenchGateAmplification is the CI amplification-bound gate: with
// the MaxFetch defense enabled, NXNS amplification stays under the
// checked-in ceiling, while the undefended run exceeds the paper-class
// floor — so a regression in either the attack generator (amplifier
// quietly weakened) or the defense (budget quietly bypassed) fails the
// gate. Gated behind RITW_BENCH_GATE=1.
func TestBenchGateAmplification(t *testing.T) {
	if os.Getenv("RITW_BENCH_GATE") == "" {
		t.Skip("set RITW_BENCH_GATE=1 to run the bench regression gate")
	}
	sched := &attacks.Schedule{
		NXNS: []attacks.NXNS{{
			Start: 2 * time.Minute, End: 18 * time.Minute,
			Interval: 10 * time.Second, Fraction: 0.3, Fanout: 12,
		}},
	}
	amp := func(def attacks.Defenses) float64 {
		ds, err := Run(attackCfg(t, 150, 47, sched, def))
		if err != nil {
			t.Fatal(err)
		}
		if ds.Attacks == nil || len(ds.Attacks.Entries) != 1 {
			t.Fatalf("want one nxns ledger entry, got %+v", ds.Attacks)
		}
		e := ds.Attacks.Entries[0]
		if e.AttackQueries == 0 {
			t.Fatal("nxns campaign generated no bot queries")
		}
		return e.AmpQueries()
	}

	undefended := amp(attacks.Defenses{})
	defended := amp(attacks.Defenses{MaxFetch: 2})
	t.Logf("nxns fanout 12: undefended %.2fx, maxfetch=2 %.2fx", undefended, defended)
	if undefended < nxnsUndefendedFloor {
		t.Errorf("undefended amplification %.2fx below the paper-class floor %.1fx", undefended, nxnsUndefendedFloor)
	}
	if defended > nxnsMaxFetchCeiling {
		t.Errorf("MaxFetch=2 amplification %.2fx above the ceiling %.2fx", defended, nxnsMaxFetchCeiling)
	}
	if defended >= undefended/3 {
		t.Errorf("defense barely helps: %.2fx defended vs %.2fx undefended", defended, undefended)
	}
}
