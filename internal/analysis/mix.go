package analysis

import (
	"sort"

	"ritw/internal/measure"
)

// The paper's Figure-4 headline bands: across the monthly datasets,
// 59-69% of vantage points show weak preference (no site reaches the
// 60% share threshold) and 10-37% show strong preference (one site
// above 90%). A calibrated fleet mixture should land inside both.
const (
	PaperWeakShareLow    = 0.59
	PaperWeakShareHigh   = 0.69
	PaperStrongShareLow  = 0.10
	PaperStrongShareHigh = 0.37
)

// InPaperBands reports whether a run's weak/strong preference shares
// land inside the paper's Figure-4 bands.
func InPaperBands(weakFrac, strongFrac float64) bool {
	return weakFrac >= PaperWeakShareLow && weakFrac <= PaperWeakShareHigh &&
		strongFrac >= PaperStrongShareLow && strongFrac <= PaperStrongShareHigh
}

// MixBreakout splits a mixed-fleet run's record stream by resolver
// policy: one Aggregator per policy label plus one for the whole
// mixture, every query routed by the VPKey → policy classifier
// (measure.PolicyAssignment). It implements measure.Sink, so a
// streaming run feeds per-policy Figure 4 and Table 2 in the same
// single pass as the aggregate — memory stays O(#VPs), not
// O(#records × #policies), because a VP's state lives in exactly two
// aggregators. Auth-side records flow into the mixture only: the
// server-side capture has no per-VP identity to classify.
type MixBreakout struct {
	cfg     AggConfig
	assign  map[string]string
	mixture *Aggregator
	byLabel map[string]*Aggregator
}

// NewMixBreakout builds the splitter. assign maps VPKey to policy
// label; queries from unassigned VPs (e.g. records replayed against a
// stale classifier) still count in the mixture.
func NewMixBreakout(cfg AggConfig, assign map[string]string) *MixBreakout {
	return &MixBreakout{
		cfg:     cfg,
		assign:  assign,
		mixture: NewAggregator(cfg),
		byLabel: make(map[string]*Aggregator),
	}
}

// OnQuery routes one client-side record into the mixture and its
// policy's aggregator.
func (b *MixBreakout) OnQuery(r measure.QueryRecord) {
	b.mixture.OnQuery(r)
	label, ok := b.assign[r.VPKey]
	if !ok {
		return
	}
	agg, ok := b.byLabel[label]
	if !ok {
		agg = NewAggregator(b.cfg)
		b.byLabel[label] = agg
	}
	agg.OnQuery(r)
}

// OnAuth routes one server-side record into the mixture.
func (b *MixBreakout) OnAuth(a measure.AuthRecord) {
	b.mixture.OnAuth(a)
}

// Close closes every underlying aggregator.
func (b *MixBreakout) Close() error {
	err := b.mixture.Close()
	for _, agg := range b.byLabel {
		if cerr := agg.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Mixture is the whole-fleet aggregator (what a non-split run would
// have computed).
func (b *MixBreakout) Mixture() *Aggregator { return b.mixture }

// Policy returns the named policy's aggregator, nil when no VP of that
// policy sent a query.
func (b *MixBreakout) Policy(label string) *Aggregator { return b.byLabel[label] }

// Labels lists the policy labels that received queries, sorted.
func (b *MixBreakout) Labels() []string {
	labels := make([]string, 0, len(b.byLabel))
	for l := range b.byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// BreakoutByPolicy is the materialized-dataset path: it feeds ds
// through a fresh MixBreakout in the canonical per-VP order the
// slice-based analyses use, so results match a streaming run's exactly.
func BreakoutByPolicy(ds *measure.Dataset, assign map[string]string) *MixBreakout {
	b := NewMixBreakout(AggConfig{ComboID: ds.ComboID, Sites: ds.Sites, Duration: ds.Duration}, assign)
	for _, vp := range VPs(ds) {
		for _, r := range vp.Records {
			b.OnQuery(r)
		}
	}
	for _, ar := range ds.AuthRecords {
		b.OnAuth(ar)
	}
	return b
}
