package analysis

import (
	"reflect"
	"testing"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/faults"
	"ritw/internal/measure"
)

func TestOutageImpact(t *testing.T) {
	combo, err := measure.CombinationByID("2B")
	if err != nil {
		t.Fatal(err)
	}
	cfg := measure.DefaultRunConfig(combo, 37)
	pc := atlas.DefaultConfig(37)
	pc.NumProbes = 400
	cfg.Population = pc
	start, end := 20*time.Minute, 40*time.Minute
	cfg.Outage = &measure.Outage{Site: "FRA", Start: start, End: end}
	ds, err := measure.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	impact := OutageImpactOf(ds, "FRA", start, end)
	if impact.Before.Queries == 0 || impact.During.Queries == 0 || impact.After.Queries == 0 {
		t.Fatalf("windows missing traffic: %+v", impact)
	}
	if impact.During.SiteShare != 0 {
		t.Errorf("failed site served %.2f of answered queries while down", impact.During.SiteShare)
	}
	if impact.Before.SiteShare == 0 {
		t.Error("failed site should have served traffic beforehand")
	}
	// With hold-down failover the client failure rate barely moves
	// during a single-site outage (resolvers switch within the client
	// timeout); the robust client-visible fingerprints are the retry
	// latency penalty and the dead site's share dropping to zero.
	if impact.During.FailRate > 0.3 {
		t.Errorf("failover should bound the damage: fail rate %.2f", impact.During.FailRate)
	}
	if impact.During.MedianRTT < impact.Before.MedianRTT+5 {
		t.Errorf("outage retries should cost latency: median RTT %.1f -> %.1f",
			impact.Before.MedianRTT, impact.During.MedianRTT)
	}
	// After recovery the failure rate returns to baseline-ish.
	if impact.After.FailRate > impact.During.FailRate {
		t.Errorf("failure rate should recover: during=%.3f after=%.3f",
			impact.During.FailRate, impact.After.FailRate)
	}
}

func TestOutageImpactEmptyDataset(t *testing.T) {
	ds := &measure.Dataset{ComboID: "X", Sites: []string{"FRA", "DUB"}, Duration: time.Hour}
	impact := OutageImpactOf(ds, "FRA", 10*time.Minute, 20*time.Minute)
	if impact.Before.Queries != 0 || impact.During.FailRate != 0 || impact.After.MedianRTT != 0 {
		t.Errorf("empty dataset impact = %+v", impact)
	}
}

// TestFaultImpactsMultiWindow runs a schedule with two overlapping
// faults on different sites and checks the per-window accounts plus
// the streaming aggregator's equivalence to the materialized path.
func TestFaultImpactsMultiWindow(t *testing.T) {
	combo, err := measure.CombinationByID("2B")
	if err != nil {
		t.Fatal(err)
	}
	cfg := measure.DefaultRunConfig(combo, 41)
	pc := atlas.DefaultConfig(41)
	pc.NumProbes = 300
	cfg.Population = pc
	sched := &faults.Schedule{
		Outages: []faults.Outage{
			{Site: "FRA", Start: 15 * time.Minute, End: 35 * time.Minute},
			{Site: "DUB", Start: 30 * time.Minute, End: 45 * time.Minute},
		},
	}
	cfg.Faults = sched
	ds, err := measure.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	windows := WindowsFromSchedule(sched)
	if len(windows) != 2 {
		t.Fatalf("windows = %d", len(windows))
	}
	impacts := FaultImpacts(ds, windows)
	for _, fi := range impacts {
		if fi.During.Queries == 0 || fi.Before.Queries == 0 {
			t.Fatalf("%s: empty phases: %+v", fi.Window.Label, fi)
		}
		if share := fi.During.SiteShare[fi.Window.Site]; share > 0.10 {
			t.Errorf("%s: dead site still served %.1f%% of answered queries",
				fi.Window.Label, 100*share)
		}
		if fi.Before.SiteShare[fi.Window.Site] == 0 {
			t.Errorf("%s: site served nothing before its fault", fi.Window.Label)
		}
	}
	// 30–35 min is a both-sites-dead overlap: clients must fail hard
	// there. Check via a dedicated window over the overlap.
	overlap := FaultImpacts(ds, []FaultWindow{{
		Label: "overlap", Start: 30 * time.Minute, End: 35 * time.Minute,
	}})[0]
	if overlap.During.FailRate < 0.9 {
		t.Errorf("both sites down: fail rate %.2f, want near-total failure",
			overlap.During.FailRate)
	}

	// The streaming aggregator in exact mode reproduces the
	// materialized analysis field for field.
	agg := NewFaultAggregator(windows, 0, 0)
	for _, r := range ds.Records {
		agg.OnQuery(r)
	}
	streamed := agg.Impacts()
	if !reflect.DeepEqual(impacts, streamed) {
		t.Errorf("streaming impacts diverge from materialized:\n%+v\nvs\n%+v", impacts, streamed)
	}

	// The run report carries the injector's cut timeline for each site.
	if ds.Faults == nil || len(ds.Faults.Cut["FRA"]) == 0 || len(ds.Faults.Cut["DUB"]) == 0 {
		t.Fatalf("dataset fault report incomplete: %+v", ds.Faults)
	}
	if len(ds.Faults.Transitions) != 4 {
		t.Errorf("transitions = %d, want 4", len(ds.Faults.Transitions))
	}
}
