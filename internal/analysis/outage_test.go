package analysis

import (
	"testing"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/measure"
)

func TestOutageImpact(t *testing.T) {
	combo, err := measure.CombinationByID("2B")
	if err != nil {
		t.Fatal(err)
	}
	cfg := measure.DefaultRunConfig(combo, 37)
	pc := atlas.DefaultConfig(37)
	pc.NumProbes = 400
	cfg.Population = pc
	start, end := 20*time.Minute, 40*time.Minute
	cfg.Outage = &measure.Outage{Site: "FRA", Start: start, End: end}
	ds, err := measure.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	impact := OutageImpactOf(ds, "FRA", start, end)
	if impact.Before.Queries == 0 || impact.During.Queries == 0 || impact.After.Queries == 0 {
		t.Fatalf("windows missing traffic: %+v", impact)
	}
	if impact.During.SiteShare != 0 {
		t.Errorf("failed site served %.2f of answered queries while down", impact.During.SiteShare)
	}
	if impact.Before.SiteShare == 0 {
		t.Error("failed site should have served traffic beforehand")
	}
	if impact.During.FailRate <= impact.Before.FailRate {
		t.Errorf("outage should raise the failure rate: before=%.3f during=%.3f",
			impact.Before.FailRate, impact.During.FailRate)
	}
	if impact.During.FailRate > 0.3 {
		t.Errorf("failover should bound the damage: fail rate %.2f", impact.During.FailRate)
	}
	// Retries cost latency: median RTT during the outage is not lower
	// than before.
	if impact.During.MedianRTT < impact.Before.MedianRTT-5 {
		t.Errorf("median RTT dropped during outage: %.1f -> %.1f",
			impact.Before.MedianRTT, impact.During.MedianRTT)
	}
	// After recovery the failure rate returns to baseline-ish.
	if impact.After.FailRate > impact.During.FailRate {
		t.Errorf("failure rate should recover: during=%.3f after=%.3f",
			impact.During.FailRate, impact.After.FailRate)
	}
}

func TestOutageImpactEmptyDataset(t *testing.T) {
	ds := &measure.Dataset{ComboID: "X", Sites: []string{"FRA", "DUB"}, Duration: time.Hour}
	impact := OutageImpactOf(ds, "FRA", 10*time.Minute, 20*time.Minute)
	if impact.Before.Queries != 0 || impact.During.FailRate != 0 || impact.After.MedianRTT != 0 {
		t.Errorf("empty dataset impact = %+v", impact)
	}
}
