package analysis

import (
	"fmt"

	"ritw/internal/attacks"
)

// WindowsFromAttacks converts an attack schedule's campaigns into
// labelled analysis windows ("nxns#0", "flood#1", ...), one per
// campaign in canonical schedule order. Feeding these to
// FaultAggregator/FaultImpacts measures the benign collateral damage
// of each campaign: what happened to ordinary clients' failure rate
// and latency while the attack ran.
func WindowsFromAttacks(s *attacks.Schedule) []FaultWindow {
	evs := s.EventWindows()
	out := make([]FaultWindow, len(evs))
	for i, ev := range evs {
		out[i] = FaultWindow{
			Label: fmt.Sprintf("%s#%d", ev.Kind, ev.Index),
			Start: ev.Start,
			End:   ev.End,
		}
	}
	return out
}

// FormatAttackReport renders a run's attack ledger as fixed-width
// lines, one campaign per line: bots enrolled, attacker packets and
// bytes in, victim packets and bytes out, and the query/bandwidth
// amplification factors. Nil reports render as a single "no attack
// traffic" line so defense-matrix output stays aligned.
func FormatAttackReport(r *attacks.Report) []string {
	if r == nil || len(r.Entries) == 0 {
		return []string{"  (no attack traffic)"}
	}
	lines := make([]string, 0, len(r.Entries))
	for _, e := range r.Entries {
		lines = append(lines, fmt.Sprintf(
			"  %-7s#%d  bots %4d  attack %7d q %9d B  victim %7d q %9d B  amp %6.2fx q %6.2fx B",
			e.Kind, e.Index, e.Bots,
			e.AttackQueries, e.AttackBytes,
			e.VictimQueries, e.VictimBytes,
			e.AmpQueries(), e.AmpBytes()))
	}
	return lines
}
