// Package analysis computes the paper's figures and tables from
// measurement datasets: queries-to-probe-all (Fig. 2), aggregate query
// share versus RTT (Fig. 3), per-recursive preference classification
// (Fig. 4, Table 2), RTT sensitivity (Fig. 5), probing-interval
// dependence (Fig. 6), and the per-recursive rank bands of production
// traffic (Fig. 7).
package analysis

import (
	"fmt"
	"math/rand"
	"sort"

	"ritw/internal/geo"
	"ritw/internal/measure"
	"ritw/internal/stats"
)

// Thresholds from the paper (§4.3).
const (
	// WeakPreference is the query share above which a recursive has a
	// weak preference for one authoritative.
	WeakPreference = 0.60
	// StrongPreference is the share for a strong preference.
	StrongPreference = 0.90
	// MinRTTGapMs is the median RTT difference a VP must experience
	// between authoritatives before its preference counts as
	// latency-meaningful (footnote 1).
	MinRTTGapMs = 50.0
)

// VPSeries is all observations of one vantage point: a (probe,
// recursive) pair, the paper's unit of analysis.
type VPSeries struct {
	Key       string
	Continent geo.Continent
	// Records in send order; includes failed queries.
	Records []measure.QueryRecord
}

// SiteCounts tallies this VP's answered queries per site.
func (v *VPSeries) SiteCounts() map[string]int {
	counts := make(map[string]int)
	for _, r := range v.Records {
		if r.OK && r.Site != "" {
			counts[r.Site]++
		}
	}
	return counts
}

// MedianRTTTo returns the VP's median RTT over answered queries served
// by the given site (NaN if none).
func (v *VPSeries) MedianRTTTo(site string) float64 {
	var xs []float64
	for _, r := range v.Records {
		if r.OK && r.Site == site {
			xs = append(xs, r.RTTms)
		}
	}
	return stats.Median(xs)
}

// VPs groups a dataset into per-VP series, ordered deterministically.
func VPs(ds *measure.Dataset) []*VPSeries {
	byKey := make(map[string]*VPSeries)
	for _, r := range ds.Records {
		v, ok := byKey[r.VPKey]
		if !ok {
			v = &VPSeries{Key: r.VPKey, Continent: r.Continent}
			byKey[r.VPKey] = v
		}
		v.Records = append(v.Records, r)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*VPSeries, len(keys))
	for i, k := range keys {
		v := byKey[k]
		sort.Slice(v.Records, func(a, b int) bool {
			if v.Records[a].SentAt != v.Records[b].SentAt {
				return v.Records[a].SentAt < v.Records[b].SentAt
			}
			return v.Records[a].Seq < v.Records[b].Seq
		})
		out[i] = v
	}
	return out
}

// ProbeAllResult reproduces Figure 2 for one combination: how many
// queries after the first it takes a recursive to contact every
// authoritative, and what share ever do.
type ProbeAllResult struct {
	ComboID string
	// PercentAll is the share of VPs that queried all sites during the
	// measurement (the x-axis label percentages of Figure 2).
	PercentAll float64
	// Box summarizes queries-after-the-first until full coverage,
	// over the VPs that achieved it (quartiles, 10/90% whiskers).
	Box stats.BoxPlot
	// VPs is the number of vantage points considered.
	VPs int
}

// ProbeAll computes Figure 2 for a dataset. VPs with fewer than five
// answered queries are skipped, mirroring the paper's server-side
// filter.
func ProbeAll(ds *measure.Dataset) ProbeAllResult {
	sites := make(map[string]bool)
	for _, s := range ds.Sites {
		sites[s] = true
	}
	need := len(sites)
	var reached []float64
	all, considered := 0, 0
	for _, vp := range VPs(ds) {
		answered := 0
		seen := make(map[string]bool)
		reachedAt := -1
		for i, r := range vp.Records {
			if !r.OK || r.Site == "" {
				continue
			}
			answered++
			seen[r.Site] = true
			if len(seen) == need && reachedAt == -1 {
				reachedAt = i // index in query order; 0 = first query
			}
		}
		if answered < 5 {
			continue
		}
		considered++
		if reachedAt >= 0 {
			all++
			reached = append(reached, float64(reachedAt)) // queries after the first
		}
	}
	res := ProbeAllResult{ComboID: ds.ComboID, VPs: considered}
	if considered > 0 {
		res.PercentAll = 100 * float64(all) / float64(considered)
	}
	if b, err := stats.NewBoxPlot(reached); err == nil {
		res.Box = b
	}
	return res
}

// SiteShare is one bar of Figure 3: a site's share of all answered
// queries and the median RTT recursives see to it.
type SiteShare struct {
	Site      string
	Share     float64
	MedianRTT float64
	Queries   int
}

// ShareVsRTT computes Figure 3 for a dataset. Following §4.2, the
// tally starts once a VP has reached the hot-cache condition (has
// queried every site at least once).
func ShareVsRTT(ds *measure.Dataset) []SiteShare {
	need := len(ds.Sites)
	counts := make(map[string]int)
	rtts := make(map[string][]float64)
	total := 0
	for _, vp := range VPs(ds) {
		seen := make(map[string]bool)
		hot := false
		for _, r := range vp.Records {
			if !r.OK || r.Site == "" {
				continue
			}
			if hot {
				counts[r.Site]++
				rtts[r.Site] = append(rtts[r.Site], r.RTTms)
				total++
			}
			seen[r.Site] = true
			if len(seen) == need {
				hot = true
			}
		}
	}
	out := make([]SiteShare, 0, need)
	for _, s := range ds.Sites {
		ss := SiteShare{
			Site:      s,
			Queries:   counts[s],
			MedianRTT: stats.Median(rtts[s]),
		}
		if total > 0 {
			ss.Share = float64(counts[s]) / float64(total)
		}
		out = append(out, ss)
	}
	return out
}

// ContinentSiteShare is one cell pair of Table 2: the share of a
// continent's queries going to a site and the median RTT.
type ContinentSiteShare struct {
	SharePct  float64
	MedianRTT float64
	Queries   int
}

// Table2 computes the per-continent query distribution and median RTT
// for each site of a dataset (the paper's Table 2 rows).
func Table2(ds *measure.Dataset) map[geo.Continent]map[string]ContinentSiteShare {
	counts := make(map[geo.Continent]map[string]int)
	rtts := make(map[geo.Continent]map[string][]float64)
	totals := make(map[geo.Continent]int)
	for _, r := range ds.Records {
		if !r.OK || r.Site == "" {
			continue
		}
		if counts[r.Continent] == nil {
			counts[r.Continent] = make(map[string]int)
			rtts[r.Continent] = make(map[string][]float64)
		}
		counts[r.Continent][r.Site]++
		rtts[r.Continent][r.Site] = append(rtts[r.Continent][r.Site], r.RTTms)
		totals[r.Continent]++
	}
	out := make(map[geo.Continent]map[string]ContinentSiteShare)
	for cont, byc := range counts {
		out[cont] = make(map[string]ContinentSiteShare)
		for _, site := range ds.Sites {
			cell := ContinentSiteShare{
				Queries:   byc[site],
				MedianRTT: stats.Median(rtts[cont][site]),
			}
			if totals[cont] > 0 {
				cell.SharePct = 100 * float64(byc[site]) / float64(totals[cont])
			}
			out[cont][site] = cell
		}
	}
	return out
}

// PreferenceResult reproduces Figure 4's preference quantification for
// a two-authoritative dataset.
type PreferenceResult struct {
	ComboID string
	// QualifiedVPs experienced a median RTT gap of at least
	// MinRTTGapMs between the two sites.
	QualifiedVPs int
	// WeakFrac and StrongFrac are the shares of qualified VPs sending
	// ≥60% / ≥90% of their queries to one site.
	WeakFrac   float64
	StrongFrac float64
	// Curves maps each site to the sorted (descending) per-VP query
	// fraction it receives, per continent — Figure 4's x/y data.
	Curves map[geo.Continent]map[string][]float64
}

// Preference computes Figure 4 for a two-site dataset. VPs with fewer
// than five answered queries are excluded, as in the paper's
// middlebox cross-check.
func Preference(ds *measure.Dataset) PreferenceResult {
	res := PreferenceResult{
		ComboID: ds.ComboID,
		Curves:  make(map[geo.Continent]map[string][]float64),
	}
	if len(ds.Sites) != 2 {
		return res
	}
	s0, s1 := ds.Sites[0], ds.Sites[1]
	weak, strong := 0, 0
	for _, vp := range VPs(ds) {
		counts := vp.SiteCounts()
		n := counts[s0] + counts[s1]
		if n < 5 {
			continue
		}
		f0 := float64(counts[s0]) / float64(n)
		if res.Curves[vp.Continent] == nil {
			res.Curves[vp.Continent] = map[string][]float64{s0: nil, s1: nil}
		}
		res.Curves[vp.Continent][s0] = append(res.Curves[vp.Continent][s0], f0)
		res.Curves[vp.Continent][s1] = append(res.Curves[vp.Continent][s1], 1-f0)

		// The gap is only defined for VPs that measured both sites; a
		// VP that never reached one site cannot qualify (the paper
		// quantifies preference by the median RTT difference).
		if counts[s0] == 0 || counts[s1] == 0 {
			continue
		}
		r0, r1 := vp.MedianRTTTo(s0), vp.MedianRTTTo(s1)
		gap := r0 - r1
		if gap < 0 {
			gap = -gap
		}
		if gap < MinRTTGapMs {
			continue
		}
		res.QualifiedVPs++
		top := f0
		if 1-f0 > top {
			top = 1 - f0
		}
		if top >= WeakPreference {
			weak++
		}
		if top >= StrongPreference {
			strong++
		}
	}
	for _, bySite := range res.Curves {
		for s := range bySite {
			sort.Sort(sort.Reverse(sort.Float64Slice(bySite[s])))
		}
	}
	if res.QualifiedVPs > 0 {
		res.WeakFrac = float64(weak) / float64(res.QualifiedVPs)
		res.StrongFrac = float64(strong) / float64(res.QualifiedVPs)
	}
	return res
}

// Interval is a bootstrap confidence interval.
type Interval struct {
	Lo, Hi float64
}

// PreferenceCI puts 95% bootstrap confidence intervals on a two-site
// dataset's weak and strong preference fractions — uncertainty the
// paper's point estimates do not carry. It resamples the qualified
// VPs' top-site shares.
func PreferenceCI(ds *measure.Dataset, rounds int, seed int64) (weak, strong Interval, err error) {
	if len(ds.Sites) != 2 {
		return Interval{}, Interval{}, fmt.Errorf("analysis: preference CI needs a two-site dataset")
	}
	s0, s1 := ds.Sites[0], ds.Sites[1]
	var topShares []float64
	for _, vp := range VPs(ds) {
		counts := vp.SiteCounts()
		n := counts[s0] + counts[s1]
		if n < 5 || counts[s0] == 0 || counts[s1] == 0 {
			continue
		}
		r0, r1 := vp.MedianRTTTo(s0), vp.MedianRTTTo(s1)
		gap := r0 - r1
		if gap < 0 {
			gap = -gap
		}
		if gap < MinRTTGapMs {
			continue
		}
		f0 := float64(counts[s0]) / float64(n)
		top := f0
		if 1-f0 > top {
			top = 1 - f0
		}
		topShares = append(topShares, top)
	}
	if len(topShares) == 0 {
		return Interval{}, Interval{}, fmt.Errorf("analysis: no qualified VPs")
	}
	rng := rand.New(rand.NewSource(seed))
	wl, wh, err := stats.BootstrapCI(topShares, func(xs []float64) float64 {
		return stats.Fraction(xs, func(x float64) bool { return x >= WeakPreference })
	}, 0.95, rounds, rng)
	if err != nil {
		return Interval{}, Interval{}, err
	}
	sl, sh, err := stats.BootstrapCI(topShares, func(xs []float64) float64 {
		return stats.Fraction(xs, func(x float64) bool { return x >= StrongPreference })
	}, 0.95, rounds, rng)
	if err != nil {
		return Interval{}, Interval{}, err
	}
	return Interval{wl, wh}, Interval{sl, sh}, nil
}

// RTTSensitivityPoint is one point of Figure 5: a continent's median
// RTT to a site (x) and the fraction of its queries that site gets (y).
type RTTSensitivityPoint struct {
	Continent geo.Continent
	Site      string
	MedianRTT float64
	Fraction  float64
	VPs       int
}

// RTTSensitivity computes Figure 5 from a two-site dataset.
func RTTSensitivity(ds *measure.Dataset) []RTTSensitivityPoint {
	t2 := Table2(ds)
	vpsPerCont := make(map[geo.Continent]int)
	for _, vp := range VPs(ds) {
		vpsPerCont[vp.Continent]++
	}
	var out []RTTSensitivityPoint
	for _, cont := range geo.Continents() {
		cells, ok := t2[cont]
		if !ok {
			continue
		}
		for _, site := range ds.Sites {
			cell := cells[site]
			out = append(out, RTTSensitivityPoint{
				Continent: cont,
				Site:      site,
				MedianRTT: cell.MedianRTT,
				Fraction:  cell.SharePct / 100,
				VPs:       vpsPerCont[cont],
			})
		}
	}
	return out
}

// SiteShareByContinent returns the fraction of each continent's
// answered queries that went to the named site — one curve point of
// Figure 6 per continent.
func SiteShareByContinent(ds *measure.Dataset, site string) map[geo.Continent]float64 {
	counts := make(map[geo.Continent]int)
	totals := make(map[geo.Continent]int)
	for _, r := range ds.Records {
		if !r.OK || r.Site == "" {
			continue
		}
		totals[r.Continent]++
		if r.Site == site {
			counts[r.Continent]++
		}
	}
	out := make(map[geo.Continent]float64)
	for cont, total := range totals {
		out[cont] = float64(counts[cont]) / float64(total)
	}
	return out
}

// HardeningResult quantifies §4.3's observation that weak preferences
// strengthen over the hour.
type HardeningResult struct {
	// VPs is the number of weak-preference VPs tracked.
	VPs int
	// FirstHalf and SecondHalf are their mean top-site share in each
	// half of the measurement.
	FirstHalf  float64
	SecondHalf float64
}

// PreferenceHardening splits each weak-preference VP's queries at the
// measurement midpoint and compares its top-site share across halves.
func PreferenceHardening(ds *measure.Dataset) HardeningResult {
	if len(ds.Sites) != 2 {
		return HardeningResult{}
	}
	s0 := ds.Sites[0]
	mid := ds.Duration / 2
	var res HardeningResult
	var sum1, sum2 float64
	for _, vp := range VPs(ds) {
		counts := vp.SiteCounts()
		n := counts[s0] + counts[ds.Sites[1]]
		if n < 10 {
			continue
		}
		f0 := float64(counts[s0]) / float64(n)
		top := f0
		topSite := s0
		if 1-f0 > top {
			top = 1 - f0
			topSite = ds.Sites[1]
		}
		// Weak but not already strong in aggregate.
		if top < WeakPreference || top >= 0.95 {
			continue
		}
		h1n, h1t, h2n, h2t := 0, 0, 0, 0
		for _, r := range vp.Records {
			if !r.OK || r.Site == "" {
				continue
			}
			if r.SentAt < mid {
				h1t++
				if r.Site == topSite {
					h1n++
				}
			} else {
				h2t++
				if r.Site == topSite {
					h2n++
				}
			}
		}
		if h1t == 0 || h2t == 0 {
			continue
		}
		res.VPs++
		sum1 += float64(h1n) / float64(h1t)
		sum2 += float64(h2n) / float64(h2t)
	}
	if res.VPs > 0 {
		res.FirstHalf = sum1 / float64(res.VPs)
		res.SecondHalf = sum2 / float64(res.VPs)
	}
	return res
}

// AuthSidePreference recomputes the Figure-4 preference curve from the
// authoritative-side capture, for recursives that sent at least
// minQueries — the paper's middlebox sanity check (§3.1).
func AuthSidePreference(ds *measure.Dataset, minQueries int) (weakFrac, strongFrac float64, resolvers int) {
	perSrc := make(map[string]map[string]int) // src -> site -> count
	for _, ar := range ds.AuthRecords {
		key := ar.Src.String()
		if perSrc[key] == nil {
			perSrc[key] = make(map[string]int)
		}
		perSrc[key][ar.Site]++
	}
	weak, strong := 0, 0
	for _, bySite := range perSrc {
		total, top := 0, 0
		for _, n := range bySite {
			total += n
			if n > top {
				top = n
			}
		}
		if total < minQueries {
			continue
		}
		resolvers++
		frac := float64(top) / float64(total)
		if frac >= WeakPreference {
			weak++
		}
		if frac >= StrongPreference {
			strong++
		}
	}
	if resolvers > 0 {
		weakFrac = float64(weak) / float64(resolvers)
		strongFrac = float64(strong) / float64(resolvers)
	}
	return weakFrac, strongFrac, resolvers
}

// RankBands reproduces Figure 7's headline numbers: among recursives
// with at least minQueries, the share that used exactly one server,
// at least six, and all of them.
type RankBands struct {
	Recursives int
	// Shares sums to the full population of qualified recursives.
	OnlyOne  float64
	AtLeast6 float64
	All      float64
	// MeanTopShare is the average share of a recursive's most-used
	// server (the height of Figure 7's top band).
	MeanTopShare float64
}

// Ranks computes rank bands from per-recursive per-server counts.
func Ranks(perRecursive map[string]map[string]int, totalServers, minQueries int) RankBands {
	var rb RankBands
	only1, ge6, all := 0, 0, 0
	var topSum float64
	for _, byServer := range perRecursive {
		total := 0
		used := 0
		top := 0
		for _, n := range byServer {
			total += n
			if n > 0 {
				used++
			}
			if n > top {
				top = n
			}
		}
		if total < minQueries {
			continue
		}
		rb.Recursives++
		topSum += float64(top) / float64(total)
		if used == 1 {
			only1++
		}
		if used >= 6 {
			ge6++
		}
		if used == totalServers {
			all++
		}
	}
	if rb.Recursives > 0 {
		rb.OnlyOne = float64(only1) / float64(rb.Recursives)
		rb.AtLeast6 = float64(ge6) / float64(rb.Recursives)
		rb.All = float64(all) / float64(rb.Recursives)
		rb.MeanTopShare = topSum / float64(rb.Recursives)
	}
	return rb
}
