// Package analysis computes the paper's figures and tables from
// measurement datasets: queries-to-probe-all (Fig. 2), aggregate query
// share versus RTT (Fig. 3), per-recursive preference classification
// (Fig. 4, Table 2), RTT sensitivity (Fig. 5), probing-interval
// dependence (Fig. 6), and the per-recursive rank bands of production
// traffic (Fig. 7).
package analysis

import (
	"sort"

	"ritw/internal/geo"
	"ritw/internal/measure"
	"ritw/internal/stats"
)

// Thresholds from the paper (§4.3).
const (
	// WeakPreference is the query share above which a recursive has a
	// weak preference for one authoritative.
	WeakPreference = 0.60
	// StrongPreference is the share for a strong preference.
	StrongPreference = 0.90
	// MinRTTGapMs is the median RTT difference a VP must experience
	// between authoritatives before its preference counts as
	// latency-meaningful (footnote 1).
	MinRTTGapMs = 50.0
)

// VPSeries is all observations of one vantage point: a (probe,
// recursive) pair, the paper's unit of analysis.
type VPSeries struct {
	Key       string
	Continent geo.Continent
	// Records in send order; includes failed queries.
	Records []measure.QueryRecord
}

// SiteCounts tallies this VP's answered queries per site.
func (v *VPSeries) SiteCounts() map[string]int {
	counts := make(map[string]int)
	for _, r := range v.Records {
		if r.OK && r.Site != "" {
			counts[r.Site]++
		}
	}
	return counts
}

// MedianRTTTo returns the VP's median RTT over answered queries served
// by the given site (NaN if none).
func (v *VPSeries) MedianRTTTo(site string) float64 {
	var xs []float64
	for _, r := range v.Records {
		if r.OK && r.Site == site {
			xs = append(xs, r.RTTms)
		}
	}
	return stats.Median(xs)
}

// VPs groups a dataset into per-VP series, ordered deterministically.
func VPs(ds *measure.Dataset) []*VPSeries {
	byKey := make(map[string]*VPSeries)
	for _, r := range ds.Records {
		v, ok := byKey[r.VPKey]
		if !ok {
			v = &VPSeries{Key: r.VPKey, Continent: r.Continent}
			byKey[r.VPKey] = v
		}
		v.Records = append(v.Records, r)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*VPSeries, len(keys))
	for i, k := range keys {
		v := byKey[k]
		sort.Slice(v.Records, func(a, b int) bool {
			if v.Records[a].SentAt != v.Records[b].SentAt {
				return v.Records[a].SentAt < v.Records[b].SentAt
			}
			return v.Records[a].Seq < v.Records[b].Seq
		})
		out[i] = v
	}
	return out
}

// ProbeAllResult reproduces Figure 2 for one combination: how many
// queries after the first it takes a recursive to contact every
// authoritative, and what share ever do.
type ProbeAllResult struct {
	ComboID string
	// PercentAll is the share of VPs that queried all sites during the
	// measurement (the x-axis label percentages of Figure 2).
	PercentAll float64
	// Box summarizes queries-after-the-first until full coverage,
	// over the VPs that achieved it (quartiles, 10/90% whiskers).
	Box stats.BoxPlot
	// VPs is the number of vantage points considered.
	VPs int
}

// ProbeAll computes Figure 2 for a dataset. VPs with fewer than five
// answered queries are skipped, mirroring the paper's server-side
// filter.
func ProbeAll(ds *measure.Dataset) ProbeAllResult {
	return aggregate(ds).ProbeAll()
}

// SiteShare is one bar of Figure 3: a site's share of all answered
// queries and the median RTT recursives see to it.
type SiteShare struct {
	Site      string
	Share     float64
	MedianRTT float64
	Queries   int
}

// ShareVsRTT computes Figure 3 for a dataset. Following §4.2, the
// tally starts once a VP has reached the hot-cache condition (has
// queried every site at least once).
func ShareVsRTT(ds *measure.Dataset) []SiteShare {
	return aggregate(ds).ShareVsRTT()
}

// ContinentSiteShare is one cell pair of Table 2: the share of a
// continent's queries going to a site and the median RTT.
type ContinentSiteShare struct {
	SharePct  float64
	MedianRTT float64
	Queries   int
}

// Table2 computes the per-continent query distribution and median RTT
// for each site of a dataset (the paper's Table 2 rows).
func Table2(ds *measure.Dataset) map[geo.Continent]map[string]ContinentSiteShare {
	return aggregate(ds).Table2()
}

// PreferenceResult reproduces Figure 4's preference quantification for
// a two-authoritative dataset.
type PreferenceResult struct {
	ComboID string
	// QualifiedVPs experienced a median RTT gap of at least
	// MinRTTGapMs between the two sites.
	QualifiedVPs int
	// WeakFrac and StrongFrac are the shares of qualified VPs sending
	// ≥60% / ≥90% of their queries to one site.
	WeakFrac   float64
	StrongFrac float64
	// Curves maps each site to the sorted (descending) per-VP query
	// fraction it receives, per continent — Figure 4's x/y data.
	Curves map[geo.Continent]map[string][]float64
}

// Preference computes Figure 4 for a two-site dataset. VPs with fewer
// than five answered queries are excluded, as in the paper's
// middlebox cross-check.
func Preference(ds *measure.Dataset) PreferenceResult {
	return aggregate(ds).Preference()
}

// Interval is a bootstrap confidence interval.
type Interval struct {
	Lo, Hi float64
}

// PreferenceCI puts 95% bootstrap confidence intervals on a two-site
// dataset's weak and strong preference fractions — uncertainty the
// paper's point estimates do not carry. It resamples the qualified
// VPs' top-site shares.
func PreferenceCI(ds *measure.Dataset, rounds int, seed int64) (weak, strong Interval, err error) {
	return aggregate(ds).PreferenceCI(rounds, seed)
}

// RTTSensitivityPoint is one point of Figure 5: a continent's median
// RTT to a site (x) and the fraction of its queries that site gets (y).
type RTTSensitivityPoint struct {
	Continent geo.Continent
	Site      string
	MedianRTT float64
	Fraction  float64
	VPs       int
}

// RTTSensitivity computes Figure 5 from a two-site dataset.
func RTTSensitivity(ds *measure.Dataset) []RTTSensitivityPoint {
	return aggregate(ds).RTTSensitivity()
}

// SiteShareByContinent returns the fraction of each continent's
// answered queries that went to the named site — one curve point of
// Figure 6 per continent.
func SiteShareByContinent(ds *measure.Dataset, site string) map[geo.Continent]float64 {
	return aggregate(ds).SiteShareByContinent(site)
}

// HardeningResult quantifies §4.3's observation that weak preferences
// strengthen over the hour.
type HardeningResult struct {
	// VPs is the number of weak-preference VPs tracked.
	VPs int
	// FirstHalf and SecondHalf are their mean top-site share in each
	// half of the measurement.
	FirstHalf  float64
	SecondHalf float64
}

// PreferenceHardening splits each weak-preference VP's queries at the
// measurement midpoint and compares its top-site share across halves.
func PreferenceHardening(ds *measure.Dataset) HardeningResult {
	return aggregate(ds).PreferenceHardening()
}

// AuthSidePreference recomputes the Figure-4 preference curve from the
// authoritative-side capture, for recursives that sent at least
// minQueries — the paper's middlebox sanity check (§3.1).
func AuthSidePreference(ds *measure.Dataset, minQueries int) (weakFrac, strongFrac float64, resolvers int) {
	return aggregate(ds).AuthSidePreference(minQueries)
}

// RankBands reproduces Figure 7's headline numbers: among recursives
// with at least minQueries, the share that used exactly one server,
// at least six, and all of them.
type RankBands struct {
	Recursives int
	// Shares sums to the full population of qualified recursives.
	OnlyOne  float64
	AtLeast6 float64
	All      float64
	// MeanTopShare is the average share of a recursive's most-used
	// server (the height of Figure 7's top band).
	MeanTopShare float64
}

// Ranks computes rank bands from per-recursive per-server counts.
// Recursives are folded in sorted-key order so the float accumulation
// (MeanTopShare) is bit-stable across runs and map layouts.
func Ranks(perRecursive map[string]map[string]int, totalServers, minQueries int) RankBands {
	var rb RankBands
	only1, ge6, all := 0, 0, 0
	var topSum float64
	recs := make([]string, 0, len(perRecursive))
	for rec := range perRecursive {
		recs = append(recs, rec)
	}
	sort.Strings(recs)
	for _, rec := range recs {
		byServer := perRecursive[rec]
		total := 0
		used := 0
		top := 0
		for _, n := range byServer {
			total += n
			if n > 0 {
				used++
			}
			if n > top {
				top = n
			}
		}
		if total < minQueries {
			continue
		}
		rb.Recursives++
		topSum += float64(top) / float64(total)
		if used == 1 {
			only1++
		}
		if used >= 6 {
			ge6++
		}
		if used == totalServers {
			all++
		}
	}
	if rb.Recursives > 0 {
		rb.OnlyOne = float64(only1) / float64(rb.Recursives)
		rb.AtLeast6 = float64(ge6) / float64(rb.Recursives)
		rb.All = float64(all) / float64(rb.Recursives)
		rb.MeanTopShare = topSum / float64(rb.Recursives)
	}
	return rb
}
