package analysis

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ritw/internal/geo"
	"ritw/internal/measure"
	"ritw/internal/obs"
	"ritw/internal/stats"
)

// AggConfig parameterizes an Aggregator. The combo identity, site list
// and duration are what the slice-based analyses read off a Dataset;
// a streaming consumer knows them before the run starts.
type AggConfig struct {
	ComboID string
	Sites   []string
	// Duration bounds the run; the hardening analysis splits at its
	// midpoint.
	Duration time.Duration
	// MaxSamples caps each global RTT quantile sketch's retained
	// samples (reservoir sampling past the cap). <= 0 keeps every
	// sample, making all medians exact — the setting the wrapper
	// functions use so figure output is byte-identical to the
	// slice-based code. Per-VP RTT samples are never capped: a VP
	// holds at most one sample per query it sent.
	MaxSamples int
	// Seed drives reservoir replacement when MaxSamples binds.
	Seed int64
	// Metrics, if set, receives the aggregator's peak-size gauge
	// (analysis_aggregator_peak_size{combo=...}) at Close.
	Metrics *obs.Registry
}

// vpState is one vantage point's accumulator: everything Figures 2-5
// and the hardening state machine need, folded record by record. Its
// size is bounded by the VP's own query count (the per-site RTT
// samples), not by the dataset.
// Counters are int32: a VP sends at most a few thousand queries in an
// hour-long run, and with ~10k VP states per combination the narrower
// fields measurably shrink the aggregator.
type vpState struct {
	continent geo.Continent
	// Figure 2: coverage progress.
	idx       int32  // records processed, including failures
	answered  int32  // answered queries
	seen      uint64 // bitmask over site indexes < 64
	seenMap   map[string]bool
	seenN     int32 // distinct sites answered from
	reachedAt int32 // record index where coverage completed, -1 if never
	// Figure 3: hot-cache condition.
	hot bool
	// Figure 4 / hardening (two-site combos only).
	c0, c1     int32
	rtt0, rtt1 []float64
	h1n0, h1n1 int32 // first-half answered queries per candidate top site
	h2n0, h2n1 int32
	h1t, h2t   int32 // answered queries per half, any site
}

// Aggregator folds a measurement's record stream into every per-combo
// figure and table of the paper in one pass: Figure 2 (queries to
// probe all), Figure 3 (share vs RTT), Figure 4 (preference) with its
// bootstrap CI, Table 2, Figure 5 (RTT sensitivity), Figure 6's
// per-continent site share, the §4.3 hardening comparison and the
// §3.1 auth-side middlebox cross-check. It implements measure.Sink,
// so it can be handed directly to measure.RunStream; its memory is
// O(#VPs + #resolvers), not O(#records).
//
// Results are available from the accessor methods at any time; Close
// only publishes the size gauge. Feeding records grouped per VP in
// send order — which both a live run (see measure.Sink) and the
// wrapper functions guarantee — reproduces the slice-based analyses
// exactly when MaxSamples is unset.
type Aggregator struct {
	cfg     AggConfig
	siteIdx map[string]int
	needAll int // distinct sites for full coverage (Figure 2)
	needHot int // site-list length for the hot-cache condition (Figure 3)
	twoSite bool
	s0, s1  string

	vps        map[string]*vpState
	vpSamples  int // retained per-VP RTT samples, for Size
	vpsPerCont map[geo.Continent]int

	records, authRecords int

	// Figure 3: tallies after the hot-cache condition.
	hotCounts map[string]int
	hotRTT    map[string]*stats.QuantileSketch
	hotTotal  int

	// Table 2 / Figures 5 and 6: per-continent tallies.
	contCounts map[geo.Continent]map[string]int
	contRTT    map[geo.Continent]map[string]*stats.QuantileSketch
	contTotals map[geo.Continent]int

	// Middlebox cross-check: per-source per-site counts. Each source
	// holds a flat slice indexed by authSiteIdx instead of a nested
	// map — with thousands of resolvers and a handful of sites, the
	// per-source map overhead would dominate the aggregator's memory.
	perSrc      map[string][]int
	authSiteIdx map[string]int
	srcCells    int
	sketches    int // created so far, for deterministic reservoir seeds
	sketchList  []*stats.QuantileSketch
}

// NewAggregator returns an empty aggregator for one combination.
func NewAggregator(cfg AggConfig) *Aggregator {
	a := &Aggregator{
		cfg:         cfg,
		siteIdx:     make(map[string]int, len(cfg.Sites)),
		needHot:     len(cfg.Sites),
		vps:         make(map[string]*vpState),
		vpsPerCont:  make(map[geo.Continent]int),
		hotCounts:   make(map[string]int),
		hotRTT:      make(map[string]*stats.QuantileSketch),
		contCounts:  make(map[geo.Continent]map[string]int),
		contRTT:     make(map[geo.Continent]map[string]*stats.QuantileSketch),
		contTotals:  make(map[geo.Continent]int),
		perSrc:      make(map[string][]int),
		authSiteIdx: make(map[string]int, len(cfg.Sites)),
	}
	for _, s := range cfg.Sites {
		if _, ok := a.siteIdx[s]; !ok {
			a.siteIdx[s] = len(a.siteIdx)
		}
		if _, ok := a.authSiteIdx[s]; !ok {
			a.authSiteIdx[s] = len(a.authSiteIdx)
		}
	}
	a.needAll = len(a.siteIdx)
	if len(cfg.Sites) == 2 {
		a.twoSite = true
		a.s0, a.s1 = cfg.Sites[0], cfg.Sites[1]
	}
	return a
}

// AggregatorFor returns an aggregator configured exactly as the
// slice-based analyses would read ds, with exact (uncapped) sketches.
func AggregatorFor(ds *measure.Dataset) *Aggregator {
	return NewAggregator(AggConfig{ComboID: ds.ComboID, Sites: ds.Sites, Duration: ds.Duration})
}

// aggregate feeds a materialized dataset through a fresh exact
// aggregator in the per-VP sorted order the slice-based analyses used,
// guaranteeing byte-identical results for arbitrary datasets.
func aggregate(ds *measure.Dataset) *Aggregator {
	a := AggregatorFor(ds)
	for _, vp := range VPs(ds) {
		for _, r := range vp.Records {
			a.OnQuery(r)
		}
	}
	for _, ar := range ds.AuthRecords {
		a.OnAuth(ar)
	}
	return a
}

func (a *Aggregator) newSketch() *stats.QuantileSketch {
	a.sketches++
	q := stats.NewQuantileSketch(a.cfg.MaxSamples, a.cfg.Seed+int64(a.sketches))
	a.sketchList = append(a.sketchList, q)
	return q
}

func (a *Aggregator) siteIndex(site string) int {
	if i, ok := a.siteIdx[site]; ok {
		return i
	}
	i := len(a.siteIdx)
	a.siteIdx[site] = i
	return i
}

// markSeen records that the VP was answered from site; it reports
// whether the site is new for this VP. Sites beyond the 64-bit mask
// (impossible with the paper's combos) spill to a map.
func (st *vpState) markSeen(idx int, site string) bool {
	if idx < 64 {
		bit := uint64(1) << uint(idx)
		if st.seen&bit != 0 {
			return false
		}
		st.seen |= bit
		return true
	}
	if st.seenMap[site] {
		return false
	}
	if st.seenMap == nil {
		st.seenMap = make(map[string]bool)
	}
	st.seenMap[site] = true
	return true
}

// OnQuery folds one client-side record into every per-VP and global
// accumulator. Records of one VP must arrive in send order; VPs may
// interleave arbitrarily.
func (a *Aggregator) OnQuery(r measure.QueryRecord) {
	a.records++
	st, ok := a.vps[r.VPKey]
	if !ok {
		st = &vpState{continent: r.Continent, reachedAt: -1}
		a.vps[r.VPKey] = st
		a.vpsPerCont[r.Continent]++ // Figure 5 counts every VP, answered or not
	}
	i := st.idx
	st.idx++
	if !r.OK || r.Site == "" {
		return
	}
	st.answered++

	// Figure 3: tally only while hot, then update the condition — the
	// record completing coverage is itself not tallied.
	if st.hot {
		a.hotCounts[r.Site]++
		q, ok := a.hotRTT[r.Site]
		if !ok {
			q = a.newSketch()
			a.hotRTT[r.Site] = q
		}
		q.Observe(r.RTTms)
		a.hotTotal++
	}
	if st.markSeen(a.siteIndex(r.Site), r.Site) {
		st.seenN++
	}
	if int(st.seenN) == a.needAll && a.needAll > 0 && st.reachedAt == -1 {
		st.reachedAt = i
	}
	if int(st.seenN) == a.needHot && a.needHot > 0 {
		st.hot = true
	}

	// Table 2 / Figures 5-6.
	if a.contCounts[r.Continent] == nil {
		a.contCounts[r.Continent] = make(map[string]int)
		a.contRTT[r.Continent] = make(map[string]*stats.QuantileSketch)
	}
	a.contCounts[r.Continent][r.Site]++
	q, ok := a.contRTT[r.Continent][r.Site]
	if !ok {
		q = a.newSketch()
		a.contRTT[r.Continent][r.Site] = q
	}
	q.Observe(r.RTTms)
	a.contTotals[r.Continent]++

	// Figure 4 and hardening need the two-site breakdown.
	if a.twoSite {
		switch r.Site {
		case a.s0:
			st.c0++
			st.rtt0 = append(st.rtt0, r.RTTms)
			a.vpSamples++
		case a.s1:
			st.c1++
			st.rtt1 = append(st.rtt1, r.RTTms)
			a.vpSamples++
		}
		if r.SentAt < a.cfg.Duration/2 {
			st.h1t++
			if r.Site == a.s0 {
				st.h1n0++
			}
			if r.Site == a.s1 {
				st.h1n1++
			}
		} else {
			st.h2t++
			if r.Site == a.s0 {
				st.h2n0++
			}
			if r.Site == a.s1 {
				st.h2n1++
			}
		}
	}
}

// OnAuth folds one server-side record into the middlebox cross-check.
func (a *Aggregator) OnAuth(ar measure.AuthRecord) {
	a.authRecords++
	si, ok := a.authSiteIdx[ar.Site]
	if !ok {
		si = len(a.authSiteIdx)
		a.authSiteIdx[ar.Site] = si
	}
	key := ar.Src.String()
	counts := a.perSrc[key]
	if counts == nil {
		counts = make([]int, len(a.authSiteIdx))
		a.srcCells += len(counts)
	}
	for len(counts) <= si {
		counts = append(counts, 0)
		a.srcCells++
	}
	counts[si]++
	a.perSrc[key] = counts
}

// Close publishes the size gauge; results remain readable afterwards.
// Aggregator state only grows, so the size at Close is the peak.
func (a *Aggregator) Close() error {
	if a.cfg.Metrics != nil {
		g := a.cfg.Metrics.Gauge(obs.LabelName("analysis_aggregator_peak_size", "combo", a.cfg.ComboID))
		g.Set(float64(a.Size()))
	}
	return nil
}

// NumRecords returns how many client-side records streamed through.
func (a *Aggregator) NumRecords() int { return a.records }

// NumAuthRecords returns how many server-side records streamed through.
func (a *Aggregator) NumAuthRecords() int { return a.authRecords }

// Size counts retained aggregation entries — VP states, per-VP and
// sketch RTT samples, and per-source cells. It is the memory-footprint
// proxy the obs gauge reports.
func (a *Aggregator) Size() int {
	n := len(a.vps) + a.vpSamples + len(a.perSrc) + a.srcCells
	for _, q := range a.sketchList {
		n += q.Retained()
	}
	return n
}

// ComboID returns the combination this aggregator accumulates.
func (a *Aggregator) ComboID() string { return a.cfg.ComboID }

// Sites returns the configured site list.
func (a *Aggregator) Sites() []string { return a.cfg.Sites }

// sortedVPKeys returns the VP keys in the deterministic order the
// slice-based analyses iterate (sorted), so order-sensitive float
// accumulations match them exactly.
func (a *Aggregator) sortedVPKeys() []string {
	keys := make([]string, 0, len(a.vps))
	for k := range a.vps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ProbeAll finalizes Figure 2 from the accumulated state.
func (a *Aggregator) ProbeAll() ProbeAllResult {
	var reached []float64
	all, considered := 0, 0
	for _, k := range a.sortedVPKeys() {
		st := a.vps[k]
		if st.answered < 5 {
			continue
		}
		considered++
		if st.reachedAt >= 0 {
			all++
			reached = append(reached, float64(st.reachedAt))
		}
	}
	res := ProbeAllResult{ComboID: a.cfg.ComboID, VPs: considered}
	if considered > 0 {
		res.PercentAll = 100 * float64(all) / float64(considered)
	}
	if b, err := stats.NewBoxPlot(reached); err == nil {
		res.Box = b
	}
	return res
}

// ShareVsRTT finalizes Figure 3 from the accumulated state.
func (a *Aggregator) ShareVsRTT() []SiteShare {
	out := make([]SiteShare, 0, len(a.cfg.Sites))
	for _, s := range a.cfg.Sites {
		ss := SiteShare{Site: s, Queries: a.hotCounts[s], MedianRTT: sketchMedian(a.hotRTT[s])}
		if a.hotTotal > 0 {
			ss.Share = float64(a.hotCounts[s]) / float64(a.hotTotal)
		}
		out = append(out, ss)
	}
	return out
}

func sketchMedian(q *stats.QuantileSketch) float64 {
	if q == nil {
		return stats.Median(nil)
	}
	return q.Median()
}

// Table2 finalizes the per-continent share/RTT table.
func (a *Aggregator) Table2() map[geo.Continent]map[string]ContinentSiteShare {
	out := make(map[geo.Continent]map[string]ContinentSiteShare)
	for cont, byc := range a.contCounts {
		out[cont] = make(map[string]ContinentSiteShare)
		for _, site := range a.cfg.Sites {
			cell := ContinentSiteShare{
				Queries:   byc[site],
				MedianRTT: sketchMedian(a.contRTT[cont][site]),
			}
			if a.contTotals[cont] > 0 {
				cell.SharePct = 100 * float64(byc[site]) / float64(a.contTotals[cont])
			}
			out[cont][site] = cell
		}
	}
	return out
}

// preference finalizes Figure 4 and the qualified VPs' top-site
// shares (in sorted VP order, which the bootstrap CI depends on).
func (a *Aggregator) preference() (PreferenceResult, []float64) {
	res := PreferenceResult{
		ComboID: a.cfg.ComboID,
		Curves:  make(map[geo.Continent]map[string][]float64),
	}
	if !a.twoSite {
		return res, nil
	}
	var topShares []float64
	weak, strong := 0, 0
	for _, k := range a.sortedVPKeys() {
		st := a.vps[k]
		n := st.c0 + st.c1
		if n < 5 {
			continue
		}
		f0 := float64(st.c0) / float64(n)
		if res.Curves[st.continent] == nil {
			res.Curves[st.continent] = map[string][]float64{a.s0: nil, a.s1: nil}
		}
		res.Curves[st.continent][a.s0] = append(res.Curves[st.continent][a.s0], f0)
		res.Curves[st.continent][a.s1] = append(res.Curves[st.continent][a.s1], 1-f0)

		if st.c0 == 0 || st.c1 == 0 {
			continue
		}
		gap := stats.Median(st.rtt0) - stats.Median(st.rtt1)
		if gap < 0 {
			gap = -gap
		}
		if gap < MinRTTGapMs {
			continue
		}
		res.QualifiedVPs++
		top := f0
		if 1-f0 > top {
			top = 1 - f0
		}
		topShares = append(topShares, top)
		if top >= WeakPreference {
			weak++
		}
		if top >= StrongPreference {
			strong++
		}
	}
	for _, bySite := range res.Curves {
		for s := range bySite {
			sort.Sort(sort.Reverse(sort.Float64Slice(bySite[s])))
		}
	}
	if res.QualifiedVPs > 0 {
		res.WeakFrac = float64(weak) / float64(res.QualifiedVPs)
		res.StrongFrac = float64(strong) / float64(res.QualifiedVPs)
	}
	return res, topShares
}

// Preference finalizes Figure 4.
func (a *Aggregator) Preference() PreferenceResult {
	res, _ := a.preference()
	return res
}

// PreferenceCI bootstraps 95% confidence intervals for the weak and
// strong preference fractions, resampling the qualified VPs' top-site
// shares exactly as the slice-based PreferenceCI does.
func (a *Aggregator) PreferenceCI(rounds int, seed int64) (weakCI, strongCI Interval, err error) {
	if !a.twoSite {
		return Interval{}, Interval{}, fmt.Errorf("analysis: preference CI needs a two-site dataset")
	}
	_, topShares := a.preference()
	if len(topShares) == 0 {
		return Interval{}, Interval{}, fmt.Errorf("analysis: no qualified VPs")
	}
	rng := rand.New(rand.NewSource(seed))
	wl, wh, err := stats.BootstrapCI(topShares, func(xs []float64) float64 {
		return stats.Fraction(xs, func(x float64) bool { return x >= WeakPreference })
	}, 0.95, rounds, rng)
	if err != nil {
		return Interval{}, Interval{}, err
	}
	sl, sh, err := stats.BootstrapCI(topShares, func(xs []float64) float64 {
		return stats.Fraction(xs, func(x float64) bool { return x >= StrongPreference })
	}, 0.95, rounds, rng)
	if err != nil {
		return Interval{}, Interval{}, err
	}
	return Interval{wl, wh}, Interval{sl, sh}, nil
}

// RTTSensitivity finalizes Figure 5.
func (a *Aggregator) RTTSensitivity() []RTTSensitivityPoint {
	t2 := a.Table2()
	var out []RTTSensitivityPoint
	for _, cont := range geo.Continents() {
		cells, ok := t2[cont]
		if !ok {
			continue
		}
		for _, site := range a.cfg.Sites {
			cell := cells[site]
			out = append(out, RTTSensitivityPoint{
				Continent: cont,
				Site:      site,
				MedianRTT: cell.MedianRTT,
				Fraction:  cell.SharePct / 100,
				VPs:       a.vpsPerCont[cont],
			})
		}
	}
	return out
}

// SiteShareByContinent finalizes one Figure 6 curve point per
// continent for the named site.
func (a *Aggregator) SiteShareByContinent(site string) map[geo.Continent]float64 {
	out := make(map[geo.Continent]float64)
	for cont, total := range a.contTotals {
		if total > 0 {
			out[cont] = float64(a.contCounts[cont][site]) / float64(total)
		}
	}
	return out
}

// PreferenceHardening finalizes the §4.3 first-half/second-half
// comparison of weak-preference VPs.
func (a *Aggregator) PreferenceHardening() HardeningResult {
	if !a.twoSite {
		return HardeningResult{}
	}
	var res HardeningResult
	var sum1, sum2 float64
	for _, k := range a.sortedVPKeys() {
		st := a.vps[k]
		n := st.c0 + st.c1
		if n < 10 {
			continue
		}
		f0 := float64(st.c0) / float64(n)
		top := f0
		h1n, h2n := st.h1n0, st.h2n0
		if 1-f0 > top {
			top = 1 - f0
			h1n, h2n = st.h1n1, st.h2n1
		}
		// Weak but not already strong in aggregate.
		if top < WeakPreference || top >= 0.95 {
			continue
		}
		if st.h1t == 0 || st.h2t == 0 {
			continue
		}
		res.VPs++
		sum1 += float64(h1n) / float64(st.h1t)
		sum2 += float64(h2n) / float64(st.h2t)
	}
	if res.VPs > 0 {
		res.FirstHalf = sum1 / float64(res.VPs)
		res.SecondHalf = sum2 / float64(res.VPs)
	}
	return res
}

// AuthSidePreference finalizes the middlebox cross-check for sources
// that sent at least minQueries.
func (a *Aggregator) AuthSidePreference(minQueries int) (weakFrac, strongFrac float64, resolvers int) {
	weak, strong := 0, 0
	for _, counts := range a.perSrc {
		total, top := 0, 0
		for _, n := range counts {
			total += n
			if n > top {
				top = n
			}
		}
		if total < minQueries {
			continue
		}
		resolvers++
		frac := float64(top) / float64(total)
		if frac >= WeakPreference {
			weak++
		}
		if frac >= StrongPreference {
			strong++
		}
	}
	if resolvers > 0 {
		weakFrac = float64(weak) / float64(resolvers)
		strongFrac = float64(strong) / float64(resolvers)
	}
	return weakFrac, strongFrac, resolvers
}

// RankAgg accumulates per-recursive per-server query counts for the
// Figure 7 rank analysis, streaming straight from a trace source
// instead of pivoting a materialized count table.
type RankAgg struct {
	perRec map[string]map[string]int
	total  int
}

// NewRankAgg returns an empty rank aggregator.
func NewRankAgg() *RankAgg {
	return &RankAgg{perRec: make(map[string]map[string]int)}
}

// Observe adds n queries from a recursive to a server.
func (a *RankAgg) Observe(recursive, server string, n int) {
	byServer := a.perRec[recursive]
	if byServer == nil {
		byServer = make(map[string]int)
		a.perRec[recursive] = byServer
	}
	byServer[server] += n
	a.total += n
}

// TotalQueries returns the number of queries observed.
func (a *RankAgg) TotalQueries() int { return a.total }

// Recursives returns the number of distinct recursives observed.
func (a *RankAgg) Recursives() int { return len(a.perRec) }

// PerRecursive exposes the per-recursive per-server counts (the
// ditl.Trace.PerRecursive pivot, built incrementally).
func (a *RankAgg) PerRecursive() map[string]map[string]int { return a.perRec }

// Bands computes the Figure 7 rank bands from the accumulated counts.
func (a *RankAgg) Bands(totalServers, minQueries int) RankBands {
	return Ranks(a.perRec, totalServers, minQueries)
}
