package analysis

import (
	"math"
	"time"

	"ritw/internal/measure"
	"ritw/internal/stats"
)

// WindowStats summarizes client-observed behaviour within a time
// window of a run.
type WindowStats struct {
	// Queries is the number of client queries sent in the window.
	Queries int
	// FailRate is the fraction that got no answer (client timeout,
	// typically after the resolver exhausted its retries).
	FailRate float64
	// SiteShare is the failed-site share among answered queries.
	SiteShare float64
	// MedianRTT is the median client RTT over answered queries —
	// failover retries show up here as extra latency.
	MedianRTT float64
}

// OutageImpact quantifies a site-failure window (measure.Outage): the
// failed site's traffic share and the client failure rate before,
// during and after the outage. The paper's §7 motivates multiple
// authoritatives and anycast with exactly this resilience argument.
type OutageImpact struct {
	Site                  string
	Before, During, After WindowStats
}

// OutageImpactOf computes the impact of an outage of site during
// [start, end) on a dataset.
func OutageImpactOf(ds *measure.Dataset, site string, start, end time.Duration) OutageImpact {
	impact := OutageImpact{Site: site}
	windows := []struct {
		lo, hi time.Duration
		out    *WindowStats
	}{
		{0, start, &impact.Before},
		{start, end, &impact.During},
		{end, ds.Duration + time.Hour, &impact.After},
	}
	for _, w := range windows {
		var answered, toSite int
		var rtts []float64
		for _, r := range ds.Records {
			if r.SentAt < w.lo || r.SentAt >= w.hi {
				continue
			}
			w.out.Queries++
			if !r.OK {
				continue
			}
			answered++
			rtts = append(rtts, r.RTTms)
			if r.Site == site {
				toSite++
			}
		}
		if w.out.Queries > 0 {
			w.out.FailRate = 1 - float64(answered)/float64(w.out.Queries)
		}
		if answered > 0 {
			w.out.SiteShare = float64(toSite) / float64(answered)
		}
		if m := stats.Median(rtts); !math.IsNaN(m) {
			w.out.MedianRTT = m
		}
	}
	return impact
}
