package analysis

import (
	"fmt"
	"math"
	"time"

	"ritw/internal/faults"
	"ritw/internal/measure"
	"ritw/internal/stats"
)

// WindowStats summarizes client-observed behaviour within a time
// window of a run.
type WindowStats struct {
	// Queries is the number of client queries sent in the window.
	Queries int
	// FailRate is the fraction that got no answer (client timeout,
	// typically after the resolver exhausted its retries).
	FailRate float64
	// SiteShare is the failed-site share among answered queries.
	SiteShare float64
	// MedianRTT is the median client RTT over answered queries —
	// failover retries show up here as extra latency.
	MedianRTT float64
}

// OutageImpact quantifies a site-failure window (measure.Outage): the
// failed site's traffic share and the client failure rate before,
// during and after the outage. The paper's §7 motivates multiple
// authoritatives and anycast with exactly this resilience argument.
type OutageImpact struct {
	Site                  string
	Before, During, After WindowStats
}

// OutageImpactOf computes the impact of an outage of site during
// [start, end) on a dataset. It is the single-site wrapper over
// FaultImpacts, kept for the original §7 experiment's shape.
func OutageImpactOf(ds *measure.Dataset, site string, start, end time.Duration) OutageImpact {
	fi := FaultImpacts(ds, []FaultWindow{{Label: "outage " + site, Site: site, Start: start, End: end}})[0]
	return OutageImpact{
		Site:   site,
		Before: fi.Before.windowStats(site),
		During: fi.During.windowStats(site),
		After:  fi.After.windowStats(site),
	}
}

// FaultWindow is one labelled time window whose client-side impact the
// analysis reports on: typically the envelope of a scheduled fault.
type FaultWindow struct {
	// Label names the window in reports ("outage FRA", "flap GRU"...).
	Label string
	// Site is the fault's subject site; its traffic share is tracked
	// explicitly across the phases ("" for site-less windows).
	Site string
	// Start and End bound the window, [Start, End).
	Start, End time.Duration
}

// WindowsFromSchedule converts a fault schedule's events into labelled
// analysis windows, one per configured fault in schedule order.
func WindowsFromSchedule(s *faults.Schedule) []FaultWindow {
	evs := s.EventWindows()
	out := make([]FaultWindow, len(evs))
	for i, ev := range evs {
		out[i] = FaultWindow{
			Label: ev.Kind + " " + ev.Site,
			Site:  ev.Site,
			Start: ev.Start,
			End:   ev.End,
		}
	}
	return out
}

// PhaseStats summarizes the client-observed behaviour of one phase
// (before/during/after) of a fault window.
type PhaseStats struct {
	// Queries is the number of client queries sent in the phase.
	Queries int
	// Answered is how many of them got an answer.
	Answered int
	// FailRate is 1 - Answered/Queries (0 for an empty phase).
	FailRate float64
	// MedianRTT is the median client RTT over answered queries.
	MedianRTT float64
	// SiteShare is each answering site's share of the answered queries
	// — the traffic-redistribution picture.
	SiteShare map[string]float64
}

// windowStats projects the phase onto the legacy single-site view.
func (p PhaseStats) windowStats(site string) WindowStats {
	return WindowStats{
		Queries:   p.Queries,
		FailRate:  p.FailRate,
		SiteShare: p.SiteShare[site],
		MedianRTT: p.MedianRTT,
	}
}

// FaultImpact is the before/during/after account of one fault window:
// client-observed failure rate, failover latency penalty, and how the
// answered traffic redistributed across sites.
type FaultImpact struct {
	Window                FaultWindow
	Before, During, After PhaseStats
	// FailoverPenaltyMs is During.MedianRTT - Before.MedianRTT: the
	// extra client latency paid while resolvers routed around the
	// fault (0 when either phase answered nothing).
	FailoverPenaltyMs float64
}

// FaultImpacts computes the impact of each window on a materialized
// dataset. Records are bucketed by client send time: before [0,Start),
// during [Start,End), after [End,∞).
func FaultImpacts(ds *measure.Dataset, windows []FaultWindow) []FaultImpact {
	agg := NewFaultAggregator(windows, 0, 0)
	for _, r := range ds.Records {
		agg.OnQuery(r)
	}
	return agg.Impacts()
}

// phaseAgg accumulates one phase of one window incrementally.
type phaseAgg struct {
	queries  int
	answered int
	toSite   map[string]int
	rtt      *stats.QuantileSketch
}

func (p *phaseAgg) observe(r measure.QueryRecord) {
	p.queries++
	if !r.OK {
		return
	}
	p.answered++
	p.rtt.Observe(r.RTTms)
	if r.Site != "" {
		p.toSite[r.Site]++
	}
}

func (p *phaseAgg) stats() PhaseStats {
	out := PhaseStats{
		Queries:   p.queries,
		Answered:  p.answered,
		SiteShare: make(map[string]float64, len(p.toSite)),
	}
	if p.queries > 0 {
		out.FailRate = 1 - float64(p.answered)/float64(p.queries)
	}
	if m := p.rtt.Median(); !math.IsNaN(m) {
		out.MedianRTT = m
	}
	for site, n := range p.toSite {
		out.SiteShare[site] = float64(n) / float64(p.answered)
	}
	return out
}

// FaultAggregator computes FaultImpacts one record at a time: a
// measure.Sink usable as a streaming run's analysis so fault
// experiments never need materialized record slices. With maxSamples
// <= 0 the per-phase RTT sketches are exact and Impacts matches
// FaultImpacts on the same records byte for byte; a positive cap
// bounds memory via reservoir sampling (seeded for reproducibility).
type FaultAggregator struct {
	windows []FaultWindow
	phases  [][3]*phaseAgg // per window: before, during, after
}

// NewFaultAggregator builds an aggregator over the given windows.
func NewFaultAggregator(windows []FaultWindow, maxSamples int, seed int64) *FaultAggregator {
	a := &FaultAggregator{
		windows: append([]FaultWindow(nil), windows...),
		phases:  make([][3]*phaseAgg, len(windows)),
	}
	for i := range a.phases {
		for j := 0; j < 3; j++ {
			a.phases[i][j] = &phaseAgg{
				toSite: make(map[string]int),
				rtt:    stats.NewQuantileSketch(maxSamples, seed+int64(i*3+j)),
			}
		}
	}
	return a
}

// OnQuery buckets one client record into each window's phase.
func (a *FaultAggregator) OnQuery(r measure.QueryRecord) {
	for i, w := range a.windows {
		switch {
		case r.SentAt < w.Start:
			a.phases[i][0].observe(r)
		case r.SentAt < w.End:
			a.phases[i][1].observe(r)
		default:
			a.phases[i][2].observe(r)
		}
	}
}

// OnAuth is a no-op: fault impact is a client-side view.
func (a *FaultAggregator) OnAuth(measure.AuthRecord) {}

// Close implements measure.Sink.
func (a *FaultAggregator) Close() error { return nil }

// Impacts finalizes the per-window accounts.
func (a *FaultAggregator) Impacts() []FaultImpact {
	out := make([]FaultImpact, len(a.windows))
	for i, w := range a.windows {
		fi := FaultImpact{
			Window: w,
			Before: a.phases[i][0].stats(),
			During: a.phases[i][1].stats(),
			After:  a.phases[i][2].stats(),
		}
		if fi.Before.Answered > 0 && fi.During.Answered > 0 {
			fi.FailoverPenaltyMs = fi.During.MedianRTT - fi.Before.MedianRTT
		}
		out[i] = fi
	}
	return out
}

// FormatImpact renders one impact as the fixed-width phase table the
// ritw scenarios command prints.
func FormatImpact(fi FaultImpact, sites []string) []string {
	lines := []string{fmt.Sprintf("%s  [%v, %v)", fi.Window.Label, fi.Window.Start, fi.Window.End)}
	phase := func(name string, p PhaseStats) string {
		s := fmt.Sprintf("  %-7s %6d q  fail %5.1f%%  median %6.1f ms",
			name, p.Queries, 100*p.FailRate, p.MedianRTT)
		for _, site := range sites {
			s += fmt.Sprintf("  %s %5.1f%%", site, 100*p.SiteShare[site])
		}
		return s
	}
	lines = append(lines,
		phase("before", fi.Before),
		phase("during", fi.During),
		phase("after", fi.After),
		fmt.Sprintf("  failover penalty: %+.1f ms median", fi.FailoverPenaltyMs),
	)
	return lines
}
