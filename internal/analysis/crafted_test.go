package analysis

import (
	"fmt"
	"testing"
	"time"

	"ritw/internal/geo"
	"ritw/internal/measure"
)

// craftedDataset builds a dataset by hand so each analysis function's
// exact semantics can be pinned, independent of the simulator.
func craftedDataset(sites []string) *measure.Dataset {
	return &measure.Dataset{
		ComboID:  "crafted",
		Sites:    sites,
		Interval: 2 * time.Minute,
		Duration: time.Hour,
	}
}

// addVP appends a VP's query sequence: each element names the
// answering site ("" = failed query). RTTs are fixed per site.
func addVP(ds *measure.Dataset, probe int, cont geo.Continent, rtts map[string]float64, seq []string) {
	vp := fmt.Sprintf("%d/10.0.0.1", probe)
	for i, site := range seq {
		rec := measure.QueryRecord{
			ProbeID:   probe,
			VPKey:     vp,
			Continent: cont,
			Seq:       i,
			SentAt:    time.Duration(i) * 2 * time.Minute,
			Site:      site,
			OK:        site != "",
		}
		if site != "" {
			rec.RTTms = rtts[site]
		}
		ds.Records = append(ds.Records, rec)
	}
}

func TestProbeAllExactSemantics(t *testing.T) {
	ds := craftedDataset([]string{"A", "B"})
	rtts := map[string]float64{"A": 10, "B": 100}
	// VP 1: sees B on its 3rd query -> reaches all at index 2 (i.e. 2
	// queries after the first).
	addVP(ds, 1, geo.Europe, rtts, []string{"A", "A", "B", "A", "A"})
	// VP 2: never sees B.
	addVP(ds, 2, geo.Europe, rtts, []string{"A", "A", "A", "A", "A"})
	// VP 3: only 3 answered queries -> excluded by the >=5 filter.
	addVP(ds, 3, geo.Europe, rtts, []string{"A", "B", "A"})
	// VP 4: failures don't count as coverage or answered queries.
	addVP(ds, 4, geo.Europe, rtts, []string{"A", "", "B", "A", "A", "A"})

	res := ProbeAll(ds)
	if res.VPs != 3 {
		t.Fatalf("considered VPs = %d, want 3 (VP 3 filtered)", res.VPs)
	}
	if res.PercentAll < 66.6 || res.PercentAll > 66.7 {
		t.Errorf("percent-all = %.2f, want 2/3", res.PercentAll)
	}
	// VP 1 reached all at record index 2; VP 4 at index 2 as well.
	if res.Box.Median != 2 {
		t.Errorf("median queries-to-all = %v, want 2", res.Box.Median)
	}
}

func TestShareVsRTTHotCacheSemantics(t *testing.T) {
	ds := craftedDataset([]string{"A", "B"})
	rtts := map[string]float64{"A": 10, "B": 100}
	// Queries before the VP has seen both sites are excluded: the
	// first A and the first B warm the cache; only the last three
	// count (A, A, B).
	addVP(ds, 1, geo.Europe, rtts, []string{"A", "B", "A", "A", "B"})
	shares := ShareVsRTT(ds)
	bySite := map[string]SiteShare{}
	for _, s := range shares {
		bySite[s.Site] = s
	}
	if bySite["A"].Queries != 2 || bySite["B"].Queries != 1 {
		t.Fatalf("hot-cache counts = A:%d B:%d, want 2/1",
			bySite["A"].Queries, bySite["B"].Queries)
	}
	if bySite["A"].Share < 0.66 || bySite["A"].Share > 0.67 {
		t.Errorf("A share = %v", bySite["A"].Share)
	}
	if bySite["A"].MedianRTT != 10 || bySite["B"].MedianRTT != 100 {
		t.Errorf("median RTTs = %v/%v", bySite["A"].MedianRTT, bySite["B"].MedianRTT)
	}
}

func TestPreferenceExactThresholds(t *testing.T) {
	ds := craftedDataset([]string{"A", "B"})
	fast := map[string]float64{"A": 10, "B": 100} // 90 ms gap: qualified
	near := map[string]float64{"A": 10, "B": 30}  // 20 ms gap: not qualified

	// VP 1: 9 of 10 to A = 90% -> strong (and weak).
	addVP(ds, 1, geo.Europe, fast, []string{"A", "A", "A", "A", "A", "A", "A", "A", "A", "B"})
	// VP 2: 6 of 10 to A = 60% -> weak only.
	addVP(ds, 2, geo.Europe, fast, []string{"A", "A", "A", "A", "A", "A", "B", "B", "B", "B"})
	// VP 3: 5 of 10 -> no preference.
	addVP(ds, 3, geo.Europe, fast, []string{"A", "B", "A", "B", "A", "B", "A", "B", "A", "B"})
	// VP 4: gap below 50 ms -> not qualified despite 100% preference.
	addVP(ds, 4, geo.Europe, near, []string{"A", "A", "A", "A", "A", "B", "A", "A", "A", "A"})
	// VP 5: never saw B -> no measurable gap, not qualified.
	addVP(ds, 5, geo.Europe, fast, []string{"A", "A", "A", "A", "A", "A"})

	res := Preference(ds)
	if res.QualifiedVPs != 3 {
		t.Fatalf("qualified = %d, want 3", res.QualifiedVPs)
	}
	if res.WeakFrac < 0.66 || res.WeakFrac > 0.67 {
		t.Errorf("weak = %v, want 2/3", res.WeakFrac)
	}
	if res.StrongFrac < 0.33 || res.StrongFrac > 0.34 {
		t.Errorf("strong = %v, want 1/3", res.StrongFrac)
	}
	// Curves include every VP with >=5 answered queries, qualified or
	// not (VP 4 and 5 included): 5 entries per site for EU.
	if got := len(res.Curves[geo.Europe]["A"]); got != 5 {
		t.Errorf("curve length = %d, want 5", got)
	}
}

func TestTable2ExactCells(t *testing.T) {
	ds := craftedDataset([]string{"A", "B"})
	rtts := map[string]float64{"A": 10, "B": 100}
	addVP(ds, 1, geo.Europe, rtts, []string{"A", "A", "A", "B"})
	addVP(ds, 2, geo.Oceania, rtts, []string{"B", "B"})
	t2 := Table2(ds)
	eu := t2[geo.Europe]
	if eu["A"].SharePct != 75 || eu["B"].SharePct != 25 {
		t.Errorf("EU shares = %v/%v", eu["A"].SharePct, eu["B"].SharePct)
	}
	if eu["A"].MedianRTT != 10 {
		t.Errorf("EU A RTT = %v", eu["A"].MedianRTT)
	}
	oc := t2[geo.Oceania]
	if oc["B"].SharePct != 100 || oc["A"].Queries != 0 {
		t.Errorf("OC cells = %+v", oc)
	}
}

func TestSiteShareByContinentIgnoresFailures(t *testing.T) {
	ds := craftedDataset([]string{"A", "B"})
	rtts := map[string]float64{"A": 10, "B": 100}
	addVP(ds, 1, geo.Asia, rtts, []string{"A", "", "B", ""})
	shares := SiteShareByContinent(ds, "A")
	if shares[geo.Asia] != 0.5 {
		t.Errorf("AS share = %v, want 0.5 (failures excluded)", shares[geo.Asia])
	}
}

func TestPreferenceHardeningExactSplit(t *testing.T) {
	ds := craftedDataset([]string{"A", "B"})
	rtts := map[string]float64{"A": 10, "B": 100}
	// 12 queries spanning the hour (24 min of sends at 2-min cadence
	// would all fall in the first half, so space them manually).
	vp := "7/10.0.0.1"
	seq := []string{"A", "B", "A", "B", "A", "A", "A", "A", "A", "B", "A", "A"}
	for i, site := range seq {
		ds.Records = append(ds.Records, measure.QueryRecord{
			ProbeID: 7, VPKey: vp, Continent: geo.Europe, Seq: i,
			SentAt: time.Duration(i) * 5 * time.Minute, // 0..55 min
			Site:   site, OK: true, RTTms: rtts[site],
		})
	}
	res := PreferenceHardening(ds)
	if res.VPs != 1 {
		t.Fatalf("VPs = %d (top share %v)", res.VPs, res)
	}
	// First half (0..<30min): indices 0-5: A,B,A,B,A,A -> 4/6 to A.
	// Second half: indices 6-11: A,A,A,B,A,A -> 5/6 to A.
	if res.FirstHalf < 0.66 || res.FirstHalf > 0.67 {
		t.Errorf("first half = %v, want 4/6", res.FirstHalf)
	}
	if res.SecondHalf < 0.83 || res.SecondHalf > 0.84 {
		t.Errorf("second half = %v, want 5/6", res.SecondHalf)
	}
}
