package analysis

import (
	"math"
	"reflect"
	"testing"
	"time"

	"ritw/internal/geo"
	"ritw/internal/measure"
	"ritw/internal/obs"
)

// feedArrivalOrder streams a dataset through the aggregator in raw
// record order — the completion order a live run emits — rather than
// the sorted per-VP order the wrappers use. Results must not care.
func feedArrivalOrder(a *Aggregator, ds *measure.Dataset) {
	for _, r := range ds.Records {
		a.OnQuery(r)
	}
	for _, ar := range ds.AuthRecords {
		a.OnAuth(ar)
	}
}

func eqNaN(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestAggregatorMatchesWrappers is the tentpole invariant: one
// streaming pass in arrival order reproduces every slice-based
// analysis bit for bit (modulo NaN cells, which compare unequal to
// themselves).
func TestAggregatorMatchesWrappers(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-checks every aggregator against three materialized runs")
	}
	for _, id := range []string{"2B", "2C", "4B"} {
		ds := dataset(t, id)
		a := AggregatorFor(ds)
		feedArrivalOrder(a, ds)

		if got, want := a.NumRecords(), len(ds.Records); got != want {
			t.Errorf("%s: NumRecords = %d, want %d", id, got, want)
		}
		if got, want := a.NumAuthRecords(), len(ds.AuthRecords); got != want {
			t.Errorf("%s: NumAuthRecords = %d, want %d", id, got, want)
		}

		if got, want := a.ProbeAll(), ProbeAll(ds); got != want {
			t.Errorf("%s: ProbeAll\n got %+v\nwant %+v", id, got, want)
		}

		gotShares, wantShares := a.ShareVsRTT(), ShareVsRTT(ds)
		if len(gotShares) != len(wantShares) {
			t.Fatalf("%s: ShareVsRTT lengths %d/%d", id, len(gotShares), len(wantShares))
		}
		for i := range gotShares {
			g, w := gotShares[i], wantShares[i]
			if g.Site != w.Site || g.Share != w.Share || g.Queries != w.Queries ||
				!eqNaN(g.MedianRTT, w.MedianRTT) {
				t.Errorf("%s: ShareVsRTT[%d]\n got %+v\nwant %+v", id, i, g, w)
			}
		}

		if got, want := a.Preference(), Preference(ds); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Preference\n got %+v\nwant %+v", id, got, want)
		}

		gotT2, wantT2 := a.Table2(), Table2(ds)
		if len(gotT2) != len(wantT2) {
			t.Fatalf("%s: Table2 continents %d/%d", id, len(gotT2), len(wantT2))
		}
		for cont, wantCells := range wantT2 {
			for site, w := range wantCells {
				g := gotT2[cont][site]
				if g.SharePct != w.SharePct || g.Queries != w.Queries ||
					!eqNaN(g.MedianRTT, w.MedianRTT) {
					t.Errorf("%s: Table2[%v][%s]\n got %+v\nwant %+v", id, cont, site, g, w)
				}
			}
		}

		gotRS, wantRS := a.RTTSensitivity(), RTTSensitivity(ds)
		if len(gotRS) != len(wantRS) {
			t.Fatalf("%s: RTTSensitivity lengths %d/%d", id, len(gotRS), len(wantRS))
		}
		for i := range gotRS {
			g, w := gotRS[i], wantRS[i]
			if g.Continent != w.Continent || g.Site != w.Site || g.Fraction != w.Fraction ||
				g.VPs != w.VPs || !eqNaN(g.MedianRTT, w.MedianRTT) {
				t.Errorf("%s: RTTSensitivity[%d]\n got %+v\nwant %+v", id, i, g, w)
			}
		}

		for _, site := range ds.Sites {
			got, want := a.SiteShareByContinent(site), SiteShareByContinent(ds, site)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: SiteShareByContinent(%s)\n got %+v\nwant %+v", id, site, got, want)
			}
		}

		if got, want := a.PreferenceHardening(), PreferenceHardening(ds); got != want {
			t.Errorf("%s: PreferenceHardening\n got %+v\nwant %+v", id, got, want)
		}

		gw, gs, gn := a.AuthSidePreference(5)
		ww, ws, wn := AuthSidePreference(ds, 5)
		if gw != ww || gs != ws || gn != wn {
			t.Errorf("%s: AuthSidePreference = %v/%v/%d, want %v/%v/%d", id, gw, gs, gn, ww, ws, wn)
		}

		if len(ds.Sites) == 2 {
			gWeak, gStrong, gErr := a.PreferenceCI(200, 1)
			wWeak, wStrong, wErr := PreferenceCI(ds, 200, 1)
			if gErr != nil || wErr != nil {
				t.Fatalf("%s: CI errors %v/%v", id, gErr, wErr)
			}
			if gWeak != wWeak || gStrong != wStrong {
				t.Errorf("%s: PreferenceCI = %+v/%+v, want %+v/%+v", id, gWeak, gStrong, wWeak, wStrong)
			}
		} else {
			if _, _, err := a.PreferenceCI(100, 1); err == nil {
				t.Errorf("%s: PreferenceCI should reject non-pair combos", id)
			}
		}
	}
}

// TestAggregatorAsRunSink drives the aggregator directly from a
// streaming run — no dataset ever materialized — and checks it agrees
// with the wrappers over the equivalent materialized run.
func TestAggregatorAsRunSink(t *testing.T) {
	combo, err := measure.CombinationByID("2C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := measure.DefaultRunConfig(combo, 23)
	pc := cfg.Population
	pc.NumProbes = 150
	cfg.Population = pc

	ds, err := measure.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAggregator(AggConfig{ComboID: combo.ID, Sites: combo.Sites, Duration: cfg.Duration})
	if _, err := measure.RunStream(cfg, a); err != nil {
		t.Fatal(err)
	}
	if got, want := a.ProbeAll(), ProbeAll(ds); got != want {
		t.Errorf("ProbeAll from run sink\n got %+v\nwant %+v", got, want)
	}
	if got, want := a.Preference(), Preference(ds); !reflect.DeepEqual(got, want) {
		t.Errorf("Preference from run sink\n got %+v\nwant %+v", got, want)
	}
	if got, want := a.PreferenceHardening(), PreferenceHardening(ds); got != want {
		t.Errorf("Hardening from run sink\n got %+v\nwant %+v", got, want)
	}
	if a.NumRecords() != len(ds.Records) || a.NumAuthRecords() != len(ds.AuthRecords) {
		t.Errorf("streamed %d/%d records, want %d/%d",
			a.NumRecords(), a.NumAuthRecords(), len(ds.Records), len(ds.AuthRecords))
	}
	if a.Size() == 0 {
		t.Error("aggregator retained no state")
	}
}

// TestAggregatorCrafted replays the crafted-semantics scenarios
// through arrival-order streaming.
func TestAggregatorCrafted(t *testing.T) {
	ds := craftedDataset([]string{"A", "B"})
	fast := map[string]float64{"A": 10, "B": 100}
	addVP(ds, 1, geo.Europe, fast, []string{"A", "A", "B", "A", "A", "A", "A", "A", "A", "B"})
	addVP(ds, 2, geo.Oceania, fast, []string{"B", "", "B", "A", "B", "B", "B", "B", "B", "B"})
	addVP(ds, 3, geo.Europe, fast, []string{"A", "B", "A"})
	addVP(ds, 4, geo.Asia, fast, []string{"A", "", "B", "A", "A", "A", "B", "B", "A", "A", "A", "A"})

	a := AggregatorFor(ds)
	feedArrivalOrder(a, ds)
	if got, want := a.ProbeAll(), ProbeAll(ds); got != want {
		t.Errorf("ProbeAll\n got %+v\nwant %+v", got, want)
	}
	if got, want := a.Preference(), Preference(ds); !reflect.DeepEqual(got, want) {
		t.Errorf("Preference\n got %+v\nwant %+v", got, want)
	}
	if got, want := a.PreferenceHardening(), PreferenceHardening(ds); got != want {
		t.Errorf("Hardening\n got %+v\nwant %+v", got, want)
	}
	shares := a.ShareVsRTT()
	want := ShareVsRTT(ds)
	for i := range shares {
		if shares[i].Queries != want[i].Queries || !eqNaN(shares[i].MedianRTT, want[i].MedianRTT) {
			t.Errorf("ShareVsRTT[%d] = %+v, want %+v", i, shares[i], want[i])
		}
	}
}

// TestAggregatorBoundedMode checks MaxSamples caps retained samples
// while keeping medians close, and that it strictly shrinks the state.
func TestAggregatorBoundedMode(t *testing.T) {
	ds := dataset(t, "2C")
	exact := AggregatorFor(ds)
	feedArrivalOrder(exact, ds)

	bounded := NewAggregator(AggConfig{
		ComboID: ds.ComboID, Sites: ds.Sites, Duration: ds.Duration,
		MaxSamples: 128, Seed: 42,
	})
	feedArrivalOrder(bounded, ds)

	if bounded.Size() >= exact.Size() {
		t.Errorf("bounded size %d not below exact %d", bounded.Size(), exact.Size())
	}
	eShares, bShares := exact.ShareVsRTT(), bounded.ShareVsRTT()
	for i := range eShares {
		// Counts are exact either way; only sampled medians move.
		if bShares[i].Queries != eShares[i].Queries || bShares[i].Share != eShares[i].Share {
			t.Errorf("bounded counts drifted: %+v vs %+v", bShares[i], eShares[i])
		}
		if e, b := eShares[i].MedianRTT, bShares[i].MedianRTT; !math.IsNaN(e) {
			if rel := math.Abs(b-e) / math.Max(e, 1); rel > 0.25 {
				t.Errorf("site %s bounded median %.1f vs exact %.1f", eShares[i].Site, b, e)
			}
		}
	}
	// Preference is per-VP state, untouched by the sample cap.
	if !reflect.DeepEqual(bounded.Preference(), exact.Preference()) {
		t.Error("bounded mode changed the preference result")
	}
}

// TestAggregatorMetrics checks the peak-size gauge lands in the
// registry at Close.
func TestAggregatorMetrics(t *testing.T) {
	ds := dataset(t, "2B")
	reg := obs.NewRegistry()
	a := NewAggregator(AggConfig{
		ComboID: ds.ComboID, Sites: ds.Sites, Duration: ds.Duration, Metrics: reg,
	})
	feedArrivalOrder(a, ds)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	g := reg.Snapshot().Gauge(`analysis_aggregator_peak_size{combo="2B"}`)
	if g != float64(a.Size()) || g == 0 {
		t.Errorf("peak gauge = %v, want %d", g, a.Size())
	}
}

func TestAggregatorEmpty(t *testing.T) {
	a := NewAggregator(AggConfig{ComboID: "X", Sites: []string{"FRA"}, Duration: time.Hour})
	if res := a.ProbeAll(); res.VPs != 0 || res.PercentAll != 0 {
		t.Errorf("empty ProbeAll = %+v", res)
	}
	if res := a.Preference(); res.QualifiedVPs != 0 {
		t.Errorf("empty Preference = %+v", res)
	}
	if _, _, n := a.AuthSidePreference(1); n != 0 {
		t.Errorf("empty AuthSidePreference resolvers = %d", n)
	}
	if a.Size() != 0 {
		t.Errorf("empty size = %d", a.Size())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRankAggMatchesRanks(t *testing.T) {
	per := map[string]map[string]int{
		"r1": {"a": 300},
		"r2": {"a": 100, "b": 50, "c": 40, "d": 30, "e": 20, "f": 60},
		"r3": {"a": 50, "b": 50, "c": 50, "d": 50, "e": 50, "f": 50, "g": 50, "h": 50, "i": 50, "j": 50},
		"r4": {"a": 3},
	}
	agg := NewRankAgg()
	total := 0
	for rec, byServer := range per {
		for srv, n := range byServer {
			// Split one count across two observations: they must merge.
			agg.Observe(rec, srv, n/2)
			agg.Observe(rec, srv, n-n/2)
			total += n
		}
	}
	if agg.TotalQueries() != total {
		t.Errorf("total = %d, want %d", agg.TotalQueries(), total)
	}
	if agg.Recursives() != len(per) {
		t.Errorf("recursives = %d, want %d", agg.Recursives(), len(per))
	}
	if got, want := agg.Bands(10, 250), Ranks(per, 10, 250); got != want {
		t.Errorf("bands\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(agg.PerRecursive(), per) {
		t.Error("per-recursive pivot differs")
	}
}
