package analysis

import (
	"sync"
	"testing"
	"time"

	"ritw/internal/atlas"
	"ritw/internal/geo"
	"ritw/internal/measure"
)

// Shared small datasets: generating them is the expensive part, so
// tests reuse one per combo.
var (
	dsOnce  sync.Once
	dsCache map[string]*measure.Dataset
)

func dataset(t *testing.T, comboID string) *measure.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		dsCache = make(map[string]*measure.Dataset)
		for _, id := range []string{"2B", "2C", "4B"} {
			combo, err := measure.CombinationByID(id)
			if err != nil {
				panic(err)
			}
			cfg := measure.DefaultRunConfig(combo, 17)
			pc := atlas.DefaultConfig(17)
			pc.NumProbes = 800
			cfg.Population = pc
			ds, err := measure.Run(cfg)
			if err != nil {
				panic(err)
			}
			dsCache[id] = ds
		}
	})
	ds, ok := dsCache[comboID]
	if !ok {
		t.Fatalf("no cached dataset for %s", comboID)
	}
	return ds
}

func TestVPsGrouping(t *testing.T) {
	ds := dataset(t, "2B")
	vps := VPs(ds)
	if len(vps) == 0 {
		t.Fatal("no VPs")
	}
	total := 0
	for _, vp := range vps {
		total += len(vp.Records)
		for i := 1; i < len(vp.Records); i++ {
			if vp.Records[i].SentAt < vp.Records[i-1].SentAt {
				t.Fatal("VP records out of order")
			}
		}
		if vp.Key == "" {
			t.Fatal("empty VP key")
		}
	}
	if total != len(ds.Records) {
		t.Errorf("VP records %d != dataset records %d", total, len(ds.Records))
	}
	// Multi-resolver probes yield more VPs than probes.
	if len(vps) <= ds.ActiveProbes {
		t.Errorf("VPs %d should exceed probes %d (multi-resolver effect)", len(vps), ds.ActiveProbes)
	}
}

func TestProbeAllShape(t *testing.T) {
	ds2 := dataset(t, "2B")
	res2 := ProbeAll(ds2)
	// The paper: 75–96% of recursives query all authoritatives.
	if res2.PercentAll < 70 || res2.PercentAll > 99 {
		t.Errorf("2B percent-all = %.1f, want the paper's band (75–96)", res2.PercentAll)
	}
	// With two authoritatives, half the recursives probe the second on
	// their second query: median ≈ 1.
	if res2.Box.Median > 3 {
		t.Errorf("2B median queries-to-all = %.1f, want small (≈1)", res2.Box.Median)
	}

	ds4 := dataset(t, "4B")
	res4 := ProbeAll(ds4)
	if res4.Box.Median <= res2.Box.Median {
		t.Errorf("4 NSes should take more queries than 2: %v vs %v",
			res4.Box.Median, res2.Box.Median)
	}
	if res4.PercentAll >= res2.PercentAll {
		t.Errorf("4-NS coverage (%.1f) should fall below 2-NS (%.1f), as in Fig. 2",
			res4.PercentAll, res2.PercentAll)
	}
}

func TestShareVsRTTInverse(t *testing.T) {
	ds := dataset(t, "2C")
	shares := ShareVsRTT(ds)
	if len(shares) != 2 {
		t.Fatalf("shares = %+v", shares)
	}
	var fra, syd SiteShare
	for _, s := range shares {
		switch s.Site {
		case "FRA":
			fra = s
		case "SYD":
			syd = s
		}
	}
	// FRA has the lower median RTT (EU-heavy population) and must get
	// most queries — Figure 3's headline.
	if fra.MedianRTT >= syd.MedianRTT {
		t.Errorf("FRA median RTT %.0f should be below SYD %.0f", fra.MedianRTT, syd.MedianRTT)
	}
	if fra.Share <= syd.Share {
		t.Errorf("FRA share %.2f should exceed SYD %.2f", fra.Share, syd.Share)
	}
	if s := fra.Share + syd.Share; s < 0.999 || s > 1.001 {
		t.Errorf("shares should sum to 1: %v", s)
	}
}

func TestTable2Structure(t *testing.T) {
	ds := dataset(t, "2C")
	t2 := Table2(ds)
	eu, ok := t2[geo.Europe]
	if !ok {
		t.Fatal("no EU row")
	}
	// EU: strong preference for FRA with a much lower RTT (Table 2:
	// 83% FRA at 39ms vs 17% SYD at 355ms).
	if eu["FRA"].SharePct < 60 {
		t.Errorf("EU FRA share = %.1f%%, want strong majority", eu["FRA"].SharePct)
	}
	if eu["FRA"].MedianRTT >= eu["SYD"].MedianRTT {
		t.Errorf("EU RTT: FRA %.0f should be below SYD %.0f",
			eu["FRA"].MedianRTT, eu["SYD"].MedianRTT)
	}
	// Oceania prefers SYD (the mirror image).
	ocn, ok := t2[geo.Oceania]
	if !ok {
		t.Fatal("no OC row")
	}
	if ocn["SYD"].SharePct < 55 {
		t.Errorf("OC SYD share = %.1f%%, want majority", ocn["SYD"].SharePct)
	}
	// Shares per continent sum to 100.
	for cont, cells := range t2 {
		sum := 0.0
		for _, c := range cells {
			sum += c.SharePct
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%v shares sum to %.1f", cont, sum)
		}
	}
}

func TestPreferenceBands(t *testing.T) {
	// 2B (small RTT gap): mostly weak preferences, few strong.
	p2b := Preference(dataset(t, "2B"))
	if p2b.QualifiedVPs == 0 {
		t.Fatal("no qualified VPs in 2B")
	}
	// 2C (large gap): both weak and strong preference shares rise
	// (the paper: weak 59→69%, strong 12→37%).
	p2c := Preference(dataset(t, "2C"))
	if p2c.StrongFrac <= p2b.StrongFrac {
		t.Errorf("strong preference should rise with the RTT gap: 2B=%.2f 2C=%.2f",
			p2b.StrongFrac, p2c.StrongFrac)
	}
	if p2c.WeakFrac < 0.45 || p2c.WeakFrac > 0.95 {
		t.Errorf("2C weak fraction = %.2f, want the paper's band (≈0.69)", p2c.WeakFrac)
	}
	if p2b.StrongFrac > 0.40 {
		t.Errorf("2B strong fraction = %.2f, should be small (paper: 0.12)", p2b.StrongFrac)
	}
	// Curves exist for Europe and are sorted descending.
	cur := p2c.Curves[geo.Europe]["FRA"]
	if len(cur) == 0 {
		t.Fatal("no EU curve")
	}
	for i := 1; i < len(cur); i++ {
		if cur[i] > cur[i-1] {
			t.Fatal("curve not sorted descending")
		}
	}
}

func TestRTTSensitivity(t *testing.T) {
	points := RTTSensitivity(dataset(t, "2B"))
	if len(points) == 0 {
		t.Fatal("no sensitivity points")
	}
	byCont := map[geo.Continent][]RTTSensitivityPoint{}
	for _, p := range points {
		byCont[p.Continent] = append(byCont[p.Continent], p)
		if p.Fraction < 0 || p.Fraction > 1 {
			t.Fatalf("fraction out of range: %+v", p)
		}
	}
	eu := byCont[geo.Europe]
	if len(eu) != 2 {
		t.Fatalf("EU points = %d", len(eu))
	}
	// The Figure-5 effect: Europe (close) shows a wider preference
	// spread than Asia (far), despite comparable RTT gaps.
	var euSpread, asSpread float64
	euSpread = abs(eu[0].Fraction - eu[1].Fraction)
	if as := byCont[geo.Asia]; len(as) == 2 {
		asSpread = abs(as[0].Fraction - as[1].Fraction)
		if asSpread > euSpread {
			t.Errorf("far continents should split more evenly: EU spread %.2f, AS spread %.2f",
				euSpread, asSpread)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSiteShareByContinent(t *testing.T) {
	ds := dataset(t, "2C")
	shares := SiteShareByContinent(ds, "FRA")
	if shares[geo.Europe] < 0.5 {
		t.Errorf("EU share to FRA = %.2f, want majority", shares[geo.Europe])
	}
	if shares[geo.Oceania] > 0.5 {
		t.Errorf("OC share to FRA = %.2f, want minority", shares[geo.Oceania])
	}
	inv := SiteShareByContinent(ds, "SYD")
	for cont := range shares {
		if s := shares[cont] + inv[cont]; s < 0.999 || s > 1.001 {
			t.Errorf("%v shares don't sum to 1: %v", cont, s)
		}
	}
}

func TestPreferenceHardening(t *testing.T) {
	res := PreferenceHardening(dataset(t, "2C"))
	if res.VPs == 0 {
		t.Skip("no weak-preference VPs in the small dataset")
	}
	// §4.3: preferences strengthen in the second half hour.
	if res.SecondHalf < res.FirstHalf-0.05 {
		t.Errorf("preference weakened: first=%.3f second=%.3f", res.FirstHalf, res.SecondHalf)
	}
}

func TestAuthSidePreferenceAgreesWithClientSide(t *testing.T) {
	ds := dataset(t, "2C")
	cw, cs := Preference(ds).WeakFrac, Preference(ds).StrongFrac
	aw, as, n := AuthSidePreference(ds, 5)
	if n == 0 {
		t.Fatal("no auth-side resolvers")
	}
	// §3.1: the two views are "basically equivalent" — allow a loose
	// band since qualification filters differ.
	if abs(aw-cw) > 0.35 {
		t.Errorf("weak: auth %.2f vs client %.2f diverge", aw, cw)
	}
	if abs(as-cs) > 0.35 {
		t.Errorf("strong: auth %.2f vs client %.2f diverge", as, cs)
	}
}

func TestRanks(t *testing.T) {
	per := map[string]map[string]int{
		"r1": {"a": 300},                                              // one letter only
		"r2": {"a": 100, "b": 50, "c": 40, "d": 30, "e": 20, "f": 60}, // six letters
		"r3": {"a": 50, "b": 50, "c": 50, "d": 50, "e": 50, "f": 50, "g": 50, "h": 50, "i": 50, "j": 50},
		"r4": {"a": 3}, // under threshold
	}
	rb := Ranks(per, 10, 250)
	if rb.Recursives != 3 {
		t.Fatalf("recursives = %d", rb.Recursives)
	}
	if rb.OnlyOne < 0.33 || rb.OnlyOne > 0.34 {
		t.Errorf("only-one = %.3f", rb.OnlyOne)
	}
	if rb.AtLeast6 < 0.66 || rb.AtLeast6 > 0.67 {
		t.Errorf("at-least-6 = %.3f", rb.AtLeast6)
	}
	if rb.All < 0.33 || rb.All > 0.34 {
		t.Errorf("all = %.3f", rb.All)
	}
	if rb.MeanTopShare <= 0 || rb.MeanTopShare > 1 {
		t.Errorf("mean top share = %.3f", rb.MeanTopShare)
	}
	empty := Ranks(nil, 10, 250)
	if empty.Recursives != 0 || empty.OnlyOne != 0 {
		t.Errorf("empty ranks = %+v", empty)
	}
}

func TestPreferenceRejectsNonPairDatasets(t *testing.T) {
	ds := dataset(t, "4B")
	res := Preference(ds)
	if res.QualifiedVPs != 0 || len(res.Curves) != 0 {
		t.Error("preference analysis is defined for two-site combos only")
	}
	h := PreferenceHardening(ds)
	if h.VPs != 0 {
		t.Error("hardening analysis is defined for two-site combos only")
	}
}

func TestProbeAllEmptyDataset(t *testing.T) {
	ds := &measure.Dataset{ComboID: "X", Sites: []string{"FRA"}, Duration: time.Hour}
	res := ProbeAll(ds)
	if res.VPs != 0 || res.PercentAll != 0 {
		t.Errorf("empty dataset result = %+v", res)
	}
}

func TestPreferenceCI(t *testing.T) {
	ds := dataset(t, "2C")
	point := Preference(ds)
	weak, strong, err := PreferenceCI(ds, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if weak.Lo > point.WeakFrac || weak.Hi < point.WeakFrac {
		t.Errorf("weak CI [%.3f, %.3f] misses point %.3f", weak.Lo, weak.Hi, point.WeakFrac)
	}
	if strong.Lo > point.StrongFrac || strong.Hi < point.StrongFrac {
		t.Errorf("strong CI [%.3f, %.3f] misses point %.3f", strong.Lo, strong.Hi, point.StrongFrac)
	}
	if weak.Hi-weak.Lo <= 0 || weak.Hi-weak.Lo > 0.25 {
		t.Errorf("weak CI width = %.3f, implausible", weak.Hi-weak.Lo)
	}
	// Four-site datasets are rejected.
	if _, _, err := PreferenceCI(dataset(t, "4B"), 100, 1); err == nil {
		t.Error("non-pair dataset should fail")
	}
}
