package resolver

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"ritw/internal/dnswire"
)

// floodEngine builds an engine for the water-torture regression tests,
// optionally with RFC 2308 negative caching disabled.
func floodEngine(noNegCache bool) (*Engine, *fakeTransport, *fakeClock) {
	tr := &fakeTransport{}
	clk := &fakeClock{}
	e := NewEngine(Config{
		Policy:          NewPolicy(KindUniform),
		Infra:           NewInfraCache(10*time.Minute, HardExpire),
		Cache:           NewRecordCache(),
		Zones:           []ZoneServers{{Zone: testZone, Servers: []netip.Addr{srvA, srvB}}},
		Transport:       tr,
		Clock:           clk,
		RNG:             rand.New(rand.NewSource(42)),
		Timeout:         500 * time.Millisecond,
		DisableNegCache: noNegCache,
	})
	return e, tr, clk
}

// nxAnswer builds an authoritative NXDOMAIN for the packed upstream
// query, SOA minimum (the RFC 2308 negative TTL) as given.
func nxAnswer(t *testing.T, upstream []byte, negTTL uint32) []byte {
	t.Helper()
	q, err := dnswire.Unpack(upstream)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.NewResponse(q)
	if err != nil {
		t.Fatal(err)
	}
	resp.Authoritative = true
	resp.RCode = dnswire.RCodeNXDomain
	resp.Authority = []dnswire.RR{{
		Name: testZone, Class: dnswire.ClassINET, TTL: negTTL,
		Data: dnswire.SOA{MName: testZone, RName: testZone, Minimum: negTTL},
	}}
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// floodRound sends one query per name, answers whatever went upstream
// with NXDOMAIN (negTTL 30s), and returns how many queries hit the
// authoritatives and how many NXDOMAIN replies the client got.
func floodRound(t *testing.T, e *Engine, tr *fakeTransport, names []string, idBase uint16) (upstream, replies int) {
	t.Helper()
	for i, name := range names {
		e.HandlePacket(clientAddr, clientQuery(t, idBase+uint16(i), name))
		for _, p := range tr.take() {
			if p.dst == clientAddr {
				resp, err := dnswire.Unpack(p.payload)
				if err != nil {
					t.Fatal(err)
				}
				if resp.RCode != dnswire.RCodeNXDomain {
					t.Fatalf("client rcode = %v, want NXDOMAIN", resp.RCode)
				}
				replies++
				continue
			}
			upstream++
			e.HandlePacket(p.dst, nxAnswer(t, p.payload, 30))
			// The NXDOMAIN reply to the client comes out on the next take.
			for _, r := range tr.take() {
				if r.dst != clientAddr {
					t.Fatalf("unexpected upstream retry after authoritative NXDOMAIN: %v", r.dst)
				}
				replies++
			}
		}
	}
	return upstream, replies
}

// TestEngineNXDomainFloodNegativeCache is the water-torture regression
// pin at the engine level: a flood that repeats names must cost the
// authoritatives one query per name per negative TTL — every repeat
// within the TTL is served from the RFC 2308 negative cache, counted
// in Stats.NegCacheHits — and the TTL expiring re-admits exactly one
// upstream query per name.
func TestEngineNXDomainFloodNegativeCache(t *testing.T) {
	e, tr, clk := floodEngine(false)
	names := []string{"wt0", "wt1", "wt2", "wt3", "wt4"}

	up, replies := floodRound(t, e, tr, names, 100)
	if up != len(names) || replies != len(names) {
		t.Fatalf("first round: %d upstream, %d replies, want %d each", up, replies, len(names))
	}

	// Nine more rounds inside the 30s negative TTL: zero upstream.
	for round := 0; round < 9; round++ {
		clk.advance(2 * time.Second)
		up, replies = floodRound(t, e, tr, names, uint16(200+10*round))
		if up != 0 {
			t.Fatalf("round %d: %d queries leaked upstream within the negative TTL", round, up)
		}
		if replies != len(names) {
			t.Fatalf("round %d: %d replies, want %d", round, replies, len(names))
		}
	}
	if st := e.Stats(); st.NegCacheHits != 9*len(names) {
		t.Errorf("NegCacheHits = %d, want %d", st.NegCacheHits, 9*len(names))
	}

	// Past the TTL: exactly one fresh upstream query per name.
	clk.advance(31 * time.Second)
	up, replies = floodRound(t, e, tr, names, 400)
	if up != len(names) || replies != len(names) {
		t.Errorf("post-TTL round: %d upstream, %d replies, want %d each", up, replies, len(names))
	}
}

// TestEngineNXDomainFloodNoNegCache pins the undefended contrast:
// with negative caching disabled every repeat goes back upstream, so
// the authoritatives absorb the full flood — the measurement the
// defense matrix's flood-nonegcache row is built on.
func TestEngineNXDomainFloodNoNegCache(t *testing.T) {
	e, tr, clk := floodEngine(true)
	names := []string{"wt0", "wt1", "wt2", "wt3", "wt4"}
	total := 0
	for round := 0; round < 10; round++ {
		up, replies := floodRound(t, e, tr, names, uint16(100+10*round))
		if up != len(names) || replies != len(names) {
			t.Fatalf("round %d: %d upstream, %d replies, want %d each", round, up, replies, len(names))
		}
		total += up
		clk.advance(2 * time.Second)
	}
	if total != 10*len(names) {
		t.Errorf("undefended flood reached upstream %d times, want %d", total, 10*len(names))
	}
	if st := e.Stats(); st.NegCacheHits != 0 {
		t.Errorf("NegCacheHits = %d with the cache disabled", st.NegCacheHits)
	}
}
