package resolver

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

func TestBackoffArmsAfterThreshold(t *testing.T) {
	c := NewInfraCache(10*time.Minute, HardExpire)
	c.SetBackoff(BackoffConfig{Base: 2 * time.Second, Max: time.Minute, Threshold: 2})
	addr := netip.MustParseAddr("10.0.0.1")
	now := time.Duration(0)

	c.Timeout(addr, now)
	if !c.Usable(addr, now) {
		t.Fatal("one timeout must not arm the hold-down")
	}
	c.Timeout(addr, now)
	if c.Usable(addr, now) {
		t.Fatal("second consecutive timeout should hold the server down")
	}
	st := c.State(addr, now)
	if !st.HeldDown || st.ConsecTimeouts != 2 {
		t.Fatalf("state = %+v, want held with 2 consecutive timeouts", st)
	}
	if st.HoldUntil != now+2*time.Second {
		t.Fatalf("HoldUntil = %v, want %v", st.HoldUntil, now+2*time.Second)
	}
	// The hold expires on its own.
	if !c.Usable(addr, now+2*time.Second) {
		t.Fatal("hold-down should expire after Base")
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	c := NewInfraCache(10*time.Minute, HardExpire)
	c.SetBackoff(BackoffConfig{Base: 2 * time.Second, Max: 5 * time.Second, Threshold: 1})
	addr := netip.MustParseAddr("10.0.0.2")

	wantHolds := []time.Duration{2 * time.Second, 4 * time.Second, 5 * time.Second, 5 * time.Second}
	now := time.Duration(0)
	for i, want := range wantHolds {
		c.Timeout(addr, now)
		st := c.State(addr, now)
		if st.HoldUntil != now+want {
			t.Fatalf("timeout %d: HoldUntil = %v, want now+%v", i+1, st.HoldUntil, want)
		}
		now = st.HoldUntil // next timeout fires when the hold expires
	}
}

func TestBackoffResetOnSuccess(t *testing.T) {
	c := NewInfraCache(10*time.Minute, DecayKeep)
	c.SetBackoff(BackoffConfig{Base: 2 * time.Second, Max: time.Minute, Threshold: 2})
	addr := netip.MustParseAddr("10.0.0.3")

	c.Timeout(addr, 0)
	c.Timeout(addr, 0)
	if c.Usable(addr, time.Second) {
		t.Fatal("server should be held down")
	}
	c.Observe(addr, 30, 3*time.Second)
	if !c.Usable(addr, 3*time.Second) {
		t.Fatal("a successful answer must clear the hold-down")
	}
	st := c.State(addr, 3*time.Second)
	if st.ConsecTimeouts != 0 || st.HeldDown {
		t.Fatalf("state after success = %+v, want cleared", st)
	}
	// The very next timeout starts counting from scratch.
	c.Timeout(addr, 4*time.Second)
	if !c.Usable(addr, 4*time.Second) {
		t.Fatal("first timeout after success must not arm the hold-down")
	}
}

func TestBackoffDisabled(t *testing.T) {
	c := NewInfraCache(10*time.Minute, HardExpire)
	c.SetBackoff(BackoffConfig{Disabled: true})
	addr := netip.MustParseAddr("10.0.0.4")
	for i := 0; i < 10; i++ {
		c.Timeout(addr, 0)
	}
	if !c.Usable(addr, 0) {
		t.Fatal("disabled backoff must never hold a server down")
	}
}

func TestSetBackoffFillsDefaults(t *testing.T) {
	c := NewInfraCache(10*time.Minute, HardExpire)
	c.SetBackoff(BackoffConfig{Base: time.Second})
	got := c.Backoff()
	def := DefaultBackoff()
	if got.Base != time.Second || got.Max != def.Max || got.Threshold != def.Threshold {
		t.Fatalf("Backoff() = %+v, want Base=1s with default Max/Threshold", got)
	}
}

// TestEngineSkipsHeldDownServer drives the engine through timeouts on
// one server until it is held down, then checks selection avoids it
// while the hold lasts — and that the skip is accounted.
func TestEngineSkipsHeldDownServer(t *testing.T) {
	e, tr, clk := newTestEngine(t, KindUniform)
	e.Infra().SetBackoff(BackoffConfig{Base: time.Minute, Max: time.Hour, Threshold: 1})

	// Arm the hold-down on srvA directly: one timeout is enough.
	e.Infra().Timeout(srvA, clk.Now())
	if e.Infra().Usable(srvA, clk.Now()) {
		t.Fatal("srvA should be held down")
	}

	// Every query for the next minute must go to srvB.
	for i := 0; i < 20; i++ {
		e.HandlePacket(clientAddr, clientQuery(t, uint16(100+i), "hold"))
		up := tr.take()
		if len(up) != 1 {
			t.Fatalf("query %d: %d upstream packets", i, len(up))
		}
		if up[0].dst != srvB {
			t.Fatalf("query %d went to held-down server %v", i, up[0].dst)
		}
		e.HandlePacket(srvB, authAnswer(t, up[0].payload, "site=B", 0))
		tr.take() // client reply
	}
	if skips := e.Stats().HoldDownSkips; skips != 20 {
		t.Fatalf("HoldDownSkips = %d, want 20", skips)
	}
}

// TestEngineFallsBackWhenAllHeld: hold-down must never leave a query
// with no server — with every server held, the engine ignores the
// holds and sends anyway.
func TestEngineFallsBackWhenAllHeld(t *testing.T) {
	e, tr, clk := newTestEngine(t, KindUniform)
	e.Infra().SetBackoff(BackoffConfig{Base: time.Hour, Max: time.Hour, Threshold: 1})
	e.Infra().Timeout(srvA, clk.Now())
	e.Infra().Timeout(srvB, clk.Now())

	e.HandlePacket(clientAddr, clientQuery(t, 9, "dark"))
	up := tr.take()
	if len(up) != 1 {
		t.Fatalf("upstream packets = %d, want 1 despite universal hold-down", len(up))
	}
	if skips := e.Stats().HoldDownSkips; skips != 0 {
		t.Fatalf("HoldDownSkips = %d, want 0 when the filter is bypassed", skips)
	}
}

// TestBackoffShedsDeadServerTraffic is the NXNSAttack shape at unit
// scale: with one dead server out of two and a steady client load, the
// dead server's share of upstream queries must collapse after the
// first hold-down arms, instead of staying near the no-backoff rate.
func TestBackoffShedsDeadServerTraffic(t *testing.T) {
	run := func(disabled bool) (dead, live int) {
		tr := &fakeTransport{}
		clk := &fakeClock{}
		e := NewEngine(Config{
			Policy:    NewPolicy(KindUniform),
			Infra:     NewInfraCache(10*time.Minute, HardExpire),
			Cache:     NewRecordCache(),
			Zones:     []ZoneServers{{Zone: testZone, Servers: []netip.Addr{srvA, srvB}}},
			Transport: tr,
			Clock:     clk,
			RNG:       rand.New(rand.NewSource(7)),
			Timeout:   500 * time.Millisecond,
		})
		e.Infra().SetBackoff(BackoffConfig{
			Disabled: disabled, Base: 10 * time.Second, Max: 5 * time.Minute, Threshold: 2,
		})
		// One query per second for five minutes; srvA never answers.
		for i := 0; i < 300; i++ {
			e.HandlePacket(clientAddr, clientQuery(t, uint16(i), "dead"))
			for {
				answered := false
				for _, p := range tr.take() {
					if p.dst == srvA {
						dead++ // swallowed: the dead server
					} else if p.dst == srvB {
						live++
						e.HandlePacket(srvB, authAnswer(t, p.payload, "site=B", 0))
						answered = true
					}
				}
				if answered {
					break
				}
				// Only timeouts pending: let them fire so the engine
				// retries (or gives up) within this second.
				clk.advance(500 * time.Millisecond)
				if len(tr.take()) == 0 && !pendingLeft(e) {
					break
				}
			}
			clk.advance(time.Second)
		}
		return dead, live
	}

	deadOff, _ := run(true)
	deadOn, liveOn := run(false)
	if deadOn*4 > deadOff {
		t.Fatalf("backoff shed too little: dead-server queries %d (backoff) vs %d (none)", deadOn, deadOff)
	}
	if liveOn < 250 {
		t.Fatalf("live server only saw %d queries; clients should still be answered", liveOn)
	}
}

func pendingLeft(e *Engine) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending) > 0
}

// BenchmarkBackoffHotPath prices what the hold-down adds to every
// upstream selection: one Usable check per candidate server, against a
// cache where one of three servers is held down. The recorded budget
// in BENCH.md is a few tens of nanoseconds per query — map lookups
// under the cache lock, no allocation.
func BenchmarkBackoffHotPath(b *testing.B) {
	c := NewInfraCache(10*time.Minute, HardExpire)
	c.SetBackoff(BackoffConfig{Base: 2 * time.Second, Max: 5 * time.Minute, Threshold: 2})
	servers := []netip.Addr{
		netip.MustParseAddr("10.9.0.1"),
		netip.MustParseAddr("10.9.0.2"),
		netip.MustParseAddr("10.9.0.3"),
	}
	for _, s := range servers {
		c.Observe(s, 30, 0)
	}
	c.Timeout(servers[2], 0)
	c.Timeout(servers[2], 0) // held down from here on
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * time.Microsecond
		for _, s := range servers {
			c.Usable(s, now)
		}
	}
}
