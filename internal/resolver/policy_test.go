package resolver

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

// primeInfra seeds an infra cache with fixed SRTTs.
func primeInfra(rtts map[netip.Addr]float64) *InfraCache {
	c := NewInfraCache(0, HardExpire)
	for addr, rtt := range rtts {
		c.Observe(addr, rtt, 0)
		// Second identical observation settles variance low.
		c.Observe(addr, rtt, 0)
	}
	return c
}

// tally runs a policy n times and counts selections.
func tally(p Policy, servers []netip.Addr, infra *InfraCache, n int, seed int64) map[netip.Addr]int {
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[netip.Addr]int)
	for i := 0; i < n; i++ {
		counts[p.Select(0, servers, infra, rng)]++
	}
	return counts
}

// tallyFB runs a policy with response feedback: every selection is
// answered with the server's true RTT, as the engine would observe.
func tallyFB(p Policy, servers []netip.Addr, trueRTT map[netip.Addr]float64, n int, seed int64) map[netip.Addr]int {
	infra := NewInfraCache(0, HardExpire)
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[netip.Addr]int)
	for i := 0; i < n; i++ {
		now := time.Duration(i) * 2 * time.Minute
		s := p.Select(now, servers, infra, rng)
		counts[s]++
		infra.Observe(s, trueRTT[s], now)
	}
	return counts
}

func TestBINDLikePrefersLowestButRevisits(t *testing.T) {
	servers := []netip.Addr{srvA, srvB}
	p := NewPolicy(KindBINDLike)
	// Small latency gap (40 vs 55 ms): at least a weak preference, but
	// the decay keeps revisiting the slower server.
	counts := tallyFB(p, servers, map[netip.Addr]float64{srvA: 40, srvB: 55}, 1000, 1)
	if counts[srvA] < 700 {
		t.Errorf("BIND-like should prefer the fastest: %v", counts)
	}
	if counts[srvB] == 0 {
		t.Error("decay should let the slower server be retried sometimes")
	}
}

func TestBINDLikeStrongPreferenceAtLargeGap(t *testing.T) {
	// The paper's 2C case: FRA ~40 ms vs SYD ~355 ms. The decay takes
	// far longer to erode a 9x gap, so preference turns strong (>90%).
	servers := []netip.Addr{srvA, srvB}
	p := NewPolicy(KindBINDLike)
	counts := tallyFB(p, servers, map[netip.Addr]float64{srvA: 40, srvB: 355}, 1000, 2)
	frac := float64(counts[srvA]) / 1000
	if frac < 0.90 {
		t.Errorf("large-gap preference = %.3f, want strong (>= 0.90)", frac)
	}
	small := tallyFB(NewPolicy(KindBINDLike), servers, map[netip.Addr]float64{srvA: 40, srvB: 55}, 1000, 3)
	if counts[srvA] <= small[srvA] {
		t.Errorf("preference should sharpen with the gap: small=%v large=%v", small, counts)
	}
}

func TestBINDLikeProbesUnknownFirst(t *testing.T) {
	servers := []netip.Addr{srvA, srvB}
	infra := NewInfraCache(0, HardExpire)
	infra.Observe(srvA, 40, 0)
	infra.Observe(srvA, 40, 0)
	p := NewPolicy(KindBINDLike)
	rng := rand.New(rand.NewSource(2))
	// Unknown srvB gets a random SRTT in [0,7) which beats 40.
	got := p.Select(0, servers, infra, rng)
	if got != srvB {
		t.Errorf("unknown server should be probed first, got %v", got)
	}
}

func TestUnboundLikeUniformWithinBand(t *testing.T) {
	servers := []netip.Addr{srvA, srvB}
	infra := primeInfra(map[netip.Addr]float64{srvA: 40, srvB: 60})
	p := NewPolicy(KindUnboundLike) // band 150ms
	counts := tally(p, servers, infra, 2000, 3)
	if counts[srvA] < 800 || counts[srvB] < 800 {
		t.Errorf("within-band servers should split evenly: %v", counts)
	}
}

func TestUnboundLikeExcludesOutOfBand(t *testing.T) {
	servers := []netip.Addr{srvA, srvB}
	infra := primeInfra(map[netip.Addr]float64{srvA: 40, srvB: 600})
	p := NewPolicy(KindUnboundLike)
	counts := tally(p, servers, infra, 1000, 4)
	if counts[srvB] != 0 {
		t.Errorf("600ms server is outside the 400ms band of 40ms: %v", counts)
	}
	// 350ms is within Unbound's 400ms default band: still uniform.
	infra = primeInfra(map[netip.Addr]float64{srvA: 40, srvB: 350})
	counts = tally(NewPolicy(KindUnboundLike), servers, infra, 2000, 5)
	if counts[srvB] < 800 {
		t.Errorf("within-band server starved: %v", counts)
	}
}

func TestUnboundLikeProbesUnknown(t *testing.T) {
	servers := []netip.Addr{srvA, srvB}
	infra := NewInfraCache(0, HardExpire)
	infra.Observe(srvA, 40, 0)
	p := NewPolicy(KindUnboundLike)
	counts := tally(p, servers, infra, 1000, 5)
	if counts[srvB] < 300 {
		t.Errorf("unknown server should be eligible: %v", counts)
	}
}

func TestWeightedRTTRatios(t *testing.T) {
	servers := []netip.Addr{srvA, srvB}
	// 40 vs 55ms: inverse-RTT weights → 55/95 ≈ 0.58 (near-weak).
	infra := primeInfra(map[netip.Addr]float64{srvA: 40, srvB: 55})
	p := NewPolicy(KindWeightedRTT)
	counts := tally(p, servers, infra, 10000, 6)
	fracA := float64(counts[srvA]) / 10000
	if fracA < 0.54 || fracA > 0.63 {
		t.Errorf("40/55ms split = %.3f, want ≈ 0.58", fracA)
	}
	// 40 vs 355ms (the 2C gap): → 355/395 ≈ 0.90 (strong threshold).
	infra = primeInfra(map[netip.Addr]float64{srvA: 40, srvB: 355})
	counts = tally(p, servers, infra, 10000, 7)
	fracA = float64(counts[srvA]) / 10000
	if fracA < 0.86 || fracA > 0.94 {
		t.Errorf("40/355ms split = %.3f, want ≈ 0.90", fracA)
	}
	// The preference sharpens monotonically with the gap.
	infra = primeInfra(map[netip.Addr]float64{srvA: 40, srvB: 1200})
	counts = tally(p, servers, infra, 10000, 8)
	if frac := float64(counts[srvA]) / 10000; frac < 0.94 {
		t.Errorf("40/1200ms split = %.3f, want > 0.94", frac)
	}
}

func TestWeightedRTTUnknownAttractive(t *testing.T) {
	servers := []netip.Addr{srvA, srvB}
	infra := primeInfra(map[netip.Addr]float64{srvA: 40})
	p := NewPolicy(KindWeightedRTT)
	counts := tally(p, servers, infra, 1000, 8)
	if counts[srvB] < 800 {
		// weight(unknown)=1 vs weight(40ms)=1/1600.
		t.Errorf("unknown server should dominate until measured: %v", counts)
	}
}

func TestUniformIsUniform(t *testing.T) {
	servers := []netip.Addr{srvA, srvB, srvC}
	infra := primeInfra(map[netip.Addr]float64{srvA: 10, srvB: 100, srvC: 400})
	p := NewPolicy(KindUniform)
	counts := tally(p, servers, infra, 9000, 9)
	for _, s := range servers {
		if counts[s] < 2700 || counts[s] > 3300 {
			t.Errorf("uniform counts off: %v", counts)
		}
	}
}

func TestRoundRobinRotation(t *testing.T) {
	servers := []netip.Addr{srvA, srvB, srvC}
	p := NewPolicy(KindRoundRobin)
	infra := NewInfraCache(0, HardExpire)
	rng := rand.New(rand.NewSource(10))
	var seq []netip.Addr
	for i := 0; i < 9; i++ {
		seq = append(seq, p.Select(0, servers, infra, rng))
	}
	for _, s := range servers {
		n := 0
		for _, got := range seq {
			if got == s {
				n++
			}
		}
		if n != 3 {
			t.Fatalf("round robin uneven: %v", seq)
		}
	}
	// Consecutive picks always differ.
	for i := 1; i < len(seq); i++ {
		if seq[i] == seq[i-1] {
			t.Fatalf("round robin repeated %v at %d", seq[i], i)
		}
	}
}

func TestRoundRobinRandomizedStart(t *testing.T) {
	servers := []netip.Addr{srvA, srvB, srvC}
	infra := NewInfraCache(0, HardExpire)
	starts := make(map[netip.Addr]bool)
	for seed := int64(0); seed < 30; seed++ {
		p := NewPolicy(KindRoundRobin)
		rng := rand.New(rand.NewSource(seed))
		starts[p.Select(0, servers, infra, rng)] = true
	}
	if len(starts) < 2 {
		t.Error("round-robin populations should not start in lockstep")
	}
}

func TestStickyPinsUntilTimeout(t *testing.T) {
	servers := []netip.Addr{srvA, srvB}
	infra := NewInfraCache(0, HardExpire)
	p := NewPolicy(KindSticky)
	rng := rand.New(rand.NewSource(11))
	first := p.Select(0, servers, infra, rng)
	for i := 0; i < 50; i++ {
		if got := p.Select(0, servers, infra, rng); got != first {
			t.Fatalf("sticky moved from %v to %v without failure", first, got)
		}
	}
	// A timeout on the pinned server forces a re-pin (possibly the
	// same server by chance; drive until it moves).
	moved := false
	for i := 0; i < 20 && !moved; i++ {
		infra.Timeout(first, time.Second)
		if got := p.Select(0, servers, infra, rng); got != first {
			moved = true
		}
	}
	if !moved {
		t.Error("sticky never moved after repeated timeouts")
	}
}

func TestStickyRepinsWhenServerRemoved(t *testing.T) {
	infra := NewInfraCache(0, HardExpire)
	p := NewPolicy(KindSticky)
	rng := rand.New(rand.NewSource(12))
	first := p.Select(0, []netip.Addr{srvA}, infra, rng)
	if first != srvA {
		t.Fatal("must pin the only server")
	}
	got := p.Select(0, []netip.Addr{srvB, srvC}, infra, rng)
	if got == srvA {
		t.Error("sticky must not return a server outside the candidate set")
	}
}

func TestPolicyNamesAndKinds(t *testing.T) {
	kinds := []PolicyKind{KindBINDLike, KindUnboundLike, KindWeightedRTT,
		KindUniform, KindRoundRobin, KindSticky}
	names := map[string]bool{}
	for _, k := range kinds {
		p := NewPolicy(k)
		if p.Name() != k.String() {
			t.Errorf("policy %v name %q != kind %q", k, p.Name(), k.String())
		}
		names[p.Name()] = true
	}
	if len(names) != len(kinds) {
		t.Error("policy names must be unique")
	}
	if PolicyKind(99).String() == "" {
		t.Error("unknown kind should stringify")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewPolicy(99) should panic")
		}
	}()
	NewPolicy(PolicyKind(99))
}

// Selection must always return a member of the candidate set.
func TestAllPoliciesReturnCandidates(t *testing.T) {
	kinds := []PolicyKind{KindBINDLike, KindUnboundLike, KindWeightedRTT,
		KindUniform, KindRoundRobin, KindSticky}
	sets := [][]netip.Addr{
		{srvA},
		{srvA, srvB},
		{srvA, srvB, srvC},
	}
	for _, k := range kinds {
		for _, servers := range sets {
			p := NewPolicy(k)
			infra := primeInfra(map[netip.Addr]float64{srvA: 30, srvB: 100})
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 200; i++ {
				got := p.Select(time.Duration(i)*time.Second, servers, infra, rng)
				member := false
				for _, s := range servers {
					if got == s {
						member = true
					}
				}
				if !member {
					t.Fatalf("%v returned non-candidate %v from %v", k, got, servers)
				}
			}
		}
	}
}

func BenchmarkBINDLikeSelect(b *testing.B) {
	servers := []netip.Addr{srvA, srvB, srvC}
	infra := primeInfra(map[netip.Addr]float64{srvA: 30, srvB: 100, srvC: 250})
	p := NewPolicy(KindBINDLike)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Select(0, servers, infra, rng)
	}
}
