package resolver

import (
	"math/rand"
	"net/netip"
	"sort"
	"testing"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/obs"
)

// fakeTransport records every sent packet.
type fakeTransport struct {
	sent []sentPacket
}

type sentPacket struct {
	dst     netip.Addr
	payload []byte
}

func (f *fakeTransport) Send(dst netip.Addr, payload []byte) {
	buf := make([]byte, len(payload))
	copy(buf, payload)
	f.sent = append(f.sent, sentPacket{dst, buf})
}

func (f *fakeTransport) take() []sentPacket {
	out := f.sent
	f.sent = nil
	return out
}

// fakeClock is a manually-advanced clock with ordered timers.
type fakeClock struct {
	now    time.Duration
	timers []fakeTimer
}

type fakeTimer struct {
	at time.Duration
	fn func()
}

func (c *fakeClock) Now() time.Duration { return c.now }

func (c *fakeClock) AfterFunc(d time.Duration, fn func()) {
	c.timers = append(c.timers, fakeTimer{c.now + d, fn})
}

// advance moves time forward, firing due timers in order.
func (c *fakeClock) advance(d time.Duration) {
	deadline := c.now + d
	for {
		idx := -1
		for i, t := range c.timers {
			if t.at <= deadline && (idx == -1 || t.at < c.timers[idx].at) {
				idx = i
			}
		}
		if idx == -1 {
			break
		}
		t := c.timers[idx]
		c.timers = append(c.timers[:idx], c.timers[idx+1:]...)
		if t.at > c.now {
			c.now = t.at
		}
		t.fn()
	}
	c.now = deadline
}

var (
	clientAddr = netip.MustParseAddr("203.0.113.10")
	testZone   = dnswire.MustParseName("ourtestdomain.nl")
)

// newTestEngine builds an engine over fakes with two upstreams.
func newTestEngine(t *testing.T, kind PolicyKind) (*Engine, *fakeTransport, *fakeClock) {
	t.Helper()
	tr := &fakeTransport{}
	clk := &fakeClock{}
	e := NewEngine(Config{
		Policy:    NewPolicy(kind),
		Infra:     NewInfraCache(10*time.Minute, HardExpire),
		Cache:     NewRecordCache(),
		Zones:     []ZoneServers{{Zone: testZone, Servers: []netip.Addr{srvA, srvB}}},
		Transport: tr,
		Clock:     clk,
		RNG:       rand.New(rand.NewSource(42)),
		Timeout:   500 * time.Millisecond,
	})
	return e, tr, clk
}

// clientQuery packs a recursive query for label.ourtestdomain.nl TXT.
func clientQuery(t *testing.T, id uint16, label string) []byte {
	t.Helper()
	n, err := testZone.Child(label)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := dnswire.NewQuery(id, n, dnswire.TypeTXT).Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// authAnswer builds an authoritative TXT response to the given upstream
// query bytes.
func authAnswer(t *testing.T, upstream []byte, txt string, ttl uint32) []byte {
	t.Helper()
	q, err := dnswire.Unpack(upstream)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.NewResponse(q)
	if err != nil {
		t.Fatal(err)
	}
	resp.Authoritative = true
	resp.Answers = []dnswire.RR{{
		Name: q.Questions[0].Name, Class: dnswire.ClassINET, TTL: ttl,
		Data: dnswire.TXT{Strings: []string{txt}},
	}}
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestEngineResolvesThroughUpstream(t *testing.T) {
	e, tr, clk := newTestEngine(t, KindUniform)

	e.HandlePacket(clientAddr, clientQuery(t, 7, "q1"))
	up := tr.take()
	if len(up) != 1 {
		t.Fatalf("upstream queries = %d", len(up))
	}
	if up[0].dst != srvA && up[0].dst != srvB {
		t.Fatalf("query sent to %v", up[0].dst)
	}
	upq, err := dnswire.Unpack(up[0].payload)
	if err != nil {
		t.Fatal(err)
	}
	if upq.RecursionDesired {
		t.Error("iterative upstream query must not set RD")
	}
	if _, ok := upq.OPT(); !ok {
		t.Error("upstream query should carry EDNS0")
	}

	clk.advance(40 * time.Millisecond)
	e.HandlePacket(up[0].dst, authAnswer(t, up[0].payload, "site=FRA", 5))

	out := tr.take()
	if len(out) != 1 || out[0].dst != clientAddr {
		t.Fatalf("client responses = %+v", out)
	}
	resp, err := dnswire.Unpack(out[0].payload)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Response || resp.ID != 7 || !resp.RecursionAvailable {
		t.Errorf("response header = %+v", resp.Header)
	}
	if txt := resp.Answers[0].Data.(dnswire.TXT).Joined(); txt != "site=FRA" {
		t.Errorf("answer = %q", txt)
	}
	// The RTT must be recorded in the infra cache (~40ms).
	st := e.Infra().State(up[0].dst, clk.Now())
	if !st.Known || st.SRTT < 35 || st.SRTT > 45 {
		t.Errorf("infra state = %+v", st)
	}
	stats := e.Stats()
	if stats.ClientQueries != 1 || stats.UpstreamQueries != 1 || stats.UpstreamAnswers != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestEngineCacheHit(t *testing.T) {
	e, tr, clk := newTestEngine(t, KindUniform)
	e.HandlePacket(clientAddr, clientQuery(t, 1, "cached"))
	up := tr.take()
	e.HandlePacket(up[0].dst, authAnswer(t, up[0].payload, "v", 5))
	tr.take()

	// Within TTL: answered from cache, no upstream traffic.
	clk.advance(2 * time.Second)
	e.HandlePacket(clientAddr, clientQuery(t, 2, "cached"))
	out := tr.take()
	if len(out) != 1 || out[0].dst != clientAddr {
		t.Fatalf("expected pure cache answer, got %+v", out)
	}
	resp, _ := dnswire.Unpack(out[0].payload)
	if resp.Answers[0].TTL > 5 {
		t.Errorf("cached TTL should have aged: %d", resp.Answers[0].TTL)
	}
	if e.Stats().CacheHits != 1 {
		t.Errorf("cache hits = %d", e.Stats().CacheHits)
	}

	// Past TTL: goes upstream again. This is the paper's cold-cache
	// trick — 5-second TTLs keep every probe query a miss.
	clk.advance(10 * time.Second)
	e.HandlePacket(clientAddr, clientQuery(t, 3, "cached"))
	up = tr.take()
	if len(up) != 1 || (up[0].dst != srvA && up[0].dst != srvB) {
		t.Fatalf("expired entry should requery upstream: %+v", up)
	}
}

func TestEngineUniqueLabelsBypassCache(t *testing.T) {
	e, tr, _ := newTestEngine(t, KindUniform)
	for i := 0; i < 5; i++ {
		e.HandlePacket(clientAddr, clientQuery(t, uint16(i), labelN(i)))
	}
	up := tr.take()
	if len(up) != 5 {
		t.Errorf("unique labels must all go upstream, got %d", len(up))
	}
}

func labelN(i int) string { return string(rune('a'+i)) + "-unique" }

func TestEngineTimeoutRetriesOtherServer(t *testing.T) {
	e, tr, clk := newTestEngine(t, KindUniform)
	e.HandlePacket(clientAddr, clientQuery(t, 9, "slow"))
	first := tr.take()
	if len(first) != 1 {
		t.Fatal("no upstream query")
	}
	clk.advance(600 * time.Millisecond) // beyond the 500ms timeout
	retry := tr.take()
	if len(retry) != 1 {
		t.Fatalf("expected a retry, got %d packets", len(retry))
	}
	if retry[0].dst == first[0].dst {
		t.Errorf("retry should prefer an untried server")
	}
	if e.Stats().Timeouts != 1 {
		t.Errorf("timeouts = %d", e.Stats().Timeouts)
	}
	// The late answer from the first server is ignored (transaction
	// re-keyed); the second server answers.
	e.HandlePacket(retry[0].dst, authAnswer(t, retry[0].payload, "ok", 5))
	out := tr.take()
	if len(out) != 1 || out[0].dst != clientAddr {
		t.Fatalf("client response missing: %+v", out)
	}
	resp, _ := dnswire.Unpack(out[0].payload)
	if resp.RCode != dnswire.RCodeNoError {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestEngineServFailAfterMaxRetries(t *testing.T) {
	e, tr, clk := newTestEngine(t, KindUniform)
	e.HandlePacket(clientAddr, clientQuery(t, 5, "dead"))
	for i := 0; i < 3; i++ {
		tr.take()
		clk.advance(600 * time.Millisecond)
	}
	out := tr.take()
	if len(out) != 1 || out[0].dst != clientAddr {
		t.Fatalf("expected SERVFAIL to client, got %+v", out)
	}
	resp, _ := dnswire.Unpack(out[0].payload)
	if resp.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v", resp.RCode)
	}
	if e.Stats().ServFails != 1 {
		t.Errorf("servfails = %d", e.Stats().ServFails)
	}
	// No stray retries later.
	clk.advance(5 * time.Second)
	if left := tr.take(); len(left) != 0 {
		t.Errorf("stray packets after SERVFAIL: %d", len(left))
	}
}

func TestEngineSpoofedResponseIgnored(t *testing.T) {
	e, tr, clk := newTestEngine(t, KindUniform)
	e.HandlePacket(clientAddr, clientQuery(t, 8, "spoof"))
	up := tr.take()
	attacker := netip.MustParseAddr("198.51.100.66")
	// Correct ID, wrong source address: must be dropped.
	e.HandlePacket(attacker, authAnswer(t, up[0].payload, "evil", 5))
	if out := tr.take(); len(out) != 0 {
		t.Fatal("spoofed response reached the client")
	}
	// Legit answer still works afterwards.
	clk.advance(10 * time.Millisecond)
	e.HandlePacket(up[0].dst, authAnswer(t, up[0].payload, "good", 5))
	out := tr.take()
	resp, _ := dnswire.Unpack(out[0].payload)
	if resp.Answers[0].Data.(dnswire.TXT).Joined() != "good" {
		t.Error("legit answer lost")
	}
}

func TestEngineNegativeCaching(t *testing.T) {
	e, tr, clk := newTestEngine(t, KindUniform)
	e.HandlePacket(clientAddr, clientQuery(t, 2, "nx"))
	up := tr.take()
	q, _ := dnswire.Unpack(up[0].payload)
	resp, _ := dnswire.NewResponse(q)
	resp.RCode = dnswire.RCodeNXDomain
	resp.Authority = []dnswire.RR{{
		Name: testZone, Class: dnswire.ClassINET, TTL: 300,
		Data: dnswire.SOA{MName: testZone, RName: testZone, Minimum: 30},
	}}
	wire, _ := resp.Pack()
	e.HandlePacket(up[0].dst, wire)
	out := tr.take()
	cresp, _ := dnswire.Unpack(out[0].payload)
	if cresp.RCode != dnswire.RCodeNXDomain {
		t.Fatalf("rcode = %v", cresp.RCode)
	}
	// Second query within negative TTL: cache, no upstream.
	clk.advance(5 * time.Second)
	e.HandlePacket(clientAddr, clientQuery(t, 3, "nx"))
	out = tr.take()
	if len(out) != 1 || out[0].dst != clientAddr {
		t.Fatalf("negative cache miss: %+v", out)
	}
	cresp, _ = dnswire.Unpack(out[0].payload)
	if cresp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("negative cache rcode = %v", cresp.RCode)
	}
}

func TestEngineChaosAnsweredLocally(t *testing.T) {
	e, tr, _ := newTestEngine(t, KindBINDLike)
	wire, _ := dnswire.NewChaosQuery(4, dnswire.MustParseName("hostname.bind")).Pack()
	e.HandlePacket(clientAddr, wire)
	out := tr.take()
	if len(out) != 1 || out[0].dst != clientAddr {
		t.Fatalf("CHAOS must be answered locally: %+v", out)
	}
	resp, _ := dnswire.Unpack(out[0].payload)
	txt := resp.Answers[0].Data.(dnswire.TXT).Joined()
	if txt != "resolver/bindlike" {
		t.Errorf("CHAOS answer = %q", txt)
	}
	// Unknown CHAOS names are refused.
	wire, _ = dnswire.NewChaosQuery(5, dnswire.MustParseName("version.funny")).Pack()
	e.HandlePacket(clientAddr, wire)
	out = tr.take()
	resp, _ = dnswire.Unpack(out[0].payload)
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("unknown CHAOS rcode = %v", resp.RCode)
	}
}

func TestEngineUnservableZone(t *testing.T) {
	e, tr, _ := newTestEngine(t, KindUniform)
	wire, _ := dnswire.NewQuery(6, dnswire.MustParseName("unknown.example"), dnswire.TypeA).Pack()
	e.HandlePacket(clientAddr, wire)
	out := tr.take()
	resp, _ := dnswire.Unpack(out[0].payload)
	if resp.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestEngineLongestZoneMatchWins(t *testing.T) {
	tr := &fakeTransport{}
	clk := &fakeClock{}
	sub := dnswire.MustParseName("sub.ourtestdomain.nl")
	e := NewEngine(Config{
		Policy: NewPolicy(KindUniform),
		Infra:  NewInfraCache(time.Minute, HardExpire),
		Zones: []ZoneServers{
			{Zone: testZone, Servers: []netip.Addr{srvA}},
			{Zone: sub, Servers: []netip.Addr{srvB}},
		},
		Transport: tr,
		Clock:     clk,
		RNG:       rand.New(rand.NewSource(1)),
	})
	wire, _ := dnswire.NewQuery(1, dnswire.MustParseName("x.sub.ourtestdomain.nl"), dnswire.TypeA).Pack()
	e.HandlePacket(clientAddr, wire)
	up := tr.take()
	if len(up) != 1 || up[0].dst != srvB {
		t.Fatalf("longest match lost: %+v", up)
	}
}

func TestEngineGarbageAndFormErr(t *testing.T) {
	e, tr, _ := newTestEngine(t, KindUniform)
	e.HandlePacket(clientAddr, []byte{1, 2, 3}) // garbage: dropped
	if out := tr.take(); len(out) != 0 {
		t.Error("garbage should be ignored")
	}
	// A query with no question gets FORMERR.
	m := &dnswire.Message{Header: dnswire.Header{ID: 4}}
	wire, _ := m.Pack()
	e.HandlePacket(clientAddr, wire)
	out := tr.take()
	if len(out) != 1 {
		t.Fatal("no FORMERR sent")
	}
	// Responses to FORMERR have no question to echo, so NewResponse
	// fails and nothing is sent... verify either behaviour is safe.
	_ = out
}

func TestEngineConcurrentQueries(t *testing.T) {
	e, tr, clk := newTestEngine(t, KindUniform)
	const n = 50
	for i := 0; i < n; i++ {
		e.HandlePacket(clientAddr, clientQuery(t, uint16(i), labelI(i)))
	}
	up := tr.take()
	if len(up) != n {
		t.Fatalf("upstream = %d", len(up))
	}
	clk.advance(30 * time.Millisecond)
	for _, p := range up {
		e.HandlePacket(p.dst, authAnswer(t, p.payload, "v", 5))
	}
	out := tr.take()
	if len(out) != n {
		t.Fatalf("client responses = %d", len(out))
	}
	ids := make([]int, 0, n)
	for _, p := range out {
		resp, _ := dnswire.Unpack(p.payload)
		ids = append(ids, int(resp.ID))
	}
	sort.Ints(ids)
	for i := 0; i < n; i++ {
		if ids[i] != i {
			t.Fatalf("missing client id %d in %v", i, ids)
		}
	}
}

func labelI(i int) string {
	return "q" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestNewEnginePanicsOnIncompleteConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("incomplete config should panic")
		}
	}()
	NewEngine(Config{})
}

func TestEngineWithoutRecordCache(t *testing.T) {
	tr := &fakeTransport{}
	clk := &fakeClock{}
	e := NewEngine(Config{
		Policy:    NewPolicy(KindUniform),
		Infra:     NewInfraCache(time.Minute, HardExpire),
		Zones:     []ZoneServers{{Zone: testZone, Servers: []netip.Addr{srvA}}},
		Transport: tr,
		Clock:     clk,
		RNG:       rand.New(rand.NewSource(1)),
	})
	e.HandlePacket(clientAddr, clientQuery(t, 1, "x"))
	up := tr.take()
	e.HandlePacket(up[0].dst, authAnswer(t, up[0].payload, "v", 300))
	tr.take()
	// Same name again: must requery upstream since caching is off.
	e.HandlePacket(clientAddr, clientQuery(t, 2, "x"))
	up = tr.take()
	if len(up) != 1 || up[0].dst != srvA {
		t.Errorf("expected upstream requery, got %+v", up)
	}
}

// authRcode builds an upstream error response echoing the query.
func authRcode(t *testing.T, upstream []byte, rcode dnswire.RCode) []byte {
	t.Helper()
	q, err := dnswire.Unpack(upstream)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.NewResponse(q)
	if err != nil {
		t.Fatal(err)
	}
	resp.RCode = rcode
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// forgedAnswer builds a response from the right server with the right
// ID whose question section has been tampered with.
func forgedAnswer(t *testing.T, upstream []byte, mutate func(resp *dnswire.Message)) []byte {
	t.Helper()
	q, err := dnswire.Unpack(upstream)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.NewResponse(q)
	if err != nil {
		t.Fatal(err)
	}
	resp.Answers = []dnswire.RR{{
		Name: resp.Questions[0].Name, Class: dnswire.ClassINET, TTL: 300,
		Data: dnswire.TXT{Strings: []string{"forged"}},
	}}
	mutate(resp)
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

// TestEngineErrorRcodeFailsOver pins the failover fix: an upstream
// SERVFAIL (or REFUSED) must try another authoritative, not be relayed
// to the client, matching BIND/Unbound behaviour.
func TestEngineErrorRcodeFailsOver(t *testing.T) {
	for _, rcode := range []dnswire.RCode{dnswire.RCodeServFail, dnswire.RCodeRefused} {
		t.Run(rcode.String(), func(t *testing.T) {
			e, tr, clk := newTestEngine(t, KindUniform)
			e.HandlePacket(clientAddr, clientQuery(t, 11, "lame"))
			first := tr.take()
			if len(first) != 1 {
				t.Fatal("no upstream query")
			}
			e.HandlePacket(first[0].dst, authRcode(t, first[0].payload, rcode))
			retry := tr.take()
			if len(retry) != 1 {
				t.Fatalf("expected a failover query, got %d packets", len(retry))
			}
			if retry[0].dst == clientAddr {
				t.Fatal("error rcode relayed to client instead of failing over")
			}
			if retry[0].dst == first[0].dst {
				t.Error("failover re-queried the failing server")
			}
			st := e.Stats()
			if st.ErrorFailovers != 1 || st.ServFails != 0 {
				t.Errorf("stats = %+v, want 1 error failover and no servfail", st)
			}
			// The healthy server answers; the client sees NOERROR.
			clk.advance(10 * time.Millisecond)
			e.HandlePacket(retry[0].dst, authAnswer(t, retry[0].payload, "ok", 5))
			out := tr.take()
			if len(out) != 1 || out[0].dst != clientAddr {
				t.Fatalf("client answer missing: %+v", out)
			}
			resp, _ := dnswire.Unpack(out[0].payload)
			if resp.RCode != dnswire.RCodeNoError {
				t.Errorf("client rcode = %v", resp.RCode)
			}
		})
	}
}

// TestEngineServFailOnceServersExhausted: only after every configured
// server returned an error does the client get SERVFAIL, and the error
// is not cached.
func TestEngineServFailOnceServersExhausted(t *testing.T) {
	e, tr, _ := newTestEngine(t, KindUniform)
	e.HandlePacket(clientAddr, clientQuery(t, 12, "allbad"))
	first := tr.take()
	e.HandlePacket(first[0].dst, authRcode(t, first[0].payload, dnswire.RCodeServFail))
	second := tr.take()
	if len(second) != 1 || second[0].dst == clientAddr {
		t.Fatalf("expected failover, got %+v", second)
	}
	e.HandlePacket(second[0].dst, authRcode(t, second[0].payload, dnswire.RCodeServFail))
	out := tr.take()
	if len(out) != 1 || out[0].dst != clientAddr {
		t.Fatalf("expected SERVFAIL to client, got %+v", out)
	}
	resp, _ := dnswire.Unpack(out[0].payload)
	if resp.RCode != dnswire.RCodeServFail {
		t.Errorf("client rcode = %v", resp.RCode)
	}
	st := e.Stats()
	if st.ServFails != 1 || st.ErrorFailovers != 1 {
		t.Errorf("stats = %+v", st)
	}
	// SERVFAIL must not be cached: the same name goes upstream again.
	e.HandlePacket(clientAddr, clientQuery(t, 13, "allbad"))
	up := tr.take()
	if len(up) != 1 || up[0].dst == clientAddr {
		t.Errorf("error response was cached: %+v", up)
	}
}

// TestEngineErrorFailoverRespectsMaxRetries: the retry budget caps
// error failovers even while untried servers remain.
func TestEngineErrorFailoverRespectsMaxRetries(t *testing.T) {
	tr := &fakeTransport{}
	clk := &fakeClock{}
	e := NewEngine(Config{
		Policy:     NewPolicy(KindRoundRobin),
		Infra:      NewInfraCache(10*time.Minute, HardExpire),
		Zones:      []ZoneServers{{Zone: testZone, Servers: []netip.Addr{srvA, srvB, srvC}}},
		Transport:  tr,
		Clock:      clk,
		RNG:        rand.New(rand.NewSource(7)),
		MaxRetries: 2,
	})
	e.HandlePacket(clientAddr, clientQuery(t, 14, "capped"))
	first := tr.take()
	e.HandlePacket(first[0].dst, authRcode(t, first[0].payload, dnswire.RCodeServFail))
	second := tr.take()
	if len(second) != 1 || second[0].dst == clientAddr {
		t.Fatalf("expected one failover, got %+v", second)
	}
	e.HandlePacket(second[0].dst, authRcode(t, second[0].payload, dnswire.RCodeServFail))
	out := tr.take()
	if len(out) != 1 || out[0].dst != clientAddr {
		t.Fatalf("MaxRetries=2 must stop after two attempts, got %+v", out)
	}
	resp, _ := dnswire.Unpack(out[0].payload)
	if resp.RCode != dnswire.RCodeServFail {
		t.Errorf("client rcode = %v", resp.RCode)
	}
}

// TestEnginePoisonedQuestionRejected pins the question-echo check: a
// response from the right address with the right ID but a tampered
// question section must be dropped, not cached.
func TestEnginePoisonedQuestionRejected(t *testing.T) {
	e, tr, clk := newTestEngine(t, KindUniform)
	e.HandlePacket(clientAddr, clientQuery(t, 15, "poison"))
	up := tr.take()
	if len(up) != 1 {
		t.Fatal("no upstream query")
	}
	evil, err := testZone.Child("evil")
	if err != nil {
		t.Fatal(err)
	}
	forgeries := map[string]func(resp *dnswire.Message){
		"wrong name":  func(resp *dnswire.Message) { resp.Questions[0].Name = evil },
		"wrong type":  func(resp *dnswire.Message) { resp.Questions[0].Type = dnswire.TypeA },
		"wrong class": func(resp *dnswire.Message) { resp.Questions[0].Class = dnswire.ClassCHAOS },
	}
	for name, mutate := range forgeries {
		e.HandlePacket(up[0].dst, forgedAnswer(t, up[0].payload, mutate))
		if out := tr.take(); len(out) != 0 {
			t.Fatalf("%s forgery reached the client: %d packets", name, len(out))
		}
	}
	// The transaction survives the forgeries; the real answer lands.
	clk.advance(10 * time.Millisecond)
	e.HandlePacket(up[0].dst, authAnswer(t, up[0].payload, "good", 5))
	out := tr.take()
	if len(out) != 1 || out[0].dst != clientAddr {
		t.Fatalf("legit answer lost after forgeries: %+v", out)
	}
	resp, _ := dnswire.Unpack(out[0].payload)
	if got := resp.Answers[0].Data.(dnswire.TXT).Joined(); got != "good" {
		t.Errorf("client got %q", got)
	}
	// And nothing forged was cached under the pending name.
	e.HandlePacket(clientAddr, clientQuery(t, 16, "poison"))
	cached := tr.take()
	if len(cached) != 1 || cached[0].dst != clientAddr {
		t.Fatalf("expected cache answer, got %+v", cached)
	}
	cresp, _ := dnswire.Unpack(cached[0].payload)
	if got := cresp.Answers[0].Data.(dnswire.TXT).Joined(); got != "good" {
		t.Errorf("cache was poisoned: %q", got)
	}
}

// TestEngineMetricsAndTrace asserts the obs wiring: counters aggregate
// in the registry and the trace hook sees one record per completed
// client query.
func TestEngineMetricsAndTrace(t *testing.T) {
	reg := obs.NewRegistry()
	var traces []obs.QueryTrace
	tr := &fakeTransport{}
	clk := &fakeClock{}
	e := NewEngine(Config{
		Policy:    NewPolicy(KindUniform),
		Infra:     NewInfraCache(10*time.Minute, HardExpire),
		Cache:     NewRecordCache(),
		Zones:     []ZoneServers{{Zone: testZone, Servers: []netip.Addr{srvA, srvB}}},
		Transport: tr,
		Clock:     clk,
		RNG:       rand.New(rand.NewSource(42)),
		Metrics:   reg,
		Trace:     obs.TraceFunc(func(q obs.QueryTrace) { traces = append(traces, q) }),
	})
	e.HandlePacket(clientAddr, clientQuery(t, 21, "traced"))
	up := tr.take()
	clk.advance(30 * time.Millisecond)
	e.HandlePacket(up[0].dst, authAnswer(t, up[0].payload, "v", 60))
	tr.take()
	e.HandlePacket(clientAddr, clientQuery(t, 22, "traced")) // cache hit
	tr.take()

	s := reg.Snapshot()
	for name, want := range map[string]int64{
		"resolver_client_queries_total":   2,
		"resolver_upstream_queries_total": 1,
		"resolver_upstream_answers_total": 1,
		"resolver_cache_hits_total":       1,
		"resolver_servfail_total":         0,
	} {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	first, second := traces[0], traces[1]
	if first.Outcome != obs.OutcomeAnswered || first.Attempts != 1 || first.Server != up[0].dst {
		t.Errorf("first trace = %+v", first)
	}
	if first.QName != "traced.ourtestdomain.nl." || first.Client != clientAddr {
		t.Errorf("first trace identity = %+v", first)
	}
	if first.Duration != 30*time.Millisecond {
		t.Errorf("first trace duration = %v", first.Duration)
	}
	if second.Outcome != obs.OutcomeCacheHit {
		t.Errorf("second trace = %+v", second)
	}
}
