// Package resolver implements a recursive DNS resolver with the
// authoritative-server selection behaviours the paper measures in the
// wild: a record cache, an infrastructure (latency) cache, and six
// selection policies modelled on the published algorithms of real
// implementations (BIND's SRTT with decay, Unbound's RTT band,
// speed-weighted selection, uniform random, round robin, and the
// sticky behaviour of simple forwarders).
//
// The engine runs identically over the discrete-event simulator and
// over real UDP sockets (cmd/resolvd); only the Transport and Clock it
// is constructed with differ.
package resolver

import (
	"net/netip"
	"sync"
	"time"

	"ritw/internal/obs"
)

// Retention selects how the infrastructure cache treats entries that
// outlive their TTL. The paper's Figure 6 shows preferences persisting
// beyond the nominal 10–15 minute timeouts of BIND and Unbound; the
// DecayKeep mode models implementations that keep stale latency
// estimates around (inflating their uncertainty) instead of forgetting
// them, which is what reproduces that persistence. See the ablation
// bench AblationInfraRetention.
type Retention uint8

const (
	// HardExpire forgets a server's state TTL after its last update.
	HardExpire Retention = iota
	// DecayKeep keeps the estimate but marks it stale; policies treat
	// stale entries as weaker evidence.
	DecayKeep
)

// BackoffConfig tunes the per-server exponential hold-down applied
// after consecutive timeouts. Once a server times out Threshold times
// in a row, it is held down for Base, doubling per further timeout up
// to Max; a successful observation clears the counter. Hold-down is
// advisory: the engine prefers usable servers but still falls back to
// a held server when nothing else is left, so a single-server zone
// never goes fully dark. This is the NXNSAttack lesson — without
// hold-down a dead authoritative keeps receiving the full retry rate
// from every recursive; with it the dead site's query volume decays
// geometrically.
type BackoffConfig struct {
	// Disabled turns hold-down off entirely (the pre-hardening shape).
	Disabled bool
	// Base is the first hold-down interval (default 2s).
	Base time.Duration
	// Max caps the exponential growth (default 5m).
	Max time.Duration
	// Threshold is how many consecutive timeouts arm the hold-down
	// (default 2: one timeout is routine loss, two starts to look like
	// a dead server).
	Threshold int
}

// DefaultBackoff returns the policy resolvers use unless overridden.
func DefaultBackoff() BackoffConfig {
	return BackoffConfig{Base: 2 * time.Second, Max: 5 * time.Minute, Threshold: 2}
}

// ServerState is the infrastructure cache's view of one authoritative
// server address.
type ServerState struct {
	// Known reports whether any estimate exists (fresh or stale).
	Known bool
	// Stale reports the estimate outlived the cache TTL (DecayKeep).
	Stale bool
	// SRTT is the smoothed round-trip time estimate in milliseconds.
	SRTT float64
	// RTTVar is the smoothed mean deviation in milliseconds.
	RTTVar float64
	// Queries counts queries sent to this server.
	Queries int
	// Timeouts counts query timeouts attributed to this server.
	Timeouts int
	// LastUpdate is the virtual time of the last RTT observation.
	LastUpdate time.Duration
	// ConsecTimeouts counts timeouts since the last successful answer.
	ConsecTimeouts int
	// HoldUntil is the virtual time the current hold-down expires (zero
	// when the server is not held).
	HoldUntil time.Duration
	// HeldDown reports the server was inside a hold-down window at the
	// time of the State call.
	HeldDown bool
}

// RTO returns a TCP-style retransmission timeout estimate.
func (s ServerState) RTO() float64 { return s.SRTT + 4*s.RTTVar }

// ServerID is a dense handle for a server address in one InfraCache:
// its interning index, assigned by IDFor in first-intern order. The
// engine resolves each zone's server list to ids once and uses the
// *ID methods on the per-query path, replacing address-keyed map
// lookups with array indexing.
type ServerID int32

// InfraCache tracks per-authoritative latency, like BIND's address
// database or Unbound's infra cache. The BIND and Unbound defaults the
// paper cites are 10 and 15 minutes; NewInfraCache takes the TTL so a
// resolver population can mix both.
//
// State lives in a dense table indexed by ServerID (struct-of-arrays
// hot path, DESIGN.md §8.5); the address-keyed methods intern through
// the ids map and stay fully supported. Interning an id does not
// "know" a server: entries only come into existence — for Len and
// State purposes — when a mutating method (Observe, NoteQuery,
// Timeout) first touches them.
type InfraCache struct {
	TTL       time.Duration
	Retention Retention
	// Alpha is the EWMA weight of a new sample (BIND uses 0.3).
	Alpha float64

	// mu makes the cache safe for concurrent use: the engine
	// serializes its own accesses, but Engine.Infra() hands the cache
	// to external readers (monitoring, analyses) that may run on other
	// goroutines in socket deployments.
	mu      sync.Mutex
	ids     map[netip.Addr]ServerID
	table   []entry
	addrs   []netip.Addr // id -> address, for metric labels
	touched int          // entries brought into existence by a mutating method
	backoff BackoffConfig
	metrics *obs.Registry
}

type entry struct {
	srtt           float64
	rttvar         float64
	hasRTT         bool
	touched        bool
	queries        int
	timeouts       int
	consecTimeouts int
	holdUntil      time.Duration
	lastUpdate     time.Duration
	gauge          *obs.Gauge
}

// NewInfraCache creates an infrastructure cache with the default
// hold-down policy (see DefaultBackoff).
func NewInfraCache(ttl time.Duration, retention Retention) *InfraCache {
	return &InfraCache{
		TTL:       ttl,
		Retention: retention,
		Alpha:     0.3,
		ids:       make(map[netip.Addr]ServerID),
		backoff:   DefaultBackoff(),
	}
}

// SetBackoff replaces the hold-down policy. Zero fields fall back to
// the defaults, so callers can override just one knob.
func (c *InfraCache) SetBackoff(b BackoffConfig) {
	def := DefaultBackoff()
	if b.Base <= 0 {
		b.Base = def.Base
	}
	if b.Max <= 0 {
		b.Max = def.Max
	}
	if b.Threshold <= 0 {
		b.Threshold = def.Threshold
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backoff = b
}

// Backoff returns the active hold-down policy.
func (c *InfraCache) Backoff() BackoffConfig {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backoff
}

// SetMetrics publishes per-server SRTT snapshots as gauges named
// resolver_srtt_ms{server="..."} in r. Intended for socket deployments
// (cmd/resolvd) where server addresses are globally meaningful; in
// simulator runs each replica reuses the same 10.x plan, so sharing a
// registry across engines would make the gauges last-write-wins noise.
func (c *InfraCache) SetMetrics(r *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = r
}

// IDFor interns addr and returns its dense id. Idempotent; the first
// call for an address assigns the next index. Interning alone does not
// create cache state: Len and State treat the server as unknown until
// a mutating method touches it.
func (c *InfraCache) IDFor(addr netip.Addr) ServerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idForLocked(addr)
}

func (c *InfraCache) idForLocked(addr netip.Addr) ServerID {
	if id, ok := c.ids[addr]; ok {
		return id
	}
	id := ServerID(len(c.table))
	c.ids[addr] = id
	c.table = append(c.table, entry{})
	c.addrs = append(c.addrs, addr)
	return id
}

// Addr returns the address interned under id.
func (c *InfraCache) Addr(id ServerID) netip.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrs[id]
}

// touchLocked marks id's entry as existing and returns it.
func (c *InfraCache) touchLocked(id ServerID) *entry {
	e := &c.table[id]
	if !e.touched {
		e.touched = true
		c.touched++
	}
	return e
}

// publishLocked refreshes id's SRTT gauge. Callers hold c.mu.
func (c *InfraCache) publishLocked(id ServerID, e *entry) {
	if c.metrics == nil {
		return
	}
	if e.gauge == nil {
		e.gauge = c.metrics.Gauge(obs.LabelName("resolver_srtt_ms", "server", c.addrs[id].String()))
	}
	e.gauge.Set(e.srtt)
}

// Observe records a successful round trip of rtt milliseconds to addr
// at virtual time now.
func (c *InfraCache) Observe(addr netip.Addr, rttMs float64, now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeLocked(c.idForLocked(addr), rttMs, now)
}

// ObserveID is Observe for an interned server.
func (c *InfraCache) ObserveID(id ServerID, rttMs float64, now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeLocked(id, rttMs, now)
}

func (c *InfraCache) observeLocked(id ServerID, rttMs float64, now time.Duration) {
	e := c.touchLocked(id)
	if !e.hasRTT || c.expired(e, now) && c.Retention == HardExpire {
		// Reset the estimate, but keep the lifetime accounting: queries
		// and timeouts both describe the server, not the estimate, and
		// dropping timeouts here corrupted timeout-rate analyses after
		// every HardExpire reset.
		e.srtt, e.rttvar, e.hasRTT = rttMs, rttMs/2, true
		e.consecTimeouts = 0
		e.holdUntil = 0
		e.queries++
		e.lastUpdate = now
		c.publishLocked(id, e)
		return
	}
	// Jacobson/Karels-style smoothing, as BIND and Unbound both do.
	diff := rttMs - e.srtt
	if diff < 0 {
		diff = -diff
	}
	e.rttvar = (1-c.Alpha)*e.rttvar + c.Alpha*diff
	e.srtt = (1-c.Alpha)*e.srtt + c.Alpha*rttMs
	e.queries++
	e.consecTimeouts = 0
	e.holdUntil = 0
	e.lastUpdate = now
	c.publishLocked(id, e)
}

// NoteQuery counts a query sent to addr without changing the estimate.
func (c *InfraCache) NoteQuery(addr netip.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(c.idForLocked(addr)).queries++
}

// NoteQueryID is NoteQuery for an interned server.
func (c *InfraCache) NoteQueryID(id ServerID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(id).queries++
}

// Timeout penalizes addr after an unanswered query, doubling its SRTT
// estimate the way BIND's ADB ages unresponsive servers.
func (c *InfraCache) Timeout(addr netip.Addr, now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeoutLocked(c.idForLocked(addr), now)
}

// TimeoutID is Timeout for an interned server.
func (c *InfraCache) TimeoutID(id ServerID, now time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeoutLocked(id, now)
}

func (c *InfraCache) timeoutLocked(id ServerID, now time.Duration) {
	e := c.touchLocked(id)
	if !e.hasRTT {
		// No successful measurement yet: start from a pessimistic
		// prior rather than doubling zero.
		e.srtt, e.rttvar, e.hasRTT = 400, 200, true
	}
	e.srtt = e.srtt*2 + 50
	if e.srtt > 10000 {
		e.srtt = 10000
	}
	e.timeouts++
	e.consecTimeouts++
	if !c.backoff.Disabled && e.consecTimeouts >= c.backoff.Threshold {
		// Exponential hold-down: Base at the threshold, doubling per
		// further consecutive timeout, capped at Max.
		exp := e.consecTimeouts - c.backoff.Threshold
		if exp > 30 {
			exp = 30 // avoid shift overflow; far past Max anyway
		}
		hold := c.backoff.Base << exp
		if hold > c.backoff.Max || hold <= 0 {
			hold = c.backoff.Max
		}
		e.holdUntil = now + hold
	}
	e.lastUpdate = now
	c.publishLocked(id, e)
}

// Usable reports whether addr is outside any hold-down window at time
// now. Unknown servers are always usable. The engine treats this as a
// preference, not a hard gate: when every candidate is held down it
// ignores the hold and tries anyway.
func (c *InfraCache) Usable(addr netip.Addr, now time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.ids[addr]
	return !ok || c.table[id].holdUntil <= now
}

// UsableID is Usable for an interned server.
func (c *InfraCache) UsableID(id ServerID, now time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table[id].holdUntil <= now
}

// State returns the cache's view of addr at time now, applying the
// retention policy.
func (c *InfraCache) State(addr netip.Addr, now time.Duration) ServerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.ids[addr]
	if !ok {
		return ServerState{}
	}
	return c.stateLocked(id, now)
}

// StateID is State for an interned server.
func (c *InfraCache) StateID(id ServerID, now time.Duration) ServerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stateLocked(id, now)
}

func (c *InfraCache) stateLocked(id ServerID, now time.Duration) ServerState {
	e := &c.table[id]
	if !e.touched {
		return ServerState{}
	}
	if !e.hasRTT && e.timeouts == 0 {
		// Queried but never measured: no latency evidence yet.
		return ServerState{Queries: e.queries}
	}
	st := ServerState{
		Known:          true,
		SRTT:           e.srtt,
		RTTVar:         e.rttvar,
		Queries:        e.queries,
		Timeouts:       e.timeouts,
		LastUpdate:     e.lastUpdate,
		ConsecTimeouts: e.consecTimeouts,
		HoldUntil:      e.holdUntil,
		HeldDown:       e.holdUntil > now,
	}
	if c.expired(e, now) {
		switch c.Retention {
		case HardExpire:
			return ServerState{}
		case DecayKeep:
			st.Stale = true
			// A stale estimate is weaker evidence: widen the variance
			// so band-style policies re-explore.
			st.RTTVar = st.RTTVar*2 + 20
		}
	}
	return st
}

// Scale multiplies the SRTT of addr by factor (used by BIND-style
// decay of non-chosen servers). Unknown servers are unaffected.
func (c *InfraCache) Scale(addr netip.Addr, factor float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.ids[addr]; ok {
		c.scaleLocked(id, factor)
	}
}

// ScaleID is Scale for an interned server.
func (c *InfraCache) ScaleID(id ServerID, factor float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scaleLocked(id, factor)
}

func (c *InfraCache) scaleLocked(id ServerID, factor float64) {
	e := &c.table[id]
	if !e.touched {
		return
	}
	e.srtt *= factor
	c.publishLocked(id, e)
}

// Len returns the number of tracked servers: those a mutating method
// has touched. Interned-but-untouched ids do not count.
func (c *InfraCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.touched
}

func (c *InfraCache) expired(e *entry, now time.Duration) bool {
	return c.TTL > 0 && now-e.lastUpdate > c.TTL
}
