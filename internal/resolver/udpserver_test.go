package resolver

import (
	"math/rand"
	"net"
	"net/netip"
	"testing"
	"time"

	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

const liveZoneText = `
$ORIGIN ourtestdomain.nl.
@ IN SOA ns1 hostmaster 1 7200 3600 604800 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* 5 IN TXT "site=LIVE"
`

// TestUDPServerEndToEnd runs a real recursive resolver over loopback
// sockets against a real authoritative server: stub -> resolvd -> authd.
func TestUDPServerEndToEnd(t *testing.T) {
	z, err := zone.ParseString(liveZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	auth := authserver.NewServer(authserver.NewEngine(authserver.Config{
		Zones: []*zone.Zone{z}, Identity: "live1",
	}))
	// The engine addresses peers by IP, so the authoritative gets its
	// own loopback address (127/8 is all loopback on Linux).
	if err := auth.ListenAndServe("127.0.0.2:0"); err != nil {
		t.Skipf("cannot bind 127.0.0.2: %v", err)
	}
	defer auth.Close()
	authUDP := auth.Addr().(*net.UDPAddr)
	authAddr := netip.MustParseAddr("127.0.0.2")

	srv, err := NewUDPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Route(authAddr, uint16(authUDP.Port))

	eng := NewEngine(Config{
		Policy:    NewPolicy(KindBINDLike),
		Infra:     NewInfraCache(10*time.Minute, HardExpire),
		Cache:     NewRecordCache(),
		Zones:     []ZoneServers{{Zone: dnswire.MustParseName("ourtestdomain.nl"), Servers: []netip.Addr{authAddr}}},
		Transport: srv,
		Clock:     &RealClock{},
		RNG:       rand.New(rand.NewSource(1)),
		Timeout:   time.Second,
	})
	go srv.Serve(eng)

	// A stub client over a real socket.
	client, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i := 0; i < 3; i++ {
		qname := dnswire.MustParseName("probe-x.ourtestdomain.nl")
		q := dnswire.NewQuery(uint16(100+i), qname, dnswire.TypeTXT)
		wire, _ := q.Pack()
		if _, err := client.Write(wire); err != nil {
			t.Fatal(err)
		}
		client.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 4096)
		n, err := client.Read(buf)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != uint16(100+i) || resp.RCode != dnswire.RCodeNoError {
			t.Fatalf("resp %d: %+v", i, resp.Header)
		}
		if got := resp.Answers[0].Data.(dnswire.TXT).Joined(); got != "site=LIVE" {
			t.Fatalf("TXT = %q", got)
		}
		if !resp.RecursionAvailable {
			t.Error("resolver should set RA")
		}
	}
	// The resolver measured a real loopback RTT.
	st := eng.Infra().State(authAddr, eng.cfg.Clock.Now())
	if !st.Known || st.SRTT <= 0 || st.SRTT > 100 {
		t.Errorf("infra state after live queries: %+v", st)
	}
	if hits, _ := eng.cfg.Cache.Stats(); hits == 0 {
		t.Error("repeated name within TTL should hit the record cache")
	}
}

func TestUDPServerCloseIdempotent(t *testing.T) {
	srv, err := NewUDPServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestUDPServerBadAddr(t *testing.T) {
	if _, err := NewUDPServer("not-an-addr:xx"); err == nil {
		t.Error("bad address should fail")
	}
}
