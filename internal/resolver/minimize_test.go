package resolver

import (
	"testing"

	"ritw/internal/dnswire"
)

// TestMinimizationStepsExamples pins the documented walk shapes.
func TestMinimizationStepsExamples(t *testing.T) {
	t.Parallel()
	steps := func(zone, qname string, max int) []string {
		out := MinimizationSteps(dnswire.MustParseName(zone), dnswire.MustParseName(qname), max)
		s := make([]string, len(out))
		for i, n := range out {
			s[i] = n.String()
		}
		return s
	}
	eq := func(got, want []string) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}

	if got := steps("example.", "a.b.c.example.", 0); !eq(got, []string{"c.example.", "b.c.example.", "a.b.c.example."}) {
		t.Errorf("doc example walk = %v", got)
	}
	// Not below the zone, equal to it, or the root: one full-name query.
	for _, tc := range [][2]string{
		{"other.nl.", "a.example.nl."},
		{"example.nl.", "example.nl."},
		{"example.nl.", "."},
	} {
		if got := steps(tc[0], tc[1], 0); !eq(got, []string{tc[1]}) {
			t.Errorf("degenerate (%s, %s) = %v, want single full-name step", tc[0], tc[1], got)
		}
	}
	// Capped walk: maxSteps-1 single-label reveals, then the jump to the
	// full name.
	if got := steps("nl.", "a.b.c.d.e.f.nl.", 3); !eq(got, []string{"f.nl.", "e.f.nl.", "a.b.c.d.e.f.nl."}) {
		t.Errorf("capped walk = %v", got)
	}
}

// FuzzQnameMinimization fuzzes the RFC 9156 label walk with arbitrary
// zone/qname pairs and step caps. The invariants are the termination
// contract the engine's minimization path depends on: the walk is
// never empty, always ends with the full qname, never exceeds its
// step cap, reveals strictly more labels at every step (so re-querying
// the same name forever is structurally impossible — the defense
// against odd label counts, root/ENT zones, and crafted deep names),
// and every intermediate name is a suffix of qname strictly below the
// zone cut.
func FuzzQnameMinimization(f *testing.F) {
	f.Add("example.nl", "a.b.c.example.nl", 10)
	f.Add(".", "x.y", 0)
	f.Add("example.nl", "example.nl", 3)
	f.Add("nl", "a.a.a.a.a.a.a.a.a.a.a.a.a.a.nl", 10) // deeper than the cap
	f.Add("other.nl", "a.example.nl", 5)              // not below the zone
	f.Add("example.nl", ".", 4)                       // root qname
	f.Add("a.example.nl", "b.a.example.nl", 1)        // one-label walk, cap 1
	f.Add("example.nl", "ent.example.nl", -3)         // negative cap -> default
	f.Fuzz(func(t *testing.T, zoneS, qnameS string, maxSteps int) {
		zone, err := dnswire.ParseName(zoneS)
		if err != nil {
			t.Skip()
		}
		qname, err := dnswire.ParseName(qnameS)
		if err != nil {
			t.Skip()
		}
		steps := MinimizationSteps(zone, qname, maxSteps)

		if len(steps) == 0 {
			t.Fatal("empty walk")
		}
		if last := steps[len(steps)-1]; last.Key() != qname.Key() {
			t.Fatalf("walk ends at %v, want full qname %v", last, qname)
		}
		effMax := maxSteps
		if effMax <= 0 {
			effMax = DefaultMaxMinimize
		}
		if len(steps) > effMax {
			t.Fatalf("%d steps exceed cap %d", len(steps), effMax)
		}
		extra := qname.NumLabels() - zone.NumLabels()
		if !qname.IsSubdomainOf(zone) || extra <= 0 {
			if len(steps) != 1 {
				t.Fatalf("degenerate case must be the single full-name query, got %v", steps)
			}
			return
		}
		if len(steps) > extra {
			t.Fatalf("%d steps reveal more than the %d labels below the cut", len(steps), extra)
		}
		for i, s := range steps {
			if !qname.IsSubdomainOf(s) {
				t.Fatalf("step %d (%v) is not a suffix of %v", i, s, qname)
			}
			if !s.IsSubdomainOf(zone) || s.NumLabels() <= zone.NumLabels() {
				t.Fatalf("step %d (%v) is not strictly below zone %v", i, s, zone)
			}
			if i > 0 && s.NumLabels() <= steps[i-1].NumLabels() {
				t.Fatalf("step %d (%v) does not reveal more labels than %v — the walk could loop",
					i, s, steps[i-1])
			}
		}
		if len(steps) > 1 && steps[0].NumLabels() != zone.NumLabels()+1 {
			t.Fatalf("walk starts at %v (%d labels), want one label past the %d-label cut",
				steps[0], steps[0].NumLabels(), zone.NumLabels())
		}
		// Intermediate steps reveal exactly one label each; only the
		// final jump to qname may reveal several (the cap defense).
		for i := 1; i < len(steps)-1; i++ {
			if steps[i].NumLabels() != steps[i-1].NumLabels()+1 {
				t.Fatalf("intermediate step %d jumps from %d to %d labels",
					i, steps[i-1].NumLabels(), steps[i].NumLabels())
			}
		}
	})
}
