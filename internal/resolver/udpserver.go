package resolver

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
)

// UDPServer runs an Engine over a real UDP socket (cmd/resolvd and the
// livewire example). It implements Transport for the engine.
//
// The engine addresses peers by IP only (inside the simulator every
// host has a unique address); on real sockets the server therefore
// keeps a route table for upstream ports and remembers the last source
// port per client IP. Multiple concurrent clients behind one IP would
// collide — acceptable for a research daemon, and documented.
type UDPServer struct {
	conn *net.UDPConn

	mu          sync.Mutex
	routes      map[netip.Addr]uint16 // upstream address -> port
	clientPorts map[netip.Addr]uint16 // last seen source port per IP
	defaultPort uint16
	closed      bool
	wg          sync.WaitGroup
}

// maxClientPorts bounds the last-seen-port table; see Serve.
const maxClientPorts = 65536

// NewUDPServer binds addr (e.g. "127.0.0.1:5301").
func NewUDPServer(addr string) (*UDPServer, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("resolver: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("resolver: listen: %w", err)
	}
	return &UDPServer{
		conn:        conn,
		routes:      make(map[netip.Addr]uint16),
		clientPorts: make(map[netip.Addr]uint16),
		defaultPort: 53,
	}, nil
}

// Addr returns the bound address.
func (s *UDPServer) Addr() net.Addr { return s.conn.LocalAddr() }

// Route registers the UDP port for an upstream server address.
func (s *UDPServer) Route(addr netip.Addr, port uint16) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.routes[addr] = port
}

// Send implements Transport: it resolves the destination port from the
// route table, then from remembered client ports, then port 53.
func (s *UDPServer) Send(dst netip.Addr, payload []byte) {
	s.mu.Lock()
	port, ok := s.routes[dst]
	if !ok {
		port, ok = s.clientPorts[dst]
	}
	if !ok {
		port = s.defaultPort
	}
	s.mu.Unlock()
	s.conn.WriteToUDP(payload, &net.UDPAddr{IP: dst.AsSlice(), Port: int(port)})
}

// Serve pumps received packets into the engine until Close. It returns
// after the read loop exits.
func (s *UDPServer) Serve(e *Engine) {
	s.wg.Add(1)
	defer s.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		src, ok := netip.AddrFromSlice(raddr.IP)
		if !ok {
			continue
		}
		src = src.Unmap()
		s.mu.Lock()
		if _, isUpstream := s.routes[src]; !isUpstream {
			// Bound the table: a wide (or spoofed) client population
			// must not grow memory forever. Dropping old entries only
			// costs those clients a reply until they query again.
			if len(s.clientPorts) >= maxClientPorts {
				s.clientPorts = make(map[netip.Addr]uint16, maxClientPorts/4)
			}
			s.clientPorts[src] = uint16(raddr.Port)
		}
		s.mu.Unlock()
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		e.HandlePacket(src, pkt)
	}
}

// Close stops the server and waits for Serve to return.
func (s *UDPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}
