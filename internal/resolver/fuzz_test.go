package resolver

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"ritw/internal/dnswire"
)

// TestEngineSurvivesHostilePacketSoak throws randomized traffic at the
// engine — malformed packets, truncated queries, spoofed responses,
// replays, interleaved timeouts — and checks the core invariants: no
// panic, the pending table drains, and well-formed client queries are
// eventually answered or SERVFAILed, never lost.
func TestEngineSurvivesHostilePacketSoak(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tr := &fakeTransport{}
			clk := &fakeClock{}
			e := NewEngine(Config{
				Policy:     NewPolicy(KindBINDLike),
				Infra:      NewInfraCache(10*time.Minute, DecayKeep),
				Cache:      NewRecordCache(),
				Zones:      []ZoneServers{{Zone: testZone, Servers: []netip.Addr{srvA, srvB, srvC}}},
				Transport:  tr,
				Clock:      clk,
				RNG:        rand.New(rand.NewSource(seed + 100)),
				Timeout:    300 * time.Millisecond,
				MaxRetries: 2,
			})

			clientReplies := 0
			clientQueries := 0
			attacker := netip.MustParseAddr("198.51.100.200")
			for step := 0; step < 3000; step++ {
				switch rng.Intn(6) {
				case 0: // legitimate client query
					clientQueries++
					label := labelI(step)
					name, err := testZone.Child(label)
					if err != nil {
						t.Fatal(err)
					}
					wire, err := dnswire.NewQuery(uint16(step), name, dnswire.TypeTXT).Pack()
					if err != nil {
						t.Fatal(err)
					}
					e.HandlePacket(clientAddr, wire)
				case 1: // garbage bytes from anywhere
					buf := make([]byte, rng.Intn(64))
					rng.Read(buf)
					e.HandlePacket(attacker, buf)
				case 2: // spoofed response with a random ID
					resp := &dnswire.Message{Header: dnswire.Header{
						ID: uint16(rng.Intn(1 << 16)), Response: true,
					}}
					resp.Questions = []dnswire.Question{{Name: testZone, Type: dnswire.TypeTXT, Class: dnswire.ClassINET}}
					wire, err := resp.Pack()
					if err != nil {
						t.Fatal(err)
					}
					e.HandlePacket(attacker, wire)
				case 3: // answer some outstanding upstream query honestly
					for _, p := range tr.take() {
						if p.dst == clientAddr {
							clientReplies++
							continue
						}
						if rng.Intn(2) == 0 {
							e.HandlePacket(p.dst, authAnswerRaw(t, p.payload, "v"))
						} // else: drop it, let the timeout fire
					}
				case 4: // replay a stale answer from the wrong server
					for _, p := range tr.take() {
						if p.dst == clientAddr {
							clientReplies++
							continue
						}
						e.HandlePacket(attacker, authAnswerRaw(t, p.payload, "evil"))
					}
				case 5: // time passes; timeouts and retries fire
					clk.advance(time.Duration(rng.Intn(400)) * time.Millisecond)
				}
			}
			// Drain: answer everything still in flight, let timers fire.
			for round := 0; round < 20; round++ {
				for _, p := range tr.take() {
					if p.dst == clientAddr {
						clientReplies++
						continue
					}
					e.HandlePacket(p.dst, authAnswerRaw(t, p.payload, "v"))
				}
				clk.advance(500 * time.Millisecond)
			}
			for _, p := range tr.take() {
				if p.dst == clientAddr {
					clientReplies++
				}
			}

			e.mu.Lock()
			pendingLeft := len(e.pending)
			e.mu.Unlock()
			if pendingLeft != 0 {
				t.Errorf("pending table did not drain: %d left", pendingLeft)
			}
			if clientReplies != clientQueries {
				t.Errorf("client got %d replies for %d queries", clientReplies, clientQueries)
			}
			st := e.Stats()
			if st.ClientQueries != clientQueries {
				t.Errorf("stats.ClientQueries = %d, want %d", st.ClientQueries, clientQueries)
			}
			if st.UpstreamAnswers+st.ServFails+st.CacheHits < clientQueries {
				t.Errorf("accounting hole: answers=%d servfails=%d hits=%d queries=%d",
					st.UpstreamAnswers, st.ServFails, st.CacheHits, clientQueries)
			}
		})
	}
}

// authAnswerRaw builds a valid authoritative response for a packed
// upstream query without test assertions on content.
func authAnswerRaw(t *testing.T, upstream []byte, txt string) []byte {
	t.Helper()
	q, err := dnswire.Unpack(upstream)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.NewResponse(q)
	if err != nil {
		t.Fatal(err)
	}
	resp.Authoritative = true
	resp.Answers = []dnswire.RR{{
		Name: q.Questions[0].Name, Class: dnswire.ClassINET, TTL: 5,
		Data: dnswire.TXT{Strings: []string{txt}},
	}}
	wire, err := resp.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}
