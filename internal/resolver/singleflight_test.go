package resolver

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/obs"
)

// burstResult captures everything a duplicate-burst run produces that
// the differential test compares across the singleflight setting.
type burstResult struct {
	answers  map[uint16]string // client response ID -> TXT payload
	upstream int               // upstream packets sent for the burst
	stats    Stats
	counters map[string]int64
}

// runDuplicateBurst fires n identical in-flight client queries at a
// fresh engine, answers every upstream packet, and collects the client
// responses plus the engine's accounting.
func runDuplicateBurst(t *testing.T, singleflight bool, n int) burstResult {
	t.Helper()
	reg := obs.NewRegistry()
	tr := &fakeTransport{}
	clk := &fakeClock{}
	e := NewEngine(Config{
		Policy:       NewPolicy(KindUniform),
		Infra:        NewInfraCache(10*time.Minute, HardExpire),
		Cache:        NewRecordCache(),
		Zones:        []ZoneServers{{Zone: testZone, Servers: []netip.Addr{srvA, srvB}}},
		Transport:    tr,
		Clock:        clk,
		RNG:          rand.New(rand.NewSource(42)),
		Timeout:      500 * time.Millisecond,
		Singleflight: singleflight,
		Metrics:      reg,
	})

	for id := uint16(1); id <= uint16(n); id++ {
		e.HandlePacket(clientAddr, clientQuery(t, id, "dup"))
	}
	up := tr.take()
	clk.advance(30 * time.Millisecond)
	for _, p := range up {
		e.HandlePacket(p.dst, authAnswer(t, p.payload, "site=DUB", 5))
	}

	res := burstResult{
		answers:  make(map[uint16]string),
		upstream: len(up),
		stats:    e.Stats(),
	}
	for _, p := range tr.take() {
		if p.dst != clientAddr {
			t.Fatalf("unexpected post-answer upstream packet to %v", p.dst)
		}
		resp, err := dnswire.Unpack(p.payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Answers) != 1 {
			t.Fatalf("client %d got %d answers", resp.ID, len(resp.Answers))
		}
		res.answers[resp.ID] = resp.Answers[0].Data.(dnswire.TXT).Joined()
	}
	snap := reg.Snapshot()
	res.counters = map[string]int64{
		"resolver_singleflight_leaders_total": snap.Counter("resolver_singleflight_leaders_total"),
		"resolver_singleflight_hits_total":    snap.Counter("resolver_singleflight_hits_total"),
	}
	return res
}

// TestSingleflightDifferential is the fleet-mix satellite's
// differential contract: with singleflight on versus off, a burst of
// duplicate in-flight client queries must produce identical per-client
// answers while sending strictly fewer upstream queries, and the
// resolver_singleflight_* counters must account for the coalescing
// exactly on both sides.
func TestSingleflightDifferential(t *testing.T) {
	t.Parallel()
	const burst = 5
	off := runDuplicateBurst(t, false, burst)
	on := runDuplicateBurst(t, true, burst)

	if len(off.answers) != burst || len(on.answers) != burst {
		t.Fatalf("client answers: %d off, %d on, want %d each",
			len(off.answers), len(on.answers), burst)
	}
	if !reflect.DeepEqual(on.answers, off.answers) {
		t.Errorf("answers diverged:\noff %v\non  %v", off.answers, on.answers)
	}
	if on.upstream >= off.upstream {
		t.Errorf("singleflight sent %d upstream queries, want strictly fewer than %d",
			on.upstream, off.upstream)
	}
	if off.upstream != burst {
		t.Errorf("without singleflight every duplicate goes upstream: %d, want %d",
			off.upstream, burst)
	}
	if on.upstream != 1 {
		t.Errorf("with singleflight one leader goes upstream: %d, want 1", on.upstream)
	}

	if off.stats.SingleflightLeaders != 0 || off.stats.SingleflightHits != 0 {
		t.Errorf("singleflight off must not count: %+v", off.stats)
	}
	if off.counters["resolver_singleflight_leaders_total"] != 0 ||
		off.counters["resolver_singleflight_hits_total"] != 0 {
		t.Errorf("singleflight off counters non-zero: %v", off.counters)
	}
	if on.stats.SingleflightLeaders != 1 || on.stats.SingleflightHits != burst-1 {
		t.Errorf("singleflight accounting: leaders %d hits %d, want 1 and %d",
			on.stats.SingleflightLeaders, on.stats.SingleflightHits, burst-1)
	}
	if on.counters["resolver_singleflight_leaders_total"] != 1 ||
		on.counters["resolver_singleflight_hits_total"] != int64(burst-1) {
		t.Errorf("singleflight counters: %v, want leaders 1 hits %d",
			on.counters, burst-1)
	}

	if on.stats.UpstreamQueries >= off.stats.UpstreamQueries {
		t.Errorf("stats upstream: %d on vs %d off, want strictly fewer",
			on.stats.UpstreamQueries, off.stats.UpstreamQueries)
	}
}

// TestSingleflightDistinctQuestionsDoNotCoalesce guards the key: only
// identical (name, type, class) questions share a leader — distinct
// names in flight together still each go upstream.
func TestSingleflightDistinctQuestionsDoNotCoalesce(t *testing.T) {
	t.Parallel()
	tr := &fakeTransport{}
	clk := &fakeClock{}
	e := NewEngine(Config{
		Policy:       NewPolicy(KindUniform),
		Infra:        NewInfraCache(10*time.Minute, HardExpire),
		Cache:        NewRecordCache(),
		Zones:        []ZoneServers{{Zone: testZone, Servers: []netip.Addr{srvA, srvB}}},
		Transport:    tr,
		Clock:        clk,
		RNG:          rand.New(rand.NewSource(7)),
		Timeout:      500 * time.Millisecond,
		Singleflight: true,
	})
	e.HandlePacket(clientAddr, clientQuery(t, 1, "alpha"))
	e.HandlePacket(clientAddr, clientQuery(t, 2, "beta"))
	e.HandlePacket(clientAddr, clientQuery(t, 3, "alpha"))
	up := tr.take()
	if len(up) != 2 {
		t.Fatalf("distinct questions should both go upstream: %d packets", len(up))
	}
	st := e.Stats()
	if st.SingleflightLeaders != 2 || st.SingleflightHits != 1 {
		t.Errorf("accounting: %+v, want 2 leaders and 1 hit", st)
	}
	for _, p := range up {
		e.HandlePacket(p.dst, authAnswer(t, p.payload, "v", 5))
	}
	if out := tr.take(); len(out) != 3 {
		t.Errorf("all three clients must be answered, got %d", len(out))
	}
}

// TestSingleflightServFailPropagates confirms followers share the
// leader's failure as well as its success: when the leader exhausts
// every server, every coalesced client gets the SERVFAIL.
func TestSingleflightServFailPropagates(t *testing.T) {
	t.Parallel()
	tr := &fakeTransport{}
	clk := &fakeClock{}
	e := NewEngine(Config{
		Policy:       NewPolicy(KindUniform),
		Infra:        NewInfraCache(10*time.Minute, HardExpire),
		Cache:        NewRecordCache(),
		Zones:        []ZoneServers{{Zone: testZone, Servers: []netip.Addr{srvA, srvB}}},
		Transport:    tr,
		Clock:        clk,
		RNG:          rand.New(rand.NewSource(11)),
		Timeout:      200 * time.Millisecond,
		MaxRetries:   1,
		Singleflight: true,
	})
	e.HandlePacket(clientAddr, clientQuery(t, 21, "dead"))
	e.HandlePacket(clientAddr, clientQuery(t, 22, "dead"))
	// Never answer; let retries and timeouts exhaust the leader.
	clk.advance(5 * time.Second)
	var got []uint16
	for _, p := range tr.take() {
		if p.dst != clientAddr {
			continue
		}
		resp, err := dnswire.Unpack(p.payload)
		if err != nil {
			t.Fatal(err)
		}
		if resp.RCode != dnswire.RCodeServFail {
			t.Errorf("client %d got rcode %v, want SERVFAIL", resp.ID, resp.RCode)
		}
		got = append(got, resp.ID)
	}
	if len(got) != 2 {
		t.Fatalf("both coalesced clients must hear the failure, got %v", got)
	}
}
