package resolver

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

// pinSticky drives a fresh Sticky policy until it has pinned, and
// returns the policy and its pin.
func pinSticky(t *testing.T, servers []netip.Addr, infra *InfraCache, rng *rand.Rand) (Policy, netip.Addr) {
	t.Helper()
	p := NewPolicy(KindSticky)
	pin := p.Select(0, servers, infra, rng)
	if got := p.Select(0, servers, infra, rng); got != pin {
		t.Fatalf("sticky did not pin: %v then %v", pin, got)
	}
	return p, pin
}

// TestStickyFailsOverFromHeldDownPin is the regression pin for the
// Sticky liveness fix: when the pinned server enters a backoff
// hold-down window, the policy must fail over to a different server
// instead of riding the dead pin — before the fix it waited for the
// next recorded timeout, which never comes once the engine stops
// offering the held server.
func TestStickyFailsOverFromHeldDownPin(t *testing.T) {
	t.Parallel()
	servers := []netip.Addr{srvA, srvB, srvC}
	infra := NewInfraCache(0, HardExpire) // default backoff: threshold 2
	rng := rand.New(rand.NewSource(3))
	p, pin := pinSticky(t, servers, infra, rng)

	infra.Timeout(pin, 0)
	infra.Timeout(pin, 0)
	if st := infra.State(pin, 0); !st.HeldDown {
		t.Fatalf("two consecutive timeouts should hold the pin down: %+v", st)
	}
	for i := 0; i < 20; i++ {
		if got := p.Select(0, servers, infra, rng); got == pin {
			t.Fatalf("select %d returned the held-down pin %v", i, pin)
		}
	}
}

// TestStickyFailsOverFromDeadPinBetweenHoldWindows covers the second
// half of the fix: a pin whose consecutive-timeout count reached the
// hold-down threshold is dead even after the hold window itself has
// expired — the policy must not re-adopt it just because the window
// lapsed without a successful answer.
func TestStickyFailsOverFromDeadPinBetweenHoldWindows(t *testing.T) {
	t.Parallel()
	servers := []netip.Addr{srvA, srvB}
	infra := NewInfraCache(0, HardExpire)
	infra.SetBackoff(BackoffConfig{Base: 2 * time.Second, Max: time.Minute, Threshold: 2})
	rng := rand.New(rand.NewSource(5))
	p, pin := pinSticky(t, servers, infra, rng)

	infra.Timeout(pin, 0)
	infra.Timeout(pin, 0)
	after := 10 * time.Second // well past the 2s hold window
	st := infra.State(pin, after)
	if st.HeldDown {
		t.Fatalf("hold window should have expired: %+v", st)
	}
	if st.ConsecTimeouts < infra.Backoff().Threshold {
		t.Fatalf("pin should still look dead: %+v", st)
	}
	for i := 0; i < 20; i++ {
		if got := p.Select(after, servers, infra, rng); got == pin {
			t.Fatalf("select %d re-adopted the dead pin %v between hold windows", i, pin)
		}
	}
}

// TestStickyFailoverSticksToNewPin: after failing over, the policy
// pins the replacement — it does not re-roll every select while the
// old pin stays dead.
func TestStickyFailoverSticksToNewPin(t *testing.T) {
	t.Parallel()
	servers := []netip.Addr{srvA, srvB, srvC}
	infra := NewInfraCache(0, HardExpire)
	rng := rand.New(rand.NewSource(9))
	p, pin := pinSticky(t, servers, infra, rng)
	infra.Timeout(pin, 0)
	infra.Timeout(pin, 0)

	newPin := p.Select(0, servers, infra, rng)
	if newPin == pin {
		t.Fatalf("failover landed on the dead pin %v", pin)
	}
	for i := 0; i < 20; i++ {
		if got := p.Select(0, servers, infra, rng); got != newPin {
			t.Fatalf("select %d moved from new pin %v to %v without failure", i, newPin, got)
		}
	}
}

// TestStickyKeepsOnlyServerWhenDead: with a single configured server
// there is nowhere to fail over to — the policy must keep answering
// with it rather than panicking or returning a zero address.
func TestStickyKeepsOnlyServerWhenDead(t *testing.T) {
	t.Parallel()
	servers := []netip.Addr{srvA}
	infra := NewInfraCache(0, HardExpire)
	rng := rand.New(rand.NewSource(2))
	p := NewPolicy(KindSticky)
	if got := p.Select(0, servers, infra, rng); got != srvA {
		t.Fatalf("pinned %v, want %v", got, srvA)
	}
	infra.Timeout(srvA, 0)
	infra.Timeout(srvA, 0)
	if got := p.Select(0, servers, infra, rng); got != srvA {
		t.Fatalf("only server: got %v, want %v", got, srvA)
	}
}
