package resolver

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"time"
)

// Policy decides which authoritative server receives the next query
// for a zone, given the infrastructure cache's latency knowledge. This
// is the behaviour the paper measures in aggregate: "how recursive
// resolvers select authoritative name servers ... in the wild".
//
// Implementations may mutate the infra cache (BIND's selection decays
// the estimates of the servers it did not choose).
type Policy interface {
	// Name identifies the policy in datasets and reports.
	Name() string
	// Select picks one of servers (len >= 1) to query at time now.
	Select(now time.Duration, servers []netip.Addr, infra *InfraCache, rng *rand.Rand) netip.Addr
}

// PolicyKind enumerates the built-in policies for configuration and
// dataset labels.
type PolicyKind uint8

// The modelled resolver behaviours. Yu et al. [33] found about
// half of implementations select by latency while the rest alternate;
// these span that space.
const (
	// KindBINDLike: lowest SRTT wins; unchosen servers decay so they
	// are retried occasionally (BIND 9's ADB behaviour).
	KindBINDLike PolicyKind = iota
	// KindUnboundLike: uniform choice within an RTO band of the best
	// server; servers outside the band are avoided (Unbound).
	KindUnboundLike
	// KindWeightedRTT: probability inversely proportional to SRTT²,
	// a smooth latency preference (PowerDNS-style speed weighting).
	KindWeightedRTT
	// KindUniform: uniform random over all servers (djbdns dnscache).
	KindUniform
	// KindRoundRobin: strict rotation (Windows DNS style).
	KindRoundRobin
	// KindSticky: pins the first server that answered and keeps it
	// until it is held down or dead (simple forwarders and CPE
	// resolvers with no infrastructure cache).
	KindSticky
	// KindProbeTopN: EWMA-ranked selection among the best N servers
	// with periodic probe rotation to refresh the ranking (the secDNS
	// recursive's probeTopN/probeInterval behaviour).
	KindProbeTopN
)

// Kinds lists every built-in policy kind, in enum order. Tests and
// population mixes that want "one of each" iterate this instead of
// hard-coding the enum bounds.
func Kinds() []PolicyKind {
	return []PolicyKind{
		KindBINDLike, KindUnboundLike, KindWeightedRTT,
		KindUniform, KindRoundRobin, KindSticky, KindProbeTopN,
	}
}

// ParseKind maps a policy label (as produced by PolicyKind.String) back
// to its kind, for -mix style flag parsing.
func ParseKind(s string) (PolicyKind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(s, k.String()) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("resolver: unknown policy kind %q", s)
}

// String returns the policy kind's label.
func (k PolicyKind) String() string {
	switch k {
	case KindBINDLike:
		return "bindlike"
	case KindUnboundLike:
		return "unboundlike"
	case KindWeightedRTT:
		return "weightedrtt"
	case KindUniform:
		return "uniform"
	case KindRoundRobin:
		return "roundrobin"
	case KindSticky:
		return "sticky"
	case KindProbeTopN:
		return "probetopn"
	default:
		return fmt.Sprintf("PolicyKind(%d)", uint8(k))
	}
}

// NewPolicy constructs a fresh policy instance of the given kind.
// Policies carry per-resolver state (round-robin position, sticky
// choice), so every resolver needs its own instance.
func NewPolicy(kind PolicyKind) Policy {
	switch kind {
	case KindBINDLike:
		return &BINDLike{Decay: 0.98, InitialMaxMs: 7}
	case KindUnboundLike:
		// Unbound's documented default selection band is 400 ms.
		return &UnboundLike{BandMs: 400}
	case KindWeightedRTT:
		// Linear inverse-RTT weighting: smooth preference that crosses
		// the paper's strong-preference threshold only for ~10x gaps.
		return &WeightedRTT{Exponent: 1}
	case KindUniform:
		return &Uniform{}
	case KindRoundRobin:
		return &RoundRobin{}
	case KindSticky:
		return &Sticky{}
	case KindProbeTopN:
		// secDNS recursive defaults: rank by EWMA RTT, try the best 5,
		// refresh the ranking with a rotated probe every hour.
		return &ProbeTopN{TopN: 5, ProbeInterval: time.Hour}
	default:
		panic(fmt.Sprintf("resolver: unknown policy kind %d", kind))
	}
}

// BINDLike selects the server with the lowest smoothed RTT, assigning
// unknown servers a small random SRTT so they are probed early, and
// multiplicatively decaying the SRTT of every server it does not pick
// so alternatives are re-tried now and then. This mirrors BIND 9's
// address database as the paper describes it ("an SRTT with a decaying
// factor").
//
// The decay is charged per elapsed wall-clock time, not per query:
// BIND ages its ADB on timers. At the testbed's 2-minute probing
// cadence the two are equivalent, but a production resolver sending
// hundreds of queries per minute must not cycle through every server
// hundreds of times faster — this distinction is what shapes the
// root-trace letter coverage (Figure 7).
type BINDLike struct {
	// Decay is the factor applied to non-chosen servers per DecayUnit
	// of elapsed time (BIND: ~0.98).
	Decay float64
	// DecayUnit is the time over which one Decay factor accrues
	// (default 2 minutes).
	DecayUnit time.Duration
	// InitialMaxMs bounds the random optimistic SRTT given to unknown
	// servers so they win until measured.
	InitialMaxMs float64

	lastDecay time.Duration
	started   bool
}

// Name implements Policy.
func (*BINDLike) Name() string { return KindBINDLike.String() }

// Select implements Policy.
func (p *BINDLike) Select(now time.Duration, servers []netip.Addr, infra *InfraCache, rng *rand.Rand) netip.Addr {
	best := servers[0]
	bestVal := p.effectiveSRTT(now, servers[0], infra, rng)
	for _, s := range servers[1:] {
		v := p.effectiveSRTT(now, s, infra, rng)
		if v < bestVal {
			best, bestVal = s, v
		}
	}
	unit := p.DecayUnit
	if unit <= 0 {
		unit = 2 * time.Minute
	}
	if !p.started {
		p.started = true
		p.lastDecay = now
	}
	elapsed := now - p.lastDecay
	if elapsed > 0 {
		factor := math.Pow(p.Decay, float64(elapsed)/float64(unit))
		// Cap total aging per event so a long-idle resolver does not
		// zero out its whole cache in one step.
		if factor < 0.25 {
			factor = 0.25
		}
		for _, s := range servers {
			if s != best {
				infra.Scale(s, factor)
			}
		}
		p.lastDecay = now
	}
	return best
}

func (p *BINDLike) effectiveSRTT(now time.Duration, s netip.Addr, infra *InfraCache, rng *rand.Rand) float64 {
	st := infra.State(s, now)
	if !st.Known {
		return rng.Float64() * p.InitialMaxMs
	}
	return st.SRTT
}

// UnboundLike selects uniformly at random among the servers whose
// smoothed RTT lies within BandMs of the best one; servers outside the
// band are only picked if none qualify. Unknown servers count as
// within-band so they get probed. This mirrors Unbound's documented
// server selection (uniform within a 400 ms band of the fastest).
type UnboundLike struct {
	// BandMs is the selection band above the fastest server.
	BandMs float64
}

// Name implements Policy.
func (*UnboundLike) Name() string { return KindUnboundLike.String() }

// Select implements Policy.
func (p *UnboundLike) Select(now time.Duration, servers []netip.Addr, infra *InfraCache, rng *rand.Rand) netip.Addr {
	// Find the best known smoothed RTT.
	best := -1.0
	for _, s := range servers {
		st := infra.State(s, now)
		if st.Known {
			if best < 0 || st.SRTT < best {
				best = st.SRTT
			}
		}
	}
	var eligible []netip.Addr
	for _, s := range servers {
		st := infra.State(s, now)
		if !st.Known || best < 0 || st.SRTT <= best+p.BandMs {
			eligible = append(eligible, s)
		}
	}
	if len(eligible) == 0 {
		eligible = servers
	}
	return eligible[rng.Intn(len(eligible))]
}

// WeightedRTT selects with probability proportional to SRTT^-Exponent:
// a smooth latency preference that sharpens as the latency gap grows,
// in the spirit of PowerDNS's decaying speed metric.
type WeightedRTT struct {
	// Exponent controls how sharply latency differences translate
	// into preference (2 ≈ inverse-square).
	Exponent float64
}

// Name implements Policy.
func (*WeightedRTT) Name() string { return KindWeightedRTT.String() }

// Select implements Policy.
func (p *WeightedRTT) Select(now time.Duration, servers []netip.Addr, infra *InfraCache, rng *rand.Rand) netip.Addr {
	weights := make([]float64, len(servers))
	var total float64
	for i, s := range servers {
		st := infra.State(s, now)
		if !st.Known {
			// Unknown servers are attractive: probe them.
			weights[i] = 1
		} else {
			srtt := st.SRTT
			if srtt < 1 {
				srtt = 1
			}
			weights[i] = math.Pow(srtt, -p.Exponent)
		}
		total += weights[i]
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return servers[i]
		}
	}
	return servers[len(servers)-1]
}

// Uniform picks uniformly at random, the dnscache behaviour.
type Uniform struct{}

// Name implements Policy.
func (Uniform) Name() string { return KindUniform.String() }

// Select implements Policy.
func (Uniform) Select(_ time.Duration, servers []netip.Addr, _ *InfraCache, rng *rand.Rand) netip.Addr {
	return servers[rng.Intn(len(servers))]
}

// RoundRobin rotates through the server list. The starting offset is
// randomized per resolver so a population does not move in lockstep.
type RoundRobin struct {
	pos         int
	initialized bool
}

// Name implements Policy.
func (*RoundRobin) Name() string { return KindRoundRobin.String() }

// Select implements Policy.
func (p *RoundRobin) Select(_ time.Duration, servers []netip.Addr, _ *InfraCache, rng *rand.Rand) netip.Addr {
	if !p.initialized {
		p.pos = rng.Intn(len(servers))
		p.initialized = true
	}
	s := servers[p.pos%len(servers)]
	p.pos++
	return s
}

// Sticky pins one randomly-chosen server and keeps using it as long as
// it answers; it moves on after a timeout is recorded against the
// pinned server, and when the pin is held down or looks dead it fails
// over to a *different* server rather than re-rolling over the full
// list (a re-roll can land on the dead pin again, keeping a dark
// authoritative dark for this resolver forever). This models
// forwarders and embedded resolvers that, as the paper notes, "may
// omit the infrastructure cache". Sticky resolvers are the ones that
// never probe all authoritatives.
type Sticky struct {
	pinned   netip.Addr
	havePin  bool
	timeouts int
}

// Name implements Policy.
func (*Sticky) Name() string { return KindSticky.String() }

// Select implements Policy.
func (p *Sticky) Select(now time.Duration, servers []netip.Addr, infra *InfraCache, rng *rand.Rand) netip.Addr {
	dead := false
	if p.havePin {
		st := infra.State(p.pinned, now)
		// A pin inside a hold-down window, or one whose consecutive
		// timeouts reached the hold-down threshold, is treated as dead
		// even between hold windows: a sticky resolver that waits for
		// the next timeout to reconsider never actually reconsiders,
		// because the engine stops offering the held server.
		dead = st.HeldDown || st.ConsecTimeouts >= infra.Backoff().Threshold
		if st.Timeouts <= p.timeouts && !dead {
			// Still healthy; verify the pin is still configured.
			for _, s := range servers {
				if s == p.pinned {
					return p.pinned
				}
			}
		}
		p.timeouts = st.Timeouts
	}
	if dead && len(servers) > 1 {
		// Fail over away from the dead pin.
		alt := make([]netip.Addr, 0, len(servers))
		for _, s := range servers {
			if s != p.pinned {
				alt = append(alt, s)
			}
		}
		if len(alt) > 0 {
			p.pinned = alt[rng.Intn(len(alt))]
			p.havePin = true
			return p.pinned
		}
	}
	p.pinned = servers[rng.Intn(len(servers))]
	p.havePin = true
	return p.pinned
}

// ProbeTopN ranks every candidate by its EWMA smoothed RTT and sends
// the query to the best-ranked server, with two refresh mechanisms
// modelled on the secDNS recursive's probeTopN/probeInterval knobs:
// unknown servers rank best (a tiny random estimate) so a cold cache
// measures everything quickly, and once per ProbeInterval one of the
// lower-ranked candidates in the top-N set is probed instead of the
// leader so the ranking cannot fossilize. Failure backoff rides the
// infra cache: timeouts double a server's SRTT and hold-down pushes it
// to the bottom of the ranking, so a failing leader loses its rank
// after a couple of misses without any policy-local bookkeeping.
type ProbeTopN struct {
	// TopN is the size of the ranked candidate set rotation probes are
	// drawn from (secDNS default 5, range 1–13).
	TopN int
	// ProbeInterval is how often the ranking is refreshed by probing a
	// non-leader candidate (secDNS default 1h).
	ProbeInterval time.Duration

	lastProbe time.Duration
	started   bool
	scratch   []probeCand
}

// probeCand is one ranked candidate in ProbeTopN's scratch ranking.
type probeCand struct {
	addr netip.Addr
	srtt float64
}

// Name implements Policy.
func (*ProbeTopN) Name() string { return KindProbeTopN.String() }

// Select implements Policy.
func (p *ProbeTopN) Select(now time.Duration, servers []netip.Addr, infra *InfraCache, rng *rand.Rand) netip.Addr {
	n := p.TopN
	if n <= 0 {
		n = 5
	}
	interval := p.ProbeInterval
	if interval <= 0 {
		interval = time.Hour
	}
	ranked := p.scratch[:0]
	for _, s := range servers {
		st := infra.State(s, now)
		c := probeCand{addr: s}
		switch {
		case !st.Known:
			// Unmeasured servers are maximally attractive: a fraction
			// of a millisecond beats any real estimate.
			c.srtt = rng.Float64()
		default:
			c.srtt = st.SRTT
			if st.Stale {
				// A stale estimate is weaker evidence; rank it behind
				// equally-fast fresh ones.
				c.srtt += st.RTTVar
			}
			if st.HeldDown {
				// Failure backoff: a held-down server ranks last no
				// matter how fast it once was.
				c.srtt += 1e6
			}
		}
		ranked = append(ranked, c)
	}
	p.scratch = ranked
	sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].srtt < ranked[b].srtt })
	if len(ranked) > n {
		ranked = ranked[:n]
	}
	if !p.started {
		p.started = true
		p.lastProbe = now
	}
	if now-p.lastProbe >= interval && len(ranked) > 1 {
		// Probe rotation: refresh a lower-ranked candidate's estimate
		// so the top-N ordering tracks reality.
		p.lastProbe = now
		return ranked[1+rng.Intn(len(ranked)-1)].addr
	}
	return ranked[0].addr
}
