package resolver

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"ritw/internal/obs"
)

var (
	srvA = netip.MustParseAddr("192.0.2.1")
	srvB = netip.MustParseAddr("192.0.2.2")
	srvC = netip.MustParseAddr("192.0.2.3")
)

func TestInfraObserveSmoothing(t *testing.T) {
	c := NewInfraCache(10*time.Minute, HardExpire)
	c.Observe(srvA, 100, 0)
	st := c.State(srvA, 0)
	if !st.Known || st.SRTT != 100 {
		t.Fatalf("first observation: %+v", st)
	}
	// EWMA with alpha 0.3: 0.7*100 + 0.3*200 = 130.
	c.Observe(srvA, 200, time.Second)
	st = c.State(srvA, time.Second)
	if math.Abs(st.SRTT-130) > 1e-9 {
		t.Errorf("SRTT = %v, want 130", st.SRTT)
	}
	if st.Queries != 2 {
		t.Errorf("queries = %d", st.Queries)
	}
	if st.RTTVar <= 0 {
		t.Errorf("variance should be positive: %v", st.RTTVar)
	}
}

func TestInfraUnknownServer(t *testing.T) {
	c := NewInfraCache(time.Minute, HardExpire)
	st := c.State(srvA, 0)
	if st.Known {
		t.Error("unqueried server should be unknown")
	}
	if c.Len() != 0 {
		t.Error("cache should be empty")
	}
}

func TestInfraHardExpire(t *testing.T) {
	c := NewInfraCache(10*time.Minute, HardExpire)
	c.Observe(srvA, 50, 0)
	if st := c.State(srvA, 9*time.Minute); !st.Known {
		t.Error("entry should be fresh at 9 min")
	}
	if st := c.State(srvA, 11*time.Minute); st.Known {
		t.Error("entry should be gone after TTL")
	}
	// A fresh observation after expiry restarts the estimate rather
	// than smoothing against ancient state.
	c.Observe(srvA, 200, 20*time.Minute)
	st := c.State(srvA, 20*time.Minute)
	if st.SRTT != 200 {
		t.Errorf("restarted SRTT = %v, want 200", st.SRTT)
	}
}

func TestInfraDecayKeep(t *testing.T) {
	c := NewInfraCache(10*time.Minute, DecayKeep)
	c.Observe(srvA, 50, 0)
	st := c.State(srvA, 30*time.Minute)
	if !st.Known || !st.Stale {
		t.Fatalf("DecayKeep should keep stale entries: %+v", st)
	}
	if st.SRTT != 50 {
		t.Errorf("stale SRTT = %v, want 50 preserved", st.SRTT)
	}
	fresh := c.State(srvA, time.Minute)
	if fresh.Stale {
		t.Error("fresh entry flagged stale")
	}
	if st.RTTVar <= fresh.RTTVar {
		t.Error("stale entries should have widened variance")
	}
}

func TestInfraZeroTTLNeverExpires(t *testing.T) {
	c := NewInfraCache(0, HardExpire)
	c.Observe(srvA, 50, 0)
	if st := c.State(srvA, 1000*time.Hour); !st.Known {
		t.Error("TTL 0 should mean no expiry")
	}
}

func TestInfraTimeoutPenalty(t *testing.T) {
	c := NewInfraCache(time.Minute, HardExpire)
	c.Observe(srvA, 100, 0)
	c.Timeout(srvA, time.Second)
	st := c.State(srvA, time.Second)
	if st.SRTT <= 100 {
		t.Errorf("timeout should inflate SRTT: %v", st.SRTT)
	}
	if st.Timeouts != 1 {
		t.Errorf("timeouts = %d", st.Timeouts)
	}
	// Penalty saturates.
	for i := 0; i < 20; i++ {
		c.Timeout(srvA, time.Second)
	}
	if st := c.State(srvA, time.Second); st.SRTT > 10000 {
		t.Errorf("SRTT should saturate at 10000: %v", st.SRTT)
	}
	// Timeout on unknown server creates a pessimistic entry.
	c.Timeout(srvB, 0)
	if st := c.State(srvB, 0); !st.Known || st.SRTT < 400 {
		t.Errorf("timeout-created entry = %+v", st)
	}
}

func TestInfraScale(t *testing.T) {
	c := NewInfraCache(time.Minute, HardExpire)
	c.Observe(srvA, 100, 0)
	c.Scale(srvA, 0.5)
	if st := c.State(srvA, 0); st.SRTT != 50 {
		t.Errorf("scaled SRTT = %v", st.SRTT)
	}
	c.Scale(srvB, 0.5) // no-op on unknown
	if c.Len() != 1 {
		t.Error("Scale should not create entries")
	}
}

func TestInfraNoteQuery(t *testing.T) {
	c := NewInfraCache(time.Minute, HardExpire)
	c.NoteQuery(srvA)
	st := c.State(srvA, 0)
	if st.Known {
		t.Error("a query without a response is not latency evidence")
	}
	if st.Queries != 1 {
		t.Errorf("state = %+v", st)
	}
	c.NoteQuery(srvA)
	if st := c.State(srvA, 0); st.Queries != 2 {
		t.Errorf("queries = %d", st.Queries)
	}
	// The first real observation must not be smoothed against the
	// zero-valued placeholder.
	c.Observe(srvA, 80, 0)
	if st := c.State(srvA, 0); !st.Known || st.SRTT != 80 || st.Queries != 3 {
		t.Errorf("after first observation: %+v", st)
	}
}

func TestServerStateRTO(t *testing.T) {
	st := ServerState{SRTT: 100, RTTVar: 25}
	if st.RTO() != 200 {
		t.Errorf("RTO = %v, want 200", st.RTO())
	}
}

// TestInfraResetPreservesAccounting pins the HardExpire reset fix:
// expiring the RTT estimate must not zero the lifetime query/timeout
// counters, which describe the server rather than the estimate.
func TestInfraResetPreservesAccounting(t *testing.T) {
	c := NewInfraCache(time.Minute, HardExpire)
	c.Observe(srvA, 50, 0)
	c.Timeout(srvA, 10*time.Second)
	// Well past the TTL: the next Observe takes the reset branch.
	c.Observe(srvA, 80, 5*time.Minute)
	st := c.State(srvA, 5*time.Minute)
	if st.SRTT != 80 {
		t.Errorf("SRTT = %v, want fresh estimate 80", st.SRTT)
	}
	if st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1 preserved across the reset", st.Timeouts)
	}
	if st.Queries != 2 {
		t.Errorf("Queries = %d, want 2 preserved across the reset", st.Queries)
	}
}

// TestInfraSRTTGauges checks that SetMetrics publishes per-server
// smoothed RTT snapshots as labelled gauges.
func TestInfraSRTTGauges(t *testing.T) {
	c := NewInfraCache(0, DecayKeep)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)
	c.Observe(srvA, 40, 0)
	c.Observe(srvB, 90, 0)
	s := reg.Snapshot()
	if got := s.Gauge(`resolver_srtt_ms{server="192.0.2.1"}`); got != 40 {
		t.Errorf("srvA gauge = %v, want 40", got)
	}
	if got := s.Gauge(`resolver_srtt_ms{server="192.0.2.2"}`); got != 90 {
		t.Errorf("srvB gauge = %v, want 90", got)
	}
}
