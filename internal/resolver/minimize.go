package resolver

import "ritw/internal/dnswire"

// DefaultMaxMinimize is the cap on qname-minimization iterations, RFC
// 9156's MAX_MINIMISE_COUNT: names with more labels below the zone cut
// than this reveal the remainder in the final full-name query instead
// of walking forever — the defense against crafted deeply-nested names.
const DefaultMaxMinimize = 10

// MinimizationSteps computes the query-name sequence a qname-minimizing
// resolver (RFC 7816 / RFC 9156) sends toward the authoritatives of
// zone when resolving qname. The walk reveals one label beyond the zone
// cut per step and always ends with the full qname:
//
//	zone=example.  qname=a.b.c.example.  →  c.example., b.c.example., a.b.c.example.
//
// Edge cases are pinned by FuzzQnameMinimization: when qname is not
// below zone, equals it, or is the root, the walk degenerates to the
// single full-name query (never zero steps, never a loop); when more
// than maxSteps labels would be revealed, the first maxSteps-1 steps
// reveal one label each and the final step jumps to qname, so empty
// non-terminals and adversarial label counts terminate in bounded
// queries. maxSteps <= 0 selects DefaultMaxMinimize.
func MinimizationSteps(zone, qname dnswire.Name, maxSteps int) []dnswire.Name {
	if maxSteps <= 0 {
		maxSteps = DefaultMaxMinimize
	}
	extra := qname.NumLabels() - zone.NumLabels()
	if !qname.IsSubdomainOf(zone) || extra <= 0 {
		return []dnswire.Name{qname}
	}
	n := extra
	if n > maxSteps {
		n = maxSteps
	}
	// suffix[k] is qname with its k most-specific labels removed; the
	// intermediate steps are the suffixes revealing one label at a time
	// past the cut, most-hidden first.
	steps := make([]dnswire.Name, n)
	steps[n-1] = qname
	suffix := qname
	for k := 1; k <= extra-1; k++ {
		suffix = suffix.Parent()
		if i := extra - 1 - k; i < n-1 {
			steps[i] = suffix
		}
	}
	return steps
}
