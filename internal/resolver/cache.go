package resolver

import (
	"sync"
	"time"

	"ritw/internal/dnswire"
)

// cacheKey identifies a cached RRset.
type cacheKey struct {
	name  string // canonical owner
	typ   dnswire.Type
	class dnswire.Class
}

// cacheEntry stores a positive or negative answer until expiry.
type cacheEntry struct {
	rcode    dnswire.RCode
	answers  []dnswire.RR
	negative bool
	expires  time.Duration
}

// RecordCache is the resolver's answer cache, honouring record TTLs
// (including the 5-second TTLs the paper's test records carry) and
// RFC 2308 negative caching.
type RecordCache struct {
	// MaxEntries bounds memory; entries are evicted opportunistically
	// when the bound is exceeded.
	MaxEntries int

	// mu makes the cache safe for concurrent use (see InfraCache.mu).
	mu           sync.Mutex
	entries      map[cacheKey]cacheEntry
	hits, misses int
}

// NewRecordCache creates an empty record cache.
func NewRecordCache() *RecordCache {
	return &RecordCache{
		entries:    make(map[cacheKey]cacheEntry),
		MaxEntries: 100000,
	}
}

// Get returns the cached answer for (name, typ, class) if still fresh
// at virtual time now. The boolean reports a usable hit; the returned
// records have their TTLs reduced by the time already spent in cache.
func (c *RecordCache) Get(name dnswire.Name, typ dnswire.Type, class dnswire.Class, now time.Duration) (dnswire.RCode, []dnswire.RR, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := cacheKey{name.Key(), typ, class}
	e, ok := c.entries[key]
	if !ok || now >= e.expires {
		if ok {
			delete(c.entries, key)
		}
		c.misses++
		return 0, nil, false
	}
	c.hits++
	remaining := uint32((e.expires - now) / time.Second)
	out := make([]dnswire.RR, len(e.answers))
	copy(out, e.answers)
	for i := range out {
		out[i].TTL = remaining
	}
	if e.negative {
		return e.rcode, nil, true
	}
	return e.rcode, out, true
}

// PutPositive caches a successful answer. The entry lives for the
// minimum TTL across the RRset.
func (c *RecordCache) PutPositive(name dnswire.Name, typ dnswire.Type, class dnswire.Class, answers []dnswire.RR, now time.Duration) {
	if len(answers) == 0 {
		return
	}
	minTTL := answers[0].TTL
	for _, rr := range answers[1:] {
		if rr.TTL < minTTL {
			minTTL = rr.TTL
		}
	}
	c.put(cacheKey{name.Key(), typ, class}, cacheEntry{
		rcode:   dnswire.RCodeNoError,
		answers: append([]dnswire.RR(nil), answers...),
		expires: now + time.Duration(minTTL)*time.Second,
	})
}

// PutNegative caches an NXDOMAIN or NODATA for negTTL seconds (the SOA
// minimum per RFC 2308).
func (c *RecordCache) PutNegative(name dnswire.Name, typ dnswire.Type, class dnswire.Class, rcode dnswire.RCode, negTTL uint32, now time.Duration) {
	c.put(cacheKey{name.Key(), typ, class}, cacheEntry{
		rcode:    rcode,
		negative: true,
		expires:  now + time.Duration(negTTL)*time.Second,
	})
}

func (c *RecordCache) put(key cacheKey, e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.MaxEntries {
		c.evictSome()
	}
	c.entries[key] = e
}

// evictSome removes up to an eighth of the entries, preferring those
// that expire soonest found during one map walk.
func (c *RecordCache) evictSome() {
	target := c.MaxEntries / 8
	if target < 1 {
		target = 1
	}
	removed := 0
	for k := range c.entries {
		delete(c.entries, k)
		removed++
		if removed >= target {
			break
		}
	}
}

// Len returns the number of cached entries (fresh or expired-but-not-
// yet-collected).
func (c *RecordCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns hit and miss counts.
func (c *RecordCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
