package resolver

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"ritw/internal/dnswire"
)

// FuzzReferralChain drives the referral-chasing path with an
// adversarial authoritative whose every move — answer, crafted
// referral, dead end, NXNSAttack-style fan-out, drop — is chosen by
// the fuzzer. The invariants are the NXNSAttack defense contract: the
// engine terminates (no referral loop outlives the drain), the pending
// table empties, the client gets exactly one reply (answer or
// SERVFAIL), and the glueless fetches charged to the query never
// exceed the MaxFetch budget (or the hard safety cap when undefended).
//
// The checked-in corpus under testdata/fuzz/FuzzReferralChain seeds
// the interesting shapes: deep nested referrals, wide fan-outs beyond
// the budget, duplicate targets (dedup must make them free),
// unresolvable targets, and referrals answered only after timeouts.
func FuzzReferralChain(f *testing.F) {
	// answer, then a small referral fan-out, then answers
	f.Add([]byte{0, 1, 4, 0, 0, 0, 0}, uint8(0))
	// wide fan-out far beyond MaxFetch=2, all fetches then dropped
	f.Add([]byte{1, 40, 3, 3, 3, 3}, uint8(2))
	// nested referrals: each fetch answered by another referral
	f.Add([]byte{1, 3, 1, 3, 1, 3, 1, 3, 1, 3}, uint8(4))
	// duplicate + unresolvable targets interleaved with dead ends
	f.Add([]byte{1, 6, 2, 2, 1, 6, 0, 0}, uint8(3))
	// timeouts all the way down
	f.Add([]byte{3, 3, 3, 3, 3, 3, 3, 3}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, maxFetch uint8) {
		tr := &fakeTransport{}
		clk := &fakeClock{}
		evilZone := dnswire.MustParseName("evil.example")
		e := NewEngine(Config{
			Policy: NewPolicy(KindBINDLike),
			Infra:  NewInfraCache(10*time.Minute, DecayKeep),
			Cache:  NewRecordCache(),
			Zones: []ZoneServers{
				{Zone: testZone, Servers: []netip.Addr{srvA, srvB}},
				{Zone: evilZone, Servers: []netip.Addr{srvC}},
			},
			Transport:  tr,
			Clock:      clk,
			RNG:        rand.New(rand.NewSource(1)),
			Timeout:    300 * time.Millisecond,
			MaxRetries: 1,
			MaxFetch:   int(maxFetch),
		})

		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}

		qname, err := evilZone.Child("trigger")
		if err != nil {
			t.Fatal(err)
		}
		wire, err := dnswire.NewQuery(1, qname, dnswire.TypeA).Pack()
		if err != nil {
			t.Fatal(err)
		}
		e.HandlePacket(clientAddr, wire)

		// referral builds a glueless NS referral for the packed upstream
		// query: fanout targets, mostly fresh nonces under testZone, with
		// the occasional repeat (dedup makes it free), nested evil-zone
		// target (spawns into the same root), and unresolvable name (a
		// dead end the engine must not fetch).
		nonce := 0
		referral := func(upstream []byte, fanout int) []byte {
			q, err := dnswire.Unpack(upstream)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := dnswire.NewResponse(q)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < fanout; j++ {
				var host dnswire.Name
				switch next() % 8 {
				case 6: // repeat of a prior target
					host, err = testZone.Child("n0")
				case 7:
					switch j % 3 {
					case 0: // nested referral bait under the evil zone
						host, err = evilZone.Child(fmt.Sprintf("d%d", nonce))
					default: // target in a zone the engine cannot resolve
						host, err = dnswire.MustParseName("nowhere.invalid").Child(fmt.Sprintf("x%d", nonce))
					}
					nonce++
				default: // fresh cache-busting nonce under the victim zone
					host, err = testZone.Child(fmt.Sprintf("n%d", nonce))
					nonce++
				}
				if err != nil {
					t.Fatal(err)
				}
				resp.Authority = append(resp.Authority, dnswire.RR{
					Name: q.Questions[0].Name, Class: dnswire.ClassINET, TTL: 300,
					Data: dnswire.NS{Host: host},
				})
			}
			wire, err := resp.Pack()
			if err != nil {
				t.Fatal(err)
			}
			return wire
		}

		clientReplies := 0
		respond := func(p sentPacket, op byte) {
			switch op % 4 {
			case 0: // honest answer
				e.HandlePacket(p.dst, authAnswerRaw(t, p.payload, "v"))
			case 1: // crafted referral, fanout from the next byte
				e.HandlePacket(p.dst, referral(p.payload, int(next())%48+1))
			case 2: // answerless NoError without NS: plain NODATA
				q, err := dnswire.Unpack(p.payload)
				if err != nil {
					t.Fatal(err)
				}
				resp, err := dnswire.NewResponse(q)
				if err != nil {
					t.Fatal(err)
				}
				wire, err := resp.Pack()
				if err != nil {
					t.Fatal(err)
				}
				e.HandlePacket(p.dst, wire)
			case 3: // drop: the retry/timeout path resolves it
			}
		}

		// Adversarial phase: every in-flight upstream query gets a
		// fuzzer-chosen fate; time advances so drops cost timeouts, not
		// livelock. The round bound is generous — a terminating engine
		// settles in a handful of rounds per budget unit — so hitting it
		// with work still pending means the chase loops.
		for round := 0; round < 400; round++ {
			pkts := tr.take()
			if len(pkts) == 0 {
				e.mu.Lock()
				left := len(e.pending)
				e.mu.Unlock()
				if left == 0 {
					break
				}
			}
			for _, p := range pkts {
				if p.dst == clientAddr {
					clientReplies++
					continue
				}
				respond(p, next())
			}
			clk.advance(200 * time.Millisecond)
		}

		// Drain phase: answer everything honestly and let every timer
		// fire. A referral chain that can outlive this is unbounded.
		for round := 0; round < 30; round++ {
			for _, p := range tr.take() {
				if p.dst == clientAddr {
					clientReplies++
					continue
				}
				e.HandlePacket(p.dst, authAnswerRaw(t, p.payload, "v"))
			}
			clk.advance(time.Second)
		}
		for _, p := range tr.take() {
			if p.dst == clientAddr {
				clientReplies++
			}
		}

		e.mu.Lock()
		pendingLeft := len(e.pending)
		e.mu.Unlock()
		if pendingLeft != 0 {
			t.Fatalf("pending table did not drain: %d left (referral chase loops?)", pendingLeft)
		}
		if clientReplies != 1 {
			t.Fatalf("client got %d replies for 1 query", clientReplies)
		}
		budget := int(maxFetch)
		if budget <= 0 {
			budget = maxReferralFetch
		}
		if st := e.Stats(); st.ReferralFetches > budget {
			t.Fatalf("charged %d glueless fetches for one client query, budget %d", st.ReferralFetches, budget)
		}
	})
}
