package resolver

import (
	"fmt"
	"net/netip"
	"testing"
)

// The paper's Figure-4 preference thresholds (mirrored from
// internal/analysis: a VP prefers a site weakly when it receives 60%
// of the queries and strongly above 90%). The resolver package cannot
// import analysis (it sits below measure), so the property sweep pins
// the numeric values here.
const (
	propWeak   = 0.60
	propStrong = 0.90
)

// prefClass is the expected preference classification for one policy
// kind at one RTT gap: how the per-VP top-server share compares to the
// paper's weak/strong thresholds.
type prefClass int

const (
	classAny    prefClass = iota // boundary region: no assertion
	classNone                    // top share < 60%: no preference
	classWeak                    // 60% <= top share < 90%
	classStrong                  // top share >= 90%
	classAtLeastWeak
)

// expectedClass documents where each policy's preference crosses the
// paper thresholds as the two-server RTT gap grows. Boundary gaps
// (where the expected share sits within noise of a threshold) assert
// nothing; everywhere else the classification is required at every
// seed.
func expectedClass(kind PolicyKind, gap float64) prefClass {
	switch kind {
	case KindUniform, KindRoundRobin:
		// A 50/50 split at any gap: never even weak preference.
		return classNone
	case KindSticky:
		// The pin takes ~100% regardless of latency.
		return classStrong
	case KindProbeTopN:
		// The EWMA leader takes everything but the hourly probe.
		if gap >= 2 {
			return classStrong
		}
		return classAny
	case KindWeightedRTT:
		// Inverse-RTT weighting: top share ≈ gap/(1+gap), so the strong
		// threshold is crossed only near ~10x gaps (9/10 = 0.90).
		switch {
		case gap <= 1.2:
			return classNone
		case gap >= 2 && gap <= 5:
			return classWeak
		case gap >= 15:
			return classStrong
		default:
			return classAny
		}
	case KindBINDLike:
		// Lowest-SRTT-wins with decay: at least weak from small gaps,
		// strong once the decay cannot erode the gap between retries.
		switch {
		case gap >= 15:
			return classStrong
		case gap >= 2:
			return classAtLeastWeak
		default:
			return classAny
		}
	case KindUnboundLike:
		// Uniform within the 400ms band: no preference until the slow
		// server falls out of the band (40ms·gap > 40+400 ⇒ gap > 11),
		// then total preference.
		switch {
		case gap <= 8:
			return classNone
		case gap >= 15:
			return classStrong
		default:
			return classAny
		}
	}
	return classAny
}

func classify(share float64) prefClass {
	switch {
	case share >= propStrong:
		return classStrong
	case share >= propWeak:
		return classWeak
	default:
		return classNone
	}
}

// TestPolicyPreferenceSweep is the property sweep behind the fleet-mix
// calibration: every policy kind, driven with response feedback over
// seeded two-server RTT gaps from 1x to 20x, must cross the paper's
// weak/strong preference thresholds exactly where its algorithm says
// it should — WeightedRTT turns strong only near ~10x gaps, Uniform
// and RoundRobin never reach even weak preference, Sticky and
// ProbeTopN are strong almost everywhere, and UnboundLike snaps from
// none to strong when the slow server leaves the selection band.
func TestPolicyPreferenceSweep(t *testing.T) {
	t.Parallel()
	const n = 2000
	const baseRTT = 40.0
	gaps := []float64{1, 2, 3, 5, 8, 15, 20}
	servers := []netip.Addr{srvA, srvB}
	for _, kind := range Kinds() {
		for _, gap := range gaps {
			want := expectedClass(kind, gap)
			if want == classAny {
				continue
			}
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/gap%gx/seed%d", kind, gap, seed)
				counts := tallyFB(NewPolicy(kind), servers,
					map[netip.Addr]float64{srvA: baseRTT, srvB: baseRTT * gap},
					n, seed)
				top := counts[srvA]
				if counts[srvB] > top {
					top = counts[srvB]
				}
				share := float64(top) / n
				got := classify(share)
				ok := got == want ||
					(want == classAtLeastWeak && got != classNone)
				if !ok {
					t.Errorf("%s: top share %.3f classified %v, want %v (counts %v)",
						name, share, got, want, counts)
				}
			}
		}
	}
}

// TestWeightedRTTStrongOnlyNearTenfold pins the headline crossing from
// the sweep explicitly: WeightedRTT preference is below strong at a 5x
// gap and above it at a 15x gap, so the strong threshold is crossed in
// the ~10x region the paper's 2C combination probes (FRA ~40ms vs SYD
// ~355ms ≈ 9x).
func TestWeightedRTTStrongOnlyNearTenfold(t *testing.T) {
	t.Parallel()
	const n = 4000
	servers := []netip.Addr{srvA, srvB}
	shareAt := func(gap float64, seed int64) float64 {
		counts := tallyFB(NewPolicy(KindWeightedRTT), servers,
			map[netip.Addr]float64{srvA: 40, srvB: 40 * gap}, n, seed)
		top := counts[srvA]
		if counts[srvB] > top {
			top = counts[srvB]
		}
		return float64(top) / n
	}
	for seed := int64(1); seed <= 3; seed++ {
		below := shareAt(5, seed)
		above := shareAt(15, seed)
		if below >= propStrong {
			t.Errorf("seed %d: 5x gap share %.3f already strong", seed, below)
		}
		if above < propStrong {
			t.Errorf("seed %d: 15x gap share %.3f not strong", seed, above)
		}
		if above <= below {
			t.Errorf("seed %d: preference did not sharpen with the gap: %.3f -> %.3f",
				seed, below, above)
		}
	}
}
