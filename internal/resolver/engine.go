package resolver

import (
	"math/bits"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/obs"
)

// Transport sends a datagram toward dst. Inbound datagrams are pushed
// into the engine via HandlePacket by whichever loop owns the socket
// or simulated host.
type Transport interface {
	Send(dst netip.Addr, payload []byte)
}

// Clock abstracts virtual versus wall time so the same engine runs in
// the simulator and on real sockets.
type Clock interface {
	// Now returns the time since an arbitrary epoch.
	Now() time.Duration
	// AfterFunc schedules fn after d. Implementations may run fn on
	// any goroutine; the engine serializes internally.
	AfterFunc(d time.Duration, fn func())
}

// RealClock is a Clock over the wall clock for socket deployments.
type RealClock struct {
	base time.Time
	once sync.Once
}

// Now implements Clock.
func (c *RealClock) Now() time.Duration {
	c.once.Do(func() { c.base = time.Now() })
	return time.Since(c.base)
}

// AfterFunc implements Clock.
func (c *RealClock) AfterFunc(d time.Duration, fn func()) {
	time.AfterFunc(d, fn)
}

// ZoneServers configures the authoritative server set for a zone: the
// resolver's equivalent of glue/hints. The engine picks the longest
// matching suffix for each query, which models the terminal step of
// iterative resolution — the step whose server-selection behaviour the
// paper studies.
type ZoneServers struct {
	Zone    dnswire.Name
	Servers []netip.Addr
}

// Config assembles an Engine.
type Config struct {
	// Policy selects among a zone's authoritative servers. Required.
	Policy Policy
	// Infra is the latency cache. Required.
	Infra *InfraCache
	// Cache is the record cache; nil disables answer caching.
	Cache *RecordCache
	// Zones maps query names to authoritative server sets. Required.
	Zones []ZoneServers
	// Transport sends packets. Required.
	Transport Transport
	// Clock provides time. Required.
	Clock Clock
	// RNG drives the policy's randomness. Required.
	RNG *rand.Rand
	// Timeout is the per-attempt upstream timeout (default 800ms).
	Timeout time.Duration
	// MaxRetries bounds upstream attempts per client query (default 3).
	MaxRetries int
	// MaxFetch caps the glueless NS-target fetches a single client
	// query may spawn while chasing referrals — the NXNSAttack
	// "MaxFetch" defense. 0 means undefended: only the hard safety cap
	// (maxReferralFetch) applies.
	MaxFetch int
	// DisableNegCache turns off RFC 2308 negative caching while
	// keeping positive caching, for defense-matrix contrasts.
	DisableNegCache bool
	// Singleflight coalesces identical in-flight client questions onto
	// one upstream transaction (the secDNS recursive's dedup): while a
	// question is being resolved, duplicate client queries wait for the
	// leader's answer instead of going upstream themselves. Off by
	// default — coalescing changes upstream query counts, so it is a
	// modelled fleet behaviour, not a transparent optimization.
	Singleflight bool
	// QnameMinimize resolves client questions with the RFC 9156 label
	// walk (see MinimizationSteps): intermediate steps reveal one label
	// past the zone cut per upstream query before the full name is
	// sent. NXDOMAIN on an intermediate step short-circuits (RFC 8020).
	// Off by default for the same reason as Singleflight.
	QnameMinimize bool
	// Metrics, if set, registers the engine's counters there. Several
	// engines may share one registry: the counters are additive, so the
	// registry then reports population-wide totals.
	Metrics *obs.Registry
	// Trace, if set, observes completed client queries. The hook is
	// called under the engine's serialization — see obs.TraceHook.
	Trace obs.TraceHook
}

// Stats counts engine activity.
type Stats struct {
	ClientQueries   int
	CacheHits       int
	UpstreamQueries int
	UpstreamAnswers int
	Timeouts        int
	ServFails       int
	// ErrorFailovers counts upstream attempts abandoned because the
	// server returned SERVFAIL/REFUSED and another server was tried.
	ErrorFailovers int
	// HoldDownSkips counts servers excluded from selection because
	// they were inside a backoff hold-down window.
	HoldDownSkips int
	// NegCacheHits counts cache hits served from negative entries
	// (RFC 2308): the water-torture absorption path.
	NegCacheHits int
	// ReferralFetches counts glueless NS-target fetches spawned while
	// chasing referrals — the NXNSAttack amplification vector.
	ReferralFetches int
	// FetchExhausted counts queries whose referral chase hit the fetch
	// budget (MaxFetch or the hard safety cap).
	FetchExhausted int
	// SingleflightLeaders counts client queries that went upstream as
	// the singleflight leader for their question (only ever non-zero
	// with Config.Singleflight on).
	SingleflightLeaders int
	// SingleflightHits counts client queries coalesced onto an
	// in-flight leader instead of going upstream.
	SingleflightHits int
	// MinimizeSteps counts intermediate qname-minimization queries sent
	// upstream (the full-name query is not counted).
	MinimizeSteps int
}

// engineMetrics caches the obs counters so the serving path touches
// only atomics (all fields stay nil — a no-op — without a registry).
type engineMetrics struct {
	clientQueries *obs.Counter
	cacheHits     *obs.Counter
	upstream      *obs.Counter
	answers       *obs.Counter
	timeouts      *obs.Counter
	servfails     *obs.Counter
	failovers     *obs.Counter
	holdSkips     *obs.Counter
	negHits       *obs.Counter
	refFetches    *obs.Counter
	refExhausted  *obs.Counter
	sfLeaders     *obs.Counter
	sfHits        *obs.Counter
	qminSteps     *obs.Counter
}

func newEngineMetrics(r *obs.Registry) engineMetrics {
	return engineMetrics{
		clientQueries: r.Counter("resolver_client_queries_total"),
		cacheHits:     r.Counter("resolver_cache_hits_total"),
		upstream:      r.Counter("resolver_upstream_queries_total"),
		answers:       r.Counter("resolver_upstream_answers_total"),
		timeouts:      r.Counter("resolver_timeouts_total"),
		servfails:     r.Counter("resolver_servfail_total"),
		failovers:     r.Counter("resolver_error_failovers_total"),
		holdSkips:     r.Counter("resolver_holddown_skips_total"),
		negHits:       r.Counter("resolver_negcache_hits_total"),
		refFetches:    r.Counter("attacks_referral_fetches_total"),
		refExhausted:  r.Counter("attacks_fetch_budget_exhausted_total"),
		sfLeaders:     r.Counter("resolver_singleflight_leaders_total"),
		sfHits:        r.Counter("resolver_singleflight_hits_total"),
		qminSteps:     r.Counter("resolver_qmin_steps_total"),
	}
}

// Engine is the recursive resolver: it accepts client queries, answers
// from cache when possible, otherwise selects an authoritative server
// with its policy, tracks the measured RTT in the infrastructure
// cache, retries on timeout, and responds to the client.
type Engine struct {
	mu      sync.Mutex
	cfg     Config
	pending map[uint16]*pendingQuery
	nextID  uint16
	stats   Stats
	m       engineMetrics

	// sf maps in-flight client questions to their singleflight leader
	// (nil unless Config.Singleflight).
	sf map[sfKey]*pendingQuery

	// zoneIDs holds each zone's server list pre-interned in the infra
	// cache (parallel to cfg.Zones), so the per-query path works with
	// dense ids instead of address-keyed map lookups.
	zoneIDs [][]ServerID
	// Scratch buffers for candidate filtering in sendUpstreamLocked,
	// reused across queries under mu. Safe because Policy.Select does
	// not retain the candidate slice.
	idxA, idxB []int32
	selScratch []netip.Addr
}

// pendingQuery is an in-flight upstream transaction.
type pendingQuery struct {
	clientAddr netip.Addr
	clientMsg  *dnswire.Message
	question   dnswire.Question
	servers    []netip.Addr
	serverIDs  []ServerID
	// triedMask records which of servers (by index) this query already
	// tried; triedMap is the spill for indices past 64 and for a
	// policy that returns an address outside the candidate list.
	triedMask  uint64
	triedMap   map[netip.Addr]bool
	upstream   netip.Addr
	upstreamID ServerID
	startedAt  time.Duration
	sentAt     time.Duration
	attempts   int
	failovers  int
	done       bool

	// Referral-chase bookkeeping. A client query whose upstream answer
	// is a referral becomes the *root* of a chase: each glueless NS
	// target spawns a child pendingQuery (root set, no client to reply
	// to), and the root replies to its client only after every child
	// resolves. The budget lives on the root, so nested referrals —
	// the NXNSAttack loop — are charged to the one client query that
	// started them and terminate deterministically.
	root    *pendingQuery   // non-nil on chase children
	kids    int             // outstanding children (root only)
	fetches int             // NS-target fetches charged (root only)
	fetched map[string]bool // NS targets already handled (root only)

	// Singleflight bookkeeping: a leader replies to every coalesced
	// follower when it completes.
	sfLeader  bool
	sfKey     sfKey
	followers []sfFollower

	// Qname-minimization walk (RFC 9156): minSteps[minIdx] is the name
	// currently in flight; the final step is the full question. nil
	// when minimization is off or the walk is a single step.
	minSteps []dnswire.Name
	minIdx   int
}

// sfKey identifies a client question for singleflight coalescing.
type sfKey struct {
	name  string
	qtype dnswire.Type
	class dnswire.Class
}

// sfFollower is one coalesced duplicate client query awaiting the
// singleflight leader's answer.
type sfFollower struct {
	client netip.Addr
	msg    *dnswire.Message
}

// upQuestion returns the question currently going upstream: the active
// minimization step, or the client question itself.
func (pq *pendingQuery) upQuestion() dnswire.Question {
	if pq.minSteps != nil && pq.minIdx < len(pq.minSteps)-1 {
		// Intermediate steps probe with QTYPE=A per RFC 9156 §2.3:
		// most compatible with servers that mishandle rare qtypes.
		return dnswire.Question{Name: pq.minSteps[pq.minIdx], Type: dnswire.TypeA, Class: dnswire.ClassINET}
	}
	return pq.question
}

// maxReferralFetch is the hard safety cap on NS-target fetches per
// client query when no MaxFetch defense is configured. It bounds the
// undefended engine the way real pre-patch resolvers were bounded by
// message size — large enough to exhibit paper-class amplification,
// small enough that a crafted referral chain cannot run away.
const maxReferralFetch = 64

func (pq *pendingQuery) triedCount() int {
	return bits.OnesCount64(pq.triedMask) + len(pq.triedMap)
}

func (pq *pendingQuery) hasTried(i int) bool {
	if i < 64 {
		return pq.triedMask&(1<<uint(i)) != 0
	}
	return pq.triedMap[pq.servers[i]]
}

func (pq *pendingQuery) markTried(i int) {
	if i < 64 {
		pq.triedMask |= 1 << uint(i)
		return
	}
	pq.markTriedAddr(pq.servers[i])
}

func (pq *pendingQuery) markTriedAddr(addr netip.Addr) {
	if pq.triedMap == nil {
		pq.triedMap = make(map[netip.Addr]bool)
	}
	pq.triedMap[addr] = true
}

// NewEngine validates cfg and builds an engine.
func NewEngine(cfg Config) *Engine {
	if cfg.Policy == nil || cfg.Infra == nil || cfg.Transport == nil || cfg.Clock == nil || cfg.RNG == nil {
		panic("resolver: incomplete config")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 800 * time.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	// Intern every configured server once, up front: queries then carry
	// dense ids and the hot path never hashes an address. Interning
	// alone does not create infra-cache state (see InfraCache.IDFor).
	zoneIDs := make([][]ServerID, len(cfg.Zones))
	for zi, zs := range cfg.Zones {
		ids := make([]ServerID, len(zs.Servers))
		for i, s := range zs.Servers {
			ids[i] = cfg.Infra.IDFor(s)
		}
		zoneIDs[zi] = ids
	}
	e := &Engine{
		cfg:     cfg,
		pending: make(map[uint16]*pendingQuery),
		nextID:  uint16(cfg.RNG.Intn(1 << 16)),
		m:       newEngineMetrics(cfg.Metrics),
		zoneIDs: zoneIDs,
	}
	if cfg.Singleflight {
		e.sf = make(map[sfKey]*pendingQuery)
	}
	return e
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Infra exposes the infrastructure cache (analyses read SRTTs off it).
func (e *Engine) Infra() *InfraCache { return e.cfg.Infra }

// Policy exposes the configured selection policy.
func (e *Engine) Policy() Policy { return e.cfg.Policy }

// zoneFor returns the index of the configured zone that is the longest
// suffix of qname, or -1.
func (e *Engine) zoneFor(qname dnswire.Name) int {
	best, bestIdx := -1, -1
	for i, zs := range e.cfg.Zones {
		if qname.IsSubdomainOf(zs.Zone) && zs.Zone.NumLabels() > best {
			best = zs.Zone.NumLabels()
			bestIdx = i
		}
	}
	return bestIdx
}

// serversFor returns the configured server set whose zone is the
// longest suffix of qname.
func (e *Engine) serversFor(qname dnswire.Name) []netip.Addr {
	if i := e.zoneFor(qname); i >= 0 {
		return e.cfg.Zones[i].Servers
	}
	return nil
}

// HandlePacket processes one datagram received by the resolver, from
// either a client (query) or an authoritative server (response).
func (e *Engine) HandlePacket(src netip.Addr, payload []byte) {
	msg, err := dnswire.Unpack(payload)
	if err != nil {
		return // garbage in, nothing out — like real UDP services
	}
	if msg.Response {
		e.handleUpstreamResponse(src, msg)
	} else {
		e.handleClientQuery(src, msg)
	}
}

func (e *Engine) handleClientQuery(client netip.Addr, q *dnswire.Message) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.ClientQueries++
	e.m.clientQueries.Inc()
	question, ok := q.Question()
	if !ok {
		e.replyRCode(client, q, dnswire.RCodeFormErr)
		return
	}
	if question.Class == dnswire.ClassCHAOS {
		// A recursive answers CHAOS identity queries itself — exactly
		// why the paper uses Internet-class TXT instead.
		e.traceLocal(client, question, obs.OutcomeLocal, dnswire.RCodeNoError)
		e.replyChaos(client, q, question)
		return
	}
	now := e.cfg.Clock.Now()
	if e.cfg.Cache != nil {
		if rcode, answers, hit := e.cfg.Cache.Get(question.Name, question.Type, question.Class, now); hit {
			e.stats.CacheHits++
			e.m.cacheHits.Inc()
			if len(answers) == 0 {
				// Positive entries always carry records, so an empty
				// hit is an RFC 2308 negative entry doing its job.
				e.stats.NegCacheHits++
				e.m.negHits.Inc()
			}
			e.traceLocal(client, question, obs.OutcomeCacheHit, rcode)
			e.replyAnswer(client, q, rcode, answers)
			return
		}
	}
	zone := e.zoneFor(question.Name)
	if zone < 0 || len(e.cfg.Zones[zone].Servers) == 0 {
		e.stats.ServFails++
		e.m.servfails.Inc()
		e.traceLocal(client, question, obs.OutcomeServFail, dnswire.RCodeServFail)
		e.replyRCode(client, q, dnswire.RCodeServFail)
		return
	}
	if e.cfg.Singleflight {
		key := sfKey{question.Name.Key(), question.Type, question.Class}
		if leader, ok := e.sf[key]; ok && !leader.done {
			// Identical question already in flight: wait for its answer
			// instead of spending another upstream transaction.
			leader.followers = append(leader.followers, sfFollower{client, q})
			e.stats.SingleflightHits++
			e.m.sfHits.Inc()
			return
		}
	}
	pq := &pendingQuery{
		clientAddr: client,
		clientMsg:  q,
		question:   question,
		servers:    e.cfg.Zones[zone].Servers,
		serverIDs:  e.zoneIDs[zone],
		startedAt:  now,
	}
	if e.cfg.Singleflight {
		pq.sfLeader = true
		pq.sfKey = sfKey{question.Name.Key(), question.Type, question.Class}
		e.sf[pq.sfKey] = pq
		e.stats.SingleflightLeaders++
		e.m.sfLeaders.Inc()
	}
	if e.cfg.QnameMinimize {
		if steps := MinimizationSteps(e.cfg.Zones[zone].Zone, question.Name, 0); len(steps) > 1 {
			pq.minSteps = steps
		}
	}
	e.sendUpstreamLocked(pq)
}

// sendUpstreamLocked selects a server and dispatches the query.
// Callers hold e.mu. Candidate filtering runs on dense indices into
// pq.servers with engine-owned scratch buffers: no per-query
// allocation, no address hashing.
func (e *Engine) sendUpstreamLocked(pq *pendingQuery) {
	now := e.cfg.Clock.Now()
	n := len(pq.servers)
	// Prefer servers outside a hold-down window. The filter is advisory:
	// if every server is held down, keep the full list — a query must
	// always have somewhere to go, and the occasional probe through a
	// hold-down is also how a recovered server gets rediscovered.
	idx := e.idxA[:0]
	for i := 0; i < n; i++ {
		if e.cfg.Infra.UsableID(pq.serverIDs[i], now) {
			idx = append(idx, int32(i))
		}
	}
	if len(idx) == 0 {
		for i := 0; i < n; i++ {
			idx = append(idx, int32(i))
		}
	} else if len(idx) < n {
		e.stats.HoldDownSkips += n - len(idx)
		e.m.holdSkips.Add(int64(n - len(idx)))
	}
	e.idxA = idx
	// After a timeout, prefer servers not yet tried for this query.
	if pq.triedCount() > 0 {
		fresh := e.idxB[:0]
		for _, i := range idx {
			if !pq.hasTried(int(i)) {
				fresh = append(fresh, i)
			}
		}
		e.idxB = fresh
		if len(fresh) > 0 {
			idx = fresh
		}
	}
	sel := e.selScratch[:0]
	for _, i := range idx {
		sel = append(sel, pq.servers[i])
	}
	e.selScratch = sel
	server := e.cfg.Policy.Select(now, sel, e.cfg.Infra, e.cfg.RNG)
	pq.upstream = server
	chosen := -1
	for j, a := range sel {
		if a == server {
			chosen = int(idx[j])
			break
		}
	}
	if chosen >= 0 {
		pq.upstreamID = pq.serverIDs[chosen]
		pq.markTried(chosen)
	} else {
		// Defensive: a policy returned an address outside the candidate
		// list. Track it by address so retry preference still works.
		pq.upstreamID = e.cfg.Infra.IDFor(server)
		pq.markTriedAddr(server)
	}
	pq.sentAt = now
	pq.attempts++

	id := e.allocateIDLocked()
	e.pending[id] = pq

	upQ := pq.upQuestion()
	if pq.minSteps != nil && pq.minIdx < len(pq.minSteps)-1 && pq.attempts == 1 {
		// First attempt of an intermediate minimization step.
		e.stats.MinimizeSteps++
		e.m.qminSteps.Inc()
	}
	upq := dnswire.NewQuery(id, upQ.Name, upQ.Type)
	upq.RecursionDesired = false
	upq.SetEDNS0(dnswire.DefaultEDNSSize, false)
	wire, err := upq.Pack()
	if err != nil {
		delete(e.pending, id)
		e.failLocked(pq)
		return
	}
	e.stats.UpstreamQueries++
	e.m.upstream.Inc()
	e.cfg.Infra.NoteQueryID(pq.upstreamID)
	e.cfg.Transport.Send(server, wire)

	// Pin the timer to this attempt: an error-rcode failover can leave
	// this timer outstanding while pq is re-registered under a fresh
	// ID, and the attempt count distinguishes the two even if the ID
	// allocator were ever to hand back the same ID.
	attempt := pq.attempts
	e.cfg.Clock.AfterFunc(e.cfg.Timeout, func() {
		e.onTimeout(id, pq, attempt)
	})
}

func (e *Engine) allocateIDLocked() uint16 {
	for {
		e.nextID++
		if _, busy := e.pending[e.nextID]; !busy {
			return e.nextID
		}
	}
}

func (e *Engine) onTimeout(id uint16, pq *pendingQuery, attempt int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	current, ok := e.pending[id]
	if !ok || current != pq || pq.done || pq.attempts != attempt {
		return // already answered or superseded by a failover
	}
	delete(e.pending, id)
	e.stats.Timeouts++
	e.m.timeouts.Inc()
	e.cfg.Infra.TimeoutID(pq.upstreamID, e.cfg.Clock.Now())
	if pq.attempts >= e.cfg.MaxRetries {
		e.failLocked(pq)
		return
	}
	e.sendUpstreamLocked(pq)
}

// failLocked terminates a pending query with SERVFAIL semantics: a
// client-facing query replies to its client; a chase child silently
// settles with its root. Callers hold e.mu.
func (e *Engine) failLocked(pq *pendingQuery) {
	pq.done = true
	if pq.root != nil {
		e.childDoneLocked(pq.root)
		return
	}
	e.stats.ServFails++
	e.m.servfails.Inc()
	e.traceDone(pq, obs.OutcomeServFail, dnswire.RCodeServFail)
	e.replyRCode(pq.clientAddr, pq.clientMsg, dnswire.RCodeServFail)
	e.settleSingleflightLocked(pq, dnswire.RCodeServFail, nil)
}

// settleSingleflightLocked removes a completed leader from the
// singleflight table and replies to every coalesced follower with the
// leader's outcome. Callers hold e.mu.
func (e *Engine) settleSingleflightLocked(pq *pendingQuery, rcode dnswire.RCode, answers []dnswire.RR) {
	if !pq.sfLeader {
		return
	}
	if e.sf[pq.sfKey] == pq {
		delete(e.sf, pq.sfKey)
	}
	for _, f := range pq.followers {
		e.replyAnswer(f.client, f.msg, rcode, answers)
	}
	pq.followers = nil
}

// childDoneLocked settles one finished child against its root and
// completes the root once the last child resolves. The chase never
// yields a usable answer for the root's question — crafted glueless
// delegations are dead ends by construction — so the root's client
// sees SERVFAIL, exactly like a real resolver that burned its fetch
// budget on an NXNS referral. Callers hold e.mu.
func (e *Engine) childDoneLocked(root *pendingQuery) {
	root.kids--
	if root.kids == 0 && !root.done {
		e.failLocked(root)
	}
}

func (e *Engine) handleUpstreamResponse(src netip.Addr, resp *dnswire.Message) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pq, ok := e.pending[resp.ID]
	if !ok || pq.done {
		return
	}
	// Off-path responses with a guessed ID must not poison anything:
	// the source must match the server we actually queried.
	if src != pq.upstream {
		return
	}
	// The echoed question must match the upstream query too, or an
	// attacker who wins the ID guess could still have an unrelated
	// answer cached under the pending name. Upstream queries always go
	// out IN-class (dnswire.NewQuery), so that is what must come back.
	// Under qname minimization the question in flight is the current
	// step, not the client question.
	upQ := pq.upQuestion()
	if q, ok := resp.Question(); !ok || !q.Name.Equal(upQ.Name) ||
		q.Type != upQ.Type || q.Class != dnswire.ClassINET {
		return
	}
	delete(e.pending, resp.ID)

	now := e.cfg.Clock.Now()
	rttMs := float64(now-pq.sentAt) / float64(time.Millisecond)
	e.cfg.Infra.ObserveID(pq.upstreamID, rttMs, now)
	e.stats.UpstreamAnswers++
	e.m.answers.Inc()

	if resp.RCode == dnswire.RCodeServFail || resp.RCode == dnswire.RCodeRefused {
		// The server answered but could not serve. Real recursives
		// (BIND, Unbound) fail over to another authoritative rather
		// than relaying the error; only once every server is exhausted
		// (or the retry budget spent) does the client see SERVFAIL.
		if pq.attempts < e.cfg.MaxRetries && pq.triedCount() < len(pq.servers) {
			pq.failovers++
			e.stats.ErrorFailovers++
			e.m.failovers.Inc()
			e.sendUpstreamLocked(pq)
			return
		}
		e.failLocked(pq)
		return
	}

	if pq.minSteps != nil && pq.minIdx < len(pq.minSteps)-1 &&
		resp.RCode != dnswire.RCodeNXDomain {
		// An intermediate minimization step resolved (NoError, with or
		// without data): reveal the next label. Each step is its own
		// upstream transaction, so the retry budget and tried-set reset.
		// NXDOMAIN instead falls through to the final handling below —
		// nothing can exist under a name that does not exist (RFC
		// 8020), so the walk short-circuits with the client's answer.
		pq.minIdx++
		pq.attempts = 0
		pq.failovers = 0
		pq.triedMask = 0
		pq.triedMap = nil
		e.sendUpstreamLocked(pq)
		return
	}

	// A NoError response with no answers but NS records in the
	// authority section is a referral: chase the glueless targets
	// before answering. Benign NODATA responses carry only a SOA there
	// and fall through to negative caching.
	if resp.RCode == dnswire.RCodeNoError && len(resp.Answers) == 0 &&
		e.chaseReferralLocked(pq, resp, now) {
		return
	}
	pq.done = true

	if e.cfg.Cache != nil {
		switch {
		case resp.RCode == dnswire.RCodeNoError && len(resp.Answers) > 0:
			e.cfg.Cache.PutPositive(pq.question.Name, pq.question.Type, pq.question.Class, resp.Answers, now)
		case resp.RCode == dnswire.RCodeNXDomain || resp.RCode == dnswire.RCodeNoError:
			if !e.cfg.DisableNegCache {
				e.cfg.Cache.PutNegative(pq.question.Name, pq.question.Type, pq.question.Class,
					resp.RCode, negativeTTL(resp), now)
			}
		}
	}
	if pq.root != nil {
		// A chase child resolved (its answer, if any, is cached above);
		// settle it against the root instead of replying to a client.
		e.childDoneLocked(pq.root)
		return
	}
	e.traceDone(pq, obs.OutcomeAnswered, resp.RCode)
	e.replyAnswer(pq.clientAddr, pq.clientMsg, resp.RCode, resp.Answers)
	e.settleSingleflightLocked(pq, resp.RCode, resp.Answers)
}

// chaseReferralLocked inspects an answerless NoError response for NS
// records and, if present, fans out A-record fetches for the glueless
// targets. It returns false when the response carries no NS records
// (not a referral — the caller proceeds with normal NODATA handling).
//
// Termination is structural: targets are deduplicated per root, every
// fetch is charged to the root's budget (Config.MaxFetch, or the hard
// maxReferralFetch cap when undefended), and nested referrals spawn
// into the same root. A malicious referral chain can therefore cost at
// most budget upstream transactions, each itself bounded by
// MaxRetries, before the root's client gets SERVFAIL. Callers hold
// e.mu.
func (e *Engine) chaseReferralLocked(pq *pendingQuery, resp *dnswire.Message, now time.Duration) bool {
	hasNS := false
	for _, rr := range resp.Authority {
		if _, ok := rr.Data.(dnswire.NS); ok {
			hasNS = true
			break
		}
	}
	if !hasNS {
		return false
	}
	root := pq
	if pq.root != nil {
		root = pq.root
	}
	budget := e.cfg.MaxFetch
	if budget <= 0 {
		budget = maxReferralFetch
	}
	exhausted := false
	for _, rr := range resp.Authority {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok {
			continue
		}
		key := ns.Host.Key()
		if root.fetched[key] {
			continue
		}
		zone := e.zoneFor(ns.Host)
		if zone < 0 || len(e.cfg.Zones[zone].Servers) == 0 {
			continue // unresolvable target: a free dead end
		}
		if e.cfg.Cache != nil {
			if _, _, hit := e.cfg.Cache.Get(ns.Host, dnswire.TypeA, dnswire.ClassINET, now); hit {
				// A cached target costs no fetch — which is why only
				// cache-busting nonce targets achieve amplification.
				if root.fetched == nil {
					root.fetched = make(map[string]bool)
				}
				root.fetched[key] = true
				continue
			}
		}
		if root.fetches >= budget {
			exhausted = true
			break
		}
		if root.fetched == nil {
			root.fetched = make(map[string]bool)
		}
		root.fetched[key] = true
		root.fetches++
		e.stats.ReferralFetches++
		e.m.refFetches.Inc()
		child := &pendingQuery{
			question:  dnswire.Question{Name: ns.Host, Type: dnswire.TypeA, Class: dnswire.ClassINET},
			servers:   e.cfg.Zones[zone].Servers,
			serverIDs: e.zoneIDs[zone],
			startedAt: now,
			root:      root,
		}
		root.kids++
		e.sendUpstreamLocked(child)
	}
	if exhausted {
		e.stats.FetchExhausted++
		e.m.refExhausted.Inc()
	}
	if pq.root != nil {
		// The referral consumed a child: settle it (after any nested
		// spawns above, so the root cannot complete prematurely).
		pq.done = true
		e.childDoneLocked(pq.root)
	} else if root.kids == 0 {
		// Nothing fetchable at all (budget spent or all dead ends):
		// the client query fails right here.
		e.failLocked(root)
	}
	return true
}

// traceDone emits a trace for a query that went upstream. Callers hold
// e.mu.
func (e *Engine) traceDone(pq *pendingQuery, outcome obs.TraceOutcome, rcode dnswire.RCode) {
	if e.cfg.Trace == nil {
		return
	}
	e.cfg.Trace.TraceQuery(obs.QueryTrace{
		Client:    pq.clientAddr,
		QName:     pq.question.Name.Key(),
		QType:     uint16(pq.question.Type),
		Outcome:   outcome,
		RCode:     uint8(rcode),
		Server:    pq.upstream,
		Attempts:  pq.attempts,
		Failovers: pq.failovers,
		Duration:  e.cfg.Clock.Now() - pq.startedAt,
	})
}

// traceLocal emits a trace for a query answered without upstream
// traffic (cache hit, CHAOS, unservable zone). Callers hold e.mu.
func (e *Engine) traceLocal(client netip.Addr, question dnswire.Question, outcome obs.TraceOutcome, rcode dnswire.RCode) {
	if e.cfg.Trace == nil {
		return
	}
	e.cfg.Trace.TraceQuery(obs.QueryTrace{
		Client:  client,
		QName:   question.Name.Key(),
		QType:   uint16(question.Type),
		Outcome: outcome,
		RCode:   uint8(rcode),
	})
}

// negativeTTL extracts the RFC 2308 negative TTL from a response's SOA.
func negativeTTL(resp *dnswire.Message) uint32 {
	for _, rr := range resp.Authority {
		if soa, ok := rr.Data.(dnswire.SOA); ok {
			ttl := rr.TTL
			if soa.Minimum < ttl {
				ttl = soa.Minimum
			}
			return ttl
		}
	}
	return 60
}

// replyAnswer sends a final response to the client. Callers hold e.mu.
func (e *Engine) replyAnswer(client netip.Addr, q *dnswire.Message, rcode dnswire.RCode, answers []dnswire.RR) {
	resp, err := dnswire.NewResponse(q)
	if err != nil {
		// No question to echo (e.g. FORMERR on a malformed query):
		// still reply with a bare header so the client learns.
		resp = &dnswire.Message{Header: dnswire.Header{
			ID: q.ID, Response: true, Opcode: q.Opcode,
			RecursionDesired: q.RecursionDesired,
		}}
	}
	resp.RecursionAvailable = true
	resp.RCode = rcode
	resp.Answers = answers
	wire, err := resp.Pack()
	if err != nil {
		return
	}
	e.cfg.Transport.Send(client, wire)
}

func (e *Engine) replyRCode(client netip.Addr, q *dnswire.Message, rcode dnswire.RCode) {
	e.replyAnswer(client, q, rcode, nil)
}

// replyChaos answers CHAOS-class identity queries locally.
func (e *Engine) replyChaos(client netip.Addr, q *dnswire.Message, question dnswire.Question) {
	resp, err := dnswire.NewResponse(q)
	if err != nil {
		return
	}
	resp.RecursionAvailable = true
	name := question.Name.Key()
	if question.Type == dnswire.TypeTXT && (name == "hostname.bind." || name == "id.server.") {
		resp.Answers = []dnswire.RR{{
			Name:  question.Name,
			Class: dnswire.ClassCHAOS,
			TTL:   0,
			Data:  dnswire.TXT{Strings: []string{"resolver/" + e.cfg.Policy.Name()}},
		}}
	} else {
		resp.RCode = dnswire.RCodeRefused
	}
	wire, err := resp.Pack()
	if err != nil {
		return
	}
	e.cfg.Transport.Send(client, wire)
}
