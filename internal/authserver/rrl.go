package authserver

import (
	"net/netip"
	"time"

	"ritw/internal/dnswire"
)

// RRLConfig enables response rate limiting, the NSD/BIND defence
// against DNS amplification floods: per source address, responses
// above the configured rate are dropped, except that every SlipRatio-th
// limited response goes out truncated (TC set) so legitimate clients
// behind a spoofed address can fall back to TCP.
type RRLConfig struct {
	// RatePerSec is the sustained responses-per-second allowance per
	// source address.
	RatePerSec float64
	// Burst is the bucket depth (instantaneous allowance). Defaults to
	// 2×RatePerSec.
	Burst float64
	// SlipRatio sends every n-th limited response as a truncated
	// reply instead of dropping it (0 disables slip; NSD defaults 2).
	SlipRatio int
	// MaxSources bounds the tracking table (default 100000).
	MaxSources int
}

// rrlState is the per-engine limiter.
type rrlState struct {
	cfg     RRLConfig
	buckets map[netip.Addr]*rrlBucket
}

type rrlBucket struct {
	tokens float64
	last   time.Duration
	// slip counts limited responses for this source so every
	// SlipRatio-th one goes out truncated. It must be per source: a
	// shared counter lets one flooded source absorb the slip cadence
	// and starve every other limited source of its TC fallback signal.
	slip int
}

func newRRL(cfg RRLConfig) *rrlState {
	if cfg.Burst <= 0 {
		cfg.Burst = 2 * cfg.RatePerSec
	}
	if cfg.MaxSources <= 0 {
		cfg.MaxSources = 100000
	}
	return &rrlState{
		cfg:     cfg,
		buckets: make(map[netip.Addr]*rrlBucket),
	}
}

// rrlAction is the limiter's verdict for one response.
type rrlAction uint8

const (
	rrlSend rrlAction = iota
	rrlDrop
	rrlSlip
)

// check charges one response to src at time now and returns the
// verdict. Called with the engine lock held.
func (r *rrlState) check(src netip.Addr, now time.Duration) rrlAction {
	b, ok := r.buckets[src]
	if !ok {
		if len(r.buckets) >= r.cfg.MaxSources {
			// Table full: age out by resetting. Crude but bounded, and
			// an attack that fills the table resets itself too.
			r.buckets = make(map[netip.Addr]*rrlBucket)
		}
		b = &rrlBucket{tokens: r.cfg.Burst, last: now}
		r.buckets[src] = b
	}
	elapsed := now - b.last
	if elapsed > 0 {
		b.tokens += r.cfg.RatePerSec * elapsed.Seconds()
		if b.tokens > r.cfg.Burst {
			b.tokens = r.cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return rrlSend
	}
	if r.cfg.SlipRatio > 0 {
		b.slip++
		if b.slip%r.cfg.SlipRatio == 0 {
			return rrlSlip
		}
	}
	return rrlDrop
}

// appendSlip appends the minimal truncated reply sent on slip to dst;
// dst is returned unchanged when the reply cannot be built.
func appendSlip(dst []byte, query *dnswire.Message) []byte {
	resp, err := dnswire.NewResponse(query)
	if err != nil {
		return dst
	}
	resp.Truncated = true
	out, err := resp.AppendPack(dst)
	if err != nil {
		return dst
	}
	return out
}
