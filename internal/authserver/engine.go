// Package authserver implements the authoritative DNS server used as
// the paper's measurement instrument (the role NSD 4.1.7 played on the
// AWS deployments). Each instance serves one or more zones, answers
// CHAOS identity queries with its site identity, and exposes per-query
// instrumentation so experiments can observe traffic from the
// authoritative side, as the paper does for its middlebox check.
//
// The core Engine is a pure request→response function, so the same
// code serves simulated datagrams (internal/netsim) and real UDP/TCP
// sockets (Server in this package, cmd/authd).
package authserver

import (
	"net/netip"
	"sync"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

// QueryInfo describes one handled query for instrumentation.
type QueryInfo struct {
	Src      netip.Addr
	Question dnswire.Question
	RCode    dnswire.RCode
}

// Stats aggregates server activity.
type Stats struct {
	Queries     int
	Responses   int
	ByType      map[dnswire.Type]int
	ByRCode     map[dnswire.RCode]int
	Chaos       int
	Dropped     int
	RateLimited int
}

// Config assembles an Engine.
type Config struct {
	// Zones this server is authoritative for.
	Zones []*zone.Zone
	// Identity is the site identity string answered for CHAOS
	// hostname.bind / id.server queries (e.g. "fra1.ourtestdomain.nl").
	Identity string
	// OnQuery, if set, observes every valid query (for measurement
	// capture at the authoritative side).
	OnQuery func(QueryInfo)
	// OnNotify, if set, receives RFC 1996 NOTIFY messages (a secondary
	// wires this to its refresh trigger). Without it, NOTIFY gets
	// NOTIMP like any other unsupported opcode.
	OnNotify func(origin dnswire.Name, src netip.Addr)
	// RRL enables response rate limiting. It requires Now.
	RRL *RRLConfig
	// Now supplies time for rate limiting (virtual in the simulator,
	// wall-clock in socket servers). Required when RRL is set.
	Now func() time.Duration
}

// Engine answers DNS queries authoritatively.
type Engine struct {
	mu    sync.Mutex
	cfg   Config
	rrl   *rrlState
	stats Stats
}

// NewEngine builds an authoritative engine. It panics if RRL is
// configured without a time source — a static misconfiguration.
func NewEngine(cfg Config) *Engine {
	e := &Engine{
		cfg: cfg,
		stats: Stats{
			ByType:  make(map[dnswire.Type]int),
			ByRCode: make(map[dnswire.RCode]int),
		},
	}
	if cfg.RRL != nil {
		if cfg.Now == nil {
			panic("authserver: RRL requires Config.Now")
		}
		e.rrl = newRRL(*cfg.RRL)
	}
	return e
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.ByType = make(map[dnswire.Type]int, len(e.stats.ByType))
	for k, v := range e.stats.ByType {
		st.ByType[k] = v
	}
	st.ByRCode = make(map[dnswire.RCode]int, len(e.stats.ByRCode))
	for k, v := range e.stats.ByRCode {
		st.ByRCode[k] = v
	}
	return st
}

// Identity returns the configured site identity.
func (e *Engine) Identity() string { return e.cfg.Identity }

// HandleQuery processes one wire-format query from src and returns the
// wire-format response, or nil when the input must be dropped
// (garbage, or a response packet — servers never answer responses).
// maxUDP is the size limit for the response (0 means the classic 512);
// responses that do not fit are truncated with TC set.
func (e *Engine) HandleQuery(src netip.Addr, payload []byte, maxUDP int) []byte {
	e.mu.Lock()
	defer e.mu.Unlock()

	query, err := dnswire.Unpack(payload)
	if err != nil || query.Response {
		e.stats.Dropped++
		return nil
	}
	e.stats.Queries++

	resp, err := dnswire.NewResponse(query)
	if err != nil {
		// No question: FORMERR with a bare header.
		e.stats.Dropped++
		bare := &dnswire.Message{Header: dnswire.Header{
			ID: query.ID, Response: true, Opcode: query.Opcode, RCode: dnswire.RCodeFormErr,
		}}
		wire, err := bare.Pack()
		if err != nil {
			return nil
		}
		return wire
	}
	q := resp.Questions[0]
	e.stats.ByType[q.Type]++

	// Respect the client's EDNS0 advertised size.
	if opt, ok := query.OPT(); ok {
		resp.SetEDNS0(dnswire.DefaultEDNSSize, false)
		if int(opt.UDPSize) > maxUDP {
			maxUDP = int(opt.UDPSize)
		}
	}
	if maxUDP <= 0 {
		maxUDP = dnswire.MaxUDPSize
	}

	switch {
	case query.Opcode == dnswire.OpcodeNotify && e.cfg.OnNotify != nil:
		// Acknowledge and hand off to the refresh trigger (RFC 1996).
		resp.Authoritative = true
		e.cfg.OnNotify(q.Name, src)
	case query.Opcode != dnswire.OpcodeQuery:
		resp.RCode = dnswire.RCodeNotImp
	case q.Class == dnswire.ClassCHAOS:
		e.answerChaos(resp, q)
	default:
		e.answerAuthoritative(resp, q)
	}

	e.stats.ByRCode[resp.RCode]++
	if e.cfg.OnQuery != nil {
		e.cfg.OnQuery(QueryInfo{Src: src, Question: q, RCode: resp.RCode})
	}

	if e.rrl != nil {
		switch e.rrl.check(src, e.cfg.Now()) {
		case rrlDrop:
			e.stats.RateLimited++
			return nil
		case rrlSlip:
			e.stats.RateLimited++
			if wire := slipResponse(query); wire != nil {
				e.stats.Responses++
				return wire
			}
			return nil
		}
	}

	wire, err := resp.Pack()
	if err != nil {
		return nil
	}
	if len(wire) > maxUDP {
		wire = e.truncate(resp, maxUDP)
	}
	if wire != nil {
		e.stats.Responses++
	}
	return wire
}

// answerChaos serves hostname.bind / id.server from the site identity.
// The paper's measurement deliberately avoids CHAOS (a recursive
// answers it itself); we serve it so the contrast is demonstrable.
func (e *Engine) answerChaos(resp *dnswire.Message, q dnswire.Question) {
	name := q.Name.Key()
	if q.Type == dnswire.TypeTXT && (name == "hostname.bind." || name == "id.server.") && e.cfg.Identity != "" {
		e.stats.Chaos++
		resp.Authoritative = true
		resp.Answers = []dnswire.RR{{
			Name:  q.Name,
			Class: dnswire.ClassCHAOS,
			TTL:   0,
			Data:  dnswire.TXT{Strings: []string{e.cfg.Identity}},
		}}
		return
	}
	resp.RCode = dnswire.RCodeRefused
}

// answerAuthoritative resolves an Internet-class question against the
// configured zones.
func (e *Engine) answerAuthoritative(resp *dnswire.Message, q dnswire.Question) {
	z := e.zoneFor(q.Name)
	if z == nil {
		resp.RCode = dnswire.RCodeRefused
		return
	}
	resp.Authoritative = true
	res := z.Lookup(q.Name, q.Type)
	switch res.Kind {
	case zone.Success:
		resp.Answers = res.Records
		resp.Authority = res.Authority
		e.addGlue(resp, z)
	case zone.NoData:
		resp.Authority = res.Authority
	case zone.NXDomain:
		resp.RCode = dnswire.RCodeNXDomain
		resp.Authority = res.Authority
	case zone.Delegation:
		resp.Authority = res.Authority
	}
}

// Zone returns the configured zone whose origin is the longest suffix
// of qname, for callers that need direct zone access (zone transfer).
func (e *Engine) Zone(qname dnswire.Name) (*zone.Zone, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	z := e.zoneFor(qname)
	return z, z != nil
}

// zoneFor returns the zone with the longest origin matching qname.
func (e *Engine) zoneFor(qname dnswire.Name) *zone.Zone {
	var best *zone.Zone
	bestLabels := -1
	for _, z := range e.cfg.Zones {
		if qname.IsSubdomainOf(z.Origin()) && z.Origin().NumLabels() > bestLabels {
			best = z
			bestLabels = z.Origin().NumLabels()
		}
	}
	return best
}

// addGlue fills the additional section with addresses for NS targets
// named in the authority section.
func (e *Engine) addGlue(resp *dnswire.Message, z *zone.Zone) {
	seen := make(map[string]bool)
	for _, rr := range resp.Authority {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok || seen[ns.Host.Key()] {
			continue
		}
		seen[ns.Host.Key()] = true
		for _, typ := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
			res := z.Lookup(ns.Host, typ)
			if res.Kind == zone.Success {
				resp.Additional = append(resp.Additional, res.Records...)
			}
		}
	}
}

// truncate rebuilds the response with TC set and sections emptied
// until it fits maxUDP, per RFC 2181 §9.
func (e *Engine) truncate(resp *dnswire.Message, maxUDP int) []byte {
	resp.Truncated = true
	resp.Additional = nil
	for {
		wire, err := resp.Pack()
		if err != nil {
			return nil
		}
		if len(wire) <= maxUDP {
			return wire
		}
		switch {
		case len(resp.Answers) > 0:
			resp.Answers = resp.Answers[:len(resp.Answers)-1]
		case len(resp.Authority) > 0:
			resp.Authority = resp.Authority[:len(resp.Authority)-1]
		default:
			return wire[:0] // cannot shrink further; drop
		}
	}
}
