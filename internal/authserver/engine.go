// Package authserver implements the authoritative DNS server used as
// the paper's measurement instrument (the role NSD 4.1.7 played on the
// AWS deployments). Each instance serves one or more zones, answers
// CHAOS identity queries with its site identity, and exposes per-query
// instrumentation so experiments can observe traffic from the
// authoritative side, as the paper does for its middlebox check.
//
// The core Engine is a pure request→response function, so the same
// code serves simulated datagrams (internal/netsim) and real UDP/TCP
// sockets (Server in this package, cmd/authd).
package authserver

import (
	"net/netip"
	"sync"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/obs"
	"ritw/internal/zone"
)

// QueryInfo describes one handled query for instrumentation.
type QueryInfo struct {
	Src      netip.Addr
	Question dnswire.Question
	RCode    dnswire.RCode
}

// Stats aggregates server activity.
type Stats struct {
	Queries     int
	Responses   int
	ByType      map[dnswire.Type]int
	ByRCode     map[dnswire.RCode]int
	Chaos       int
	Dropped     int
	RateLimited int
}

// Config assembles an Engine.
type Config struct {
	// Zones this server is authoritative for. The zones must not be
	// mutated once the engine serves: answer construction reads them
	// without locking so concurrent UDP workers can resolve in
	// parallel.
	Zones []*zone.Zone
	// Identity is the site identity string answered for CHAOS
	// hostname.bind / id.server queries (e.g. "fra1.ourtestdomain.nl").
	Identity string
	// OnQuery, if set, observes every valid query (for measurement
	// capture at the authoritative side).
	OnQuery func(QueryInfo)
	// OnNotify, if set, receives RFC 1996 NOTIFY messages (a secondary
	// wires this to its refresh trigger). Without it, NOTIFY gets
	// NOTIMP like any other unsupported opcode.
	OnNotify func(origin dnswire.Name, src netip.Addr)
	// RRL enables response rate limiting. It requires Now.
	RRL *RRLConfig
	// Now supplies time for rate limiting (virtual in the simulator,
	// wall-clock in socket servers). Required when RRL is set.
	Now func() time.Duration
	// Metrics, if set, registers the engine's counters and a per-site
	// response-latency histogram there. Counters are additive, so many
	// engines (one per simulated site) may share a registry.
	Metrics *obs.Registry
}

// latencyBoundsUs are the response-latency histogram buckets in
// microseconds: serving is single-digit µs in-process, up to tens of
// ms through the OS stack under load.
var latencyBoundsUs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000, 25000}

// authMetrics caches obs instruments so the serving path touches only
// atomics (all fields stay nil — no-ops — without a registry).
type authMetrics struct {
	queries   *obs.Counter
	responses *obs.Counter
	dropped   *obs.Counter
	chaos     *obs.Counter
	rrlSend   *obs.Counter
	rrlSlip   *obs.Counter
	rrlDrop   *obs.Counter
	// rcodes is indexed by RCode for the standard codes; anything
	// higher lands in rcodeHigh.
	rcodes    [6]*obs.Counter
	rcodeHigh *obs.Counter
	latency   *obs.Histogram
}

func newAuthMetrics(r *obs.Registry, identity string) authMetrics {
	m := authMetrics{
		queries:   r.Counter("authserver_queries_total"),
		responses: r.Counter("authserver_responses_total"),
		dropped:   r.Counter("authserver_dropped_total"),
		chaos:     r.Counter("authserver_chaos_total"),
		rrlSend:   r.Counter(`authserver_rrl_total{action="send"}`),
		rrlSlip:   r.Counter(`authserver_rrl_total{action="slip"}`),
		rrlDrop:   r.Counter(`authserver_rrl_total{action="drop"}`),
		rcodeHigh: r.Counter(obs.LabelName("authserver_rcode_total", "rcode", "OTHER")),
	}
	for rc := range m.rcodes {
		m.rcodes[rc] = r.Counter(obs.LabelName("authserver_rcode_total", "rcode", dnswire.RCode(rc).String()))
	}
	name := "authserver_response_latency_us"
	if identity != "" {
		name = obs.LabelName(name, "site", identity)
	}
	m.latency = r.Histogram(name, latencyBoundsUs)
	return m
}

func (m *authMetrics) rcode(rc dnswire.RCode) *obs.Counter {
	if int(rc) < len(m.rcodes) {
		return m.rcodes[rc]
	}
	return m.rcodeHigh
}

// Engine answers DNS queries authoritatively.
type Engine struct {
	mu    sync.Mutex
	cfg   Config
	rrl   *rrlState
	stats Stats
	// Per-type / per-rcode tallies live in fixed arrays so the per-query
	// critical section does no map work (a map increment hashes and may
	// grow under the lock — measurable at simulated 10M-VP scale). The
	// common DNS types fit in a byte and real rcodes in a nibble; rare
	// out-of-range values spill to lazily made maps. Stats() folds both
	// back into the public map form.
	byType     [256]int
	byTypeHi   map[dnswire.Type]int
	byRCode    [16]int
	byRCodeHi  map[dnswire.RCode]int
	typeKinds  int // number of non-zero byType entries, sizes the snapshot map
	rcodeKinds int
	m          authMetrics
}

// NewEngine builds an authoritative engine. It panics if RRL is
// configured without a time source — a static misconfiguration.
func NewEngine(cfg Config) *Engine {
	e := &Engine{
		cfg: cfg,
		m:   newAuthMetrics(cfg.Metrics, cfg.Identity),
	}
	if cfg.RRL != nil {
		if cfg.Now == nil {
			panic("authserver: RRL requires Config.Now")
		}
		e.rrl = newRRL(*cfg.RRL)
	}
	return e
}

func (e *Engine) countTypeLocked(t dnswire.Type) {
	if int(t) < len(e.byType) {
		if e.byType[t] == 0 {
			e.typeKinds++
		}
		e.byType[t]++
		return
	}
	if e.byTypeHi == nil {
		e.byTypeHi = make(map[dnswire.Type]int)
	}
	e.byTypeHi[t]++
}

func (e *Engine) countRCodeLocked(rc dnswire.RCode) {
	if int(rc) < len(e.byRCode) {
		if e.byRCode[rc] == 0 {
			e.rcodeKinds++
		}
		e.byRCode[rc]++
		return
	}
	if e.byRCodeHi == nil {
		e.byRCodeHi = make(map[dnswire.RCode]int)
	}
	e.byRCodeHi[rc]++
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.ByType = make(map[dnswire.Type]int, e.typeKinds+len(e.byTypeHi))
	for t, v := range e.byType {
		if v != 0 {
			st.ByType[dnswire.Type(t)] = v
		}
	}
	for t, v := range e.byTypeHi {
		st.ByType[t] = v
	}
	st.ByRCode = make(map[dnswire.RCode]int, e.rcodeKinds+len(e.byRCodeHi))
	for rc, v := range e.byRCode {
		if v != 0 {
			st.ByRCode[dnswire.RCode(rc)] = v
		}
	}
	for rc, v := range e.byRCodeHi {
		st.ByRCode[rc] = v
	}
	return st
}

// Identity returns the configured site identity.
func (e *Engine) Identity() string { return e.cfg.Identity }

// HandleQuery processes one wire-format query from src and returns the
// wire-format response, or nil when the input must be dropped
// (garbage, or a response packet — servers never answer responses).
// maxUDP is the size limit for the response (0 means the classic 512);
// responses that do not fit are truncated with TC set.
//
// It allocates a fresh response per call; hot paths that can recycle
// buffers (the socket server's pooled workers, the simulator binding)
// use AppendQuery instead.
func (e *Engine) HandleQuery(src netip.Addr, payload []byte, maxUDP int) []byte {
	out := e.AppendQuery(nil, src, payload, maxUDP)
	if len(out) == 0 {
		return nil
	}
	return out
}

// AppendQuery is the allocation-free form of HandleQuery: the response
// is appended to dst (typically a pooled buffer sliced to length zero)
// and the extended slice returned. A dropped query returns dst
// unchanged, so callers detect output with len(out) > len(dst).
//
// Parsing, zone lookup and wire encoding run outside the engine lock —
// zones are immutable while serving — so N socket workers resolve
// concurrently; only counters, the instrumentation callbacks and the
// rate limiter share a short critical section, keeping OnQuery and
// OnNotify serialized as their users expect.
func (e *Engine) AppendQuery(dst []byte, src netip.Addr, payload []byte, maxUDP int) []byte {
	// The latency histogram needs a start timestamp; skip the clock
	// read entirely when metrics are off so the bare path is unchanged.
	var start time.Time
	if e.m.latency != nil {
		start = time.Now()
	}
	query, err := dnswire.Unpack(payload)
	if err != nil || query.Response {
		e.m.dropped.Inc()
		e.mu.Lock()
		e.stats.Dropped++
		e.mu.Unlock()
		return dst
	}

	resp, err := dnswire.NewResponse(query)
	if err != nil {
		// No question: FORMERR with a bare header.
		e.m.queries.Inc()
		e.m.dropped.Inc()
		e.mu.Lock()
		e.stats.Queries++
		e.stats.Dropped++
		e.mu.Unlock()
		bare := &dnswire.Message{Header: dnswire.Header{
			ID: query.ID, Response: true, Opcode: query.Opcode, RCode: dnswire.RCodeFormErr,
		}}
		out, err := bare.AppendPack(dst)
		if err != nil {
			return dst
		}
		return out
	}
	q := resp.Questions[0]

	// Respect the client's EDNS0 advertised size, echoing the DO bit
	// (RFC 6891 §6.1.3-6.1.4: the responder's OPT carries its own
	// payload size, and DO must be copied so a security-aware client
	// knows DNSSEC records were considered). A positive maxUDP is a
	// hard transport limit — TCP's 64 KiB framing — that the OPT
	// neither raises nor lowers; maxUDP <= 0 means UDP, where the
	// advertised size bounds the datagram in *both* directions,
	// floored at the classic 512 so a buggy advertisement below the
	// RFC minimum cannot force-truncate everything.
	if opt, ok := query.OPT(); ok {
		resp.SetEDNS0(dnswire.DefaultEDNSSize, opt.DNSSECOK)
		if maxUDP <= 0 {
			maxUDP = int(opt.UDPSize)
			if maxUDP < dnswire.MaxUDPSize {
				maxUDP = dnswire.MaxUDPSize
			}
		}
	}
	if maxUDP <= 0 {
		maxUDP = dnswire.MaxUDPSize
	}

	notify := query.Opcode == dnswire.OpcodeNotify && e.cfg.OnNotify != nil
	servedChaos := false
	switch {
	case notify:
		// Acknowledge; the refresh trigger fires under the lock below
		// (RFC 1996).
		resp.Authoritative = true
	case query.Opcode != dnswire.OpcodeQuery:
		resp.RCode = dnswire.RCodeNotImp
	case q.Class == dnswire.ClassCHAOS:
		servedChaos = e.answerChaos(resp, q)
	default:
		e.answerAuthoritative(resp, q)
	}

	e.m.queries.Inc()
	e.m.rcode(resp.RCode).Inc()
	if servedChaos {
		e.m.chaos.Inc()
	}
	action := rrlSend
	e.mu.Lock()
	e.stats.Queries++
	e.countTypeLocked(q.Type)
	if servedChaos {
		e.stats.Chaos++
	}
	e.countRCodeLocked(resp.RCode)
	if notify {
		e.cfg.OnNotify(q.Name, src)
	}
	if e.cfg.OnQuery != nil {
		e.cfg.OnQuery(QueryInfo{Src: src, Question: q, RCode: resp.RCode})
	}
	if e.rrl != nil {
		action = e.rrl.check(src, e.cfg.Now())
		if action != rrlSend {
			e.stats.RateLimited++
		}
	}
	e.mu.Unlock()

	switch action {
	case rrlDrop:
		e.m.rrlDrop.Inc()
		return dst
	case rrlSlip:
		e.m.rrlSlip.Inc()
		if out := appendSlip(dst, query); len(out) > len(dst) {
			e.countResponse(start)
			return out
		}
		return dst
	}
	if e.rrl != nil {
		e.m.rrlSend.Inc()
	}

	out, err := resp.AppendPack(dst)
	if err != nil {
		return dst
	}
	if len(out)-len(dst) > maxUDP {
		out = appendTruncate(dst, resp, maxUDP)
	}
	if len(out) > len(dst) {
		e.countResponse(start)
	}
	return out
}

// countResponse bumps the response counter once a reply is emitted.
func (e *Engine) countResponse(start time.Time) {
	e.m.responses.Inc()
	if e.m.latency != nil {
		e.m.latency.Observe(float64(time.Since(start).Nanoseconds()) / 1e3)
	}
	e.mu.Lock()
	e.stats.Responses++
	e.mu.Unlock()
}

// answerChaos serves hostname.bind / id.server from the site identity
// and reports whether it did (the caller counts it under the lock).
// The paper's measurement deliberately avoids CHAOS (a recursive
// answers it itself); we serve it so the contrast is demonstrable.
func (e *Engine) answerChaos(resp *dnswire.Message, q dnswire.Question) bool {
	name := q.Name.Key()
	if q.Type == dnswire.TypeTXT && (name == "hostname.bind." || name == "id.server.") && e.cfg.Identity != "" {
		resp.Authoritative = true
		resp.Answers = []dnswire.RR{{
			Name:  q.Name,
			Class: dnswire.ClassCHAOS,
			TTL:   0,
			Data:  dnswire.TXT{Strings: []string{e.cfg.Identity}},
		}}
		return true
	}
	resp.RCode = dnswire.RCodeRefused
	return false
}

// answerAuthoritative resolves an Internet-class question against the
// configured zones.
func (e *Engine) answerAuthoritative(resp *dnswire.Message, q dnswire.Question) {
	z := e.zoneFor(q.Name)
	if z == nil {
		resp.RCode = dnswire.RCodeRefused
		return
	}
	resp.Authoritative = true
	res := z.Lookup(q.Name, q.Type)
	switch res.Kind {
	case zone.Success:
		resp.Answers = res.Records
		resp.Authority = res.Authority
		e.addGlue(resp, z)
	case zone.NoData:
		resp.Authority = res.Authority
	case zone.NXDomain:
		resp.RCode = dnswire.RCodeNXDomain
		resp.Authority = res.Authority
	case zone.Delegation:
		resp.Authority = res.Authority
	}
}

// Zone returns the configured zone whose origin is the longest suffix
// of qname, for callers that need direct zone access (zone transfer).
// Zones are immutable while serving, so no lock is needed.
func (e *Engine) Zone(qname dnswire.Name) (*zone.Zone, bool) {
	z := e.zoneFor(qname)
	return z, z != nil
}

// zoneFor returns the zone with the longest origin matching qname.
func (e *Engine) zoneFor(qname dnswire.Name) *zone.Zone {
	var best *zone.Zone
	bestLabels := -1
	for _, z := range e.cfg.Zones {
		if qname.IsSubdomainOf(z.Origin()) && z.Origin().NumLabels() > bestLabels {
			best = z
			bestLabels = z.Origin().NumLabels()
		}
	}
	return best
}

// addGlue fills the additional section with addresses for NS targets
// named in the authority section.
func (e *Engine) addGlue(resp *dnswire.Message, z *zone.Zone) {
	seen := make(map[string]bool)
	for _, rr := range resp.Authority {
		ns, ok := rr.Data.(dnswire.NS)
		if !ok || seen[ns.Host.Key()] {
			continue
		}
		seen[ns.Host.Key()] = true
		for _, typ := range []dnswire.Type{dnswire.TypeA, dnswire.TypeAAAA} {
			res := z.Lookup(ns.Host, typ)
			if res.Kind == zone.Success {
				resp.Additional = append(resp.Additional, res.Records...)
			}
		}
	}
}

// appendTruncate rebuilds the response at the end of dst with TC set
// and sections emptied until it fits maxUDP, per RFC 2181 §9. It
// returns dst unchanged when nothing fits (the reply is dropped).
func appendTruncate(dst []byte, resp *dnswire.Message, maxUDP int) []byte {
	resp.Truncated = true
	resp.Additional = nil
	for {
		out, err := resp.AppendPack(dst)
		if err != nil {
			return dst
		}
		if len(out)-len(dst) <= maxUDP {
			return out
		}
		switch {
		case len(resp.Answers) > 0:
			resp.Answers = resp.Answers[:len(resp.Answers)-1]
		case len(resp.Authority) > 0:
			resp.Authority = resp.Authority[:len(resp.Authority)-1]
		default:
			return dst // cannot shrink further; drop
		}
	}
}
