package authserver

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"ritw/internal/axfr"
	"ritw/internal/dnswire"
)

// udpReadSize is the per-worker UDP receive buffer: the largest
// payload EDNS0 can advertise.
const udpReadSize = 65535

// Server runs an Engine on real UDP and TCP sockets (cmd/authd). TCP
// uses the RFC 1035 two-byte length framing.
type Server struct {
	Engine *Engine
	// ReadTimeout bounds TCP connection idle time (default 10s).
	ReadTimeout time.Duration
	// UDPWorkers is the number of concurrent UDP read loops (default
	// GOMAXPROCS). Each worker owns its receive buffer and draws
	// response buffers from a shared pool, so the steady-state serving
	// path does not allocate.
	UDPWorkers int
	// UDPReusePort shards the UDP port across one SO_REUSEPORT socket
	// per worker instead of N workers blocking on a shared socket, so
	// the kernel fans datagrams out by flow hash and the socket lock
	// stops being the contention point at high rates. Ignored on
	// platforms without SO_REUSEPORT (the shared-socket layout is
	// used there).
	UDPReusePort bool
	// AXFRAllow decides per source address whether zone transfers are
	// served; nil allows all (the historical behaviour). Refused
	// sources get RCode REFUSED, like an unconfigured secondary.
	AXFRAllow func(src netip.Addr) bool

	mu       sync.Mutex
	udpConn  *net.UDPConn   // first UDP socket (Addr reports its address)
	udpConns []*net.UDPConn // all UDP sockets (>1 with UDPReusePort)
	tcpLn    *net.TCPListener
	closed   bool
	wg       sync.WaitGroup
	tcpConns map[net.Conn]struct{}

	respBufs sync.Pool // response scratch: *[]byte with cap >= udpReadSize
}

// NewServer wraps an engine for socket service.
func NewServer(engine *Engine) *Server {
	s := &Server{
		Engine:      engine,
		ReadTimeout: 10 * time.Second,
		tcpConns:    make(map[net.Conn]struct{}),
	}
	s.respBufs.New = func() any {
		b := make([]byte, 0, udpReadSize)
		return &b
	}
	return s
}

// ListenAndServe binds UDP and TCP on addr (e.g. "127.0.0.1:5353") and
// serves until Close. It returns once both listeners are active;
// serving continues on background goroutines. It is the context-free
// wrapper around ListenAndServeContext.
func (s *Server) ListenAndServe(addr string) error {
	return s.ListenAndServeContext(context.Background(), addr)
}

// ListenAndServeContext is ListenAndServe tied to a context: when ctx
// is cancelled the server shuts down as if Close had been called, so
// daemons stop serving on SIGTERM without racing their own listeners.
func (s *Server) ListenAndServeContext(ctx context.Context, addr string) error {
	workers := s.UDPWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	closeAll := func(conns []*net.UDPConn) {
		for _, c := range conns {
			c.Close()
		}
	}
	var udpConns []*net.UDPConn
	if s.UDPReusePort && reusePortSupported {
		// One SO_REUSEPORT socket per worker, all on the same port;
		// the first bind resolves ":0" so the rest bind the concrete
		// address.
		first, err := listenUDPReusePort(addr)
		if err != nil {
			return fmt.Errorf("authserver: udp listen: %w", err)
		}
		udpConns = append(udpConns, first)
		for i := 1; i < workers; i++ {
			c, err := listenUDPReusePort(first.LocalAddr().String())
			if err != nil {
				closeAll(udpConns)
				return fmt.Errorf("authserver: udp reuseport listen: %w", err)
			}
			udpConns = append(udpConns, c)
		}
	} else {
		udpAddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return fmt.Errorf("authserver: resolve %q: %w", addr, err)
		}
		c, err := net.ListenUDP("udp", udpAddr)
		if err != nil {
			return fmt.Errorf("authserver: udp listen: %w", err)
		}
		udpConns = append(udpConns, c)
	}
	tcpAddr, err := net.ResolveTCPAddr("tcp", udpConns[0].LocalAddr().String())
	if err != nil {
		closeAll(udpConns)
		return err
	}
	tcpLn, err := net.ListenTCP("tcp", tcpAddr)
	if err != nil {
		closeAll(udpConns)
		return fmt.Errorf("authserver: tcp listen: %w", err)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		closeAll(udpConns)
		tcpLn.Close()
		return errors.New("authserver: server closed")
	}
	s.udpConn = udpConns[0]
	s.udpConns = udpConns
	s.tcpLn = tcpLn
	s.mu.Unlock()

	s.wg.Add(workers + 1)
	for i := 0; i < workers; i++ {
		// Sharded: worker i owns socket i. Shared: all block on one.
		conn := udpConns[0]
		if len(udpConns) > 1 {
			conn = udpConns[i]
		}
		go s.serveUDP(conn)
	}
	go s.serveTCP(tcpLn)

	if done := ctx.Done(); done != nil {
		go func() {
			<-done
			s.Close()
		}()
	}
	return nil
}

// Addr returns the bound UDP address, usable after ListenAndServe.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.udpConn == nil {
		return nil
	}
	return s.udpConn.LocalAddr()
}

// Close stops the listeners and waits for handler goroutines. It is
// idempotent and safe to call concurrently.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for _, c := range s.udpConns {
		c.Close()
	}
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	for c := range s.tcpConns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// serveUDP is one worker's read loop. Several run concurrently over
// the same socket; the kernel distributes datagrams between their
// blocked reads. The receive buffer is owned by the worker and the
// response is encoded into a pooled buffer via the engine's
// append-style path, so a served query performs no per-query heap
// allocation.
func (s *Server) serveUDP(conn *net.UDPConn) {
	defer s.wg.Done()
	buf := make([]byte, udpReadSize)
	for {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		src, ok := netip.AddrFromSlice(raddr.IP)
		if !ok {
			continue
		}
		respp := s.respBufs.Get().(*[]byte)
		resp := s.Engine.AppendQuery((*respp)[:0], src.Unmap(), buf[:n], 0)
		if len(resp) > 0 {
			conn.WriteToUDP(resp, raddr)
		}
		*respp = resp[:0]
		s.respBufs.Put(respp)
	}
}

func (s *Server) serveTCP(ln *net.TCPListener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.tcpConns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveTCPConn(conn)
	}
}

// maybeServeAXFR answers a zone-transfer query on a TCP connection.
// It reports whether the payload was an AXFR query; a non-nil error
// means the connection should be dropped.
func (s *Server) maybeServeAXFR(conn net.Conn, src netip.Addr, payload []byte) (bool, error) {
	q, err := dnswire.Unpack(payload)
	if err != nil || q.Response {
		return false, nil
	}
	question, ok := q.Question()
	if !ok || question.Type != dnswire.TypeAXFR {
		return false, nil
	}
	// A denied source or an unknown zone both get REFUSED, like an
	// unconfigured secondary asking a stranger for a transfer.
	var msgs []*dnswire.Message
	if s.AXFRAllow == nil || s.AXFRAllow(src) {
		if z, ok := s.Engine.Zone(question.Name); ok {
			msgs, err = axfr.ServeMessages(q, z)
		}
	}
	if msgs == nil || err != nil {
		refused, rerr := dnswire.NewResponse(q)
		if rerr != nil {
			return true, rerr
		}
		refused.RCode = dnswire.RCodeRefused
		msgs = []*dnswire.Message{refused}
	}
	return true, axfr.WriteStream(conn, msgs)
}

func (s *Server) serveTCPConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.tcpConns, conn)
		s.mu.Unlock()
	}()
	src := netip.Addr{}
	if ta, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		if a, ok := netip.AddrFromSlice(ta.IP); ok {
			src = a.Unmap()
		}
	}
	for {
		if s.ReadTimeout > 0 {
			// A failed deadline means the connection is already dead or
			// closing; without the deadline a stalled peer would pin the
			// handler goroutine forever, so drop the connection instead.
			if err := conn.SetReadDeadline(time.Now().Add(s.ReadTimeout)); err != nil {
				return
			}
		}
		var lenBuf [2]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		msgLen := int(binary.BigEndian.Uint16(lenBuf[:]))
		if msgLen == 0 {
			return
		}
		msg := make([]byte, msgLen)
		if _, err := io.ReadFull(conn, msg); err != nil {
			return
		}
		// Zone transfers are TCP-only and stream multiple messages.
		if handled, err := s.maybeServeAXFR(conn, src, msg); handled {
			if err != nil {
				return
			}
			continue
		}
		// TCP responses are not size-limited (use 64 KiB). The length
		// prefix and the message share one pooled buffer so the reply
		// goes out in a single write without a copy.
		respp := s.respBufs.Get().(*[]byte)
		out := s.Engine.AppendQuery(append((*respp)[:0], 0, 0), src, msg, 65535)
		ok := len(out) > 2
		if ok {
			binary.BigEndian.PutUint16(out, uint16(len(out)-2))
			_, err := conn.Write(out)
			*respp = out[:0]
			s.respBufs.Put(respp)
			if err != nil {
				return
			}
			continue
		}
		*respp = out[:0]
		s.respBufs.Put(respp)
	}
}
