package authserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"ritw/internal/axfr"
	"ritw/internal/dnswire"
)

// Server runs an Engine on real UDP and TCP sockets (cmd/authd). TCP
// uses the RFC 1035 two-byte length framing.
type Server struct {
	Engine *Engine
	// ReadTimeout bounds TCP connection idle time (default 10s).
	ReadTimeout time.Duration

	mu       sync.Mutex
	udpConn  *net.UDPConn
	tcpLn    *net.TCPListener
	closed   bool
	wg       sync.WaitGroup
	tcpConns map[net.Conn]struct{}
}

// NewServer wraps an engine for socket service.
func NewServer(engine *Engine) *Server {
	return &Server{
		Engine:      engine,
		ReadTimeout: 10 * time.Second,
		tcpConns:    make(map[net.Conn]struct{}),
	}
}

// ListenAndServe binds UDP and TCP on addr (e.g. "127.0.0.1:5353") and
// serves until Close. It returns once both listeners are active; serving
// continues on background goroutines.
func (s *Server) ListenAndServe(addr string) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("authserver: resolve %q: %w", addr, err)
	}
	udpConn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return fmt.Errorf("authserver: udp listen: %w", err)
	}
	tcpAddr, err := net.ResolveTCPAddr("tcp", udpConn.LocalAddr().String())
	if err != nil {
		udpConn.Close()
		return err
	}
	tcpLn, err := net.ListenTCP("tcp", tcpAddr)
	if err != nil {
		udpConn.Close()
		return fmt.Errorf("authserver: tcp listen: %w", err)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		udpConn.Close()
		tcpLn.Close()
		return errors.New("authserver: server closed")
	}
	s.udpConn = udpConn
	s.tcpLn = tcpLn
	s.mu.Unlock()

	s.wg.Add(2)
	go s.serveUDP(udpConn)
	go s.serveTCP(tcpLn)
	return nil
}

// Addr returns the bound UDP address, usable after ListenAndServe.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.udpConn == nil {
		return nil
	}
	return s.udpConn.LocalAddr()
}

// Close stops the listeners and waits for handler goroutines.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.udpConn != nil {
		s.udpConn.Close()
	}
	if s.tcpLn != nil {
		s.tcpLn.Close()
	}
	for c := range s.tcpConns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) serveUDP(conn *net.UDPConn) {
	defer s.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		src, ok := netip.AddrFromSlice(raddr.IP)
		if !ok {
			continue
		}
		resp := s.Engine.HandleQuery(src.Unmap(), buf[:n], 0)
		if len(resp) > 0 {
			conn.WriteToUDP(resp, raddr)
		}
	}
}

func (s *Server) serveTCP(ln *net.TCPListener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.tcpConns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveTCPConn(conn)
	}
}

// maybeServeAXFR answers a zone-transfer query on a TCP connection.
// It reports whether the payload was an AXFR query; a non-nil error
// means the connection should be dropped.
func (s *Server) maybeServeAXFR(conn net.Conn, src netip.Addr, payload []byte) (bool, error) {
	q, err := dnswire.Unpack(payload)
	if err != nil || q.Response {
		return false, nil
	}
	question, ok := q.Question()
	if !ok || question.Type != dnswire.TypeAXFR {
		return false, nil
	}
	_ = src
	z, ok := s.Engine.Zone(question.Name)
	var msgs []*dnswire.Message
	if ok {
		msgs, err = axfr.ServeMessages(q, z)
	}
	if !ok || err != nil {
		refused, rerr := dnswire.NewResponse(q)
		if rerr != nil {
			return true, rerr
		}
		refused.RCode = dnswire.RCodeRefused
		msgs = []*dnswire.Message{refused}
	}
	return true, axfr.WriteStream(conn, msgs)
}

func (s *Server) serveTCPConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.tcpConns, conn)
		s.mu.Unlock()
	}()
	src := netip.Addr{}
	if ta, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		if a, ok := netip.AddrFromSlice(ta.IP); ok {
			src = a.Unmap()
		}
	}
	for {
		if s.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		var lenBuf [2]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		msgLen := int(binary.BigEndian.Uint16(lenBuf[:]))
		if msgLen == 0 {
			return
		}
		msg := make([]byte, msgLen)
		if _, err := io.ReadFull(conn, msg); err != nil {
			return
		}
		// Zone transfers are TCP-only and stream multiple messages.
		if handled, err := s.maybeServeAXFR(conn, src, msg); handled {
			if err != nil {
				return
			}
			continue
		}
		// TCP responses are not size-limited (use 64 KiB).
		resp := s.Engine.HandleQuery(src, msg, 65535)
		if len(resp) == 0 {
			continue
		}
		out := make([]byte, 2+len(resp))
		binary.BigEndian.PutUint16(out, uint16(len(resp)))
		copy(out[2:], resp)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}
