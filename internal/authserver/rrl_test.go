package authserver

import (
	"net/netip"
	"testing"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

// rrlEngine builds an engine with rate limiting and a manual clock.
func rrlEngine(t *testing.T, cfg RRLConfig) (*Engine, *time.Duration) {
	t.Helper()
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	now := new(time.Duration)
	e := NewEngine(Config{
		Zones: []*zone.Zone{z},
		RRL:   &cfg,
		Now:   func() time.Duration { return *now },
	})
	return e, now
}

func rrlQuery(t *testing.T, i int) []byte {
	t.Helper()
	q := dnswire.NewQuery(uint16(i), dnswire.MustParseName("flood.ourtestdomain.nl"), dnswire.TypeTXT)
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestRRLLimitsFloods(t *testing.T) {
	e, _ := rrlEngine(t, RRLConfig{RatePerSec: 5, Burst: 10})
	attacker := netip.MustParseAddr("198.51.100.1")
	answered := 0
	for i := 0; i < 100; i++ {
		if out := e.HandleQuery(attacker, rrlQuery(t, i), 0); out != nil {
			answered++
		}
	}
	// Burst of 10 allowed, the rest dropped (no time passes).
	if answered != 10 {
		t.Errorf("answered = %d, want the burst of 10", answered)
	}
	if st := e.Stats(); st.RateLimited != 90 {
		t.Errorf("rate limited = %d, want 90", st.RateLimited)
	}
}

func TestRRLRefillsOverTime(t *testing.T) {
	e, now := rrlEngine(t, RRLConfig{RatePerSec: 5, Burst: 5})
	src := netip.MustParseAddr("198.51.100.2")
	for i := 0; i < 5; i++ {
		if e.HandleQuery(src, rrlQuery(t, i), 0) == nil {
			t.Fatalf("burst query %d dropped", i)
		}
	}
	if e.HandleQuery(src, rrlQuery(t, 6), 0) != nil {
		t.Fatal("over-burst query answered")
	}
	*now = 2 * time.Second // refills 10, capped at burst 5
	answered := 0
	for i := 0; i < 10; i++ {
		if e.HandleQuery(src, rrlQuery(t, 10+i), 0) != nil {
			answered++
		}
	}
	if answered != 5 {
		t.Errorf("post-refill answered = %d, want 5", answered)
	}
}

func TestRRLSlipSendsTruncated(t *testing.T) {
	e, _ := rrlEngine(t, RRLConfig{RatePerSec: 1, Burst: 1, SlipRatio: 2})
	src := netip.MustParseAddr("198.51.100.3")
	var slipped, dropped int
	for i := 0; i < 21; i++ {
		out := e.HandleQuery(src, rrlQuery(t, i), 0)
		if i == 0 {
			if out == nil {
				t.Fatal("first query should pass")
			}
			continue
		}
		if out == nil {
			dropped++
			continue
		}
		resp, err := dnswire.Unpack(out)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Truncated || len(resp.Answers) != 0 {
			t.Fatalf("slip response should be empty+TC: %+v", resp.Header)
		}
		slipped++
	}
	if slipped != 10 || dropped != 10 {
		t.Errorf("slipped=%d dropped=%d, want 10/10 at ratio 2", slipped, dropped)
	}
}

func TestRRLPerSourceIsolation(t *testing.T) {
	e, _ := rrlEngine(t, RRLConfig{RatePerSec: 1, Burst: 2})
	attacker := netip.MustParseAddr("198.51.100.4")
	victim := netip.MustParseAddr("203.0.113.4")
	for i := 0; i < 50; i++ {
		e.HandleQuery(attacker, rrlQuery(t, i), 0)
	}
	// A different source is unaffected.
	if out := e.HandleQuery(victim, rrlQuery(t, 1000), 0); out == nil {
		t.Error("innocent source rate-limited")
	}
}

func TestRRLTableBound(t *testing.T) {
	e, _ := rrlEngine(t, RRLConfig{RatePerSec: 1, Burst: 1, MaxSources: 10})
	// 50 distinct sources must not grow the table past the bound.
	for i := 0; i < 50; i++ {
		src := netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)})
		if out := e.HandleQuery(src, rrlQuery(t, i), 0); out == nil {
			t.Fatalf("fresh source %d dropped", i)
		}
	}
	if n := len(e.rrl.buckets); n > 10 {
		t.Errorf("bucket table grew to %d, bound is 10", n)
	}
}

func TestRRLRequiresClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RRL without Now should panic")
		}
	}()
	NewEngine(Config{RRL: &RRLConfig{RatePerSec: 1}})
}

func TestRRLDefaults(t *testing.T) {
	st := newRRL(RRLConfig{RatePerSec: 10})
	if st.cfg.Burst != 20 || st.cfg.MaxSources != 100000 {
		t.Errorf("defaults = %+v", st.cfg)
	}
}

// TestRRLSlipCadencePerSource pins the per-bucket slip fix: with the
// slip counter on the shared limiter state, two interleaved limited
// sources split one global cadence — at ratio 2 one source got every
// TC hint and the other got none. Each source must see its own
// every-Nth pattern.
func TestRRLSlipCadencePerSource(t *testing.T) {
	e, _ := rrlEngine(t, RRLConfig{RatePerSec: 1, Burst: 1, SlipRatio: 2})
	srcA := netip.MustParseAddr("198.51.100.10")
	srcB := netip.MustParseAddr("198.51.100.11")
	// Spend each source's single burst token.
	for _, src := range []netip.Addr{srcA, srcB} {
		if e.HandleQuery(src, rrlQuery(t, 0), 0) == nil {
			t.Fatalf("burst query from %s dropped", src)
		}
	}
	// Interleave limited queries; count TC slips per source.
	slips := map[netip.Addr]int{}
	for i := 1; i <= 8; i++ {
		for _, src := range []netip.Addr{srcA, srcB} {
			out := e.HandleQuery(src, rrlQuery(t, i), 0)
			if out == nil {
				continue
			}
			resp, err := dnswire.Unpack(out)
			if err != nil {
				t.Fatal(err)
			}
			if !resp.Truncated {
				t.Fatalf("limited response to %s not truncated", src)
			}
			slips[src]++
		}
	}
	if slips[srcA] != 4 || slips[srcB] != 4 {
		t.Errorf("slips = A:%d B:%d, want 4 each (every 2nd limited response)",
			slips[srcA], slips[srcB])
	}
}
