package authserver

import (
	"os"
	"testing"

	"ritw/internal/obs"
)

// Checked-in budgets for the serving hot path. The recorded baseline is
// 78 allocs/op and 2771 B/op (see BENCH.md); the budgets leave ~25%
// headroom for toolchain drift, so tripping one means a real
// regression — a new allocation on the per-query path — not noise.
const (
	serveUDPAllocBudget = 96
	serveUDPBytesBudget = 4096
)

// TestBenchGateServeUDP is the CI bench regression gate for
// BenchmarkServeUDPParallel: it fails when the per-query allocation
// count of the UDP serving path (with metrics attached, the deployed
// configuration) exceeds the checked-in budget. Allocation counts are
// deterministic, unlike ns/op, so this is CI-stable. Gated behind
// RITW_BENCH_GATE=1 to keep ordinary `go test` fast.
func TestBenchGateServeUDP(t *testing.T) {
	if os.Getenv("RITW_BENCH_GATE") == "" {
		t.Skip("set RITW_BENCH_GATE=1 to run the bench regression gate")
	}
	res := testing.Benchmark(func(b *testing.B) { serveUDPBench(b, obs.NewRegistry()) })
	t.Logf("serve UDP: %v, %d allocs/op, %d B/op", res, res.AllocsPerOp(), res.AllocedBytesPerOp())
	if a := res.AllocsPerOp(); a > serveUDPAllocBudget {
		t.Errorf("serving hot path allocates %d/op, budget %d", a, serveUDPAllocBudget)
	}
	if n := res.AllocedBytesPerOp(); n > serveUDPBytesBudget {
		t.Errorf("serving hot path allocates %d B/op, budget %d", n, serveUDPBytesBudget)
	}
}
