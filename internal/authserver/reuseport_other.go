//go:build !linux

package authserver

import (
	"errors"
	"net"
)

// reusePortSupported reports whether this platform can shard one UDP
// port across several sockets. Off Linux the server falls back to N
// workers sharing a single socket.
const reusePortSupported = false

func listenUDPReusePort(addr string) (*net.UDPConn, error) {
	return nil, errors.New("authserver: SO_REUSEPORT unsupported on this platform")
}
