package authserver

import (
	"context"
	"encoding/binary"
	"io"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

// newTestServer builds an unstarted server over the shared test zone.
func newTestServer(t *testing.T) *Server {
	t.Helper()
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(NewEngine(Config{
		Zones:    []*zone.Zone{z},
		Identity: "fra1.ourtestdomain.nl",
	}))
}

// TestListenAndServeContextShutdown: cancelling the serve context must
// stop the listeners like an explicit Close.
func TestListenAndServeContextShutdown(t *testing.T) {
	srv := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	if err := srv.ListenAndServeContext(ctx, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	// Serving before cancellation.
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(7, dnswire.MustParseName("ctx-probe.ourtestdomain.nl"), dnswire.TypeTXT)
	wire, _ := q.Pack()
	conn.Write(wire)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("pre-cancel query failed: %v", err)
	}

	cancel()
	deadline := time.Now().Add(3 * time.Second)
	for {
		conn2, err := net.Dial("udp", addr)
		if err != nil {
			break
		}
		conn2.Write(wire)
		conn2.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		_, err = conn2.Read(buf)
		conn2.Close()
		if err != nil {
			break // no longer answering
		}
		if time.Now().After(deadline) {
			t.Fatal("server still answering 3s after context cancellation")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Close after ctx-shutdown must stay safe.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// axfrOverTCP sends one AXFR query and returns the first framed
// response message.
func axfrOverTCP(t *testing.T, addr string) *dnswire.Message {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := &dnswire.Message{
		Header:    dnswire.Header{ID: 99},
		Questions: []dnswire.Question{{Name: dnswire.MustParseName("ourtestdomain.nl"), Type: dnswire.TypeAXFR, Class: dnswire.ClassINET}},
	}
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	framed := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(framed, uint16(len(wire)))
	copy(framed[2:], wire)
	if _, err := conn.Write(framed); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var lenBuf [2]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	respBuf := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(conn, respBuf); err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(respBuf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAXFRAllowPredicate: a deny-all predicate refuses transfers, the
// nil default and an allow predicate serve them.
func TestAXFRAllowPredicate(t *testing.T) {
	srv := newTestServer(t)
	srv.AXFRAllow = func(src netip.Addr) bool { return false }
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if resp := axfrOverTCP(t, srv.Addr().String()); resp.RCode != dnswire.RCodeRefused {
		t.Errorf("denied AXFR rcode = %s, want REFUSED", resp.RCode)
	}

	srv2 := newTestServer(t)
	srv2.AXFRAllow = func(src netip.Addr) bool { return src.IsLoopback() }
	if err := srv2.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	resp := axfrOverTCP(t, srv2.Addr().String())
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) == 0 {
		t.Errorf("allowed AXFR rcode = %s answers = %d, want transfer", resp.RCode, len(resp.Answers))
	}
	if _, ok := resp.Answers[0].Data.(dnswire.SOA); !ok {
		t.Errorf("transfer should open with SOA, got %T", resp.Answers[0].Data)
	}
}

// TestUDPWorkersConcurrentLoad hammers the pooled multi-worker UDP
// path from many clients at once; under -race this doubles as the
// concurrency check for the engine's split locking.
func TestUDPWorkersConcurrentLoad(t *testing.T) {
	srv := newTestServer(t)
	srv.UDPWorkers = 4
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("udp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			buf := make([]byte, 4096)
			for i := 0; i < perClient; i++ {
				id := uint16(c*perClient + i)
				q := dnswire.NewQuery(id, dnswire.MustParseName("load.ourtestdomain.nl"), dnswire.TypeTXT)
				wire, _ := q.Pack()
				if _, err := conn.Write(wire); err != nil {
					errs <- err
					return
				}
				conn.SetReadDeadline(time.Now().Add(2 * time.Second))
				n, err := conn.Read(buf)
				if err != nil {
					errs <- err
					return
				}
				resp, err := dnswire.Unpack(buf[:n])
				if err != nil {
					errs <- err
					return
				}
				if resp.ID != id {
					t.Errorf("client %d: response ID %d, want %d", c, resp.ID, id)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Engine.Stats()
	if st.Queries < clients*perClient {
		t.Errorf("queries = %d, want >= %d", st.Queries, clients*perClient)
	}
}
