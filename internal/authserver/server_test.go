package authserver

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

// startServer brings up a real UDP+TCP server on a loopback port.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewEngine(Config{
		Zones:    []*zone.Zone{z},
		Identity: "fra1.ourtestdomain.nl",
	}))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr().String()
}

func TestUDPServer(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	q := dnswire.NewQuery(21, dnswire.MustParseName("udp-probe.ourtestdomain.nl"), dnswire.TypeTXT)
	wire, _ := q.Pack()
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 21 || !resp.Authoritative {
		t.Errorf("header = %+v", resp.Header)
	}
	if got := resp.Answers[0].Data.(dnswire.TXT).Joined(); got != "site=FRA" {
		t.Errorf("TXT = %q", got)
	}
}

func TestUDPServerIgnoresGarbage(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte{1, 2, 3})
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err == nil {
		t.Error("garbage got a response")
	}
}

func TestTCPServer(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Two queries on one connection exercise framing reuse.
	for i := 0; i < 2; i++ {
		q := dnswire.NewQuery(uint16(30+i), dnswire.MustParseName("tcp-probe.ourtestdomain.nl"), dnswire.TypeTXT)
		wire, _ := q.Pack()
		framed := make([]byte, 2+len(wire))
		binary.BigEndian.PutUint16(framed, uint16(len(wire)))
		copy(framed[2:], wire)
		if _, err := conn.Write(framed); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		var lenBuf [2]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			t.Fatal(err)
		}
		respBuf := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
		if _, err := io.ReadFull(conn, respBuf); err != nil {
			t.Fatal(err)
		}
		resp, err := dnswire.Unpack(respBuf)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != uint16(30+i) {
			t.Errorf("ID = %d", resp.ID)
		}
	}
}

func TestTCPServerNoTruncation(t *testing.T) {
	// Over TCP a >512-byte answer arrives whole.
	zText := "$ORIGIN big.nl.\n@ IN SOA ns hm 1 2 3 4 5\nt IN TXT"
	for i := 0; i < 4; i++ {
		zText += " \"" + string(make250()) + "\""
	}
	zText += "\n"
	z, err := zone.ParseString(zText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewEngine(Config{Zones: []*zone.Zone{z}}))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnswire.NewQuery(40, dnswire.MustParseName("t.big.nl"), dnswire.TypeTXT)
	wire, _ := q.Pack()
	framed := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(framed, uint16(len(wire)))
	copy(framed[2:], wire)
	conn.Write(framed)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var lenBuf [2]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	respBuf := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(conn, respBuf); err != nil {
		t.Fatal(err)
	}
	resp, err := dnswire.Unpack(respBuf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated {
		t.Error("TCP response should not be truncated")
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %d", len(resp.Answers))
	}
}

func make250() []byte {
	b := make([]byte, 250)
	for i := range b {
		b[i] = 'x'
	}
	return b
}

// TestReusePortShardedServer serves through the SO_REUSEPORT-sharded
// socket layout (a shared-socket fallback off Linux) and checks that
// queries from several distinct client sockets — distinct flow hashes,
// so the kernel spreads them across the shards — all get answers, and
// that Close reaps every socket.
func TestReusePortShardedServer(t *testing.T) {
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewEngine(Config{Zones: []*zone.Zone{z}}))
	srv.UDPWorkers = 4
	srv.UDPReusePort = true
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	for i := 0; i < 16; i++ {
		conn, err := net.Dial("udp", addr)
		if err != nil {
			t.Fatal(err)
		}
		q := dnswire.NewQuery(uint16(100+i), dnswire.MustParseName("shard-probe.ourtestdomain.nl"), dnswire.TypeTXT)
		wire, _ := q.Pack()
		if _, err := conn.Write(wire); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 4096)
		n, err := conn.Read(buf)
		conn.Close()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		resp, err := dnswire.Unpack(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if resp.ID != uint16(100+i) {
			t.Errorf("query %d: ID = %d", i, resp.ID)
		}
	}
	if st := srv.Engine.Stats(); st.Queries != 16 {
		t.Errorf("engine saw %d queries, want 16", st.Queries)
	}
}

func TestServerCloseIdempotentAndAddr(t *testing.T) {
	srv, _ := startServer(t)
	if srv.Addr() == nil {
		t.Error("Addr should be set after listen")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second close should be safe")
	}
	fresh := NewServer(NewEngine(Config{}))
	if fresh.Addr() != nil {
		t.Error("Addr before listen should be nil")
	}
}
