//go:build linux

package authserver

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT. The stdlib syscall package predates the
// option and never grew the constant; the value is ABI-stable across
// Linux architectures.
const soReusePort = 0xf

// reusePortSupported reports whether this platform can shard one UDP
// port across several sockets.
const reusePortSupported = true

// listenUDPReusePort binds a UDP socket on addr with SO_REUSEPORT set
// before bind, so several sockets share the port and the kernel shards
// inbound datagrams between them by flow hash. Compared to N workers
// blocked on one socket, each datagram wakes exactly one reader and
// the socket lock stops being a single point of contention.
func listenUDPReusePort(addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		})
		if err != nil {
			return err
		}
		return serr
	}}
	pc, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	return pc.(*net.UDPConn), nil
}
