package authserver

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/obs"
	"ritw/internal/zone"
)

var clientAddr = netip.MustParseAddr("203.0.113.5")

const testZoneText = `
$ORIGIN ourtestdomain.nl.
$TTL 3600
@   IN SOA ns1 hostmaster 2017032301 7200 3600 604800 300
    IN NS ns1
    IN NS ns2
ns1 IN A 192.0.2.1
ns2 IN A 192.0.2.2
ns2 IN AAAA 2001:db8::2
*   5 IN TXT "site=FRA"
`

func testEngine(t *testing.T) *Engine {
	t.Helper()
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(Config{
		Zones:    []*zone.Zone{z},
		Identity: "fra1.ourtestdomain.nl",
	})
}

// ask runs one query through the engine and parses the response.
func ask(t *testing.T, e *Engine, q *dnswire.Message) *dnswire.Message {
	t.Helper()
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	out := e.HandleQuery(clientAddr, wire, 0)
	if out == nil {
		t.Fatal("engine dropped a valid query")
	}
	resp, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestWildcardTXTIdentity(t *testing.T) {
	e := testEngine(t)
	q := dnswire.NewQuery(1, dnswire.MustParseName("probe-1-xyz.ourtestdomain.nl"), dnswire.TypeTXT)
	resp := ask(t, e, q)
	if !resp.Authoritative || resp.RCode != dnswire.RCodeNoError {
		t.Fatalf("header = %+v", resp.Header)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("answers = %d", len(resp.Answers))
	}
	txt := resp.Answers[0].Data.(dnswire.TXT)
	if txt.Joined() != "site=FRA" {
		t.Errorf("TXT = %q", txt.Joined())
	}
	if resp.Answers[0].TTL != 5 {
		t.Errorf("TTL = %d, want the paper's 5 s", resp.Answers[0].TTL)
	}
	if !resp.Answers[0].Name.Equal(q.Questions[0].Name) {
		t.Error("wildcard answer must carry the query name")
	}
}

func TestPositiveAnswerCarriesNSAndGlue(t *testing.T) {
	e := testEngine(t)
	resp := ask(t, e, dnswire.NewQuery(2, dnswire.MustParseName("ns1.ourtestdomain.nl"), dnswire.TypeA))
	if len(resp.Answers) != 1 || len(resp.Authority) != 2 {
		t.Fatalf("an=%d ns=%d", len(resp.Answers), len(resp.Authority))
	}
	// Glue for ns1 (A) and ns2 (A+AAAA) = 3 additional records.
	if len(resp.Additional) != 3 {
		t.Errorf("glue = %d, want 3: %+v", len(resp.Additional), resp.Additional)
	}
}

func TestNXDomainVsNoData(t *testing.T) {
	e := testEngine(t)
	// ns1 exists but has no TXT: NODATA (NOERROR, no answers, SOA).
	resp := ask(t, e, dnswire.NewQuery(3, dnswire.MustParseName("ns1.ourtestdomain.nl"), dnswire.TypeTXT))
	if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 0 {
		t.Fatalf("NODATA wrong: %+v", resp.Header)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type() != dnswire.TypeSOA {
		t.Errorf("NODATA should carry SOA: %+v", resp.Authority)
	}
	// The wildcard makes *.ourtestdomain.nl exist for any name, so a
	// real NXDOMAIN needs an out-of-zone query... which is REFUSED
	// instead. NXDOMAIN is reachable for names under a zone without a
	// wildcard:
	z, err := zone.ParseString("$ORIGIN plain.nl.\n@ IN SOA ns hm 1 2 3 4 60\n", dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(Config{Zones: []*zone.Zone{z}})
	resp = ask(t, e2, dnswire.NewQuery(4, dnswire.MustParseName("missing.plain.nl"), dnswire.TypeA))
	if resp.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", resp.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].TTL != 60 {
		t.Errorf("negative TTL should clamp to SOA minimum: %+v", resp.Authority)
	}
}

func TestRefusedOutOfZone(t *testing.T) {
	e := testEngine(t)
	resp := ask(t, e, dnswire.NewQuery(5, dnswire.MustParseName("example.com"), dnswire.TypeA))
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestChaosIdentity(t *testing.T) {
	e := testEngine(t)
	resp := ask(t, e, dnswire.NewChaosQuery(6, dnswire.MustParseName("hostname.bind")))
	if len(resp.Answers) != 1 {
		t.Fatalf("chaos answers = %d", len(resp.Answers))
	}
	txt := resp.Answers[0].Data.(dnswire.TXT)
	if txt.Joined() != "fra1.ourtestdomain.nl" {
		t.Errorf("identity = %q", txt.Joined())
	}
	if resp.Answers[0].Class != dnswire.ClassCHAOS {
		t.Error("CHAOS answer should be CH class")
	}
	// id.server works too.
	resp = ask(t, e, dnswire.NewChaosQuery(7, dnswire.MustParseName("id.server")))
	if len(resp.Answers) != 1 {
		t.Error("id.server should be answered")
	}
	// Unknown CHAOS names are refused.
	resp = ask(t, e, dnswire.NewChaosQuery(8, dnswire.MustParseName("version.bind")))
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("version.bind rcode = %v", resp.RCode)
	}
	// A server with no identity refuses hostname.bind as well.
	e2 := NewEngine(Config{})
	resp = ask(t, e2, dnswire.NewChaosQuery(9, dnswire.MustParseName("hostname.bind")))
	if resp.RCode != dnswire.RCodeRefused {
		t.Errorf("no-identity rcode = %v", resp.RCode)
	}
}

func TestNotImpForNonQueryOpcodes(t *testing.T) {
	e := testEngine(t)
	q := dnswire.NewQuery(10, dnswire.MustParseName("x.ourtestdomain.nl"), dnswire.TypeTXT)
	q.Opcode = dnswire.OpcodeUpdate
	resp := ask(t, e, q)
	if resp.RCode != dnswire.RCodeNotImp {
		t.Errorf("rcode = %v", resp.RCode)
	}
}

func TestDropGarbageAndResponses(t *testing.T) {
	e := testEngine(t)
	if out := e.HandleQuery(clientAddr, []byte{0xde, 0xad}, 0); out != nil {
		t.Error("garbage should be dropped")
	}
	r := dnswire.NewQuery(11, dnswire.MustParseName("x.nl"), dnswire.TypeA)
	r.Response = true
	wire, _ := r.Pack()
	if out := e.HandleQuery(clientAddr, wire, 0); out != nil {
		t.Error("responses should be dropped, not answered")
	}
	if e.Stats().Dropped != 2 {
		t.Errorf("dropped = %d", e.Stats().Dropped)
	}
}

func TestFormErrNoQuestion(t *testing.T) {
	e := testEngine(t)
	m := &dnswire.Message{Header: dnswire.Header{ID: 77}}
	wire, _ := m.Pack()
	out := e.HandleQuery(clientAddr, wire, 0)
	if out == nil {
		t.Fatal("no FORMERR response")
	}
	resp, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeFormErr || resp.ID != 77 {
		t.Errorf("resp = %+v", resp.Header)
	}
}

func TestEDNSEchoAndSize(t *testing.T) {
	e := testEngine(t)
	q := dnswire.NewQuery(12, dnswire.MustParseName("y.ourtestdomain.nl"), dnswire.TypeTXT)
	q.SetEDNS0(4096, false)
	resp := ask(t, e, q)
	if _, ok := resp.OPT(); !ok {
		t.Error("EDNS query should get EDNS response")
	}
	// Non-EDNS query gets no OPT back.
	resp = ask(t, e, dnswire.NewQuery(13, dnswire.MustParseName("z.ourtestdomain.nl"), dnswire.TypeTXT))
	if _, ok := resp.OPT(); ok {
		t.Error("plain query should not get OPT")
	}
}

// bigTXTEngine serves t.big.nl with a TXT answer of chunks x 200-byte
// strings, for truncation tests that need a response of a known size.
func bigTXTEngine(t *testing.T, chunks int) *Engine {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("$ORIGIN big.nl.\n@ IN SOA ns hm 1 2 3 4 5\nt IN TXT")
	for i := 0; i < chunks; i++ {
		sb.WriteString(" \"")
		sb.WriteString(strings.Repeat("x", 200))
		sb.WriteString("\"")
	}
	sb.WriteString("\n")
	z, err := zone.ParseString(sb.String(), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(Config{Zones: []*zone.Zone{z}})
}

func TestTruncationOver512(t *testing.T) {
	// A zone whose TXT answer exceeds 512 bytes.
	e := bigTXTEngine(t, 5)
	q := dnswire.NewQuery(14, dnswire.MustParseName("t.big.nl"), dnswire.TypeTXT)
	wire, _ := q.Pack()
	out := e.HandleQuery(clientAddr, wire, 0)
	if len(out) > 512 {
		t.Fatalf("response %d bytes exceeds 512", len(out))
	}
	resp, err := dnswire.Unpack(out)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("oversize answer must set TC")
	}
	// With a big EDNS buffer, the full answer fits and TC is clear.
	q2 := dnswire.NewQuery(15, dnswire.MustParseName("t.big.nl"), dnswire.TypeTXT)
	q2.SetEDNS0(4096, false)
	wire2, _ := q2.Pack()
	out2 := e.HandleQuery(clientAddr, wire2, 0)
	resp2, err := dnswire.Unpack(out2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Truncated || len(resp2.Answers) != 1 {
		t.Errorf("EDNS response: tc=%v an=%d", resp2.Truncated, len(resp2.Answers))
	}
}

// TestEDNSSizeClamp pins RFC 6891 clamping in both directions: the
// client's advertised size bounds the UDP response downward (a 512
// advertisement gets TC, not an oversized datagram) but never raises
// the limit past the caller's transport cap, and advertisements below
// the RFC-minimum 512 are floored rather than honoured.
func TestEDNSSizeClamp(t *testing.T) {
	e := bigTXTEngine(t, 5) // ~1KB answer
	name := dnswire.MustParseName("t.big.nl")

	t.Run("advertising 512 gets TC", func(t *testing.T) {
		q := dnswire.NewQuery(20, name, dnswire.TypeTXT)
		q.SetEDNS0(512, false)
		wire, _ := q.Pack()
		out := e.HandleQuery(clientAddr, wire, 0)
		if len(out) > 512 {
			t.Fatalf("response %d bytes exceeds the advertised 512", len(out))
		}
		resp, err := dnswire.Unpack(out)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Truncated {
			t.Error("oversize answer for a 512 advertiser must set TC")
		}
	})

	t.Run("advertisement cannot raise a transport limit", func(t *testing.T) {
		q := dnswire.NewQuery(21, name, dnswire.TypeTXT)
		q.SetEDNS0(4096, false)
		wire, _ := q.Pack()
		out := e.HandleQuery(clientAddr, wire, 600)
		if len(out) > 600 {
			t.Fatalf("response %d bytes exceeds the 600-byte transport limit", len(out))
		}
		resp, err := dnswire.Unpack(out)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Truncated {
			t.Error("response over the transport limit must set TC")
		}
	})

	t.Run("advertisement below 512 is floored", func(t *testing.T) {
		// A ~460-byte response fits in 512 but not in a bogus 300-byte
		// advertisement; the floor means it is served whole.
		e := bigTXTEngine(t, 2)
		q := dnswire.NewQuery(22, name, dnswire.TypeTXT)
		q.SetEDNS0(300, false)
		wire, _ := q.Pack()
		out := e.HandleQuery(clientAddr, wire, 0)
		resp, err := dnswire.Unpack(out)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Truncated || len(resp.Answers) != 1 {
			t.Errorf("sub-512 advertisement must be floored at 512: tc=%v an=%d",
				resp.Truncated, len(resp.Answers))
		}
	})
}

// TestEDNSEchoesDOBit pins RFC 6891 §6.1.4: the DO bit of the query's
// OPT must be copied into the response's OPT.
func TestEDNSEchoesDOBit(t *testing.T) {
	e := testEngine(t)
	for _, do := range []bool{true, false} {
		q := dnswire.NewQuery(23, dnswire.MustParseName("probe-do.ourtestdomain.nl"), dnswire.TypeTXT)
		q.SetEDNS0(4096, do)
		resp := ask(t, e, q)
		opt, ok := resp.OPT()
		if !ok {
			t.Fatal("EDNS query should get EDNS response")
		}
		if opt.DNSSECOK != do {
			t.Errorf("response DO = %v, query DO = %v", opt.DNSSECOK, do)
		}
	}
}

func TestMultipleZonesLongestMatch(t *testing.T) {
	parent, err := zone.ParseString("$ORIGIN nl.\n@ IN SOA ns hm 1 2 3 4 5\nt IN TXT \"parent\"\n", dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	child, err := zone.ParseString("$ORIGIN sub.nl.\n@ IN SOA ns hm 1 2 3 4 5\nt IN TXT \"child\"\n", dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Config{Zones: []*zone.Zone{parent, child}})
	resp := ask(t, e, dnswire.NewQuery(16, dnswire.MustParseName("t.sub.nl"), dnswire.TypeTXT))
	if got := resp.Answers[0].Data.(dnswire.TXT).Joined(); got != "child" {
		t.Errorf("longest match lost: %q", got)
	}
	resp = ask(t, e, dnswire.NewQuery(17, dnswire.MustParseName("t.nl"), dnswire.TypeTXT))
	if got := resp.Answers[0].Data.(dnswire.TXT).Joined(); got != "parent" {
		t.Errorf("parent zone broken: %q", got)
	}
}

func TestOnQueryInstrumentation(t *testing.T) {
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	var got []QueryInfo
	e := NewEngine(Config{
		Zones:   []*zone.Zone{z},
		OnQuery: func(qi QueryInfo) { got = append(got, qi) },
	})
	q := dnswire.NewQuery(20, dnswire.MustParseName("abc.ourtestdomain.nl"), dnswire.TypeTXT)
	wire, _ := q.Pack()
	e.HandleQuery(clientAddr, wire, 0)
	if len(got) != 1 {
		t.Fatalf("OnQuery calls = %d", len(got))
	}
	if got[0].Src != clientAddr || got[0].RCode != dnswire.RCodeNoError {
		t.Errorf("info = %+v", got[0])
	}
	if got[0].Question.Type != dnswire.TypeTXT {
		t.Errorf("question = %+v", got[0].Question)
	}
}

func TestStatsAccounting(t *testing.T) {
	e := testEngine(t)
	for i := 0; i < 3; i++ {
		ask(t, e, dnswire.NewQuery(uint16(i), dnswire.MustParseName("s.ourtestdomain.nl"), dnswire.TypeTXT))
	}
	ask(t, e, dnswire.NewChaosQuery(99, dnswire.MustParseName("hostname.bind")))
	st := e.Stats()
	if st.Queries != 4 || st.Responses != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.ByType[dnswire.TypeTXT] != 4 {
		t.Errorf("TXT count = %d", st.ByType[dnswire.TypeTXT])
	}
	if st.Chaos != 1 {
		t.Errorf("chaos = %d", st.Chaos)
	}
	if st.ByRCode[dnswire.RCodeNoError] != 4 {
		t.Errorf("rcode counts = %+v", st.ByRCode)
	}
	// Snapshot isolation: mutating the copy must not corrupt the engine.
	st.ByType[dnswire.TypeTXT] = 999
	if e.Stats().ByType[dnswire.TypeTXT] != 4 {
		t.Error("Stats() must return a copy")
	}
}

func BenchmarkHandleWildcardTXT(b *testing.B) {
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(Config{Zones: []*zone.Zone{z}, Identity: "fra1"})
	q := dnswire.NewQuery(1, dnswire.MustParseName("bench.ourtestdomain.nl"), dnswire.TypeTXT)
	wire, _ := q.Pack()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := e.HandleQuery(clientAddr, wire, 0); out == nil {
			b.Fatal("dropped")
		}
	}
}

// BenchmarkAppendQueryWildcardTXT is the pooled hot path the UDP
// workers and the simulator binding run: the response is encoded into
// the caller's reused buffer, so compare against HandleQuery above to
// see what dropping the per-response output allocations saves (query
// parsing and answer construction still allocate).
func BenchmarkAppendQueryWildcardTXT(b *testing.B) {
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(Config{Zones: []*zone.Zone{z}, Identity: "fra1"})
	q := dnswire.NewQuery(1, dnswire.MustParseName("bench.ourtestdomain.nl"), dnswire.TypeTXT)
	wire, _ := q.Pack()
	buf := make([]byte, 0, udpReadSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = e.AppendQuery(buf[:0], clientAddr, wire, 0)
		if len(buf) == 0 {
			b.Fatal("dropped")
		}
	}
}

func TestNotifyHandoff(t *testing.T) {
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	var gotOrigin dnswire.Name
	var gotSrc netip.Addr
	e := NewEngine(Config{
		Zones: []*zone.Zone{z},
		OnNotify: func(origin dnswire.Name, src netip.Addr) {
			gotOrigin, gotSrc = origin, src
		},
	})
	q := dnswire.NewQuery(31, dnswire.MustParseName("ourtestdomain.nl"), dnswire.TypeSOA)
	q.Opcode = dnswire.OpcodeNotify
	q.RecursionDesired = false
	resp := ask(t, e, q)
	if resp.RCode != dnswire.RCodeNoError || !resp.Authoritative {
		t.Errorf("notify response = %+v", resp.Header)
	}
	if !gotOrigin.Equal(dnswire.MustParseName("ourtestdomain.nl")) || gotSrc != clientAddr {
		t.Errorf("handoff = %v from %v", gotOrigin, gotSrc)
	}
	// Without the hook, NOTIFY is NOTIMP.
	e2 := testEngine(t)
	resp = ask(t, e2, q)
	if resp.RCode != dnswire.RCodeNotImp {
		t.Errorf("unhooked notify rcode = %v", resp.RCode)
	}
}

// TestEngineMetricsSnapshot asserts the obs wiring on the serving hot
// path: query/response/rcode counters, the CHAOS counter, the dropped
// counter, and the per-site latency histogram.
func TestEngineMetricsSnapshot(t *testing.T) {
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e := NewEngine(Config{
		Zones:    []*zone.Zone{z},
		Identity: "fra1.ourtestdomain.nl",
		Metrics:  reg,
	})
	// NOERROR from the wildcard, REFUSED out of zone, CHAOS identity.
	ask(t, e, dnswire.NewQuery(1, dnswire.MustParseName("m1.ourtestdomain.nl"), dnswire.TypeTXT))
	ask(t, e, dnswire.NewQuery(2, dnswire.MustParseName("other.example"), dnswire.TypeA))
	chaos := dnswire.NewQuery(3, dnswire.MustParseName("hostname.bind"), dnswire.TypeTXT)
	chaos.Questions[0].Class = dnswire.ClassCHAOS
	ask(t, e, chaos)
	// Unparseable garbage is dropped without a response.
	if out := e.HandleQuery(clientAddr, []byte{0xde, 0xad}, 0); out != nil {
		t.Fatal("garbage produced a response")
	}

	s := reg.Snapshot()
	for name, want := range map[string]int64{
		"authserver_queries_total":                3,
		"authserver_responses_total":              3,
		"authserver_dropped_total":                1,
		"authserver_chaos_total":                  1,
		`authserver_rcode_total{rcode="NOERROR"}`: 2,
		`authserver_rcode_total{rcode="REFUSED"}`: 1,
	} {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	h, ok := s.Histograms[`authserver_response_latency_us{site="fra1.ourtestdomain.nl"}`]
	if !ok {
		t.Fatal("latency histogram missing")
	}
	if h.Count != 3 {
		t.Errorf("latency observations = %d, want 3", h.Count)
	}
}

// TestEngineRRLMetrics asserts the send/slip/drop action counters.
func TestEngineRRLMetrics(t *testing.T) {
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e := NewEngine(Config{
		Zones:   []*zone.Zone{z},
		RRL:     &RRLConfig{RatePerSec: 1, Burst: 1, SlipRatio: 2},
		Now:     func() time.Duration { return 0 },
		Metrics: reg,
	})
	src := netip.MustParseAddr("198.51.100.20")
	for i := 0; i < 5; i++ {
		q := dnswire.NewQuery(uint16(i), dnswire.MustParseName("flood.ourtestdomain.nl"), dnswire.TypeTXT)
		wire, err := q.Pack()
		if err != nil {
			t.Fatal(err)
		}
		e.HandleQuery(src, wire, 0)
	}
	s := reg.Snapshot()
	// 1 sent (burst), then limited: slip every 2nd → 2 slips, 2 drops.
	for name, want := range map[string]int64{
		`authserver_rrl_total{action="send"}`: 1,
		`authserver_rrl_total{action="slip"}`: 2,
		`authserver_rrl_total{action="drop"}`: 2,
	} {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// BenchmarkServeUDPParallel measures the concurrent serving hot path
// (what the UDP worker pool runs) with and without metrics, pinning
// the acceptance bound that observability costs <= 3%: instruments are
// atomic-only, so the delta should be a handful of nanoseconds.
func BenchmarkServeUDPParallel(b *testing.B) {
	b.Run("bare", func(b *testing.B) { serveUDPBench(b, nil) })
	b.Run("metrics", func(b *testing.B) { serveUDPBench(b, obs.NewRegistry()) })
}

// serveUDPBench is the benchmark body, shared with the CI bench
// regression gate (benchgate_test.go) so both measure the same path.
func serveUDPBench(b *testing.B, reg *obs.Registry) {
	z, err := zone.ParseString(testZoneText, dnswire.Root)
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(Config{Zones: []*zone.Zone{z}, Identity: "fra1", Metrics: reg})
	q := dnswire.NewQuery(1, dnswire.MustParseName("bench.ourtestdomain.nl"), dnswire.TypeTXT)
	wire, _ := q.Pack()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, 0, udpReadSize)
		for pb.Next() {
			buf = e.AppendQuery(buf[:0], clientAddr, wire, 0)
			if len(buf) == 0 {
				b.Fatal("dropped")
			}
		}
	})
}
