package entrada

import (
	"bytes"
	"io"
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

func sampleQueries(n int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	servers := []string{"a-root", "k-root", "ns1.dns.nl"}
	sources := make([]netip.Addr, 20)
	for i := range sources {
		if i%4 == 0 {
			var b [16]byte
			rng.Read(b[:])
			sources[i] = netip.AddrFrom16(b)
		} else {
			var b [4]byte
			rng.Read(b[:])
			sources[i] = netip.AddrFrom4(b)
		}
	}
	out := make([]Query, n)
	at := time.Duration(0)
	for i := range out {
		at += time.Duration(rng.Intn(5000)) * time.Microsecond
		out[i] = Query{
			At:     at,
			Server: servers[rng.Intn(len(servers))],
			Src:    sources[rng.Intn(len(sources))],
			QType:  uint16(rng.Intn(300)),
			RCode:  uint8(rng.Intn(6)),
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	queries := sampleQueries(5000, 1)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, q := range queries {
		if err := w.Add(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(queries) {
		t.Fatalf("read %d queries, want %d", len(got), len(queries))
	}
	for i := range got {
		if got[i] != queries[i] {
			t.Fatalf("query %d mismatch:\n got %+v\nwant %+v", i, got[i], queries[i])
		}
	}
}

func TestCompression(t *testing.T) {
	queries := sampleQueries(10000, 2)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, q := range queries {
		if err := w.Add(q); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	perQuery := float64(buf.Len()) / float64(len(queries))
	// A CSV row of the same data is ~50-70 bytes; the dictionary
	// format should be well under 10.
	if perQuery > 10 {
		t.Errorf("bytes/query = %.1f, want < 10", perQuery)
	}
}

func TestTimestampRegressionRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	src := netip.MustParseAddr("192.0.2.1")
	if err := w.Add(Query{At: time.Second, Server: "a", Src: src}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(Query{At: time.Millisecond, Server: "a", Src: src}); err == nil {
		t.Error("regression should be rejected")
	}
}

func TestInvalidSourceRejected(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Add(Query{At: 0, Server: "a"}); err == nil {
		t.Error("zero source address should be rejected")
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream: %v %v", got, err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("NOPE!"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadAll(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}

func TestCorruptionDetection(t *testing.T) {
	queries := sampleQueries(200, 3)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, q := range queries {
		w.Add(q)
	}
	w.Flush()
	wire := buf.Bytes()

	rng := rand.New(rand.NewSource(4))
	panics := 0
	for trial := 0; trial < 500; trial++ {
		mut := make([]byte, len(wire))
		copy(mut, wire)
		for k := 0; k < 1+rng.Intn(3); k++ {
			mut[5+rng.Intn(len(mut)-5)] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			// Must never panic; errors or silently-different data are
			// acceptable for random corruption.
			_, _ = ReadAll(bytes.NewReader(mut))
		}()
	}
	if panics > 0 {
		t.Fatalf("reader panicked on %d corrupted inputs", panics)
	}
	// Truncations error or return a prefix, never panic.
	for cut := 5; cut < len(wire); cut += len(wire) / 37 {
		if _, err := ReadAll(bytes.NewReader(wire[:cut])); err == nil {
			// A clean record boundary is fine.
			continue
		}
	}
}

func TestAggregate(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	s1 := netip.MustParseAddr("192.0.2.1")
	s2 := netip.MustParseAddr("192.0.2.2")
	add := func(at time.Duration, server string, src netip.Addr) {
		if err := w.Add(Query{At: at, Server: server, Src: src, QType: 16}); err != nil {
			t.Fatal(err)
		}
	}
	add(1*time.Minute, "a-root", s1)
	add(2*time.Minute, "a-root", s1)
	add(3*time.Minute, "k-root", s2)
	add(50*time.Minute, "a-root", s2) // outside the window below
	w.Flush()

	counts, err := Aggregate(bytes.NewReader(buf.Bytes()), 0, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if counts["a-root"][s1.String()] != 2 || counts["k-root"][s2.String()] != 1 {
		t.Errorf("counts = %+v", counts)
	}
	if counts["a-root"][s2.String()] != 0 {
		t.Errorf("window filter failed: %+v", counts)
	}
	// No window: everything counted.
	all, err := Aggregate(bytes.NewReader(buf.Bytes()), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if all["a-root"][s2.String()] != 1 {
		t.Errorf("unwindowed counts = %+v", all)
	}
}

func TestIPv6SourcesSurvive(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	v6 := netip.MustParseAddr("2001:db8::42")
	if err := w.Add(Query{At: time.Second, Server: "a", Src: v6, QType: 28}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 1 || got[0].Src != v6 {
		t.Fatalf("v6 round trip: %+v %v", got, err)
	}
}

func TestReaderStopsAtEOFConsistently(t *testing.T) {
	queries := sampleQueries(10, 5)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, q := range queries {
		w.Add(q)
	}
	w.Flush()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 10 {
		t.Errorf("read %d", n)
	}
	// Next after EOF keeps returning EOF.
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("post-EOF err = %v", err)
	}
}

func BenchmarkWriterAdd(b *testing.B) {
	queries := sampleQueries(1000, 6)
	b.ReportAllocs()
	b.ResetTimer()
	w := NewWriter(io.Discard)
	at := time.Duration(0)
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		at += time.Microsecond
		q.At = at
		if err := w.Add(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadAll(b *testing.B) {
	queries := sampleQueries(10000, 7)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, q := range queries {
		w.Add(q)
	}
	w.Flush()
	wire := buf.Bytes()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadAll(bytes.NewReader(wire)); err != nil {
			b.Fatal(err)
		}
	}
}
