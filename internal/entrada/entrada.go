// Package entrada is a compact binary query-trace store modelled on
// ENTRADA, the streaming warehouse SIDN built to analyze .nl traffic
// (Wullink et al., NOMS 2016 — the paper's reference [32] and the
// source of its .nl dataset). It stores per-query records with
// dictionary compression: servers and source addresses are defined
// once and referenced by varint IDs, timestamps are delta-encoded.
//
// The format is append-only and streamable:
//
//	magic "ENTR" | version byte
//	record*:
//	  0x01 defineServer  varint(id) varint(len) bytes(name)
//	  0x02 defineSource  varint(id) byte(addrLen) bytes(addr)
//	  0x03 query         varint(Δt µs) varint(serverID) varint(srcID)
//	                     varint(qtype) byte(rcode)
package entrada

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"
)

// Magic identifies a trace stream.
var magic = [5]byte{'E', 'N', 'T', 'R', 1}

// Record kinds.
const (
	recDefineServer = 0x01
	recDefineSource = 0x02
	recQuery        = 0x03
)

// Errors returned by the reader.
var (
	ErrBadMagic  = errors.New("entrada: bad magic")
	ErrCorrupted = errors.New("entrada: corrupted stream")
)

// Query is one stored query observation.
type Query struct {
	// At is the capture-relative timestamp.
	At time.Duration
	// Server is the observing authoritative service ("k-root").
	Server string
	// Src is the recursive's address.
	Src netip.Addr
	// QType is the DNS query type code.
	QType uint16
	// RCode is the response code sent.
	RCode uint8
}

// Writer streams queries into an io.Writer.
type Writer struct {
	w         *bufio.Writer
	servers   map[string]uint64
	sources   map[netip.Addr]uint64
	lastTime  time.Duration
	headerOut bool
	err       error
}

// NewWriter creates a trace writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{
		w:       bufio.NewWriter(w),
		servers: make(map[string]uint64),
		sources: make(map[netip.Addr]uint64),
	}
}

func (w *Writer) ensureHeader() {
	if w.headerOut || w.err != nil {
		return
	}
	_, w.err = w.w.Write(magic[:])
	w.headerOut = true
}

func (w *Writer) putUvarint(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.w.Write(buf[:n])
}

func (w *Writer) putByte(b byte) {
	if w.err != nil {
		return
	}
	w.err = w.w.WriteByte(b)
}

// Add appends one query observation. Timestamps must be monotonically
// non-decreasing; Add rejects regressions so delta encoding stays
// well-formed.
func (w *Writer) Add(q Query) error {
	if w.err != nil {
		return w.err
	}
	if q.At < w.lastTime {
		return fmt.Errorf("entrada: timestamp regression: %v after %v", q.At, w.lastTime)
	}
	if !q.Src.IsValid() {
		return fmt.Errorf("entrada: invalid source address")
	}
	w.ensureHeader()

	serverID, ok := w.servers[q.Server]
	if !ok {
		serverID = uint64(len(w.servers))
		w.servers[q.Server] = serverID
		w.putByte(recDefineServer)
		w.putUvarint(serverID)
		w.putUvarint(uint64(len(q.Server)))
		if w.err == nil {
			_, w.err = w.w.WriteString(q.Server)
		}
	}
	srcID, ok := w.sources[q.Src]
	if !ok {
		srcID = uint64(len(w.sources))
		w.sources[q.Src] = srcID
		w.putByte(recDefineSource)
		w.putUvarint(srcID)
		raw := q.Src.AsSlice()
		w.putByte(byte(len(raw)))
		if w.err == nil {
			_, w.err = w.w.Write(raw)
		}
	}

	delta := q.At - w.lastTime
	w.lastTime = q.At
	w.putByte(recQuery)
	w.putUvarint(uint64(delta / time.Microsecond))
	w.putUvarint(serverID)
	w.putUvarint(srcID)
	w.putUvarint(uint64(q.QType))
	w.putByte(q.RCode)
	return w.err
}

// Flush writes buffered data to the underlying writer.
func (w *Writer) Flush() error {
	w.ensureHeader()
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader iterates a trace stream.
type Reader struct {
	r        *bufio.Reader
	servers  []string
	sources  []netip.Addr
	lastTime time.Duration
	started  bool
}

// NewReader creates a trace reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next returns the next query, or io.EOF at the end of the stream.
func (r *Reader) Next() (Query, error) {
	if !r.started {
		var got [5]byte
		if _, err := io.ReadFull(r.r, got[:]); err != nil {
			return Query{}, fmt.Errorf("%w: %v", ErrBadMagic, err)
		}
		if got != magic {
			return Query{}, ErrBadMagic
		}
		r.started = true
	}
	for {
		kind, err := r.r.ReadByte()
		if err == io.EOF {
			return Query{}, io.EOF
		}
		if err != nil {
			return Query{}, err
		}
		switch kind {
		case recDefineServer:
			id, err := binary.ReadUvarint(r.r)
			if err != nil {
				return Query{}, ErrCorrupted
			}
			n, err := binary.ReadUvarint(r.r)
			if err != nil || n > 1<<16 {
				return Query{}, ErrCorrupted
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(r.r, buf); err != nil {
				return Query{}, ErrCorrupted
			}
			if id != uint64(len(r.servers)) {
				return Query{}, fmt.Errorf("%w: server id %d out of order", ErrCorrupted, id)
			}
			r.servers = append(r.servers, string(buf))
		case recDefineSource:
			id, err := binary.ReadUvarint(r.r)
			if err != nil {
				return Query{}, ErrCorrupted
			}
			alen, err := r.r.ReadByte()
			if err != nil || (alen != 4 && alen != 16) {
				return Query{}, ErrCorrupted
			}
			buf := make([]byte, alen)
			if _, err := io.ReadFull(r.r, buf); err != nil {
				return Query{}, ErrCorrupted
			}
			addr, ok := netip.AddrFromSlice(buf)
			if !ok || id != uint64(len(r.sources)) {
				return Query{}, ErrCorrupted
			}
			r.sources = append(r.sources, addr)
		case recQuery:
			deltaUs, err := binary.ReadUvarint(r.r)
			if err != nil {
				return Query{}, ErrCorrupted
			}
			sid, err := binary.ReadUvarint(r.r)
			if err != nil || sid >= uint64(len(r.servers)) {
				return Query{}, ErrCorrupted
			}
			srcid, err := binary.ReadUvarint(r.r)
			if err != nil || srcid >= uint64(len(r.sources)) {
				return Query{}, ErrCorrupted
			}
			qtype, err := binary.ReadUvarint(r.r)
			if err != nil || qtype > 1<<16-1 {
				return Query{}, ErrCorrupted
			}
			rcode, err := r.r.ReadByte()
			if err != nil {
				return Query{}, ErrCorrupted
			}
			r.lastTime += time.Duration(deltaUs) * time.Microsecond
			return Query{
				At:     r.lastTime,
				Server: r.servers[sid],
				Src:    r.sources[srcid],
				QType:  uint16(qtype),
				RCode:  rcode,
			}, nil
		default:
			return Query{}, fmt.Errorf("%w: unknown record kind 0x%02x", ErrCorrupted, kind)
		}
	}
}

// ReadAll drains a stream into memory.
func ReadAll(rd io.Reader) ([]Query, error) {
	r := NewReader(rd)
	var out []Query
	for {
		q, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
}

// Aggregate computes per-server per-source query counts over the
// stream, optionally restricted to [from, to) — the warehouse query
// feeding the Figure-7 rank analysis.
func Aggregate(rd io.Reader, from, to time.Duration) (map[string]map[string]int, error) {
	r := NewReader(rd)
	counts := make(map[string]map[string]int)
	for {
		q, err := r.Next()
		if err == io.EOF {
			return counts, nil
		}
		if err != nil {
			return nil, err
		}
		if to > from && (q.At < from || q.At >= to) {
			continue
		}
		m := counts[q.Server]
		if m == nil {
			m = make(map[string]int)
			counts[q.Server] = m
		}
		m[q.Src.String()]++
	}
}
