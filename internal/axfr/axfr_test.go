package axfr

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

func bigZone(t *testing.T, hosts int) *zone.Zone {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("$ORIGIN big.nl.\n@ IN SOA ns1 hostmaster 42 7200 3600 604800 300\n@ IN NS ns1\n")
	for i := 0; i < hosts; i++ {
		fmt.Fprintf(&sb, "h%04d IN A 192.0.2.%d\n", i, i%250+1)
		fmt.Fprintf(&sb, "h%04d IN TXT \"host %d\"\n", i, i)
	}
	z, err := zone.ParseString(sb.String(), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func axfrQuery(t *testing.T, origin string) *dnswire.Message {
	t.Helper()
	return &dnswire.Message{
		Header: dnswire.Header{ID: 77},
		Questions: []dnswire.Question{{
			Name: dnswire.MustParseName(origin), Type: dnswire.TypeAXFR, Class: dnswire.ClassINET,
		}},
	}
}

func TestServeMessagesBracketsWithSOA(t *testing.T) {
	z := bigZone(t, 200) // 402 records -> several messages
	msgs, err := ServeMessages(axfrQuery(t, "big.nl"), z)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) < 4 {
		t.Fatalf("expected a multi-message stream, got %d", len(msgs))
	}
	first := msgs[0].Answers[0]
	lastMsg := msgs[len(msgs)-1]
	last := lastMsg.Answers[len(lastMsg.Answers)-1]
	if first.Type() != dnswire.TypeSOA || last.Type() != dnswire.TypeSOA {
		t.Errorf("stream must be SOA-bracketed: first=%v last=%v", first.Type(), last.Type())
	}
	total := 0
	for _, m := range msgs {
		if m.ID != 77 || !m.Response || !m.Authoritative {
			t.Fatalf("bad message header: %+v", m.Header)
		}
		total += len(m.Answers)
	}
	if total != z.NumRecords()+1 {
		t.Errorf("stream has %d records, want %d", total, z.NumRecords()+1)
	}
}

func TestServeMessagesValidation(t *testing.T) {
	z := bigZone(t, 1)
	if _, err := ServeMessages(axfrQuery(t, "other.nl"), z); err != ErrNotAuthoritative {
		t.Errorf("wrong-zone err = %v", err)
	}
	if _, err := ServeMessages(&dnswire.Message{}, z); err == nil {
		t.Error("question-less query should fail")
	}
	empty := zone.New(dnswire.MustParseName("empty.nl"))
	if _, err := ServeMessages(axfrQuery(t, "empty.nl"), empty); err != zone.ErrNoSOA {
		t.Errorf("SOA-less zone err = %v", err)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	z := bigZone(t, 150)
	msgs, err := ServeMessages(axfrQuery(t, "big.nl"), z)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStream(&buf, 77, dnswire.MustParseName("big.nl"))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != z.NumRecords() {
		t.Errorf("transferred %d records, want %d", got.NumRecords(), z.NumRecords())
	}
	// Spot-check content equality via lookups.
	res := got.Lookup(dnswire.MustParseName("h0042.big.nl"), dnswire.TypeTXT)
	if res.Kind != zone.Success || res.Records[0].Data.(dnswire.TXT).Joined() != "host 42" {
		t.Errorf("transferred zone lookup = %+v", res)
	}
	soa, ok := got.SOA()
	if !ok || soa.Data.(dnswire.SOA).Serial != 42 {
		t.Errorf("SOA = %+v, %v", soa, ok)
	}
}

func TestReadStreamErrors(t *testing.T) {
	origin := dnswire.MustParseName("big.nl")
	// Truncated stream.
	if _, err := ReadStream(bytes.NewReader([]byte{0, 5, 1}), 1, origin); err == nil {
		t.Error("truncated stream should fail")
	}
	// Wrong ID.
	z := bigZone(t, 2)
	msgs, _ := ServeMessages(axfrQuery(t, "big.nl"), z)
	var buf bytes.Buffer
	WriteStream(&buf, msgs)
	if _, err := ReadStream(bytes.NewReader(buf.Bytes()), 999, origin); err == nil {
		t.Error("ID mismatch should fail")
	}
	// Stream not starting with SOA.
	notSOA, _ := dnswire.NewResponse(axfrQuery(t, "big.nl"))
	notSOA.Answers = []dnswire.RR{{
		Name: origin, Class: dnswire.ClassINET, Data: dnswire.TXT{Strings: []string{"x"}},
	}}
	buf.Reset()
	WriteStream(&buf, []*dnswire.Message{notSOA})
	if _, err := ReadStream(bytes.NewReader(buf.Bytes()), 77, origin); err == nil {
		t.Error("SOA-less start should fail")
	}
	// Refused transfer.
	refused, _ := dnswire.NewResponse(axfrQuery(t, "big.nl"))
	refused.RCode = dnswire.RCodeRefused
	buf.Reset()
	WriteStream(&buf, []*dnswire.Message{refused})
	if _, err := ReadStream(bytes.NewReader(buf.Bytes()), 77, origin); err == nil {
		t.Error("refused transfer should fail")
	}
}
