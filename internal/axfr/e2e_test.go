package axfr_test

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"ritw/internal/authserver"
	"ritw/internal/axfr"
	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

func e2eZone(t *testing.T, hosts int) *zone.Zone {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("$ORIGIN big.nl.\n@ IN SOA ns1 hostmaster 42 7200 3600 604800 300\n@ IN NS ns1\n")
	for i := 0; i < hosts; i++ {
		fmt.Fprintf(&sb, "h%04d IN A 192.0.2.%d\n", i, i%250+1)
	}
	z, err := zone.ParseString(sb.String(), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

// TestFetchOverRealTCP runs a primary on a loopback socket and pulls
// the zone like a secondary would.
func TestFetchOverRealTCP(t *testing.T) {
	z := e2eZone(t, 300)
	srv := authserver.NewServer(authserver.NewEngine(authserver.Config{
		Zones: []*zone.Zone{z}, Identity: "primary",
	}))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got, err := axfr.Fetch(srv.Addr().String(), dnswire.MustParseName("big.nl"), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != z.NumRecords() {
		t.Errorf("fetched %d records, want %d", got.NumRecords(), z.NumRecords())
	}
	// The same connection pattern against an unserved zone is refused.
	if _, err := axfr.Fetch(srv.Addr().String(), dnswire.MustParseName("other.nl"), 3*time.Second); err == nil {
		t.Error("transfer of unserved zone should fail")
	}
	// A secondary built from the transfer answers identically.
	secondary := authserver.NewEngine(authserver.Config{Zones: []*zone.Zone{got}, Identity: "secondary"})
	q := dnswire.NewQuery(5, dnswire.MustParseName("h0123.big.nl"), dnswire.TypeA)
	wire, _ := q.Pack()
	out := secondary.HandleQuery(netip.MustParseAddr("203.0.113.9"), wire, 0)
	if out == nil {
		t.Fatal("secondary dropped query")
	}
	resp, err := dnswire.Unpack(out)
	if err != nil || resp.RCode != dnswire.RCodeNoError || len(resp.Answers) != 1 {
		t.Fatalf("secondary response: %v %v", resp, err)
	}
}
