// Package axfr implements full zone transfer (RFC 5936): the server
// side that streams a zone as a sequence of DNS messages bracketed by
// the SOA record, and the client side that fetches a zone from a
// primary over TCP. This is how the paper's multi-site deployments
// keep every authoritative serving the same zone content — each AWS
// site served an identical copy, differing only in the identity TXT.
package axfr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"ritw/internal/dnswire"
	"ritw/internal/zone"
)

// Errors returned by zone-transfer operations.
var (
	ErrNotAuthoritative = errors.New("axfr: zone not served here")
	ErrBadStream        = errors.New("axfr: malformed transfer stream")
)

// maxRecordsPerMessage bounds each transfer message; real servers pack
// to the TCP segment, we pack to a record count for simplicity.
const maxRecordsPerMessage = 64

// ServeMessages renders the AXFR response stream for a query against
// z: the zone's records with the SOA repeated at the end, split across
// as many messages as needed, each echoing the query ID and question.
func ServeMessages(q *dnswire.Message, z *zone.Zone) ([]*dnswire.Message, error) {
	question, ok := q.Question()
	if !ok {
		return nil, dnswire.ErrNotAQuestion
	}
	if !question.Name.Equal(z.Origin()) {
		return nil, ErrNotAuthoritative
	}
	soa, ok := z.SOA()
	if !ok {
		return nil, zone.ErrNoSOA
	}
	records := z.Records() // SOA first
	records = append(records, soa)

	var msgs []*dnswire.Message
	for start := 0; start < len(records); start += maxRecordsPerMessage {
		end := start + maxRecordsPerMessage
		if end > len(records) {
			end = len(records)
		}
		resp, err := dnswire.NewResponse(q)
		if err != nil {
			return nil, err
		}
		resp.Authoritative = true
		resp.Answers = records[start:end]
		msgs = append(msgs, resp)
	}
	return msgs, nil
}

// WriteStream writes the framed transfer messages to a TCP-style
// stream (two-byte length prefix per message).
func WriteStream(w io.Writer, msgs []*dnswire.Message) error {
	for _, m := range msgs {
		wire, err := m.Pack()
		if err != nil {
			return err
		}
		var lenBuf [2]byte
		binary.BigEndian.PutUint16(lenBuf[:], uint16(len(wire)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := w.Write(wire); err != nil {
			return err
		}
	}
	return nil
}

// Fetch performs a full zone transfer from the primary at addr
// (host:port) and reconstructs the zone. The transfer is complete when
// the SOA record appears a second time.
func Fetch(addr string, origin dnswire.Name, timeout time.Duration) (*zone.Zone, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("axfr: dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))

	q := &dnswire.Message{
		Header:    dnswire.Header{ID: uint16(time.Now().UnixNano())},
		Questions: []dnswire.Question{{Name: origin, Type: dnswire.TypeAXFR, Class: dnswire.ClassINET}},
	}
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	framed := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(framed, uint16(len(wire)))
	copy(framed[2:], wire)
	if _, err := conn.Write(framed); err != nil {
		return nil, err
	}
	return ReadStream(conn, q.ID, origin)
}

// ReadStream consumes a framed transfer stream and rebuilds the zone.
// It validates the query ID, requires the stream to start with an SOA,
// and stops at the trailing SOA.
func ReadStream(r io.Reader, wantID uint16, origin dnswire.Name) (*zone.Zone, error) {
	z := zone.New(origin)
	sawFirstSOA := false
	for {
		var lenBuf [2]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadStream, err)
		}
		buf := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadStream, err)
		}
		msg, err := dnswire.Unpack(buf)
		if err != nil {
			return nil, err
		}
		if msg.ID != wantID {
			return nil, fmt.Errorf("%w: unexpected message ID %d", ErrBadStream, msg.ID)
		}
		if msg.RCode != dnswire.RCodeNoError {
			return nil, fmt.Errorf("axfr: transfer refused: %s", msg.RCode)
		}
		for _, rr := range msg.Answers {
			if rr.Type() == dnswire.TypeSOA {
				if sawFirstSOA {
					return z, nil // trailing SOA: done
				}
				sawFirstSOA = true
				if err := z.Add(rr); err != nil {
					return nil, err
				}
				continue
			}
			if !sawFirstSOA {
				return nil, fmt.Errorf("%w: stream does not start with SOA", ErrBadStream)
			}
			if err := z.Add(rr); err != nil {
				return nil, err
			}
		}
	}
}
