package netsim

import (
	"slices"
	"time"
)

// Hierarchical timing-wheel scheduler. See DESIGN.md §8.5 for the full
// argument; the load-bearing facts are:
//
//   - Virtual time is bucketed into ticks of wheelTick (1ms). Packet
//     timers in this simulator are bounded (RTTs, retransmit timers,
//     probe intervals), and near-future events dominate, so almost
//     every Push lands in level 0 or 1 and costs O(1) with no
//     allocation.
//   - Three levels of 256 slots cover 256ms, ~65.5s and ~4.66h of
//     future time; anything beyond the level-2 horizon waits in an
//     overflow slice that is rescanned once per level-2 rotation.
//   - Exactness: bucketing by tick loses sub-tick order, so when the
//     cursor reaches a tick its slot is sorted once by (at, seq) and
//     consumed front-to-back ("run"); events that land on an
//     already-reached tick afterwards (zero-delay reschedules while
//     draining, cascade coincidences) go to a small (at, seq)
//     min-heap ("due") merged against the run on pop. Every event
//     still parked in a wheel slot has tick > cursor, hence a
//     timestamp strictly after everything in run/due — so the global
//     pop order is exactly ascending (at, seq), identical to the
//     reference heap. That is what keeps scheduler choice a
//     wall-clock knob and never a science knob.
type wheelScheduler struct {
	// cursor is the current tick: every event with tick <= cursor has
	// been moved to run/due (or popped). It only advances inside PopLE.
	cursor uint64
	// run is the current tick's slot, sorted ascending by (at, seq);
	// run[runIdx:] is still pending. Sorting once and popping by index
	// beats a binary heap on both comparisons and locality, which is
	// where the wheel's large-depth advantage over the global heap
	// comes from.
	run    []event
	runIdx int
	// due holds stragglers whose tick was already reached when they
	// were pushed. Almost always tiny (same-instant reschedules).
	due []event
	// level[l][s] holds events with cursor-relative distance in
	// [256^l, 256^(l+1)) ticks, bucketed by bits l*8..l*8+7 of their
	// tick. cnt[l] is the total event count across level l's slots,
	// used to skip empty stretches of time in one jump.
	level [wheelLevels][wheelSlots][]event
	cnt   [wheelLevels]int
	// overflow holds events beyond the level-2 horizon (> ~4.66h out);
	// rescanned at every level-2 wrap. Simulation runs are an hour of
	// virtual time, so this is normally empty.
	overflow []event
	// keys is scratch for the per-tick sort (see advanceOne).
	keys []uint64
	// spare[l] recycles slot backings across cascades. A cascaded slot
	// sits idle for a whole level-l rotation before refilling, so
	// leaving its (large) buffer parked there would grow one buffer
	// per slot — 256 per level. Rotating the emptied buffer to the
	// next cascaded slot keeps the big buffers down to the handful of
	// simultaneously active slots.
	spare [wheelLevels][]event
}

const (
	// wheelTick is the wheel granularity. 1ms splits sub-millisecond
	// bursts (common: a resolver fanning out retries) across ticks
	// finely enough that per-tick sorts stay small, while keeping slot
	// occupancy high.
	wheelTick = time.Millisecond
	// wheelBits/wheelSlots: 256 slots per level.
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelLevels = 3
	slotMask    = wheelSlots - 1
	// Span (in ticks) covered by all levels together: 2^24 ticks,
	// ~4.66h at 1ms. The overflow rescan fires when the cursor crosses
	// a multiple of this.
	wheelSpan = 1 << (wheelLevels * wheelBits)
)

func newWheelScheduler() *wheelScheduler { return &wheelScheduler{} }

// Push implements Scheduler.
func (w *wheelScheduler) Push(at time.Duration, seq uint64, fn func()) {
	w.insert(event{at: at, seq: seq, fn: fn})
}

func (w *wheelScheduler) insert(ev event) {
	t := uint64(ev.at) / uint64(wheelTick)
	if ev.at < 0 {
		t = 0 // Simulator.Schedule clamps, but stay safe on raw use
	}
	if t <= w.cursor {
		// The event's tick has already been reached. The due heap
		// restores exact order against the current run.
		heapPushEvent(&w.due, ev)
		return
	}
	switch delta := t - w.cursor; {
	case delta < wheelSlots:
		slot := t & slotMask
		w.level[0][slot] = append(w.level[0][slot], ev)
		w.cnt[0]++
	case delta < wheelSlots*wheelSlots:
		slot := (t >> wheelBits) & slotMask
		w.level[1][slot] = append(w.level[1][slot], ev)
		w.cnt[1]++
	case delta < wheelSpan:
		slot := (t >> (2 * wheelBits)) & slotMask
		w.level[2][slot] = append(w.level[2][slot], ev)
		w.cnt[2]++
	default:
		w.overflow = append(w.overflow, ev)
	}
}

// PopLE implements Scheduler. It advances the cursor only as far as
// needed to expose the earliest event at or before limit.
func (w *wheelScheduler) PopLE(limit time.Duration) (time.Duration, func(), bool) {
	var limitTick uint64
	if limit > 0 {
		limitTick = uint64(limit) / uint64(wheelTick)
	}
	for {
		// Everything still parked in the wheel has tick > cursor, i.e.
		// a later timestamp than anything in run/due, so the smaller of
		// the run front and the due top is the global minimum.
		if w.runIdx < len(w.run) {
			ev := w.run[w.runIdx]
			if len(w.due) > 0 && eventLess(w.due[0], ev) {
				if w.due[0].at > limit {
					return 0, nil, false
				}
				d := heapPopEvent(&w.due)
				return d.at, d.fn, true
			}
			if ev.at > limit {
				return 0, nil, false
			}
			w.run[w.runIdx].fn = nil // release the closure
			w.runIdx++
			return ev.at, ev.fn, true
		}
		if len(w.due) > 0 {
			if w.due[0].at > limit {
				return 0, nil, false
			}
			d := heapPopEvent(&w.due)
			return d.at, d.fn, true
		}
		if w.cnt[0]+w.cnt[1]+w.cnt[2] == 0 && len(w.overflow) == 0 {
			return 0, nil, false
		}
		if w.cursor >= limitTick {
			return 0, nil, false
		}
		if w.cnt[0] == 0 {
			// Nothing until at least the next cascade boundary: jump
			// straight to the last tick before it. The skipped ticks
			// only touch provably-empty level-0 slots; cascade
			// boundaries of any level holding events are never jumped
			// over, because the jump target stops one tick short of
			// the nearest boundary of the lowest non-empty level.
			next := w.cursor | slotMask
			if w.cnt[1] == 0 {
				next = w.cursor | (wheelSlots*wheelSlots - 1)
				if w.cnt[2] == 0 {
					next = w.cursor | (wheelSpan - 1)
				}
			}
			if next >= limitTick {
				// All remaining events are past limit.
				w.cursor = limitTick
				return 0, nil, false
			}
			w.cursor = next
		}
		w.advanceOne()
	}
}

// advanceOne moves the cursor forward one tick, cascading higher-level
// slots at their wrap boundaries and making the newly current level-0
// slot the run. Only called with run and due drained.
func (w *wheelScheduler) advanceOne() {
	c := w.cursor + 1
	w.cursor = c
	if c&(wheelSpan-1) == 0 && len(w.overflow) > 0 {
		w.rescanOverflow()
	}
	if c&(wheelSlots*wheelSlots-1) == 0 && w.cnt[2] > 0 {
		w.cascade(2, (c>>(2*wheelBits))&slotMask)
	}
	if c&slotMask == 0 && w.cnt[1] > 0 {
		w.cascade(1, (c>>wheelBits)&slotMask)
	}
	slot := c & slotMask
	evs := w.level[0][slot]
	if len(evs) == 0 {
		return
	}
	w.cnt[0] -= len(evs)
	w.sortIntoRun(c, evs, slot)
}

// sortIntoRun orders the tick's events into w.run. When the slot's
// events are already in ascending seq order — true for every slot
// filled by Push alone, the steady-state case — the sort can run on
// packed uint64 keys: sub-tick time offset (< 2^20 ns) in the high
// bits, slot index in the low 24, the index standing in for the seq
// tiebreak. Plain integer sort plus one gather: no comparator calls,
// no write barriers. But cascade (and the overflow rescan) append
// events *older* than the slot's direct pushes — an event parked in
// level 1 since t=0 lands behind a fresher, higher-seq push to the
// same tick — so the index is no longer the seq order and same-instant
// events would run inverted vs the reference heap. Those slots, and
// the unreachable >2^24-event case, take the exact (at, seq) struct
// sort instead. The consumed run becomes the slot's empty backing
// array (no clearing needed — every pop nils the popped event's
// closure), so steady state allocates nothing.
func (w *wheelScheduler) sortIntoRun(tick uint64, evs []event, slot uint64) {
	seqAscending := true
	for i := 1; i < len(evs); i++ {
		if evs[i].seq < evs[i-1].seq {
			seqAscending = false
			break
		}
	}
	if !seqAscending || len(evs) >= 1<<24 {
		old := w.run
		w.level[0][slot] = old[:0]
		slices.SortFunc(evs, func(a, b event) int {
			if eventLess(a, b) {
				return -1
			}
			return 1
		})
		w.run = evs
		w.runIdx = 0
		return
	}
	base := time.Duration(tick) * wheelTick
	keys := w.keys[:0]
	for i := range evs {
		keys = append(keys, uint64(evs[i].at-base)<<24|uint64(i))
	}
	slices.Sort(keys)
	out := w.run[:0]
	for _, k := range keys {
		out = append(out, evs[k&(1<<24-1)])
	}
	w.keys = keys[:0]
	w.level[0][slot] = evs[:0]
	w.run = out
	w.runIdx = 0
}

// cascade empties level's slot into lower levels (or due). Reinserts
// always land strictly below level: an event sits in level l only
// while its distance is >= 256^l ticks, and its cascade boundary is at
// most its own tick, so the recomputed distance is < 256^l.
func (w *wheelScheduler) cascade(level int, slot uint64) {
	evs := w.level[level][slot]
	if len(evs) == 0 {
		return
	}
	w.level[level][slot] = w.spare[level]
	w.cnt[level] -= len(evs)
	for i := range evs {
		w.insert(evs[i])
		evs[i] = event{} // release the closure held by the old backing array
	}
	w.spare[level] = evs[:0]
}

// rescanOverflow refiles overflow events that have come within the
// wheel's span; the rest stay for the next rotation. In-place filter:
// insert may re-append to w.overflow, but only over already-visited
// positions, so the iteration is safe.
func (w *wheelScheduler) rescanOverflow() {
	old := w.overflow
	w.overflow = old[:0]
	for i := range old {
		w.insert(old[i])
	}
	for i := len(w.overflow); i < len(old); i++ {
		old[i] = event{}
	}
}

// Len implements Scheduler.
func (w *wheelScheduler) Len() int {
	return (len(w.run) - w.runIdx) + len(w.due) +
		w.cnt[0] + w.cnt[1] + w.cnt[2] + len(w.overflow)
}
