package netsim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewSimulator()
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	end := s.Run()
	if end != 30*time.Millisecond {
		t.Errorf("end time = %v", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestScheduleFIFOAtSameInstant(t *testing.T) {
	s := NewSimulator()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewSimulator()
	var at []time.Duration
	s.Schedule(time.Millisecond, func() {
		at = append(at, s.Now())
		s.Schedule(2*time.Millisecond, func() {
			at = append(at, s.Now())
		})
	})
	s.Run()
	if len(at) != 2 || at[0] != time.Millisecond || at[1] != 3*time.Millisecond {
		t.Errorf("times = %v", at)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := NewSimulator()
	ran := false
	s.Schedule(5*time.Millisecond, func() {
		s.Schedule(-time.Second, func() { ran = true })
	})
	s.Run()
	if !ran {
		t.Error("negative-delay event never ran")
	}
	if s.Now() != 5*time.Millisecond {
		t.Errorf("clock moved backwards: %v", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSimulator()
	var got []int
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(30*time.Millisecond, func() { got = append(got, 2) })
	s.RunUntil(20 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("events run = %v", got)
	}
	if s.Now() != 20*time.Millisecond {
		t.Errorf("clock = %v, want 20ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run()
	if len(got) != 2 || s.Now() != 30*time.Millisecond {
		t.Errorf("after Run: got=%v now=%v", got, s.Now())
	}
}

func TestScheduleAt(t *testing.T) {
	s := NewSimulator()
	var when time.Duration
	s.ScheduleAt(42*time.Millisecond, func() { when = s.Now() })
	s.Run()
	if when != 42*time.Millisecond {
		t.Errorf("ran at %v", when)
	}
}

func TestManyEventsStress(t *testing.T) {
	s := NewSimulator()
	count := 0
	// A cascade: each event schedules the next until 10000.
	var next func()
	next = func() {
		count++
		if count < 10000 {
			s.Schedule(time.Microsecond, next)
		}
	}
	s.Schedule(0, next)
	s.Run()
	if count != 10000 {
		t.Errorf("count = %d", count)
	}
}
