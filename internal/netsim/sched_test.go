package netsim

import (
	"math/rand"
	"os"
	"testing"
	"time"
)

// schedRecorder drives one scheduler through a deterministic workload
// and records the exact execution order as (at, seq) pairs.
type schedRecord struct {
	at  time.Duration
	seq uint64
}

// runSchedWorkload replays the same seeded workload on a fresh
// simulator of kind k: a mix of near-future (sub-ms to ~200ms),
// mid-future (seconds), far-future (minutes to hours) and beyond-span
// (>5h) delays, same-instant bursts, and events that reschedule
// children — the shapes a real run produces, plus the overflow and
// cascade paths a real run rarely exercises.
func runSchedWorkload(t *testing.T, k SchedulerKind, seed int64) []schedRecord {
	t.Helper()
	sim := NewSimulatorKind(k)
	rng := rand.New(rand.NewSource(seed))
	var order []schedRecord
	var record func()
	depth := 0
	record = func() {
		order = append(order, schedRecord{at: sim.Now(), seq: uint64(len(order))})
		if depth < 20000 && rng.Float64() < 0.6 {
			depth++
			// Reschedule a child with a delay profile mirroring packet
			// traffic: mostly RTT-scale, a tail of timers.
			var d time.Duration
			switch r := rng.Float64(); {
			case r < 0.70:
				d = time.Duration(rng.Intn(200_000)) * time.Microsecond
			case r < 0.85:
				d = time.Duration(rng.Intn(30)) * time.Second
			case r < 0.95:
				d = time.Duration(rng.Intn(240)) * time.Minute
			default:
				d = 5*time.Hour + time.Duration(rng.Intn(3600))*time.Second
			}
			sim.Schedule(d, record)
		}
	}
	// Seed the run with bursts at identical instants to stress FIFO
	// tiebreaks, including several at t=0 and on exact tick boundaries.
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			sim.Schedule(0, record)
		case 1:
			sim.Schedule(time.Duration(i/4)*time.Millisecond, record)
		case 2:
			sim.Schedule(time.Duration(i)*time.Millisecond+time.Duration(rng.Intn(1000))*time.Microsecond, record)
		default:
			sim.Schedule(time.Duration(rng.Intn(7200))*time.Second, record)
		}
	}
	sim.Run()
	if sim.Pending() != 0 {
		t.Fatalf("kind %v: %d events left after Run", k, sim.Pending())
	}
	return order
}

// TestWheelMatchesHeapOrder pins the tentpole contract at the netsim
// layer: both schedulers execute the identical event sequence.
func TestWheelMatchesHeapOrder(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		heapOrder := runSchedWorkload(t, SchedHeap, seed)
		wheelOrder := runSchedWorkload(t, SchedWheel, seed)
		if len(heapOrder) != len(wheelOrder) {
			t.Fatalf("seed %d: heap ran %d events, wheel %d", seed, len(heapOrder), len(wheelOrder))
		}
		for i := range heapOrder {
			if heapOrder[i] != wheelOrder[i] {
				t.Fatalf("seed %d: divergence at event %d: heap %+v wheel %+v",
					seed, i, heapOrder[i], wheelOrder[i])
			}
		}
		// The order itself must be ascending in time.
		for i := 1; i < len(heapOrder); i++ {
			if heapOrder[i].at < heapOrder[i-1].at {
				t.Fatalf("seed %d: time went backwards at event %d", seed, i)
			}
		}
	}
}

// TestWheelCascadeSeqTiebreak pins the REVIEW-flagged inversion: two
// events at the same instant, one pushed far in advance (parked in
// level 1 and cascaded into its level-0 slot later) and one pushed
// close-in (directly into that slot, before the cascade). The cascade
// appends the older, lower-seq event *behind* the newer direct push,
// so any slot-position tiebreak runs them inverted; the contract order
// is ascending seq, identical to the heap.
func TestWheelCascadeSeqTiebreak(t *testing.T) {
	for _, k := range []SchedulerKind{SchedHeap, SchedWheel} {
		s := NewScheduler(k)
		var got []uint64
		rec := func(seq uint64) func() { return func() { got = append(got, seq) } }
		s.Push(300*time.Millisecond, 1, rec(1)) // 300 ticks out: level 1
		s.Push(100*time.Millisecond, 2, rec(2))
		at, fn, ok := s.PopLE(time.Hour)
		if !ok || at != 100*time.Millisecond {
			t.Fatalf("%v: first pop at=%v ok=%v", k, at, ok)
		}
		fn()                                    // cursor now sits at tick 100
		s.Push(300*time.Millisecond, 3, rec(3)) // same instant, close-in: level 0
		for {
			_, fn, ok := s.PopLE(time.Hour)
			if !ok {
				break
			}
			fn()
		}
		want := []uint64{2, 1, 3}
		if len(got) != len(want) {
			t.Fatalf("%v: ran %d events, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: order %v, want %v", k, got, want)
			}
		}
	}
}

// TestWheelSameInstantAcrossCursorDistances is the differential form:
// every target instant collides a far-in-advance push (>=256 ticks, so
// it rides a cascade) with a close-in push made 10ms before the
// instant. Heap and wheel must execute the identical sequence.
func TestWheelSameInstantAcrossCursorDistances(t *testing.T) {
	run := func(k SchedulerKind) []schedRecord {
		sim := NewSimulatorKind(k)
		var order []schedRecord
		// Each recording event carries a distinct identity assigned in
		// (deterministic) creation order, so a same-instant swap shows
		// up as a record mismatch rather than two identical records
		// trading places.
		var next uint64
		mk := func() func() {
			next++
			id := next
			return func() { order = append(order, schedRecord{at: sim.Now(), seq: id}) }
		}
		// Two leads: 10ms usually lands after the target's cascade
		// boundary (slot filled by cascade first, direct push second),
		// 60ms lands before it for targets just past a 256ms boundary
		// (direct push first, cascade appends the older event behind
		// it — the inversion-prone order).
		for _, lead := range []time.Duration{10 * time.Millisecond, 60 * time.Millisecond} {
			lead := lead
			for j := 2; j <= 40; j++ {
				target := time.Duration(j) * 50 * time.Millisecond
				sim.Schedule(target, mk()) // from t=0: level 1+ once j >= 6
				inner := mk()
				sim.Schedule(target-lead, func() {
					sim.Schedule(lead, inner) // same instant, pushed close-in
				})
			}
		}
		sim.Run()
		return order
	}
	heapOrder := run(SchedHeap)
	wheelOrder := run(SchedWheel)
	if len(heapOrder) != len(wheelOrder) {
		t.Fatalf("heap ran %d events, wheel %d", len(heapOrder), len(wheelOrder))
	}
	for i := range heapOrder {
		if heapOrder[i] != wheelOrder[i] {
			t.Fatalf("divergence at event %d: heap %+v wheel %+v",
				i, heapOrder[i], wheelOrder[i])
		}
	}
}

// TestSchedulerPopLE checks the limit semantics both implementations
// share: events after the limit stay queued, same-tick events after
// the limit are not released early.
func TestSchedulerPopLE(t *testing.T) {
	for _, k := range []SchedulerKind{SchedHeap, SchedWheel} {
		s := NewScheduler(k)
		s.Push(1500*time.Microsecond, 1, func() {})
		s.Push(1700*time.Microsecond, 2, func() {})
		s.Push(3*time.Millisecond, 3, func() {})
		if _, _, ok := s.PopLE(1 * time.Millisecond); ok {
			t.Fatalf("%v: popped an event before its time", k)
		}
		at, _, ok := s.PopLE(1600 * time.Microsecond)
		if !ok || at != 1500*time.Microsecond {
			t.Fatalf("%v: want 1.5ms event, got at=%v ok=%v", k, at, ok)
		}
		// 1.7ms shares the 1ms tick with 1.5ms but exceeds the limit.
		if _, _, ok := s.PopLE(1600 * time.Microsecond); ok {
			t.Fatalf("%v: released a same-tick event past the limit", k)
		}
		if got := s.Len(); got != 2 {
			t.Fatalf("%v: Len = %d, want 2", k, got)
		}
		at, _, ok = s.PopLE(time.Hour)
		if !ok || at != 1700*time.Microsecond {
			t.Fatalf("%v: want 1.7ms event, got at=%v ok=%v", k, at, ok)
		}
		at, _, ok = s.PopLE(time.Hour)
		if !ok || at != 3*time.Millisecond {
			t.Fatalf("%v: want 3ms event, got at=%v ok=%v", k, at, ok)
		}
		if s.Len() != 0 {
			t.Fatalf("%v: queue not drained", k)
		}
	}
}

// TestWheelSparseSkipAhead covers the skip-ahead path: a handful of
// events hours apart must pop in order without a per-tick crawl (the
// test would time out if advance were O(ticks) without the jump).
func TestWheelSparseSkipAhead(t *testing.T) {
	s := NewScheduler(SchedWheel)
	delays := []time.Duration{
		12 * time.Hour, 3 * time.Second, 9 * time.Hour,
		100 * time.Millisecond, 47 * time.Minute, 5 * time.Hour,
	}
	for i, d := range delays {
		s.Push(d, uint64(i+1), func() {})
	}
	var got []time.Duration
	for {
		at, _, ok := s.PopLE(24 * time.Hour)
		if !ok {
			break
		}
		got = append(got, at)
	}
	want := []time.Duration{
		100 * time.Millisecond, 3 * time.Second, 47 * time.Minute,
		5 * time.Hour, 9 * time.Hour, 12 * time.Hour,
	}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestParseSchedulerKind covers the flag surface.
func TestParseSchedulerKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SchedulerKind
	}{{"heap", SchedHeap}, {"wheel", SchedWheel}} {
		got, err := ParseSchedulerKind(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSchedulerKind(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() round-trip broke: %q -> %q", tc.in, got.String())
		}
	}
	if _, err := ParseSchedulerKind("fifo"); err == nil {
		t.Fatal("ParseSchedulerKind accepted an unknown kind")
	}
}

// steadyStateChurn measures the per-event cost with depth events in
// flight: pop the earliest, reschedule it a bounded delay ahead — the
// shape of the per-packet path in a full-scale run.
func steadyStateChurn(b *testing.B, k SchedulerKind, depth int) {
	s := NewScheduler(k)
	fn := func() {}
	rng := rand.New(rand.NewSource(1))
	delays := make([]time.Duration, 4096)
	for i := range delays {
		// 0–400ms: RTT-scale timers dominate full-scale event loops.
		delays[i] = time.Duration(rng.Intn(400_000)) * time.Microsecond
	}
	seq := uint64(0)
	for i := 0; i < depth; i++ {
		seq++
		s.Push(delays[i%len(delays)], seq, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at, _, ok := s.PopLE(maxDeadline)
		if !ok {
			b.Fatal("queue unexpectedly empty")
		}
		seq++
		s.Push(at+delays[i%len(delays)], seq, fn)
	}
}

// BenchmarkWheelVsHeap compares event-loop throughput at full-scale
// queue depths. The ISSUE-6 acceptance bar (wheel >= 1.5x heap per
// lane at the 1M-depth point, 0 allocs/op on the wheel path) is
// recorded in BENCH.md.
func BenchmarkWheelVsHeap(b *testing.B) {
	for _, depth := range []int{1_000, 100_000, 1_000_000} {
		for _, k := range []SchedulerKind{SchedHeap, SchedWheel} {
			b.Run(k.String()+"/depth="+itoa(depth), func(b *testing.B) {
				steadyStateChurn(b, k, depth)
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestWheelHotPathZeroAllocGate is the env-gated bench gate from
// ISSUE 6: with RITW_BENCH_GATE=1 it pins the wheel's steady-state
// per-event path (Push + PopLE with the slot capacity warmed) to zero
// allocations. Deterministic — it counts allocations, not time — so
// it is safe to enforce in CI.
func TestWheelHotPathZeroAllocGate(t *testing.T) {
	if os.Getenv("RITW_BENCH_GATE") != "1" {
		t.Skip("set RITW_BENCH_GATE=1 to enforce the wheel zero-alloc gate")
	}
	s := NewScheduler(SchedWheel)
	fn := func() {}
	seq := uint64(0)
	// Warm the slot and due-heap capacities the loop will reuse.
	for i := 0; i < 4096; i++ {
		seq++
		s.Push(time.Duration(i%200)*time.Millisecond, seq, fn)
	}
	for {
		if _, _, ok := s.PopLE(maxDeadline); !ok {
			break
		}
	}
	var now time.Duration
	allocs := testing.AllocsPerRun(10000, func() {
		seq++
		s.Push(now+time.Duration(seq%200)*time.Millisecond, seq, fn)
		at, _, ok := s.PopLE(maxDeadline)
		if !ok {
			t.Fatal("queue unexpectedly empty")
		}
		now = at
	})
	if allocs != 0 {
		t.Fatalf("wheel hot path allocates %.1f allocs/op, want 0", allocs)
	}
}
