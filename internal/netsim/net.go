package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"ritw/internal/geo"
	"ritw/internal/obs"
)

// PacketHandler receives a datagram delivered to a host. src is the
// address replies should go to; for packets that arrived through an
// anycast service, dst is the anycast address the sender used (so the
// host can answer from the right identity).
type PacketHandler func(src, dst netip.Addr, payload []byte)

// Host is a simulated machine with an address and a location.
type Host struct {
	Addr netip.Addr
	Loc  geo.Coord
	// LastMileMs is extra access-network RTT charged on every path to
	// or from this host (zero for datacenter hosts).
	LastMileMs float64
	// LossRate is this host's extra packet-loss probability, applied
	// on top of the network-wide rate in both directions.
	LossRate float64
	// Down marks a failed host: packets to it vanish.
	Down bool

	handler PacketHandler
	net     *Network
}

// Handle installs the host's datagram handler.
func (h *Host) Handle(fn PacketHandler) { h.handler = fn }

// Send transmits payload from this host to dst after the simulated
// one-way delay; dst may be a unicast host or an anycast service
// address. Lost packets are silently dropped, like UDP.
func (h *Host) Send(dst netip.Addr, payload []byte) {
	h.net.send(h, h.Addr, dst, payload)
}

// SendAs transmits like Send but with src as the packet's source
// address. This is how an anycast member answers from the service
// identity it was queried on — without it, a resolver's off-path
// protection would discard the reply. src must be the host's own
// address or an anycast service the host belongs to; other values
// panic, because spoofing is a configuration error in experiments.
func (h *Host) SendAs(src, dst netip.Addr, payload []byte) {
	if src != h.Addr && !h.net.isMember(h, src) {
		panic(fmt.Sprintf("netsim: host %s cannot send as %s", h.Addr, src))
	}
	h.net.send(h, src, dst, payload)
}

// Network glues hosts together with a latency model. All methods must
// be called from the simulator goroutine (or before Run starts).
type Network struct {
	Sim   *Simulator
	Model geo.PathModel
	// LossRate is the network-wide per-packet loss probability.
	LossRate float64
	// BGPNoise is the probability that an anycast catchment decision
	// picks a suboptimal site, modelling the real-world mismatch
	// between BGP proximity and geographic proximity.
	BGPNoise float64

	rng      *rand.Rand
	hosts    map[netip.Addr]*Host
	anycast  map[netip.Addr][]*Host
	stretch  map[pairKey]float64
	catch    map[pairKey]*Host
	nextIPv4 uint32
	faults   FaultModel

	// Keyed-randomness mode (see keyed.go): when enabled, per-packet
	// and per-pair decisions derive from stable keys instead of the
	// sequential rng, making outcomes independent of event interleaving
	// across unrelated hosts — the invariant sharded runs rely on.
	keyed     bool
	keyedSeed uint64
	kr        *keyedRand
	pairCtr   map[dirPair]uint64

	sent       *obs.Counter
	dropped    *obs.Counter
	faultDrops *obs.Counter
}

// FaultModel is consulted on every packet after routing and the static
// loss checks. Drop removes the packet outright; Shape may inflate the
// one-way delay of a surviving packet. src and dst are the concrete
// endpoint addresses (anycast already resolved to the catchment
// member), and now is the simulator's virtual clock. Implementations
// must be deterministic given the packet sequence — netsim calls them
// from the single simulator goroutine in event order.
type FaultModel interface {
	Drop(src, dst netip.Addr, now time.Duration) bool
	Shape(src, dst netip.Addr, now, oneWay time.Duration) time.Duration
}

// SetFaults installs fm as the network's fault model (nil removes it).
// The model's decisions are layered on top of Host.Down and the static
// loss rates, which keep their existing RNG draws, so installing a
// model that never drops or shapes leaves a seeded run byte-identical.
func (n *Network) SetFaults(fm FaultModel) { n.faults = fm }

// SetMetrics counts sends and drops (netsim_packets_sent_total /
// netsim_packets_dropped_total) in r, and wires the simulator's event
// counter too. Purely observational: the RNG stream and event order
// are untouched, so seeded runs stay deterministic.
func (n *Network) SetMetrics(r *obs.Registry) {
	n.sent = r.Counter("netsim_packets_sent_total")
	n.dropped = r.Counter("netsim_packets_dropped_total")
	n.faultDrops = r.Counter("netsim_fault_drops_total")
	n.Sim.SetMetrics(r)
}

type pairKey struct{ a, b netip.Addr }

func orderedPair(a, b netip.Addr) pairKey {
	if b.Less(a) {
		a, b = b, a
	}
	return pairKey{a, b}
}

// DefaultBGPNoise is the default probability that an anycast catchment
// decision picks a suboptimal site. Exported so experiment planners
// that pre-compute catchments (KeyedCatchmentPick) use the exact value
// the network would.
const DefaultBGPNoise = 0.15

// NewNetwork creates a network on sim with the given path model and a
// seeded RNG for all stochastic decisions.
func NewNetwork(sim *Simulator, model geo.PathModel, seed int64) *Network {
	return &Network{
		Sim:      sim,
		Model:    model,
		BGPNoise: DefaultBGPNoise,
		rng:      rand.New(rand.NewSource(seed)),
		hosts:    make(map[netip.Addr]*Host),
		anycast:  make(map[netip.Addr][]*Host),
		stretch:  make(map[pairKey]float64),
		catch:    make(map[pairKey]*Host),
		nextIPv4: 0x0A000001, // 10.0.0.1
	}
}

// RNG exposes the network's random source so colocated models (probe
// placement, resolver assignment) can share the deterministic stream.
func (n *Network) RNG() *rand.Rand { return n.rng }

// AllocAddr returns a fresh unique address from the simulator's
// private pool.
func (n *Network) AllocAddr() netip.Addr {
	for {
		v := n.nextIPv4
		n.nextIPv4++
		addr := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
		if _, taken := n.hosts[addr]; taken {
			continue
		}
		if _, taken := n.anycast[addr]; taken {
			continue
		}
		return addr
	}
}

// AddHost registers a host at loc with an automatically allocated
// address.
func (n *Network) AddHost(loc geo.Coord) *Host {
	return n.AddHostAddr(n.AllocAddr(), loc)
}

// AddHostAddr registers a host with an explicit address; it panics if
// the address is taken (static experiment configs want to fail fast).
func (n *Network) AddHostAddr(addr netip.Addr, loc geo.Coord) *Host {
	if _, dup := n.hosts[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate host %s", addr))
	}
	if _, dup := n.anycast[addr]; dup {
		panic(fmt.Sprintf("netsim: host %s collides with anycast service", addr))
	}
	h := &Host{Addr: addr, Loc: loc, net: n}
	n.hosts[addr] = h
	return h
}

// Host returns the registered host for addr.
func (n *Network) Host(addr netip.Addr) (*Host, bool) {
	h, ok := n.hosts[addr]
	return h, ok
}

// AddAnycast registers addr as an anycast service answered by the
// given member hosts (each member keeps its own unicast address too).
func (n *Network) AddAnycast(addr netip.Addr, members []*Host) {
	if len(members) == 0 {
		panic("netsim: anycast service needs at least one member")
	}
	if _, dup := n.hosts[addr]; dup {
		panic(fmt.Sprintf("netsim: anycast %s collides with host", addr))
	}
	n.anycast[addr] = append([]*Host(nil), members...)
}

// AnycastMembers returns the member hosts behind an anycast address.
func (n *Network) AnycastMembers(addr netip.Addr) []*Host {
	return n.anycast[addr]
}

// IsAnycast reports whether addr names an anycast service.
func (n *Network) IsAnycast(addr netip.Addr) bool {
	_, ok := n.anycast[addr]
	return ok
}

// Catchment resolves which member of an anycast service receives
// traffic from src. The decision is made once per (src, service) pair
// and then pinned: BGP routing is stable at the one-hour timescale of
// the measurements. With probability BGPNoise the choice is not the
// lowest-latency site, reflecting real catchment inefficiency.
func (n *Network) Catchment(src *Host, service netip.Addr) *Host {
	key := pairKey{src.Addr, service}
	if h, ok := n.catch[key]; ok {
		return h
	}
	members := n.anycast[service]
	var best *Host
	if n.keyed {
		locs := make([]geo.Coord, len(members))
		for i, m := range members {
			locs[i] = m.Loc
		}
		pick := KeyedCatchmentPick(n.Model, n.BGPNoise,
			CatchmentKey(n.keyedSeed, src.Addr, service), src.Loc, locs)
		best = members[pick]
	} else {
		best = n.pickCatchment(src, members)
	}
	n.catch[key] = best
	return best
}

func (n *Network) pickCatchment(src *Host, members []*Host) *Host {
	if len(members) == 1 {
		return members[0]
	}
	type cand struct {
		h   *Host
		rtt float64
	}
	cands := make([]cand, len(members))
	for i, m := range members {
		d := src.Loc.DistanceKm(m.Loc)
		cands[i] = cand{m, n.Model.BaseRTTMs(d, n.Model.StretchMean)}
	}
	// Sort by RTT (selection sort: member counts are small).
	for i := range cands {
		minI := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].rtt < cands[minI].rtt {
				minI = j
			}
		}
		cands[i], cands[minI] = cands[minI], cands[i]
	}
	if n.rng.Float64() >= n.BGPNoise {
		return cands[0].h
	}
	// Noisy decision: usually the runner-up, occasionally anything.
	if n.rng.Float64() < 0.7 || len(cands) == 2 {
		return cands[1].h
	}
	return cands[2+n.rng.Intn(len(cands)-2)].h
}

// PathRTTms returns the base (jitter-free) RTT in milliseconds between
// two hosts, including both last-mile components. The per-pair stretch
// is sampled on first use and pinned.
func (n *Network) PathRTTms(a, b *Host) float64 {
	if a == b {
		return 0.2 // loopback
	}
	key := orderedPair(a.Addr, b.Addr)
	d := a.Loc.DistanceKm(b.Loc)
	s, ok := n.stretch[key]
	if !ok {
		if n.keyed {
			s = n.Model.SampleStretch(n.kr.reset(StretchKey(n.keyedSeed, a.Addr, b.Addr)), d)
		} else {
			s = n.Model.SampleStretch(n.rng, d)
		}
		n.stretch[key] = s
	}
	return n.Model.BaseRTTMs(d, s) + a.LastMileMs + b.LastMileMs
}

// isMember reports whether h serves the anycast address svc.
func (n *Network) isMember(h *Host, svc netip.Addr) bool {
	for _, m := range n.anycast[svc] {
		if m == h {
			return true
		}
	}
	return false
}

// send routes one datagram. Anycast destinations first resolve to a
// concrete member via the catchment; the receiver still sees the
// anycast address as dst so it can answer from that identity.
func (n *Network) send(from *Host, srcAddr, dst netip.Addr, payload []byte) {
	n.sent.Inc()
	target, ok := n.hosts[dst]
	serviceAddr := dst
	if !ok {
		if members, isAny := n.anycast[dst]; isAny && len(members) > 0 {
			target = n.Catchment(from, dst)
		} else {
			n.dropped.Inc()
			return // unroutable: silently dropped, like the real thing
		}
	}
	if target.Down {
		n.dropped.Inc()
		return
	}
	// In keyed mode every stochastic decision for this packet comes
	// from one stream seeded by (seed, src, dst, pair packet counter),
	// so the fate of a packet depends only on its own pair's traffic
	// history — never on draws consumed by unrelated hosts.
	prng := n.rng
	if n.keyed {
		prng = n.packetRand(from.Addr, target.Addr)
	}
	if prng.Float64() < n.LossRate || prng.Float64() < from.LossRate || prng.Float64() < target.LossRate {
		n.dropped.Inc()
		return
	}
	if n.faults != nil && n.faults.Drop(from.Addr, target.Addr, n.Sim.Now()) {
		n.faultDrops.Inc()
		n.dropped.Inc()
		return
	}
	base := n.PathRTTms(from, target)
	oneWay := base/2 + n.Model.JitterMs(prng, base)/2
	delay := time.Duration(oneWay * float64(time.Millisecond))
	if n.faults != nil {
		delay = n.faults.Shape(from.Addr, target.Addr, n.Sim.Now(), delay)
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	src := srcAddr
	n.Sim.Schedule(delay, func() {
		if target.handler == nil || target.Down {
			n.dropped.Inc()
			return
		}
		target.handler(src, serviceAddr, buf)
	})
}
