package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"ritw/internal/geo"
	"ritw/internal/obs"
)

// PacketHandler receives a datagram delivered to a host. src is the
// address replies should go to; for packets that arrived through an
// anycast service, dst is the anycast address the sender used (so the
// host can answer from the right identity).
type PacketHandler func(src, dst netip.Addr, payload []byte)

// Host is a simulated machine with an address and a location.
type Host struct {
	Addr netip.Addr
	Loc  geo.Coord
	// LastMileMs is extra access-network RTT charged on every path to
	// or from this host (zero for datacenter hosts).
	LastMileMs float64
	// LossRate is this host's extra packet-loss probability, applied
	// on top of the network-wide rate in both directions.
	LossRate float64
	// Down marks a failed host: packets to it vanish.
	Down bool

	// id is the host's dense registration index (see Network: dense
	// interning). All per-pair state is keyed by id pairs, never by
	// address, so the hot path does integer map lookups only.
	id      int32
	handler PacketHandler
	net     *Network
}

// ID returns the host's dense id: its registration index on the
// network, assigned once at AddHost time. Stable for the lifetime of
// the network, suitable as an index into caller-side flat tables.
func (h *Host) ID() int32 { return h.id }

// Handle installs the host's datagram handler.
func (h *Host) Handle(fn PacketHandler) { h.handler = fn }

// Send transmits payload from this host to dst after the simulated
// one-way delay; dst may be a unicast host or an anycast service
// address. Lost packets are silently dropped, like UDP.
func (h *Host) Send(dst netip.Addr, payload []byte) {
	h.net.send(h, h.Addr, dst, payload)
}

// SendAs transmits like Send but with src as the packet's source
// address. This is how an anycast member answers from the service
// identity it was queried on — without it, a resolver's off-path
// protection would discard the reply. src must be the host's own
// address or an anycast service the host belongs to; other values
// panic, because spoofing is a configuration error in experiments.
func (h *Host) SendAs(src, dst netip.Addr, payload []byte) {
	if src != h.Addr && !h.net.isMember(h, src) {
		panic(fmt.Sprintf("netsim: host %s cannot send as %s", h.Addr, src))
	}
	h.net.send(h, src, dst, payload)
}

// SendSpoofed transmits with an arbitrary forged source address — the
// deliberate escape hatch from SendAs's configuration check, for
// modeling spoofed-source reflection attacks (BCP 38 does not exist
// here). Packet fate (loss, delay, catchment) is keyed on the sending
// and receiving hosts exactly like Send, so a spoofed source never
// perturbs a randomness stream; only the receiver's view of "who sent
// this" changes.
func (h *Host) SendSpoofed(src, dst netip.Addr, payload []byte) {
	h.net.spoofed.Inc()
	h.net.send(h, src, dst, payload)
}

// slabRef is one entry of the address slab: the pool offset of an
// address resolves to the host registered there, the anycast service
// registered there (svc = service id + 1; 0 = none), or neither.
type slabRef struct {
	h   *Host
	svc int32
}

// Network glues hosts together with a latency model. All methods must
// be called from the simulator goroutine (or before Run starts).
//
// Dense interning (DESIGN.md §8.5): every host and every anycast
// service gets a dense int32 id at registration, and addresses inside
// the simulator's 10.x allocation pool resolve to ids through a flat
// slab indexed by pool offset — no hashing on the per-packet path. All
// per-pair pinned state (stretch, catchment, keyed packet counters) is
// stored under packed id pairs. Ids are storage keys only: every keyed
// RNG stream is still derived from the *addresses* (keyed.go), so the
// interning layer cannot change a single random draw — a run's outputs
// are byte-identical to the map-keyed implementation it replaced.
type Network struct {
	Sim   *Simulator
	Model geo.PathModel
	// LossRate is the network-wide per-packet loss probability.
	LossRate float64
	// BGPNoise is the probability that an anycast catchment decision
	// picks a suboptimal site, modelling the real-world mismatch
	// between BGP proximity and geographic proximity.
	BGPNoise float64

	rng *rand.Rand
	// slab resolves pool addresses (poolBase + offset) to hosts and
	// services; hostExtra/svcExtra catch addresses outside the pool
	// (explicit experiment addresses, IPv6).
	slab      []slabRef
	hostExtra map[netip.Addr]*Host
	svcExtra  map[netip.Addr]int32
	// hosts is the dense id -> host table; svcAddrs/svcMembers the
	// id -> service tables.
	hosts      []*Host
	svcAddrs   []netip.Addr
	svcMembers [][]*Host
	// stretch and catch pin per-pair path stretch and per-(host,
	// service) catchment under packed id pairs.
	stretch  map[uint64]float64
	catch    map[uint64]*Host
	nextIPv4 uint32
	faults   FaultModel

	// Keyed-randomness mode (see keyed.go): when enabled, per-packet
	// and per-pair decisions derive from stable keys instead of the
	// sequential rng, making outcomes independent of event interleaving
	// across unrelated hosts — the invariant sharded runs rely on.
	keyed     bool
	keyedSeed uint64
	kr        *keyedRand
	pairCtr   map[uint64]uint64

	sent       *obs.Counter
	dropped    *obs.Counter
	faultDrops *obs.Counter
	spoofed    *obs.Counter
}

// FaultModel is consulted on every packet after routing and the static
// loss checks. Drop removes the packet outright; Shape may inflate the
// one-way delay of a surviving packet. src and dst are the concrete
// endpoint addresses (anycast already resolved to the catchment
// member), and now is the simulator's virtual clock. Implementations
// must be deterministic given the packet sequence — netsim calls them
// from the single simulator goroutine in event order.
type FaultModel interface {
	Drop(src, dst netip.Addr, now time.Duration) bool
	Shape(src, dst netip.Addr, now, oneWay time.Duration) time.Duration
}

// SetFaults installs fm as the network's fault model (nil removes it).
// The model's decisions are layered on top of Host.Down and the static
// loss rates, which keep their existing RNG draws, so installing a
// model that never drops or shapes leaves a seeded run byte-identical.
func (n *Network) SetFaults(fm FaultModel) { n.faults = fm }

// SetMetrics counts sends and drops (netsim_packets_sent_total /
// netsim_packets_dropped_total) in r, and wires the simulator's event
// counter too. Purely observational: the RNG stream and event order
// are untouched, so seeded runs stay deterministic.
func (n *Network) SetMetrics(r *obs.Registry) {
	n.sent = r.Counter("netsim_packets_sent_total")
	n.dropped = r.Counter("netsim_packets_dropped_total")
	n.faultDrops = r.Counter("netsim_fault_drops_total")
	n.spoofed = r.Counter("attacks_spoofed_packets_total")
	n.Sim.SetMetrics(r)
}

// DefaultBGPNoise is the default probability that an anycast catchment
// decision picks a suboptimal site. Exported so experiment planners
// that pre-compute catchments (KeyedCatchmentPick) use the exact value
// the network would.
const DefaultBGPNoise = 0.15

const (
	// poolBase is the first address of the automatic allocation pool
	// (10.0.0.1); poolSlots caps the slab at the rest of 10/8.
	poolBase  = 0x0A000001
	poolSlots = 1 << 24
	// slabSlack bounds how far past the dense auto-allocated range an
	// explicit registration may grow the flat slab. Without it a single
	// AddHostAddr high in the pool (say 10.255.0.1) allocates a ~16M-
	// entry slab for one live entry; past the slack the address goes to
	// the extra maps instead, keeping slab size proportional to real
	// density.
	slabSlack = 4096
)

// poolIndex returns addr's slab offset when it lies in the allocation
// pool.
func poolIndex(addr netip.Addr) (int, bool) {
	if !addr.Is4() {
		return 0, false
	}
	b := addr.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	if v < poolBase || v-poolBase >= poolSlots {
		return 0, false
	}
	return int(v - poolBase), true
}

// NewNetwork creates a network on sim with the given path model and a
// seeded RNG for all stochastic decisions.
func NewNetwork(sim *Simulator, model geo.PathModel, seed int64) *Network {
	return &Network{
		Sim:       sim,
		Model:     model,
		BGPNoise:  DefaultBGPNoise,
		rng:       rand.New(rand.NewSource(seed)),
		hostExtra: make(map[netip.Addr]*Host),
		svcExtra:  make(map[netip.Addr]int32),
		stretch:   make(map[uint64]float64),
		catch:     make(map[uint64]*Host),
		nextIPv4:  poolBase,
	}
}

// RNG exposes the network's random source so colocated models (probe
// placement, resolver assignment) can share the deterministic stream.
func (n *Network) RNG() *rand.Rand { return n.rng }

// lookupHost resolves addr to its registered host, or nil. Pool
// addresses normally hit the slab; the map fallback catches sparse
// pool addresses parked in hostExtra by the slabSlack guard (and costs
// only unroutable packets an extra probe).
func (n *Network) lookupHost(addr netip.Addr) *Host {
	if i, ok := poolIndex(addr); ok && i < len(n.slab) {
		if h := n.slab[i].h; h != nil {
			return h
		}
	}
	return n.hostExtra[addr]
}

// serviceID resolves addr to its anycast service id.
func (n *Network) serviceID(addr netip.Addr) (int32, bool) {
	if i, ok := poolIndex(addr); ok && i < len(n.slab) && n.slab[i].svc != 0 {
		return n.slab[i].svc - 1, true
	}
	id, ok := n.svcExtra[addr]
	return id, ok
}

// slabbable reports whether pool offset i belongs in the flat slab:
// already covered, or close enough to the allocator's watermark that
// growing to it keeps the slab dense. Far-flung explicit addresses go
// to the extra maps instead (see slabSlack).
func (n *Network) slabbable(i int) bool {
	return i < len(n.slab) || i <= int(n.nextIPv4-poolBase)+slabSlack
}

// slabAt grows the slab to cover offset i and returns a pointer to its
// entry. Only called for slabbable offsets.
func (n *Network) slabAt(i int) *slabRef {
	if i >= len(n.slab) {
		grown := make([]slabRef, i+1)
		copy(grown, n.slab)
		n.slab = grown
	}
	return &n.slab[i]
}

// AllocAddr returns a fresh unique address from the simulator's
// private pool.
func (n *Network) AllocAddr() netip.Addr {
	for {
		v := n.nextIPv4
		n.nextIPv4++
		addr := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
		if n.lookupHost(addr) != nil {
			continue
		}
		if _, taken := n.serviceID(addr); taken {
			continue
		}
		return addr
	}
}

// AddHost registers a host at loc with an automatically allocated
// address.
func (n *Network) AddHost(loc geo.Coord) *Host {
	return n.AddHostAddr(n.AllocAddr(), loc)
}

// AddHostAddr registers a host with an explicit address; it panics if
// the address is taken (static experiment configs want to fail fast).
func (n *Network) AddHostAddr(addr netip.Addr, loc geo.Coord) *Host {
	if n.lookupHost(addr) != nil {
		panic(fmt.Sprintf("netsim: duplicate host %s", addr))
	}
	if _, taken := n.serviceID(addr); taken {
		panic(fmt.Sprintf("netsim: host %s collides with anycast service", addr))
	}
	h := &Host{Addr: addr, Loc: loc, id: int32(len(n.hosts)), net: n}
	n.hosts = append(n.hosts, h)
	if i, ok := poolIndex(addr); ok && n.slabbable(i) {
		n.slabAt(i).h = h
	} else {
		n.hostExtra[addr] = h
	}
	return h
}

// Host returns the registered host for addr.
func (n *Network) Host(addr netip.Addr) (*Host, bool) {
	h := n.lookupHost(addr)
	return h, h != nil
}

// AddAnycast registers addr as an anycast service answered by the
// given member hosts (each member keeps its own unicast address too).
func (n *Network) AddAnycast(addr netip.Addr, members []*Host) {
	if len(members) == 0 {
		panic("netsim: anycast service needs at least one member")
	}
	if n.lookupHost(addr) != nil {
		panic(fmt.Sprintf("netsim: anycast %s collides with host", addr))
	}
	if _, dup := n.serviceID(addr); dup {
		panic(fmt.Sprintf("netsim: duplicate anycast service %s", addr))
	}
	id := int32(len(n.svcAddrs))
	n.svcAddrs = append(n.svcAddrs, addr)
	n.svcMembers = append(n.svcMembers, append([]*Host(nil), members...))
	if i, ok := poolIndex(addr); ok && n.slabbable(i) {
		n.slabAt(i).svc = id + 1
	} else {
		n.svcExtra[addr] = id
	}
}

// AnycastMembers returns the member hosts behind an anycast address.
func (n *Network) AnycastMembers(addr netip.Addr) []*Host {
	id, ok := n.serviceID(addr)
	if !ok {
		return nil
	}
	return n.svcMembers[id]
}

// IsAnycast reports whether addr names an anycast service.
func (n *Network) IsAnycast(addr netip.Addr) bool {
	_, ok := n.serviceID(addr)
	return ok
}

// packIDs combines two dense ids order-sensitively into a storage key.
// Exact, not hashed: ids are unique, so distinct pairs can never
// collide — a collision would silently desync sharded and sequential
// keyed-RNG streams.
func packIDs(a, b int32) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// packIDsUnordered combines two dense ids order-insensitively.
func packIDsUnordered(a, b int32) uint64 {
	if b < a {
		a, b = b, a
	}
	return packIDs(a, b)
}

// Catchment resolves which member of an anycast service receives
// traffic from src. The decision is made once per (src, service) pair
// and then pinned: BGP routing is stable at the one-hour timescale of
// the measurements. With probability BGPNoise the choice is not the
// lowest-latency site, reflecting real catchment inefficiency.
func (n *Network) Catchment(src *Host, service netip.Addr) *Host {
	id, ok := n.serviceID(service)
	if !ok {
		return nil
	}
	return n.catchmentID(src, id, service)
}

func (n *Network) catchmentID(src *Host, id int32, service netip.Addr) *Host {
	key := packIDs(src.id, id)
	if h, ok := n.catch[key]; ok {
		return h
	}
	members := n.svcMembers[id]
	var best *Host
	if n.keyed {
		locs := make([]geo.Coord, len(members))
		for i, m := range members {
			locs[i] = m.Loc
		}
		pick := KeyedCatchmentPick(n.Model, n.BGPNoise,
			CatchmentKey(n.keyedSeed, src.Addr, service), src.Loc, locs)
		best = members[pick]
	} else {
		best = n.pickCatchment(src, members)
	}
	n.catch[key] = best
	return best
}

func (n *Network) pickCatchment(src *Host, members []*Host) *Host {
	if len(members) == 1 {
		return members[0]
	}
	type cand struct {
		h   *Host
		rtt float64
	}
	cands := make([]cand, len(members))
	for i, m := range members {
		d := src.Loc.DistanceKm(m.Loc)
		cands[i] = cand{m, n.Model.BaseRTTMs(d, n.Model.StretchMean)}
	}
	// Sort by RTT (selection sort: member counts are small).
	for i := range cands {
		minI := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].rtt < cands[minI].rtt {
				minI = j
			}
		}
		cands[i], cands[minI] = cands[minI], cands[i]
	}
	if n.rng.Float64() >= n.BGPNoise {
		return cands[0].h
	}
	// Noisy decision: usually the runner-up, occasionally anything.
	if n.rng.Float64() < 0.7 || len(cands) == 2 {
		return cands[1].h
	}
	return cands[2+n.rng.Intn(len(cands)-2)].h
}

// PathRTTms returns the base (jitter-free) RTT in milliseconds between
// two hosts, including both last-mile components. The per-pair stretch
// is sampled on first use and pinned.
func (n *Network) PathRTTms(a, b *Host) float64 {
	if a == b {
		return 0.2 // loopback
	}
	key := packIDsUnordered(a.id, b.id)
	d := a.Loc.DistanceKm(b.Loc)
	s, ok := n.stretch[key]
	if !ok {
		if n.keyed {
			s = n.Model.SampleStretch(n.kr.reset(StretchKey(n.keyedSeed, a.Addr, b.Addr)), d)
		} else {
			s = n.Model.SampleStretch(n.rng, d)
		}
		n.stretch[key] = s
	}
	return n.Model.BaseRTTMs(d, s) + a.LastMileMs + b.LastMileMs
}

// isMember reports whether h serves the anycast address svc.
func (n *Network) isMember(h *Host, svc netip.Addr) bool {
	id, ok := n.serviceID(svc)
	if !ok {
		return false
	}
	for _, m := range n.svcMembers[id] {
		if m == h {
			return true
		}
	}
	return false
}

// send routes one datagram. Anycast destinations first resolve to a
// concrete member via the catchment; the receiver still sees the
// anycast address as dst so it can answer from that identity.
func (n *Network) send(from *Host, srcAddr, dst netip.Addr, payload []byte) {
	n.sent.Inc()
	target := n.lookupHost(dst)
	serviceAddr := dst
	if target == nil {
		if id, isAny := n.serviceID(dst); isAny {
			target = n.catchmentID(from, id, dst)
		} else {
			n.dropped.Inc()
			return // unroutable: silently dropped, like the real thing
		}
	}
	if target.Down {
		n.dropped.Inc()
		return
	}
	// In keyed mode every stochastic decision for this packet comes
	// from one stream seeded by (seed, src, dst, pair packet counter),
	// so the fate of a packet depends only on its own pair's traffic
	// history — never on draws consumed by unrelated hosts.
	prng := n.rng
	if n.keyed {
		prng = n.packetRand(from, target)
	}
	if prng.Float64() < n.LossRate || prng.Float64() < from.LossRate || prng.Float64() < target.LossRate {
		n.dropped.Inc()
		return
	}
	if n.faults != nil && n.faults.Drop(from.Addr, target.Addr, n.Sim.Now()) {
		n.faultDrops.Inc()
		n.dropped.Inc()
		return
	}
	base := n.PathRTTms(from, target)
	oneWay := base/2 + n.Model.JitterMs(prng, base)/2
	delay := time.Duration(oneWay * float64(time.Millisecond))
	if n.faults != nil {
		delay = n.faults.Shape(from.Addr, target.Addr, n.Sim.Now(), delay)
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	src := srcAddr
	n.Sim.Schedule(delay, func() {
		if target.handler == nil || target.Down {
			n.dropped.Inc()
			return
		}
		target.handler(src, serviceAddr, buf)
	})
}
