package netsim

import (
	"net/netip"
	"testing"
	"time"

	"ritw/internal/geo"
	"ritw/internal/obs"
)

func newTestNet(seed int64) *Network {
	return NewNetwork(NewSimulator(), geo.DefaultPathModel(), seed)
}

func TestUnicastDelivery(t *testing.T) {
	n := newTestNet(1)
	a := n.AddHost(geo.MustSite("FRA").Coord)
	b := n.AddHost(geo.MustSite("DUB").Coord)

	var gotPayload []byte
	var gotSrc, gotDst netip.Addr
	var deliveredAt time.Duration
	b.Handle(func(src, dst netip.Addr, p []byte) {
		gotSrc, gotDst, gotPayload = src, dst, p
		deliveredAt = n.Sim.Now()
	})
	a.Send(b.Addr, []byte("ping"))
	n.Sim.Run()

	if string(gotPayload) != "ping" {
		t.Fatalf("payload = %q", gotPayload)
	}
	if gotSrc != a.Addr || gotDst != b.Addr {
		t.Errorf("src/dst = %v/%v", gotSrc, gotDst)
	}
	// FRA-DUB ≈ 1090 km: one-way delay should be a handful of ms.
	if deliveredAt < 2*time.Millisecond || deliveredAt > 60*time.Millisecond {
		t.Errorf("delivery at %v, want single-digit-to-tens ms", deliveredAt)
	}
}

func TestPayloadIsolation(t *testing.T) {
	n := newTestNet(1)
	a := n.AddHost(geo.MustSite("FRA").Coord)
	b := n.AddHost(geo.MustSite("AMS").Coord)
	var got []byte
	b.Handle(func(_, _ netip.Addr, p []byte) { got = p })
	buf := []byte("mutate-me")
	a.Send(b.Addr, buf)
	buf[0] = 'X' // sender reuses its buffer before delivery
	n.Sim.Run()
	if string(got) != "mutate-me" {
		t.Errorf("payload shared with sender buffer: %q", got)
	}
}

func TestRTTIncreasesWithDistance(t *testing.T) {
	n := newTestNet(2)
	fra := n.AddHost(geo.MustSite("FRA").Coord)
	dub := n.AddHost(geo.MustSite("DUB").Coord)
	syd := n.AddHost(geo.MustSite("SYD").Coord)
	near := n.PathRTTms(fra, dub)
	far := n.PathRTTms(fra, syd)
	if far <= near*3 {
		t.Errorf("RTT near=%v far=%v; far should dominate", near, far)
	}
	// Stability: the pinned stretch makes repeat calls identical.
	if n.PathRTTms(fra, syd) != far || n.PathRTTms(syd, fra) != far {
		t.Error("PathRTTms should be symmetric and pinned")
	}
}

func TestLastMileCharged(t *testing.T) {
	n := newTestNet(3)
	a := n.AddHost(geo.MustSite("FRA").Coord)
	b := n.AddHost(geo.MustSite("AMS").Coord)
	base := n.PathRTTms(a, b)
	c := n.AddHost(geo.MustSite("AMS").Coord)
	c.LastMileMs = 40
	// New pair, new stretch; compare indirectly with generous slack.
	withDSL := n.PathRTTms(a, c)
	if withDSL < base-20+40 {
		t.Errorf("last mile not charged: base=%v withDSL=%v", base, withDSL)
	}
}

func TestLoopbackRTT(t *testing.T) {
	n := newTestNet(4)
	a := n.AddHost(geo.MustSite("FRA").Coord)
	if rtt := n.PathRTTms(a, a); rtt > 1 {
		t.Errorf("loopback RTT = %v", rtt)
	}
}

func TestUnroutableAndDownHosts(t *testing.T) {
	n := newTestNet(5)
	a := n.AddHost(geo.MustSite("FRA").Coord)
	b := n.AddHost(geo.MustSite("AMS").Coord)
	delivered := 0
	b.Handle(func(_, _ netip.Addr, _ []byte) { delivered++ })

	a.Send(netip.MustParseAddr("203.0.113.99"), []byte("void")) // unroutable
	b.Down = true
	a.Send(b.Addr, []byte("to-down-host"))
	n.Sim.Run()
	if delivered != 0 {
		t.Errorf("delivered = %d, want 0", delivered)
	}
	// Host that goes down while a packet is in flight also drops it.
	b.Down = false
	a.Send(b.Addr, []byte("in-flight"))
	b.Down = true
	n.Sim.Run()
	if delivered != 0 {
		t.Errorf("in-flight packet delivered to down host")
	}
}

func TestPacketLoss(t *testing.T) {
	n := newTestNet(6)
	n.LossRate = 0.5
	a := n.AddHost(geo.MustSite("FRA").Coord)
	b := n.AddHost(geo.MustSite("AMS").Coord)
	delivered := 0
	b.Handle(func(_, _ netip.Addr, _ []byte) { delivered++ })
	const sent = 2000
	for i := 0; i < sent; i++ {
		a.Send(b.Addr, []byte{1})
	}
	n.Sim.Run()
	if delivered < sent/3 || delivered > 2*sent/3 {
		t.Errorf("delivered %d of %d with 50%% loss", delivered, sent)
	}
}

func TestPerHostLoss(t *testing.T) {
	n := newTestNet(7)
	a := n.AddHost(geo.MustSite("FRA").Coord)
	b := n.AddHost(geo.MustSite("AMS").Coord)
	b.LossRate = 1.0
	delivered := 0
	b.Handle(func(_, _ netip.Addr, _ []byte) { delivered++ })
	a.Send(b.Addr, []byte{1})
	n.Sim.Run()
	if delivered != 0 {
		t.Error("lossy host should drop everything at rate 1.0")
	}
}

func TestAllocAddrUnique(t *testing.T) {
	n := newTestNet(8)
	seen := map[netip.Addr]bool{}
	for i := 0; i < 1000; i++ {
		a := n.AllocAddr()
		if seen[a] {
			t.Fatalf("duplicate address %v", a)
		}
		seen[a] = true
		n.AddHostAddr(a, geo.Coord{})
	}
}

func TestAddHostAddrCollisionPanics(t *testing.T) {
	n := newTestNet(9)
	addr := netip.MustParseAddr("192.0.2.1")
	n.AddHostAddr(addr, geo.Coord{})
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddHostAddr should panic")
		}
	}()
	n.AddHostAddr(addr, geo.Coord{})
}

func TestAnycastNearestCatchment(t *testing.T) {
	n := newTestNet(10)
	n.BGPNoise = 0 // perfect routing for this test
	fra := n.AddHost(geo.MustSite("FRA").Coord)
	syd := n.AddHost(geo.MustSite("SYD").Coord)
	iad := n.AddHost(geo.MustSite("IAD").Coord)
	svc := netip.MustParseAddr("198.18.0.1")
	n.AddAnycast(svc, []*Host{fra, syd, iad})

	client := n.AddHost(geo.MustSite("AMS").Coord)
	got := n.Catchment(client, svc)
	if got != fra {
		t.Errorf("AMS client caught by %v, want FRA", got.Addr)
	}
	ocClient := n.AddHost(geo.MustSite("AKL").Coord)
	if got := n.Catchment(ocClient, svc); got != syd {
		t.Errorf("AKL client caught by %v, want SYD", got.Addr)
	}
	// Catchment is pinned.
	if n.Catchment(client, svc) != fra {
		t.Error("catchment not stable")
	}
}

func TestAnycastBGPNoise(t *testing.T) {
	n := newTestNet(11)
	n.BGPNoise = 1.0 // every decision is noisy
	fra := n.AddHost(geo.MustSite("FRA").Coord)
	syd := n.AddHost(geo.MustSite("SYD").Coord)
	svc := netip.MustParseAddr("198.18.0.2")
	n.AddAnycast(svc, []*Host{fra, syd})
	client := n.AddHost(geo.MustSite("AMS").Coord)
	if got := n.Catchment(client, svc); got != syd {
		t.Errorf("with full noise and 2 members the runner-up must win, got %v", got.Addr)
	}
}

func TestAnycastDelivery(t *testing.T) {
	n := newTestNet(12)
	n.BGPNoise = 0
	fra := n.AddHost(geo.MustSite("FRA").Coord)
	syd := n.AddHost(geo.MustSite("SYD").Coord)
	svc := netip.MustParseAddr("198.18.0.3")
	n.AddAnycast(svc, []*Host{fra, syd})

	var fraGot, sydGot int
	var seenDst netip.Addr
	fra.Handle(func(_, dst netip.Addr, _ []byte) { fraGot++; seenDst = dst })
	syd.Handle(func(_, _ netip.Addr, _ []byte) { sydGot++ })

	client := n.AddHost(geo.MustSite("AMS").Coord)
	client.Send(svc, []byte("q"))
	n.Sim.Run()
	if fraGot != 1 || sydGot != 0 {
		t.Fatalf("fra=%d syd=%d", fraGot, sydGot)
	}
	if seenDst != svc {
		t.Errorf("receiver saw dst %v, want anycast %v", seenDst, svc)
	}
}

func TestAnycastValidation(t *testing.T) {
	n := newTestNet(13)
	h := n.AddHost(geo.Coord{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty anycast should panic")
			}
		}()
		n.AddAnycast(netip.MustParseAddr("198.18.9.9"), nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("anycast colliding with host should panic")
			}
		}()
		n.AddAnycast(h.Addr, []*Host{h})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("host colliding with anycast should panic")
			}
		}()
		svc := netip.MustParseAddr("198.18.9.10")
		n.AddAnycast(svc, []*Host{h})
		n.AddHostAddr(svc, geo.Coord{})
	}()
	if !n.IsAnycast(netip.MustParseAddr("198.18.9.10")) {
		t.Error("IsAnycast should see registered service")
	}
	if n.IsAnycast(h.Addr) {
		t.Error("host is not anycast")
	}
	if got := n.AnycastMembers(netip.MustParseAddr("198.18.9.10")); len(got) != 1 {
		t.Errorf("members = %v", got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		n := newTestNet(99)
		a := n.AddHost(geo.MustSite("FRA").Coord)
		b := n.AddHost(geo.MustSite("NRT").Coord)
		var times []time.Duration
		b.Handle(func(src, _ netip.Addr, p []byte) {
			times = append(times, n.Sim.Now())
			if len(times) < 10 {
				b.Send(src, p)
			}
		})
		a.Handle(func(src, _ netip.Addr, p []byte) {
			a.Send(src, p)
		})
		a.Send(b.Addr, []byte("rt"))
		n.Sim.Run()
		return times
	}
	t1, t2 := run(), run()
	if len(t1) == 0 || len(t1) != len(t2) {
		t.Fatalf("lengths %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestHostLookup(t *testing.T) {
	n := newTestNet(14)
	h := n.AddHost(geo.Coord{})
	if got, ok := n.Host(h.Addr); !ok || got != h {
		t.Error("Host lookup failed")
	}
	if _, ok := n.Host(netip.MustParseAddr("203.0.113.1")); ok {
		t.Error("unknown host should not resolve")
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	n := newTestNet(1)
	a := n.AddHost(geo.MustSite("FRA").Coord)
	c := n.AddHost(geo.MustSite("AMS").Coord)
	c.Handle(func(_, _ netip.Addr, _ []byte) {})
	payload := []byte("benchmark-payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Send(c.Addr, payload)
		if n.Sim.Pending() > 1000 {
			n.Sim.Run()
		}
	}
	n.Sim.Run()
}

// TestNetworkMetrics asserts the obs wiring: events processed, packets
// sent, and packets dropped (unroutable, down host) are counted.
func TestNetworkMetrics(t *testing.T) {
	n := newTestNet(9)
	reg := obs.NewRegistry()
	n.SetMetrics(reg)
	a := n.AddHost(geo.MustSite("FRA").Coord)
	b := n.AddHost(geo.MustSite("AMS").Coord)
	delivered := 0
	b.Handle(func(_, _ netip.Addr, _ []byte) { delivered++ })

	a.Send(b.Addr, []byte("ok")) // delivered
	n.Sim.Run()
	a.Send(netip.MustParseAddr("192.0.2.99"), []byte("x")) // unroutable
	b.Down = true
	a.Send(b.Addr, []byte("y")) // dropped at down target
	n.Sim.Run()

	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	s := reg.Snapshot()
	if got := s.Counter("netsim_packets_sent_total"); got != 3 {
		t.Errorf("sent = %d, want 3", got)
	}
	if got := s.Counter("netsim_packets_dropped_total"); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	if got := s.Counter("netsim_events_total"); got < 1 {
		t.Errorf("events = %d, want at least the delivery event", got)
	}
}

// scriptedFaults is a FaultModel test double with programmable fate.
type scriptedFaults struct {
	dropAll bool
	addOne  time.Duration
	drops   int
	shaped  int
}

func (f *scriptedFaults) Drop(src, dst netip.Addr, now time.Duration) bool {
	if f.dropAll {
		f.drops++
		return true
	}
	return false
}

func (f *scriptedFaults) Shape(src, dst netip.Addr, now, oneWay time.Duration) time.Duration {
	f.shaped++
	return oneWay + f.addOne
}

func TestFaultModelDropsPackets(t *testing.T) {
	n := newTestNet(4)
	reg := obs.NewRegistry()
	n.SetMetrics(reg)
	a := n.AddHost(geo.MustSite("FRA").Coord)
	b := n.AddHost(geo.MustSite("AMS").Coord)
	delivered := 0
	b.Handle(func(_, _ netip.Addr, _ []byte) { delivered++ })

	fm := &scriptedFaults{dropAll: true}
	n.SetFaults(fm)
	for i := 0; i < 10; i++ {
		a.Send(b.Addr, []byte("x"))
	}
	n.Sim.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d packets through a drop-all fault model", delivered)
	}
	if fm.drops != 10 {
		t.Fatalf("fault model consulted %d times, want 10", fm.drops)
	}
	if got := reg.Counter("netsim_fault_drops_total").Value(); got != 10 {
		t.Fatalf("netsim_fault_drops_total = %d, want 10", got)
	}

	// Removing the model restores delivery.
	n.SetFaults(nil)
	a.Send(b.Addr, []byte("y"))
	n.Sim.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d after removing fault model, want 1", delivered)
	}
}

func TestFaultModelShapesDelay(t *testing.T) {
	baseline := func(seed int64, fm FaultModel) time.Duration {
		n := newTestNet(seed)
		a := n.AddHost(geo.MustSite("FRA").Coord)
		b := n.AddHost(geo.MustSite("AMS").Coord)
		var at time.Duration
		b.Handle(func(_, _ netip.Addr, _ []byte) { at = n.Sim.Now() })
		n.SetFaults(fm)
		a.Send(b.Addr, []byte("x"))
		n.Sim.Run()
		return at
	}
	plain := baseline(5, nil)
	shaped := baseline(5, &scriptedFaults{addOne: 250 * time.Millisecond})
	if shaped != plain+250*time.Millisecond {
		t.Fatalf("shaped delivery at %v, want %v + 250ms", shaped, plain)
	}
	// An inert model must leave the seeded run byte-identical.
	inert := baseline(5, &scriptedFaults{})
	if inert != plain {
		t.Fatalf("inert fault model changed delivery: %v vs %v", inert, plain)
	}
}

// TestSparseExplicitAddrSkipsSlab pins the slab density guard: one
// explicit registration high in the 10/8 pool must not balloon the
// flat slab to cover its offset — it parks in the extra maps instead
// and stays fully routable.
func TestSparseExplicitAddrSkipsSlab(t *testing.T) {
	n := newTestNet(3)
	near := n.AddHost(geo.MustSite("FRA").Coord)
	far := netip.MustParseAddr("10.255.0.1")
	h := n.AddHostAddr(far, geo.MustSite("AMS").Coord)
	if len(n.slab) > slabSlack+2 {
		t.Fatalf("slab grew to %d entries for one sparse host", len(n.slab))
	}
	if got, ok := n.Host(far); !ok || got != h {
		t.Fatal("sparse host not resolvable")
	}
	if dup := func() (p bool) {
		defer func() { p = recover() != nil }()
		n.AddHostAddr(far, geo.MustSite("AMS").Coord)
		return
	}(); !dup {
		t.Fatal("duplicate sparse host not detected")
	}

	anyAddr := netip.MustParseAddr("10.254.0.1")
	n.AddAnycast(anyAddr, []*Host{h})
	if len(n.slab) > slabSlack+2 {
		t.Fatalf("slab grew to %d entries after sparse anycast", len(n.slab))
	}
	if !n.IsAnycast(anyAddr) {
		t.Fatal("sparse anycast not resolvable")
	}

	// Packets still route both ways through the map fallback.
	var delivered int
	h.Handle(func(_, _ netip.Addr, _ []byte) { delivered++ })
	near.Send(far, []byte("x"))
	near.Send(anyAddr, []byte("y"))
	n.Sim.Run()
	if delivered != 2 {
		t.Fatalf("delivered %d packets to sparse addresses, want 2", delivered)
	}
}
