package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"

	"ritw/internal/geo"
)

// This file implements the network's keyed-randomness mode, the
// foundation of the sharded simulation engine (DESIGN.md §8.4).
//
// In the classic mode every stochastic decision — per-packet loss,
// jitter, per-pair stretch, anycast catchment noise — draws from one
// sequential RNG stream, so the outcome of packet N depends on how
// many draws every *other* packet consumed before it. That coupling is
// harmless in a single event loop but fatal for sharding: removing an
// unrelated vantage point shifts the stream and changes every
// subsequent decision.
//
// Keyed mode severs the coupling. Every decision derives its
// randomness from a splitmix64 stream seeded by a stable key:
//
//	per-packet:  (seed, src, dst, n)   n = packets sent src→dst so far
//	per-pair:    (seed, salt, a, b)    unordered endpoint pair
//	catchment:   (seed, salt, src, service)
//
// Within one (src, dst) pair the packet sequence is causally ordered —
// both endpoints live in the same shard by construction — so the
// counter n is identical no matter how the rest of the population is
// partitioned. That is the whole determinism argument: a vantage
// point's packet fates depend only on its own traffic history, never
// on event interleaving across shards, which is what makes a sharded
// run byte-identical to the sequential one at any shard count.

// Salts separate the keyed sub-streams. Arbitrary odd constants.
const (
	saltPacket    = 0x9e3779b97f4a7c15
	saltStretch   = 0xc2b2ae3d27d4eb4f
	saltCatchment = 0x165667b19e3779f9
	saltMix       = 0x27d4eb2f165667c5
)

// mix64 is the splitmix64 finalizer: full-avalanche bit mixing, the
// same construction internal/faults uses for subset selection.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// addrBits folds an address into 64 bits. Simulated hosts are IPv4
// (AllocAddr hands out 10.x addresses), packed directly; other
// lengths are mixed byte-wise so the function stays total.
func addrBits(a netip.Addr) uint64 {
	if a.Is4() {
		b := a.As4()
		return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	}
	b := a.As16()
	var h uint64
	for _, x := range b {
		h = mix64(h ^ uint64(x))
	}
	return h
}

// pairBits combines two addresses order-sensitively.
func pairBits(src, dst netip.Addr) uint64 {
	return mix64(addrBits(src)<<32 | addrBits(dst)&0xffffffff ^ addrBits(dst)>>32<<16 ^ addrBits(src)>>32)
}

// PacketKey derives the keyed-stream seed for the n-th packet from src
// to dst under the given network seed.
func PacketKey(seed uint64, src, dst netip.Addr, n uint64) uint64 {
	return mix64(mix64(seed^saltPacket^pairBits(src, dst)) ^ n)
}

// pairKeyBits combines two addresses order-insensitively (for per-pair
// pinned state like stretch).
func pairKeyBits(a, b netip.Addr) uint64 {
	if b.Less(a) {
		a, b = b, a
	}
	return pairBits(a, b)
}

// StretchKey derives the keyed-stream seed for the pinned stretch of
// the unordered pair (a, b).
func StretchKey(seed uint64, a, b netip.Addr) uint64 {
	return mix64(seed ^ saltStretch ^ pairKeyBits(a, b))
}

// CatchmentKey derives the keyed-stream seed for the catchment
// decision of traffic from src to the anycast service address.
func CatchmentKey(seed uint64, src, service netip.Addr) uint64 {
	return mix64(seed ^ saltCatchment ^ pairBits(src, service))
}

// MixKey derives the keyed-stream seed for the policy-mix assignment
// of the named entity (a resolver's stable population name) under the
// given run seed. Keying by name — never by index, address, or shard —
// makes the assignment a pure function of (seed, name): it survives
// any re-partitioning of the population across shards, workers, or
// schedulers, which is what keeps mixed-fleet datasets byte-identical
// at every layout.
func MixKey(seed uint64, entity string) uint64 {
	// FNV-64a over the name, finalized through the mix stream's salt.
	h := uint64(14695981039346656037)
	for i := 0; i < len(entity); i++ {
		h ^= uint64(entity[i])
		h *= 1099511628211
	}
	return mix64(seed ^ saltMix ^ h)
}

// sm64 is a splitmix64 generator implementing rand.Source64, so the
// stdlib's Float64/NormFloat64/Intn distributions can run on a keyed
// stream. Resetting state re-seeds it in place with zero allocation.
type sm64 struct{ state uint64 }

func (s *sm64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

func (s *sm64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *sm64) Seed(seed int64) { s.state = uint64(seed) }

// keyedRand is a reusable rand.Rand over an sm64 source; reset() makes
// it draw the deterministic stream for one key.
type keyedRand struct {
	src sm64
	rng *rand.Rand
}

func newKeyedRand() *keyedRand {
	kr := &keyedRand{}
	kr.rng = rand.New(&kr.src)
	return kr
}

func (kr *keyedRand) reset(key uint64) *rand.Rand {
	kr.src.state = key
	return kr.rng
}

// UseKeyedRand switches the network to keyed randomness under seed.
// It must be called before any traffic flows or catchment/stretch
// state pins; the classic sequential RNG (the constructor's seed) is
// no longer consulted afterwards. Measurement runs always enable this:
// it is what keeps a sharded run byte-identical to a sequential one.
func (n *Network) UseKeyedRand(seed uint64) {
	n.keyed = true
	n.keyedSeed = seed
	if n.kr == nil {
		n.kr = newKeyedRand()
		n.pairCtr = make(map[uint64]uint64)
	}
}

// Keyed reports whether the network draws keyed randomness.
func (n *Network) Keyed() bool { return n.keyed }

// packetRand returns the keyed RNG positioned for the next packet from
// src to dst, advancing the pair's packet counter. The counter map is
// keyed by the packed dense-id pair — exact (ids are unique), not a
// hash: a collision between pairs that land in different shards would
// silently desync the sharded and sequential streams. The RNG key
// itself still derives from the addresses, so id assignment order can
// never change a draw.
func (n *Network) packetRand(src, dst *Host) *rand.Rand {
	pk := packIDs(src.id, dst.id)
	ctr := n.pairCtr[pk]
	n.pairCtr[pk] = ctr + 1
	return n.kr.reset(PacketKey(n.keyedSeed, src.Addr, dst.Addr, ctr))
}

// PinCatchment fixes the anycast catchment decision for traffic from
// src to service: member receives it. Experiment planners use this to
// pre-compute catchments (with KeyedCatchmentPick) before the
// population is partitioned into shards, so every shard — and the
// sequential run — agrees on the mapping without consuming RNG.
// member must already be registered as a member of service, and the
// src host must be registered before pinning (catchments are stored
// under dense ids).
func (n *Network) PinCatchment(src, service netip.Addr, member *Host) {
	if !n.isMember(member, service) {
		panic("netsim: PinCatchment member does not serve the service")
	}
	srcHost := n.lookupHost(src)
	if srcHost == nil {
		panic(fmt.Sprintf("netsim: PinCatchment source %s not registered", src))
	}
	id, _ := n.serviceID(service)
	n.catch[packIDs(srcHost.id, id)] = member
}

// KeyedCatchmentPick picks which member of an anycast service receives
// traffic from a source at srcLoc, using only key for randomness. It
// mirrors the classic catchment decision — nearest site by model RTT,
// except with probability noise the choice is suboptimal — but its
// outcome depends only on (key, locations), never on draw order, so
// planners can pre-compute it and shards can replay it. Returns an
// index into memberLocs.
func KeyedCatchmentPick(model geo.PathModel, noise float64, key uint64, srcLoc geo.Coord, memberLocs []geo.Coord) int {
	if len(memberLocs) == 1 {
		return 0
	}
	type cand struct {
		idx int
		rtt float64
	}
	cands := make([]cand, len(memberLocs))
	for i, loc := range memberLocs {
		d := srcLoc.DistanceKm(loc)
		cands[i] = cand{i, model.BaseRTTMs(d, model.StretchMean)}
	}
	// Sort by RTT (selection sort: member counts are small). Ties keep
	// member order, matching the classic path.
	for i := range cands {
		minI := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].rtt < cands[minI].rtt {
				minI = j
			}
		}
		cands[i], cands[minI] = cands[minI], cands[i]
	}
	src := sm64{state: key}
	rng := rand.New(&src)
	if rng.Float64() >= noise {
		return cands[0].idx
	}
	// Noisy decision: usually the runner-up, occasionally anything.
	if rng.Float64() < 0.7 || len(cands) == 2 {
		return cands[1].idx
	}
	return cands[2+rng.Intn(len(cands)-2)].idx
}
