package netsim

import (
	"fmt"
	"time"
)

// Scheduler is the simulator's event queue: the pluggable core of the
// discrete-event executor. Both implementations guarantee the exact
// same execution order — strictly ascending (at, seq) — so swapping
// one for the other changes wall-clock time only, never a single
// simulated outcome. That is the API's contract: scheduler choice is a
// performance knob, not a science knob, and the differential tests
// (sched_test.go, measure's TestWheelMatchesHeap*) pin it byte for
// byte.
//
// Schedulers are single-goroutine structures, like the Simulator that
// owns them.
type Scheduler interface {
	// Push enqueues fn at absolute virtual time at. seq is the
	// simulator's monotone scheduling counter and breaks ties between
	// events at the same instant (FIFO by scheduling order).
	Push(at time.Duration, seq uint64, fn func())
	// PopLE removes and returns the earliest event — smallest at, then
	// smallest seq — whose timestamp is <= limit. ok is false when no
	// such event is pending (the queue may still hold later events).
	PopLE(limit time.Duration) (at time.Duration, fn func(), ok bool)
	// Len returns the number of pending events.
	Len() int
}

// SchedulerKind selects a Scheduler implementation. The zero value is
// the binary-heap reference, so zero-valued configs keep today's
// behaviour.
type SchedulerKind uint8

const (
	// SchedHeap is the reference implementation: a flat generic binary
	// min-heap. O(log n) per operation, no per-event allocation (the
	// container/heap any-boxing of earlier versions is gone), simplest
	// possible code. The default.
	SchedHeap SchedulerKind = iota
	// SchedWheel is the hierarchical timing wheel: O(1) amortized per
	// operation regardless of queue depth, zero allocations on the
	// steady-state per-packet path. Packet timers are bounded and
	// near-future events dominate simulation workloads, which is
	// exactly the profile wheels are built for. Results are
	// byte-identical to SchedHeap.
	SchedWheel
)

// String returns the kind's flag spelling.
func (k SchedulerKind) String() string {
	switch k {
	case SchedHeap:
		return "heap"
	case SchedWheel:
		return "wheel"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", uint8(k))
	}
}

// ParseSchedulerKind parses a flag value ("heap" or "wheel").
func ParseSchedulerKind(s string) (SchedulerKind, error) {
	switch s {
	case "heap":
		return SchedHeap, nil
	case "wheel":
		return SchedWheel, nil
	}
	return 0, fmt.Errorf("netsim: unknown scheduler %q (want heap or wheel)", s)
}

// NewScheduler constructs a scheduler of the given kind.
func NewScheduler(k SchedulerKind) Scheduler {
	switch k {
	case SchedWheel:
		return newWheelScheduler()
	default:
		return newHeapScheduler()
	}
}
