package netsim

import "time"

// event is one queued callback. Stored by value everywhere — in heap
// nodes, wheel slots and the wheel's due buffer — so the schedulers
// never allocate per event (the closure a caller passes is the only
// allocation, and it belongs to the caller).
type event struct {
	at  time.Duration
	seq uint64 // FIFO tiebreak for equal timestamps
	fn  func()
}

// eventLess is the one total order every scheduler implements:
// ascending time, scheduling order within an instant.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPushEvent and heapPopEvent implement a plain binary min-heap on
// a value slice. Hand-rolled instead of container/heap because the
// stdlib interface boxes every element through `any`, which costs an
// allocation per Push/Pop — on a path run once per simulated packet,
// that boxing dominated the heap's own work. The same helpers back the
// wheel's per-tick due buffer.
func heapPushEvent(h *[]event, ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func heapPopEvent(h *[]event) event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the closure for GC
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && eventLess(s[l], s[min]) {
			min = l
		}
		if r < n && eventLess(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// heapScheduler is the reference Scheduler: one flat binary min-heap.
type heapScheduler struct {
	h []event
}

func newHeapScheduler() *heapScheduler { return &heapScheduler{} }

// Push implements Scheduler.
func (s *heapScheduler) Push(at time.Duration, seq uint64, fn func()) {
	heapPushEvent(&s.h, event{at: at, seq: seq, fn: fn})
}

// PopLE implements Scheduler.
func (s *heapScheduler) PopLE(limit time.Duration) (time.Duration, func(), bool) {
	if len(s.h) == 0 || s.h[0].at > limit {
		return 0, nil, false
	}
	ev := heapPopEvent(&s.h)
	return ev.at, ev.fn, true
}

// Len implements Scheduler.
func (s *heapScheduler) Len() int { return len(s.h) }
