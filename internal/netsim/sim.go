// Package netsim is the discrete-event network simulator that stands
// in for the Internet in the reproduced measurements. It provides a
// virtual clock with an event queue, hosts placed at geographic
// coordinates, point-to-point latency sampled from the geo path model,
// packet loss, and IP anycast services with BGP-like catchment noise.
//
// Everything runs single-threaded inside Run, so protocol engines
// built on it need no locking; the same engines also run over real
// sockets via the small transport interfaces they accept.
package netsim

import (
	"context"
	"time"

	"ritw/internal/obs"
)

// Simulator is a deterministic discrete-event executor with a virtual
// clock. The zero value is not usable; create one with NewSimulator
// (binary-heap event queue) or NewSimulatorKind (choice of Scheduler).
type Simulator struct {
	now    time.Duration
	sched  Scheduler
	nextID uint64
	events *obs.Counter
}

// SetMetrics counts processed events as netsim_events_total in r.
// Metrics never influence scheduling, so instrumented runs stay
// byte-identical to bare ones.
func (s *Simulator) SetMetrics(r *obs.Registry) {
	s.events = r.Counter("netsim_events_total")
}

// NewSimulator returns an empty simulator at virtual time zero, using
// the reference binary-heap scheduler.
func NewSimulator() *Simulator {
	return NewSimulatorKind(SchedHeap)
}

// NewSimulatorKind returns an empty simulator at virtual time zero
// using the given scheduler. The choice affects wall-clock performance
// only: both schedulers execute events in the identical order, so any
// seeded run produces byte-identical results under either.
func NewSimulatorKind(k SchedulerKind) *Simulator {
	return &Simulator{sched: NewScheduler(k)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Schedule runs fn after delay d of virtual time. Events scheduled for
// the same instant run in scheduling order, keeping runs reproducible.
// A negative delay is treated as zero.
func (s *Simulator) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.nextID++
	s.sched.Push(s.now+d, s.nextID, fn)
}

// ScheduleAt runs fn at absolute virtual time t (clamped to now).
func (s *Simulator) ScheduleAt(t time.Duration, fn func()) {
	s.Schedule(t-s.now, fn)
}

// maxDeadline drains every event regardless of timestamp.
const maxDeadline = time.Duration(1<<63 - 1)

// Run executes events until the queue drains and returns the final
// virtual time.
func (s *Simulator) Run() time.Duration {
	for s.step(maxDeadline) {
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline, leaves later
// events queued, and advances the clock to deadline.
func (s *Simulator) RunUntil(deadline time.Duration) {
	for s.step(deadline) {
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// ctxCheckStride is how many events RunUntilContext executes between
// cancellation checks: large enough that the select never shows up in
// profiles, small enough that cancellation lands within microseconds.
const ctxCheckStride = 1024

// RunUntilContext is RunUntil with cooperative cancellation: it polls
// ctx every ctxCheckStride events and abandons the run with ctx.Err()
// when cancelled. A nil return means the simulation reached deadline.
// Cancellation leaves the simulator mid-run; callers must discard it.
func (s *Simulator) RunUntilContext(ctx context.Context, deadline time.Duration) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		ran := false
		for i := 0; i < ctxCheckStride; i++ {
			if !s.step(deadline) {
				break
			}
			ran = true
		}
		if !ran {
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.sched.Len() }

// step pops and runs the earliest event at or before deadline,
// reporting whether one existed.
func (s *Simulator) step(deadline time.Duration) bool {
	at, fn, ok := s.sched.PopLE(deadline)
	if !ok {
		return false
	}
	if at > s.now {
		s.now = at
	}
	s.events.Inc()
	fn()
	return true
}
