// Package netsim is the discrete-event network simulator that stands
// in for the Internet in the reproduced measurements. It provides a
// virtual clock with an event queue, hosts placed at geographic
// coordinates, point-to-point latency sampled from the geo path model,
// packet loss, and IP anycast services with BGP-like catchment noise.
//
// Everything runs single-threaded inside Run, so protocol engines
// built on it need no locking; the same engines also run over real
// sockets via the small transport interfaces they accept.
package netsim

import (
	"container/heap"
	"context"
	"time"

	"ritw/internal/obs"
)

// Simulator is a deterministic discrete-event executor with a virtual
// clock. The zero value is not usable; create one with NewSimulator.
type Simulator struct {
	now    time.Duration
	queue  eventHeap
	nextID uint64
	events *obs.Counter
}

// SetMetrics counts processed events as netsim_events_total in r.
// Metrics never influence scheduling, so instrumented runs stay
// byte-identical to bare ones.
func (s *Simulator) SetMetrics(r *obs.Registry) {
	s.events = r.Counter("netsim_events_total")
}

// NewSimulator returns an empty simulator at virtual time zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Schedule runs fn after delay d of virtual time. Events scheduled for
// the same instant run in scheduling order, keeping runs reproducible.
// A negative delay is treated as zero.
func (s *Simulator) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.nextID++
	heap.Push(&s.queue, event{at: s.now + d, seq: s.nextID, fn: fn})
}

// ScheduleAt runs fn at absolute virtual time t (clamped to now).
func (s *Simulator) ScheduleAt(t time.Duration, fn func()) {
	s.Schedule(t-s.now, fn)
}

// Run executes events until the queue drains and returns the final
// virtual time.
func (s *Simulator) Run() time.Duration {
	for len(s.queue) > 0 {
		s.step()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline, leaves later
// events queued, and advances the clock to deadline.
func (s *Simulator) RunUntil(deadline time.Duration) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// ctxCheckStride is how many events RunUntilContext executes between
// cancellation checks: large enough that the select never shows up in
// profiles, small enough that cancellation lands within microseconds.
const ctxCheckStride = 1024

// RunUntilContext is RunUntil with cooperative cancellation: it polls
// ctx every ctxCheckStride events and abandons the run with ctx.Err()
// when cancelled. A nil return means the simulation reached deadline.
// Cancellation leaves the simulator mid-run; callers must discard it.
func (s *Simulator) RunUntilContext(ctx context.Context, deadline time.Duration) error {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		for i := 0; i < ctxCheckStride && len(s.queue) > 0 && s.queue[0].at <= deadline; i++ {
			s.step()
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

func (s *Simulator) step() {
	ev := heap.Pop(&s.queue).(event)
	if ev.at > s.now {
		s.now = ev.at
	}
	s.events.Inc()
	ev.fn()
}

// event is one queued callback.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tiebreak for equal timestamps
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
