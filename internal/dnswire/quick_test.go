package dnswire

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

// genName builds a random valid name from the rng.
func genName(rng *rand.Rand) Name {
	depth := rng.Intn(5)
	n := Root
	for i := 0; i < depth; i++ {
		lab := make([]byte, 1+rng.Intn(12))
		for j := range lab {
			lab[j] = byte('a' + rng.Intn(26))
		}
		child, err := n.Child(string(lab))
		if err != nil {
			return n
		}
		n = child
	}
	return n
}

// genRData builds random rdata of a random supported type.
func genRData(rng *rand.Rand) RData {
	switch rng.Intn(8) {
	case 0:
		var b [4]byte
		rng.Read(b[:])
		return A{Addr: netip.AddrFrom4(b)}
	case 1:
		var b [16]byte
		rng.Read(b[:])
		return AAAA{Addr: netip.AddrFrom16(b)}
	case 2:
		return NS{Host: genName(rng)}
	case 3:
		return CNAME{Target: genName(rng)}
	case 4:
		return MX{Preference: uint16(rng.Intn(1 << 16)), Host: genName(rng)}
	case 5:
		strs := make([]string, 1+rng.Intn(3))
		for i := range strs {
			b := make([]byte, rng.Intn(40))
			rng.Read(b)
			strs[i] = string(b)
		}
		return TXT{Strings: strs}
	case 6:
		return SOA{
			MName: genName(rng), RName: genName(rng),
			Serial: rng.Uint32(), Refresh: rng.Uint32(), Retry: rng.Uint32(),
			Expire: rng.Uint32(), Minimum: rng.Uint32(),
		}
	default:
		b := make([]byte, rng.Intn(30))
		rng.Read(b)
		return Raw{RRType: Type(60000 + rng.Intn(100)), Data: b}
	}
}

// genMessage builds a random message.
func genMessage(rng *rand.Rand) *Message {
	m := &Message{Header: Header{
		ID:                 uint16(rng.Intn(1 << 16)),
		Response:           rng.Intn(2) == 0,
		Authoritative:      rng.Intn(2) == 0,
		Truncated:          rng.Intn(2) == 0,
		RecursionDesired:   rng.Intn(2) == 0,
		RecursionAvailable: rng.Intn(2) == 0,
		Opcode:             Opcode(rng.Intn(3)),
		RCode:              RCode(rng.Intn(6)),
	}}
	m.Questions = append(m.Questions, Question{
		Name: genName(rng), Type: Type(1 + rng.Intn(40)), Class: ClassINET,
	})
	for _, sec := range []*[]RR{&m.Answers, &m.Authority, &m.Additional} {
		for i := 0; i < rng.Intn(4); i++ {
			*sec = append(*sec, RR{
				Name:  genName(rng),
				Class: ClassINET,
				TTL:   rng.Uint32() % 1000000,
				Data:  genRData(rng),
			})
		}
	}
	return m
}

// rdataEqual compares decoded rdata against the original.
func rdataEqual(a, b RData) bool {
	switch x := a.(type) {
	case NS:
		y, ok := b.(NS)
		return ok && x.Host.Equal(y.Host)
	case CNAME:
		y, ok := b.(CNAME)
		return ok && x.Target.Equal(y.Target)
	case PTR:
		y, ok := b.(PTR)
		return ok && x.Target.Equal(y.Target)
	case MX:
		y, ok := b.(MX)
		return ok && x.Preference == y.Preference && x.Host.Equal(y.Host)
	case SOA:
		y, ok := b.(SOA)
		return ok && x.MName.Equal(y.MName) && x.RName.Equal(y.RName) &&
			x.Serial == y.Serial && x.Refresh == y.Refresh && x.Retry == y.Retry &&
			x.Expire == y.Expire && x.Minimum == y.Minimum
	default:
		return reflect.DeepEqual(a, b)
	}
}

// TestMessagePackUnpackProperty: any generated message survives a
// Pack/Unpack round trip with all fields intact.
func TestMessagePackUnpackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := genMessage(rng)
		wire, err := m.Pack()
		if err != nil {
			t.Logf("pack: %v", err)
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Logf("unpack: %v", err)
			return false
		}
		if got.Header != m.Header {
			t.Logf("header: %+v vs %+v", got.Header, m.Header)
			return false
		}
		if len(got.Questions) != len(m.Questions) ||
			!got.Questions[0].Name.Equal(m.Questions[0].Name) ||
			got.Questions[0].Type != m.Questions[0].Type {
			return false
		}
		secs := [][2][]RR{
			{got.Answers, m.Answers}, {got.Authority, m.Authority}, {got.Additional, m.Additional},
		}
		for _, s := range secs {
			if len(s[0]) != len(s[1]) {
				return false
			}
			for i := range s[0] {
				g, w := s[0][i], s[1][i]
				if !g.Name.Equal(w.Name) || g.TTL != w.TTL || g.Type() != w.Type() {
					return false
				}
				if !rdataEqual(w.Data, g.Data) {
					t.Logf("rdata %T mismatch: %v vs %v", w.Data, w.Data, g.Data)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPackIsDeterministic: packing the same message twice yields
// identical bytes (compression must not depend on map iteration).
func TestPackIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		m := genMessage(rng)
		a, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatal("pack not deterministic")
		}
	}
}

// TestUnpackRepackStable: unpack(pack(m)) packs to the same bytes
// again — the codec is idempotent after one normalization.
func TestUnpackRepackStable(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		m := genMessage(rng)
		w1, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		m2, err := Unpack(w1)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := m2.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if string(w1) != string(w2) {
			t.Fatalf("repack differs at case %d:\n%x\n%x", i, w1, w2)
		}
	}
}
