package dnswire

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseName(t *testing.T) {
	cases := []struct {
		in   string
		want string
		err  bool
	}{
		{"", ".", false},
		{".", ".", false},
		{"nl", "nl.", false},
		{"example.nl", "example.nl.", false},
		{"example.nl.", "example.nl.", false},
		{"a.b.c.d.e.f", "a.b.c.d.e.f.", false},
		{"www..example.nl", "", true},
		{strings.Repeat("a", 64) + ".nl", "", true},
		{strings.Repeat("a", 63) + ".nl", strings.Repeat("a", 63) + ".nl.", false},
	}
	for _, c := range cases {
		n, err := ParseName(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseName(%q) expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseName(%q) error: %v", c.in, err)
			continue
		}
		if n.String() != c.want {
			t.Errorf("ParseName(%q) = %q, want %q", c.in, n.String(), c.want)
		}
	}
}

func TestParseNameTooLong(t *testing.T) {
	// 5 labels of 63 bytes = 4*64+... wire length > 255.
	lab := strings.Repeat("x", 63)
	long := strings.Join([]string{lab, lab, lab, lab}, ".")
	if _, err := ParseName(long); err != ErrNameTooLong {
		t.Errorf("expected ErrNameTooLong, got %v", err)
	}
}

func TestMustParseNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseName should panic on bad input")
		}
	}()
	MustParseName("bad..name")
}

func TestNameEqualCaseInsensitive(t *testing.T) {
	a := MustParseName("Example.NL")
	b := MustParseName("example.nl")
	if !a.Equal(b) {
		t.Error("names should compare case-insensitively")
	}
	if a.Key() != b.Key() {
		t.Error("keys should be identical")
	}
	if a.String() != "Example.NL." {
		t.Errorf("original case should be preserved, got %q", a.String())
	}
	c := MustParseName("example.com")
	if a.Equal(c) {
		t.Error("different names should not be equal")
	}
	if a.Equal(MustParseName("www.example.nl")) {
		t.Error("different label counts should not be equal")
	}
}

func TestNameHierarchy(t *testing.T) {
	n := MustParseName("www.example.nl")
	if n.NumLabels() != 3 {
		t.Errorf("NumLabels = %d, want 3", n.NumLabels())
	}
	if n.Parent().String() != "example.nl." {
		t.Errorf("Parent = %q", n.Parent().String())
	}
	if !Root.Parent().IsRoot() {
		t.Error("parent of root should be root")
	}
	if !n.IsSubdomainOf(MustParseName("example.nl")) {
		t.Error("www.example.nl should be under example.nl")
	}
	if !n.IsSubdomainOf(MustParseName("EXAMPLE.nl")) {
		t.Error("subdomain check should be case-insensitive")
	}
	if !n.IsSubdomainOf(n) {
		t.Error("a name is a subdomain of itself")
	}
	if !n.IsSubdomainOf(Root) {
		t.Error("everything is under root")
	}
	if n.IsSubdomainOf(MustParseName("example.com")) {
		t.Error("www.example.nl is not under example.com")
	}
	if Root.IsSubdomainOf(n) {
		t.Error("root is not under www.example.nl")
	}
}

func TestNameChild(t *testing.T) {
	n := MustParseName("example.nl")
	c, err := n.Child("www")
	if err != nil || c.String() != "www.example.nl." {
		t.Errorf("Child = %v, %v", c, err)
	}
	if _, err := n.Child(""); err != ErrEmptyLabel {
		t.Errorf("empty child error = %v", err)
	}
	if _, err := n.Child(strings.Repeat("a", 64)); err != ErrLabelTooLong {
		t.Errorf("long child error = %v", err)
	}
}

func TestNameLabelsCopy(t *testing.T) {
	n := MustParseName("a.b.c")
	labs := n.Labels()
	labs[0] = "mutated"
	if n.String() != "a.b.c." {
		t.Error("Labels() must return a copy")
	}
}

func TestNameWireRoundTrip(t *testing.T) {
	for _, s := range []string{".", "nl.", "example.nl.", "a.very.deep.chain.of.labels.example.nl."} {
		n := MustParseName(s)
		wire := n.appendWire(nil)
		got, off, err := decodeName(wire, 0)
		if err != nil {
			t.Fatalf("decode %q: %v", s, err)
		}
		if off != len(wire) {
			t.Errorf("decode %q consumed %d of %d", s, off, len(wire))
		}
		if !got.Equal(n) {
			t.Errorf("round trip %q = %q", s, got.String())
		}
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	c := newCompressor(0)
	n1 := MustParseName("www.example.nl")
	n2 := MustParseName("mail.example.nl")
	n3 := MustParseName("www.example.nl")

	var msg []byte
	msg = c.appendName(msg, n1)
	firstLen := len(msg)
	msg = c.appendName(msg, n2)
	msg = c.appendName(msg, n3)
	// The third name should be a bare 2-byte pointer.
	if len(msg)-firstLen >= firstLen+len(msg) {
		t.Fatal("bogus arithmetic")
	}
	d1, off, err := decodeName(msg, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, off, err := decodeName(msg, off)
	if err != nil {
		t.Fatal(err)
	}
	d3, off, err := decodeName(msg, off)
	if err != nil {
		t.Fatal(err)
	}
	if off != len(msg) {
		t.Errorf("consumed %d of %d", off, len(msg))
	}
	if !d1.Equal(n1) || !d2.Equal(n2) || !d3.Equal(n3) {
		t.Errorf("round trip: %v %v %v", d1, d2, d3)
	}
	// n3 must have been compressed to exactly 2 bytes.
	n3Len := len(msg) - (firstLen + len(c.appendName(nil, n2)))
	_ = n3Len // pointer length asserted by total size below
	if want := firstLen + (2 + 5 + 2) + 2; len(msg) != want {
		// n2 = "mail"(5) + pointer(2) after its first label... recompute:
		// n1: 4+www +1... just assert it's much smaller than uncompressed.
		uncompressed := n1.wireLen() + n2.wireLen() + n3.wireLen()
		if len(msg) >= uncompressed {
			t.Errorf("no compression happened: %d >= %d", len(msg), uncompressed)
		}
	}
}

func TestDecodeNameLoopDetection(t *testing.T) {
	// A pointer that points at itself.
	msg := []byte{0xC0, 0x00}
	if _, _, err := decodeName(msg, 0); err != ErrCompressionLoop {
		t.Errorf("self pointer: err = %v, want loop", err)
	}
	// Two pointers pointing at each other.
	msg = []byte{0xC0, 0x02, 0xC0, 0x00}
	if _, _, err := decodeName(msg, 2); err != ErrCompressionLoop {
		t.Errorf("mutual pointers: err = %v, want loop", err)
	}
	// Forward pointer.
	msg = []byte{0xC0, 0x04, 0x00, 0x00, 0x01, 'a', 0x00}
	if _, _, err := decodeName(msg, 0); err != ErrCompressionLoop {
		t.Errorf("forward pointer: err = %v, want loop", err)
	}
}

func TestDecodeNameTruncation(t *testing.T) {
	cases := [][]byte{
		{},            // empty
		{3, 'a', 'b'}, // label runs off the end
		{0xC0},        // half a pointer
		{1, 'a'},      // missing terminator
	}
	for i, msg := range cases {
		if _, _, err := decodeName(msg, 0); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDecodeNameReservedLabelType(t *testing.T) {
	msg := []byte{0x80, 0x00}
	if _, _, err := decodeName(msg, 0); err == nil {
		t.Error("reserved label type should fail")
	}
}

func TestDecodeNameTooLongViaPointers(t *testing.T) {
	// Build a message where pointer chains assemble a name > 255 bytes.
	var msg []byte
	// 5 segments of 60-byte labels, each ending with a pointer to the
	// previous segment; the first ends with root.
	lab := strings.Repeat("a", 60)
	offsets := make([]int, 0, 5)
	for i := 0; i < 5; i++ {
		offsets = append(offsets, len(msg))
		msg = append(msg, 60)
		msg = append(msg, lab...)
		if i == 0 {
			msg = append(msg, 0)
		} else {
			prev := offsets[i-1]
			msg = append(msg, 0xC0|byte(prev>>8), byte(prev))
		}
	}
	_, _, err := decodeName(msg, offsets[4])
	if err != ErrNameTooLong {
		t.Errorf("err = %v, want ErrNameTooLong", err)
	}
}

// Property: any parseable name survives an encode/decode round trip.
func TestNameRoundTripProperty(t *testing.T) {
	f := func(rawLabels []string) bool {
		// Sanitize into plausible labels.
		labels := make([]string, 0, len(rawLabels))
		total := 1
		for _, l := range rawLabels {
			clean := strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
					return r
				}
				return 'x'
			}, l)
			if clean == "" {
				clean = "x"
			}
			if len(clean) > 63 {
				clean = clean[:63]
			}
			if total+len(clean)+1 > 255 {
				break
			}
			total += len(clean) + 1
			labels = append(labels, clean)
		}
		n, err := ParseName(strings.Join(labels, "."))
		if err != nil {
			return false
		}
		wire := n.appendWire(nil)
		got, _, err := decodeName(wire, 0)
		return err == nil && got.Equal(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
