package dnswire

import (
	"bytes"
	"testing"
)

// appendPackMsg builds a response with repeated names so the encoding
// exercises compression pointers.
func appendPackMsg() *Message {
	name := MustParseName("a.very.long.label.ourtestdomain.nl")
	m := &Message{
		Header: Header{ID: 0x1234, Response: true, Authoritative: true},
		Questions: []Question{
			{Name: name, Type: TypeTXT, Class: ClassINET},
		},
		Answers: []RR{
			{Name: name, Class: ClassINET, TTL: 5, Data: TXT{Strings: []string{"site=FRA"}}},
		},
		Authority: []RR{
			{Name: MustParseName("ourtestdomain.nl"), Class: ClassINET, TTL: 3600,
				Data: NS{Host: MustParseName("ns1.ourtestdomain.nl")}},
		},
	}
	return m
}

// TestAppendPackMatchesPack proves the append path emits byte-identical
// wire format regardless of what already sits in the buffer: the
// compression pointers must be relative to the message start, not the
// buffer start.
func TestAppendPackMatchesPack(t *testing.T) {
	m := appendPackMsg()
	plain, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for _, prefixLen := range []int{0, 2, 12, 300} {
		prefix := bytes.Repeat([]byte{0xAB}, prefixLen)
		out, err := m.AppendPack(prefix)
		if err != nil {
			t.Fatalf("prefix %d: %v", prefixLen, err)
		}
		if !bytes.Equal(out[:prefixLen], prefix[:prefixLen]) {
			t.Fatalf("prefix %d: AppendPack clobbered the prefix", prefixLen)
		}
		if !bytes.Equal(out[prefixLen:], plain) {
			t.Fatalf("prefix %d: append encoding differs from Pack:\n  %x\nvs %x",
				prefixLen, out[prefixLen:], plain)
		}
		got, err := Unpack(out[prefixLen:])
		if err != nil {
			t.Fatalf("prefix %d: unpack: %v", prefixLen, err)
		}
		if got.ID != m.ID || len(got.Answers) != 1 || len(got.Authority) != 1 {
			t.Fatalf("prefix %d: round trip lost sections: %s", prefixLen, got.Summary())
		}
	}
}

// TestAppendPackReuse proves a response buffer can be recycled across
// messages, the pattern the socket servers use with their sync.Pool.
func TestAppendPackReuse(t *testing.T) {
	m := appendPackMsg()
	plain, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 4096)
	for i := 0; i < 3; i++ {
		out, err := m.AppendPack(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, plain) {
			t.Fatalf("iteration %d: reused-buffer encoding differs", i)
		}
		buf = out
	}
}
