package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// MaxUDPSize is the classic 512-octet UDP payload limit; EDNS0 raises
// it (DefaultEDNSSize is what our resolvers advertise).
const (
	MaxUDPSize      = 512
	DefaultEDNSSize = 1232
)

// ErrNotAQuestion is returned when a response builder is handed a
// message without a question section.
var ErrNotAQuestion = errors.New("dnswire: message has no question")

// Question is a query tuple.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String renders the question in dig-like form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// Header is the decoded DNS message header (RFC 1035 §4.1.1).
type Header struct {
	ID                 uint16
	Response           bool
	Opcode             Opcode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Message is a full DNS message.
type Message struct {
	Header
	Questions  []Question
	Answers    []RR
	Authority  []RR
	Additional []RR
}

// Question returns the first question, which in practice is the only
// one (multi-question queries are unused on the Internet).
func (m *Message) Question() (Question, bool) {
	if len(m.Questions) == 0 {
		return Question{}, false
	}
	return m.Questions[0], true
}

// OPT returns the EDNS0 OPT pseudo-record from the additional section,
// if present.
func (m *Message) OPT() (OPT, bool) {
	for _, rr := range m.Additional {
		if o, ok := rr.Data.(OPT); ok {
			return o, true
		}
	}
	return OPT{}, false
}

// SetEDNS0 appends an OPT pseudo-record advertising the given UDP size.
func (m *Message) SetEDNS0(udpSize uint16, dnssecOK bool) {
	m.Additional = append(m.Additional, RR{
		Name: Root,
		Data: OPT{UDPSize: udpSize, DNSSECOK: dnssecOK},
	})
}

// Pack encodes the message into wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack encodes the message into wire format at the end of dst
// and returns the extended slice. Compression pointers are relative to
// the message start (len(dst) at call time), so the encoding is
// identical wherever the message lands — this is the zero-allocation
// path the servers use with pooled response buffers, and the TCP path
// uses to encode behind its two-byte length prefix in one buffer.
func (m *Message) AppendPack(dst []byte) ([]byte, error) {
	base := len(dst)
	var hdr [12]byte
	msg := append(dst, hdr[:]...)
	binary.BigEndian.PutUint16(msg[base+0:], m.ID)

	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xF) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode & 0xF)
	binary.BigEndian.PutUint16(msg[base+2:], flags)
	binary.BigEndian.PutUint16(msg[base+4:], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(msg[base+6:], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(msg[base+8:], uint16(len(m.Authority)))
	binary.BigEndian.PutUint16(msg[base+10:], uint16(len(m.Additional)))

	c := newCompressor(base)
	for _, q := range m.Questions {
		msg = c.appendName(msg, q.Name)
		msg = binary.BigEndian.AppendUint16(msg, uint16(q.Type))
		msg = binary.BigEndian.AppendUint16(msg, uint16(q.Class))
	}
	var err error
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			msg, err = appendRR(msg, rr, c)
			if err != nil {
				return nil, err
			}
		}
	}
	return msg, nil
}

// appendRR encodes one resource record, handling the OPT pseudo-record's
// field aliasing.
func appendRR(msg []byte, rr RR, c *compressor) ([]byte, error) {
	if rr.Data == nil {
		return nil, errors.New("dnswire: RR without rdata")
	}
	msg = c.appendName(msg, rr.Name)
	msg = binary.BigEndian.AppendUint16(msg, uint16(rr.Type()))
	if o, ok := rr.Data.(OPT); ok {
		msg = binary.BigEndian.AppendUint16(msg, o.UDPSize)
		var ttl uint32
		ttl |= uint32(o.ExtendedRCode) << 24
		ttl |= uint32(o.Version) << 16
		if o.DNSSECOK {
			ttl |= 1 << 15
		}
		msg = binary.BigEndian.AppendUint32(msg, ttl)
	} else {
		msg = binary.BigEndian.AppendUint16(msg, uint16(rr.Class))
		msg = binary.BigEndian.AppendUint32(msg, rr.TTL)
	}
	// Reserve RDLENGTH, encode rdata, then backfill the length.
	lenOff := len(msg)
	msg = append(msg, 0, 0)
	msg = rr.Data.appendTo(msg, c)
	rdlen := len(msg) - lenOff - 2
	if rdlen > 0xFFFF {
		return nil, ErrRDataTooLong
	}
	binary.BigEndian.PutUint16(msg[lenOff:], uint16(rdlen))
	return msg, nil
}

// Unpack decodes a wire-format DNS message.
func Unpack(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrTruncatedMessage
	}
	m := &Message{}
	m.ID = binary.BigEndian.Uint16(b[0:])
	flags := binary.BigEndian.Uint16(b[2:])
	m.Response = flags&(1<<15) != 0
	m.Opcode = Opcode(flags >> 11 & 0xF)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0xF)

	qd := int(binary.BigEndian.Uint16(b[4:]))
	an := int(binary.BigEndian.Uint16(b[6:]))
	ns := int(binary.BigEndian.Uint16(b[8:]))
	ar := int(binary.BigEndian.Uint16(b[10:]))

	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q Question
		q.Name, off, err = decodeName(b, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(b) {
			return nil, ErrTruncatedMessage
		}
		q.Type = Type(binary.BigEndian.Uint16(b[off:]))
		q.Class = Class(binary.BigEndian.Uint16(b[off+2:]))
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range []struct {
		count int
		dst   *[]RR
	}{{an, &m.Answers}, {ns, &m.Authority}, {ar, &m.Additional}} {
		for i := 0; i < sec.count; i++ {
			var rr RR
			rr, off, err = decodeRR(b, off)
			if err != nil {
				return nil, err
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	return m, nil
}

// decodeRR decodes one resource record starting at off.
func decodeRR(b []byte, off int) (RR, int, error) {
	name, off, err := decodeName(b, off)
	if err != nil {
		return RR{}, 0, err
	}
	if off+10 > len(b) {
		return RR{}, 0, ErrTruncatedMessage
	}
	typ := Type(binary.BigEndian.Uint16(b[off:]))
	classBits := binary.BigEndian.Uint16(b[off+2:])
	ttlBits := binary.BigEndian.Uint32(b[off+4:])
	rdlen := int(binary.BigEndian.Uint16(b[off+8:]))
	off += 10
	if off+rdlen > len(b) {
		return RR{}, 0, ErrTruncatedMessage
	}
	rr := RR{Name: name}
	if typ == TypeOPT {
		rr.Data = OPT{
			UDPSize:       classBits,
			ExtendedRCode: uint8(ttlBits >> 24),
			Version:       uint8(ttlBits >> 16),
			DNSSECOK:      ttlBits&(1<<15) != 0,
		}
	} else {
		rr.Class = Class(classBits)
		rr.TTL = ttlBits
		rr.Data, err = decodeRData(typ, b, off, rdlen)
		if err != nil {
			return RR{}, 0, err
		}
	}
	return rr, off + rdlen, nil
}

// NewQuery builds a standard recursive-desired query for (name, type)
// in the Internet class.
func NewQuery(id uint16, name Name, typ Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: typ, Class: ClassINET}},
	}
}

// NewChaosQuery builds a CHAOS-class TXT query such as hostname.bind.
// The paper avoids CHAOS for site identification precisely because the
// recursive answers it itself; we implement it so that contrast is
// testable.
func NewChaosQuery(id uint16, name Name) *Message {
	return &Message{
		Header:    Header{ID: id},
		Questions: []Question{{Name: name, Type: TypeTXT, Class: ClassCHAOS}},
	}
}

// NewResponse builds a response skeleton echoing q's ID and question.
func NewResponse(q *Message) (*Message, error) {
	if len(q.Questions) == 0 {
		return nil, ErrNotAQuestion
	}
	return &Message{
		Header: Header{
			ID:               q.ID,
			Response:         true,
			Opcode:           q.Opcode,
			RecursionDesired: q.RecursionDesired,
		},
		Questions: []Question{q.Questions[0]},
	}, nil
}

// Summary renders a compact one-line description for logs.
func (m *Message) Summary() string {
	var sb strings.Builder
	if m.Response {
		fmt.Fprintf(&sb, "response id=%d rcode=%s", m.ID, m.RCode)
	} else {
		fmt.Fprintf(&sb, "query id=%d", m.ID)
	}
	if q, ok := m.Question(); ok {
		fmt.Fprintf(&sb, " %s", q)
	}
	fmt.Fprintf(&sb, " an=%d ns=%d ar=%d", len(m.Answers), len(m.Authority), len(m.Additional))
	return sb.String()
}
