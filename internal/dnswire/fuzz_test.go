package dnswire

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// FuzzParseMessage drives Unpack with arbitrary wire bytes and checks
// the decoder's core contract: anything it accepts must re-encode
// (unknown RR types survive as Raw), the re-encoding must parse to the
// same header and section shape, and packing must be a fixpoint —
// Pack(Unpack(Pack(m))) is byte-identical to Pack(m). The servers sit
// on this path for every hostile packet the soak tests throw, so the
// decoder must never panic and never accept what it cannot re-emit.
func FuzzParseMessage(f *testing.F) {
	q := NewQuery(0x1234, MustParseName("www.ourtestdomain.nl."), TypeA)
	q.SetEDNS0(DefaultEDNSSize, true)
	if b, err := q.Pack(); err == nil {
		f.Add(b)
	}
	resp, _ := NewResponse(q)
	if resp != nil {
		resp.Answers = append(resp.Answers, RR{
			Name: MustParseName("www.ourtestdomain.nl."), Class: ClassINET, TTL: 300,
			Data: CNAME{Target: MustParseName("ns1.ourtestdomain.nl.")},
		}, RR{
			Name: MustParseName("ns1.ourtestdomain.nl."), Class: ClassINET, TTL: 300,
			Data: Raw{RRType: 99, Data: []byte{0xde, 0xad, 0xbe, 0xef}},
		})
		if b, err := resp.Pack(); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})                                            // empty
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0})          // header claims a question
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xc0, 0}) // self-pointing compression

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		packed, err := m.Pack()
		if err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
		m2, err := Unpack(packed)
		if err != nil {
			t.Fatalf("re-encoded message does not parse: %v", err)
		}
		if m2.Header != m.Header {
			t.Fatalf("header changed across round-trip: %+v vs %+v", m.Header, m2.Header)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) ||
			len(m2.Authority) != len(m.Authority) || len(m2.Additional) != len(m.Additional) {
			t.Fatalf("section counts changed across round-trip")
		}
		packed2, err := m2.Pack()
		if err != nil {
			t.Fatalf("second Pack failed: %v", err)
		}
		if !bytes.Equal(packed, packed2) {
			t.Fatalf("Pack is not a fixpoint:\n%x\n%x", packed, packed2)
		}
	})
}

// corpusSeeds loads the checked-in seed inputs of another fuzz target
// so sibling targets can share one corpus of interesting wire bytes.
// Each seed file is Go's "go test fuzz v1" encoding: one quoted
// []byte literal per argument line.
func corpusSeeds(f *testing.F, target string) [][]byte {
	f.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("shared corpus %s: %v", dir, err)
	}
	var seeds [][]byte
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") || !strings.HasSuffix(line, ")") {
				continue
			}
			lit, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")"))
			if err != nil {
				f.Fatalf("corpus seed %s: %v", e.Name(), err)
			}
			seeds = append(seeds, []byte(lit))
		}
	}
	if len(seeds) == 0 {
		f.Fatalf("shared corpus %s: no seeds decoded", dir)
	}
	return seeds
}

// FuzzAppendPack drives the zero-allocation encoder the servers use
// with pooled buffers, reusing FuzzParseMessage's corpus as the
// source of messages. The contract under test is position
// independence: AppendPack must leave an arbitrary dst prefix
// untouched and emit exactly the bytes Pack would, wherever the
// message lands — compression pointers are message-relative, so a
// pooled buffer or a TCP length prefix must never leak into the
// encoding. Back-to-back appends into one buffer (the TCP path) must
// hold the same way.
func FuzzAppendPack(f *testing.F) {
	for _, seed := range corpusSeeds(f, "FuzzParseMessage") {
		f.Add(seed, uint8(0))
		f.Add(seed, uint8(13))
	}

	f.Fuzz(func(t *testing.T, data []byte, prefixLen uint8) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		packed, err := m.Pack()
		if err != nil {
			t.Fatalf("accepted message does not Pack: %v", err)
		}

		prefix := bytes.Repeat([]byte{0xA5}, int(prefixLen))
		out, err := m.AppendPack(append([]byte(nil), prefix...))
		if err != nil {
			t.Fatalf("AppendPack failed where Pack succeeded: %v", err)
		}
		if !bytes.Equal(out[:len(prefix)], prefix) {
			t.Fatalf("AppendPack rewrote the dst prefix: %x", out[:len(prefix)])
		}
		if !bytes.Equal(out[len(prefix):], packed) {
			t.Fatalf("encoding depends on buffer position:\nat %d: %x\nat 0:  %x",
				len(prefix), out[len(prefix):], packed)
		}

		// TCP-style: a second message appended to the same buffer.
		out2, err := m.AppendPack(out)
		if err != nil {
			t.Fatalf("second AppendPack failed: %v", err)
		}
		if !bytes.Equal(out2[:len(out)], out) || !bytes.Equal(out2[len(out):], packed) {
			t.Fatal("back-to-back AppendPack corrupted the buffer")
		}
	})
}
