package dnswire

import (
	"bytes"
	"testing"
)

// FuzzParseMessage drives Unpack with arbitrary wire bytes and checks
// the decoder's core contract: anything it accepts must re-encode
// (unknown RR types survive as Raw), the re-encoding must parse to the
// same header and section shape, and packing must be a fixpoint —
// Pack(Unpack(Pack(m))) is byte-identical to Pack(m). The servers sit
// on this path for every hostile packet the soak tests throw, so the
// decoder must never panic and never accept what it cannot re-emit.
func FuzzParseMessage(f *testing.F) {
	q := NewQuery(0x1234, MustParseName("www.ourtestdomain.nl."), TypeA)
	q.SetEDNS0(DefaultEDNSSize, true)
	if b, err := q.Pack(); err == nil {
		f.Add(b)
	}
	resp, _ := NewResponse(q)
	if resp != nil {
		resp.Answers = append(resp.Answers, RR{
			Name: MustParseName("www.ourtestdomain.nl."), Class: ClassINET, TTL: 300,
			Data: CNAME{Target: MustParseName("ns1.ourtestdomain.nl.")},
		}, RR{
			Name: MustParseName("ns1.ourtestdomain.nl."), Class: ClassINET, TTL: 300,
			Data: Raw{RRType: 99, Data: []byte{0xde, 0xad, 0xbe, 0xef}},
		})
		if b, err := resp.Pack(); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})                                            // empty
	f.Add([]byte{0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0})          // header claims a question
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xc0, 0}) // self-pointing compression

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		packed, err := m.Pack()
		if err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
		m2, err := Unpack(packed)
		if err != nil {
			t.Fatalf("re-encoded message does not parse: %v", err)
		}
		if m2.Header != m.Header {
			t.Fatalf("header changed across round-trip: %+v vs %+v", m.Header, m2.Header)
		}
		if len(m2.Questions) != len(m.Questions) || len(m2.Answers) != len(m.Answers) ||
			len(m2.Authority) != len(m.Authority) || len(m2.Additional) != len(m.Additional) {
			t.Fatalf("section counts changed across round-trip")
		}
		packed2, err := m2.Pack()
		if err != nil {
			t.Fatalf("second Pack failed: %v", err)
		}
		if !bytes.Equal(packed, packed2) {
			t.Fatalf("Pack is not a fixpoint:\n%x\n%x", packed, packed2)
		}
	})
}
