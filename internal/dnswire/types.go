// Package dnswire implements the DNS wire format of RFC 1034/1035 from
// scratch on the standard library: domain names with message
// compression, the message header, questions, and the resource-record
// types the system needs (A, AAAA, NS, SOA, TXT, CNAME, PTR, MX and
// the EDNS0 OPT pseudo-RR), for both the Internet and CHAOS classes.
//
// The package is the protocol substrate under both the authoritative
// server (internal/authserver) and the recursive resolver
// (internal/resolver); it is equally usable on real sockets and inside
// the discrete-event simulator.
package dnswire

import "fmt"

// Type is a resource-record type code (RFC 1035 §3.2.2 and successors).
type Type uint16

// Resource-record types implemented or recognized by this package.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeAXFR  Type = 252
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeA: "A", TypeNS: "NS", TypeCNAME: "CNAME", TypeSOA: "SOA",
	TypePTR: "PTR", TypeMX: "MX", TypeTXT: "TXT", TypeAAAA: "AAAA",
	TypeOPT: "OPT", TypeAXFR: "AXFR", TypeANY: "ANY",
}

// String returns the standard mnemonic, or TYPEnnn for unknown codes
// (RFC 3597 style).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// ParseType maps a mnemonic back to its code.
func ParseType(s string) (Type, error) {
	for t, name := range typeNames {
		if name == s {
			return t, nil
		}
	}
	return TypeNone, fmt.Errorf("dnswire: unknown RR type %q", s)
}

// Class is a resource-record class code.
type Class uint16

// DNS classes. CHAOS matters here because the paper contrasts CHAOS
// hostname.bind identification (answered by the recursive) with
// Internet-class identity queries (answered by the authoritative).
const (
	ClassINET  Class = 1
	ClassCHAOS Class = 3
	ClassANY   Class = 255
)

// String returns the standard class mnemonic.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassCHAOS:
		return "CH"
	case ClassANY:
		return "ANY"
	default:
		return fmt.Sprintf("CLASS%d", uint16(c))
	}
}

// Opcode is the query kind in the message header.
type Opcode uint8

// Opcodes (RFC 1035, RFC 2136).
const (
	OpcodeQuery  Opcode = 0
	OpcodeStatus Opcode = 2
	OpcodeNotify Opcode = 4
	OpcodeUpdate Opcode = 5
)

// String returns the opcode mnemonic.
func (o Opcode) String() string {
	switch o {
	case OpcodeQuery:
		return "QUERY"
	case OpcodeStatus:
		return "STATUS"
	case OpcodeNotify:
		return "NOTIFY"
	case OpcodeUpdate:
		return "UPDATE"
	default:
		return fmt.Sprintf("OPCODE%d", uint8(o))
	}
}

// RCode is the response code in the message header.
type RCode uint8

// Response codes (RFC 1035).
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

// String returns the response-code mnemonic.
func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}
