package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Wire-format limits from RFC 1035 §2.3.4.
const (
	maxLabelLen = 63
	maxNameLen  = 255 // total octets in wire form, including the root label
)

// Errors returned by name parsing and decoding.
var (
	ErrNameTooLong      = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong     = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel       = errors.New("dnswire: empty label")
	ErrCompressionLoop  = errors.New("dnswire: compression pointer loop")
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
)

// Name is a fully-qualified domain name stored as a label sequence.
// The zero value is the root name. Comparison is case-insensitive per
// RFC 1035; the original spelling is preserved for display.
type Name struct {
	labels []string
}

// Root is the DNS root name (".").
var Root = Name{}

// ParseName parses a presentation-format name such as "www.example.nl"
// or "example.nl." (a trailing dot is accepted and implied). Escapes
// are not supported: the measurement system only handles hostname-like
// labels plus the numeric labels it generates itself.
func ParseName(s string) (Name, error) {
	if s == "" || s == "." {
		return Root, nil
	}
	s = strings.TrimSuffix(s, ".")
	parts := strings.Split(s, ".")
	wireLen := 1 // root byte
	for _, p := range parts {
		if p == "" {
			return Name{}, ErrEmptyLabel
		}
		if len(p) > maxLabelLen {
			return Name{}, ErrLabelTooLong
		}
		wireLen += 1 + len(p)
	}
	if wireLen > maxNameLen {
		return Name{}, ErrNameTooLong
	}
	return Name{labels: parts}, nil
}

// MustParseName is ParseName for static configuration; it panics on error.
func MustParseName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(fmt.Sprintf("dnswire: bad name %q: %v", s, err))
	}
	return n
}

// NewName builds a name from explicit labels, most-specific first.
func NewName(labels ...string) (Name, error) {
	return ParseName(strings.Join(labels, "."))
}

// String returns the presentation form with a trailing dot ("." for root).
func (n Name) String() string {
	if len(n.labels) == 0 {
		return "."
	}
	return strings.Join(n.labels, ".") + "."
}

// Labels returns a copy of the label sequence, most-specific first.
func (n Name) Labels() []string {
	out := make([]string, len(n.labels))
	copy(out, n.labels)
	return out
}

// NumLabels returns the label count (0 for root).
func (n Name) NumLabels() int { return len(n.labels) }

// IsRoot reports whether the name is the DNS root.
func (n Name) IsRoot() bool { return len(n.labels) == 0 }

// Key returns the canonical (lowercased) form used for map keys and
// case-insensitive comparison.
func (n Name) Key() string { return strings.ToLower(n.String()) }

// Equal reports case-insensitive equality.
func (n Name) Equal(o Name) bool {
	if len(n.labels) != len(o.labels) {
		return false
	}
	for i := range n.labels {
		if !strings.EqualFold(n.labels[i], o.labels[i]) {
			return false
		}
	}
	return true
}

// Parent returns the name with its most-specific label removed; the
// parent of root is root.
func (n Name) Parent() Name {
	if len(n.labels) == 0 {
		return Root
	}
	return Name{labels: n.labels[1:]}
}

// Child returns the name with label prepended.
func (n Name) Child(label string) (Name, error) {
	if label == "" {
		return Name{}, ErrEmptyLabel
	}
	if len(label) > maxLabelLen {
		return Name{}, ErrLabelTooLong
	}
	labels := make([]string, 0, len(n.labels)+1)
	labels = append(labels, label)
	labels = append(labels, n.labels...)
	nn := Name{labels: labels}
	if nn.wireLen() > maxNameLen {
		return Name{}, ErrNameTooLong
	}
	return nn, nil
}

// IsSubdomainOf reports whether n is equal to o or falls below it.
func (n Name) IsSubdomainOf(o Name) bool {
	if len(o.labels) > len(n.labels) {
		return false
	}
	off := len(n.labels) - len(o.labels)
	for i := range o.labels {
		if !strings.EqualFold(n.labels[off+i], o.labels[i]) {
			return false
		}
	}
	return true
}

// wireLen returns the encoded length without compression.
func (n Name) wireLen() int {
	l := 1
	for _, lab := range n.labels {
		l += 1 + len(lab)
	}
	return l
}

// appendWire appends the uncompressed wire form of n to b.
func (n Name) appendWire(b []byte) []byte {
	for _, lab := range n.labels {
		b = append(b, byte(len(lab)))
		b = append(b, lab...)
	}
	return append(b, 0)
}

// compressor tracks already-emitted names so later occurrences can be
// replaced by compression pointers (RFC 1035 §4.1.4). Pointers can only
// reference offsets below 0x4000, counted from the start of the DNS
// message — which is base, not 0, when the message is being appended
// to a buffer that already holds other data.
type compressor struct {
	offsets map[string]int
	base    int
}

func newCompressor(base int) *compressor {
	return &compressor{offsets: make(map[string]int), base: base}
}

// appendName appends n at the current end of msg, using and recording
// compression pointers.
func (c *compressor) appendName(msg []byte, n Name) []byte {
	labels := n.labels
	for i := range labels {
		suffix := Name{labels: labels[i:]}
		key := suffix.Key()
		if off, ok := c.offsets[key]; ok {
			ptr := uint16(0xC000 | off)
			return append(msg, byte(ptr>>8), byte(ptr))
		}
		if off := len(msg) - c.base; off < 0x4000 {
			c.offsets[key] = off
		}
		msg = append(msg, byte(len(labels[i])))
		msg = append(msg, labels[i]...)
	}
	return append(msg, 0)
}

// decodeName reads a possibly-compressed name starting at off in msg.
// It returns the name and the offset just past the name's first
// (pre-pointer) encoding.
func decodeName(msg []byte, off int) (Name, int, error) {
	var labels []string
	seen := 0     // pointer-hop guard
	end := -1     // offset after the name in the original stream
	totalLen := 1 // accumulated wire length check
	pos := off
	for {
		if pos >= len(msg) {
			return Name{}, 0, ErrTruncatedMessage
		}
		b := msg[pos]
		switch {
		case b == 0:
			if end == -1 {
				end = pos + 1
			}
			return Name{labels: labels}, end, nil
		case b&0xC0 == 0xC0:
			if pos+1 >= len(msg) {
				return Name{}, 0, ErrTruncatedMessage
			}
			ptr := int(b&0x3F)<<8 | int(msg[pos+1])
			if end == -1 {
				end = pos + 2
			}
			// Every pointer must point strictly backward; this makes the
			// walk monotone and loop-free.
			if ptr >= pos {
				return Name{}, 0, ErrCompressionLoop
			}
			seen++
			if seen > 127 {
				return Name{}, 0, ErrCompressionLoop
			}
			pos = ptr
		case b&0xC0 != 0:
			return Name{}, 0, fmt.Errorf("dnswire: reserved label type 0x%02x", b&0xC0)
		default:
			l := int(b)
			if pos+1+l > len(msg) {
				return Name{}, 0, ErrTruncatedMessage
			}
			totalLen += 1 + l
			if totalLen > maxNameLen {
				return Name{}, 0, ErrNameTooLong
			}
			labels = append(labels, string(msg[pos+1:pos+1+l]))
			pos += 1 + l
		}
	}
}
