package dnswire

import (
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
)

func mustAddr(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

func sampleMessage() *Message {
	q := MustParseName("probe-123.ourtestdomain.nl")
	m := &Message{
		Header: Header{
			ID:                 0xBEEF,
			Response:           true,
			Authoritative:      true,
			RecursionDesired:   true,
			RecursionAvailable: false,
			RCode:              RCodeNoError,
		},
		Questions: []Question{{Name: q, Type: TypeTXT, Class: ClassINET}},
		Answers: []RR{
			{Name: q, Class: ClassINET, TTL: 5, Data: TXT{Strings: []string{"site=FRA"}}},
		},
		Authority: []RR{
			{Name: MustParseName("ourtestdomain.nl"), Class: ClassINET, TTL: 3600,
				Data: NS{Host: MustParseName("ns1.ourtestdomain.nl")}},
			{Name: MustParseName("ourtestdomain.nl"), Class: ClassINET, TTL: 3600,
				Data: NS{Host: MustParseName("ns2.ourtestdomain.nl")}},
		},
		Additional: []RR{
			{Name: MustParseName("ns1.ourtestdomain.nl"), Class: ClassINET, TTL: 3600,
				Data: A{Addr: mustAddr("192.0.2.1")}},
			{Name: MustParseName("ns2.ourtestdomain.nl"), Class: ClassINET, TTL: 3600,
				Data: AAAA{Addr: mustAddr("2001:db8::2")}},
		},
	}
	return m
}

func TestMessageRoundTrip(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || !got.Response || !got.Authoritative || got.RCode != RCodeNoError {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if len(got.Questions) != 1 || !got.Questions[0].Name.Equal(m.Questions[0].Name) {
		t.Errorf("question mismatch: %+v", got.Questions)
	}
	if len(got.Answers) != 1 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	txt, ok := got.Answers[0].Data.(TXT)
	if !ok || txt.Joined() != "site=FRA" {
		t.Errorf("TXT = %#v", got.Answers[0].Data)
	}
	if got.Answers[0].TTL != 5 {
		t.Errorf("TTL = %d", got.Answers[0].TTL)
	}
	if len(got.Authority) != 2 || len(got.Additional) != 2 {
		t.Errorf("sections: ns=%d ar=%d", len(got.Authority), len(got.Additional))
	}
	if a, ok := got.Additional[0].Data.(A); !ok || a.Addr != mustAddr("192.0.2.1") {
		t.Errorf("A = %#v", got.Additional[0].Data)
	}
	if aaaa, ok := got.Additional[1].Data.(AAAA); !ok || aaaa.Addr != mustAddr("2001:db8::2") {
		t.Errorf("AAAA = %#v", got.Additional[1].Data)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// All names share the ourtestdomain.nl suffix; expect much smaller
	// than the naive encoding.
	naive := 12
	for _, q := range m.Questions {
		naive += q.Name.wireLen() + 4
	}
	for _, sec := range [][]RR{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			naive += rr.Name.wireLen() + 10 + 64
		}
	}
	if len(wire) >= naive {
		t.Errorf("no compression: wire=%d naive>=%d", len(wire), naive)
	}
}

func TestAllRDataTypesRoundTrip(t *testing.T) {
	owner := MustParseName("rr.example.nl")
	records := []RR{
		{Name: owner, Class: ClassINET, TTL: 60, Data: A{Addr: mustAddr("198.51.100.7")}},
		{Name: owner, Class: ClassINET, TTL: 60, Data: AAAA{Addr: mustAddr("2001:db8::7")}},
		{Name: owner, Class: ClassINET, TTL: 60, Data: NS{Host: MustParseName("ns.example.nl")}},
		{Name: owner, Class: ClassINET, TTL: 60, Data: CNAME{Target: MustParseName("alias.example.nl")}},
		{Name: owner, Class: ClassINET, TTL: 60, Data: PTR{Target: MustParseName("host.example.nl")}},
		{Name: owner, Class: ClassINET, TTL: 60, Data: MX{Preference: 10, Host: MustParseName("mx.example.nl")}},
		{Name: owner, Class: ClassINET, TTL: 60, Data: SOA{
			MName: MustParseName("ns.example.nl"), RName: MustParseName("hostmaster.example.nl"),
			Serial: 2017041201, Refresh: 7200, Retry: 3600, Expire: 604800, Minimum: 300}},
		{Name: owner, Class: ClassINET, TTL: 60, Data: TXT{Strings: []string{"a", "b", strings.Repeat("x", 255)}}},
		{Name: owner, Class: ClassINET, TTL: 60, Data: Raw{RRType: Type(99), Data: []byte{1, 2, 3}}},
	}
	m := &Message{
		Header:    Header{ID: 1, Response: true},
		Questions: []Question{{Name: owner, Type: TypeANY, Class: ClassINET}},
		Answers:   records,
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(records) {
		t.Fatalf("answers = %d, want %d", len(got.Answers), len(records))
	}
	for i, rr := range got.Answers {
		want := records[i]
		if rr.Type() != want.Type() {
			t.Errorf("answer %d type = %v, want %v", i, rr.Type(), want.Type())
			continue
		}
		switch d := rr.Data.(type) {
		case A:
			if d.Addr != want.Data.(A).Addr {
				t.Errorf("A mismatch: %v", d)
			}
		case AAAA:
			if d.Addr != want.Data.(AAAA).Addr {
				t.Errorf("AAAA mismatch: %v", d)
			}
		case NS:
			if !d.Host.Equal(want.Data.(NS).Host) {
				t.Errorf("NS mismatch: %v", d)
			}
		case CNAME:
			if !d.Target.Equal(want.Data.(CNAME).Target) {
				t.Errorf("CNAME mismatch: %v", d)
			}
		case PTR:
			if !d.Target.Equal(want.Data.(PTR).Target) {
				t.Errorf("PTR mismatch: %v", d)
			}
		case MX:
			w := want.Data.(MX)
			if d.Preference != w.Preference || !d.Host.Equal(w.Host) {
				t.Errorf("MX mismatch: %v", d)
			}
		case SOA:
			w := want.Data.(SOA)
			if d.Serial != w.Serial || !d.MName.Equal(w.MName) || d.Minimum != w.Minimum {
				t.Errorf("SOA mismatch: %+v", d)
			}
		case TXT:
			if !reflect.DeepEqual(d.Strings, want.Data.(TXT).Strings) {
				t.Errorf("TXT mismatch: %v", d)
			}
		case Raw:
			w := want.Data.(Raw)
			if d.RRType != w.RRType || !reflect.DeepEqual(d.Data, w.Data) {
				t.Errorf("Raw mismatch: %v", d)
			}
		default:
			t.Errorf("unexpected rdata %T", rr.Data)
		}
	}
}

func TestEDNS0RoundTrip(t *testing.T) {
	m := NewQuery(7, MustParseName("example.nl"), TypeA)
	m.SetEDNS0(DefaultEDNSSize, true)
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := got.OPT()
	if !ok {
		t.Fatal("OPT missing after round trip")
	}
	if opt.UDPSize != DefaultEDNSSize || !opt.DNSSECOK {
		t.Errorf("OPT = %+v", opt)
	}
	if _, ok := (&Message{}).OPT(); ok {
		t.Error("empty message should have no OPT")
	}
}

func TestChaosQuery(t *testing.T) {
	m := NewChaosQuery(3, MustParseName("hostname.bind"))
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := got.Question()
	if !ok || q.Class != ClassCHAOS || q.Type != TypeTXT {
		t.Errorf("question = %+v", q)
	}
	if got.RecursionDesired {
		t.Error("CHAOS identity queries should not request recursion")
	}
}

func TestNewResponse(t *testing.T) {
	q := NewQuery(99, MustParseName("x.nl"), TypeTXT)
	r, err := NewResponse(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Response || r.ID != 99 || !r.RecursionDesired {
		t.Errorf("response header = %+v", r.Header)
	}
	if len(r.Questions) != 1 || !r.Questions[0].Name.Equal(q.Questions[0].Name) {
		t.Errorf("question not echoed: %+v", r.Questions)
	}
	if _, err := NewResponse(&Message{}); err != ErrNotAQuestion {
		t.Errorf("err = %v, want ErrNotAQuestion", err)
	}
}

func TestUnpackTruncatedInputs(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly, not panic.
	for i := 0; i < len(wire); i++ {
		if _, err := Unpack(wire[:i]); err == nil {
			// Some prefixes may parse if counts happen to be zero; but
			// for this message all counts are fixed, so any prefix that
			// parses is a bug.
			t.Fatalf("prefix of %d bytes unexpectedly parsed", i)
		}
	}
}

func TestUnpackFuzzRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(100)
		buf := make([]byte, n)
		rng.Read(buf)
		// Must not panic; errors are fine.
		_, _ = Unpack(buf)
	}
}

func TestUnpackMutatedMessages(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		mut := make([]byte, len(wire))
		copy(mut, wire)
		for j := 0; j < 3; j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		_, _ = Unpack(mut) // must not panic
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		m := &Message{Header: Header{
			ID:                 uint16(i * 1000),
			Response:           i&1 != 0,
			Authoritative:      i&2 != 0,
			Truncated:          i&4 != 0,
			RecursionDesired:   i&8 != 0,
			RecursionAvailable: i&16 != 0,
			Opcode:             Opcode(i % 3),
			RCode:              RCode(i % 6),
		}}
		wire, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Fatal(err)
		}
		if got.Header != m.Header {
			t.Fatalf("header round trip %d: got %+v want %+v", i, got.Header, m.Header)
		}
	}
}

func TestTypeClassStrings(t *testing.T) {
	if TypeTXT.String() != "TXT" || TypeA.String() != "A" {
		t.Error("type mnemonics wrong")
	}
	if Type(9999).String() != "TYPE9999" {
		t.Errorf("unknown type = %q", Type(9999).String())
	}
	if tt, err := ParseType("TXT"); err != nil || tt != TypeTXT {
		t.Errorf("ParseType: %v %v", tt, err)
	}
	if _, err := ParseType("NOPE"); err == nil {
		t.Error("ParseType(NOPE) should fail")
	}
	if ClassINET.String() != "IN" || ClassCHAOS.String() != "CH" || Class(77).String() != "CLASS77" {
		t.Error("class mnemonics wrong")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(15).String() != "RCODE15" {
		t.Error("rcode mnemonics wrong")
	}
	if OpcodeQuery.String() != "QUERY" || Opcode(7).String() != "OPCODE7" {
		t.Error("opcode mnemonics wrong")
	}
}

func TestMessageSummary(t *testing.T) {
	m := sampleMessage()
	s := m.Summary()
	for _, want := range []string{"response", "NOERROR", "TXT"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	q := NewQuery(1, MustParseName("a.nl"), TypeA)
	if !strings.Contains(q.Summary(), "query") {
		t.Errorf("query summary = %q", q.Summary())
	}
}

func TestRRString(t *testing.T) {
	rr := RR{Name: MustParseName("example.nl"), Class: ClassINET, TTL: 5,
		Data: TXT{Strings: []string{"hi"}}}
	s := rr.String()
	for _, want := range []string{"example.nl.", "IN", "TXT", `"hi"`} {
		if !strings.Contains(s, want) {
			t.Errorf("RR string %q missing %q", s, want)
		}
	}
	if (RR{}).Type() != TypeNone {
		t.Error("empty RR type should be TypeNone")
	}
}

func TestPackRRWithoutData(t *testing.T) {
	m := &Message{Answers: []RR{{Name: Root}}}
	if _, err := m.Pack(); err == nil {
		t.Error("packing RR without rdata should fail")
	}
}

func TestTXTEmptyAndOversize(t *testing.T) {
	// Empty TXT still encodes one zero-length string.
	m := &Message{Answers: []RR{{Name: Root, Class: ClassINET, Data: TXT{}}}}
	wire, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	txt := got.Answers[0].Data.(TXT)
	if len(txt.Strings) != 1 || txt.Strings[0] != "" {
		t.Errorf("empty TXT round trip = %#v", txt)
	}
	// Oversize strings are truncated to 255, not corrupted.
	m = &Message{Answers: []RR{{Name: Root, Class: ClassINET,
		Data: TXT{Strings: []string{strings.Repeat("z", 300)}}}}}
	wire, err = m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Data.(TXT).Strings[0] != strings.Repeat("z", 255) {
		t.Error("oversize TXT should truncate to 255")
	}
}

func BenchmarkPackMessage(b *testing.B) {
	m := sampleMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpackMessage(b *testing.B) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}
