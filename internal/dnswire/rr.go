package dnswire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// ErrRDataTooLong is returned when encoded rdata exceeds 65535 octets.
var ErrRDataTooLong = errors.New("dnswire: rdata exceeds 65535 octets")

// RData is the type-specific payload of a resource record.
//
// appendTo appends the wire form of the rdata to msg. Name-bearing
// rdata (NS, CNAME, PTR, SOA, MX) participates in message compression
// via c, as RFC 1035 permits for these well-known types.
type RData interface {
	// Type returns the RR type this rdata belongs to.
	Type() Type
	// appendTo appends the wire encoding (without the RDLENGTH prefix).
	appendTo(msg []byte, c *compressor) []byte
	// String returns the presentation form of the rdata.
	String() string
}

// RR is a DNS resource record.
type RR struct {
	Name  Name
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record's type, taken from its rdata.
func (r RR) Type() Type {
	if r.Data == nil {
		return TypeNone
	}
	return r.Data.Type()
}

// String renders the record in zone-file presentation order.
func (r RR) String() string {
	return fmt.Sprintf("%s\t%d\t%s\t%s\t%s",
		r.Name, r.TTL, r.Class, r.Type(), r.Data)
}

// A is an IPv4 address record.
type A struct {
	Addr netip.Addr
}

// Type implements RData.
func (A) Type() Type { return TypeA }

func (a A) appendTo(msg []byte, _ *compressor) []byte {
	v4 := a.Addr.As4()
	return append(msg, v4[:]...)
}

// String implements RData.
func (a A) String() string { return a.Addr.String() }

// AAAA is an IPv6 address record.
type AAAA struct {
	Addr netip.Addr
}

// Type implements RData.
func (AAAA) Type() Type { return TypeAAAA }

func (a AAAA) appendTo(msg []byte, _ *compressor) []byte {
	v6 := a.Addr.As16()
	return append(msg, v6[:]...)
}

// String implements RData.
func (a AAAA) String() string { return a.Addr.String() }

// NS names an authoritative server for the owner zone.
type NS struct {
	Host Name
}

// Type implements RData.
func (NS) Type() Type { return TypeNS }

func (n NS) appendTo(msg []byte, c *compressor) []byte {
	return c.appendName(msg, n.Host)
}

// String implements RData.
func (n NS) String() string { return n.Host.String() }

// CNAME is a canonical-name alias record.
type CNAME struct {
	Target Name
}

// Type implements RData.
func (CNAME) Type() Type { return TypeCNAME }

func (cn CNAME) appendTo(msg []byte, c *compressor) []byte {
	return c.appendName(msg, cn.Target)
}

// String implements RData.
func (cn CNAME) String() string { return cn.Target.String() }

// PTR is a pointer record (reverse mapping).
type PTR struct {
	Target Name
}

// Type implements RData.
func (PTR) Type() Type { return TypePTR }

func (p PTR) appendTo(msg []byte, c *compressor) []byte {
	return c.appendName(msg, p.Target)
}

// String implements RData.
func (p PTR) String() string { return p.Target.String() }

// MX is a mail-exchanger record.
type MX struct {
	Preference uint16
	Host       Name
}

// Type implements RData.
func (MX) Type() Type { return TypeMX }

func (m MX) appendTo(msg []byte, c *compressor) []byte {
	msg = binary.BigEndian.AppendUint16(msg, m.Preference)
	return c.appendName(msg, m.Host)
}

// String implements RData.
func (m MX) String() string { return fmt.Sprintf("%d %s", m.Preference, m.Host) }

// SOA is the start-of-authority record.
type SOA struct {
	MName   Name // primary name server
	RName   Name // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32 // negative-caching TTL (RFC 2308)
}

// Type implements RData.
func (SOA) Type() Type { return TypeSOA }

func (s SOA) appendTo(msg []byte, c *compressor) []byte {
	msg = c.appendName(msg, s.MName)
	msg = c.appendName(msg, s.RName)
	msg = binary.BigEndian.AppendUint32(msg, s.Serial)
	msg = binary.BigEndian.AppendUint32(msg, s.Refresh)
	msg = binary.BigEndian.AppendUint32(msg, s.Retry)
	msg = binary.BigEndian.AppendUint32(msg, s.Expire)
	return binary.BigEndian.AppendUint32(msg, s.Minimum)
}

// String implements RData.
func (s SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		s.MName, s.RName, s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

// TXT carries one or more character strings of at most 255 octets
// each. The paper's experiment hinges on TXT: each authoritative site
// answers the same TXT question with its own identity string, which is
// how a vantage point learns which site served it.
type TXT struct {
	Strings []string
}

// Type implements RData.
func (TXT) Type() Type { return TypeTXT }

func (t TXT) appendTo(msg []byte, _ *compressor) []byte {
	if len(t.Strings) == 0 {
		// RFC 1035 requires at least one (possibly empty) string.
		return append(msg, 0)
	}
	for _, s := range t.Strings {
		if len(s) > 255 {
			s = s[:255]
		}
		msg = append(msg, byte(len(s)))
		msg = append(msg, s...)
	}
	return msg
}

// String implements RData.
func (t TXT) String() string {
	parts := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// Joined returns the concatenation of all strings, the conventional
// application-level view of a TXT record.
func (t TXT) Joined() string { return strings.Join(t.Strings, "") }

// OPT is the EDNS0 pseudo-record (RFC 6891). It abuses the RR fields:
// CLASS carries the requester's UDP payload size and TTL carries the
// extended RCODE and flags. This package keeps the decoded view.
type OPT struct {
	UDPSize       uint16
	ExtendedRCode uint8
	Version       uint8
	DNSSECOK      bool
}

// Type implements RData.
func (OPT) Type() Type { return TypeOPT }

func (OPT) appendTo(msg []byte, _ *compressor) []byte {
	// No options are carried; rdata is empty.
	return msg
}

// String implements RData.
func (o OPT) String() string {
	return fmt.Sprintf("udp=%d ver=%d do=%v", o.UDPSize, o.Version, o.DNSSECOK)
}

// Raw is rdata of a type this package does not decode, preserved
// verbatim (RFC 3597 transparency).
type Raw struct {
	RRType Type
	Data   []byte
}

// Type implements RData.
func (r Raw) Type() Type { return r.RRType }

func (r Raw) appendTo(msg []byte, _ *compressor) []byte {
	return append(msg, r.Data...)
}

// String implements RData.
func (r Raw) String() string { return fmt.Sprintf("\\# %d %x", len(r.Data), r.Data) }

// decodeRData parses rdata of the given type from msg[off:off+rdlen].
// Compression pointers inside rdata may reference earlier parts of msg.
func decodeRData(typ Type, msg []byte, off, rdlen int) (RData, error) {
	end := off + rdlen
	if end > len(msg) {
		return nil, ErrTruncatedMessage
	}
	switch typ {
	case TypeA:
		if rdlen != 4 {
			return nil, fmt.Errorf("dnswire: A rdata length %d", rdlen)
		}
		return A{Addr: netip.AddrFrom4([4]byte(msg[off:end]))}, nil
	case TypeAAAA:
		if rdlen != 16 {
			return nil, fmt.Errorf("dnswire: AAAA rdata length %d", rdlen)
		}
		return AAAA{Addr: netip.AddrFrom16([16]byte(msg[off:end]))}, nil
	case TypeNS:
		n, _, err := decodeName(msg, off)
		return NS{Host: n}, err
	case TypeCNAME:
		n, _, err := decodeName(msg, off)
		return CNAME{Target: n}, err
	case TypePTR:
		n, _, err := decodeName(msg, off)
		return PTR{Target: n}, err
	case TypeMX:
		if rdlen < 3 {
			return nil, fmt.Errorf("dnswire: MX rdata length %d", rdlen)
		}
		pref := binary.BigEndian.Uint16(msg[off:])
		n, _, err := decodeName(msg, off+2)
		return MX{Preference: pref, Host: n}, err
	case TypeSOA:
		mname, next, err := decodeName(msg, off)
		if err != nil {
			return nil, err
		}
		rname, next, err := decodeName(msg, next)
		if err != nil {
			return nil, err
		}
		if next+20 > len(msg) {
			return nil, ErrTruncatedMessage
		}
		return SOA{
			MName:   mname,
			RName:   rname,
			Serial:  binary.BigEndian.Uint32(msg[next:]),
			Refresh: binary.BigEndian.Uint32(msg[next+4:]),
			Retry:   binary.BigEndian.Uint32(msg[next+8:]),
			Expire:  binary.BigEndian.Uint32(msg[next+12:]),
			Minimum: binary.BigEndian.Uint32(msg[next+16:]),
		}, nil
	case TypeTXT:
		var strs []string
		p := off
		for p < end {
			l := int(msg[p])
			p++
			if p+l > end {
				return nil, ErrTruncatedMessage
			}
			strs = append(strs, string(msg[p:p+l]))
			p += l
		}
		return TXT{Strings: strs}, nil
	default:
		data := make([]byte, rdlen)
		copy(data, msg[off:end])
		return Raw{RRType: typ, Data: data}, nil
	}
}
