package zone

import (
	"strings"
	"testing"

	"ritw/internal/dnswire"
)

const sampleZoneText = `
; The paper's test zone, as we deploy it per site.
$ORIGIN ourtestdomain.nl.
$TTL 3600
@   IN SOA ns1 hostmaster (
        2017032301 ; serial
        7200       ; refresh
        3600       ; retry
        604800     ; expire
        300 )      ; minimum
    IN NS ns1
    IN NS ns2.ourtestdomain.nl.
ns1 IN A    192.0.2.1
    IN AAAA 2001:db8::1
ns2 IN A    192.0.2.2
www      60 IN CNAME ns1
mail     IN MX 10 ns1
rev      IN PTR target.ourtestdomain.nl.
*        5  IN TXT "site=FRA" "deployment=2A"
`

func parseSample(t *testing.T) *Zone {
	t.Helper()
	z, err := ParseString(sampleZoneText, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestParseFullZone(t *testing.T) {
	z := parseSample(t)
	if !z.Origin().Equal(dnswire.MustParseName("ourtestdomain.nl")) {
		t.Errorf("origin = %s", z.Origin())
	}
	soa, ok := z.SOA()
	if !ok {
		t.Fatal("no SOA")
	}
	data := soa.Data.(dnswire.SOA)
	if data.Serial != 2017032301 || data.Minimum != 300 {
		t.Errorf("SOA = %+v", data)
	}
	if !data.MName.Equal(dnswire.MustParseName("ns1.ourtestdomain.nl")) {
		t.Errorf("SOA MName = %s (relative name resolution broken)", data.MName)
	}
	// 1 SOA + 2 NS + 2 A + 1 AAAA + 1 CNAME + 1 MX + 1 PTR + 1 TXT = 10.
	if got := z.NumRecords(); got != 10 {
		t.Errorf("NumRecords = %d, want 10\n%s", got, z.String())
	}
}

func TestParseOwnerInheritance(t *testing.T) {
	z := parseSample(t)
	// "IN AAAA" under ns1 inherits the ns1 owner.
	res := z.Lookup(dnswire.MustParseName("ns1.ourtestdomain.nl"), dnswire.TypeAAAA)
	if res.Kind != Success {
		t.Fatalf("AAAA under inherited owner: %+v", res)
	}
	// The apex NS lines inherit "@".
	res = z.Lookup(z.Origin(), dnswire.TypeNS)
	if res.Kind != Success || len(res.Records) != 2 {
		t.Fatalf("apex NS: %+v", res)
	}
}

func TestParseExplicitTTLAndQuotedTXT(t *testing.T) {
	z := parseSample(t)
	res := z.Lookup(dnswire.MustParseName("www.ourtestdomain.nl"), dnswire.TypeCNAME)
	if res.Kind != Success || res.Records[0].TTL != 60 {
		t.Fatalf("www TTL: %+v", res)
	}
	res = z.Lookup(dnswire.MustParseName("anything.ourtestdomain.nl"), dnswire.TypeTXT)
	if res.Kind != Success {
		t.Fatalf("wildcard TXT: %+v", res)
	}
	txt := res.Records[0].Data.(dnswire.TXT)
	if len(txt.Strings) != 2 || txt.Strings[0] != "site=FRA" || txt.Strings[1] != "deployment=2A" {
		t.Errorf("TXT strings = %#v", txt.Strings)
	}
	if res.Records[0].TTL != 5 {
		t.Errorf("wildcard TTL = %d, want 5", res.Records[0].TTL)
	}
}

func TestParseMXAndPTR(t *testing.T) {
	z := parseSample(t)
	res := z.Lookup(dnswire.MustParseName("mail.ourtestdomain.nl"), dnswire.TypeMX)
	if res.Kind != Success {
		t.Fatal("MX lookup failed")
	}
	mx := res.Records[0].Data.(dnswire.MX)
	if mx.Preference != 10 || !mx.Host.Equal(dnswire.MustParseName("ns1.ourtestdomain.nl")) {
		t.Errorf("MX = %+v", mx)
	}
	res = z.Lookup(dnswire.MustParseName("rev.ourtestdomain.nl"), dnswire.TypePTR)
	if res.Kind != Success {
		t.Fatal("PTR lookup failed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"no SOA", "$ORIGIN x.nl.\nfoo IN A 192.0.2.1\n"},
		{"bad A", "$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3 4 5\nfoo IN A notanip\n"},
		{"bad AAAA", "$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3 4 5\nfoo IN AAAA 192.0.2.1\n"},
		{"bad type", "$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3 4 5\nfoo IN BOGUS data\n"},
		{"no type", "$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3 4 5\nfoo IN\n"},
		{"bad SOA count", "$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3\n"},
		{"bad SOA number", "$ORIGIN x.nl.\n@ IN SOA ns hm one 2 3 4 5\n"},
		{"dup SOA", "$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3 4 5\n@ IN SOA ns hm 1 2 3 4 5\n"},
		{"unbalanced open", "$ORIGIN x.nl.\n@ IN SOA ns hm (1 2 3 4 5\n"},
		{"unbalanced close", "$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3 4 5 )\n"},
		{"inherit without owner", " IN A 192.0.2.1\n"},
		{"bad origin arg", "$ORIGIN\n"},
		{"bad ttl arg", "$TTL abc\n@ IN SOA ns hm 1 2 3 4 5\n"},
		{"unterminated quote", "$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3 4 5\nt IN TXT \"open\n"},
		{"bad MX pref", "$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3 4 5\nm IN MX ten host\n"},
		{"empty TXT", "$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3 4 5\nt IN TXT\n"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.text, dnswire.Root); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseRecordsBeforeSOAAreStashed(t *testing.T) {
	text := `$ORIGIN x.nl.
foo IN A 192.0.2.9
@ IN SOA ns hm 1 2 3 4 5
`
	z, err := ParseString(text, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	res := z.Lookup(dnswire.MustParseName("foo.x.nl"), dnswire.TypeA)
	if res.Kind != Success {
		t.Errorf("stashed record not served: %+v", res)
	}
}

func TestParseDefaultOrigin(t *testing.T) {
	text := "@ IN SOA ns hm 1 2 3 4 5\nfoo IN A 192.0.2.1\n"
	z, err := ParseString(text, dnswire.MustParseName("fallback.nl"))
	if err != nil {
		t.Fatal(err)
	}
	if !z.Origin().Equal(dnswire.MustParseName("fallback.nl")) {
		t.Errorf("origin = %s", z.Origin())
	}
}

func TestParseCommentOnlyAndBlankLines(t *testing.T) {
	text := `
; leading comment

$ORIGIN x.nl.
; another
@ IN SOA ns hm 1 2 3 4 5

foo IN TXT "v" ; trailing comment
`
	z, err := ParseString(text, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	res := z.Lookup(dnswire.MustParseName("foo.x.nl"), dnswire.TypeTXT)
	if res.Kind != Success || res.Records[0].Data.(dnswire.TXT).Joined() != "v" {
		t.Errorf("res = %+v", res)
	}
}

func TestParseEscapedQuote(t *testing.T) {
	text := "$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3 4 5\nt IN TXT \"a\\\"b\"\n"
	z, err := ParseString(text, dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	res := z.Lookup(dnswire.MustParseName("t.x.nl"), dnswire.TypeTXT)
	if got := res.Records[0].Data.(dnswire.TXT).Joined(); got != `a"b` {
		t.Errorf("TXT = %q", got)
	}
}

func TestZoneRoundTripThroughString(t *testing.T) {
	z := parseSample(t)
	z2, err := ParseString(z.String(), dnswire.Root)
	if err != nil {
		t.Fatalf("re-parse of z.String() failed: %v\n%s", err, z.String())
	}
	if z2.NumRecords() != z.NumRecords() {
		t.Errorf("round trip records = %d, want %d", z2.NumRecords(), z.NumRecords())
	}
}

func TestParseLongLines(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("$ORIGIN x.nl.\n@ IN SOA ns hm 1 2 3 4 5\n")
	sb.WriteString("big IN TXT")
	for i := 0; i < 200; i++ {
		sb.WriteString(" \"chunk\"")
	}
	sb.WriteString("\n")
	z, err := ParseString(sb.String(), dnswire.Root)
	if err != nil {
		t.Fatal(err)
	}
	res := z.Lookup(dnswire.MustParseName("big.x.nl"), dnswire.TypeTXT)
	if res.Kind != Success || len(res.Records[0].Data.(dnswire.TXT).Strings) != 200 {
		t.Errorf("long TXT = %+v", res.Kind)
	}
}
