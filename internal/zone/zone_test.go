package zone

import (
	"net/netip"
	"strings"
	"testing"

	"ritw/internal/dnswire"
)

func testZone(t *testing.T) *Zone {
	t.Helper()
	origin := dnswire.MustParseName("ourtestdomain.nl")
	z := New(origin)
	z.MustAdd(dnswire.RR{Name: origin, Class: dnswire.ClassINET, TTL: 3600,
		Data: dnswire.SOA{
			MName:  dnswire.MustParseName("ns1.ourtestdomain.nl"),
			RName:  dnswire.MustParseName("hostmaster.ourtestdomain.nl"),
			Serial: 2017032301, Refresh: 7200, Retry: 3600, Expire: 604800, Minimum: 300,
		}})
	z.MustAdd(dnswire.RR{Name: origin, Class: dnswire.ClassINET, TTL: 3600,
		Data: dnswire.NS{Host: dnswire.MustParseName("ns1.ourtestdomain.nl")}})
	z.MustAdd(dnswire.RR{Name: origin, Class: dnswire.ClassINET, TTL: 3600,
		Data: dnswire.NS{Host: dnswire.MustParseName("ns2.ourtestdomain.nl")}})
	z.MustAdd(dnswire.RR{Name: dnswire.MustParseName("ns1.ourtestdomain.nl"),
		Class: dnswire.ClassINET, TTL: 3600,
		Data: dnswire.A{Addr: netip.MustParseAddr("192.0.2.1")}})
	z.MustAdd(dnswire.RR{Name: dnswire.MustParseName("www.ourtestdomain.nl"),
		Class: dnswire.ClassINET, TTL: 60,
		Data: dnswire.CNAME{Target: dnswire.MustParseName("ns1.ourtestdomain.nl")}})
	// The wildcard that the measurement relies on: unique labels all
	// resolve to a site-identity TXT.
	z.MustAdd(dnswire.RR{Name: dnswire.MustParseName("*.ourtestdomain.nl"),
		Class: dnswire.ClassINET, TTL: 5,
		Data: dnswire.TXT{Strings: []string{"site=FRA"}}})
	return z
}

func TestLookupExact(t *testing.T) {
	z := testZone(t)
	res := z.Lookup(dnswire.MustParseName("ns1.ourtestdomain.nl"), dnswire.TypeA)
	if res.Kind != Success || len(res.Records) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.Wildcard {
		t.Error("exact match flagged as wildcard")
	}
	a := res.Records[0].Data.(dnswire.A)
	if a.Addr != netip.MustParseAddr("192.0.2.1") {
		t.Errorf("A = %v", a)
	}
	if len(res.Authority) != 2 {
		t.Errorf("positive answers should carry the NS set, got %d", len(res.Authority))
	}
}

func TestLookupSOAAtApex(t *testing.T) {
	z := testZone(t)
	res := z.Lookup(z.Origin(), dnswire.TypeSOA)
	if res.Kind != Success || len(res.Records) != 1 || res.Records[0].Type() != dnswire.TypeSOA {
		t.Fatalf("res = %+v", res)
	}
}

func TestLookupNSAtApex(t *testing.T) {
	z := testZone(t)
	res := z.Lookup(z.Origin(), dnswire.TypeNS)
	if res.Kind != Success || len(res.Records) != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestLookupWildcard(t *testing.T) {
	z := testZone(t)
	q := dnswire.MustParseName("probe-31337-0001.ourtestdomain.nl")
	res := z.Lookup(q, dnswire.TypeTXT)
	if res.Kind != Success || !res.Wildcard {
		t.Fatalf("res = %+v", res)
	}
	if !res.Records[0].Name.Equal(q) {
		t.Errorf("wildcard answer owner = %s, want %s", res.Records[0].Name, q)
	}
	txt := res.Records[0].Data.(dnswire.TXT)
	if txt.Joined() != "site=FRA" {
		t.Errorf("TXT = %v", txt)
	}
	if res.Records[0].TTL != 5 {
		t.Errorf("TTL = %d, want the paper's 5 s", res.Records[0].TTL)
	}
}

func TestWildcardDoesNotMaskExact(t *testing.T) {
	z := testZone(t)
	// ns1 exists: wildcard must not apply, so TXT at ns1 is NoData.
	res := z.Lookup(dnswire.MustParseName("ns1.ourtestdomain.nl"), dnswire.TypeTXT)
	if res.Kind != NoData {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Authority) != 1 || res.Authority[0].Type() != dnswire.TypeSOA {
		t.Errorf("negative answer should carry SOA, got %+v", res.Authority)
	}
	// Negative TTL must be clamped to SOA minimum (300 < 3600).
	if res.Authority[0].TTL != 300 {
		t.Errorf("negative TTL = %d, want 300", res.Authority[0].TTL)
	}
}

func TestWildcardDeepLabels(t *testing.T) {
	z := testZone(t)
	// *.ourtestdomain.nl also matches deeper names per RFC 1034.
	res := z.Lookup(dnswire.MustParseName("a.b.ourtestdomain.nl"), dnswire.TypeTXT)
	if res.Kind != Success || !res.Wildcard {
		t.Fatalf("res = %+v", res)
	}
}

func TestLookupNXDomainOutOfZone(t *testing.T) {
	z := testZone(t)
	res := z.Lookup(dnswire.MustParseName("example.com"), dnswire.TypeA)
	if res.Kind != NXDomain {
		t.Fatalf("res = %+v", res)
	}
}

func TestLookupCNAME(t *testing.T) {
	z := testZone(t)
	// Query A at a CNAME node: CNAME is returned.
	res := z.Lookup(dnswire.MustParseName("www.ourtestdomain.nl"), dnswire.TypeA)
	if res.Kind != Success || len(res.Records) != 1 || res.Records[0].Type() != dnswire.TypeCNAME {
		t.Fatalf("res = %+v", res)
	}
	// Query CNAME explicitly also works.
	res = z.Lookup(dnswire.MustParseName("www.ourtestdomain.nl"), dnswire.TypeCNAME)
	if res.Kind != Success || res.Records[0].Type() != dnswire.TypeCNAME {
		t.Fatalf("res = %+v", res)
	}
}

func TestLookupANY(t *testing.T) {
	z := testZone(t)
	res := z.Lookup(z.Origin(), dnswire.TypeANY)
	if res.Kind != Success || len(res.Records) < 2 {
		t.Fatalf("ANY at apex = %+v", res)
	}
}

func TestAddValidation(t *testing.T) {
	z := testZone(t)
	err := z.Add(dnswire.RR{Name: dnswire.MustParseName("example.com"),
		Class: dnswire.ClassINET, Data: dnswire.TXT{Strings: []string{"x"}}})
	if err == nil {
		t.Error("out-of-zone add should fail")
	}
	err = z.Add(dnswire.RR{Name: z.Origin(), Class: dnswire.ClassINET,
		Data: dnswire.SOA{MName: z.Origin(), RName: z.Origin()}})
	if err != ErrDupSOA {
		t.Errorf("duplicate SOA err = %v", err)
	}
	z2 := New(dnswire.MustParseName("x.nl"))
	err = z2.Add(dnswire.RR{Name: dnswire.MustParseName("sub.x.nl"),
		Class: dnswire.ClassINET, Data: dnswire.SOA{}})
	if err == nil {
		t.Error("non-apex SOA should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on error")
		}
	}()
	z.MustAdd(dnswire.RR{Name: dnswire.MustParseName("example.com"),
		Class: dnswire.ClassINET, Data: dnswire.TXT{}})
}

func TestNumRecordsAndString(t *testing.T) {
	z := testZone(t)
	if got := z.NumRecords(); got != 6 {
		t.Errorf("NumRecords = %d, want 6", got)
	}
	s := z.String()
	for _, want := range []string{"$ORIGIN ourtestdomain.nl.", "SOA", "site=FRA"} {
		if !strings.Contains(s, want) {
			t.Errorf("zone string missing %q:\n%s", want, s)
		}
	}
}

func TestResultKindString(t *testing.T) {
	for k, want := range map[ResultKind]string{
		Success: "Success", NoData: "NoData", NXDomain: "NXDomain",
		Delegation: "Delegation", ResultKind(9): "ResultKind(9)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestSOAAccessor(t *testing.T) {
	z := testZone(t)
	soa, ok := z.SOA()
	if !ok || soa.Type() != dnswire.TypeSOA {
		t.Fatalf("SOA() = %v %v", soa, ok)
	}
	z2 := New(dnswire.MustParseName("empty.nl"))
	if _, ok := z2.SOA(); ok {
		t.Error("empty zone should have no SOA")
	}
	if res := z2.Lookup(dnswire.MustParseName("empty.nl"), dnswire.TypeSOA); res.Kind != NoData {
		t.Errorf("SOA lookup in SOA-less zone = %+v", res)
	}
}
