package zone

import (
	"testing"

	"ritw/internal/dnswire"
)

// FuzzParse drives the zone-file parser with arbitrary master-file
// text. The parser must never panic, and any zone it accepts must be
// internally consistent: every record renders, carries rdata, and the
// zone answers an apex SOA lookup without blowing up — the same
// guarantees the authoritative servers lean on at load time.
func FuzzParse(f *testing.F) {
	f.Add(sampleZoneText)
	f.Add("$ORIGIN example.org.\n$TTL 60\n@ IN SOA ns1 host 1 2 3 4 5\n@ IN NS ns1\nns1 IN A 192.0.2.1\n")
	f.Add("@ IN TXT \"unterminated\n")
	f.Add("a IN A 192.0.2.1 ; trailing comment\n( \n )")
	f.Add("$TTL bogus\n")
	f.Add("www 60 IN CNAME target\n*.sub IN AAAA 2001:db8::1\nmx IN MX 10 host\n")

	f.Fuzz(func(t *testing.T, input string) {
		z, err := ParseString(input, dnswire.MustParseName("fuzz.example."))
		if err != nil {
			return
		}
		rrs := z.Records()
		if len(rrs) != z.NumRecords() {
			t.Fatalf("Records() returned %d of %d records", len(rrs), z.NumRecords())
		}
		for _, rr := range rrs {
			if rr.Data == nil {
				t.Fatalf("accepted record with nil rdata: %v", rr.Name)
			}
			_ = rr.String()
		}
		_ = z.Lookup(z.Origin(), dnswire.TypeSOA)
		_ = z.String()
	})
}
