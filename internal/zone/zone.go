// Package zone implements the authoritative data model: a zone is a
// set of RRsets under an origin, with RFC 1034 lookup semantics
// (exact match, NODATA vs NXDOMAIN, CNAME, and wildcards).
//
// Wildcards matter for this system: the paper's measurement queries a
// unique label for every probe ("unique labels for each query" §3.1)
// so the test zone serves *.ourtestdomain.nl from a wildcard TXT whose
// content identifies the answering site.
package zone

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ritw/internal/dnswire"
)

// Errors returned by zone operations.
var (
	ErrOutOfZone = errors.New("zone: record out of zone")
	ErrNoSOA     = errors.New("zone: zone has no SOA")
	ErrDupSOA    = errors.New("zone: duplicate SOA")
)

// Zone is an authoritative zone: an origin plus RRsets.
type Zone struct {
	origin dnswire.Name
	soa    *dnswire.RR
	// nodes maps canonical owner name -> type -> RRset.
	nodes map[string]map[dnswire.Type][]dnswire.RR
}

// New creates an empty zone for origin.
func New(origin dnswire.Name) *Zone {
	return &Zone{
		origin: origin,
		nodes:  make(map[string]map[dnswire.Type][]dnswire.RR),
	}
}

// Origin returns the zone apex name.
func (z *Zone) Origin() dnswire.Name { return z.origin }

// SOA returns the zone's SOA record, if set.
func (z *Zone) SOA() (dnswire.RR, bool) {
	if z.soa == nil {
		return dnswire.RR{}, false
	}
	return *z.soa, true
}

// Add inserts a record. The owner must be at or below the origin, and
// a zone holds exactly one SOA (at the apex).
func (z *Zone) Add(rr dnswire.RR) error {
	if !rr.Name.IsSubdomainOf(z.origin) {
		return fmt.Errorf("%w: %s not under %s", ErrOutOfZone, rr.Name, z.origin)
	}
	if rr.Type() == dnswire.TypeSOA {
		if z.soa != nil {
			return ErrDupSOA
		}
		if !rr.Name.Equal(z.origin) {
			return fmt.Errorf("zone: SOA owner %s is not the apex %s", rr.Name, z.origin)
		}
		soa := rr
		z.soa = &soa
		return nil
	}
	key := rr.Name.Key()
	byType := z.nodes[key]
	if byType == nil {
		byType = make(map[dnswire.Type][]dnswire.RR)
		z.nodes[key] = byType
	}
	byType[rr.Type()] = append(byType[rr.Type()], rr)
	return nil
}

// MustAdd is Add for static configuration; it panics on error.
func (z *Zone) MustAdd(rr dnswire.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// NumRecords counts all records including the SOA.
func (z *Zone) NumRecords() int {
	n := 0
	if z.soa != nil {
		n++
	}
	for _, byType := range z.nodes {
		for _, set := range byType {
			n += len(set)
		}
	}
	return n
}

// Names returns all owner names (canonical form) in sorted order,
// excluding the apex SOA-only case.
type ResultKind uint8

// Lookup outcomes, in RFC 2308 terms.
const (
	// Success: the RRset is in Records.
	Success ResultKind = iota
	// NoData: the owner exists but has no RRset of the queried type.
	NoData
	// NXDomain: the owner does not exist in the zone.
	NXDomain
	// Delegation would be used for referrals; this system serves leaf
	// zones only, so it is reserved.
	Delegation
)

// String names the lookup outcome.
func (k ResultKind) String() string {
	switch k {
	case Success:
		return "Success"
	case NoData:
		return "NoData"
	case NXDomain:
		return "NXDomain"
	case Delegation:
		return "Delegation"
	default:
		return fmt.Sprintf("ResultKind(%d)", uint8(k))
	}
}

// Result is the outcome of a zone lookup.
type Result struct {
	Kind ResultKind
	// Records is the answer RRset (owner rewritten for wildcard
	// matches, CNAME prepended when followed).
	Records []dnswire.RR
	// Authority carries the SOA for negative answers and the NS set
	// for positive ones, ready for the respective message sections.
	Authority []dnswire.RR
	// Wildcard reports whether a wildcard synthesized the answer.
	Wildcard bool
}

// Lookup resolves (qname, qtype) within the zone following RFC 1034
// §4.3.2: exact node match, else wildcard, with CNAME chasing inside
// the zone (single step; our zones do not chain CNAMEs).
func (z *Zone) Lookup(qname dnswire.Name, qtype dnswire.Type) Result {
	if !qname.IsSubdomainOf(z.origin) {
		return Result{Kind: NXDomain, Authority: z.negativeAuthority()}
	}
	if qtype == dnswire.TypeSOA && qname.Equal(z.origin) {
		if z.soa != nil {
			return Result{Kind: Success, Records: []dnswire.RR{*z.soa}, Authority: z.apexNS()}
		}
		return Result{Kind: NoData, Authority: z.negativeAuthority()}
	}

	byType, exists := z.nodes[qname.Key()]
	if exists {
		if rrs := z.answer(byType, qname, qtype, false); rrs != nil {
			return Result{Kind: Success, Records: rrs, Authority: z.apexNS()}
		}
		return Result{Kind: NoData, Authority: z.negativeAuthority()}
	}
	// Wildcard search: climb from the qname's parent to the apex
	// looking for *.<ancestor>.
	anc := qname.Parent()
	for {
		wc, err := anc.Child("*")
		if err == nil {
			if byType, ok := z.nodes[wc.Key()]; ok {
				if rrs := z.answer(byType, qname, qtype, true); rrs != nil {
					return Result{Kind: Success, Records: rrs, Authority: z.apexNS(), Wildcard: true}
				}
				return Result{Kind: NoData, Authority: z.negativeAuthority(), Wildcard: true}
			}
		}
		if anc.Equal(z.origin) || anc.IsRoot() {
			break
		}
		anc = anc.Parent()
	}
	// The apex itself exists implicitly if it has an SOA.
	if qname.Equal(z.origin) && z.soa != nil {
		return Result{Kind: NoData, Authority: z.negativeAuthority()}
	}
	return Result{Kind: NXDomain, Authority: z.negativeAuthority()}
}

// answer extracts the RRset for qtype from a node, rewriting owners
// for wildcard synthesis and following one CNAME step.
func (z *Zone) answer(byType map[dnswire.Type][]dnswire.RR, qname dnswire.Name, qtype dnswire.Type, wildcard bool) []dnswire.RR {
	rewrite := func(rrs []dnswire.RR) []dnswire.RR {
		out := make([]dnswire.RR, len(rrs))
		copy(out, rrs)
		if wildcard {
			for i := range out {
				out[i].Name = qname
			}
		}
		return out
	}
	if qtype == dnswire.TypeANY {
		var all []dnswire.RR
		types := make([]int, 0, len(byType))
		for t := range byType {
			types = append(types, int(t))
		}
		sort.Ints(types)
		for _, t := range types {
			all = append(all, rewrite(byType[dnswire.Type(t)])...)
		}
		if len(all) == 0 {
			return nil
		}
		return all
	}
	if rrs, ok := byType[qtype]; ok {
		return rewrite(rrs)
	}
	// CNAME at the node answers any type (except when CNAME itself was
	// asked, handled above).
	if rrs, ok := byType[dnswire.TypeCNAME]; ok {
		return rewrite(rrs)
	}
	return nil
}

// apexNS returns the zone's NS RRset for the authority section.
func (z *Zone) apexNS() []dnswire.RR {
	byType, ok := z.nodes[z.origin.Key()]
	if !ok {
		return nil
	}
	rrs := byType[dnswire.TypeNS]
	out := make([]dnswire.RR, len(rrs))
	copy(out, rrs)
	return out
}

// negativeAuthority returns the SOA for NXDOMAIN/NODATA responses,
// with its TTL clamped to the SOA minimum (RFC 2308 negative TTL).
func (z *Zone) negativeAuthority() []dnswire.RR {
	if z.soa == nil {
		return nil
	}
	soa := *z.soa
	if data, ok := soa.Data.(dnswire.SOA); ok && data.Minimum < soa.TTL {
		soa.TTL = data.Minimum
	}
	return []dnswire.RR{soa}
}

// Records returns every record in the zone with the SOA first and the
// rest in sorted owner/type order — the order a zone transfer emits.
func (z *Zone) Records() []dnswire.RR {
	out := make([]dnswire.RR, 0, z.NumRecords())
	if z.soa != nil {
		out = append(out, *z.soa)
	}
	keys := make([]string, 0, len(z.nodes))
	for k := range z.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		byType := z.nodes[k]
		types := make([]int, 0, len(byType))
		for t := range byType {
			types = append(types, int(t))
		}
		sort.Ints(types)
		for _, t := range types {
			out = append(out, byType[dnswire.Type(t)]...)
		}
	}
	return out
}

// String renders the zone in master-file-like form (apex first, then
// sorted owners) for debugging and golden tests.
func (z *Zone) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "$ORIGIN %s\n", z.origin)
	if z.soa != nil {
		fmt.Fprintln(&sb, z.soa.String())
	}
	keys := make([]string, 0, len(z.nodes))
	for k := range z.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		byType := z.nodes[k]
		types := make([]int, 0, len(byType))
		for t := range byType {
			types = append(types, int(t))
		}
		sort.Ints(types)
		for _, t := range types {
			for _, rr := range byType[dnswire.Type(t)] {
				fmt.Fprintln(&sb, rr.String())
			}
		}
	}
	return sb.String()
}
