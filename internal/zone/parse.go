package zone

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"ritw/internal/dnswire"
)

// Parse reads a zone in RFC 1035 master-file format (the subset used
// by this system): $ORIGIN and $TTL directives, ';' comments, '@' for
// the origin, relative and absolute names, owner inheritance from the
// previous record, parenthesized continuation (SOA style), quoted TXT
// strings, and the record types A, AAAA, NS, SOA, TXT, CNAME, PTR, MX.
func Parse(r io.Reader, defaultOrigin dnswire.Name) (*Zone, error) {
	p := &parser{
		origin: defaultOrigin,
		ttl:    3600,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	var pending []string // tokens accumulated across parenthesized lines
	depth := 0
	for sc.Scan() {
		lineNo++
		toks, opens, closes, err := tokenize(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
		}
		startsRecord := depth == 0
		depth += opens - closes
		if depth < 0 {
			return nil, fmt.Errorf("zone: line %d: unbalanced ')'", lineNo)
		}
		// The inherit-owner sentinel only means something at the start
		// of a record; drop it from parenthesized continuation lines.
		if !startsRecord && len(toks) > 0 && toks[0] == inheritOwner {
			toks = toks[1:]
		}
		if startsRecord && len(pending) > 0 {
			if err := p.record(pending); err != nil {
				return nil, fmt.Errorf("zone: line %d: %w", lineNo-1, err)
			}
			pending = nil
		}
		// Leading whitespace means "inherit previous owner": tokenize
		// flags it with a sentinel.
		pending = append(pending, toks...)
		if depth == 0 && len(pending) > 0 {
			if err := p.record(pending); err != nil {
				return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
			}
			pending = nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if depth != 0 {
		return nil, fmt.Errorf("zone: unbalanced '(' at EOF")
	}
	if len(pending) > 0 {
		if err := p.record(pending); err != nil {
			return nil, fmt.Errorf("zone: line %d: %w", lineNo, err)
		}
	}
	if p.zone == nil {
		return nil, ErrNoSOA
	}
	return p.zone, nil
}

// ParseString is Parse over a string.
func ParseString(s string, defaultOrigin dnswire.Name) (*Zone, error) {
	return Parse(strings.NewReader(s), defaultOrigin)
}

// inheritOwner is the sentinel token emitted when a line starts with
// whitespace, meaning the record reuses the previous owner name.
const inheritOwner = "\x00inherit"

// tokenize splits one master-file line into tokens, stripping comments
// and handling quoted strings and parentheses. Quoted tokens keep a
// leading '"' so the record parser can tell them apart.
func tokenize(line string) (toks []string, opens, closes int, err error) {
	if len(line) > 0 && (line[0] == ' ' || line[0] == '\t') {
		toks = append(toks, inheritOwner)
	}
	i := 0
	for i < len(line) {
		ch := line[i]
		switch {
		case ch == ';':
			return toks, opens, closes, nil
		case ch == ' ' || ch == '\t':
			i++
		case ch == '(':
			opens++
			i++
		case ch == ')':
			closes++
			i++
		case ch == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(line) && line[j] != '"' {
				if line[j] == '\\' && j+1 < len(line) {
					j++
				}
				sb.WriteByte(line[j])
				j++
			}
			if j >= len(line) {
				return nil, 0, 0, fmt.Errorf("unterminated quoted string")
			}
			toks = append(toks, "\""+sb.String())
			i = j + 1
		default:
			j := i
			for j < len(line) {
				c := line[j]
				if c == ' ' || c == '\t' || c == ';' || c == '(' || c == ')' {
					break
				}
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		}
	}
	return toks, opens, closes, nil
}

type parser struct {
	origin    dnswire.Name
	ttl       uint32
	lastOwner dnswire.Name
	haveOwner bool
	zone      *Zone
	// stash holds records added before the SOA established the zone.
	stash []dnswire.RR
}

// record consumes the tokens of one logical record or directive.
func (p *parser) record(toks []string) error {
	if len(toks) == 0 {
		return nil
	}
	if toks[0] == "$ORIGIN" {
		if len(toks) != 2 {
			return fmt.Errorf("$ORIGIN needs one argument")
		}
		n, err := p.name(toks[1])
		if err != nil {
			return err
		}
		p.origin = n
		return nil
	}
	if toks[0] == "$TTL" {
		if len(toks) != 2 {
			return fmt.Errorf("$TTL needs one argument")
		}
		v, err := strconv.ParseUint(toks[1], 10, 32)
		if err != nil {
			return fmt.Errorf("bad $TTL %q", toks[1])
		}
		p.ttl = uint32(v)
		return nil
	}

	// Owner.
	var owner dnswire.Name
	rest := toks
	if toks[0] == inheritOwner {
		if !p.haveOwner {
			return fmt.Errorf("record inherits owner but none seen yet")
		}
		owner = p.lastOwner
		rest = toks[1:]
	} else {
		n, err := p.name(toks[0])
		if err != nil {
			return err
		}
		owner = n
		rest = toks[1:]
	}
	p.lastOwner = owner
	p.haveOwner = true

	// Optional TTL and class, in either order (RFC 1035 allows both).
	ttl := p.ttl
	class := dnswire.ClassINET
	for len(rest) > 0 {
		tok := rest[0]
		if v, err := strconv.ParseUint(tok, 10, 32); err == nil {
			ttl = uint32(v)
			rest = rest[1:]
			continue
		}
		if tok == "IN" {
			class = dnswire.ClassINET
			rest = rest[1:]
			continue
		}
		if tok == "CH" {
			class = dnswire.ClassCHAOS
			rest = rest[1:]
			continue
		}
		break
	}
	if len(rest) == 0 {
		return fmt.Errorf("record for %s has no type", owner)
	}
	typ, err := dnswire.ParseType(rest[0])
	if err != nil {
		return err
	}
	rdataToks := rest[1:]
	data, err := p.rdata(typ, rdataToks)
	if err != nil {
		return fmt.Errorf("%s %s: %w", owner, typ, err)
	}
	rr := dnswire.RR{Name: owner, Class: class, TTL: ttl, Data: data}

	if typ == dnswire.TypeSOA {
		if p.zone != nil {
			return ErrDupSOA
		}
		p.zone = New(owner)
		if err := p.zone.Add(rr); err != nil {
			return err
		}
		for _, stashed := range p.stash {
			if err := p.zone.Add(stashed); err != nil {
				return err
			}
		}
		p.stash = nil
		return nil
	}
	if p.zone == nil {
		p.stash = append(p.stash, rr)
		return nil
	}
	return p.zone.Add(rr)
}

// name resolves a presentation name against the current origin.
func (p *parser) name(tok string) (dnswire.Name, error) {
	if tok == "@" {
		return p.origin, nil
	}
	if strings.HasSuffix(tok, ".") {
		return dnswire.ParseName(tok)
	}
	rel, err := dnswire.ParseName(tok)
	if err != nil {
		return dnswire.Name{}, err
	}
	// Append origin labels.
	full := tok
	if !p.origin.IsRoot() {
		full = tok + "." + p.origin.String()
	}
	n, err := dnswire.ParseName(full)
	if err != nil {
		return dnswire.Name{}, err
	}
	_ = rel
	return n, nil
}

// rdata parses type-specific presentation data.
func (p *parser) rdata(typ dnswire.Type, toks []string) (dnswire.RData, error) {
	need := func(n int) error {
		if len(toks) != n {
			return fmt.Errorf("want %d rdata fields, got %d", n, len(toks))
		}
		return nil
	}
	switch typ {
	case dnswire.TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(toks[0])
		if err != nil || !a.Is4() {
			return nil, fmt.Errorf("bad IPv4 %q", toks[0])
		}
		return dnswire.A{Addr: a}, nil
	case dnswire.TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		a, err := netip.ParseAddr(toks[0])
		if err != nil || !a.Is6() || a.Is4In6() {
			return nil, fmt.Errorf("bad IPv6 %q", toks[0])
		}
		return dnswire.AAAA{Addr: a}, nil
	case dnswire.TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := p.name(toks[0])
		if err != nil {
			return nil, err
		}
		return dnswire.NS{Host: n}, nil
	case dnswire.TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := p.name(toks[0])
		if err != nil {
			return nil, err
		}
		return dnswire.CNAME{Target: n}, nil
	case dnswire.TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		n, err := p.name(toks[0])
		if err != nil {
			return nil, err
		}
		return dnswire.PTR{Target: n}, nil
	case dnswire.TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(toks[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", toks[0])
		}
		n, err := p.name(toks[1])
		if err != nil {
			return nil, err
		}
		return dnswire.MX{Preference: uint16(pref), Host: n}, nil
	case dnswire.TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		mname, err := p.name(toks[0])
		if err != nil {
			return nil, err
		}
		rname, err := p.name(toks[1])
		if err != nil {
			return nil, err
		}
		nums := make([]uint32, 5)
		for i, tok := range toks[2:] {
			v, err := strconv.ParseUint(tok, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad SOA number %q", tok)
			}
			nums[i] = uint32(v)
		}
		return dnswire.SOA{
			MName: mname, RName: rname,
			Serial: nums[0], Refresh: nums[1], Retry: nums[2],
			Expire: nums[3], Minimum: nums[4],
		}, nil
	case dnswire.TypeTXT:
		if len(toks) == 0 {
			return nil, fmt.Errorf("TXT needs at least one string")
		}
		strs := make([]string, len(toks))
		for i, tok := range toks {
			strs[i] = strings.TrimPrefix(tok, "\"")
		}
		return dnswire.TXT{Strings: strs}, nil
	default:
		return nil, fmt.Errorf("unsupported type %s in zone file", typ)
	}
}
