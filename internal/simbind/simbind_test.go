package simbind

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"ritw/internal/authserver"
	"ritw/internal/dnswire"
	"ritw/internal/geo"
	"ritw/internal/netsim"
	"ritw/internal/resolver"
	"ritw/internal/zone"
)

const zoneText = `
$ORIGIN test.nl.
@ IN SOA ns1 hostmaster 1 7200 3600 604800 300
@ IN NS ns1
* 5 IN TXT "site=X"
`

func TestSimClock(t *testing.T) {
	sim := netsim.NewSimulator()
	clk := SimClock{Sim: sim}
	if clk.Now() != 0 {
		t.Error("fresh clock should read zero")
	}
	var at time.Duration
	clk.AfterFunc(7*time.Millisecond, func() { at = clk.Now() })
	sim.Run()
	if at != 7*time.Millisecond {
		t.Errorf("AfterFunc fired at %v", at)
	}
}

// TestFullStackInSim wires client -> resolver -> unicast and anycast
// authoritatives entirely inside the simulator.
func TestFullStackInSim(t *testing.T) {
	sim := netsim.NewSimulator()
	net := netsim.NewNetwork(sim, geo.DefaultPathModel(), 5)
	net.BGPNoise = 0

	newAuth := func(code string) *netsim.Host {
		z, err := zone.ParseString(zoneText, dnswire.Root)
		if err != nil {
			t.Fatal(err)
		}
		h := net.AddHost(geo.MustSite(code).Coord)
		BindAuth(h, authserver.NewEngine(authserver.Config{
			Zones: []*zone.Zone{z}, Identity: code,
		}))
		return h
	}
	unicast := newAuth("FRA")
	m1, m2 := newAuth("EWR"), newAuth("NRT")
	svc := netip.MustParseAddr("198.18.1.1")
	net.AddAnycast(svc, []*netsim.Host{m1, m2})

	rhost := net.AddHost(geo.MustSite("AMS").Coord)
	eng := resolver.NewEngine(resolver.Config{
		Policy: resolver.NewPolicy(resolver.KindUniform),
		Infra:  resolver.NewInfraCache(time.Minute, resolver.HardExpire),
		Cache:  resolver.NewRecordCache(),
		Zones: []resolver.ZoneServers{{
			Zone:    dnswire.MustParseName("test.nl"),
			Servers: []netip.Addr{unicast.Addr, svc},
		}},
		Transport: HostTransport{Host: rhost},
		Clock:     SimClock{Sim: sim},
		RNG:       rand.New(rand.NewSource(3)),
	})
	BindResolver(rhost, eng)

	client := net.AddHost(geo.MustSite("AMS").Coord)
	answers := 0
	client.Handle(func(_, _ netip.Addr, payload []byte) {
		msg, err := dnswire.Unpack(payload)
		if err != nil || msg.RCode != dnswire.RCodeNoError || len(msg.Answers) == 0 {
			return
		}
		answers++
	})
	const n = 40
	for i := 0; i < n; i++ {
		i := i
		sim.Schedule(time.Duration(i)*time.Second, func() {
			name, err := dnswire.MustParseName("test.nl").Child(labelFor(i))
			if err != nil {
				t.Error(err)
				return
			}
			wire, err := dnswire.NewQuery(uint16(i), name, dnswire.TypeTXT).Pack()
			if err != nil {
				t.Error(err)
				return
			}
			client.Send(rhost.Addr, wire)
		})
	}
	sim.Run()
	if answers != n {
		t.Fatalf("answers = %d, want %d (anycast reply path broken?)", answers, n)
	}
	// Both the unicast server and the anycast service must have been
	// selected by the uniform policy, and the anycast answers must
	// have come back from the service address (pq.upstream matching).
	st := eng.Stats()
	if st.UpstreamAnswers != n {
		t.Errorf("upstream answers = %d", st.UpstreamAnswers)
	}
	now := sim.Now()
	if !eng.Infra().State(unicast.Addr, now).Known || !eng.Infra().State(svc, now).Known {
		t.Error("both upstreams should have latency state")
	}
	// The AMS resolver's anycast catchment is EWR, far closer than NRT.
	if got := net.Catchment(rhost, svc); got != m1 {
		t.Errorf("catchment = %v, want EWR member", got.Addr)
	}
}

func labelFor(i int) string {
	return "q" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}
