// Package simbind wires protocol engines (internal/resolver,
// internal/authserver) onto simulated hosts (internal/netsim). It
// provides the Clock and Transport adapters the engines need, so the
// exact same engine code that serves real sockets also runs inside the
// discrete-event simulator.
package simbind

import (
	"net/netip"
	"time"

	"ritw/internal/authserver"
	"ritw/internal/netsim"
	"ritw/internal/resolver"
)

// SimClock adapts the simulator's virtual clock to resolver.Clock.
type SimClock struct {
	Sim *netsim.Simulator
}

// Now implements resolver.Clock.
func (c SimClock) Now() time.Duration { return c.Sim.Now() }

// AfterFunc implements resolver.Clock.
func (c SimClock) AfterFunc(d time.Duration, fn func()) { c.Sim.Schedule(d, fn) }

// HostTransport adapts a simulated host to resolver.Transport.
type HostTransport struct {
	Host *netsim.Host
}

// Send implements resolver.Transport.
func (t HostTransport) Send(dst netip.Addr, payload []byte) { t.Host.Send(dst, payload) }

// BindResolver attaches a resolver engine to a host: inbound datagrams
// flow into the engine, outbound through the host.
func BindResolver(h *netsim.Host, e *resolver.Engine) {
	h.Handle(func(src, _ netip.Addr, payload []byte) {
		e.HandlePacket(src, payload)
	})
}

// BindAuth attaches an authoritative engine to a host. Responses go
// back to the query source *from the address the query was sent to*:
// a site of an anycast service answers from the service address, as
// real anycast does — otherwise the resolver's off-path-response
// protection would discard the reply.
//
// The handler reuses one response buffer across queries: the network
// copies payloads before scheduling delivery, and the simulator is
// single-threaded, so the buffer is free again by the next packet.
// This keeps the simulated hot path on the same zero-allocation
// encoder as the socket server.
func BindAuth(h *netsim.Host, e *authserver.Engine) {
	var buf []byte
	h.Handle(func(src, dst netip.Addr, payload []byte) {
		buf = e.AppendQuery(buf[:0], src, payload, 0)
		if len(buf) > 0 {
			h.SendAs(dst, src, buf)
		}
	})
}
