package obs

import (
	"net/netip"
	"time"
)

// TraceOutcome classifies how a traced query finished.
type TraceOutcome uint8

const (
	// OutcomeAnswered means an upstream answer was relayed.
	OutcomeAnswered TraceOutcome = iota
	// OutcomeCacheHit means the record cache answered locally.
	OutcomeCacheHit
	// OutcomeLocal means the engine answered without upstream traffic
	// (CHAOS identity, FORMERR, unservable zone).
	OutcomeLocal
	// OutcomeServFail means every upstream attempt failed (timeouts or
	// error rcodes) and the client got SERVFAIL.
	OutcomeServFail
)

// String names the outcome for logs and reporters.
func (o TraceOutcome) String() string {
	switch o {
	case OutcomeAnswered:
		return "answered"
	case OutcomeCacheHit:
		return "cachehit"
	case OutcomeLocal:
		return "local"
	case OutcomeServFail:
		return "servfail"
	}
	return "unknown"
}

// QueryTrace describes one completed client query end to end. It is a
// value (no retained pointers), so hooks may ship it across goroutines
// freely.
type QueryTrace struct {
	// Client is the querying client's address.
	Client netip.Addr
	// QName and QType identify the question.
	QName string
	QType uint16
	// Outcome classifies the result.
	Outcome TraceOutcome
	// RCode is the DNS rcode sent to the client.
	RCode uint8
	// Server is the upstream that produced the final answer (unset for
	// cache hits and local answers).
	Server netip.Addr
	// Attempts counts upstream sends for this query, including error
	// rcode failovers and timeout retries.
	Attempts int
	// Failovers counts upstream attempts abandoned on an error rcode
	// (SERVFAIL/REFUSED) before the final one.
	Failovers int
	// Duration is the client-perceived handling time, from query
	// arrival to the final reply.
	Duration time.Duration
}

// TraceHook observes completed queries. The resolver calls the hook
// inside its serialization (like authserver.Config.OnQuery), so calls
// never overlap — but they sit on the serving path, so hooks must
// return quickly and must not call back into the engine.
type TraceHook interface {
	TraceQuery(QueryTrace)
}

// TraceFunc adapts a function to TraceHook.
type TraceFunc func(QueryTrace)

// TraceQuery implements TraceHook.
func (f TraceFunc) TraceQuery(t QueryTrace) { f(t) }
