package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("q_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if c.Value() != 5 {
		t.Errorf("value = %d, want 5", c.Value())
	}
	if again := r.Counter("q_total"); again != c {
		t.Error("get-or-create must return the same counter")
	}
	if r.Counter("other") == c {
		t.Error("distinct names must be distinct counters")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("srtt_ms")
	g.Set(42.5)
	if g.Value() != 42.5 {
		t.Errorf("value = %v", g.Value())
	}
	g.Add(-2.5)
	if g.Value() != 40 {
		t.Errorf("after Add: %v", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 99, 500, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat_us"]
	want := []int64{2, 2, 1, 1} // (..10] (10..100] (100..1000] (1000..]
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-5625) > 1e-9 {
		t.Errorf("sum = %v, want 5625", s.Sum)
	}
	if q := s.Quantile(0.5); q <= 0 || q > 100 {
		t.Errorf("median estimate = %v, want in (0,100]", q)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds should panic at registration")
		}
	}()
	NewRegistry().Histogram("bad", []float64{10, 5})
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must be inert")
	}
	if n := len(r.Snapshot().Counters); n != 0 {
		t.Errorf("nil registry snapshot has %d counters", n)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	s := r.Snapshot()
	r.Counter("a").Inc()
	if s.Counter("a") != 1 {
		t.Errorf("snapshot moved: %d", s.Counter("a"))
	}
	if got := r.Snapshot().Counter("a"); got != 2 {
		t.Errorf("registry = %d", got)
	}
	if s.Counter("missing") != 0 || s.Gauge("missing") != 0 {
		t.Error("absent names must read 0")
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(1.5)
	r.Histogram(LabelName("lat_us", "site", "fra1"), []float64{10, 100}).Observe(50)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"a_gauge 1.5\n",
		"b_total 2\n",
		`lat_us_bucket{site="fra1",le="10"} 0` + "\n",
		`lat_us_bucket{site="fra1",le="100"} 1` + "\n",
		`lat_us_bucket{site="fra1",le="+Inf"} 1` + "\n",
		`lat_us_sum{site="fra1"} 50` + "\n",
		`lat_us_count{site="fra1"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Sorted output: the gauge line precedes the counter line.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Error("output not sorted by name")
	}
}

func TestUnlabeledHistogramText(t *testing.T) {
	r := NewRegistry()
	r.Histogram("plain", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`plain_bucket{le="1"} 1`, `plain_bucket{le="+Inf"} 1`, "plain_sum 0.5", "plain_count 1",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(7)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 7") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

func TestLabelNameEscapes(t *testing.T) {
	if got := LabelName("m", "k", `a"b\c`); got != `m{k="a\"b\\c"}` {
		t.Errorf("LabelName = %q", got)
	}
}

func TestTraceOutcomeStrings(t *testing.T) {
	cases := map[TraceOutcome]string{
		OutcomeAnswered: "answered", OutcomeCacheHit: "cachehit",
		OutcomeLocal: "local", OutcomeServFail: "servfail",
		TraceOutcome(99): "unknown",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
	var got []QueryTrace
	TraceFunc(func(q QueryTrace) { got = append(got, q) }).TraceQuery(QueryTrace{QName: "x."})
	if len(got) != 1 || got[0].QName != "x." {
		t.Errorf("TraceFunc adapter: %+v", got)
	}
}

// TestConcurrentInstruments hammers one registry from many goroutines;
// run under -race it pins the lock-free update claims, and the final
// values pin that no increments are lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Mix registration (locked) and updates (lock-free).
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{0.5, 10, 1000}).Observe(float64(i % 20))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	const total = goroutines * perG
	if s.Counter("c_total") != total {
		t.Errorf("counter = %d, want %d", s.Counter("c_total"), total)
	}
	if s.Gauge("g") != total {
		t.Errorf("gauge = %v, want %d", s.Gauge("g"), total)
	}
	h := s.Histograms["h"]
	if h.Count != total {
		t.Errorf("histogram count = %d, want %d", h.Count, total)
	}
	var bucketSum int64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != total {
		t.Errorf("bucket sum = %d, want %d", bucketSum, total)
	}
}

// TestRegistryMerge pins the cross-process aggregation semantics the
// lane-worker path relies on: counters add, gauges take the snapshot's
// value, histograms add bucket-wise, and a bounds mismatch is refused
// rather than silently mis-summed.
func TestRegistryMerge(t *testing.T) {
	parent := NewRegistry()
	parent.Counter("events_total").Add(10)
	parent.Gauge("lane_wallclock_ms{lane=\"0\"}").Set(5)
	parent.Histogram("rtt_ms", []float64{1, 10}).Observe(0.5)

	worker := NewRegistry()
	worker.Counter("events_total").Add(7)
	worker.Counter("packets_total").Add(3)
	worker.Gauge("lane_wallclock_ms{lane=\"1\"}").Set(9)
	h := worker.Histogram("rtt_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(100)
	worker.Histogram("fresh", []float64{2}).Observe(1)

	if err := parent.Merge(worker.Snapshot()); err != nil {
		t.Fatal(err)
	}
	s := parent.Snapshot()
	if got := s.Counter("events_total"); got != 17 {
		t.Errorf("merged counter = %d, want 17", got)
	}
	if got := s.Counter("packets_total"); got != 3 {
		t.Errorf("new counter = %d, want 3", got)
	}
	if got := s.Gauge("lane_wallclock_ms{lane=\"1\"}"); got != 9 {
		t.Errorf("merged gauge = %v, want 9", got)
	}
	hs := s.Histograms["rtt_ms"]
	if hs.Count != 3 || hs.Counts[0] != 2 || hs.Counts[2] != 1 {
		t.Errorf("merged histogram = %+v, want 3 samples (2 low, 1 +Inf)", hs)
	}
	if fresh := s.Histograms["fresh"]; fresh.Count != 1 || len(fresh.Bounds) != 1 {
		t.Errorf("absent histogram should be created from snapshot bounds, got %+v", fresh)
	}

	bad := NewRegistry()
	bad.Histogram("rtt_ms", []float64{1, 10, 100}).Observe(1)
	if err := parent.Merge(bad.Snapshot()); err == nil {
		t.Error("bounds mismatch should be reported")
	}
	if again := parent.Snapshot().Histograms["rtt_ms"]; again.Count != 3 {
		t.Errorf("mismatched merge must not mutate the histogram, count = %d", again.Count)
	}
	var nilReg *Registry
	if err := nilReg.Merge(worker.Snapshot()); err != nil {
		t.Errorf("nil registry merge: %v", err)
	}
}
