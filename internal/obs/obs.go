// Package obs is the cross-layer observability substrate: named atomic
// counters, gauges and fixed-bucket histograms in a registry, plus a
// lightweight per-query trace hook. It exists so the serving and
// orchestration layers (authserver, resolver, netsim, core.Runner) can
// be watched live under load — the operational visibility the paper's
// authoritative operators rely on — without perturbing what they
// measure.
//
// Design constraints, in order:
//
//  1. Hot-path instruments are update-only and lock-free: Counter.Inc,
//     Gauge.Set and Histogram.Observe are single atomic operations (a
//     short CAS loop for the histogram sum) and never allocate.
//  2. Every instrument method is nil-safe: a nil *Counter (etc.) is a
//     no-op, so engines instrument unconditionally and pay one
//     predictable branch when metrics are disabled. Benchmarks pin the
//     enabled-path overhead (see BENCH.md).
//  3. Zero dependencies beyond the standard library. The text
//     exposition follows the Prometheus format closely enough that a
//     real scraper ingests it, but nothing here imports one.
//
// Registration (Registry.Counter, .Gauge, .Histogram) takes a mutex
// and may allocate; engines register once at construction and hold the
// returned pointers.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil Counter is a no-op sink.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value that can go up and down (an SRTT
// snapshot, a pool depth). A nil Gauge is a no-op sink.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta with a CAS loop (lock-free, no allocation).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// edges in ascending order; an implicit +Inf bucket catches the rest.
// Observe is a linear scan over the (small, fixed) bound slice plus
// two atomic adds and a CAS — no locks, no allocation. A nil Histogram
// is a no-op sink.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// newHistogram copies bounds and validates ordering.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot copies the histogram state. Buckets are read without a
// barrier against concurrent Observe, so a snapshot taken mid-update
// can be off by in-flight samples — fine for monitoring.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is the point-in-time state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket edges; Counts has one more
	// entry than Bounds (the +Inf bucket).
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Quantile returns an estimate of quantile q in [0,1] by linear
// interpolation inside the winning bucket (the +Inf bucket reports the
// last finite bound). It returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen int64
	for i, c := range s.Counts {
		if float64(seen+c) >= rank && c > 0 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			frac := (rank - float64(seen)) / float64(c)
			return lo + frac*(s.Bounds[i]-lo)
		}
		seen += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry is a named collection of instruments. A name may carry a
// Prometheus-style label suffix (`rrl_action_total{action="slip"}`);
// the text exposition keeps it intact. Get-or-create methods return
// the same instrument for the same name, so engines sharing a registry
// aggregate into shared counters. All methods are safe for concurrent
// use, and every method on a nil *Registry returns a nil instrument,
// which is itself a no-op — "metrics off" needs no conditionals at the
// call sites.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Later calls return the existing
// histogram regardless of bounds (first registration wins).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument, the form tests
// assert against.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Counter returns the named counter's value (0 when absent), a
// convenience for assertions.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Snapshot copies the registry. A nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Merge folds a snapshot taken elsewhere — typically in a lane-worker
// subprocess — into this registry: counters add, gauges set (last
// writer wins, matching their live semantics), histograms add
// bucket-wise. A histogram absent here is created with the snapshot's
// bounds; one present with different bounds is reported as an error
// and skipped, because summing mismatched buckets would fabricate a
// distribution. A nil registry merges nothing and returns nil.
func (r *Registry) Merge(s Snapshot) error {
	if r == nil {
		return nil
	}
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	var firstErr error
	for name, hs := range s.Histograms {
		h := r.Histogram(name, hs.Bounds)
		if len(h.bounds) != len(hs.Bounds) || len(h.buckets) != len(hs.Counts) {
			if firstErr == nil {
				firstErr = fmt.Errorf("obs: merge histogram %q: bounds mismatch (%v vs %v)", name, h.bounds, hs.Bounds)
			}
			continue
		}
		mismatch := false
		for i, b := range h.bounds {
			if b != hs.Bounds[i] {
				mismatch = true
				break
			}
		}
		if mismatch {
			if firstErr == nil {
				firstErr = fmt.Errorf("obs: merge histogram %q: bounds mismatch (%v vs %v)", name, h.bounds, hs.Bounds)
			}
			continue
		}
		for i, c := range hs.Counts {
			h.buckets[i].Add(c)
		}
		h.count.Add(hs.Count)
		for {
			old := h.sumBits.Load()
			next := math.Float64bits(math.Float64frombits(old) + hs.Sum)
			if h.sumBits.CompareAndSwap(old, next) {
				break
			}
		}
	}
	return firstErr
}

// WriteText writes the registry in Prometheus text exposition format:
// counters and gauges as `name value`, histograms as cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`. Instrument
// names that already carry a `{label="..."}` suffix keep their labels
// merged with `le`. Output is sorted by name so scrapes and golden
// tests are stable.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
	for n := range snap.Counters {
		names = append(names, n)
	}
	for n := range snap.Gauges {
		names = append(names, n)
	}
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if v, ok := snap.Counters[name]; ok {
			if _, err := fmt.Fprintf(w, "%s %d\n", name, v); err != nil {
				return err
			}
		}
		if v, ok := snap.Gauges[name]; ok {
			if _, err := fmt.Fprintf(w, "%s %g\n", name, v); err != nil {
				return err
			}
		}
		if h, ok := snap.Histograms[name]; ok {
			if err := writeHistogramText(w, name, h); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogramText emits one histogram's bucket/sum/count series.
func writeHistogramText(w io.Writer, name string, h HistogramSnapshot) error {
	base, labels := splitLabels(name)
	var cum int64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = fmt.Sprintf("%g", h.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, labels, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, bracket(labels), h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, bracket(labels), h.Count)
	return err
}

// splitLabels separates `name{a="b"}` into `name` and `a="b",` (with a
// trailing comma ready for merging, empty when unlabeled).
func splitLabels(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	inner := name[i+1 : len(name)-1]
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}

// bracket re-wraps a merged label fragment for non-bucket series.
func bracket(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(labels, ",") + "}"
}

// Handler returns an http.Handler serving the text exposition — the
// `-metrics-addr` endpoint of cmd/authd and cmd/resolvd.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// LabelName builds `base{key="value"}` — the one sanctioned way to
// label an instrument, so call sites do not hand-roll quoting. Quotes
// and backslashes in value are escaped.
func LabelName(base, key, value string) string {
	v := strings.NewReplacer(`\`, `\\`, `"`, `\"`).Replace(value)
	return base + "{" + key + `="` + v + `"}`
}

// ListenAndServe serves the registry's text snapshot over HTTP on addr
// (at /metrics and /) until the listener fails. Daemons run it on its
// own goroutine:
//
//	go func() { log.Println(obs.ListenAndServe(addr, reg)) }()
func ListenAndServe(addr string, r *Registry) error {
	mux := http.NewServeMux()
	h := r.Handler()
	mux.Handle("/metrics", h)
	mux.Handle("/", h)
	return http.ListenAndServe(addr, mux)
}
