package lanewire

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"time"

	"ritw/internal/geo"
)

// Query mirrors measure.QueryRecord field for field. lanewire keeps
// its own copy so measure can depend on this package without a cycle;
// the conversion in measure is mechanical and lossless (every field
// round-trips exactly, floats by bit pattern), which is what lets the
// multi-process dataset stay byte-identical to the in-process one.
type Query struct {
	ProbeID   int
	Resolver  netip.Addr
	VPKey     string
	Continent geo.Continent
	Seq       int
	SentAt    time.Duration
	RTTms     float64
	Site      string
	OK        bool
}

// Auth mirrors measure.AuthRecord.
type Auth struct {
	Site  string
	Src   netip.Addr
	QName string
	At    time.Duration
}

// Record is one element of the canonical stream: a client-side query
// observation or an authoritative-side capture, stamped with its
// emission instant (the merge key's most significant component).
type Record struct {
	At      time.Duration
	IsQuery bool
	Q       Query
	A       Auth
}

// Batch encoding: uvarint count, then records back to back. Integers
// that are non-negative by construction (IDs, sequence numbers,
// virtual times) are uvarints; RTTms is its exact IEEE-754 bit
// pattern; addresses are length-prefixed netip marshal form (which
// preserves the 4-byte/16-byte distinction).

// AppendBatch appends the encoding of recs to b and returns it.
func AppendBatch(b []byte, recs []Record) []byte {
	b = binary.AppendUvarint(b, uint64(len(recs)))
	for i := range recs {
		b = appendRecord(b, &recs[i])
	}
	return b
}

// AppendRecord appends one record's encoding to b — the unit the
// snapshot layer CRCs, so checkpoint hashes and wire bytes agree.
func AppendRecord(b []byte, r *Record) []byte { return appendRecord(b, r) }

func appendRecord(b []byte, r *Record) []byte {
	b = binary.AppendUvarint(b, uint64(r.At))
	if r.IsQuery {
		b = append(b, 1)
		b = binary.AppendUvarint(b, uint64(r.Q.ProbeID))
		b = appendAddr(b, r.Q.Resolver)
		b = appendString(b, r.Q.VPKey)
		b = append(b, byte(r.Q.Continent))
		b = binary.AppendUvarint(b, uint64(r.Q.Seq))
		b = binary.AppendUvarint(b, uint64(r.Q.SentAt))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Q.RTTms))
		b = appendString(b, r.Q.Site)
		if r.Q.OK {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		return b
	}
	b = append(b, 0)
	b = appendString(b, r.A.Site)
	b = appendAddr(b, r.A.Src)
	b = appendString(b, r.A.QName)
	b = binary.AppendUvarint(b, uint64(r.A.At))
	return b
}

// DecodeBatch decodes a batch payload produced by AppendBatch.
func DecodeBatch(p []byte) ([]Record, error) {
	d := decoder{p: p}
	n := d.uvarint()
	if n > uint64(len(p)) { // each record is >= 1 byte
		return nil, fmt.Errorf("lanewire: batch count %d exceeds payload", n)
	}
	recs := make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		r, err := d.record()
		if err != nil {
			return nil, fmt.Errorf("lanewire: record %d: %w", i, err)
		}
		recs = append(recs, r)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.p) != 0 {
		return nil, fmt.Errorf("lanewire: %d trailing bytes after batch", len(d.p))
	}
	return recs, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendAddr(b []byte, a netip.Addr) []byte {
	raw, _ := a.MarshalBinary() // never fails for zoneless addrs
	b = append(b, byte(len(raw)))
	return append(b, raw...)
}

// decoder walks a payload with a sticky error.
type decoder struct {
	p   []byte
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("lanewire: %s", msg)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.p) == 0 {
		d.fail("truncated byte")
		return 0
	}
	b := d.p[0]
	d.p = d.p[1:]
	return b
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.p)) {
		d.fail("truncated string")
		return ""
	}
	s := string(d.p[:n])
	d.p = d.p[n:]
	return s
}

func (d *decoder) addr() netip.Addr {
	n := int(d.byte())
	if d.err != nil {
		return netip.Addr{}
	}
	if n > len(d.p) {
		d.fail("truncated address")
		return netip.Addr{}
	}
	var a netip.Addr
	if err := a.UnmarshalBinary(d.p[:n]); err != nil {
		d.fail("bad address: " + err.Error())
		return netip.Addr{}
	}
	d.p = d.p[n:]
	return a
}

func (d *decoder) float64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.p) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.p))
	d.p = d.p[8:]
	return v
}

func (d *decoder) record() (Record, error) {
	var r Record
	r.At = time.Duration(d.uvarint())
	switch d.byte() {
	case 1:
		r.IsQuery = true
		r.Q.ProbeID = int(d.uvarint())
		r.Q.Resolver = d.addr()
		r.Q.VPKey = d.string()
		r.Q.Continent = geo.Continent(d.byte())
		r.Q.Seq = int(d.uvarint())
		r.Q.SentAt = time.Duration(d.uvarint())
		r.Q.RTTms = d.float64()
		r.Q.Site = d.string()
		r.Q.OK = d.byte() == 1
	case 0:
		r.A.Site = d.string()
		r.A.Src = d.addr()
		r.A.QName = d.string()
		r.A.At = time.Duration(d.uvarint())
	default:
		d.fail("unknown record kind")
	}
	return r, d.err
}
