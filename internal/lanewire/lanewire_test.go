package lanewire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"ritw/internal/geo"
)

func sampleRecords() []Record {
	return []Record{
		{
			At:      1500 * time.Millisecond,
			IsQuery: true,
			Q: Query{
				ProbeID:   4711,
				Resolver:  netip.MustParseAddr("10.0.3.9"),
				VPKey:     "4711/10.0.3.9",
				Continent: geo.Europe,
				Seq:       12,
				SentAt:    1400 * time.Millisecond,
				RTTms:     23.456789012345, // exercises exact float round-trip
				Site:      "FRA",
				OK:        true,
			},
		},
		{
			At:      1500 * time.Millisecond,
			IsQuery: true,
			Q: Query{
				ProbeID:  0,
				Resolver: netip.MustParseAddr("2001:db8::53"), // 16-byte form survives
				VPKey:    "0/2001:db8::53",
				Seq:      0,
				SentAt:   0,
				RTTms:    math.Inf(1), // non-finite floats must round-trip too
			},
		},
		{
			At: 2 * time.Second,
			A: Auth{
				Site:  "LHR",
				Src:   netip.MustParseAddr("10.0.0.7"),
				QName: "p4711x12.example.",
				At:    2 * time.Second,
			},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	want := sampleRecords()
	enc := AppendBatch(nil, want)
	got, err := DecodeBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if _, err := DecodeBatch(enc[:len(enc)-3]); err == nil {
		t.Error("truncated batch should fail to decode")
	}
	if _, err := DecodeBatch(append(enc, 0x00)); err == nil {
		t.Error("trailing bytes should fail to decode")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	payloads := []struct {
		t    FrameType
		lane int
		p    []byte
	}{
		{FrameJob, 0, []byte(`{"Version":1}`)},
		{FrameBatch, 3, AppendBatch(nil, sampleRecords())},
		{FrameBatch, 0, nil}, // empty payload is legal
		{FrameWorkerDone, 0, []byte(`{}`)},
	}
	for _, f := range payloads {
		if err := w.WriteFrame(f.t, f.lane, f.p); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range payloads {
		fr, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if fr.Type != want.t || fr.Lane != want.lane || !bytes.Equal(fr.Payload, want.p) {
			t.Fatalf("frame %d: got %+v want %+v", i, fr, want)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("clean end of stream should be io.EOF, got %v", err)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(FrameBatch, 1, AppendBatch(nil, sampleRecords())); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one payload byte past the stream and frame headers: the CRC
	// must catch it.
	corrupt := append([]byte(nil), raw...)
	corrupt[8+frameHeaderLen+5] ^= 0x40
	if _, err := NewReader(bytes.NewReader(corrupt)).ReadFrame(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted payload: got %v, want ErrChecksum", err)
	}
	// Truncation inside a frame is an unexpected EOF, not a clean end.
	if _, err := NewReader(bytes.NewReader(raw[:len(raw)-2])).ReadFrame(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestStreamHeaderValidation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(FrameJob, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf.Bytes()...)
	bad[0] = 'X'
	if _, err := NewReader(bytes.NewReader(bad)).ReadFrame(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	ver := append([]byte(nil), buf.Bytes()...)
	ver[4] = byte(Version + 1)
	if _, err := NewReader(bytes.NewReader(ver)).ReadFrame(); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("version mismatch: got %v", err)
	}
}
